// Package rbc is a Go implementation of the Random Ball Cover (RBC) of
// Cayton, "Accelerating Nearest Neighbor Search on Manycore Systems"
// (IPPS 2012; arXiv:1103.2635): metric nearest-neighbor search that is
// provably sublinear in the database size — O(c^{3/2}√n) per query for
// expansion rate c — while factoring into brute-force scans that
// parallelize trivially on multicore CPUs and GPU-style hardware.
//
// Two index types are provided, mirroring the paper's two algorithms:
//
//   - Exact: always returns a true nearest neighbor. A query scans the
//     O(√n) representatives, prunes the rest of the database with two
//     triangle-inequality bounds, and brute-forces the survivors.
//   - OneShot: returns the true nearest neighbor with high probability
//     (Theorem 2 of the paper) and is usually faster. A query scans the
//     representatives and then exactly one ownership list.
//
// # Quick start
//
//	db := rbc.NewDataset(dim)          // or load with rbc.LoadDataset
//	// ... db.Append(point) ...
//	idx, err := rbc.BuildExact(db, rbc.Euclidean(), rbc.ExactParams{})
//	res, _ := idx.One(query)           // res.ID, res.Dist
//
// Both index types support k-NN (KNN, SearchK) and batched parallel
// search (Search); Exact additionally supports ε-range queries (Range)
// and a (1+ε)-approximate mode (ExactParams.ApproxEps). Every search
// returns work statistics (distance evaluations by phase) for
// machine-independent performance analysis.
//
// Arbitrary metric spaces — edit distance on strings, shortest-path
// distance on graph nodes — are supported through the generic API in
// repro/internal/core (BuildGenericExact, BuildGenericOneShot); see
// examples/editdistance.
//
// The repository also contains the full reproduction harness for the
// paper's evaluation: see DESIGN.md for the system inventory, cmd/rbc-bench
// for the experiment runner, and EXPERIMENTS.md for paper-vs-measured
// results.
package rbc
