// Package rbc is a Go implementation of the Random Ball Cover (RBC) of
// Cayton, "Accelerating Nearest Neighbor Search on Manycore Systems"
// (IPPS 2012; arXiv:1103.2635): metric nearest-neighbor search that is
// provably sublinear in the database size — O(c^{3/2}√n) per query for
// expansion rate c — while factoring into brute-force scans that
// parallelize trivially on multicore CPUs and GPU-style hardware.
//
// Two index types are provided, mirroring the paper's two algorithms:
//
//   - Exact: always returns a true nearest neighbor. A query scans the
//     O(√n) representatives, prunes the rest of the database with two
//     triangle-inequality bounds, and brute-forces the survivors.
//   - OneShot: returns the true nearest neighbor with high probability
//     (Theorem 2 of the paper) and is usually faster. A query scans the
//     representatives and then exactly one ownership list.
//
// # Quick start
//
//	db := rbc.NewDataset(dim)          // or load with rbc.LoadDataset
//	// ... db.Append(point) ...
//	idx, err := rbc.BuildExact(db, rbc.Euclidean(), rbc.ExactParams{})
//	res, _ := idx.One(query)           // res.ID, res.Dist
//
// Both index types support k-NN (KNN, SearchK) and batched parallel
// search (Search); Exact additionally supports ε-range queries (Range,
// RangeBatch) and a (1+ε)-approximate mode (ExactParams.ApproxEps).
// Every search returns work statistics (distance evaluations by phase)
// for machine-independent performance analysis.
//
// # The batch query plane
//
// Everything above the kernels is batch-first: the Searcher and
// BatchSearcher interfaces (repro/internal/search) make "answer this
// block of queries" the common currency between the indexes, the HTTP
// server, the distributed cluster and the experiment harness. KNNBatch
// on Exact and OneShot answers a whole block through one tiled BF(Q,R)
// front half and grouped phase-2 scans — each surviving ownership list
// is scanned once per query tile as a small matrix-matrix call shared by
// every query that kept it — with results bit-identical to per-query
// KNN. The HTTP server (repro/internal/server) converts concurrent
// single-query traffic into such blocks by request coalescing — /query
// through KNNBatch and /range through RangeBatch, each queue with its
// own flush accounting in /stats — and the
// distributed cluster (repro/internal/distributed) groups a block's
// surviving lists by owning shard so each shard receives one request per
// block instead of one per query.
//
// Shards are batch-and-tile native too: a shard inverts its request's
// (query, segment) pairs into per-segment taker sets and scans each
// owned segment once for the whole block through core.GroupedScan — the
// same adaptive tile-vs-row machinery Exact's grouped back half uses —
// on exact-grade kernels only. Shard segments are sorted by
// distance-to-representative at build (core.SortSegment, the order
// Exact keeps its own lists in), and a cluster built with
// ExactParams.EarlyExit extends the paper's Claim 2 admissible window to
// the wire: each routed request ships a 16-byte [dLo, dHi] window per
// (query, segment) — derived from the query's rep-seeded k-th candidate
// — and the shard clips every taker's scan range to it with a binary
// search (core.AdmissibleWindow) before the grouped scan runs, cutting
// shard-side point evaluations without touching a single result bit.
// The contract (spelled out in the distributed package comment) is that
// cluster answers — windowed or not — are bit-identical to per-query
// cluster calls and to the single-node Exact index built with the same
// parameters; the fast Gram kernel grade is excluded from that path
// because its ulp drift would break the guarantee. A cross-backend
// equivalence fuzz harness (repro/internal/search) pins all of this
// against the brute-force reference.
//
// The cluster also runs over a real wire: cmd/rbc-shard serves shard
// segments as a standalone process speaking a length-prefixed,
// CRC-32C-checked binary protocol (repro/internal/distributed/wire —
// the same framing discipline as the WAL), and Cluster.Distribute
// pushes the shard state to a list of addresses and swaps the fan-out
// onto a TCP transport with pooled connections, per-request deadlines
// and bounded retry. Shard failures follow a declared degradation
// policy — fail fast with a typed per-shard error, or merge the
// survivors and account the gap in QueryMetrics.FailedShards — and
// answers over TCP are bit-identical to the in-process cluster, a
// contract enforced by fault-injection and multi-process equivalence
// tests (corrupt frames, killed shards, induced timeouts).
//
// # Durable mutable serving
//
// Exact is online-mutable: Insert appends a point and splices it into
// its owner's sorted insertion buffer (binary search on the (dist, id)
// key, so admissible windows stay valid), Delete tombstones an id, and
// neither changes a single answer bit relative to a from-scratch
// rebuild over the live rows — pending buffers are scanned with the
// same window math as merged segments, and a buffer that reaches
// ExactParams.BufferMerge rows is folded into its segment's flat
// columns by one targeted back-to-front merge, never a full rebuild.
// Flush folds all buffers eagerly; Rebuild recompacts everything
// (tombstones stay, ids are stable for the life of the index).
//
// The HTTP server persists mutations when opened through
// server.OpenDurable (rbc-server -data-dir): every /insert and /delete
// is appended to a CRC-checked write-ahead log and fsynced per the
// -wal-sync policy BEFORE it is applied and acknowledged, so under
// "always" an acknowledged mutation survives SIGKILL. POST /snapshot
// (or -snapshot-every) writes the index image and commits it by
// atomically renaming CURRENT to the new generation, after which the
// old generation's log is removed — the recovery contract and file
// layout are documented in repro/internal/server. A crash-recovery
// suite (kill-and-replay with child processes, torn-write fault
// injection, mutate/query history equivalence) locks the contract down
// in CI.
//
// # Tiled kernels and squared-distance ordering
//
// The brute-force primitive BF(Q,X) underneath every index is a tiled
// matrix-matrix computation (repro/internal/metric.BatchMulti): blocks of
// queries are compared against blocks of points so each point tile loaded
// into cache is reused by the whole query block. Internally all
// comparisons run on *ordering distances* — squared distances for
// Euclidean, p-power sums for Minkowski — and the root is applied once per
// returned neighbor at the API boundary. Because the surrogate is strictly
// monotone, ordering, top-k selection and tie-breaking (toward lower ids)
// are unaffected.
//
// Four kernel grades exist (see repro/internal/metric for the full
// contracts). The builds and the Exact query paths (BuildExact,
// BuildOneShot, Exact.One/KNN/Search/SearchK/Range, and
// bruteforce.Search/SearchK) use exact kernels whose per-pair arithmetic
// is bit-identical to the per-query reference — results are reproducible
// down to the last bit, ties included, for any tiling or batch shape.
// (One caveat against pre-ordering-space code: when two *distinct*
// squared distances round to the same sqrt, a post-sqrt comparison saw a
// tie where ordering space sees a strict order and returns the strictly
// nearer point.) BruteForce and BruteForceK use the Gram-fast kernels —
// the Gram decomposition ‖q−x‖² = ‖q‖²+‖x‖²−2·q·x over precomputed
// squared norms for Euclidean — which reassociate the summation and may
// differ from the reference in the trailing ulps of the distance, never
// in the handling of exact ties. The chunked-fast grade
// (metric.NewChunkedKernel) goes further: its inner loop runs entirely
// in float32, accumulating at most 2^11 products before folding into a
// float64 total, so it is conversion-free and vectorizable — roughly
// twice the row-scan throughput — at the price of a bounded RELATIVE
// error (metric.ChunkedErrorBound, ~1e-5 at the chunk size) on every
// distance. It is admitted only where approximate ordering is already
// part of the contract: bruteforce.SearchChunked/SearchKChunked,
// OneShot probe selection (OneShotParams.Phase1Chunked), LSH candidate
// rescoring (lsh.Params.Rescore) and kd-tree leaf rescoring
// (kdtree.BuildGrade); core.GroupedScan and Exact refuse fast-grade
// kernels outright. The quantized grade (metric.NewQuantizedKernel)
// targets the memory-bound regime instead of the compute-bound one: the
// database is encoded once into int8 codes plus a per-chunk scale
// (metric.NewQuantizedView, 4x less memory traffic than float32), and
// the scan runs on the codes, so at n >= 100k and dim 64 the row scan is
// >= 2x the chunked grade's throughput. Its scan distances carry a
// bounded ADDITIVE error (QuantizedView.ErrorBound), which makes the
// grade a candidate generator, not an answer path — so the scan layout
// codes the database in row-major int8 with one float32 scale per
// 2^11-value chunk, and every consumer pairs it with exact rescoring.
// bruteforce.SearchKQuantized runs the two-pass contract: pass 1 scans
// the codes and keeps QuantOverfetch*k (floored at 64) candidates —
// enough to cover the quantization noise band around the k-th distance —
// and pass 2 rescores exactly those rows with the exact kernel
// (bruteforce.RescoreKQuantized), so the reported neighbors carry
// bit-true distances; when the over-fetch reaches n the result is exact
// by construction. The same pattern backs
// OneShotParams.Phase1Quantized (probe selection over quantized rep
// scans), the lsh and kdtree quantized grades, and
// rbc-bench -kernel=quantized; the quant-sweep experiment measures the
// n-crossover. OneShot sits between the grades: its probe-selection
// phase runs on a fast kernel against norms cached in the index (so
// which ownership list is scanned can flip at near-ties inside that
// grade's noise — within the algorithm's probabilistic contract), while
// the list scans that produce the reported distances always use the
// exact kernel.
//
// Arbitrary metric spaces — edit distance on strings, shortest-path
// distance on graph nodes — are supported through the generic API in
// repro/internal/core (BuildGenericExact, BuildGenericOneShot); see
// examples/editdistance.
//
// The repository also contains the full reproduction harness for the
// paper's evaluation: see DESIGN.md for the system inventory, cmd/rbc-bench
// for the experiment runner, and EXPERIMENTS.md for paper-vs-measured
// results.
package rbc
