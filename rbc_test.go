package rbc_test

import (
	"bytes"
	"math/rand"
	"testing"

	rbc "repro"
	"repro/internal/bruteforce"
	"repro/internal/metric"
)

// These are integration tests over the public facade: build, query,
// serialize, reload — the workflow a downstream user runs.

func buildTestData(rng *rand.Rand, n, dim int) *rbc.Dataset {
	db := rbc.NewDataset(dim)
	row := make([]float32, dim)
	for i := 0; i < n; i++ {
		c := float32(rng.Intn(6)) * 8
		for j := range row {
			row[j] = c + float32(rng.NormFloat64())
		}
		db.Append(row)
	}
	return db
}

func TestPublicAPIExactWorkflow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := buildTestData(rng, 2000, 8)
	idx, err := rbc.BuildExact(db, rbc.Euclidean(), rbc.ExactParams{Seed: 3, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := buildTestData(rng, 40, 8)
	res, st := idx.Search(queries)
	if st.TotalEvals() == 0 {
		t.Fatal("no work recorded")
	}
	for i := 0; i < queries.N(); i++ {
		want := bruteforce.SearchOne(queries.Row(i), db, metric.Euclidean{}, nil)
		if res[i].Dist != want.Dist {
			t.Fatalf("query %d: %v want %v", i, res[i].Dist, want.Dist)
		}
	}
	// Work reduction is the headline claim.
	perQuery := float64(st.TotalEvals()) / float64(queries.N())
	if perQuery >= float64(db.N()) {
		t.Fatalf("no work reduction: %.0f evals/query on n=%d", perQuery, db.N())
	}
}

func TestPublicAPIOneShotWorkflow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := buildTestData(rng, 1500, 6)
	idx, err := rbc.BuildOneShot(db, rbc.Euclidean(), rbc.OneShotParams{NumReps: 120, S: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	queries := buildTestData(rng, 60, 6)
	res, _ := idx.Search(queries)
	correct := 0
	for i := 0; i < queries.N(); i++ {
		want := bruteforce.SearchOne(queries.Row(i), db, metric.Euclidean{}, nil)
		if res[i].Dist == want.Dist {
			correct++
		}
	}
	if correct < queries.N()*8/10 {
		t.Fatalf("one-shot recall too low: %d/%d", correct, queries.N())
	}
}

func TestPublicAPISerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := buildTestData(rng, 800, 5)
	idx, err := rbc.BuildExact(db, rbc.Euclidean(), rbc.ExactParams{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := rbc.LoadExact(&buf, db, rbc.Euclidean())
	if err != nil {
		t.Fatal(err)
	}
	q := db.Row(13)
	a, _ := idx.One(q)
	b, _ := loaded.One(q)
	if a != b {
		t.Fatalf("reload mismatch: %+v vs %+v", a, b)
	}
}

func TestPublicAPIKNNAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := buildTestData(rng, 1000, 4)
	idx, err := rbc.BuildExact(db, rbc.Euclidean(), rbc.ExactParams{Seed: 9, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	q := buildTestData(rng, 1, 4).Row(0)
	knn, _ := idx.KNN(q, 5)
	if len(knn) != 5 {
		t.Fatalf("knn: %v", knn)
	}
	want := bruteforce.SearchOneK(q, db, 5, metric.Euclidean{}, nil)
	for i := range knn {
		if knn[i].Dist != want[i].Dist {
			t.Fatalf("knn[%d]: %v want %v", i, knn[i].Dist, want[i].Dist)
		}
	}
	hits, _ := idx.Range(q, knn[4].Dist)
	if len(hits) < 5 {
		t.Fatalf("range should cover the 5-NN ball: %d hits", len(hits))
	}
}

func TestPublicAPIMetricConstructors(t *testing.T) {
	a := []float32{0, 0}
	b := []float32{3, 4}
	if rbc.Euclidean().Distance(a, b) != 5 {
		t.Fatal("euclidean")
	}
	if rbc.Manhattan().Distance(a, b) != 7 {
		t.Fatal("manhattan")
	}
	if rbc.Chebyshev().Distance(a, b) != 4 {
		t.Fatal("chebyshev")
	}
	if rbc.DefaultNumReps(10000) != 100 {
		t.Fatal("default reps")
	}
}

func TestPublicAPIDatasetHelpers(t *testing.T) {
	db := rbc.FromRows([][]float32{{1, 2}, {3, 4}})
	if db.N() != 2 || db.Dim != 2 {
		t.Fatalf("FromRows: %v", db)
	}
	empty := rbc.NewDataset(3)
	if empty.N() != 0 || empty.Dim != 3 {
		t.Fatal("NewDataset")
	}
}
