// Imagesearch: the paper's TinyIm workload end to end — synthetic image
// patches, Johnson–Lindenstrauss projection to a small descriptor, and a
// one-shot RBC over the descriptors, sweeping the accuracy/speed knob
// exactly as Figure 1 does.
//
// The paper's motivating application (§1) is computer vision: finding the
// most similar images in a large corpus. Here a held-out patch queries
// the database at several n_r = s settings, showing the rank-error/work
// tradeoff the one-shot algorithm exposes.
package main

import (
	"fmt"
	"log"
	"math"

	rbc "repro"
	"repro/internal/bruteforce"
	"repro/internal/dataset"
	"repro/internal/metric"
	"repro/internal/stats"
)

func main() {
	const (
		nDB      = 30000
		nQueries = 200
		outDim   = 16
		seed     = 7
	)
	fmt.Printf("generating %d synthetic image patches, projecting 256 -> %d dims (JL)\n",
		nDB+nQueries, outDim)
	all := dataset.TinyImages(nDB+nQueries, outDim, seed)
	ids := make([]int, nDB)
	for i := range ids {
		ids[i] = i
	}
	db := all.Subset(ids)
	qids := make([]int, nQueries)
	for i := range qids {
		qids[i] = nDB + i
	}
	queries := all.Subset(qids)

	m := metric.Euclidean{}
	truth := bruteforce.Search(queries, db, m, nil)
	trueDists := make([]float64, nQueries)
	for i, r := range truth {
		trueDists[i] = r.Dist
	}

	fmt.Printf("\n%-10s %-10s %-12s %-12s %-8s\n", "nr=s", "evals/q", "work-speedup", "mean-rank", "recall")
	for _, factor := range []float64{0.5, 1, 2, 4} {
		nr := int(factor * math.Sqrt(nDB))
		idx, err := rbc.BuildOneShot(db, rbc.Euclidean(), rbc.OneShotParams{
			NumReps: nr, S: nr, Seed: seed, ExactCount: true})
		if err != nil {
			log.Fatal(err)
		}
		res, st := idx.Search(queries)
		got := make([]float64, nQueries)
		for i, r := range res {
			got[i] = r.Dist
		}
		evalsPerQ := float64(st.TotalEvals()) / nQueries
		fmt.Printf("%-10d %-10.0f %-12.1f %-12.3f %-8.3f\n",
			nr, evalsPerQ, float64(nDB)/evalsPerQ,
			stats.MeanRank(queries, db, got, m),
			stats.Recall(got, trueDists))
	}

	// Show one retrieval: the five most similar patches to query 0.
	idx, err := rbc.BuildOneShot(db, rbc.Euclidean(), rbc.OneShotParams{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	nbs, _ := idx.KNN(queries.Row(0), 5)
	fmt.Printf("\nmost similar patches to query 0:\n")
	for rank, nb := range nbs {
		fmt.Printf("  %d. patch #%d (descriptor distance %.4f)\n", rank+1, nb.ID, nb.Dist)
	}
}
