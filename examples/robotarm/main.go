// Robotarm: nearest-neighbor inverse-dynamics lookup on the simulated
// 7-joint arm — the paper's Robot workload (§7.1, data from a Barrett
// WAM; see Nguyen-Tuong & Peters 2010). Local learning control predicts
// the torque needed for a desired (angle, velocity) state by averaging
// the torques of the k nearest previously-seen states; the lookup must be
// exact (a wrong neighbor means a wrong torque) and fast (control runs at
// hundreds of Hz), which is precisely the exact RBC's use case.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	rbc "repro"
	"repro/internal/dataset"
)

const joints = 7

func main() {
	const (
		nDB      = 100000
		nQueries = 2000
		seed     = 3
	)
	fmt.Printf("simulating %d samples of 7-joint arm dynamics (q, dq, tau)\n", nDB+nQueries)
	all := dataset.Robot(nDB+nQueries, seed)
	ids := make([]int, nDB)
	for i := range ids {
		ids[i] = i
	}
	db := all.Subset(ids)

	// n_r = 2√n: the paper's standard setting with a small constant for
	// the expansion-rate factor.
	idx, err := rbc.BuildExact(db, rbc.Euclidean(), rbc.ExactParams{
		NumReps: 2 * rbc.DefaultNumReps(nDB), Seed: seed, EarlyExit: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact RBC: %d representatives over %d states\n", idx.NumReps(), db.N())

	// Control-loop style evaluation: for each new state, fetch the k
	// nearest stored states and predict torques by distance-weighted
	// averaging; compare against the simulator's true torques.
	const k = 8
	var sumErr, sumMag float64
	var evals int64
	start := time.Now()
	for qi := 0; qi < nQueries; qi++ {
		state := all.Row(nDB + qi)
		nbs, st := idx.KNN(state, k)
		evals += st.TotalEvals()
		// Weighted torque prediction per joint.
		var pred [joints]float64
		var wsum float64
		for _, nb := range nbs {
			w := 1.0 / (1e-6 + nb.Dist)
			wsum += w
			row := db.Row(nb.ID)
			for j := 0; j < joints; j++ {
				pred[j] += w * float64(row[2*joints+j])
			}
		}
		for j := 0; j < joints; j++ {
			pred[j] /= wsum
			truth := float64(state[2*joints+j])
			sumErr += math.Abs(pred[j] - truth)
			sumMag += math.Abs(truth)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("torque prediction: %.1f%% relative L1 error over %d queries\n",
		100*sumErr/sumMag, nQueries)
	fmt.Printf("lookup rate: %.0f queries/sec (%.0f evals/query vs %d for brute force)\n",
		float64(nQueries)/elapsed.Seconds(), float64(evals)/float64(nQueries), db.N())

	// The certificate of exactness matters for control: verify a few
	// lookups against brute force.
	bad := 0
	for qi := 0; qi < 50; qi++ {
		state := all.Row(nDB + qi)
		got, _ := idx.One(state)
		want := bruteForce1NN(db, state)
		if got.Dist != want {
			bad++
		}
	}
	fmt.Printf("verification: %d/50 lookups diverged from brute force (expect 0)\n", bad)
}

func bruteForce1NN(db *rbc.Dataset, q []float32) float64 {
	best := math.Inf(1)
	for i := 0; i < db.N(); i++ {
		row := db.Row(i)
		var s float64
		for j := range q {
			d := float64(q[j]) - float64(row[j])
			s += d * d
		}
		if s < best {
			best = s
		}
	}
	return math.Sqrt(best)
}
