// Distributed: the paper's §8 future-work proposal running — an RBC
// database sharded across a simulated cluster *by representative*, so the
// coordinator routes each query only to the shards whose representatives
// survive the exact-search pruning bounds. Compare against broadcasting
// every query to every shard (distributed brute force).
package main

import (
	"fmt"
	"log"
	"math"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distributed"
	"repro/internal/metric"
	"repro/internal/par"
)

func main() {
	const (
		n        = 60000
		nQueries = 500
		shards   = 8
		seed     = 9
	)
	fmt.Printf("building %d-point robot workload, sharding across %d nodes by representative\n", n, shards)
	all := dataset.Robot(n+nQueries, seed)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	db := all.Subset(ids)

	nr := int(2 * math.Sqrt(float64(n)))
	cluster, err := distributed.Build(db, metric.Euclidean{},
		core.ExactParams{NumReps: nr, Seed: seed, ExactCount: true},
		shards, distributed.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("shard loads (points per node): %v\n\n", cluster.ShardLoads())

	var routed, broadcast distributed.QueryMetrics
	diverged := 0
	for qi := 0; qi < nQueries; qi++ {
		q := all.Row(n + qi)
		r, mr, _ := cluster.Query(q)
		b, mb, _ := cluster.QueryBroadcast(q)
		if r.Dist != b.Dist {
			diverged++
		}
		routed.Add(mr)
		broadcast.Add(mb)
	}
	fmt.Printf("correctness: routed vs broadcast diverged on %d/%d queries (expect 0)\n\n",
		diverged, nQueries)

	q := float64(nQueries)
	fmt.Printf("%-22s %12s %12s\n", "per-query average", "routed", "broadcast")
	fmt.Printf("%-22s %12.2f %12.2f\n", "shards contacted",
		float64(routed.ShardsContacted)/q, float64(broadcast.ShardsContacted)/q)
	fmt.Printf("%-22s %12.0f %12.0f\n", "distance evals",
		float64(routed.Evals)/q, float64(broadcast.Evals)/q)
	fmt.Printf("%-22s %12.2f %12.2f\n", "KB moved",
		float64(routed.Bytes)/q/1024, float64(broadcast.Bytes)/q/1024)
	fmt.Printf("%-22s %12.3f %12.3f\n", "simulated ms",
		routed.SimTimeUS/q/1000, broadcast.SimTimeUS/q/1000)
	fmt.Printf("\nrouting cuts cluster work by %.1fx and network traffic by %.1fx\n",
		float64(broadcast.Evals)/float64(routed.Evals),
		float64(broadcast.Bytes)/float64(routed.Bytes))

	// Batched fan-out: the same queries as one block — the coordinator
	// sends at most one request per shard for the whole block instead of
	// one per surviving shard per query.
	qids := make([]int, nQueries)
	for i := range qids {
		qids[i] = n + i
	}
	batch, bm, _ := cluster.QueryBatch(all.Subset(qids))
	divergedBatch := 0
	for qi := 0; qi < nQueries; qi++ {
		r, _, _ := cluster.Query(all.Row(n + qi))
		if batch[qi] != r {
			divergedBatch++
		}
	}
	fmt.Printf("\nbatched fan-out (%d queries as one block): %d shard requests, %d messages total\n",
		nQueries, bm.ShardsContacted, bm.Messages)
	fmt.Printf("per-query fan-out sent %d messages — batching cuts messages by %.0fx (answers identical: %d diverged)\n",
		routed.Messages, float64(routed.Messages)/float64(bm.Messages), divergedBatch)

	// Tiled k-NN blocks: each shard inverts the block into per-segment
	// taker sets and scans every segment ONCE for all its takers through
	// the exact-grade matrix-matrix kernels — no per-pair distance calls
	// on the hot path, and results bit-identical to per-query k-NN.
	const k = 10
	queries := all.Subset(qids)
	start := time.Now()
	knnBatch, km, _ := cluster.KNNBatch(queries, k)
	batchSecs := time.Since(start).Seconds()
	perQueryKNN := make([][]par.Neighbor, nQueries)
	start = time.Now()
	for qi := 0; qi < nQueries; qi++ {
		perQueryKNN[qi], _, _ = cluster.KNN(queries.Row(qi), k)
	}
	perSecs := time.Since(start).Seconds()
	divergedKNN := 0
	for qi := 0; qi < nQueries; qi++ {
		for p := range perQueryKNN[qi] {
			if knnBatch[qi][p] != perQueryKNN[qi][p] {
				divergedKNN++
			}
		}
	}
	fmt.Printf("\ntiled %d-NN block: %.0f queries/sec batched vs %.0f per-query (%.1fx), %d shard requests, %d point evals\n",
		k, float64(nQueries)/batchSecs, float64(nQueries)/perSecs, perSecs/batchSecs, km.ShardsContacted, km.PointEvals)
	fmt.Printf("batched k-NN bit-identical to per-query: %d positions diverged (expect 0)\n", divergedKNN)

	// Shard-side EarlyExit windows: segments are sorted by distance to
	// their representative at build, and each routed request ships a
	// 16-byte admissible window per (query, segment) derived from the
	// query's rep-seeded k-th candidate. Shards clip every scan to the
	// window — fewer point evals, identical bits.
	winCluster, err := distributed.Build(db, metric.Euclidean{},
		core.ExactParams{NumReps: nr, Seed: seed, ExactCount: true, EarlyExit: true},
		shards, distributed.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}
	defer winCluster.Close()
	knnWin, wm, _ := winCluster.KNNBatch(queries, k)
	divergedWin := 0
	for qi := 0; qi < nQueries; qi++ {
		for p := range knnBatch[qi] {
			if knnWin[qi][p] != knnBatch[qi][p] {
				divergedWin++
			}
		}
	}
	fmt.Printf("\nwindowed %d-NN block: %d point evals vs %d full-scan (%.2fx ratio), %d windows shipped (%.1f KB), %d clipped empty\n",
		k, wm.PointEvals, km.PointEvals, float64(wm.PointEvals)/float64(km.PointEvals),
		wm.Windows, float64(wm.Windows)*distributed.WindowBytes/1024, wm.EmptyWindows)
	fmt.Printf("windowed answers bit-identical to full scan: %d positions diverged (expect 0)\n", divergedWin)

	// Networked: the same cluster over a real wire. Each shard server
	// here runs in-process on its own TCP listener — in production each
	// is a separate `rbc-shard` process (or host). Distribute pushes the
	// shard state over the length-prefixed CRC-checked protocol, and
	// every later fan-out goes through pooled connections with deadlines
	// and retries. Answers stay bit-identical to the in-process cluster.
	netCluster, err := distributed.Build(db, metric.Euclidean{},
		core.ExactParams{NumReps: nr, Seed: seed, ExactCount: true, EarlyExit: true},
		shards, distributed.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}
	defer netCluster.Close()
	addrs := make([]string, shards)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		sv := distributed.NewShardServer()
		go sv.Serve(ln)
		defer sv.Close()
		addrs[i] = ln.Addr().String()
	}
	if err := netCluster.Distribute(addrs, distributed.TCPOptions{}); err != nil {
		log.Fatal(err)
	}
	knnNet, nm, err := netCluster.KNNBatch(queries, k)
	if err != nil {
		log.Fatal(err)
	}
	divergedNet := 0
	for qi := 0; qi < nQueries; qi++ {
		for p := range knnWin[qi] {
			if knnNet[qi][p] != knnWin[qi][p] {
				divergedNet++
			}
		}
	}
	fmt.Printf("\nnetworked %d-NN block over TCP to %d shard servers: %d shard requests, answers bit-identical: %d positions diverged (expect 0)\n",
		k, shards, nm.ShardsContacted, divergedNet)
	var wireOut, wireIn int64
	for _, st := range netCluster.NetStats() {
		wireOut += st.BytesSent
		wireIn += st.BytesRecv
	}
	fmt.Printf("wire accounting: %.1f KB sent, %.1f KB received across %d shard connections (0 retries expected on loopback)\n",
		float64(wireOut)/1024, float64(wireIn)/1024, shards)

	// Replicated serving: the same shard states pushed to TWO servers
	// each. Hedging duplicates a scan onto the standby when the primary
	// runs slower than its usual p95 RTT (first answer wins, the loser
	// is cancelled), and if a replica dies outright the fan-out fails
	// over inside the replica set — no failed shards, identical bits.
	repCluster, err := distributed.Build(db, metric.Euclidean{},
		core.ExactParams{NumReps: nr, Seed: seed, ExactCount: true, EarlyExit: true},
		shards, distributed.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}
	defer repCluster.Close()
	primaries := make([]*distributed.ShardServer, shards)
	assignment := make([][]string, shards)
	for i := range assignment {
		for r := 0; r < 2; r++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			sv := distributed.NewShardServer()
			go sv.Serve(ln)
			defer sv.Close()
			if r == 0 {
				primaries[i] = sv
			}
			assignment[i] = append(assignment[i], ln.Addr().String())
		}
	}
	opts := distributed.TCPOptions{Hedge: distributed.HedgeOptions{MaxHedges: 1}}
	if err := repCluster.DistributeReplicas(assignment, opts); err != nil {
		log.Fatal(err)
	}
	knnRep, _, err := repCluster.KNNBatch(queries, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplicated %d-NN block (2 replicas/shard, hedging on): %d positions diverged from loopback (expect 0)\n",
		k, countDiverged(knnRep, knnWin))

	// Live rebalance while serving: rotate every representative one
	// shard to the right. Every replica of every shard receives the new
	// state at a bumped epoch before routing cuts over; a straggler
	// still holding the old state would reject post-cutover scans as
	// "stale epoch" rather than silently answer from the wrong layout.
	assign := repCluster.RepAssignment()
	for rep := range assign {
		assign[rep] = (assign[rep] + 1) % shards
	}
	if err := repCluster.Rebalance(assign); err != nil {
		log.Fatal(err)
	}
	knnReb, _, err := repCluster.KNNBatch(queries, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebalanced (every rep moved one shard right): new loads %v, %d positions diverged (expect 0)\n",
		repCluster.ShardLoads(), countDiverged(knnReb, knnWin))

	// Kill one replica of EVERY shard at once. The ordered replica sets
	// absorb it: each scan fails over to the survivor, the batch still
	// reports zero failed shards, and the answers do not move a bit.
	for _, sv := range primaries {
		sv.Close()
	}
	knnSurv, sm, err := repCluster.KNNBatch(queries, k)
	if err != nil {
		log.Fatal(err)
	}
	var hedged, wins, cancelled, failures int64
	for _, st := range repCluster.NetStats() {
		hedged += st.Hedged
		wins += st.HedgeWins
		cancelled += st.Cancelled
		failures += st.Failures
	}
	fmt.Printf("killed one replica of every shard: %d failed shards (expect 0), %d positions diverged (expect 0)\n",
		sm.FailedShards, countDiverged(knnSurv, knnWin))
	fmt.Printf("replica stats: %d hedged scans, %d hedge wins, %d losing scans cancelled, %d hard failures failed over\n",
		hedged, wins, cancelled, failures)
}

func countDiverged(got, want [][]par.Neighbor) int {
	diverged := 0
	for qi := range want {
		for p := range want[qi] {
			if got[qi][p] != want[qi][p] {
				diverged++
			}
		}
	}
	return diverged
}
