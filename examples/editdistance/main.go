// Editdistance: the RBC over a non-vector metric space — strings under
// Levenshtein distance. §6 of the paper emphasizes that the expansion
// rate (and hence the RBC) "is defined for arbitrary metric spaces, so
// makes sense for the edit distance on strings"; this example makes that
// concrete with a fuzzy-matching dictionary, comparing the generic exact
// RBC against brute force.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/metric"
)

// mutate applies up to edits random single-character edits to s.
func mutate(rng *rand.Rand, s string, edits int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz"
	b := []byte(s)
	for e := 0; e < edits; e++ {
		if len(b) == 0 {
			b = append(b, alphabet[rng.Intn(26)])
			continue
		}
		switch rng.Intn(3) {
		case 0: // substitute
			b[rng.Intn(len(b))] = alphabet[rng.Intn(26)]
		case 1: // insert
			i := rng.Intn(len(b) + 1)
			b = append(b[:i], append([]byte{alphabet[rng.Intn(26)]}, b[i:]...)...)
		case 2: // delete
			i := rng.Intn(len(b))
			b = append(b[:i], b[i+1:]...)
		}
	}
	return string(b)
}

func main() {
	rng := rand.New(rand.NewSource(11))
	// Build a synthetic dictionary: root words plus morphological
	// variants, which is what gives real dictionaries their low intrinsic
	// dimension under edit distance — variants cluster tightly around
	// their roots while unrelated roots sit far apart.
	const roots = 300
	var words []string
	seen := map[string]bool{}
	for r := 0; r < roots; r++ {
		l := rng.Intn(8) + 6
		root := make([]byte, l)
		for i := range root {
			root[i] = byte('a' + rng.Intn(26))
		}
		for v := 0; v < 25; v++ {
			w := mutate(rng, string(root), rng.Intn(3))
			if !seen[w] {
				seen[w] = true
				words = append(words, w)
			}
		}
	}
	fmt.Printf("dictionary: %d words\n", len(words))

	// Edit-distance values are small integers, so the radius bound needs
	// enough representatives to land one near each morphological cluster;
	// n_r ≈ 3·roots keeps γ at 1-2 edits and makes pruning bite.
	m := metric.Metric[string](metric.Edit{})
	idx, err := core.BuildGenericExact(words, m, core.ExactParams{
		NumReps: 3 * roots, Seed: 5, EarlyExit: true, ExactCount: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generic exact RBC: %d representatives\n", idx.NumReps())

	// Fuzzy lookups: misspellings of dictionary words.
	const nQueries = 300
	queries := make([]string, nQueries)
	for i := range queries {
		queries[i] = mutate(rng, words[rng.Intn(len(words))], 1+rng.Intn(2))
	}

	start := time.Now()
	res, st := idx.Search(queries)
	rbcTime := time.Since(start)

	start = time.Now()
	want := bruteforce.SearchGeneric(queries, words, m, nil)
	bruteTime := time.Since(start)

	mismatches := 0
	for i := range res {
		if res[i].Dist != want[i].Dist {
			mismatches++
		}
	}
	fmt.Printf("correctness: %d/%d mismatches vs brute force (expect 0)\n", mismatches, nQueries)
	fmt.Printf("work: %.0f evals/query vs %d for brute force (%.1fx reduction)\n",
		float64(st.TotalEvals())/nQueries, len(words),
		float64(len(words))*nQueries/float64(st.TotalEvals()))
	fmt.Printf("time: rbc %v, brute %v (%.1fx)\n", rbcTime, bruteTime,
		bruteTime.Seconds()/rbcTime.Seconds())

	// Show a few corrections.
	fmt.Println("\nsample corrections:")
	for i := 0; i < 5; i++ {
		fmt.Printf("  %-14q -> %-14q (distance %.0f)\n",
			queries[i], words[res[i].ID], res[i].Dist)
	}
}
