// Quickstart: build both RBC index types over a small synthetic database,
// run exact and one-shot queries, and show the work savings over brute
// force — the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	rbc "repro"
)

func main() {
	// 1. Assemble a database: 20,000 points in 16 dimensions drawn from a
	// handful of clusters (realistic data is clustered — that is what
	// gives it low intrinsic dimensionality, which the RBC exploits).
	rng := rand.New(rand.NewSource(42))
	const (
		n   = 20000
		dim = 16
	)
	db := rbc.NewDataset(dim)
	row := make([]float32, dim)
	for i := 0; i < n; i++ {
		center := float32(rng.Intn(12)) * 5
		for j := range row {
			row[j] = center + float32(rng.NormFloat64())
		}
		db.Append(row)
	}

	// 2. Build the exact index. The zero-value params pick the paper's
	// standard setting (≈√n representatives, both pruning bounds).
	exact, err := rbc.BuildExact(db, rbc.Euclidean(), rbc.ExactParams{EarlyExit: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact index: %d representatives over %d points\n", exact.NumReps(), db.N())

	// 3. Query it. Stats show how much of the database was examined.
	query := db.Row(137) // a database point: its NN is itself
	res, st := exact.One(query)
	fmt.Printf("exact 1-NN: id=%d dist=%.4f — examined %d of %d points (%.1f%%)\n",
		res.ID, res.Dist, st.TotalEvals(), db.N(), 100*float64(st.TotalEvals())/float64(db.N()))

	// 4. k-NN and range queries come along for free.
	knn, _ := exact.KNN(query, 5)
	fmt.Printf("exact 5-NN ids: ")
	for _, nb := range knn {
		fmt.Printf("%d ", nb.ID)
	}
	fmt.Println()
	hits, _ := exact.Range(query, 5.0)
	fmt.Printf("range(5.0): %d points\n", len(hits))

	// 5. The one-shot index trades a little accuracy for speed: one
	// representative scan plus one list scan, no pruning logic at all.
	// Theorem 2 wants n_r = s = c·sqrt(n·ln(1/δ)); with a modest constant
	// that is ~1200 here.
	oneshot, err := rbc.BuildOneShot(db, rbc.Euclidean(), rbc.OneShotParams{NumReps: 1200, S: 1200})
	if err != nil {
		log.Fatal(err)
	}

	// 6. Batch queries run in parallel across all cores; compare the two
	// algorithms' accuracy and work on the same 1000 queries.
	queries := rbc.NewDataset(dim)
	for i := 0; i < 1000; i++ {
		queries.Append(db.Row(rng.Intn(n)))
	}
	batch, stBatch := exact.Search(queries)
	fmt.Printf("exact batch:    %d queries, mean %.0f evals/query (brute force would be %d)\n",
		len(batch), float64(stBatch.TotalEvals())/float64(len(batch)), db.N())
	osBatch, stOS := oneshot.Search(queries)
	correct := 0
	for i := range osBatch {
		if osBatch[i].Dist == batch[i].Dist {
			correct++
		}
	}
	fmt.Printf("one-shot batch: recall %.1f%% at %.0f evals/query — no pruning logic, two flat scans\n",
		100*float64(correct)/float64(len(osBatch)),
		float64(stOS.TotalEvals())/float64(len(osBatch)))
}
