package bruteforce

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/metric"
	"repro/internal/vec"
)

func benchData(n, dim int) (*vec.Dataset, []float32) {
	rng := rand.New(rand.NewSource(5))
	db := vec.New(dim, n)
	row := make([]float32, dim)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Float32()
		}
		db.Append(row)
	}
	q := make([]float32, dim)
	for j := range q {
		q[j] = rng.Float32()
	}
	return db, q
}

func BenchmarkSearchOne20k(b *testing.B) {
	db, q := benchData(20000, 32)
	m := metric.Euclidean{}
	b.SetBytes(int64(db.N() * db.Dim * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SearchOne(q, db, m, nil)
	}
}

func BenchmarkSearchOneK10(b *testing.B) {
	db, q := benchData(20000, 32)
	m := metric.Euclidean{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SearchOneK(q, db, 10, m, nil)
	}
}

func BenchmarkBatchSearch(b *testing.B) {
	db, _ := benchData(5000, 32)
	queries, _ := benchData(64, 32)
	m := metric.Euclidean{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Search(queries, db, m, nil)
	}
}

func BenchmarkRangeSearch(b *testing.B) {
	db, q := benchData(20000, 32)
	m := metric.Euclidean{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RangeSearch(q, db, 0.5, m, nil)
	}
}

// BF(Q,X) benchmark setting from the acceptance criteria: n=10k, |Q|=256,
// dim swept over {16, 64, 256, 784}. BFTiled is the tiled matrix-matrix
// primitive (Gram kernel, SearchFast); BFTiledExact is the bit-reproducible
// tiled kernel behind Search; BFPerQuery is the pre-tiling baseline (one
// database stream and one sqrt per candidate per query).

var bfDims = []int{16, 64, 256, 784}

const (
	bfN = 10000
	bfQ = 256
)

func benchQueries(nq, dim int) *vec.Dataset {
	rng := rand.New(rand.NewSource(7))
	qs := vec.New(dim, nq)
	row := make([]float32, dim)
	for i := 0; i < nq; i++ {
		for j := range row {
			row[j] = rng.Float32()
		}
		qs.Append(row)
	}
	return qs
}

func benchBF(b *testing.B, run func(queries, db *vec.Dataset)) {
	for _, dim := range bfDims {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			db, _ := benchData(bfN, dim)
			queries := benchQueries(bfQ, dim)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run(queries, db)
			}
			evals := float64(bfN) * float64(bfQ) * float64(b.N)
			b.ReportMetric(evals/b.Elapsed().Seconds(), "dist-evals/s")
		})
	}
}

func BenchmarkBFTiled(b *testing.B) {
	benchBF(b, func(queries, db *vec.Dataset) {
		SearchFast(queries, db, metric.Euclidean{}, nil)
	})
}

// BenchmarkBFTiledFast is BenchmarkBFTiled under its grade name, so the
// bench-regression baseline reads as exact vs fast vs chunked.
func BenchmarkBFTiledFast(b *testing.B) {
	benchBF(b, func(queries, db *vec.Dataset) {
		SearchFast(queries, db, metric.Euclidean{}, nil)
	})
}

func BenchmarkBFTiledChunked(b *testing.B) {
	benchBF(b, func(queries, db *vec.Dataset) {
		SearchChunked(queries, db, metric.Euclidean{}, nil)
	})
}

func BenchmarkBFTiledExact(b *testing.B) {
	benchBF(b, func(queries, db *vec.Dataset) {
		Search(queries, db, metric.Euclidean{}, nil)
	})
}

func BenchmarkBFPerQuery(b *testing.B) {
	benchBF(b, func(queries, db *vec.Dataset) {
		searchPerQuery(queries, db, metric.Euclidean{}, nil)
	})
}

func BenchmarkBFTiledK10(b *testing.B) {
	benchBF(b, func(queries, db *vec.Dataset) {
		SearchKFast(queries, db, 10, metric.Euclidean{}, nil)
	})
}
