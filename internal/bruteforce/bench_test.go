package bruteforce

import (
	"math/rand"
	"testing"

	"repro/internal/metric"
	"repro/internal/vec"
)

func benchData(n, dim int) (*vec.Dataset, []float32) {
	rng := rand.New(rand.NewSource(5))
	db := vec.New(dim, n)
	row := make([]float32, dim)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Float32()
		}
		db.Append(row)
	}
	q := make([]float32, dim)
	for j := range q {
		q[j] = rng.Float32()
	}
	return db, q
}

func BenchmarkSearchOne20k(b *testing.B) {
	db, q := benchData(20000, 32)
	m := metric.Euclidean{}
	b.SetBytes(int64(db.N() * db.Dim * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SearchOne(q, db, m, nil)
	}
}

func BenchmarkSearchOneK10(b *testing.B) {
	db, q := benchData(20000, 32)
	m := metric.Euclidean{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SearchOneK(q, db, 10, m, nil)
	}
}

func BenchmarkBatchSearch(b *testing.B) {
	db, _ := benchData(5000, 32)
	queries, _ := benchData(64, 32)
	m := metric.Euclidean{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Search(queries, db, m, nil)
	}
}

func BenchmarkRangeSearch(b *testing.B) {
	db, q := benchData(20000, 32)
	m := metric.Euclidean{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RangeSearch(q, db, 0.5, m, nil)
	}
}
