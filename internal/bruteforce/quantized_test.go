package bruteforce

import (
	"math"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// quantTieRich builds a dataset on a coarse half-integer grid with ~20%
// duplicated rows — the adversarial tie regime for the two-pass scan's
// candidate heap boundary. Mirrors the equivalence-harness generator.
func quantTieRich(rng *rand.Rand, n, dim int) *vec.Dataset {
	d := vec.New(dim, n)
	row := make([]float32, dim)
	for i := 0; i < n; i++ {
		if i > 0 && rng.Intn(5) == 0 {
			copy(row, d.Row(rng.Intn(i)))
		} else {
			for j := range row {
				row[j] = float32(rng.Intn(17)-8) * 0.5
			}
		}
		d.Append(row)
	}
	return d
}

func neighborsBitEqual(a, b []par.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// distancesBitEqual checks the ordering-tie grade: the reported distance
// at every rank is bit-identical, with id substitution allowed inside
// exact-tie classes.
func distancesBitEqual(a, b []par.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i].Dist) != math.Float64bits(b[i].Dist) {
			return false
		}
	}
	return true
}

// TestSearchKQuantizedMatchesExactRandom: on tie-free random data the
// two-pass scan must reproduce SearchK bit for bit — ids, ordering and
// reported distance bits.
func TestSearchKQuantizedMatchesExactRandom(t *testing.T) {
	m := metric.Euclidean{}
	for _, dim := range []int{1, 3, 17, 64} {
		rng := rand.New(rand.NewSource(int64(100 + dim)))
		db := randomDataset(rng, 900, dim)
		queries := randomDataset(rng, 25, dim)
		for _, k := range []int{1, 3, 10} {
			want := SearchK(queries, db, k, m, nil)
			got := SearchKQuantized(queries, db, k, m, nil)
			for i := range want {
				if !neighborsBitEqual(got[i], want[i]) {
					t.Fatalf("dim=%d k=%d query %d:\n got %v\nwant %v", dim, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSearchKQuantizedTieRich: on the adversarial tie grid the reported
// distances must still match SearchK bit for bit at every rank (ids may
// legally swap inside exact-tie classes when the quantized candidate pass
// truncates a duplicate class at the over-fetch boundary).
func TestSearchKQuantizedTieRich(t *testing.T) {
	m := metric.Euclidean{}
	for _, dim := range []int{1, 3, 17, 64} {
		rng := rand.New(rand.NewSource(int64(200 + dim)))
		db := quantTieRich(rng, 1000, dim)
		queries := quantTieRich(rng, 20, dim)
		// Plant exact self-queries so the zero-distance tie class is hit.
		copy(queries.Row(0), db.Row(rng.Intn(db.N())))
		for _, k := range []int{1, 3, 10} {
			want := SearchK(queries, db, k, m, nil)
			got := SearchKQuantized(queries, db, k, m, nil)
			for i := range want {
				if !distancesBitEqual(got[i], want[i]) {
					t.Fatalf("dim=%d k=%d query %d: distance multiset diverged\n got %v\nwant %v",
						dim, k, i, got[i], want[i])
				}
				for j, nb := range got[i] {
					if d := m.Distance(queries.Row(i), db.Row(nb.ID)); d != nb.Dist {
						t.Fatalf("dim=%d k=%d query %d rank %d: id %d does not achieve reported distance (%v vs %v)",
							dim, k, i, j, nb.ID, nb.Dist, d)
					}
				}
			}
		}
	}
}

// TestSearchKQuantizedExactWhenOverfetchCoversN: whenever k' ≥ n the
// candidate pass keeps every row and the result is exact by construction
// — even on data crafted to maximize quantization error.
func TestSearchKQuantizedExactWhenOverfetchCoversN(t *testing.T) {
	m := metric.Euclidean{}
	rng := rand.New(rand.NewSource(7))
	for _, dim := range []int{1, 5, 33} {
		db := vec.New(dim, 40)
		row := make([]float32, dim)
		for i := 0; i < 40; i++ {
			for j := range row {
				// Huge magnitude spread: quantization noise dwarfs many gaps.
				row[j] = (rng.Float32()*2 - 1) * float32(math.Pow(10, float64(rng.Intn(9)-4)))
			}
			db.Append(row)
		}
		queries := db
		if kp := quantPassK(1, db.N()); kp < db.N() {
			t.Fatalf("dim=%d: expected full coverage, kp=%d n=%d", dim, kp, db.N())
		}
		for _, k := range []int{1, 4, 45} {
			want := SearchK(queries, db, k, m, nil)
			got := SearchKQuantized(queries, db, k, m, nil)
			for i := range want {
				if !neighborsBitEqual(got[i], want[i]) {
					t.Fatalf("dim=%d k=%d query %d:\n got %v\nwant %v", dim, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSearchKQuantizedRecallAtK: recall@k of the two-pass scan is 1.0 on
// the fuzz-style corpora — every reported rank carries the true k-NN
// distance (the standard tie-aware recall definition).
func TestSearchKQuantizedRecallAtK(t *testing.T) {
	m := metric.Euclidean{}
	total, hit := 0, 0
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dim := []int{1, 3, 17, 64}[rng.Intn(4)]
		db := quantTieRich(rng, 200+rng.Intn(800), dim)
		queries := quantTieRich(rng, 10, dim)
		k := 1 + rng.Intn(10)
		want := SearchK(queries, db, k, m, nil)
		got := SearchKQuantized(queries, db, k, m, nil)
		for i := range want {
			for j := range want[i] {
				total++
				if j < len(got[i]) && got[i][j].Dist == want[i][j].Dist {
					hit++
				}
			}
		}
	}
	if total == 0 || hit != total {
		t.Fatalf("recall@k = %d/%d, want 1.0", hit, total)
	}
}

func TestSearchQuantizedMatchesSearch(t *testing.T) {
	m := metric.Euclidean{}
	rng := rand.New(rand.NewSource(11))
	db := randomDataset(rng, 700, 9)
	queries := randomDataset(rng, 30, 9)
	want := Search(queries, db, m, nil)
	got := SearchQuantized(queries, db, m, nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestSearchKQuantizedEdgeCases(t *testing.T) {
	m := metric.Euclidean{}
	var empty vec.Dataset
	rng := rand.New(rand.NewSource(13))
	db := randomDataset(rng, 10, 4)
	queries := randomDataset(rng, 3, 4)

	if got := SearchKQuantized(&empty, db, 3, m, nil); len(got) != 0 {
		t.Fatalf("empty queries: %v", got)
	}
	got := SearchKQuantized(queries, &vec.Dataset{Dim: 4}, 3, m, nil)
	if len(got) != 3 || got[0] != nil {
		t.Fatalf("empty db: %v", got)
	}
	if got := SearchKQuantized(queries, db, 0, m, nil); len(got) != 3 || got[0] != nil {
		t.Fatalf("k=0: %v", got)
	}
	res := SearchQuantized(queries, &vec.Dataset{Dim: 4}, m, nil)
	for _, r := range res {
		if r.ID != -1 || !math.IsInf(r.Dist, 1) {
			t.Fatalf("empty db 1-NN: %+v", r)
		}
	}
	// k > n clamps.
	full := SearchKQuantized(queries, db, 25, m, nil)
	for i, ns := range full {
		if len(ns) != db.N() {
			t.Fatalf("query %d: k>n returned %d neighbors, want %d", i, len(ns), db.N())
		}
	}
}

func TestSearchKQuantizedViewMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	db := randomDataset(rng, 50, 4)
	other := randomDataset(rng, 40, 4)
	v := metric.NewQuantizedView(other.Data, other.Dim)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on view/db mismatch")
		}
	}()
	SearchKQuantizedView(randomDataset(rng, 1, 4), db, 1, v, metric.Euclidean{}, nil)
}

func TestSearchKQuantizedCountsEvaluations(t *testing.T) {
	m := metric.Euclidean{}
	rng := rand.New(rand.NewSource(19))
	db := randomDataset(rng, 500, 6)
	queries := randomDataset(rng, 4, 6)
	k := 2
	var c Counter
	SearchKQuantized(queries, db, k, m, &c)
	kp := quantPassK(k, db.N())
	want := int64(queries.N() * (db.N() + kp))
	if c.Load() != want {
		t.Fatalf("evals=%d, want %d (n=%d + kp=%d per query)", c.Load(), want, db.N(), kp)
	}
}

// TestRescoreKQuantizedMatchesRescoreK: the candidate-set form agrees
// with the exact RescoreK at the ordering-tie grade, and bit-for-bit
// when the list fits the over-fetch budget.
func TestRescoreKQuantizedMatchesRescoreK(t *testing.T) {
	m := metric.Euclidean{}
	rng := rand.New(rand.NewSource(23))
	db := randomDataset(rng, 1200, 12)
	v := metric.NewQuantizedView(db.Data, db.Dim)
	xker := metric.NewKernel(m)
	for trial := 0; trial < 10; trial++ {
		q := randomDataset(rng, 1, 12).Row(0)
		// Large candidate list: quantized pre-rank engages.
		ids := make([]int32, 0, 600)
		for _, p := range rng.Perm(db.N())[:600] {
			ids = append(ids, int32(p))
		}
		k := 1 + rng.Intn(8)
		want := RescoreK(xker, q, db, ids, k, nil)
		got := RescoreKQuantized(v, q, db, ids, k, m, nil)
		if !neighborsBitEqual(got, want) {
			t.Fatalf("trial %d k=%d:\n got %v\nwant %v", trial, k, got, want)
		}
		// Short list: falls back to plain RescoreK, trivially identical.
		short := ids[:20]
		want = RescoreK(xker, q, db, short, k, nil)
		got = RescoreKQuantized(v, q, db, short, k, m, nil)
		if !neighborsBitEqual(got, want) {
			t.Fatalf("trial %d short list k=%d:\n got %v\nwant %v", trial, k, got, want)
		}
		if got := RescoreKQuantized(v, q, db, nil, k, m, nil); got != nil {
			t.Fatalf("empty candidate list: %v", got)
		}
		if got := RescoreKQuantized(nil, q, db, ids, k, m, nil); !neighborsBitEqual(got, RescoreK(xker, q, db, ids, k, nil)) {
			t.Fatalf("nil view must fall back to RescoreK")
		}
	}
}

// TestQuantizedTwoPassFasterSmoke pins the end-to-end claim on the CI
// box: at n=100k/dim=64 the two-pass quantized k-NN scan beats the
// chunked float32 scan. Gated like TestChunkedRowFasterSmoke because
// wall-clock ratios are meaningless on loaded shared machines.
func TestQuantizedTwoPassFasterSmoke(t *testing.T) {
	if os.Getenv("RBC_BENCH_SMOKE") == "" {
		t.Skip("set RBC_BENCH_SMOKE=1 to run wall-clock smoke tests")
	}
	const n, dim, nq, k = 100_000, 64, 16, 10
	rng := rand.New(rand.NewSource(29))
	db := randomDataset(rng, n, dim)
	queries := randomDataset(rng, nq, dim)
	m := metric.Euclidean{}
	v := metric.NewQuantizedView(db.Data, db.Dim)

	best := func(f func()) time.Duration {
		b := time.Duration(math.MaxInt64)
		for r := 0; r < 5; r++ {
			start := time.Now()
			f()
			if el := time.Since(start); el < b {
				b = el
			}
		}
		return b
	}
	chunked := best(func() { SearchKChunked(queries, db, k, m, nil) })
	quant := best(func() { SearchKQuantizedView(queries, db, k, v, m, nil) })
	ratio := float64(chunked) / float64(quant)
	t.Logf("n=%d dim=%d k=%d: chunked=%v quantized=%v ratio=%.2f", n, dim, k, chunked, quant, ratio)
	if ratio <= 1 {
		t.Fatalf("two-pass quantized scan not faster: chunked=%v quantized=%v ratio=%.2f", chunked, quant, ratio)
	}
}

func BenchmarkSearchKQuantized100k(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	db := randomDataset(rng, 100_000, 64)
	queries := randomDataset(rng, 8, 64)
	m := metric.Euclidean{}
	v := metric.NewQuantizedView(db.Data, db.Dim)
	b.SetBytes(int64(queries.N()) * int64(v.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SearchKQuantizedView(queries, db, 10, v, m, nil)
	}
}

func BenchmarkSearchKChunked100k(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	db := randomDataset(rng, 100_000, 64)
	queries := randomDataset(rng, 8, 64)
	m := metric.Euclidean{}
	b.SetBytes(int64(queries.N()) * int64(db.N()) * int64(db.Dim) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SearchKChunked(queries, db, 10, m, nil)
	}
}
