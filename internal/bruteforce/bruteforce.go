// Package bruteforce implements the paper's brute-force primitive (§3):
// exhaustive distance computation followed by a comparison step. Every RBC
// algorithm is assembled from calls into this package.
//
// Two decompositions are provided, mirroring the paper:
//
//   - batch: BF(Q,X) for a set of queries — the "matrix-matrix" shape,
//     computed as query-tile × point-tile loops over the tiled kernels in
//     internal/metric, so each point tile loaded into cache is reused by a
//     whole block of queries (Search, SearchK, SearchFast, SearchKFast);
//   - streaming: BF(q,X) for one query — the "matrix-vector" shape,
//     parallelized over database blocks with a final reduction (SearchOne).
//
// All comparison steps run in squared-distance (ordering) space; the sqrt
// is applied once per returned neighbor at the API boundary. Search and
// SearchK use the exact-mode kernels: per-pair arithmetic, reported
// distances and tie-breaking are bit-identical to an ordering-space
// per-query scan regardless of tile shape. Relative to the legacy
// post-sqrt per-query scan, selections agree except when two *distinct*
// squared distances round to the same sqrt (a one-ulp razor tie the old
// comparison could not see); there the ordering-space paths return the
// strictly nearer point. SearchFast and SearchKFast use the Gram-fast
// kernels (the Gram decomposition for Euclidean), which can additionally
// differ from the reference in the trailing ulps of the distance.
// SearchChunked and SearchKChunked use the chunked float32 kernels —
// conversion-free vectorizable inner loops whose distances carry a
// bounded relative error (metric.ChunkedErrorBound) instead of ulp drift;
// SearchWith and SearchKWith accept any caller-resolved kernel grade.
//
// All functions optionally report work through a Counter so experiments
// can measure distance evaluations independent of the machine.
package bruteforce

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// Result is the answer to a 1-NN query: the database id of the nearest
// point and its distance. ID is -1 when the database was empty.
type Result struct {
	ID   int
	Dist float64
}

// Counter accumulates distance evaluations across goroutines. The zero
// value is ready to use. A nil *Counter is accepted everywhere and simply
// not updated.
type Counter struct {
	n atomic.Int64
}

// Add records n distance evaluations.
func (c *Counter) Add(n int) {
	if c != nil {
		c.n.Add(int64(n))
	}
}

// Load returns the total recorded so far.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	if c != nil {
		c.n.Store(0)
	}
}

// scanChunk is how many database rows a worker scans per scratch refill.
// It is sized so the scratch distance buffer stays inside L1.
const scanChunk = 1024

// scanFlatBest is the per-query reference scan retained from before the
// tiled kernels: one sqrt per candidate, database re-streamed per query.
// It remains the baseline that BenchmarkBFPerQuery and the exactness tests
// measure the tiled paths against.
func scanFlatBest(q, flat []float32, dim, base int, m metric.Metric[[]float32], c *Counter) Result {
	npts := len(flat) / dim
	best := Result{ID: -1, Dist: math.Inf(1)}
	var scratch [scanChunk]float64
	for lo := 0; lo < npts; lo += scanChunk {
		hi := lo + scanChunk
		if hi > npts {
			hi = npts
		}
		out := scratch[:hi-lo]
		metric.BatchDistances(m, q, flat[lo*dim:hi*dim], dim, out)
		for i, d := range out {
			if d < best.Dist {
				best = Result{ID: base + lo + i, Dist: d}
			}
		}
	}
	c.Add(npts)
	return best
}

// searchPerQuery is the pre-tiling batch implementation (one full database
// stream per query), kept as the reference and benchmark baseline.
func searchPerQuery(queries, db *vec.Dataset, m metric.Metric[[]float32], c *Counter) []Result {
	out := make([]Result, queries.N())
	par.ForEach(queries.N(), 1, func(i int) {
		out[i] = scanFlatBest(queries.Row(i), db.Data, db.Dim, 0, m, c)
	})
	return out
}

// scanBestOrd is the ordering-space streaming scan: like scanFlatBest but
// without the per-candidate sqrt. The returned Result carries an ordering
// distance; the caller converts at the boundary.
func scanBestOrd(ker *metric.Kernel, q, flat []float32, dim, base int, c *Counter) Result {
	npts := len(flat) / dim
	best := Result{ID: -1, Dist: math.Inf(1)}
	var scratch [scanChunk]float64
	for lo := 0; lo < npts; lo += scanChunk {
		hi := lo + scanChunk
		if hi > npts {
			hi = npts
		}
		out := scratch[:hi-lo]
		ker.Ordering(q, flat[lo*dim:hi*dim], dim, out)
		for i, d := range out {
			if d < best.Dist {
				best = Result{ID: base + lo + i, Dist: d}
			}
		}
	}
	c.Add(npts)
	return best
}

// SearchOne finds the nearest neighbor of a single query with the
// streaming decomposition: the database is split into blocks scanned in
// parallel, and the per-block minima are combined with a tree reduction —
// exactly the parallel-reduce comparison step of §3.
func SearchOne(q []float32, db *vec.Dataset, m metric.Metric[[]float32], c *Counter) Result {
	n := db.N()
	if n == 0 {
		return Result{ID: -1, Dist: math.Inf(1)}
	}
	ker := metric.NewKernel(m)
	workers := par.Workers()
	var best Result
	if workers == 1 || n < 4*scanChunk {
		best = scanBestOrd(ker, q, db.Data, db.Dim, 0, c)
	} else {
		blocks := workers
		parts := make([]Result, blocks)
		var wg sync.WaitGroup
		wg.Add(blocks)
		size := n / blocks
		rem := n % blocks
		lo := 0
		for b := 0; b < blocks; b++ {
			hi := lo + size
			if b < rem {
				hi++
			}
			go func(b, lo, hi int) {
				defer wg.Done()
				parts[b] = scanBestOrd(ker, q, db.Data[lo*db.Dim:hi*db.Dim], db.Dim, lo, c)
			}(b, lo, hi)
			lo = hi
		}
		wg.Wait()
		best = par.TreeReduce(parts, func(a, b Result) Result {
			if b.Dist < a.Dist || (b.Dist == a.Dist && b.ID < a.ID) {
				return b
			}
			return a
		})
	}
	best.Dist = ker.ToDistance(best.Dist)
	return best
}

// Search is BF(Q,X): the exact nearest neighbor in db for every query,
// computed as query-tile × point-tile loops over the exact-mode tiled
// kernel (bit-identical to the per-query ordering-space reference, ties
// included; see the package comment for the one sqrt-rounding caveat
// against the legacy post-sqrt scan).
func Search(queries, db *vec.Dataset, m metric.Metric[[]float32], c *Counter) []Result {
	return searchTiled(queries, db, metric.NewKernel(m), c)
}

// SearchFast is Search on the Gram-fast kernel (the Gram decomposition
// with precomputed squared norms for Euclidean). Distances can differ
// from the per-query reference in the trailing ulps; ids agree except at
// ties closer than that noise. Exact duplicates still tie toward the
// lower id.
func SearchFast(queries, db *vec.Dataset, m metric.Metric[[]float32], c *Counter) []Result {
	return searchTiled(queries, db, metric.NewFastKernel(m), c)
}

// SearchChunked is Search on the chunked float32 kernel: distances carry
// a bounded relative error (metric.ChunkedErrorBound) rather than ulp
// drift, ids agree except at ties within that noise, and exact duplicates
// still tie toward the lower id (identical rows score exactly zero).
func SearchChunked(queries, db *vec.Dataset, m metric.Metric[[]float32], c *Counter) []Result {
	return searchTiled(queries, db, metric.NewChunkedKernel(m), c)
}

// SearchWith is Search on a caller-resolved kernel, for consumers that
// select the grade at run time (the rbc-bench -kernel knob).
func SearchWith(queries, db *vec.Dataset, ker *metric.Kernel, c *Counter) []Result {
	return searchTiled(queries, db, ker, c)
}

func searchTiled(queries, db *vec.Dataset, ker *metric.Kernel, c *Counter) []Result {
	nq := queries.N()
	out := make([]Result, nq)
	if nq == 0 {
		return out
	}
	n, dim := db.N(), db.Dim
	if n == 0 {
		for i := range out {
			out[i] = Result{ID: -1, Dist: math.Inf(1)}
		}
		return out
	}
	pnorms := normsParallel(ker, db)
	tq, tp := metric.AutoTileShape(dim)
	par.For(nq, 1, func(lo, hi int) {
		sc := par.GetScratch()
		defer par.PutScratch(sc)
		ts := metric.GetTileScratch()
		defer metric.PutTileScratch(ts)
		tile := sc.Float64(0, tq*tp)
		bestOrd := sc.Float64(1, tq)
		bestID := sc.Ints(0, tq)
		for q0 := lo; q0 < hi; q0 += tq {
			q1 := q0 + tq
			if q1 > hi {
				q1 = hi
			}
			bq := q1 - q0
			qflat := queries.Data[q0*dim : q1*dim]
			qnorms := ker.Norms(qflat, dim, sc.Float64(2, bq))
			for i := 0; i < bq; i++ {
				bestOrd[i] = math.Inf(1)
				bestID[i] = -1
			}
			for p0 := 0; p0 < n; p0 += tp {
				p1 := p0 + tp
				if p1 > n {
					p1 = n
				}
				bp := p1 - p0
				var pn []float64
				if pnorms != nil {
					pn = pnorms[p0:p1]
				}
				t := tile[:bq*bp]
				ker.Tile(qflat, qnorms, db.Data[p0*dim:p1*dim], pn, dim, t, ts)
				for i := 0; i < bq; i++ {
					row := t[i*bp : (i+1)*bp]
					bo, bi := bestOrd[i], bestID[i]
					for j, o := range row {
						if o < bo {
							bo, bi = o, p0+j
						}
					}
					bestOrd[i], bestID[i] = bo, bi
				}
			}
			for i := 0; i < bq; i++ {
				out[q0+i] = Result{ID: bestID[i], Dist: ker.ToDistance(bestOrd[i])}
			}
		}
	})
	c.Add(nq * n)
	return out
}

// normsParallel precomputes the database's squared norms for kernels that
// consume them (nil otherwise), amortizing the pass over the whole batch.
func normsParallel(ker *metric.Kernel, db *vec.Dataset) []float64 {
	if !ker.NeedsNorms() {
		return nil
	}
	n, dim := db.N(), db.Dim
	out := make([]float64, n)
	par.For(n, 1024, func(lo, hi int) {
		ker.Norms(db.Data[lo*dim:hi*dim], dim, out[lo:hi])
	})
	return out
}

// SearchK is the k-NN generalization of Search: for each query it returns
// the k nearest database points sorted by ascending distance (ties toward
// the lower id), bit-identical to the per-query ordering-space reference
// (SearchOneK). When the database has fewer than k points, all of them
// are returned.
func SearchK(queries, db *vec.Dataset, k int, m metric.Metric[[]float32], c *Counter) [][]par.Neighbor {
	return searchKTiled(queries, db, k, metric.NewKernel(m), c)
}

// SearchKFast is SearchK on the Gram-fast kernel; see SearchFast for the
// reproducibility caveat.
func SearchKFast(queries, db *vec.Dataset, k int, m metric.Metric[[]float32], c *Counter) [][]par.Neighbor {
	return searchKTiled(queries, db, k, metric.NewFastKernel(m), c)
}

// SearchKChunked is SearchK on the chunked float32 kernel; see
// SearchChunked for the error contract.
func SearchKChunked(queries, db *vec.Dataset, k int, m metric.Metric[[]float32], c *Counter) [][]par.Neighbor {
	return searchKTiled(queries, db, k, metric.NewChunkedKernel(m), c)
}

// SearchKWith is SearchK on a caller-resolved kernel.
func SearchKWith(queries, db *vec.Dataset, k int, ker *metric.Kernel, c *Counter) [][]par.Neighbor {
	return searchKTiled(queries, db, k, ker, c)
}

func searchKTiled(queries, db *vec.Dataset, k int, ker *metric.Kernel, c *Counter) [][]par.Neighbor {
	nq := queries.N()
	out := make([][]par.Neighbor, nq)
	if nq == 0 {
		return out
	}
	n, dim := db.N(), db.Dim
	if n == 0 || k <= 0 {
		return out
	}
	pnorms := normsParallel(ker, db)
	tq, tp := metric.AutoTileShape(dim)
	par.For(nq, 1, func(lo, hi int) {
		sc := par.GetScratch()
		defer par.PutScratch(sc)
		ts := metric.GetTileScratch()
		defer metric.PutTileScratch(ts)
		tile := sc.Float64(0, tq*tp)
		for q0 := lo; q0 < hi; q0 += tq {
			q1 := q0 + tq
			if q1 > hi {
				q1 = hi
			}
			bq := q1 - q0
			qflat := queries.Data[q0*dim : q1*dim]
			qnorms := ker.Norms(qflat, dim, sc.Float64(2, bq))
			heaps := sc.HeapSlab(bq, k)
			for p0 := 0; p0 < n; p0 += tp {
				p1 := p0 + tp
				if p1 > n {
					p1 = n
				}
				bp := p1 - p0
				var pn []float64
				if pnorms != nil {
					pn = pnorms[p0:p1]
				}
				t := tile[:bq*bp]
				ker.Tile(qflat, qnorms, db.Data[p0*dim:p1*dim], pn, dim, t, ts)
				for i := 0; i < bq; i++ {
					row := t[i*bp : (i+1)*bp]
					h := heaps[i]
					for j, o := range row {
						h.Push(p0+j, o)
					}
				}
			}
			for i := 0; i < bq; i++ {
				res := heaps[i].Results()
				for r := range res {
					res[r].Dist = ker.ToDistance(res[r].Dist)
				}
				// Re-establish (dist, id) order: the conversion can map
				// distinct ordering values to equal distances.
				par.SortNeighbors(res)
				out[q0+i] = res
			}
		}
	})
	c.Add(nq * n)
	return out
}

// SearchOneK returns the k nearest neighbors of one query.
func SearchOneK(q []float32, db *vec.Dataset, k int, m metric.Metric[[]float32], c *Counter) []par.Neighbor {
	n := db.N()
	if n == 0 || k <= 0 {
		return nil
	}
	ker := metric.NewKernel(m)
	sc := par.GetScratch()
	defer par.PutScratch(sc)
	h := sc.Heap(0, k)
	var scratch [scanChunk]float64
	for lo := 0; lo < n; lo += scanChunk {
		hi := lo + scanChunk
		if hi > n {
			hi = n
		}
		out := scratch[:hi-lo]
		ker.Ordering(q, db.Data[lo*db.Dim:hi*db.Dim], db.Dim, out)
		for i, d := range out {
			h.Push(lo+i, d)
		}
	}
	c.Add(n)
	res := h.Results()
	for i := range res {
		res[i].Dist = ker.ToDistance(res[i].Dist)
	}
	par.SortNeighbors(res)
	return res
}

// SearchSubset is BF(q, X[L]): the nearest neighbor of q among the
// database rows listed in ids. Returned IDs are database ids (not list
// positions). Ties break toward the id appearing earliest in ids.
func SearchSubset(q []float32, db *vec.Dataset, ids []int, m metric.Metric[[]float32], c *Counter) Result {
	best := Result{ID: -1, Dist: math.Inf(1)}
	for _, id := range ids {
		d := m.Distance(q, db.Row(id))
		if d < best.Dist {
			best = Result{ID: id, Dist: d}
		}
	}
	c.Add(len(ids))
	return best
}

// rescoreBlock is how many candidate rows RescoreK gathers per kernel
// call; sized so the gathered block and its ordering row stay cache-hot.
const rescoreBlock = 256

// RescoreK ranks the database rows listed in ids by distance to q and
// returns the k nearest, sorted ascending (ties toward the lower id).
// Candidates are gathered into a contiguous scratch block and scored
// through ker's row kernel — the BF(q, X[L]) candidate-rescoring shape
// the approximate backends (lsh bucket unions, kdtree leaf sets) produce
// — so the inner loop runs on the tiled kernel grades instead of
// per-pair Distance calls. Duplicate ids in ids yield duplicate results;
// callers dedupe beforehand. With a fast-grade kernel the returned
// distances inherit that grade's error contract.
func RescoreK(ker *metric.Kernel, q []float32, db *vec.Dataset, ids []int32, k int, c *Counter) []par.Neighbor {
	if k <= 0 || len(ids) == 0 {
		return nil
	}
	dim := db.Dim
	sc := par.GetScratch()
	defer par.PutScratch(sc)
	h := sc.Heap(0, k)
	blk := rescoreBlock
	if blk > len(ids) {
		blk = len(ids)
	}
	buf := sc.Float32(1, blk*dim)
	ords := sc.Float64(0, blk)
	for lo := 0; lo < len(ids); lo += blk {
		hi := lo + blk
		if hi > len(ids) {
			hi = len(ids)
		}
		for t, id := range ids[lo:hi] {
			copy(buf[t*dim:(t+1)*dim], db.Row(int(id)))
		}
		out := ords[:hi-lo]
		ker.Ordering(q, buf[:(hi-lo)*dim], dim, out)
		for t, o := range out {
			h.Push(int(ids[lo+t]), o)
		}
	}
	c.Add(len(ids))
	res := h.Results()
	for i := range res {
		res[i].Dist = ker.ToDistance(res[i].Dist)
	}
	par.SortNeighbors(res)
	return res
}

// RangeSearch returns every database point within distance eps of q,
// sorted by ascending distance (ties by id). The scan runs in ordering
// space with a loose prefilter; candidates that survive it are confirmed
// against eps in distance space, so membership matches the per-query
// reference exactly.
func RangeSearch(q []float32, db *vec.Dataset, eps float64, m metric.Metric[[]float32], c *Counter) []par.Neighbor {
	n := db.N()
	ker := metric.NewKernel(m)
	// Ordering-space prefilter; candidates that survive are confirmed
	// against eps in distance space, and OrderingBound guarantees no
	// boundary point is rejected early.
	epsHi := ker.OrderingBound(math.Abs(eps))
	var hits []par.Neighbor
	var scratch [scanChunk]float64
	for lo := 0; lo < n; lo += scanChunk {
		hi := lo + scanChunk
		if hi > n {
			hi = n
		}
		out := scratch[:hi-lo]
		ker.Ordering(q, db.Data[lo*db.Dim:hi*db.Dim], db.Dim, out)
		for i, o := range out {
			if o <= epsHi {
				if d := ker.ToDistance(o); d <= eps {
					hits = append(hits, par.Neighbor{ID: lo + i, Dist: d})
				}
			}
		}
	}
	c.Add(n)
	sortNeighbors(hits)
	return hits
}

// sortNeighborsCutoff is the slice length above which sortNeighbors hands
// off to sort.Slice; insertion sort wins below it.
const sortNeighborsCutoff = 32

func sortNeighbors(ns []par.Neighbor) {
	if len(ns) > sortNeighborsCutoff {
		par.SortNeighbors(ns)
		return
	}
	for i := 1; i < len(ns); i++ {
		x := ns[i]
		j := i - 1
		for j >= 0 && (ns[j].Dist > x.Dist || (ns[j].Dist == x.Dist && ns[j].ID > x.ID)) {
			ns[j+1] = ns[j]
			j--
		}
		ns[j+1] = x
	}
}
