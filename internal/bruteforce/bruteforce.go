// Package bruteforce implements the paper's brute-force primitive (§3):
// exhaustive distance computation followed by a comparison step. Every RBC
// algorithm is assembled from calls into this package.
//
// Two decompositions are provided, mirroring the paper:
//
//   - batch: BF(Q,X) for a set of queries — the "matrix-matrix" shape,
//     parallelized over queries (Search, SearchK, …);
//   - streaming: BF(q,X) for one query — the "matrix-vector" shape,
//     parallelized over database blocks with a final reduction (SearchOne).
//
// All functions optionally report work through a Counter so experiments
// can measure distance evaluations independent of the machine.
package bruteforce

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// Result is the answer to a 1-NN query: the database id of the nearest
// point and its distance. ID is -1 when the database was empty.
type Result struct {
	ID   int
	Dist float64
}

// Counter accumulates distance evaluations across goroutines. The zero
// value is ready to use. A nil *Counter is accepted everywhere and simply
// not updated.
type Counter struct {
	n atomic.Int64
}

// Add records n distance evaluations.
func (c *Counter) Add(n int) {
	if c != nil {
		c.n.Add(int64(n))
	}
}

// Load returns the total recorded so far.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	if c != nil {
		c.n.Store(0)
	}
}

// scanChunk is how many database rows a worker scans per scratch refill.
// It is sized so the scratch distance buffer stays inside L1.
const scanChunk = 1024

// scanFlatBest returns the nearest point to q within flat (npts points of
// dimension dim), with ids offset by base. Ties break toward the lower id.
func scanFlatBest(q, flat []float32, dim, base int, m metric.Metric[[]float32], c *Counter) Result {
	npts := len(flat) / dim
	best := Result{ID: -1, Dist: math.Inf(1)}
	var scratch [scanChunk]float64
	for lo := 0; lo < npts; lo += scanChunk {
		hi := lo + scanChunk
		if hi > npts {
			hi = npts
		}
		out := scratch[:hi-lo]
		metric.BatchDistances(m, q, flat[lo*dim:hi*dim], dim, out)
		for i, d := range out {
			if d < best.Dist {
				best = Result{ID: base + lo + i, Dist: d}
			}
		}
	}
	c.Add(npts)
	return best
}

// SearchOne finds the nearest neighbor of a single query with the
// streaming decomposition: the database is split into blocks scanned in
// parallel, and the per-block minima are combined with a tree reduction —
// exactly the parallel-reduce comparison step of §3.
func SearchOne(q []float32, db *vec.Dataset, m metric.Metric[[]float32], c *Counter) Result {
	n := db.N()
	if n == 0 {
		return Result{ID: -1, Dist: math.Inf(1)}
	}
	workers := par.Workers()
	if workers == 1 || n < 4*scanChunk {
		return scanFlatBest(q, db.Data, db.Dim, 0, m, c)
	}
	blocks := workers
	parts := make([]Result, blocks)
	var wg sync.WaitGroup
	wg.Add(blocks)
	size := n / blocks
	rem := n % blocks
	lo := 0
	for b := 0; b < blocks; b++ {
		hi := lo + size
		if b < rem {
			hi++
		}
		go func(b, lo, hi int) {
			defer wg.Done()
			parts[b] = scanFlatBest(q, db.Data[lo*db.Dim:hi*db.Dim], db.Dim, lo, m, c)
		}(b, lo, hi)
		lo = hi
	}
	wg.Wait()
	return par.TreeReduce(parts, func(a, b Result) Result {
		if b.Dist < a.Dist || (b.Dist == a.Dist && b.ID < a.ID) {
			return b
		}
		return a
	})
}

// Search is BF(Q,X): the exact nearest neighbor in db for every query,
// parallelized over queries (the matrix-matrix decomposition).
func Search(queries, db *vec.Dataset, m metric.Metric[[]float32], c *Counter) []Result {
	out := make([]Result, queries.N())
	par.ForEach(queries.N(), 1, func(i int) {
		out[i] = scanFlatBest(queries.Row(i), db.Data, db.Dim, 0, m, c)
	})
	return out
}

// SearchK is the k-NN generalization of Search: for each query it returns
// the k nearest database points sorted by ascending distance. When the
// database has fewer than k points, all of them are returned.
func SearchK(queries, db *vec.Dataset, k int, m metric.Metric[[]float32], c *Counter) [][]par.Neighbor {
	out := make([][]par.Neighbor, queries.N())
	par.ForEach(queries.N(), 1, func(i int) {
		out[i] = SearchOneK(queries.Row(i), db, k, m, c)
	})
	return out
}

// SearchOneK returns the k nearest neighbors of one query.
func SearchOneK(q []float32, db *vec.Dataset, k int, m metric.Metric[[]float32], c *Counter) []par.Neighbor {
	n := db.N()
	if n == 0 || k <= 0 {
		return nil
	}
	h := par.NewKHeap(k)
	var scratch [scanChunk]float64
	for lo := 0; lo < n; lo += scanChunk {
		hi := lo + scanChunk
		if hi > n {
			hi = n
		}
		out := scratch[:hi-lo]
		metric.BatchDistances(m, q, db.Data[lo*db.Dim:hi*db.Dim], db.Dim, out)
		for i, d := range out {
			h.Push(lo+i, d)
		}
	}
	c.Add(n)
	return h.Results()
}

// SearchSubset is BF(q, X[L]): the nearest neighbor of q among the
// database rows listed in ids. Returned IDs are database ids (not list
// positions). Ties break toward the id appearing earliest in ids.
func SearchSubset(q []float32, db *vec.Dataset, ids []int, m metric.Metric[[]float32], c *Counter) Result {
	best := Result{ID: -1, Dist: math.Inf(1)}
	for _, id := range ids {
		d := m.Distance(q, db.Row(id))
		if d < best.Dist {
			best = Result{ID: id, Dist: d}
		}
	}
	c.Add(len(ids))
	return best
}

// RangeSearch returns every database point within distance eps of q,
// sorted by ascending distance (ties by id).
func RangeSearch(q []float32, db *vec.Dataset, eps float64, m metric.Metric[[]float32], c *Counter) []par.Neighbor {
	n := db.N()
	var hits []par.Neighbor
	var scratch [scanChunk]float64
	for lo := 0; lo < n; lo += scanChunk {
		hi := lo + scanChunk
		if hi > n {
			hi = n
		}
		out := scratch[:hi-lo]
		metric.BatchDistances(m, q, db.Data[lo*db.Dim:hi*db.Dim], db.Dim, out)
		for i, d := range out {
			if d <= eps {
				hits = append(hits, par.Neighbor{ID: lo + i, Dist: d})
			}
		}
	}
	c.Add(n)
	sortNeighbors(hits)
	return hits
}

func sortNeighbors(ns []par.Neighbor) {
	// Insertion sort: range results are typically short; avoids pulling in
	// sort for a hot path. Falls back gracefully for longer slices too.
	for i := 1; i < len(ns); i++ {
		x := ns[i]
		j := i - 1
		for j >= 0 && (ns[j].Dist > x.Dist || (ns[j].Dist == x.Dist && ns[j].ID > x.ID)) {
			ns[j+1] = ns[j]
			j--
		}
		ns[j+1] = x
	}
}
