package bruteforce

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metric"
	"repro/internal/vec"
)

// chunkedPerQueryRef runs the chunked kernel one query at a time through
// its row scan — the per-query reference for SearchChunked. The chunked
// kernel is tile-shape stable and Tile ≡ Ordering, so the tiled batch
// path must match it bit for bit.
func chunkedPerQueryRef(queries, db *vec.Dataset, m metric.Metric[[]float32]) []Result {
	ker := metric.NewChunkedKernel(m)
	dim := db.Dim
	out := make([]Result, queries.N())
	ords := make([]float64, db.N())
	for i := range out {
		q := queries.Row(i)
		ker.Ordering(q, db.Data, dim, ords)
		best := Result{ID: -1, Dist: math.Inf(1)}
		for j, o := range ords {
			if o < best.Dist {
				best = Result{ID: j, Dist: o}
			}
		}
		best.Dist = ker.ToDistance(best.Dist)
		out[i] = best
	}
	return out
}

func TestChunkedSearchBitIdenticalToChunkedReference(t *testing.T) {
	m := metric.Euclidean{}
	tiledCases(t, func(t *testing.T, queries, db *vec.Dataset) {
		got := SearchChunked(queries, db, m, nil)
		want := chunkedPerQueryRef(queries, db, m)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: SearchChunked %+v, per-query chunked reference %+v", i, got[i], want[i])
			}
		}
	})
}

// TestChunkedSearchAgreesWithNaiveWithinBound: the selected neighbor must
// agree with the naive scan except at ties inside the chunked error
// bound, and the reported distance must stay within that bound of the
// true distance.
func TestChunkedSearchAgreesWithNaiveWithinBound(t *testing.T) {
	m := metric.Euclidean{}
	tiledCases(t, func(t *testing.T, queries, db *vec.Dataset) {
		// The squared-space relative bound loosens to roughly half on the
		// distance after the sqrt; keep the squared-space bound as a
		// conservative distance tolerance.
		bound := metric.ChunkedErrorBound(db.Dim)
		got := SearchChunked(queries, db, m, nil)
		for i := range got {
			want := naiveNN(queries.Row(i), db, m)
			gd := m.Distance(queries.Row(i), db.Row(got[i].ID))
			if got[i].ID != want.ID {
				// A near-tie within the chunked noise may resolve either
				// way; the true distances must then agree within bound.
				if diff := math.Abs(gd - want.Dist); diff > bound*(1+want.Dist) {
					t.Fatalf("query %d: id %d (d=%v) vs naive %d (d=%v), gap %v beyond bound",
						i, got[i].ID, gd, want.ID, want.Dist, diff)
				}
			}
			if diff := math.Abs(got[i].Dist - gd); diff > bound*(1+gd) {
				t.Fatalf("query %d: reported %v, true %v, drift beyond bound", i, got[i].Dist, gd)
			}
		}
	})
}

// TestChunkedSearchKSortedAndDeduplicated mirrors the fast-kernel k-NN
// well-formedness checks on the chunked grade.
func TestChunkedSearchKSortedAndDeduplicated(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	db := dupDataset(rng, 1000, 6)
	queries := randomDataset(rng, 20, 6)
	res := SearchKChunked(queries, db, 9, metric.Euclidean{}, nil)
	for i, nbs := range res {
		if len(nbs) != 9 {
			t.Fatalf("query %d: %d results", i, len(nbs))
		}
		for j := 1; j < len(nbs); j++ {
			if nbs[j].Dist < nbs[j-1].Dist ||
				(nbs[j].Dist == nbs[j-1].Dist && nbs[j].ID <= nbs[j-1].ID) {
				t.Fatalf("query %d: results not sorted by (dist, id): %v", i, nbs)
			}
		}
	}
}

// TestSearchWithMatchesGradeWrappers: the kernel-parameterized entry
// points must be the same computation as the named wrappers.
func TestSearchWithMatchesGradeWrappers(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	db := randomDataset(rng, 900, 8)
	queries := randomDataset(rng, 31, 8)
	m := metric.Euclidean{}
	for _, tc := range []struct {
		name string
		ker  *metric.Kernel
		want []Result
	}{
		{"exact", metric.NewKernel(m), Search(queries, db, m, nil)},
		{"fast", metric.NewFastKernel(m), SearchFast(queries, db, m, nil)},
		{"chunked", metric.NewChunkedKernel(m), SearchChunked(queries, db, m, nil)},
	} {
		got := SearchWith(queries, db, tc.ker, nil)
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%s query %d: SearchWith %+v, wrapper %+v", tc.name, i, got[i], tc.want[i])
			}
		}
		gotK := SearchKWith(queries, db, 5, tc.ker, nil)
		wantK := searchKTiled(queries, db, 5, tc.ker, nil)
		for i := range gotK {
			for j := range wantK[i] {
				if gotK[i][j] != wantK[i][j] {
					t.Fatalf("%s query %d pos %d: %+v vs %+v", tc.name, i, j, gotK[i][j], wantK[i][j])
				}
			}
		}
	}
}

// TestRescoreK: rescoring a candidate list must match scoring those rows
// through the same kernel directly, handle k > len(ids), and count evals.
func TestRescoreK(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	db := randomDataset(rng, 500, 7)
	q := randomDataset(rng, 1, 7).Row(0)
	ids := make([]int32, 0, 300)
	for i := 0; i < 300; i++ {
		ids = append(ids, int32(rng.Intn(db.N())))
	}
	// Dedupe like callers do.
	seen := map[int32]bool{}
	uniq := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			uniq = append(uniq, id)
		}
	}
	for _, grade := range []metric.Grade{metric.GradeExact, metric.GradeChunked} {
		ker := metric.NewGradeKernel(metric.Euclidean{}, grade)
		var c Counter
		got := RescoreK(ker, q, db, uniq, 9, &c)
		if c.Load() != int64(len(uniq)) {
			t.Fatalf("%v: counted %d evals, want %d", grade, c.Load(), len(uniq))
		}
		// Reference: score every candidate through the same kernel's row
		// scan one at a time.
		ord := make([]float64, 1)
		type cand struct {
			id int
			d  float64
		}
		ref := make([]cand, 0, len(uniq))
		for _, id := range uniq {
			ker.Ordering(q, db.Row(int(id)), db.Dim, ord)
			ref = append(ref, cand{int(id), ker.ToDistance(ord[0])})
		}
		for j := 1; j < len(got); j++ {
			if got[j].Dist < got[j-1].Dist {
				t.Fatalf("%v: not sorted at %d", grade, j)
			}
		}
		if len(got) != 9 {
			t.Fatalf("%v: %d results, want 9", grade, len(got))
		}
		// Every returned (id, dist) must be present in the reference with
		// identical bits, and no reference candidate may beat the worst
		// returned one.
		refDist := map[int]float64{}
		for _, r := range ref {
			refDist[r.id] = r.d
		}
		worst := got[len(got)-1].Dist
		for _, nb := range got {
			if d, ok := refDist[nb.ID]; !ok || d != nb.Dist {
				t.Fatalf("%v: returned (%d, %v), reference has %v", grade, nb.ID, nb.Dist, d)
			}
		}
		kept := map[int]bool{}
		for _, nb := range got {
			kept[nb.ID] = true
		}
		for _, r := range ref {
			if !kept[r.id] && r.d < worst {
				t.Fatalf("%v: candidate (%d, %v) beats worst returned %v but was dropped", grade, r.id, r.d, worst)
			}
		}
	}
	if got := RescoreK(metric.NewKernel(metric.Euclidean{}), q, db, uniq[:3], 10, nil); len(got) != 3 {
		t.Fatalf("k > len(ids): %d results, want 3", len(got))
	}
	if got := RescoreK(metric.NewKernel(metric.Euclidean{}), q, db, nil, 5, nil); got != nil {
		t.Fatalf("empty ids: %v", got)
	}
}
