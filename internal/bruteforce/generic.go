package bruteforce

import (
	"math"

	"repro/internal/metric"
	"repro/internal/par"
)

// This file carries the generic (arbitrary point type) variants of the
// brute-force primitive, used by the RBC over non-vector metric spaces
// such as strings under edit distance or graph nodes under shortest-path
// distance.

// SearchOneGeneric returns the nearest neighbor of q among db under m.
func SearchOneGeneric[P any](q P, db []P, m metric.Metric[P], c *Counter) Result {
	best := Result{ID: -1, Dist: math.Inf(1)}
	for i := range db {
		d := m.Distance(q, db[i])
		if d < best.Dist {
			best = Result{ID: i, Dist: d}
		}
	}
	c.Add(len(db))
	return best
}

// SearchGeneric is BF(Q,X) for arbitrary point types, parallel over
// queries.
func SearchGeneric[P any](queries, db []P, m metric.Metric[P], c *Counter) []Result {
	out := make([]Result, len(queries))
	par.ForEach(len(queries), 1, func(i int) {
		out[i] = SearchOneGeneric(queries[i], db, m, c)
	})
	return out
}

// SearchOneKGeneric returns the k nearest neighbors of q among db, sorted
// by ascending distance.
func SearchOneKGeneric[P any](q P, db []P, k int, m metric.Metric[P], c *Counter) []par.Neighbor {
	if len(db) == 0 || k <= 0 {
		return nil
	}
	h := par.NewKHeap(k)
	for i := range db {
		h.Push(i, m.Distance(q, db[i]))
	}
	c.Add(len(db))
	return h.Results()
}

// SearchSubsetGeneric is BF(q, X[L]) for arbitrary point types.
func SearchSubsetGeneric[P any](q P, db []P, ids []int, m metric.Metric[P], c *Counter) Result {
	best := Result{ID: -1, Dist: math.Inf(1)}
	for _, id := range ids {
		d := m.Distance(q, db[id])
		if d < best.Dist {
			best = Result{ID: id, Dist: d}
		}
	}
	c.Add(len(ids))
	return best
}

// RangeSearchGeneric returns all points of db within eps of q, sorted by
// ascending distance.
func RangeSearchGeneric[P any](q P, db []P, eps float64, m metric.Metric[P], c *Counter) []par.Neighbor {
	var hits []par.Neighbor
	for i := range db {
		if d := m.Distance(q, db[i]); d <= eps {
			hits = append(hits, par.Neighbor{ID: i, Dist: d})
		}
	}
	c.Add(len(db))
	sortNeighbors(hits)
	return hits
}
