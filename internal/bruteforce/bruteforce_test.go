package bruteforce

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/metric"
	"repro/internal/vec"
)

func randomDataset(rng *rand.Rand, n, dim int) *vec.Dataset {
	d := vec.New(dim, n)
	for i := 0; i < n; i++ {
		row := make([]float32, dim)
		for j := range row {
			row[j] = rng.Float32()*2 - 1
		}
		d.Append(row)
	}
	return d
}

// naiveNN is the reference implementation used to validate all paths.
func naiveNN(q []float32, db *vec.Dataset, m metric.Metric[[]float32]) Result {
	best := Result{ID: -1, Dist: math.Inf(1)}
	for i := 0; i < db.N(); i++ {
		if d := m.Distance(q, db.Row(i)); d < best.Dist {
			best = Result{ID: i, Dist: d}
		}
	}
	return best
}

func TestSearchOneMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := randomDataset(rng, 5000, 8)
	m := metric.Euclidean{}
	for trial := 0; trial < 20; trial++ {
		q := randomDataset(rng, 1, 8).Row(0)
		got := SearchOne(q, db, m, nil)
		want := naiveNN(q, db, m)
		if got != want {
			t.Fatalf("trial %d: got %+v want %+v", trial, got, want)
		}
	}
}

func TestSearchOneEmptyDB(t *testing.T) {
	var db vec.Dataset
	r := SearchOne([]float32{1}, &db, metric.Euclidean{}, nil)
	if r.ID != -1 || !math.IsInf(r.Dist, 1) {
		t.Fatalf("empty db: %+v", r)
	}
}

func TestSearchBatchMatchesPerQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := randomDataset(rng, 600, 6)
	queries := randomDataset(rng, 40, 6)
	m := metric.Euclidean{}
	got := Search(queries, db, m, nil)
	for i := 0; i < queries.N(); i++ {
		want := naiveNN(queries.Row(i), db, m)
		if got[i] != want {
			t.Fatalf("query %d: got %+v want %+v", i, got[i], want)
		}
	}
}

func TestSearchCountsEvaluations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randomDataset(rng, 100, 4)
	queries := randomDataset(rng, 7, 4)
	var c Counter
	Search(queries, db, metric.Euclidean{}, &c)
	if c.Load() != 700 {
		t.Fatalf("evals=%d, want 700", c.Load())
	}
	c.Reset()
	if c.Load() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestNilCounterIsSafe(t *testing.T) {
	var c *Counter
	c.Add(5)
	if c.Load() != 0 {
		t.Fatal("nil counter should read 0")
	}
	c.Reset()
}

func TestSearchKMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := randomDataset(rng, 300, 5)
	queries := randomDataset(rng, 10, 5)
	m := metric.Euclidean{}
	const k = 7
	res := SearchK(queries, db, k, m, nil)
	for qi := 0; qi < queries.N(); qi++ {
		q := queries.Row(qi)
		// Reference: all distances sorted.
		type pair struct {
			id int
			d  float64
		}
		all := make([]pair, db.N())
		for i := range all {
			all[i] = pair{i, m.Distance(q, db.Row(i))}
		}
		for i := 0; i < k; i++ {
			mi := i
			for j := i + 1; j < len(all); j++ {
				if all[j].d < all[mi].d || (all[j].d == all[mi].d && all[j].id < all[mi].id) {
					mi = j
				}
			}
			all[i], all[mi] = all[mi], all[i]
			if res[qi][i].ID != all[i].id || res[qi][i].Dist != all[i].d {
				t.Fatalf("q=%d k-th=%d: got %+v want %+v", qi, i, res[qi][i], all[i])
			}
		}
	}
}

func TestSearchKEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := randomDataset(rng, 3, 2)
	q := []float32{0, 0}
	if got := SearchOneK(q, db, 10, metric.Euclidean{}, nil); len(got) != 3 {
		t.Fatalf("k>n should return n results, got %d", len(got))
	}
	if got := SearchOneK(q, db, 0, metric.Euclidean{}, nil); got != nil {
		t.Fatal("k=0 should return nil")
	}
	var empty vec.Dataset
	if got := SearchOneK(q, &empty, 3, metric.Euclidean{}, nil); got != nil {
		t.Fatal("empty db should return nil")
	}
}

func TestSearchSubset(t *testing.T) {
	db := vec.FromRows([][]float32{{0}, {1}, {2}, {3}, {4}})
	q := []float32{3.4}
	var c Counter
	r := SearchSubset(q, db, []int{0, 1, 4}, metric.Euclidean{}, &c)
	if r.ID != 4 {
		t.Fatalf("nearest in subset should be id 4, got %+v", r)
	}
	if c.Load() != 3 {
		t.Fatalf("evals=%d, want 3", c.Load())
	}
	r = SearchSubset(q, db, nil, metric.Euclidean{}, nil)
	if r.ID != -1 {
		t.Fatal("empty subset should return ID -1")
	}
}

func TestRangeSearch(t *testing.T) {
	db := vec.FromRows([][]float32{{0}, {1}, {2}, {3}})
	hits := RangeSearch([]float32{1.25}, db, 1.3, metric.Euclidean{}, nil)
	if len(hits) != 3 {
		t.Fatalf("hits=%v", hits)
	}
	if hits[0].ID != 1 || hits[1].ID != 2 || hits[2].ID != 0 {
		t.Fatalf("order wrong: %v", hits)
	}
	if hits := RangeSearch([]float32{100}, db, 0.5, metric.Euclidean{}, nil); len(hits) != 0 {
		t.Fatal("far query should find nothing")
	}
}

func TestRangeSearchBoundaryInclusive(t *testing.T) {
	db := vec.FromRows([][]float32{{0}, {2}})
	hits := RangeSearch([]float32{1}, db, 1.0, metric.Euclidean{}, nil)
	if len(hits) != 2 {
		t.Fatalf("eps boundary should be inclusive, hits=%v", hits)
	}
}

func TestTieBreaksTowardLowerID(t *testing.T) {
	// Duplicate points: the lower id must win everywhere.
	db := vec.FromRows([][]float32{{5}, {1}, {1}, {5}})
	q := []float32{1}
	if r := SearchOne(q, db, metric.Euclidean{}, nil); r.ID != 1 {
		t.Fatalf("SearchOne tie: %+v", r)
	}
	if r := Search(vec.FromRows([][]float32{q}), db, metric.Euclidean{}, nil)[0]; r.ID != 1 {
		t.Fatalf("Search tie: %+v", r)
	}
	if r := SearchOneGeneric(float32(1), []float32{5, 1, 1, 5},
		metric.Func[float32]{F: func(a, b float32) float64 { return math.Abs(float64(a - b)) }}, nil); r.ID != 1 {
		t.Fatalf("generic tie: %+v", r)
	}
}

func TestGenericMatchesVector(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := randomDataset(rng, 400, 3)
	queries := randomDataset(rng, 15, 3)
	m := metric.Euclidean{}
	gv := Search(queries, db, m, nil)
	gg := SearchGeneric(queries.Rows(), db.Rows(), metric.Metric[[]float32](m), nil)
	for i := range gv {
		if gv[i] != gg[i] {
			t.Fatalf("query %d: vector %+v generic %+v", i, gv[i], gg[i])
		}
	}
}

func TestGenericStrings(t *testing.T) {
	db := []string{"kitten", "mitten", "sitting", "bitten"}
	r := SearchOneGeneric("fitten", db, metric.Edit{}, nil)
	if r.Dist != 1 {
		t.Fatalf("edit NN: %+v", r)
	}
	ks := SearchOneKGeneric("fitten", db, 2, metric.Edit{}, nil)
	if len(ks) != 2 || ks[0].Dist != 1 {
		t.Fatalf("edit 2-NN: %v", ks)
	}
	if got := SearchOneKGeneric("x", nil, 2, metric.Edit{}, nil); got != nil {
		t.Fatal("empty generic db should return nil")
	}
	hits := RangeSearchGeneric("kitten", db, 1.0, metric.Edit{}, nil)
	if len(hits) != 3 { // kitten(0), mitten(1), bitten(1)
		t.Fatalf("range hits %v", hits)
	}
	sub := SearchSubsetGeneric("kitten", db, []int{2, 3}, metric.Edit{}, nil)
	if sub.ID != 3 {
		t.Fatalf("subset generic: %+v", sub)
	}
}

// Property: on random data SearchOne always agrees with the naive scan.
func TestQuickSearchOne(t *testing.T) {
	m := metric.Euclidean{}
	f := func(seed int64, n16 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n16)%200 + 1
		db := randomDataset(rng, n, 3)
		q := randomDataset(rng, 1, 3).Row(0)
		return SearchOne(q, db, m, nil) == naiveNN(q, db, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the 1-NN is the first element of the k-NN list.
func TestQuickKNNConsistentWithNN(t *testing.T) {
	m := metric.Euclidean{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDataset(rng, 150, 4)
		q := randomDataset(rng, 1, 4).Row(0)
		nn := SearchOne(q, db, m, nil)
		knn := SearchOneK(q, db, 5, m, nil)
		return len(knn) == 5 && knn[0].ID == nn.ID && knn[0].Dist == nn.Dist
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: RangeSearch(q, eps) returns exactly the points with d <= eps.
func TestQuickRangeComplete(t *testing.T) {
	m := metric.Euclidean{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDataset(rng, 120, 2)
		q := randomDataset(rng, 1, 2).Row(0)
		eps := rng.Float64()
		hits := RangeSearch(q, db, eps, m, nil)
		inHits := make(map[int]bool, len(hits))
		for _, h := range hits {
			inHits[h.ID] = true
		}
		for i := 0; i < db.N(); i++ {
			if (m.Distance(q, db.Row(i)) <= eps) != inHits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
