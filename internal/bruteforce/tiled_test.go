package bruteforce

import (
	"math/rand"
	"testing"

	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// Exactness tests for the tiled BF(Q,X) kernels: the tiled batch paths
// must reproduce the per-query reference bit for bit — ids, distances and
// tie-breaking toward lower ids — on random, duplicate-heavy, and
// dim-not-multiple-of-4 data.

// dupDataset builds a duplicate-heavy dataset: every point appears 2–3
// times so distance ties are the norm, not the exception.
func dupDataset(rng *rand.Rand, n, dim int) *vec.Dataset {
	d := vec.New(dim, n)
	row := make([]float32, dim)
	for i := 0; i < n; {
		for j := range row {
			row[j] = rng.Float32()*2 - 1
		}
		reps := 2 + rng.Intn(2)
		for r := 0; r < reps && i < n; r++ {
			d.Append(row)
			i++
		}
	}
	return d
}

func tiledCases(t *testing.T, fn func(t *testing.T, queries, db *vec.Dataset)) {
	rng := rand.New(rand.NewSource(101))
	for _, tc := range []struct {
		name string
		db   *vec.Dataset
		nq   int
	}{
		{"random-dim8", randomDataset(rng, 3000, 8), 70},
		{"random-dim7", randomDataset(rng, 2000, 7), 70}, // dim % 4 != 0
		{"random-dim3", randomDataset(rng, 1500, 3), 50},
		{"dups-dim6", dupDataset(rng, 2000, 6), 60},
		{"dups-dim5", dupDataset(rng, 1200, 5), 60},
		{"tiny", randomDataset(rng, 17, 4), 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			queries := randomDataset(rng, tc.nq, tc.db.Dim)
			// Plant exact hits: some queries are database points.
			for i := 0; i < tc.nq/4; i++ {
				copy(queries.Row(i), tc.db.Row((i*13)%tc.db.N()))
			}
			fn(t, queries, tc.db)
		})
	}
}

func TestTiledSearchBitIdenticalToPerQuery(t *testing.T) {
	m := metric.Euclidean{}
	tiledCases(t, func(t *testing.T, queries, db *vec.Dataset) {
		got := Search(queries, db, m, nil)
		want := searchPerQuery(queries, db, m, nil)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: tiled %+v, per-query reference %+v", i, got[i], want[i])
			}
		}
	})
}

func TestTiledSearchKBitIdenticalToPerQuery(t *testing.T) {
	m := metric.Euclidean{}
	tiledCases(t, func(t *testing.T, queries, db *vec.Dataset) {
		for _, k := range []int{1, 5, 16} {
			got := SearchK(queries, db, k, m, nil)
			for i := range got {
				want := SearchOneK(queries.Row(i), db, k, m, nil)
				if len(got[i]) != len(want) {
					t.Fatalf("k=%d query %d: %d results, want %d", k, i, len(got[i]), len(want))
				}
				for j := range want {
					if got[i][j] != want[j] {
						t.Fatalf("k=%d query %d pos %d: tiled %+v, reference %+v", k, i, j, got[i][j], want[j])
					}
				}
			}
		}
	})
}

// fastPerQueryRef runs the fast (Gram) kernel one query at a time with
// precomputed norms — the per-query reference for SearchFast. The kernel
// is tile-shape stable, so SearchFast must match it bit for bit.
func fastPerQueryRef(queries, db *vec.Dataset, m metric.Metric[[]float32]) []Result {
	ker := metric.NewFastKernel(m)
	dim := db.Dim
	pnorms := ker.Norms(db.Data, dim, nil)
	out := make([]Result, queries.N())
	ords := make([]float64, db.N())
	for i := range out {
		q := queries.Row(i)
		qn := ker.Norms(q, dim, nil)
		ker.Tile(q, qn, db.Data, pnorms, dim, ords, nil)
		best := Result{ID: -1, Dist: 0}
		first := true
		for j, o := range ords {
			if first || o < best.Dist {
				best = Result{ID: j, Dist: o}
				first = false
			}
		}
		best.Dist = ker.ToDistance(best.Dist)
		out[i] = best
	}
	return out
}

func TestFastSearchBitIdenticalToFastReference(t *testing.T) {
	m := metric.Euclidean{}
	tiledCases(t, func(t *testing.T, queries, db *vec.Dataset) {
		got := SearchFast(queries, db, m, nil)
		want := fastPerQueryRef(queries, db, m)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: SearchFast %+v, per-query fast reference %+v", i, got[i], want[i])
			}
		}
	})
}

// TestFastSearchAgreesWithNaive: the Gram kernel reassociates the
// summation, so distances may differ in trailing ulps — but the selected
// neighbor must agree with the naive scan and duplicates must still tie
// toward the lower id.
func TestFastSearchAgreesWithNaive(t *testing.T) {
	m := metric.Euclidean{}
	tiledCases(t, func(t *testing.T, queries, db *vec.Dataset) {
		got := SearchFast(queries, db, m, nil)
		for i := range got {
			want := naiveNN(queries.Row(i), db, m)
			if got[i].ID != want.ID {
				// A genuine near-tie between distinct points may legally
				// resolve differently; require the distances to agree then.
				gd := m.Distance(queries.Row(i), db.Row(got[i].ID))
				if diff := gd - want.Dist; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("query %d: id %d (d=%v) vs naive %d (d=%v)", i, got[i].ID, gd, want.ID, want.Dist)
				}
			}
			if diff := got[i].Dist - want.Dist; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("query %d: dist %v, naive %v", i, got[i].Dist, want.Dist)
			}
		}
	})
}

func TestFastSearchKSortedAndDeduplicated(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	db := dupDataset(rng, 1000, 6)
	queries := randomDataset(rng, 20, 6)
	res := SearchKFast(queries, db, 9, metric.Euclidean{}, nil)
	for i, nbs := range res {
		if len(nbs) != 9 {
			t.Fatalf("query %d: %d results", i, len(nbs))
		}
		for j := 1; j < len(nbs); j++ {
			if nbs[j].Dist < nbs[j-1].Dist ||
				(nbs[j].Dist == nbs[j-1].Dist && nbs[j].ID <= nbs[j-1].ID) {
				t.Fatalf("query %d: results not sorted by (dist, id): %v", i, nbs)
			}
		}
	}
}

func TestTiledSearchEmptyInputs(t *testing.T) {
	m := metric.Euclidean{}
	var empty vec.Dataset
	queries := vec.FromRows([][]float32{{1, 2}})
	for _, fn := range []func(q, db *vec.Dataset) []Result{
		func(q, db *vec.Dataset) []Result { return Search(q, db, m, nil) },
		func(q, db *vec.Dataset) []Result { return SearchFast(q, db, m, nil) },
	} {
		res := fn(queries, &empty)
		if len(res) != 1 || res[0].ID != -1 {
			t.Fatalf("empty db: %+v", res)
		}
		if res := fn(&vec.Dataset{Dim: 2}, vec.FromRows([][]float32{{0, 0}})); len(res) != 0 {
			t.Fatalf("empty queries: %+v", res)
		}
	}
	if res := SearchK(queries, &empty, 3, m, nil); len(res) != 1 || res[0] != nil {
		t.Fatalf("empty db SearchK: %+v", res)
	}
	if res := SearchKFast(queries, vec.FromRows([][]float32{{0, 0}}), 0, m, nil); len(res) != 1 || res[0] != nil {
		t.Fatalf("k=0 SearchKFast: %+v", res)
	}
}

// TestTiledSearchNonEuclidean: the tiled loops must work for every metric
// through the generic kernel dispatch.
func TestTiledSearchNonEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	db := randomDataset(rng, 800, 5)
	queries := randomDataset(rng, 25, 5)
	for _, m := range []metric.Metric[[]float32]{
		metric.Manhattan{}, metric.Chebyshev{}, metric.NewMinkowski(3), metric.Angular{},
	} {
		got := Search(queries, db, m, nil)
		fast := SearchFast(queries, db, m, nil)
		for i := range got {
			want := naiveNN(queries.Row(i), db, m)
			if got[i].ID != want.ID {
				t.Fatalf("%s query %d: id %d, want %d", m.Name(), i, got[i].ID, want.ID)
			}
			if diff := got[i].Dist - want.Dist; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s query %d: dist %v, want %v", m.Name(), i, got[i].Dist, want.Dist)
			}
			if fast[i].ID != got[i].ID {
				t.Fatalf("%s query %d: fast id %d, exact id %d", m.Name(), i, fast[i].ID, got[i].ID)
			}
		}
	}
}

// TestSearchAllocsAmortizedZero guards the scratch pooling: a batch search
// must not allocate per query (only the result slice, the norm vector and
// O(workers) bookkeeping).
func TestSearchAllocsAmortizedZero(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	db := randomDataset(rng, 2000, 16)
	queries := randomDataset(rng, 256, 16)
	m := metric.Euclidean{}
	// Warm the pools.
	Search(queries, db, m, nil)
	SearchFast(queries, db, m, nil)
	allocs := testing.AllocsPerRun(5, func() {
		SearchFast(queries, db, m, nil)
	})
	// out + pnorms + goroutine/pool bookkeeping: far below one per query.
	if allocs > float64(queries.N())/4 {
		t.Fatalf("SearchFast allocated %.0f times for %d queries", allocs, queries.N())
	}
	allocs = testing.AllocsPerRun(5, func() {
		Search(queries, db, m, nil)
	})
	if allocs > float64(queries.N())/4 {
		t.Fatalf("Search allocated %.0f times for %d queries", allocs, queries.N())
	}
}

// TestRangeSearchOrderingBoundary: the ordering-space prefilter must not
// change the inclusive eps boundary.
func TestRangeSearchOrderingBoundary(t *testing.T) {
	db := vec.FromRows([][]float32{{0}, {2}, {3.5}})
	hits := RangeSearch([]float32{1}, db, 1.0, metric.Euclidean{}, nil)
	if len(hits) != 2 || hits[0].ID != 0 || hits[1].ID != 1 {
		t.Fatalf("boundary hits: %v", hits)
	}
	// Minkowski exercises the non-identity ordering round trip.
	hits = RangeSearch([]float32{1}, db, 1.0, metric.NewMinkowski(3), nil)
	if len(hits) != 2 {
		t.Fatalf("minkowski boundary hits: %v", hits)
	}
}

// TestRangeSearchEpsAtReportedDistance: setting eps to a distance the
// library itself reported must include that point — for every metric,
// including Minkowski, whose Pow-based ordering conversion is not
// correctly rounded (a one-ulp ordering prefilter used to drop ~40% of
// these boundary points).
func TestRangeSearchEpsAtReportedDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	db := randomDataset(rng, 400, 5)
	for _, m := range []metric.Metric[[]float32]{
		metric.Euclidean{}, metric.Manhattan{}, metric.NewMinkowski(3), metric.NewMinkowski(2.5),
	} {
		for trial := 0; trial < 50; trial++ {
			q := randomDataset(rng, 1, 5).Row(0)
			nbs := SearchOneK(q, db, 7, m, nil)
			eps := nbs[len(nbs)-1].Dist
			hits := RangeSearch(q, db, eps, m, nil)
			found := false
			for _, h := range hits {
				if h.ID == nbs[len(nbs)-1].ID {
					found = true
				}
			}
			if !found || len(hits) < len(nbs) {
				t.Fatalf("%s trial %d: eps=%v (the 7th-NN distance) returned %d hits missing the 7th NN %+v",
					m.Name(), trial, eps, len(hits), nbs[len(nbs)-1])
			}
		}
	}
}

func TestSortNeighborsLong(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	ns := make([]par.Neighbor, 500)
	for i := range ns {
		ns[i] = par.Neighbor{ID: rng.Intn(100), Dist: float64(rng.Intn(40))}
	}
	sortNeighbors(ns)
	for i := 1; i < len(ns); i++ {
		if ns[i].Dist < ns[i-1].Dist ||
			(ns[i].Dist == ns[i-1].Dist && ns[i].ID < ns[i-1].ID) {
			t.Fatalf("not sorted at %d: %v %v", i, ns[i-1], ns[i])
		}
	}
}
