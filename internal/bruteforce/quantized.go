package bruteforce

import (
	"math"

	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// This file implements the two-pass quantized brute-force scan: a
// candidate pass over int8 codes (metric.QuantizedView — 1 byte per
// coordinate, built for the memory-bound regime where the float scan is
// limited by DRAM bandwidth) followed by exact rescoring that restores
// bit-true reported distances.
//
// # The two-pass contract
//
// Pass 1 scans the quantized view and keeps the k' = QuantOverfetch·k
// best candidates per query in ordering space. Pass 2 rescores those
// candidates with the EXACT kernel (RescoreK) and returns the top k, so
// reported distances — and tie-breaking — are computed by exactly the
// per-pair arithmetic SearchK uses. What the two-pass scan does NOT
// certify is candidate recall: a true neighbor whose quantized distance
// lands beyond the k'-th candidate is lost. The over-fetch absorbs
// quantization noise of ±view.ErrorBound() per distance; with the
// default α = 8 the equivalence corpus reproduces SearchK bit for bit
// (asserted in internal/search), but adversarial data can defeat any
// fixed α — callers needing certified answers use the exact paths.
// Whenever k' ≥ n the candidate pass keeps everything and the result is
// exact by construction.

// QuantOverfetch is α, the candidate over-fetch factor of the quantized
// two-pass scans: pass 1 keeps α·k candidates for pass 2 to rescore.
const QuantOverfetch = 8

// quantMinFetch floors the pass-1 candidate count: at small k the α·k
// budget is thinner than the quantization noise band (many points can sit
// within ±ErrorBound of the k-th distance), and rescoring a few dozen
// rows costs nothing next to the scan it replaces.
const quantMinFetch = 64

// quantPassK returns the pass-1 heap size for a request of k among n
// rows.
func quantPassK(k, n int) int {
	kp := k * QuantOverfetch
	if kp < quantMinFetch {
		kp = quantMinFetch
	}
	if kp < k { // overflow paranoia
		kp = k
	}
	if kp > n {
		kp = n
	}
	return kp
}

// SearchQuantized is the 1-NN two-pass quantized scan: candidate
// generation over int8 codes, exact rescoring of QuantOverfetch
// survivors. Reported distances are bit-identical to Search for every
// query whose true nearest neighbor survives pass 1 (see the two-pass
// contract above). The view is built once per call (O(n·dim)) and
// amortizes over the query batch; callers that scan the same database
// repeatedly should hold a view and use SearchKQuantizedView.
func SearchQuantized(queries, db *vec.Dataset, m metric.Metric[[]float32], c *Counter) []Result {
	nbs := SearchKQuantized(queries, db, 1, m, c)
	out := make([]Result, len(nbs))
	for i, ns := range nbs {
		if len(ns) == 0 {
			out[i] = Result{ID: -1, Dist: math.Inf(1)}
			continue
		}
		out[i] = Result{ID: ns[0].ID, Dist: ns[0].Dist}
	}
	return out
}

// SearchKQuantized is the k-NN two-pass quantized scan; see
// SearchQuantized. The Counter records both passes: n quantized
// evaluations per query plus the exact rescores.
func SearchKQuantized(queries, db *vec.Dataset, k int, m metric.Metric[[]float32], c *Counter) [][]par.Neighbor {
	if queries.N() == 0 || db.N() == 0 || k <= 0 {
		return make([][]par.Neighbor, queries.N())
	}
	return SearchKQuantizedView(queries, db, k, metric.NewQuantizedView(db.Data, db.Dim), m, c)
}

// SearchKQuantizedView is SearchKQuantized over a caller-held view
// (which must have been built over db's current data).
func SearchKQuantizedView(queries, db *vec.Dataset, k int, v *metric.QuantizedView, m metric.Metric[[]float32], c *Counter) [][]par.Neighbor {
	nq := queries.N()
	out := make([][]par.Neighbor, nq)
	if nq == 0 {
		return out
	}
	n, dim := db.N(), db.Dim
	if n == 0 || k <= 0 {
		return out
	}
	if v.N() != n || v.Dim() != dim {
		panic("bruteforce: quantized view does not match the database")
	}
	xker := metric.NewKernel(m)
	kp := quantPassK(k, n)
	par.ForEach(nq, 1, func(i int) {
		sc := par.GetScratch()
		defer par.PutScratch(sc)
		q := queries.Row(i)
		qc := v.QuantizeQuery(q, sc.Int8s(0, v.Stride()))
		h := sc.Heap(1, kp)
		ords := sc.Float64(5, scanChunk)
		for lo := 0; lo < n; lo += scanChunk {
			hi := lo + scanChunk
			if hi > n {
				hi = n
			}
			blk := ords[:hi-lo]
			v.OrderingRange(qc, lo, hi, blk)
			for j, o := range blk {
				h.Push(lo+j, o)
			}
		}
		c.Add(n)
		cands := h.Results()
		ids := sc.Ints(4, len(cands))
		for j, nb := range cands {
			ids[j] = nb.ID
		}
		out[i] = rescoreTopK(xker, q, db, ids, k, sc, c)
	})
	return out
}

// RescoreKQuantized is the candidate-set form of the two-pass scan, for
// approximate backends that already hold a candidate list (lsh bucket
// unions): the listed rows are ranked by quantized distance, the best
// QuantOverfetch·k survive, and those are rescored exactly — same
// contract as SearchKQuantized, with the candidate list taking the place
// of the full database. When the list is not larger than the over-fetch
// budget the quantized pass is skipped entirely.
func RescoreKQuantized(v *metric.QuantizedView, q []float32, db *vec.Dataset, ids []int32, k int, m metric.Metric[[]float32], c *Counter) []par.Neighbor {
	if k <= 0 || len(ids) == 0 {
		return nil
	}
	xker := metric.NewKernel(m)
	kp := quantPassK(k, len(ids))
	if v == nil || kp >= len(ids) {
		return RescoreK(xker, q, db, ids, k, c)
	}
	sc := par.GetScratch()
	defer par.PutScratch(sc)
	qc := v.QuantizeQuery(q, sc.Int8s(0, v.Stride()))
	ords := sc.Float64(5, len(ids))
	v.OrderingIDs(qc, ids, ords)
	c.Add(len(ids))
	h := sc.Heap(1, kp)
	for j, o := range ords {
		h.Push(int(ids[j]), o)
	}
	cands := h.Results()
	kept := sc.Ints(4, len(cands))
	for j, nb := range cands {
		kept[j] = nb.ID
	}
	return rescoreTopK(xker, q, db, kept, k, sc, c)
}

// rescoreTopK gathers the candidate rows and scores them with the exact
// kernel — the pass-2 refinement shared by the quantized scans. It is
// RescoreK with caller-owned scratch (the candidate ids arrive as ints
// straight from a heap).
func rescoreTopK(xker *metric.Kernel, q []float32, db *vec.Dataset, ids []int, k int, sc *par.Scratch, c *Counter) []par.Neighbor {
	if k <= 0 || len(ids) == 0 {
		return nil
	}
	dim := db.Dim
	h := sc.Heap(0, k)
	blk := rescoreBlock
	if blk > len(ids) {
		blk = len(ids)
	}
	buf := sc.Float32(1, blk*dim)
	ords := sc.Float64(6, blk)
	for lo := 0; lo < len(ids); lo += blk {
		hi := lo + blk
		if hi > len(ids) {
			hi = len(ids)
		}
		for t, id := range ids[lo:hi] {
			copy(buf[t*dim:(t+1)*dim], db.Row(id))
		}
		out := ords[:hi-lo]
		xker.Ordering(q, buf[:(hi-lo)*dim], dim, out)
		for t, o := range out {
			h.Push(ids[lo+t], o)
		}
	}
	c.Add(len(ids))
	res := h.Results()
	for i := range res {
		res[i].Dist = xker.ToDistance(res[i].Dist)
	}
	par.SortNeighbors(res)
	return res
}
