// Package server exposes an RBC index over HTTP/JSON — the deployment
// surface a production NN service needs. Queries run concurrently;
// mutations (insert/delete/rebuild, exact indexes only) serialize behind
// a write lock, matching the index's concurrency contract.
//
// # Request coalescing
//
// The tiled kernels underneath the indexes want *blocks* of queries —
// BF(Q,R) as a matrix-matrix product — but HTTP delivers queries one at
// a time. With WithCoalescing enabled, concurrent /query requests park
// briefly and are flushed as one KNNBatch call: a batch flushes when it
// reaches MaxBatch queries or when MaxWait has elapsed since its first
// query parked, whichever comes first. Responses are bit-identical to
// the per-query path; the tradeoff is explicit and bounded — a lone
// query pays at most MaxWait extra latency so that concurrent traffic
// shares one tiled front half (and one lock acquisition) instead of n.
// The per-response "evals" field reports an equal share of the batch's
// aggregate work and "batch" reports the realized batch size; the
// /stats endpoint exposes flush counters for tuning the two knobs. On
// exact indexes, /range requests coalesce identically through a second
// queue flushed via Exact.RangeBatch (grouped by eps, since RangeBatch
// takes one radius per block), reported under "range_coalesce" in
// /stats.
//
// Request bodies are decoded and validated before any lock is taken, so
// a slow client cannot stall writers.
//
// Endpoints:
//
//	GET  /healthz              liveness probe
//	GET  /stats                index metadata, live-point count, coalescer counters
//	POST /query                {"point":[…],"k":3}        → neighbors
//	POST /range                {"point":[…],"eps":0.5}    → neighbors
//	POST /insert               {"point":[…]}              → {"id":n}
//	POST /delete               {"id":7}
//	POST /rebuild              fold pending mutations
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// Server wraps one index over one dataset.
type Server struct {
	mu      sync.RWMutex
	db      *vec.Dataset
	m       metric.Metric[[]float32]
	exact   *core.Exact   // non-nil in exact mode
	oneshot *core.OneShot // non-nil in one-shot mode
	mux     *http.ServeMux
	co      *coalescer  // non-nil when query coalescing is enabled
	rco     *coalescer  // non-nil when coalescing is enabled on an exact index (/range)
	dur     *durability // non-nil on durable servers (see durable.go)
}

// Option configures a Server at construction time.
type Option func(*Server)

// WithCoalescing parks concurrent /query requests and answers them in
// batches of up to maxBatch queries, waiting at most maxWait for a batch
// to fill (maxWait <= 0 selects 500µs). maxBatch <= 1 disables
// coalescing. On an exact index, /range requests coalesce through a
// second queue with the same knobs (RangeBatch takes one eps per block,
// so mixed-eps traffic splits the flush like mixed-k /query traffic
// does). See the package comment for the latency/throughput tradeoff.
func WithCoalescing(maxBatch int, maxWait time.Duration) Option {
	return func(s *Server) {
		if maxBatch > 1 {
			s.co = newCoalescer(maxBatch, maxWait, s.runBatch)
			if s.exact != nil {
				s.rco = newCoalescer(maxBatch, maxWait, s.runRangeBatch)
			}
		}
	}
}

// NewExact builds a server around an exact index (mutations enabled).
func NewExact(db *vec.Dataset, m metric.Metric[[]float32], idx *core.Exact, opts ...Option) *Server {
	s := &Server{db: db, m: m, exact: idx}
	for _, o := range opts {
		o(s)
	}
	s.routes()
	return s
}

// NewOneShot builds a read-only server around a one-shot index.
func NewOneShot(db *vec.Dataset, m metric.Metric[[]float32], idx *core.OneShot, opts ...Option) *Server {
	s := &Server{db: db, m: m, oneshot: idx}
	for _, o := range opts {
		o(s)
	}
	s.routes()
	return s
}

// Close flushes any parked coalesced queries as a final batch and makes
// subsequent coalesced queries fail with 503; on a durable server it
// also stops the snapshot loop and closes the WAL (one final fsync
// under SyncInterval/SyncNone). Safe to call multiple times; a no-op
// when neither coalescing nor durability is configured.
func (s *Server) Close() {
	if s.co != nil {
		s.co.close()
	}
	if s.rco != nil {
		s.rco.close()
	}
	if s.dur != nil {
		_ = s.dur.close()
	}
}

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /range", s.handleRange)
	mux.HandleFunc("POST /insert", s.handleInsert)
	mux.HandleFunc("POST /delete", s.handleDelete)
	mux.HandleFunc("POST /rebuild", s.handleRebuild)
	mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	s.mux = mux
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type statsBody struct {
	Mode          string           `json:"mode"`
	Metric        string           `json:"metric"`
	Points        int              `json:"points"`
	Live          int              `json:"live"`
	Dim           int              `json:"dim"`
	NumReps       int              `json:"num_reps"`
	Dirty         bool             `json:"dirty"`
	Buffered      int              `json:"buffered"`
	SegMerges     int64            `json:"seg_merges"`
	Coalesce      coalesceStats    `json:"coalesce"`
	RangeCoalesce coalesceStats    `json:"range_coalesce"`
	Durability    *durabilityStats `json:"durability,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	body := statsBody{Metric: s.m.Name(), Points: s.db.N(), Live: s.db.N(), Dim: s.db.Dim}
	if s.exact != nil {
		body.Mode = "exact"
		body.NumReps = s.exact.NumReps()
		body.Live = s.exact.Live()
		body.Dirty = s.exact.Dirty()
		body.Buffered = s.exact.Buffered()
		body.SegMerges = s.exact.SegMerges()
	} else {
		body.Mode = "oneshot"
		body.NumReps = s.oneshot.NumReps()
	}
	if s.dur != nil {
		body.Durability = s.dur.stats()
	}
	s.mu.RUnlock()
	if s.co != nil {
		body.Coalesce = s.co.stats()
	}
	if s.rco != nil {
		body.RangeCoalesce = s.rco.stats()
	}
	writeJSON(w, http.StatusOK, body)
}

type queryRequest struct {
	Point []float32 `json:"point"`
	K     int       `json:"k"`
	Eps   float64   `json:"eps"`
}

type neighborBody struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

type queryResponse struct {
	Neighbors []neighborBody `json:"neighbors"`
	Evals     int64          `json:"evals"`
	Batch     int            `json:"batch,omitempty"`
}

// decodePoint decodes and validates a request body. It takes no lock:
// the body read can stall on a slow client, and db.Dim is immutable
// after construction (Append never changes it).
func (s *Server) decodePoint(w http.ResponseWriter, r *http.Request) (queryRequest, bool) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return req, false
	}
	if len(req.Point) != s.db.Dim {
		writeError(w, http.StatusBadRequest, "point has %d dims, index has %d", len(req.Point), s.db.Dim)
		return req, false
	}
	return req, true
}

func neighborBodies(nbs []par.Neighbor) []neighborBody {
	out := make([]neighborBody, len(nbs))
	for i, nb := range nbs {
		out[i] = neighborBody{ID: nb.ID, Dist: nb.Dist}
	}
	return out
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodePoint(w, r)
	if !ok {
		return
	}
	if req.K <= 0 {
		req.K = 1
	}
	if s.co != nil {
		c := &call{point: req.Point, k: req.K, done: make(chan struct{})}
		if err := s.co.submit(c); err != nil {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		if c.err != nil {
			writeError(w, http.StatusInternalServerError, "%v", c.err)
			return
		}
		writeJSON(w, http.StatusOK, queryResponse{
			Neighbors: neighborBodies(c.nbs), Evals: c.evals, Batch: c.batch,
		})
		return
	}
	s.mu.RLock()
	var nbs []par.Neighbor
	var st core.Stats
	if s.exact != nil {
		nbs, st = s.exact.KNN(req.Point, s.clampK(req.K))
	} else {
		nbs, st = s.oneshot.KNN(req.Point, s.clampK(req.K))
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, queryResponse{Neighbors: neighborBodies(nbs), Evals: st.TotalEvals()})
}

// clampK bounds a client-supplied k by the database size: more
// neighbors cannot exist, and an unbounded k would otherwise size heap
// allocations. Callers hold at least the read lock (db can grow).
func (s *Server) clampK(k int) int {
	if n := s.db.N(); k > n {
		return n
	}
	return k
}

// runBatch executes one coalesced batch: group the parked queries by k
// (KNNBatch takes a single k for the whole block; mixed-k traffic splits
// into one block per distinct k), run each group through the batch-first
// index entry point under one read lock, and fan the rows back out to
// their waiting handlers. Every call's done channel is closed no matter
// what — a panic out of the index (or a poisoned query) must not strand
// the other parked handlers.
func (s *Server) runBatch(batch []*call) {
	defer func() {
		if r := recover(); r != nil {
			for _, c := range batch {
				if !c.released {
					c.err = fmt.Errorf("batch query failed: %v", r)
					c.released = true
					close(c.done)
				}
			}
		}
	}()
	s.mu.RLock()
	defer s.mu.RUnlock()
	byK := make(map[int][]*call, 1)
	for _, c := range batch {
		k := s.clampK(c.k)
		byK[k] = append(byK[k], c)
	}
	for k, calls := range byK {
		ds := vec.New(s.db.Dim, len(calls))
		for _, c := range calls {
			ds.Append(c.point)
		}
		var nbs [][]par.Neighbor
		var st core.Stats
		if s.exact != nil {
			nbs, st = s.exact.KNNBatch(ds, k)
		} else {
			nbs, st = s.oneshot.KNNBatch(ds, k)
		}
		// The batch path aggregates work across the block; report each
		// query's amortized share.
		share := st.TotalEvals() / int64(len(calls))
		for i, c := range calls {
			c.nbs = nbs[i]
			c.evals = share
			c.batch = len(batch)
			c.released = true
			close(c.done)
		}
	}
}

// runRangeBatch executes one coalesced /range batch: group the parked
// requests by eps (RangeBatch takes a single radius for the whole
// block), run each group through Exact.RangeBatch under one read lock,
// and fan the rows back out. Same release discipline as runBatch: every
// done channel closes even if the index panics.
func (s *Server) runRangeBatch(batch []*call) {
	defer func() {
		if r := recover(); r != nil {
			for _, c := range batch {
				if !c.released {
					c.err = fmt.Errorf("batch range query failed: %v", r)
					c.released = true
					close(c.done)
				}
			}
		}
	}()
	s.mu.RLock()
	defer s.mu.RUnlock()
	byEps := make(map[float64][]*call, 1)
	for _, c := range batch {
		byEps[c.eps] = append(byEps[c.eps], c)
	}
	for eps, calls := range byEps {
		ds := vec.New(s.db.Dim, len(calls))
		for _, c := range calls {
			ds.Append(c.point)
		}
		nbs, st := s.exact.RangeBatch(ds, eps)
		share := st.TotalEvals() / int64(len(calls))
		for i, c := range calls {
			c.nbs = nbs[i]
			c.evals = share
			c.batch = len(batch)
			c.released = true
			close(c.done)
		}
	}
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodePoint(w, r)
	if !ok {
		return
	}
	if req.Eps < 0 {
		writeError(w, http.StatusBadRequest, "eps must be non-negative")
		return
	}
	if s.exact == nil {
		writeError(w, http.StatusNotImplemented, "range search requires an exact index")
		return
	}
	if s.rco != nil {
		c := &call{point: req.Point, eps: req.Eps, done: make(chan struct{})}
		if err := s.rco.submit(c); err != nil {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		if c.err != nil {
			writeError(w, http.StatusInternalServerError, "%v", c.err)
			return
		}
		writeJSON(w, http.StatusOK, queryResponse{
			Neighbors: neighborBodies(c.nbs), Evals: c.evals, Batch: c.batch,
		})
		return
	}
	s.mu.RLock()
	nbs, st := s.exact.Range(req.Point, req.Eps)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, queryResponse{Neighbors: neighborBodies(nbs), Evals: st.TotalEvals()})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodePoint(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.exact == nil {
		writeError(w, http.StatusNotImplemented, "mutations require an exact index")
		return
	}
	// Write-ahead: the record reaches the log (durable per the sync
	// mode) before the in-memory apply and the acknowledgment. A failed
	// append applies nothing — the index stays consistent with the log.
	if s.dur != nil {
		if err := s.dur.logInsert(req.Point); err != nil {
			writeError(w, http.StatusInternalServerError, "wal append: %v", err)
			return
		}
	}
	id := s.exact.Insert(req.Point)
	writeJSON(w, http.StatusOK, map[string]int{"id": id})
}

type deleteRequest struct {
	ID int `json:"id"`
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req deleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.exact == nil {
		writeError(w, http.StatusNotImplemented, "mutations require an exact index")
		return
	}
	// Validate before logging (CheckDelete mutates nothing), so a logged
	// delete always applies cleanly — both here and at replay.
	if err := s.exact.CheckDelete(req.ID); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.dur != nil {
		if err := s.dur.logDelete(req.ID); err != nil {
			writeError(w, http.StatusInternalServerError, "wal append: %v", err)
			return
		}
	}
	if err := s.exact.Delete(req.ID); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.exact == nil {
		writeError(w, http.StatusNotImplemented, "mutations require an exact index")
		return
	}
	s.exact.Rebuild()
	writeJSON(w, http.StatusOK, map[string]string{"status": "rebuilt"})
}

// handleSnapshot commits a new snapshot generation on demand (durable
// servers only); the WAL resets behind the snapshot barrier.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.dur == nil {
		writeError(w, http.StatusNotImplemented, "snapshots require a durable server (-data-dir)")
		return
	}
	gen, err := s.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"generation": gen})
}
