// Package server exposes an RBC index over HTTP/JSON — the deployment
// surface a production NN service needs. Queries run concurrently;
// mutations (insert/delete/rebuild, exact indexes only) serialize behind
// a write lock, matching the index's concurrency contract.
//
// Endpoints:
//
//	GET  /healthz              liveness probe
//	GET  /stats                index metadata and live-point count
//	POST /query                {"point":[…],"k":3}        → neighbors
//	POST /range                {"point":[…],"eps":0.5}    → neighbors
//	POST /insert               {"point":[…]}              → {"id":n}
//	POST /delete               {"id":7}
//	POST /rebuild              fold pending mutations
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/vec"
)

// Server wraps one index over one dataset.
type Server struct {
	mu      sync.RWMutex
	db      *vec.Dataset
	m       metric.Metric[[]float32]
	exact   *core.Exact   // non-nil in exact mode
	oneshot *core.OneShot // non-nil in one-shot mode
	mux     *http.ServeMux
}

// NewExact builds a server around an exact index (mutations enabled).
func NewExact(db *vec.Dataset, m metric.Metric[[]float32], idx *core.Exact) *Server {
	s := &Server{db: db, m: m, exact: idx}
	s.routes()
	return s
}

// NewOneShot builds a read-only server around a one-shot index.
func NewOneShot(db *vec.Dataset, m metric.Metric[[]float32], idx *core.OneShot) *Server {
	s := &Server{db: db, m: m, oneshot: idx}
	s.routes()
	return s
}

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /range", s.handleRange)
	mux.HandleFunc("POST /insert", s.handleInsert)
	mux.HandleFunc("POST /delete", s.handleDelete)
	mux.HandleFunc("POST /rebuild", s.handleRebuild)
	s.mux = mux
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type statsBody struct {
	Mode    string `json:"mode"`
	Metric  string `json:"metric"`
	Points  int    `json:"points"`
	Live    int    `json:"live"`
	Dim     int    `json:"dim"`
	NumReps int    `json:"num_reps"`
	Dirty   bool   `json:"dirty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	body := statsBody{Metric: s.m.Name(), Points: s.db.N(), Live: s.db.N(), Dim: s.db.Dim}
	if s.exact != nil {
		body.Mode = "exact"
		body.NumReps = s.exact.NumReps()
		body.Live = s.exact.Live()
		body.Dirty = s.exact.Dirty()
	} else {
		body.Mode = "oneshot"
		body.NumReps = s.oneshot.NumReps()
	}
	writeJSON(w, http.StatusOK, body)
}

type queryRequest struct {
	Point []float32 `json:"point"`
	K     int       `json:"k"`
	Eps   float64   `json:"eps"`
}

type neighborBody struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

type queryResponse struct {
	Neighbors []neighborBody `json:"neighbors"`
	Evals     int64          `json:"evals"`
}

func (s *Server) decodePoint(w http.ResponseWriter, r *http.Request) (queryRequest, bool) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return req, false
	}
	if len(req.Point) != s.db.Dim {
		writeError(w, http.StatusBadRequest, "point has %d dims, index has %d", len(req.Point), s.db.Dim)
		return req, false
	}
	return req, true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	req, ok := s.decodePoint(w, r)
	if !ok {
		return
	}
	if req.K <= 0 {
		req.K = 1
	}
	var resp queryResponse
	if s.exact != nil {
		nbs, st := s.exact.KNN(req.Point, req.K)
		for _, nb := range nbs {
			resp.Neighbors = append(resp.Neighbors, neighborBody{ID: nb.ID, Dist: nb.Dist})
		}
		resp.Evals = st.TotalEvals()
	} else {
		nbs, st := s.oneshot.KNN(req.Point, req.K)
		for _, nb := range nbs {
			resp.Neighbors = append(resp.Neighbors, neighborBody{ID: nb.ID, Dist: nb.Dist})
		}
		resp.Evals = st.TotalEvals()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.exact == nil {
		writeError(w, http.StatusNotImplemented, "range search requires an exact index")
		return
	}
	req, ok := s.decodePoint(w, r)
	if !ok {
		return
	}
	if req.Eps < 0 {
		writeError(w, http.StatusBadRequest, "eps must be non-negative")
		return
	}
	nbs, st := s.exact.Range(req.Point, req.Eps)
	resp := queryResponse{Evals: st.TotalEvals()}
	for _, nb := range nbs {
		resp.Neighbors = append(resp.Neighbors, neighborBody{ID: nb.ID, Dist: nb.Dist})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.exact == nil {
		writeError(w, http.StatusNotImplemented, "mutations require an exact index")
		return
	}
	req, ok := s.decodePoint(w, r)
	if !ok {
		return
	}
	id := s.exact.Insert(req.Point)
	writeJSON(w, http.StatusOK, map[string]int{"id": id})
}

type deleteRequest struct {
	ID int `json:"id"`
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.exact == nil {
		writeError(w, http.StatusNotImplemented, "mutations require an exact index")
		return
	}
	var req deleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if err := s.exact.Delete(req.ID); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.exact == nil {
		writeError(w, http.StatusNotImplemented, "mutations require an exact index")
		return
	}
	s.exact.Rebuild()
	writeJSON(w, http.StatusOK, map[string]string{"status": "rebuilt"})
}
