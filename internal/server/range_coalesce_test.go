package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func postRange(s *Server, q []float32, eps float64) (*httptest.ResponseRecorder, queryResponse) {
	raw, _ := json.Marshal(queryRequest{Point: q, Eps: eps})
	req := httptest.NewRequest("POST", "/range", bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var resp queryResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &resp)
	return rec, resp
}

// Coalesced /range responses must be bit-identical to the per-query
// path, under real concurrency (run with -race). Mixed eps values
// exercise the group-by-eps split.
func TestCoalescedRangeMatchesPerQuery(t *testing.T) {
	co, plain, db := newCoalescedServer(t, 600, 16, 200*time.Microsecond)
	defer co.Close()
	const workers = 8
	const perWorker = 20
	epsValues := []float64{0.5, 1.0, 2.0}
	rng := rand.New(rand.NewSource(131))
	queries := make([][]float32, workers*perWorker)
	for i := range queries {
		queries[i] = append([]float32(nil), db.Row(rng.Intn(db.N()))...)
		for j := range queries[i] {
			queries[i][j] += rng.Float32() * 0.1
		}
	}
	var wg sync.WaitGroup
	errs := make(chan string, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := queries[w*perWorker+i]
				eps := epsValues[(w+i)%len(epsValues)]
				rec, got := postRange(co, q, eps)
				if rec.Code != http.StatusOK {
					errs <- fmt.Sprintf("coalesced range: %d %s", rec.Code, rec.Body.String())
					return
				}
				rec2, want := postRange(plain, q, eps)
				if rec2.Code != http.StatusOK {
					errs <- fmt.Sprintf("plain range: %d", rec2.Code)
					return
				}
				if len(got.Neighbors) != len(want.Neighbors) {
					errs <- fmt.Sprintf("q%d: neighbor count %d want %d", w*perWorker+i, len(got.Neighbors), len(want.Neighbors))
					return
				}
				for p := range want.Neighbors {
					if got.Neighbors[p] != want.Neighbors[p] {
						errs <- fmt.Sprintf("q%d pos %d: %+v want %+v", w*perWorker+i, p, got.Neighbors[p], want.Neighbors[p])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	st := co.rco.stats()
	if st.Queries != workers*perWorker {
		t.Fatalf("range coalescer saw %d queries, want %d", st.Queries, workers*perWorker)
	}
}

// The /range queue has its own accounting: /query traffic must not move
// range counters, and /stats reports both blocks.
func TestRangeCoalesceStatsSeparate(t *testing.T) {
	co, _, db := newCoalescedServer(t, 200, 4, time.Millisecond)
	defer co.Close()
	if rec, _ := postQuery(co, db.Row(0), 2); rec.Code != http.StatusOK {
		t.Fatalf("query: %d", rec.Code)
	}
	if rec, _ := postRange(co, db.Row(1), 1.0); rec.Code != http.StatusOK {
		t.Fatalf("range: %d", rec.Code)
	}
	req := httptest.NewRequest("GET", "/stats", nil)
	rec := httptest.NewRecorder()
	co.ServeHTTP(rec, req)
	var st statsBody
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Coalesce.Enabled || !st.RangeCoalesce.Enabled {
		t.Fatalf("stats blocks: %+v", st)
	}
	if st.Coalesce.Queries != 1 || st.RangeCoalesce.Queries != 1 {
		t.Fatalf("queue counters crossed: query=%d range=%d", st.Coalesce.Queries, st.RangeCoalesce.Queries)
	}
}

// After Close, coalesced /range requests fail fast with 503 instead of
// parking forever.
func TestRangeCoalesceShutdown(t *testing.T) {
	co, _, db := newCoalescedServer(t, 100, 8, time.Millisecond)
	co.Close()
	rec, _ := postRange(co, db.Row(0), 1.0)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-close range: %d", rec.Code)
	}
}
