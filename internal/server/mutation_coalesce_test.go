package server

import (
	"net/http"
	"testing"
	"time"
)

// Coalesced queries must stay correct when the index carries dynamic
// state (tombstones/overflow): the batch path falls back to the
// per-query back half.
func TestCoalescedQueryAfterMutation(t *testing.T) {
	co, plain, db := newCoalescedServer(t, 400, 8, 200*time.Microsecond)
	defer co.Close()
	// Both servers wrap the same index; mutate it once through the
	// coalesced server.
	p := []float32{-40, -40, -40}
	rec, _ := do(t, co, "POST", "/insert", queryRequest{Point: p})
	if rec.Code != http.StatusOK {
		t.Fatalf("insert: %d", rec.Code)
	}
	rec, _ = do(t, co, "POST", "/delete", deleteRequest{ID: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: %d", rec.Code)
	}
	// The inserted point must be found, the deleted one not, and the
	// coalesced answers must match the per-query server.
	for i := 0; i < 10; i++ {
		q := append([]float32(nil), db.Row(i)...)
		_, got := postQuery(co, q, 3)
		_, want := postQuery(plain, q, 3)
		if len(got.Neighbors) != len(want.Neighbors) {
			t.Fatalf("query %d: %d vs %d neighbors", i, len(got.Neighbors), len(want.Neighbors))
		}
		for p := range want.Neighbors {
			if got.Neighbors[p] != want.Neighbors[p] {
				t.Fatalf("query %d pos %d: %+v want %+v", i, p, got.Neighbors[p], want.Neighbors[p])
			}
		}
	}
	_, resp := postQuery(co, p, 1)
	if resp.Neighbors[0].Dist != 0 {
		t.Fatalf("inserted point not found: %+v", resp.Neighbors[0])
	}
}
