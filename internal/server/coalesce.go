package server

import (
	"errors"
	"sync"
	"time"

	"repro/internal/par"
)

// errShuttingDown is returned by submit once the coalescer has been
// closed; handlers translate it to 503.
var errShuttingDown = errors.New("server: shutting down")

// call is one parked /query or /range request awaiting a coalesced
// flush. The flusher fills nbs/evals/batch (or err), marks released, and
// closes done; released is only touched by the one goroutine running the
// batch, so it needs no lock.
type call struct {
	point []float32
	k     int     // /query: neighbors requested
	eps   float64 // /range: search radius

	nbs      []par.Neighbor
	evals    int64
	batch    int // realized batch size, reported back for observability
	err      error
	released bool

	done chan struct{}
}

// coalescer parks concurrent queries briefly and flushes them as one
// KNNBatch call. A batch is flushed when it reaches maxBatch queries
// (flushed inline by the arriving request's goroutine) or when maxWait
// has elapsed since its first query parked (flushed by a timer
// goroutine), whichever comes first. The tradeoff is explicit: a lone
// query pays up to maxWait of extra latency to give concurrent traffic a
// shot at sharing one tiled BF(Q,R) front half.
type coalescer struct {
	run      func([]*call) // executes one flushed batch (takes the server lock)
	maxBatch int
	maxWait  time.Duration

	mu     sync.Mutex
	queue  []*call
	gen    uint64 // bumped per flush; lets stale timers detect they lost
	closed bool

	// Metrics, guarded by mu.
	queries      int64 // queries accepted
	flushes      int64 // batches executed
	sizeFlushes  int64 // ... because the batch filled
	waitFlushes  int64 // ... because maxWait elapsed
	drainFlushes int64 // ... because Close drained the queue
	maxSeen      int   // largest realized batch
}

func newCoalescer(maxBatch int, maxWait time.Duration, run func([]*call)) *coalescer {
	if maxWait <= 0 {
		maxWait = 500 * time.Microsecond
	}
	return &coalescer{run: run, maxBatch: maxBatch, maxWait: maxWait}
}

// submit parks c until the batch it joined is flushed. It returns
// errShuttingDown (without running c) if the coalescer is closed.
func (co *coalescer) submit(c *call) error {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return errShuttingDown
	}
	co.queue = append(co.queue, c)
	co.queries++
	if len(co.queue) >= co.maxBatch {
		batch := co.takeLocked(&co.sizeFlushes)
		co.mu.Unlock()
		co.run(batch)
	} else {
		if len(co.queue) == 1 {
			gen := co.gen
			time.AfterFunc(co.maxWait, func() { co.fire(gen) })
		}
		co.mu.Unlock()
	}
	<-c.done
	return nil
}

// fire is the timer path: flush the batch that was open at generation
// gen, unless it was already flushed (by size, by Close, or by an earlier
// timer).
func (co *coalescer) fire(gen uint64) {
	co.mu.Lock()
	if co.closed || co.gen != gen || len(co.queue) == 0 {
		co.mu.Unlock()
		return
	}
	batch := co.takeLocked(&co.waitFlushes)
	co.mu.Unlock()
	co.run(batch)
}

// takeLocked detaches the open batch, advances the generation and
// records metrics. Callers hold mu and pass the counter classifying what
// triggered the flush.
func (co *coalescer) takeLocked(kind *int64) []*call {
	batch := co.queue
	co.queue = nil
	co.gen++
	co.flushes++
	*kind++
	if len(batch) > co.maxSeen {
		co.maxSeen = len(batch)
	}
	return batch
}

// close drains any parked queries (running them as one final batch) and
// makes future submits fail fast. Idempotent.
func (co *coalescer) close() {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return
	}
	co.closed = true
	var batch []*call
	if len(co.queue) > 0 {
		batch = co.takeLocked(&co.drainFlushes)
	}
	co.mu.Unlock()
	if batch != nil {
		co.run(batch)
	}
}

// coalesceStats is the /stats projection of the coalescer's counters.
type coalesceStats struct {
	Enabled      bool    `json:"enabled"`
	MaxBatch     int     `json:"max_batch"`
	MaxWaitUS    int64   `json:"max_wait_us"`
	Queries      int64   `json:"queries"`
	Flushes      int64   `json:"flushes"`
	SizeFlushes  int64   `json:"size_flushes"`
	WaitFlushes  int64   `json:"wait_flushes"`
	DrainFlushes int64   `json:"drain_flushes"`
	MaxBatchSeen int     `json:"max_batch_seen"`
	AvgBatch     float64 `json:"avg_batch"`
}

func (co *coalescer) stats() coalesceStats {
	co.mu.Lock()
	defer co.mu.Unlock()
	st := coalesceStats{
		Enabled:      true,
		MaxBatch:     co.maxBatch,
		MaxWaitUS:    co.maxWait.Microseconds(),
		Queries:      co.queries,
		Flushes:      co.flushes,
		SizeFlushes:  co.sizeFlushes,
		WaitFlushes:  co.waitFlushes,
		DrainFlushes: co.drainFlushes,
		MaxBatchSeen: co.maxSeen,
	}
	if co.flushes > 0 {
		st.AvgBatch = float64(co.queries-int64(len(co.queue))) / float64(co.flushes)
	}
	return st
}
