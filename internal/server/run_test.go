package server

// Regression tests for the graceful-shutdown bugfix (PR 9): the old
// rbc-server SIGTERM path called Server.Close + os.Exit around a bare
// http.ListenAndServe, cutting in-flight responses mid-body. The fixed
// path (GracefulServe) drains handlers through http.Server.Shutdown
// before touching the Server's coalescers and WAL.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// slowThenServe delays every request, then delegates to the real
// server — a deterministic stand-in for a query that is mid-handler
// when the signal lands.
type slowThenServe struct {
	inner   http.Handler
	delay   time.Duration
	entered chan struct{} // closed once the first request is in-flight
	once    atomic.Bool
	done    atomic.Int64 // handlers completed
}

func (h *slowThenServe) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.once.CompareAndSwap(false, true) {
		close(h.entered)
	}
	time.Sleep(h.delay)
	h.inner.ServeHTTP(w, r)
	h.done.Add(1)
}

// TestGracefulServeDrainsInFlightAcrossSIGTERM: a slow query is
// in-flight when a real SIGTERM arrives; the fix requires it to
// complete with a full 200 body, the server to close only after the
// drain, and GracefulServe to return nil.
func TestGracefulServeDrainsInFlightAcrossSIGTERM(t *testing.T) {
	srv, _ := newExactServer(t, 200)
	slow := &slowThenServe{inner: srv, delay: 250 * time.Millisecond, entered: make(chan struct{})}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)
	defer signal.Stop(sigc)

	var closedAt atomic.Int64
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- GracefulServe(ln, slow, func() {
			closedAt.Store(time.Now().UnixNano())
			srv.Close()
		}, sigc, 10*time.Second)
	}()

	reqDone := make(chan error, 1)
	var status int
	var body []byte
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/query", "application/json",
			strings.NewReader(`{"point":[0.5,0.5,0.5],"k":3}`))
		if err != nil {
			reqDone <- err
			return
		}
		defer resp.Body.Close()
		status = resp.StatusCode
		body, err = io.ReadAll(resp.Body)
		reqDone <- err
	}()

	<-slow.entered // the request is mid-handler now
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request cut across SIGTERM: %v", err)
	}
	if status != http.StatusOK {
		t.Fatalf("in-flight request got %d across SIGTERM", status)
	}
	var parsed struct {
		Neighbors []struct {
			ID int `json:"id"`
		} `json:"neighbors"`
	}
	if err := json.Unmarshal(body, &parsed); err != nil || len(parsed.Neighbors) != 3 {
		t.Fatalf("truncated or bad body across SIGTERM: %q (%v)", body, err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("GracefulServe: %v", err)
	}
	if slow.done.Load() != 1 {
		t.Fatalf("%d handlers completed, want 1", slow.done.Load())
	}
	if closedAt.Load() == 0 {
		t.Fatal("closer never ran")
	}

	// New connections are refused after shutdown.
	if _, err := http.Get("http://" + ln.Addr().String() + "/healthz"); err == nil {
		t.Fatal("listener still accepting after graceful shutdown")
	}
}

// TestGracefulServeDrainTimeout: a handler slower than the drain budget
// surfaces the Shutdown context error instead of hanging forever.
func TestGracefulServeDrainTimeout(t *testing.T) {
	block := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { <-block })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	serveDone := make(chan error, 1)
	closed := make(chan struct{})
	go func() {
		serveDone <- GracefulServe(ln, h, func() { close(closed) }, stop, 100*time.Millisecond)
	}()
	go http.Get("http://" + ln.Addr().String() + "/hang")
	time.Sleep(50 * time.Millisecond) // let the request reach the handler
	stop <- syscall.SIGTERM
	select {
	case err := <-serveDone:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err=%v, want deadline exceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("GracefulServe hung past its drain timeout")
	}
	<-closed
	close(block)
}

// TestGracefulServeListenerFailure: if the listener dies before any
// signal, the Serve error comes back and the closer still runs.
func TestGracefulServeListenerFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	closed := make(chan struct{})
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- GracefulServe(ln, http.NotFoundHandler(), func() { close(closed) }, stop, time.Second)
	}()
	ln.Close()
	if err := <-serveDone; err == nil {
		t.Fatal("listener failure returned nil")
	}
	<-closed
}
