package server

// Kill-and-replay crash recovery (PR 8, satellite 1): a real child
// process serves a durable index over HTTP, the parent drives a mutation
// workload and SIGKILLs the child at randomized points — including with
// one request in flight — then restarts it and checks the recovered
// index bit-identically matches a reference rebuilt from the
// acknowledged prefix. Mid-append torn writes are covered in-process by
// the wal package tests and TestDurableFaultInjectionRecovery (the
// fault hook); this file covers whole-process crashes.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/wal"
)

const (
	crashChildEnv = "RBC_CRASH_CHILD"
	crashDirEnv   = "RBC_CRASH_DIR"
	crashBaseN    = 300 // bootstrap dataset size, shared parent/child via testData
)

// TestHelperDurableServer is not a test: it is the child process body,
// re-executed from the test binary with RBC_CRASH_CHILD=1. It opens the
// durable server (bootstrapping from the deterministic testData corpus
// on first boot, recovering from disk after crashes), publishes its
// listen address to <dir>/port, and serves until killed.
func TestHelperDurableServer(t *testing.T) {
	if os.Getenv(crashChildEnv) != "1" {
		t.Skip("crash-test helper process")
	}
	dir := os.Getenv(crashDirEnv)
	s, _, err := OpenDurable(testData(crashBaseN), metric.Euclidean{},
		core.ExactParams{Seed: 3, EarlyExit: true},
		DurabilityOptions{Dir: dir, Sync: wal.SyncAlways})
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: %v\n", err)
		os.Exit(1)
	}
	tmp := filepath.Join(dir, "port.tmp")
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "helper: %v\n", err)
		os.Exit(1)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "port")); err != nil {
		fmt.Fprintf(os.Stderr, "helper: %v\n", err)
		os.Exit(1)
	}
	http.Serve(ln, s) // runs until SIGKILL
}

// crashChild manages one child server process.
type crashChild struct {
	cmd  *exec.Cmd
	addr string
}

func startCrashChild(t *testing.T, dir string) *crashChild {
	t.Helper()
	os.Remove(filepath.Join(dir, "port"))
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperDurableServer$", "-test.v=false")
	cmd.Env = append(os.Environ(), crashChildEnv+"=1", crashDirEnv+"="+dir)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &crashChild{cmd: cmd}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(filepath.Join(dir, "port")); err == nil && len(b) > 0 {
			c.addr = string(b)
			return c
		}
		if cmd.ProcessState != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("child never published its address")
	return nil
}

func (c *crashChild) kill(t *testing.T) {
	t.Helper()
	if err := c.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	c.cmd.Wait() // reap; exit error expected after SIGKILL
}

// post sends a JSON request to the child over real HTTP.
func (c *crashChild) post(path string, body interface{}) (int, map[string]json.RawMessage, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post("http://"+c.addr+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var parsed map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		return resp.StatusCode, nil, nil // body may be empty
	}
	return resp.StatusCode, parsed, nil
}

// crashOp is one workload step, also reconstructable from a WAL record.
type crashOp struct {
	insert []float32
	delete int
}

func opFromRecord(rec wal.Record) crashOp {
	if rec.Op == wal.OpInsert {
		return crashOp{insert: rec.Point}
	}
	return crashOp{delete: int(rec.ID)}
}

func (op crashOp) equal(other crashOp) bool {
	if (op.insert == nil) != (other.insert == nil) {
		return false
	}
	if op.insert == nil {
		return op.delete == other.delete
	}
	if len(op.insert) != len(other.insert) {
		return false
	}
	for i := range op.insert {
		if op.insert[i] != other.insert[i] {
			return false
		}
	}
	return true
}

func (op crashOp) send(c *crashChild) (int, map[string]json.RawMessage, error) {
	if op.insert != nil {
		return c.post("/insert", map[string]interface{}{"point": op.insert})
	}
	return c.post("/delete", map[string]int{"id": op.delete})
}

// TestCrashRecoveryKillAndReplay is the kill-and-replay suite. Each
// trial SIGKILLs the child at a randomized point in the workload with
// one mutation deliberately in flight, then verifies:
//
//  1. the surviving WAL holds every acknowledged op, in order, as a
//     prefix (SyncAlways: an ack implies durable), followed by at most
//     the in-flight op;
//  2. the restarted server answers queries bit-identically to a
//     reference index rebuilt from the bootstrap corpus plus exactly
//     the surviving records.
//
// State carries across trials through the same data dir, so later
// trials also exercise recover-then-crash-again, and one trial
// snapshots mid-workload so a kill lands after a generation change.
func TestCrashRecoveryKillAndReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(61))

	// The reference replays everything that ever hit a surviving WAL or
	// snapshot. Tracked ops: all records recovered after each crash.
	ref, err := core.BuildExact(cloneData(testData(crashBaseN)), metric.Euclidean{},
		core.ExactParams{Seed: 3, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	mst := newMutState(crashBaseN)
	queries := testData(12)

	c := startCrashChild(t, dir)
	for trial := 0; trial < 4; trial++ {
		// Records already in the current generation's log (earlier trials
		// share it until a snapshot barrier resets it): this trial's acked
		// ops must appear right after them.
		gen0, err := readCurrent(dir)
		if err != nil {
			t.Fatal(err)
		}
		prior, _, err := wal.ReadRecords(walPath(dir, gen0))
		if err != nil {
			t.Fatal(err)
		}
		base := len(prior)
		killAt := 5 + rng.Intn(25)
		var acked []crashOp
		for i := 0; i < killAt; i++ {
			op := nextCrashOp(rng, mst)
			code, body, err := op.send(c)
			if err != nil || code != http.StatusOK {
				t.Fatalf("trial %d op %d: code %d err %v", trial, i, code, err)
			}
			if op.insert != nil {
				var id int
				if err := json.Unmarshal(body["id"], &id); err != nil {
					t.Fatal(err)
				}
				if id != mst.nextID {
					t.Fatalf("trial %d: insert got id %d, want %d", trial, id, mst.nextID)
				}
				mst.live[id] = true
				mst.nextID++
			} else {
				delete(mst.live, op.delete)
			}
			acked = append(acked, op)
		}
		if trial == 2 { // cross a snapshot barrier before one of the kills
			if code, _, err := c.post("/snapshot", nil); err != nil || code != http.StatusOK {
				t.Fatalf("trial %d snapshot: code %d err %v", trial, code, err)
			}
			base = 0 // the barrier reset the log; acked ops now live in the snapshot
		}

		// Fire one more mutation and SIGKILL without waiting for the ack:
		// the kill races the append, so the op lands durably or not at all.
		inflight := nextCrashOp(rng, mst)
		go inflight.send(c)
		time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
		c.kill(t)

		// Decide the trial's ground truth from the surviving log, before
		// the restart mutates anything on disk.
		gen, err := readCurrent(dir)
		if err != nil {
			t.Fatalf("trial %d: reading CURRENT: %v", trial, err)
		}
		recs, _, err := wal.ReadRecords(walPath(dir, gen))
		if err != nil {
			t.Fatalf("trial %d: reading wal: %v", trial, err)
		}
		// Acked ops since the last barrier must form a durable prefix
		// right after the pre-trial records. A snapshot resets the log, so
		// trial 2's acked ops live in the snapshot and only the in-flight
		// op may appear in the fresh log.
		ackedTail := acked
		if trial == 2 {
			ackedTail = nil
		}
		if len(recs) < base+len(ackedTail) || len(recs) > base+len(ackedTail)+1 {
			t.Fatalf("trial %d: %d surviving records for %d prior + %d acked (+1 in flight max)",
				trial, len(recs), base, len(ackedTail))
		}
		for i, op := range ackedTail {
			if !opFromRecord(recs[base+i]).equal(op) {
				t.Fatalf("trial %d: record %d diverges from acked op", trial, base+i)
			}
		}
		if len(recs) == base+len(ackedTail)+1 && !opFromRecord(recs[len(recs)-1]).equal(inflight) {
			t.Fatalf("trial %d: unexpected trailing record", trial)
		}

		// Advance the reference by what actually survived.
		survived := append([]crashOp(nil), acked...)
		if len(recs) == base+len(ackedTail)+1 {
			survived = append(survived, inflight)
			if inflight.insert != nil {
				mst.live[mst.nextID] = true
				mst.nextID++
			} else {
				delete(mst.live, inflight.delete)
			}
		}
		for _, op := range survived {
			if op.insert != nil {
				ref.Insert(append([]float32(nil), op.insert...))
			} else if err := ref.Delete(op.delete); err != nil {
				t.Fatalf("trial %d: reference delete: %v", trial, err)
			}
		}

		// Restart and compare answers bit-for-bit.
		c = startCrashChild(t, dir)
		for qi := 0; qi < queries.N(); qi++ {
			q := queries.Row(qi)
			code, body, err := c.post("/query", map[string]interface{}{"point": q, "k": 5})
			if err != nil || code != http.StatusOK {
				t.Fatalf("trial %d query %d: code %d err %v", trial, qi, code, err)
			}
			var got []neighborBody
			if err := json.Unmarshal(body["neighbors"], &got); err != nil {
				t.Fatal(err)
			}
			want, _ := ref.KNN(q, 5)
			if len(got) != len(want) {
				t.Fatalf("trial %d query %d: %d neighbors, reference %d", trial, qi, len(got), len(want))
			}
			for p := range got {
				if got[p].ID != want[p].ID || got[p].Dist != want[p].Dist {
					t.Fatalf("trial %d query %d pos %d: recovered (%d, %v), reference (%d, %v)",
						trial, qi, p, got[p].ID, got[p].Dist, want[p].ID, want[p].Dist)
				}
			}
		}
	}
	c.kill(t)
}

func nextCrashOp(rng *rand.Rand, mst *mutState) crashOp {
	if rng.Intn(3) > 0 || len(mst.live) == 0 {
		return crashOp{insert: []float32{
			float32(rng.Intn(8)) / 2, float32(rng.Intn(8)) / 2, float32(rng.Intn(8)) / 2,
		}}
	}
	// Deterministic victim: smallest live id (map iteration order would
	// desync parent bookkeeping from nothing here, but stay predictable).
	victim := -1
	for id := range mst.live {
		if victim < 0 || id < victim {
			victim = id
		}
	}
	return crashOp{delete: victim}
}
