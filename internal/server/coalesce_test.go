package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metric"
	"repro/internal/vec"
)

func newCoalescedServer(t *testing.T, n, maxBatch int, maxWait time.Duration) (*Server, *Server, *vec.Dataset) {
	t.Helper()
	db := testData(n)
	idx, err := core.BuildExact(db, metric.Euclidean{}, core.ExactParams{Seed: 3, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	co := NewExact(db, metric.Euclidean{}, idx, WithCoalescing(maxBatch, maxWait))
	plain := NewExact(db, metric.Euclidean{}, idx)
	return co, plain, db
}

func postQuery(s *Server, q []float32, k int) (*httptest.ResponseRecorder, queryResponse) {
	raw, _ := json.Marshal(queryRequest{Point: q, K: k})
	req := httptest.NewRequest("POST", "/query", bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var resp queryResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &resp)
	return rec, resp
}

// Coalesced responses must be bit-identical to the per-query path, under
// real concurrency (run with -race). Mixed k values exercise the
// group-by-k split.
func TestCoalescedMatchesPerQuery(t *testing.T) {
	co, plain, db := newCoalescedServer(t, 800, 16, 200*time.Microsecond)
	defer co.Close()
	const workers = 8
	const perWorker = 40
	rng := rand.New(rand.NewSource(99))
	queries := make([][]float32, workers*perWorker)
	for i := range queries {
		queries[i] = append([]float32(nil), db.Row(rng.Intn(db.N()))...)
		for j := range queries[i] {
			queries[i][j] += rng.Float32() * 0.1
		}
	}
	var wg sync.WaitGroup
	errs := make(chan string, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := queries[w*perWorker+i]
				k := 1 + (w+i)%3
				rec, got := postQuery(co, q, k)
				if rec.Code != http.StatusOK {
					errs <- fmt.Sprintf("coalesced query: %d %s", rec.Code, rec.Body.String())
					return
				}
				rec2, want := postQuery(plain, q, k)
				if rec2.Code != http.StatusOK {
					errs <- fmt.Sprintf("plain query: %d", rec2.Code)
					return
				}
				if len(got.Neighbors) != len(want.Neighbors) {
					errs <- fmt.Sprintf("neighbor count %d want %d", len(got.Neighbors), len(want.Neighbors))
					return
				}
				for p := range want.Neighbors {
					if got.Neighbors[p] != want.Neighbors[p] {
						errs <- fmt.Sprintf("q%d pos %d: %+v want %+v", w*perWorker+i, p, got.Neighbors[p], want.Neighbors[p])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	st := co.co.stats()
	if st.Queries != workers*perWorker {
		t.Fatalf("coalescer saw %d queries, want %d", st.Queries, workers*perWorker)
	}
	if st.MaxBatchSeen < 2 {
		t.Logf("warning: no batching realized (max batch %d) — machine too serial?", st.MaxBatchSeen)
	}
}

// A lone query must not wait for a full batch: the max-wait timer flushes
// it, and the flush is accounted as wait-triggered.
func TestMaxWaitFlush(t *testing.T) {
	co, _, db := newCoalescedServer(t, 300, 1024, time.Millisecond)
	defer co.Close()
	start := time.Now()
	rec, resp := postQuery(co, db.Row(7), 2)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
	}
	if len(resp.Neighbors) != 2 {
		t.Fatalf("neighbors: %+v", resp.Neighbors)
	}
	if resp.Batch != 1 {
		t.Fatalf("lone query reported batch %d", resp.Batch)
	}
	// Generous bound: the only requirement is that the timer, not a full
	// batch (1024 queries that never arrive), released the query.
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("lone query waited %v", waited)
	}
	st := co.co.stats()
	if st.WaitFlushes != 1 || st.SizeFlushes != 0 {
		t.Fatalf("flush accounting: %+v", st)
	}
}

// A full batch must flush by size, without waiting out the timer.
func TestSizeFlush(t *testing.T) {
	const batchN = 4
	co, _, db := newCoalescedServer(t, 300, batchN, time.Hour)
	defer co.Close()
	var wg sync.WaitGroup
	codes := make([]int, batchN)
	for i := 0; i < batchN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, resp := postQuery(co, db.Row(i), 1)
			codes[i] = rec.Code
			_ = resp
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("size-triggered flush never happened (maxWait is 1h)")
	}
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("query %d: %d", i, c)
		}
	}
	st := co.co.stats()
	if st.SizeFlushes == 0 {
		t.Fatalf("no size-triggered flush recorded: %+v", st)
	}
}

// Close must drain parked queries (answering them) and reject later ones.
func TestShutdownDrainsPending(t *testing.T) {
	co, _, db := newCoalescedServer(t, 300, 1024, time.Hour)
	const parked = 5
	var wg sync.WaitGroup
	codes := make([]int, parked)
	counts := make([]int, parked)
	for i := 0; i < parked; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, resp := postQuery(co, db.Row(i), 1)
			codes[i] = rec.Code
			counts[i] = len(resp.Neighbors)
		}(i)
	}
	// Wait until all five are parked in the queue (none can flush: the
	// batch holds 1024 and the timer fires in an hour).
	deadline := time.Now().Add(30 * time.Second)
	for {
		co.co.mu.Lock()
		n := len(co.co.queue)
		co.co.mu.Unlock()
		if n == parked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d queries parked", n, parked)
		}
		time.Sleep(time.Millisecond)
	}
	co.Close()
	wg.Wait()
	for i := range codes {
		if codes[i] != http.StatusOK || counts[i] != 1 {
			t.Fatalf("drained query %d: code %d, %d neighbors", i, codes[i], counts[i])
		}
	}
	st := co.co.stats()
	if st.DrainFlushes != 1 {
		t.Fatalf("drain accounting: %+v", st)
	}
	// After Close, coalesced queries are refused.
	rec, _ := postQuery(co, db.Row(0), 1)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("query after close: %d", rec.Code)
	}
	co.Close() // idempotent
}

// A client-supplied k beyond the database size must be clamped, not
// crash the process or strand other parked queries (heap capacity is
// sized from k).
func TestHugeKIsClamped(t *testing.T) {
	co, plain, db := newCoalescedServer(t, 100, 8, 100*time.Microsecond)
	defer co.Close()
	for _, s := range []*Server{co, plain} {
		rec, resp := postQuery(s, db.Row(0), 1<<60)
		if rec.Code != http.StatusOK {
			t.Fatalf("huge k: %d %s", rec.Code, rec.Body.String())
		}
		if len(resp.Neighbors) != db.N() {
			t.Fatalf("huge k returned %d neighbors, want %d", len(resp.Neighbors), db.N())
		}
	}
}

// The /stats endpoint must surface the coalescer counters.
func TestStatsReportCoalescing(t *testing.T) {
	co, plain, db := newCoalescedServer(t, 300, 8, 100*time.Microsecond)
	defer co.Close()
	postQuery(co, db.Row(0), 1)
	rec, body := do(t, co, "GET", "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var cs coalesceStats
	if err := json.Unmarshal(body["coalesce"], &cs); err != nil {
		t.Fatal(err)
	}
	if !cs.Enabled || cs.MaxBatch != 8 || cs.MaxWaitUS != 100 || cs.Queries != 1 || cs.Flushes != 1 {
		t.Fatalf("coalesce stats: %+v", cs)
	}
	_, body = do(t, plain, "GET", "/stats", nil)
	if err := json.Unmarshal(body["coalesce"], &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Enabled {
		t.Fatal("plain server reports coalescing enabled")
	}
}

// benchServer measures closed-loop QPS with `clients` concurrent
// goroutines hammering /query — the serving-side view of the paper's
// claim that queries want to travel in blocks. The acceptance workload
// is n=10k, dim 64, 64 clients: overlapping dim-64 Gaussian clusters
// with held-out queries, the compute-bound serving regime where exact
// metric search earns its keep (and where the per-request fixed cost of
// HTTP+JSON does not drown the search itself).
func benchServer(b *testing.B, coalesce bool) {
	const (
		n       = 10000
		dim     = 64
		clients = 64
	)
	all := dataset.GaussianClusters(n+256, dim, 32, 5.0, 7)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	db := all.Subset(ids)
	idx, err := core.BuildExact(db, metric.Euclidean{}, core.ExactParams{Seed: 3, EarlyExit: true})
	if err != nil {
		b.Fatal(err)
	}
	var s *Server
	if coalesce {
		s = NewExact(db, metric.Euclidean{}, idx, WithCoalescing(clients, 500*time.Microsecond))
		defer s.Close()
	} else {
		s = NewExact(db, metric.Euclidean{}, idx)
	}
	bodies := make([][]byte, 256)
	for i := range bodies {
		bodies[i], _ = json.Marshal(queryRequest{Point: all.Row(n + i), K: 1})
	}
	// RunParallel spawns GOMAXPROCS*parallelism goroutines; round up to
	// reach the target client count.
	b.SetParallelism((clients + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(worker.Add(1)) * 37
		for pb.Next() {
			i++
			req := httptest.NewRequest("POST", "/query", bytes.NewReader(bodies[i%len(bodies)]))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Errorf("query: %d", rec.Code)
				return
			}
		}
	})
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "qps")
	}
}

func BenchmarkServerCoalesced(b *testing.B) { benchServer(b, true) }
func BenchmarkServerPerQuery(b *testing.B)  { benchServer(b, false) }
