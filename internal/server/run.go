package server

import (
	"context"
	"net"
	"net/http"
	"os"
	"time"
)

// GracefulServe runs h over HTTP on ln until a value arrives on stop
// (typically a signal.Notify channel for SIGINT/SIGTERM), then shuts
// down in the only order that cannot lose acknowledged work:
//
//  1. http.Server.Shutdown — stop accepting, let every in-flight
//     handler run to completion (bounded by drainTimeout);
//  2. closer — the Server's own teardown (flush parked coalesced
//     queries, stop the snapshot loop, close the WAL).
//
// The pre-fix shutdown path called Server.Close and os.Exit around a
// bare http.ListenAndServe: in-flight responses were cut mid-body, and
// a racing /insert could be acked while the WAL was being closed under
// it. Draining handlers first makes "acked" mean "durable" across a
// SIGTERM.
//
// GracefulServe returns nil after a clean drain; the Shutdown context
// error (e.g. context.DeadlineExceeded) if the drain timed out; or the
// Serve error if the listener failed before any stop arrived. closer
// runs exactly once on every path.
func GracefulServe(ln net.Listener, h http.Handler, closer func(), stop <-chan os.Signal, drainTimeout time.Duration) error {
	hs := &http.Server{Handler: h}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		// Listener failure (or external hs manipulation): nothing is
		// accepting, so closing immediately cannot cut a response.
		closer()
		return err
	case <-stop:
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err := hs.Shutdown(ctx) // stops accepting, waits for handlers
	<-serveErr              // Serve has returned http.ErrServerClosed
	closer()                // no traffic left: safe to close coalescers + WAL
	return err
}
