package server

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/vec"
	"repro/internal/wal"
)

// Durability for the exact-mode server: a write-ahead log of
// insert/delete records plus generation-numbered snapshots, LevelDB
// CURRENT-style. The data directory holds
//
//	CURRENT            the committed generation number (atomic rename)
//	snapshot-<g>.rbc   dataset + index image for generation g (g >= 1)
//	wal-<g>.log        mutations applied since snapshot g
//
// Mutations are write-ahead: the handler validates, appends the record
// to wal-<g>.log (fsynced per the configured mode), and only then
// applies it in memory and acknowledges. Under SyncAlways an
// acknowledged mutation is durable; under SyncInterval/SyncNone the
// tail of acknowledged mutations since the last fsync can be lost to a
// crash — never reordered or corrupted, the log recovers to a clean
// prefix of what was acknowledged.
//
// A snapshot runs under the write lock, so the log is quiescent:
// Flush the index (fold insertion buffers; answer-neutral), write
// snapshot-<g+1>.rbc and an empty wal-<g+1>.log durably, then commit by
// renaming CURRENT to name g+1. A crash anywhere before the CURRENT
// rename recovers from generation g with the full old log (the half-
// written g+1 files are swept at startup); after it, from g+1 with an
// empty log. No window double-applies or drops a record.
//
// Recovery is the mirror image: read CURRENT, load snapshot-<g> (or
// bootstrap from a dataset when g = 0), replay wal-<g> through the
// same CheckDelete/Insert path the handlers use, truncating any torn
// or corrupt tail (see internal/wal), and sweep stale generations.

// DurabilityOptions configures OpenDurable.
type DurabilityOptions struct {
	// Dir is the data directory; created if missing.
	Dir string
	// Sync selects the WAL fsync policy (wal.SyncAlways is the durable
	// default; see wal.SyncMode).
	Sync wal.SyncMode
	// SyncEvery is the group-commit interval under wal.SyncInterval.
	SyncEvery time.Duration
	// SnapshotEvery, when > 0, snapshots periodically in the background;
	// POST /snapshot triggers one on demand either way.
	SnapshotEvery time.Duration
	// FaultHook passes through to wal.Options.FaultHook (crash tests).
	FaultHook func(frame []byte) int
}

// durability is the server-side state behind DurabilityOptions.
type durability struct {
	dir  string
	opts wal.Options

	gen        atomic.Int64 // committed generation (written under snapMu)
	wal        *wal.Log
	replay     wal.ReplayStats
	replayTime time.Duration

	snapMu    sync.Mutex // serializes snapshot attempts (manual vs periodic)
	snapshots atomic.Int64
	snapErrs  atomic.Int64

	snapEvery time.Duration
	stopc     chan struct{}
	wg        sync.WaitGroup
}

const snapshotFileVersion = 1

// snapshotFile is the on-disk snapshot image: the full dataset
// (tombstoned rows included, so database ids stay stable across
// restore — the property WAL replay depends on) plus the serialized
// index, which carries the tombstones (core snapshot v2). One gob
// stream end to end: vec's binary reader buffers past its own frame,
// so concatenated formats cannot share a file.
type snapshotFile struct {
	Version int
	Dim     int
	Data    []float32
	Index   []byte
}

func currentPath(dir string) string { return filepath.Join(dir, "CURRENT") }
func snapshotPath(dir string, gen int) string {
	return filepath.Join(dir, fmt.Sprintf("snapshot-%d.rbc", gen))
}
func walPath(dir string, gen int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%d.log", gen))
}

// readCurrent returns the committed generation, 0 when CURRENT does not
// exist (fresh directory: bootstrap plus wal-0.log).
func readCurrent(dir string) (int, error) {
	b, err := os.ReadFile(currentPath(dir))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	gen, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil || gen < 0 {
		return 0, fmt.Errorf("server: corrupt CURRENT %q", strings.TrimSpace(string(b)))
	}
	return gen, nil
}

// writeFileDurable writes data to path atomically: temp file in the
// same directory, fsync, rename, directory fsync. Readers see either
// the old file or the complete new one, never a torn write.
func writeFileDurable(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// sweepStale removes snapshot/wal files from generations other than the
// committed one — leftovers of a crash mid-snapshot. Best-effort: a
// failed removal costs disk, not correctness.
func sweepStale(dir string, gen int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	keepSnap := fmt.Sprintf("snapshot-%d.rbc", gen)
	keepWAL := fmt.Sprintf("wal-%d.log", gen)
	for _, ent := range entries {
		name := ent.Name()
		stale := (strings.HasPrefix(name, "snapshot-") && name != keepSnap) ||
			(strings.HasPrefix(name, "wal-") && name != keepWAL)
		if stale {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// loadSnapshotFile restores the dataset and index image of one
// generation.
func loadSnapshotFile(path string, m metric.Metric[[]float32]) (*vec.Dataset, *core.Exact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var snap snapshotFile
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return nil, nil, fmt.Errorf("server: decoding snapshot %s: %w", path, err)
	}
	if snap.Version != snapshotFileVersion {
		return nil, nil, fmt.Errorf("server: unsupported snapshot version %d", snap.Version)
	}
	if snap.Dim <= 0 || len(snap.Data)%snap.Dim != 0 {
		return nil, nil, fmt.Errorf("server: corrupt snapshot: %d floats at dim %d", len(snap.Data), snap.Dim)
	}
	db := vec.FromFlat(snap.Data, snap.Dim)
	idx, err := core.LoadExact(bytes.NewReader(snap.Index), db, m)
	if err != nil {
		return nil, nil, fmt.Errorf("server: snapshot index: %w", err)
	}
	return db, idx, nil
}

// encodeSnapshotFile serializes the dataset + index image. The index
// must have no pending insertion buffers (callers Flush first).
func encodeSnapshotFile(db *vec.Dataset, idx *core.Exact) ([]byte, error) {
	var ib bytes.Buffer
	if err := idx.Save(&ib); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&snapshotFile{
		Version: snapshotFileVersion,
		Dim:     db.Dim,
		Data:    db.Data,
		Index:   ib.Bytes(),
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// OpenDurable builds an exact-mode server whose mutations survive
// restarts: it recovers the committed snapshot generation from
// d.Dir (bootstrapping the index from bootstrap when the directory is
// fresh), replays the generation's WAL, and serves with write-ahead
// logging on /insert and /delete plus snapshots on demand
// (POST /snapshot) and optionally on a timer. bootstrap may be nil
// when the directory already holds a snapshot; prm applies only to the
// bootstrap build (a restored snapshot carries its own parameters).
func OpenDurable(bootstrap *vec.Dataset, m metric.Metric[[]float32], prm core.ExactParams,
	d DurabilityOptions, opts ...Option) (*Server, wal.ReplayStats, error) {
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return nil, wal.ReplayStats{}, err
	}
	gen, err := readCurrent(d.Dir)
	if err != nil {
		return nil, wal.ReplayStats{}, err
	}
	sweepStale(d.Dir, gen)

	var db *vec.Dataset
	var idx *core.Exact
	if gen > 0 {
		db, idx, err = loadSnapshotFile(snapshotPath(d.Dir, gen), m)
		if err != nil {
			return nil, wal.ReplayStats{}, err
		}
	} else {
		if bootstrap == nil {
			return nil, wal.ReplayStats{}, fmt.Errorf("server: no snapshot in %s and no bootstrap dataset", d.Dir)
		}
		db = bootstrap
		idx, err = core.BuildExact(db, m, prm)
		if err != nil {
			return nil, wal.ReplayStats{}, err
		}
	}

	dur := &durability{
		dir:       d.Dir,
		opts:      wal.Options{Sync: d.Sync, SyncEvery: d.SyncEvery, FaultHook: d.FaultHook},
		snapEvery: d.SnapshotEvery,
		stopc:     make(chan struct{}),
	}
	dur.gen.Store(int64(gen))
	// Replay through the same validate-then-apply path the handlers use,
	// so a record the handlers acknowledged always applies cleanly.
	start := time.Now()
	w, replay, err := wal.Open(walPath(d.Dir, gen), dur.opts, func(rec wal.Record) error {
		switch rec.Op {
		case wal.OpInsert:
			if len(rec.Point) != db.Dim {
				return fmt.Errorf("server: replayed insert has %d dims, index has %d", len(rec.Point), db.Dim)
			}
			idx.Insert(rec.Point)
			return nil
		case wal.OpDelete:
			return idx.Delete(int(rec.ID))
		default:
			return fmt.Errorf("server: replayed unknown op %d", rec.Op)
		}
	})
	if err != nil {
		return nil, wal.ReplayStats{}, err
	}
	dur.wal = w
	dur.replay = replay
	dur.replayTime = time.Since(start)

	s := NewExact(db, m, idx, opts...)
	s.dur = dur
	if dur.snapEvery > 0 {
		dur.wg.Add(1)
		go dur.snapshotLoop(s)
	}
	return s, replay, nil
}

// snapshotLoop drives periodic snapshots until Close.
func (d *durability) snapshotLoop(s *Server) {
	defer d.wg.Done()
	t := time.NewTicker(d.snapEvery)
	defer t.Stop()
	for {
		select {
		case <-d.stopc:
			return
		case <-t.C:
			_, _ = s.Snapshot()
		}
	}
}

// close stops the periodic loop and closes the WAL (final sync under
// SyncInterval/SyncNone).
func (d *durability) close() error {
	select {
	case <-d.stopc:
	default:
		close(d.stopc)
	}
	d.wg.Wait()
	return d.wal.Close()
}

// Snapshot persists the current index state and resets the WAL,
// committing a new generation; it returns the generation number. Runs
// under the write lock (mutations quiesce for the duration) and is a
// no-op error on non-durable servers.
func (s *Server) Snapshot() (int, error) {
	if s.dur == nil {
		return 0, fmt.Errorf("server: not a durable server")
	}
	d := s.dur
	// One snapshot at a time; the write lock is taken inside so parked
	// snapshot attempts don't stack up behind each other holding it.
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	gen, err := d.snapshotLocked(s.db, s.exact)
	if err != nil {
		d.snapErrs.Add(1)
		return 0, err
	}
	d.snapshots.Add(1)
	return gen, nil
}

// snapshotLocked writes generation gen+1 and commits it. Caller holds
// the server write lock and d.snapMu.
func (d *durability) snapshotLocked(db *vec.Dataset, idx *core.Exact) (int, error) {
	idx.Flush() // fold insertion buffers; answer-neutral, required by Save
	img, err := encodeSnapshotFile(db, idx)
	if err != nil {
		return 0, err
	}
	next := int(d.gen.Load()) + 1
	if err := writeFileDurable(snapshotPath(d.dir, next), img); err != nil {
		return 0, err
	}
	// A fresh, empty log for the new generation. Opened before CURRENT
	// commits: if we crash here, recovery still reads generation d.gen
	// and sweeps these files.
	nw, _, err := wal.Open(walPath(d.dir, next), d.opts, nil)
	if err != nil {
		return 0, err
	}
	if err := writeFileDurable(currentPath(d.dir), []byte(strconv.Itoa(next)+"\n")); err != nil {
		nw.Close()
		os.Remove(walPath(d.dir, next))
		os.Remove(snapshotPath(d.dir, next))
		return 0, err
	}
	// Committed. Swap logs and drop the superseded generation. The wal
	// swap happens under the server write lock, which every d.wal reader
	// (handlers, stats) holds at least for read.
	old, oldGen := d.wal, int(d.gen.Load())
	d.wal = nw
	d.gen.Store(int64(next))
	old.Close()
	os.Remove(old.Path())
	if oldGen > 0 {
		os.Remove(snapshotPath(d.dir, oldGen))
	}
	return next, nil
}

// logInsert appends an insert record and makes it as durable as the
// sync mode promises. Caller holds the write lock.
func (d *durability) logInsert(p []float32) error {
	return d.wal.AppendInsert(p)
}

// logDelete appends a delete record. Caller holds the write lock and
// has already validated via CheckDelete.
func (d *durability) logDelete(id int) error {
	return d.wal.AppendDelete(id)
}

// durabilityStats is the /stats durability section.
type durabilityStats struct {
	Dir            string `json:"dir"`
	SyncMode       string `json:"sync_mode"`
	Generation     int    `json:"generation"`
	ReplayRecords  int    `json:"replay_records"`
	ReplayTruncB   int64  `json:"replay_truncated_bytes"`
	ReplayMicros   int64  `json:"replay_micros"`
	WALRecords     int64  `json:"wal_records"`
	WALBytes       int64  `json:"wal_bytes"`
	WALSyncs       int64  `json:"wal_syncs"`
	Snapshots      int64  `json:"snapshots"`
	SnapshotErrors int64  `json:"snapshot_errors"`
}

// stats is called under the server read lock (which pins d.wal).
func (d *durability) stats() *durabilityStats {
	ws := d.wal.Stats()
	return &durabilityStats{
		Dir:            d.dir,
		SyncMode:       d.opts.Sync.String(),
		Generation:     int(d.gen.Load()),
		ReplayRecords:  d.replay.Records,
		ReplayTruncB:   d.replay.TruncatedBytes,
		ReplayMicros:   d.replayTime.Microseconds(),
		WALRecords:     ws.Records,
		WALBytes:       ws.Bytes,
		WALSyncs:       ws.Syncs,
		Snapshots:      d.snapshots.Load(),
		SnapshotErrors: d.snapErrs.Load(),
	}
}
