package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/vec"
)

func testData(n int) *vec.Dataset {
	rng := rand.New(rand.NewSource(1))
	db := vec.New(3, n)
	for i := 0; i < n; i++ {
		c := float32(rng.Intn(5)) * 4
		db.Append([]float32{c + rng.Float32(), c + rng.Float32(), c + rng.Float32()})
	}
	return db
}

func newExactServer(t *testing.T, n int) (*Server, *vec.Dataset) {
	t.Helper()
	db := testData(n)
	idx, err := core.BuildExact(db, metric.Euclidean{}, core.ExactParams{Seed: 3, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	return NewExact(db, metric.Euclidean{}, idx), db
}

func do(t *testing.T, s *Server, method, path string, body interface{}) (*httptest.ResponseRecorder, map[string]json.RawMessage) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var parsed map[string]json.RawMessage
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &parsed); err != nil {
			t.Fatalf("%s %s: bad JSON %q", method, path, rec.Body.String())
		}
	}
	return rec, parsed
}

func TestHealthAndStats(t *testing.T) {
	s, db := newExactServer(t, 300)
	rec, _ := do(t, s, "GET", "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	rec, body := do(t, s, "GET", "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var st statsBody
	raw, _ := json.Marshal(body)
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Mode != "exact" || st.Points != db.N() || st.Dim != 3 || st.Dirty {
		t.Fatalf("stats body: %+v", st)
	}
}

func TestQueryMatchesBruteForce(t *testing.T) {
	s, db := newExactServer(t, 500)
	q := []float32{4.2, 4.1, 4.3}
	rec, _ := do(t, s, "POST", "/query", queryRequest{Point: q, K: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
	}
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want := bruteforce.SearchOneK(q, db, 3, metric.Euclidean{}, nil)
	if len(resp.Neighbors) != 3 {
		t.Fatalf("neighbors: %v", resp.Neighbors)
	}
	for i := range want {
		if resp.Neighbors[i].Dist != want[i].Dist {
			t.Fatalf("pos %d: %v want %v", i, resp.Neighbors[i].Dist, want[i].Dist)
		}
	}
	if resp.Evals == 0 {
		t.Fatal("evals missing")
	}
}

func TestQueryValidation(t *testing.T) {
	s, _ := newExactServer(t, 100)
	rec, _ := do(t, s, "POST", "/query", queryRequest{Point: []float32{1, 2}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("dim mismatch: %d", rec.Code)
	}
	req := httptest.NewRequest("POST", "/query", bytes.NewReader([]byte("{not json")))
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusBadRequest {
		t.Fatalf("bad json: %d", rec2.Code)
	}
	// Default k is 1.
	rec3, _ := do(t, s, "POST", "/query", queryRequest{Point: []float32{0, 0, 0}})
	var resp queryResponse
	if err := json.Unmarshal(rec3.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Neighbors) != 1 {
		t.Fatalf("default k: %v", resp.Neighbors)
	}
}

func TestRangeEndpoint(t *testing.T) {
	s, db := newExactServer(t, 400)
	q := []float32{8.5, 8.5, 8.5}
	rec, _ := do(t, s, "POST", "/range", queryRequest{Point: q, Eps: 1.5})
	if rec.Code != http.StatusOK {
		t.Fatalf("range: %d %s", rec.Code, rec.Body.String())
	}
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want := bruteforce.RangeSearch(q, db, 1.5, metric.Euclidean{}, nil)
	if len(resp.Neighbors) != len(want) {
		t.Fatalf("range hits %d want %d", len(resp.Neighbors), len(want))
	}
	rec2, _ := do(t, s, "POST", "/range", queryRequest{Point: q, Eps: -1})
	if rec2.Code != http.StatusBadRequest {
		t.Fatalf("negative eps: %d", rec2.Code)
	}
}

func TestMutationLifecycle(t *testing.T) {
	s, db := newExactServer(t, 200)
	// Insert a point, find it, delete it, stop finding it.
	p := []float32{-50, -50, -50}
	rec, body := do(t, s, "POST", "/insert", queryRequest{Point: p})
	if rec.Code != http.StatusOK {
		t.Fatalf("insert: %d %s", rec.Code, rec.Body.String())
	}
	var id int
	if err := json.Unmarshal(body["id"], &id); err != nil {
		t.Fatal(err)
	}
	if id != 200 {
		t.Fatalf("insert id %d", id)
	}
	rec, _ = do(t, s, "POST", "/query", queryRequest{Point: p, K: 1})
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Neighbors[0].ID != id || resp.Neighbors[0].Dist != 0 {
		t.Fatalf("inserted point not found: %+v", resp.Neighbors[0])
	}
	// Stats should report dirty and live=201.
	_, sb := do(t, s, "GET", "/stats", nil)
	var st statsBody
	raw, _ := json.Marshal(sb)
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Dirty || st.Live != 201 {
		t.Fatalf("stats after insert: %+v", st)
	}
	// Delete it.
	rec, _ = do(t, s, "POST", "/delete", deleteRequest{ID: id})
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: %d %s", rec.Code, rec.Body.String())
	}
	rec, _ = do(t, s, "POST", "/query", queryRequest{Point: p, K: 1})
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Neighbors[0].ID == id {
		t.Fatal("deleted point still returned")
	}
	// Rebuild and confirm cleanliness.
	rec, _ = do(t, s, "POST", "/rebuild", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("rebuild: %d", rec.Code)
	}
	// Double delete errors.
	rec, _ = do(t, s, "POST", "/delete", deleteRequest{ID: id})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("double delete: %d", rec.Code)
	}
	_ = db
}

func TestOneShotServerReadOnly(t *testing.T) {
	db := testData(300)
	idx, err := core.BuildOneShot(db, metric.Euclidean{}, core.OneShotParams{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := NewOneShot(db, metric.Euclidean{}, idx)
	rec, _ := do(t, s, "POST", "/query", queryRequest{Point: []float32{1, 1, 1}, K: 2})
	if rec.Code != http.StatusOK {
		t.Fatalf("oneshot query: %d", rec.Code)
	}
	for _, path := range []string{"/insert", "/delete", "/rebuild", "/range"} {
		rec, _ := do(t, s, "POST", path, queryRequest{Point: []float32{1, 1, 1}})
		if rec.Code != http.StatusNotImplemented {
			t.Fatalf("%s on oneshot: %d", path, rec.Code)
		}
	}
	_, sb := do(t, s, "GET", "/stats", nil)
	var st statsBody
	raw, _ := json.Marshal(sb)
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Mode != "oneshot" {
		t.Fatalf("mode: %+v", st)
	}
}

func TestMethodRouting(t *testing.T) {
	s, _ := newExactServer(t, 100)
	req := httptest.NewRequest("GET", "/query", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed && rec.Code != http.StatusNotFound {
		t.Fatalf("GET /query: %d", rec.Code)
	}
}

func TestConcurrentQueriesAndMutations(t *testing.T) {
	s, db := newExactServer(t, 400)
	// Snapshot query points: the server may grow db concurrently, and
	// Dataset rows are views into a reallocatable buffer.
	points := make([][]float32, 20)
	for i := range points {
		points[i] = append([]float32(nil), db.Row(i)...)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch (w + i) % 3 {
				case 0:
					rec, _ := do(t, s, "POST", "/query", queryRequest{Point: points[i], K: 2})
					if rec.Code != http.StatusOK {
						errs <- fmt.Sprintf("query: %d", rec.Code)
					}
				case 1:
					rec, _ := do(t, s, "POST", "/insert", queryRequest{Point: []float32{float32(w), float32(i), 0}})
					if rec.Code != http.StatusOK {
						errs <- fmt.Sprintf("insert: %d", rec.Code)
					}
				case 2:
					rec, _ := do(t, s, "GET", "/stats", nil)
					if rec.Code != http.StatusOK {
						errs <- fmt.Sprintf("stats: %d", rec.Code)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
