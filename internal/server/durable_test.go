package server

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/vec"
	"repro/internal/wal"
)

// cloneData deep-copies a dataset so a durable server and its replay
// reference never share backing storage (Insert grows both).
func cloneData(db *vec.Dataset) *vec.Dataset {
	return vec.FromFlat(append([]float32(nil), db.Data...), db.Dim)
}

func openDurable(t *testing.T, dir string, bootstrap *vec.Dataset, d DurabilityOptions) *Server {
	t.Helper()
	d.Dir = dir
	s, _, err := OpenDurable(bootstrap, metric.Euclidean{}, core.ExactParams{Seed: 3, EarlyExit: true}, d)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mutOp is one step of a recorded mutation history, replayable onto a
// reference index.
type mutOp struct {
	insert []float32
	delete int
}

func applyOps(t *testing.T, idx *core.Exact, ops []mutOp) {
	t.Helper()
	for _, op := range ops {
		if op.insert != nil {
			idx.Insert(op.insert)
		} else if err := idx.Delete(op.delete); err != nil {
			t.Fatal(err)
		}
	}
}

// mutState tracks which ids are live across driveOps calls (and across
// server restarts — ids are stable, so the state carries over).
type mutState struct {
	nextID int
	live   map[int]bool
}

func newMutState(n int) *mutState {
	st := &mutState{nextID: n, live: make(map[int]bool, n)}
	for i := 0; i < n; i++ {
		st.live[i] = true
	}
	return st
}

// driveOps sends a deterministic insert/delete mix through the HTTP
// mutation path and returns the acknowledged history.
func driveOps(t *testing.T, s *Server, rng *rand.Rand, n int, st *mutState) []mutOp {
	t.Helper()
	var ops []mutOp
	for i := 0; i < n; i++ {
		if rng.Intn(3) > 0 || len(st.live) == 0 { // inserts twice as often
			p := []float32{float32(rng.Intn(8)) / 2, float32(rng.Intn(8)) / 2, float32(rng.Intn(8)) / 2}
			rec, body := do(t, s, "POST", "/insert", map[string]interface{}{"point": p})
			if rec.Code != http.StatusOK {
				t.Fatalf("insert %d: %d %s", i, rec.Code, rec.Body.String())
			}
			var id int
			if err := json.Unmarshal(body["id"], &id); err != nil {
				t.Fatal(err)
			}
			if id != st.nextID {
				t.Fatalf("insert %d: id %d, want %d", i, id, st.nextID)
			}
			ops = append(ops, mutOp{insert: p})
			st.live[id] = true
			st.nextID++
			continue
		}
		var victim int
		for victim = range st.live {
			break
		}
		rec, _ := do(t, s, "POST", "/delete", map[string]int{"id": victim})
		if rec.Code != http.StatusOK {
			t.Fatalf("delete %d: %d %s", i, rec.Code, rec.Body.String())
		}
		ops = append(ops, mutOp{delete: victim})
		delete(st.live, victim)
	}
	return ops
}

// assertServerMatchesReference compares the server's /query answers
// bit-for-bit against a reference index. JSON float64 encoding is
// round-trip exact in Go, so equality across the HTTP boundary is
// equality of distance bits.
func assertServerMatchesReference(t *testing.T, s *Server, ref *core.Exact, queries *vec.Dataset, k int) {
	t.Helper()
	for i := 0; i < queries.N(); i++ {
		q := queries.Row(i)
		rec, body := do(t, s, "POST", "/query", map[string]interface{}{"point": q, "k": k})
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, rec.Code, rec.Body.String())
		}
		var got []neighborBody
		if err := json.Unmarshal(body["neighbors"], &got); err != nil {
			t.Fatal(err)
		}
		want, _ := ref.KNN(q, k)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d neighbors, reference has %d", i, len(got), len(want))
		}
		for p := range got {
			if got[p].ID != want[p].ID || got[p].Dist != want[p].Dist {
				t.Fatalf("query %d pos %d: got (%d, %v), reference (%d, %v)",
					i, p, got[p].ID, got[p].Dist, want[p].ID, want[p].Dist)
			}
		}
	}
}

func TestDurableRestartReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	base := testData(300)
	s := openDurable(t, dir, cloneData(base), DurabilityOptions{Sync: wal.SyncAlways})
	rng := rand.New(rand.NewSource(41))
	ops := driveOps(t, s, rng, 120, newMutState(base.N()))
	s.Close()

	// Restart: no bootstrap needed once the directory holds state? Not
	// yet — generation 0 has no snapshot, so the bootstrap dataset (and
	// build params) must reproduce the original build. Same data + same
	// seed → same representatives, then the WAL replay reconstructs the
	// acknowledged history exactly.
	s2 := openDurable(t, dir, cloneData(base), DurabilityOptions{Sync: wal.SyncAlways})
	defer s2.Close()

	ref, err := core.BuildExact(cloneData(base), metric.Euclidean{}, core.ExactParams{Seed: 3, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, ref, ops)
	assertServerMatchesReference(t, s2, ref, testData(20), 5)

	// Replay accounting surfaces in /stats.
	_, body := do(t, s2, "GET", "/stats", nil)
	var st statsBody
	raw, _ := json.Marshal(body)
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Durability == nil {
		t.Fatal("stats missing durability section")
	}
	if st.Durability.ReplayRecords != len(ops) {
		t.Fatalf("replayed %d records, want %d", st.Durability.ReplayRecords, len(ops))
	}
	if st.Durability.SyncMode != "always" || st.Durability.Generation != 0 {
		t.Fatalf("durability stats: %+v", st.Durability)
	}
}

func TestSnapshotBarrierTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	base := testData(250)
	s := openDurable(t, dir, cloneData(base), DurabilityOptions{Sync: wal.SyncAlways})
	rng := rand.New(rand.NewSource(43))
	mst := newMutState(base.N())
	pre := driveOps(t, s, rng, 80, mst)

	rec, body := do(t, s, "POST", "/snapshot", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot: %d %s", rec.Code, rec.Body.String())
	}
	var gen int
	if err := json.Unmarshal(body["generation"], &gen); err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("generation %d, want 1", gen)
	}
	// The barrier reset the log: snapshot supersedes the pre-snapshot
	// records, and the generation-0 log is gone.
	_, body = do(t, s, "GET", "/stats", nil)
	var st statsBody
	raw, _ := json.Marshal(body)
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Durability.WALRecords != 0 || st.Durability.Generation != 1 {
		t.Fatalf("after snapshot: %+v", st.Durability)
	}
	if _, err := os.Stat(walPath(dir, 0)); !os.IsNotExist(err) {
		t.Fatalf("generation-0 wal not removed: %v", err)
	}

	post := driveOps(t, s, rng, 60, mst)
	s.Close()

	// The new generation's log holds only the post-snapshot records.
	recs, replay, err := wal.ReadRecords(walPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(post) || replay.TruncatedBytes != 0 {
		t.Fatalf("generation-1 wal: %d records (want %d), %d truncated bytes",
			len(recs), len(post), replay.TruncatedBytes)
	}

	// Restart recovers snapshot + tail replay; no bootstrap dataset
	// needed anymore. Reference replays the full acknowledged history.
	s2 := openDurable(t, dir, nil, DurabilityOptions{Sync: wal.SyncAlways})
	defer s2.Close()
	ref, err := core.BuildExact(cloneData(base), metric.Euclidean{}, core.ExactParams{Seed: 3, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, ref, append(append([]mutOp(nil), pre...), post...))
	assertServerMatchesReference(t, s2, ref, testData(20), 4)
}

// Repeated snapshot/restart cycles keep committing generations; each
// recovery folds the previous tail in and stays bit-identical to the
// full-history reference.
func TestSnapshotRestartCycles(t *testing.T) {
	dir := t.TempDir()
	base := testData(200)
	rng := rand.New(rand.NewSource(47))
	ref, err := core.BuildExact(cloneData(base), metric.Euclidean{}, core.ExactParams{Seed: 3, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := testData(15)
	var bootstrap *vec.Dataset = cloneData(base)
	mst := newMutState(base.N())
	for cycle := 0; cycle < 3; cycle++ {
		s := openDurable(t, dir, bootstrap, DurabilityOptions{Sync: wal.SyncAlways})
		bootstrap = nil // later cycles recover from disk alone
		ops := driveOps(t, s, rng, 50, mst)
		applyOps(t, ref, ops)
		if cycle%2 == 0 { // snapshot on even cycles, bare WAL on odd
			if rec, _ := do(t, s, "POST", "/snapshot", nil); rec.Code != http.StatusOK {
				t.Fatalf("cycle %d snapshot: %d", cycle, rec.Code)
			}
		}
		assertServerMatchesReference(t, s, ref, queries, 3)
		s.Close()
	}
	s := openDurable(t, dir, nil, DurabilityOptions{Sync: wal.SyncAlways})
	defer s.Close()
	assertServerMatchesReference(t, s, ref, queries, 3)
}

// Snapshots racing live mutations and queries: the barrier runs under
// the write lock, so every acknowledged op lands either in the snapshot
// or in the post-barrier WAL — never both, never neither. Run with
// -race in CI.
func TestSnapshotUnderConcurrentMutation(t *testing.T) {
	dir := t.TempDir()
	base := testData(300)
	s := openDurable(t, dir, cloneData(base), DurabilityOptions{Sync: wal.SyncAlways})

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 40; i++ {
				p := []float32{rng.Float32(), rng.Float32(), rng.Float32()}
				if rec, _ := do(t, s, "POST", "/insert", map[string]interface{}{"point": p}); rec.Code != http.StatusOK {
					errc <- fmt.Errorf("goroutine %d insert %d: %d", g, i, rec.Code)
					return
				}
				if rec, _ := do(t, s, "POST", "/query", map[string]interface{}{"point": p, "k": 3}); rec.Code != http.StatusOK {
					errc <- fmt.Errorf("goroutine %d query %d: %d", g, i, rec.Code)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if rec, _ := do(t, s, "POST", "/snapshot", nil); rec.Code != http.StatusOK {
				errc <- fmt.Errorf("snapshot %d: %d", i, rec.Code)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Freeze the final state, then prove a restart reproduces it
	// bit-for-bit: with SyncAlways every acknowledged op is durable, so
	// recovered answers must equal the live server's.
	queries := testData(15)
	type answer struct {
		ID   int
		Dist float64
	}
	var live [][]answer
	for i := 0; i < queries.N(); i++ {
		rec, body := do(t, s, "POST", "/query", map[string]interface{}{"point": queries.Row(i), "k": 4})
		if rec.Code != http.StatusOK {
			t.Fatalf("freeze query %d: %d", i, rec.Code)
		}
		var nbs []neighborBody
		if err := json.Unmarshal(body["neighbors"], &nbs); err != nil {
			t.Fatal(err)
		}
		row := make([]answer, len(nbs))
		for p, nb := range nbs {
			row[p] = answer{nb.ID, nb.Dist}
		}
		live = append(live, row)
	}
	s.Close()

	s2 := openDurable(t, dir, nil, DurabilityOptions{Sync: wal.SyncAlways})
	defer s2.Close()
	for i := 0; i < queries.N(); i++ {
		rec, body := do(t, s2, "POST", "/query", map[string]interface{}{"point": queries.Row(i), "k": 4})
		if rec.Code != http.StatusOK {
			t.Fatalf("recovered query %d: %d", i, rec.Code)
		}
		var nbs []neighborBody
		if err := json.Unmarshal(body["neighbors"], &nbs); err != nil {
			t.Fatal(err)
		}
		if len(nbs) != len(live[i]) {
			t.Fatalf("query %d: recovered %d neighbors, live had %d", i, len(nbs), len(live[i]))
		}
		for p, nb := range nbs {
			if (answer{nb.ID, nb.Dist}) != live[i][p] {
				t.Fatalf("query %d pos %d: recovered (%d, %v), live (%d, %v)",
					i, p, nb.ID, nb.Dist, live[i][p].ID, live[i][p].Dist)
			}
		}
	}
}

// A write fault mid-append (torn frame) poisons the log: the handler
// 500s without applying, the server stays consistent read-only, and a
// restart truncates the torn tail and recovers exactly the acknowledged
// prefix.
func TestDurableFaultInjectionRecovery(t *testing.T) {
	for _, failAt := range []int{0, 1, 7} { // fail the (failAt+1)-th append, torn mid-frame
		dir := t.TempDir()
		base := testData(200)
		appends := 0
		s := openDurable(t, dir, cloneData(base), DurabilityOptions{
			Sync: wal.SyncAlways,
			FaultHook: func(frame []byte) int {
				if appends == failAt {
					return len(frame) / 2
				}
				appends++
				return -1
			},
		})
		var acked []mutOp
		var sawFault bool
		for i := 0; i < failAt+3; i++ {
			p := []float32{float32(i), 0.5, 0.25}
			rec, _ := do(t, s, "POST", "/insert", map[string]interface{}{"point": p})
			switch rec.Code {
			case http.StatusOK:
				if sawFault {
					t.Fatalf("failAt=%d: insert %d succeeded after the log was poisoned", failAt, i)
				}
				acked = append(acked, mutOp{insert: p})
			case http.StatusInternalServerError:
				sawFault = true
			default:
				t.Fatalf("failAt=%d insert %d: unexpected status %d", failAt, i, rec.Code)
			}
		}
		if !sawFault {
			t.Fatalf("failAt=%d: fault never fired", failAt)
		}
		// Queries still work on the poisoned server (read-only fail-stop).
		if rec, _ := do(t, s, "POST", "/query", map[string]interface{}{"point": []float32{0, 0, 0}, "k": 2}); rec.Code != http.StatusOK {
			t.Fatalf("failAt=%d: query on poisoned server: %d", failAt, rec.Code)
		}
		s.Close()

		s2 := openDurable(t, dir, cloneData(base), DurabilityOptions{Sync: wal.SyncAlways})
		ref, err := core.BuildExact(cloneData(base), metric.Euclidean{}, core.ExactParams{Seed: 3, EarlyExit: true})
		if err != nil {
			t.Fatal(err)
		}
		applyOps(t, ref, acked)
		if got, want := s2.exact.Live(), ref.Live(); got != want {
			t.Fatalf("failAt=%d: recovered %d live points, acked prefix has %d", failAt, got, want)
		}
		assertServerMatchesReference(t, s2, ref, testData(10), 3)
		s2.Close()
	}
}

func TestOpenDurableRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	// Commit a generation whose snapshot bytes are garbage: CURRENT says
	// 1, snapshot-1.rbc is not a snapshot. Recovery must fail loudly, not
	// serve an empty index.
	if err := os.WriteFile(snapshotPath(dir, 1), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(currentPath(dir), []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenDurable(testData(50), metric.Euclidean{}, core.ExactParams{Seed: 3}, DurabilityOptions{Dir: dir})
	if err == nil {
		t.Fatal("corrupt snapshot should fail recovery")
	}
	// A corrupt index image inside a well-formed wrapper must be caught
	// by LoadExact's validation, surfaced through OpenDurable.
	dir2 := t.TempDir()
	base := testData(60)
	s := openDurable(t, dir2, cloneData(base), DurabilityOptions{Sync: wal.SyncAlways})
	if rec, _ := do(t, s, "POST", "/snapshot", nil); rec.Code != http.StatusOK {
		t.Fatalf("snapshot: %d", rec.Code)
	}
	s.Close()
	f, err := os.Open(snapshotPath(dir2, 1))
	if err != nil {
		t.Fatal(err)
	}
	var sf snapshotFile
	if err := gob.NewDecoder(f).Decode(&sf); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sf.Index = sf.Index[:len(sf.Index)/2] // torn index payload inside a well-formed wrapper
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&sf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapshotPath(dir2, 1), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDurable(nil, metric.Euclidean{}, core.ExactParams{}, DurabilityOptions{Dir: dir2}); err == nil {
		t.Fatal("torn index payload should fail recovery")
	}
}

func TestOpenDurableRequiresBootstrapOrSnapshot(t *testing.T) {
	_, _, err := OpenDurable(nil, metric.Euclidean{}, core.ExactParams{}, DurabilityOptions{Dir: t.TempDir()})
	if err == nil {
		t.Fatal("fresh dir without bootstrap should error")
	}
}

// A crash between writing the new snapshot files and committing CURRENT
// must recover from the old generation with the full old log; the
// half-written files are swept.
func TestRecoveryIgnoresUncommittedGeneration(t *testing.T) {
	dir := t.TempDir()
	base := testData(150)
	s := openDurable(t, dir, cloneData(base), DurabilityOptions{Sync: wal.SyncAlways})
	rng := rand.New(rand.NewSource(53))
	ops := driveOps(t, s, rng, 40, newMutState(base.N()))
	s.Close()

	// Simulate the crash: generation-1 files exist, CURRENT still absent
	// (generation 0).
	if err := os.WriteFile(snapshotPath(dir, 1), []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath(dir, 1), []byte("RBCW"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openDurable(t, dir, cloneData(base), DurabilityOptions{Sync: wal.SyncAlways})
	defer s2.Close()
	ref, err := core.BuildExact(cloneData(base), metric.Euclidean{}, core.ExactParams{Seed: 3, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, ref, ops)
	assertServerMatchesReference(t, s2, ref, testData(10), 3)
	for _, stale := range []string{snapshotPath(dir, 1), walPath(dir, 1)} {
		if _, err := os.Stat(stale); !os.IsNotExist(err) {
			t.Fatalf("stale file %s not swept", filepath.Base(stale))
		}
	}
}
