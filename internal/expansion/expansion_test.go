package expansion

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metric"
	"repro/internal/vec"
)

// grid builds the paper's motivating example: an axis grid in d dimensions
// under l1, whose expansion rate is exactly 2^d.
func grid(side, dim int) *vec.Dataset {
	n := 1
	for i := 0; i < dim; i++ {
		n *= side
	}
	d := vec.New(dim, n)
	idx := make([]int, dim)
	for i := 0; i < n; i++ {
		row := make([]float32, dim)
		for j := 0; j < dim; j++ {
			row[j] = float32(idx[j])
		}
		d.Append(row)
		for j := 0; j < dim; j++ {
			idx[j]++
			if idx[j] < side {
				break
			}
			idx[j] = 0
		}
	}
	return d
}

func TestGridExpansionTracksDimension(t *testing.T) {
	// The estimated growth dimension of a d-dimensional grid under l1
	// should increase with d and sit in the right ballpark.
	est1 := Vectors(grid(64, 1), metric.Manhattan{}, Options{Samples: 16, Seed: 1})
	est2 := Vectors(grid(24, 2), metric.Manhattan{}, Options{Samples: 16, Seed: 1})
	est3 := Vectors(grid(9, 3), metric.Manhattan{}, Options{Samples: 16, Seed: 1})
	if est1.Dim <= 0 || est2.Dim <= est1.Dim || est3.Dim <= est2.Dim {
		t.Fatalf("dims not increasing: %v %v %v", est1.Dim, est2.Dim, est3.Dim)
	}
	// 1-D grid: c = 2 away from boundary; allow slack for edge effects.
	if est1.CMedian < 1.5 || est1.CMedian > 3.5 {
		t.Fatalf("1-D grid CMedian=%v, want ≈2", est1.CMedian)
	}
}

func TestLowDimManifoldInHighAmbient(t *testing.T) {
	// Points on a 2-D plane embedded in 20 dims must report ~2-D growth,
	// not 20 — the whole point of intrinsic dimensionality.
	rng := rand.New(rand.NewSource(2))
	n := 1500
	d := vec.New(20, n)
	for i := 0; i < n; i++ {
		u, v := rng.Float64()*10, rng.Float64()*10
		row := make([]float32, 20)
		for j := 0; j < 20; j++ {
			row[j] = float32(u*float64(j%3) + v*float64((j+1)%2))
		}
		d.Append(row)
	}
	est := Vectors(d, metric.Euclidean{}, Options{Samples: 24, Seed: 3})
	if est.Dim > 5 {
		t.Fatalf("planar data reported growth dim %v; ambient leakage", est.Dim)
	}
	if est.Dim <= 0.5 {
		t.Fatalf("planar data reported degenerate dim %v", est.Dim)
	}
}

func TestHigherIntrinsicDimRanksHigher(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mk := func(dim int) *vec.Dataset {
		d := vec.New(dim, 1200)
		for i := 0; i < 1200; i++ {
			row := make([]float32, dim)
			for j := range row {
				row[j] = rng.Float32()
			}
			d.Append(row)
		}
		return d
	}
	lo := Vectors(mk(2), metric.Euclidean{}, Options{Samples: 24, Seed: 5})
	hi := Vectors(mk(8), metric.Euclidean{}, Options{Samples: 24, Seed: 5})
	if hi.Dim <= lo.Dim {
		t.Fatalf("uniform 8-D (dim=%v) should exceed uniform 2-D (dim=%v)", hi.Dim, lo.Dim)
	}
}

func TestGenericMatchesVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 300
	d := vec.New(3, n)
	for i := 0; i < n; i++ {
		d.Append([]float32{rng.Float32(), rng.Float32(), rng.Float32()})
	}
	ev := Vectors(d, metric.Euclidean{}, Options{Samples: 10, Seed: 7})
	eg := Generic(d.Rows(), metric.Metric[[]float32](metric.Euclidean{}), Options{Samples: 10, Seed: 7})
	if math.Abs(ev.CMax-eg.CMax) > 1e-9 || math.Abs(ev.CMedian-eg.CMedian) > 1e-9 {
		t.Fatalf("vector %+v vs generic %+v", ev, eg)
	}
}

func TestEditDistanceSpace(t *testing.T) {
	// §6: the expansion rate "makes sense for the edit distance on
	// strings". A dictionary of root words with tight morphological
	// variants must report lower growth than uniformly random strings.
	rng := rand.New(rand.NewSource(8))
	randWord := func(l int) string {
		b := make([]byte, l)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	}
	uniform := make([]string, 400)
	for i := range uniform {
		uniform[i] = randWord(10)
	}
	// A "chain" of prefixes a, aa, aaa, … has edit distance |i−j|: it is
	// isometric to a 1-D grid, the paper's own expansion example, so the
	// estimator must report growth dimension ≈ 1.
	chain := make([]string, 400)
	word := make([]byte, 0, 400)
	for i := range chain {
		word = append(word, 'a')
		chain[i] = string(word)
	}
	m := metric.Metric[string](metric.Edit{})
	opts := Options{Samples: 16, Seed: 9}
	eu := Generic(uniform, m, opts)
	ec := Generic(chain, m, opts)
	if ec.Dim >= eu.Dim {
		t.Fatalf("1-D chain dim %v should be below uniform strings %v", ec.Dim, eu.Dim)
	}
	if ec.CMedian < 1.5 || ec.CMedian > 3.5 {
		t.Fatalf("chain CMedian %v, want ≈2 (1-D grid)", ec.CMedian)
	}
}

func TestEdgeCases(t *testing.T) {
	var empty vec.Dataset
	if est := Vectors(&empty, metric.Euclidean{}, Options{}); est.Samples != 0 {
		t.Fatalf("empty: %+v", est)
	}
	single := vec.FromRows([][]float32{{1, 2}})
	est := Vectors(single, metric.Euclidean{}, Options{})
	if est.Samples != 1 {
		t.Fatalf("singleton: %+v", est)
	}
	// All-identical points: no positive radius exists; CMax defaults to 1.
	same := vec.FromRows([][]float32{{1}, {1}, {1}, {1}})
	est = Vectors(same, metric.Euclidean{}, Options{})
	if est.CMax != 1 {
		t.Fatalf("identical points: %+v", est)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Samples != 32 || o.MinBall != 8 {
		t.Fatalf("defaults: %+v", o)
	}
	o = Options{Samples: 5, MinBall: 3}.withDefaults()
	if o.Samples != 5 || o.MinBall != 3 {
		t.Fatalf("overrides: %+v", o)
	}
}

func TestMaxDoublingRatio(t *testing.T) {
	// Uniform 1-D profile: |B(r)| grows linearly, so doubling ≈ 2.
	sorted := make([]float64, 200)
	for i := range sorted {
		sorted[i] = float64(i)
	}
	got := maxDoublingRatio(sorted, 8)
	if got < 1.8 || got > 2.3 {
		t.Fatalf("linear profile ratio %v, want ≈2", got)
	}
	if maxDoublingRatio(nil, 8) != 0 {
		t.Fatal("empty profile")
	}
	if maxDoublingRatio([]float64{0, 0, 0}, 2) != 0 {
		t.Fatal("all-zero profile")
	}
}
