// Package expansion estimates the expansion rate (growth dimension) of a
// finite metric space — Definition 1 of the paper: the smallest c such
// that |B(x,2r)| ≤ c·|B(x,r)| for all x and r. The RBC's runtime bounds
// are stated in terms of c, so the estimator lets experiments report the
// intrinsic dimensionality (log₂ c) of each workload alongside speedups.
//
// The exact expansion rate requires an O(n²) sweep over all centers and
// radii; the estimator samples centers, computes their full distance
// profiles, and evaluates the doubling ratio |B(x,2r)|/|B(x,r)| on a
// ladder of data-driven radii, ignoring balls below a noise floor.
package expansion

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// Options tunes the estimator.
type Options struct {
	// Samples is the number of center points examined (default 32).
	Samples int
	// MinBall is the smallest |B(x,r)| considered; ratios on tinier balls
	// are dominated by sampling noise (default 8).
	MinBall int
	// Seed drives center sampling.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Samples <= 0 {
		o.Samples = 32
	}
	if o.MinBall <= 0 {
		o.MinBall = 8
	}
	return o
}

// Estimate summarizes the sampled doubling behaviour of a dataset.
type Estimate struct {
	// CMax is the largest doubling ratio observed — the empirical
	// expansion rate over the sampled centers and radii.
	CMax float64
	// CMedian is the median of the per-center maxima: a robust central
	// value less sensitive to a single adversarial center.
	CMedian float64
	// Dim is log₂(CMedian): the growth-dimension analogue of "intrinsic
	// dimensionality" (the paper's grid example has c = 2^d exactly).
	Dim float64
	// DimMax is log₂(CMax).
	DimMax float64
	// Samples is the number of centers actually used.
	Samples int
}

// Vectors estimates the expansion rate of a vector dataset under m.
func Vectors(db *vec.Dataset, m metric.Metric[[]float32], opts Options) Estimate {
	n := db.N()
	gen := func(i int) []float64 {
		dists := make([]float64, n)
		metric.BatchDistances(m, db.Row(i), db.Data, db.Dim, dists)
		return dists
	}
	return estimate(n, gen, opts)
}

// Generic estimates the expansion rate of an arbitrary metric space.
func Generic[P any](db []P, m metric.Metric[P], opts Options) Estimate {
	gen := func(i int) []float64 {
		dists := make([]float64, len(db))
		for j := range db {
			dists[j] = m.Distance(db[i], db[j])
		}
		return dists
	}
	return estimate(len(db), gen, opts)
}

func estimate(n int, distsFrom func(i int) []float64, opts Options) Estimate {
	opts = opts.withDefaults()
	if n == 0 {
		return Estimate{}
	}
	if opts.Samples > n {
		opts.Samples = n
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	centers := rng.Perm(n)[:opts.Samples]

	perCenter := make([]float64, len(centers))
	par.ForEach(len(centers), 1, func(ci int) {
		dists := distsFrom(centers[ci])
		sort.Float64s(dists)
		perCenter[ci] = maxDoublingRatio(dists, opts.MinBall)
	})

	est := Estimate{Samples: len(centers), CMax: 1}
	valid := perCenter[:0]
	for _, c := range perCenter {
		if c > 0 {
			valid = append(valid, c)
		}
	}
	if len(valid) == 0 {
		return est
	}
	sort.Float64s(valid)
	est.CMax = valid[len(valid)-1]
	est.CMedian = valid[len(valid)/2]
	est.Dim = math.Log2(est.CMedian)
	est.DimMax = math.Log2(est.CMax)
	return est
}

// maxDoublingRatio scans the sorted distance profile of one center and
// returns the largest |B(x,2r)|/|B(x,r)| over radii r taken at each
// distinct distance value with |B(x,r)| ≥ minBall and 2r within the data
// span. Counting via binary search keeps the scan O(n log n).
func maxDoublingRatio(sorted []float64, minBall int) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	best := 0.0
	for i := minBall - 1; i < n; i++ {
		r := sorted[i]
		if r == 0 {
			continue
		}
		inner := sort.SearchFloat64s(sorted, math.Nextafter(r, math.Inf(1)))
		outer := sort.SearchFloat64s(sorted, math.Nextafter(2*r, math.Inf(1)))
		if inner < minBall {
			continue
		}
		// Saturated doubled balls (outer == n) still witness the
		// expansion rate — on concentrated high-dimensional data they are
		// in fact where c shows up, so they are not skipped.
		if ratio := float64(outer) / float64(inner); ratio > best {
			best = ratio
		}
	}
	return best
}
