package core

import (
	"math"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/par"
)

// This file carries the generic RBC over arbitrary point types P — the
// paper's algorithms verbatim, minus the vector fast paths. It is what
// makes the "works for any metric" claim concrete: see
// examples/editdistance for strings under edit distance.

// GenericExact is the exact-search RBC over a []P database.
type GenericExact[P any] struct {
	db  []P
	m   metric.Metric[P]
	prm ExactParams

	repIDs []int
	radii  []float64
	lists  [][]int32   // member db ids per representative, sorted by dist
	dists  [][]float64 // matching distances to the representative
	isRep  []bool
}

// BuildGenericExact constructs the exact-search RBC over an arbitrary
// metric space.
func BuildGenericExact[P any](db []P, m metric.Metric[P], prm ExactParams) (*GenericExact[P], error) {
	n := len(db)
	if err := validateBuildInputs(n, 1); err != nil {
		return nil, err
	}
	prm = prm.withDefaults(n)
	rng := newRand(prm.Seed)
	repIDs := sampleReps(n, prm.NumReps, prm.ExactCount, rng)
	nr := len(repIDs)
	isRep := make([]bool, n)
	for _, id := range repIDs {
		isRep[id] = true
	}

	owner := make([]int32, n)
	ownerDist := make([]float64, n)
	par.ForEach(n, 64, func(i int) {
		best, bd := 0, math.Inf(1)
		for j, rid := range repIDs {
			if d := m.Distance(db[i], db[rid]); d < bd {
				best, bd = j, d
			}
		}
		owner[i] = int32(best)
		ownerDist[i] = bd
	})

	g := &GenericExact[P]{
		db: db, m: m, prm: prm,
		repIDs: repIDs, isRep: isRep,
		radii: make([]float64, nr),
		lists: make([][]int32, nr),
		dists: make([][]float64, nr),
	}
	for i := 0; i < n; i++ {
		j := owner[i]
		g.lists[j] = append(g.lists[j], int32(i))
		g.dists[j] = append(g.dists[j], ownerDist[i])
	}
	for j := 0; j < nr; j++ {
		SortSegment(g.lists[j], g.dists[j])
		if len(g.dists[j]) > 0 {
			g.radii[j] = g.dists[j][len(g.dists[j])-1]
		}
	}
	return g, nil
}

// NumReps reports the realized number of representatives.
func (g *GenericExact[P]) NumReps() int { return len(g.repIDs) }

// One returns the exact nearest neighbor of q and the work performed.
func (g *GenericExact[P]) One(q P) (Result, Stats) {
	nr := g.NumReps()
	st := Stats{RepEvals: int64(nr)}
	repDists := make([]float64, nr)
	for j, rid := range g.repIDs {
		repDists[j] = g.m.Distance(q, g.db[rid])
	}
	_, gamma := par.ArgMin(repDists)
	psiGamma := gamma
	if g.prm.ApproxEps > 0 {
		psiGamma = gamma / (1 + g.prm.ApproxEps)
	}

	best := Result{ID: -1, Dist: math.Inf(1)}
	for j, rid := range g.repIDs {
		if repDists[j] < best.Dist || (repDists[j] == best.Dist && rid < best.ID) {
			best = Result{ID: rid, Dist: repDists[j]}
		}
	}
	for j := range g.repIDs {
		d := repDists[j]
		if g.prm.PrunePsi && d >= psiGamma+g.radii[j] {
			st.PrunedPsi++
			continue
		}
		if g.prm.PruneTriple && d > 3*gamma {
			st.PrunedTriple++
			continue
		}
		st.RepsKept++
		list, dists := g.lists[j], g.dists[j]
		lo, hi := 0, len(list)
		if g.prm.EarlyExit {
			lo, hi = AdmissibleWindow(dists, d-psiGamma, d+psiGamma)
		}
		for i := lo; i < hi; i++ {
			id := int(list[i])
			if g.isRep[id] {
				continue
			}
			dd := g.m.Distance(q, g.db[id])
			st.PointEvals++
			if dd < best.Dist || (dd == best.Dist && id < best.ID) {
				best = Result{ID: id, Dist: dd}
			}
		}
	}
	return best, st
}

// Search answers a batch of queries in parallel.
func (g *GenericExact[P]) Search(queries []P) ([]Result, Stats) {
	out := make([]Result, len(queries))
	stats := make([]Stats, len(queries))
	par.ForEach(len(queries), 1, func(i int) {
		out[i], stats[i] = g.One(queries[i])
	})
	var agg Stats
	for i := range stats {
		agg.Add(stats[i])
	}
	return out, agg
}

// GenericOneShot is the one-shot RBC over a []P database.
type GenericOneShot[P any] struct {
	db  []P
	m   metric.Metric[P]
	prm OneShotParams

	repIDs []int
	radii  []float64
	lists  [][]int32
}

// BuildGenericOneShot constructs the one-shot RBC over an arbitrary metric
// space.
func BuildGenericOneShot[P any](db []P, m metric.Metric[P], prm OneShotParams) (*GenericOneShot[P], error) {
	n := len(db)
	if err := validateBuildInputs(n, 1); err != nil {
		return nil, err
	}
	prm = prm.withDefaults(n)
	rng := newRand(prm.Seed)
	repIDs := sampleReps(n, prm.NumReps, prm.ExactCount, rng)
	nr := len(repIDs)
	g := &GenericOneShot[P]{
		db: db, m: m, prm: prm,
		repIDs: repIDs,
		radii:  make([]float64, nr),
		lists:  make([][]int32, nr),
	}
	par.ForEach(nr, 1, func(j int) {
		nbs := bruteforce.SearchOneKGeneric(db[repIDs[j]], db, prm.S, m, nil)
		list := make([]int32, len(nbs))
		for i, nb := range nbs {
			list[i] = int32(nb.ID)
		}
		g.lists[j] = list
		g.radii[j] = nbs[len(nbs)-1].Dist
	})
	return g, nil
}

// NumReps reports the realized number of representatives.
func (g *GenericOneShot[P]) NumReps() int { return len(g.repIDs) }

// One runs the one-shot search for q.
func (g *GenericOneShot[P]) One(q P) (Result, Stats) {
	nr := g.NumReps()
	st := Stats{RepEvals: int64(nr)}
	bestRep, bd := -1, math.Inf(1)
	for j, rid := range g.repIDs {
		if d := g.m.Distance(q, g.db[rid]); d < bd {
			bestRep, bd = j, d
		}
	}
	st.RepsKept = 1
	best := Result{ID: -1, Dist: math.Inf(1)}
	for _, id := range g.lists[bestRep] {
		d := g.m.Distance(q, g.db[int(id)])
		st.PointEvals++
		if d < best.Dist || (d == best.Dist && int(id) < best.ID) {
			best = Result{ID: int(id), Dist: d}
		}
	}
	return best, st
}

// Search answers a batch of queries in parallel.
func (g *GenericOneShot[P]) Search(queries []P) ([]Result, Stats) {
	out := make([]Result, len(queries))
	stats := make([]Stats, len(queries))
	par.ForEach(len(queries), 1, func(i int) {
		out[i], stats[i] = g.One(queries[i])
	})
	var agg Stats
	for i := range stats {
		agg.Add(stats[i])
	}
	return out, agg
}
