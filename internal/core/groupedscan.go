package core

import (
	"repro/internal/metric"
	"repro/internal/par"
)

// GroupedScan is the shared phase-2 scan primitive of the grouped batch
// paths: it scores one contiguous range of gathered points against a set
// of "taker" queries, turning the scan into BF(Q', L) matrix-matrix tiles
// whenever enough takers share a point block and falling back to
// per-taker row scans otherwise. Exact.batchGrouped drives it per
// ownership list; the distributed shard scan drives it per segment, so
// both layers ride the same kernels and inherit the same
// bit-reproducibility guarantee (with an exact-grade kernel, tile and row
// evaluations of a pair are bit-identical, making the emitted orderings
// independent of the tile-vs-row choice and of the block composition).
//
// qflat holds the query block as dim-major rows. tIdx[t] (t < takers)
// selects taker t's row in qflat, and tWin[2t], tWin[2t+1] is taker t's
// admissible window [lo, hi) in gather positions — gather[p*dim:(p+1)*dim]
// is position p. emit(t, lo, ords) delivers ordering distances for taker
// t covering positions [lo, lo+len(ords)); ords aliases internal scratch
// and is valid only for the duration of the call. The return value counts
// admissible (taker, position) pairs — the PointEvals contribution —
// regardless of how many surplus pairs the tiles evaluated.
//
// GroupedScan reserves sc's float64 slot 7, float32 slot 0 and int slots
// 2–3; callers keep taker state in the other slots (see par.Scratch).
func GroupedScan(ker *metric.Kernel, qflat []float32, dim int, gather []float32,
	tIdx, tWin []int, takers int, sc *par.Scratch, ts *metric.TileScratch,
	emit func(t, lo int, ords []float64)) int64 {
	if ker.IsFast() {
		// GroupedScan output is reported answers under the
		// bit-reproducibility contract; neither fast grade (Gram or
		// chunked) is admissible here. Refusing loudly keeps a mis-wired
		// consumer from silently shipping drifted distances.
		panic("core: GroupedScan requires an exact-grade kernel, got " + ker.Grade().String())
	}
	if takers == 0 {
		return 0
	}
	_, tp := metric.AutoTileShape(dim)
	unionLo, unionHi := tWin[0], tWin[1]
	for t := 1; t < takers; t++ {
		if tWin[2*t] < unionLo {
			unionLo = tWin[2*t]
		}
		if tWin[2*t+1] > unionHi {
			unionHi = tWin[2*t+1]
		}
	}
	var evals int64
	tile := sc.Float64(7, takers*tp)
	bIdx := sc.Ints(2, takers)
	bWin := sc.Ints(3, 2*takers)
	for blk := unionLo; blk < unionHi; blk += tp {
		end := blk + tp
		if end > unionHi {
			end = unionHi
		}
		bp := end - blk
		// Takers whose windows intersect this block, clipped to it.
		inter := 0
		sumLen := 0
		for t := 0; t < takers; t++ {
			s0, s1 := tWin[2*t], tWin[2*t+1]
			if s0 < blk {
				s0 = blk
			}
			if s1 > end {
				s1 = end
			}
			if s0 >= s1 {
				continue
			}
			bIdx[inter] = t
			bWin[2*inter] = s0
			bWin[2*inter+1] = s1
			inter++
			sumLen += s1 - s0
		}
		if inter == 0 {
			continue
		}
		evals += int64(sumLen)
		if inter >= 2 && inter*bp <= tileWasteFactor*sumLen {
			// Dense enough: one tile serves every intersecting taker.
			buf := sc.Float32(0, inter*dim)
			for ti := 0; ti < inter; ti++ {
				q := tIdx[bIdx[ti]]
				copy(buf[ti*dim:(ti+1)*dim], qflat[q*dim:(q+1)*dim])
			}
			out := tile[:inter*bp]
			ker.Tile(buf, nil, gather[blk*dim:end*dim], nil, dim, out, ts)
			for ti := 0; ti < inter; ti++ {
				s0, s1 := bWin[2*ti], bWin[2*ti+1]
				trow := out[ti*bp : (ti+1)*bp]
				emit(bIdx[ti], s0, trow[s0-blk:s1-blk])
			}
		} else {
			// Sparse: scan each taker's own slice, exactly like the
			// per-query path would.
			for ti := 0; ti < inter; ti++ {
				q := tIdx[bIdx[ti]]
				s0, s1 := bWin[2*ti], bWin[2*ti+1]
				out := tile[:s1-s0]
				ker.Ordering(qflat[q*dim:(q+1)*dim], gather[s0*dim:s1*dim], dim, out)
				emit(bIdx[ti], s0, out)
			}
		}
	}
	return evals
}
