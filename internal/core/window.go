package core

import (
	"math"
	"sort"
)

// This file exports the two primitives behind the EarlyExit admissible
// window (the paper's Claim 2 "sorted list" refinement) so layers above
// core — notably the distributed shard scans — apply exactly the same
// arithmetic as Exact's own phase-2 paths:
//
//   - SortSegment puts one ownership-list segment into the ascending
//     (distance-to-representative, id) order every window computation
//     assumes;
//   - AdmissibleWindow converts a distance-space admissibility interval
//     into a half-open position window over such a sorted segment.
//
// Keeping both exported (instead of re-implemented per layer) is what
// makes "windowed cluster answers are bit-identical to single-node
// Exact" a structural property rather than a numerical coincidence.

// SortSegment sorts one ownership-list segment in place by ascending
// (distance-to-representative, id). ids and dists must be position-aligned
// and of equal length. This is the layout the EarlyExit admissible window
// requires: with dists ascending, the set of positions admissible for a
// query is a contiguous range found by binary search.
func SortSegment(ids []int32, dists []float64) {
	sort.Sort(&segSorter{ids: ids, dists: dists})
}

// AdmissibleWindow returns the half-open position window [lo, hi) of the
// ascending distance slice repDists whose values lie in the inclusive
// interval [dLo, dHi]. It is the binary-search step of the EarlyExit
// refinement: for a query at distance d from a representative, only
// members x with ρ(x,r) ∈ [d−w, d+w] can lie within w of the query (the
// triangle inequality), so callers pass dLo = d−w, dHi = d+w and scan
// only the returned window.
//
// Both boundaries are inclusive — a member exactly at dLo or dHi stays
// admissible — which is what keeps window-clipped scans answer-preserving
// at razor ties. An infinite interval ([-Inf, +Inf], from an unbounded
// pruning radius) selects the whole segment; an interval beyond the
// segment's range returns an empty window (lo == hi).
func AdmissibleWindow(repDists []float64, dLo, dHi float64) (lo, hi int) {
	lo = sort.SearchFloat64s(repDists, dLo)
	hi = sort.SearchFloat64s(repDists, math.Nextafter(dHi, math.Inf(1)))
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// InsertPos returns the position at which a member with distance d and
// database id would splice into a segment already in ascending
// (dist, id) order, preserving that order. It is the binary-search half
// of the sorted insertion buffers in mutate.go; exported so property
// tests and higher layers share the exact comparison rule SortSegment
// establishes.
func InsertPos(dists []float64, ids []int32, d float64, id int32) int {
	return sort.Search(len(dists), func(i int) bool {
		if dists[i] != d {
			return dists[i] > d
		}
		return ids[i] > id
	})
}

// SegmentSorted reports whether the position-aligned (ids, dists) pair
// is in the ascending (dist, id) order SortSegment establishes — the
// invariant every AdmissibleWindow and InsertPos call assumes. Used by
// snapshot validation and the mutation property tests.
func SegmentSorted(ids []int32, dists []float64) bool {
	for i := 1; i < len(dists); i++ {
		if dists[i] < dists[i-1] ||
			(dists[i] == dists[i-1] && ids[i] <= ids[i-1]) {
			return false
		}
	}
	return true
}
