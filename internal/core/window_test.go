package core

import (
	"math"
	"sort"
	"testing"
)

func TestSortSegmentOrdersByDistThenID(t *testing.T) {
	ids := []int32{9, 4, 7, 1, 3}
	dists := []float64{2, 1, 2, 1, 0.5}
	SortSegment(ids, dists)
	wantIDs := []int32{3, 1, 4, 7, 9}
	wantDists := []float64{0.5, 1, 1, 2, 2}
	for i := range ids {
		if ids[i] != wantIDs[i] || dists[i] != wantDists[i] {
			t.Fatalf("pos %d: (%d, %v), want (%d, %v)", i, ids[i], dists[i], wantIDs[i], wantDists[i])
		}
	}
	if !sort.Float64sAreSorted(dists) {
		t.Fatal("dists not ascending")
	}
}

func TestSortSegmentEmptyAndSingle(t *testing.T) {
	SortSegment(nil, nil) // must not panic
	ids, dists := []int32{5}, []float64{3}
	SortSegment(ids, dists)
	if ids[0] != 5 || dists[0] != 3 {
		t.Fatal("single-element segment mutated")
	}
}

func TestAdmissibleWindow(t *testing.T) {
	dists := []float64{1, 2, 2, 3, 5, 8}
	cases := []struct {
		dLo, dHi float64
		lo, hi   int
	}{
		{2, 3, 1, 4},                      // inclusive at both ends
		{1.5, 4.9, 1, 4},                  // strict interior
		{0, 0.5, 0, 0},                    // empty: below the segment
		{9, 20, 6, 6},                     // empty: above the segment
		{3.5, 4.5, 4, 4},                  // empty: interior gap
		{math.Inf(-1), math.Inf(1), 0, 6}, // unbounded: whole segment
		{1, 8, 0, 6},                      // boundary values at both extremes
		{5, 5, 4, 5},                      // degenerate interval hitting one member
		{4, 4, 4, 4},                      // degenerate interval missing
		{math.Inf(-1), 2, 0, 3},           // half-unbounded low
		{8, math.Inf(1), 5, 6},            // half-unbounded high
		{2, math.Nextafter(2, math.Inf(-1)), 1, 1}, // inverted after rounding: empty, not negative
	}
	for _, c := range cases {
		lo, hi := AdmissibleWindow(dists, c.dLo, c.dHi)
		if lo != c.lo || hi != c.hi {
			t.Errorf("AdmissibleWindow([%v], %v, %v) = [%d, %d), want [%d, %d)",
				dists, c.dLo, c.dHi, lo, hi, c.lo, c.hi)
		}
		if hi < lo {
			t.Errorf("window [%d, %d) is negative-length", lo, hi)
		}
	}
}

func TestAdmissibleWindowEmptySegment(t *testing.T) {
	if lo, hi := AdmissibleWindow(nil, 0, 10); lo != 0 || hi != 0 {
		t.Fatalf("empty segment: [%d, %d), want [0, 0)", lo, hi)
	}
}

// The window must agree with a full linear scan of the inclusive
// interval on tie-rich data — the property EarlyExit exactness rests on.
func TestAdmissibleWindowMatchesLinearScan(t *testing.T) {
	dists := []float64{0, 0, 1, 1, 1, 2.5, 2.5, 4, 4, 4, 4, 7}
	for _, dLo := range []float64{-1, 0, 0.5, 1, 2.5, 4, 6, 7, 8} {
		for _, dHi := range []float64{-1, 0, 1, 2.5, 3, 4, 7, 9} {
			lo, hi := AdmissibleWindow(dists, dLo, dHi)
			for p, d := range dists {
				in := d >= dLo && d <= dHi
				got := p >= lo && p < hi
				if in != got {
					t.Fatalf("interval [%v, %v]: position %d (dist %v) in-window=%v, want %v",
						dLo, dHi, p, d, got, in)
				}
			}
		}
	}
}
