package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// ExactParams configures BuildExact.
type ExactParams struct {
	// NumReps is the expected number of representatives n_r. Zero selects
	// DefaultNumReps(n).
	NumReps int
	// Seed drives representative sampling.
	Seed int64
	// ExactCount samples exactly NumReps representatives instead of the
	// paper's independent-inclusion scheme (Binomial size).
	ExactCount bool
	// PrunePsi enables the radius bound ρ(q,r) ≥ γ + ψ_r (inequality (1)).
	// Both bounds default to on in BuildExact when neither is set.
	PrunePsi bool
	// PruneTriple enables the Lemma 1 bound ρ(q,r) > 3γ (inequality (2)).
	PruneTriple bool
	// EarlyExit restricts the phase-2 scan of each surviving list to the
	// admissible window of points x with ρ(x,r) ∈ [ρ(q,r)−γ, ρ(q,r)+γ]
	// (the paper's Claim 2 "sorted list" refinement; exact because
	// |ρ(q,r)−ρ(x,r)| ≤ ρ(q,x) by the triangle inequality).
	EarlyExit bool
	// ApproxEps, when > 0, relaxes the radius bound to prune r whenever
	// ρ(q,r) ≥ γ/(1+ε) + ψ_r. The returned neighbor is then a
	// (1+ε)-approximate NN: if the true NN x* was pruned we have
	// ρ(q,x*) ≥ ρ(q,r) − ψ_r ≥ γ/(1+ε), while the returned distance is at
	// most γ. This is the footnote-1 variant of the paper.
	ApproxEps float64
}

func (p ExactParams) withDefaults(n int) ExactParams {
	if p.NumReps <= 0 {
		p.NumReps = DefaultNumReps(n)
	}
	if !p.PrunePsi && !p.PruneTriple {
		p.PrunePsi = true
		p.PruneTriple = true
	}
	return p
}

// Exact is the RBC index for the exact search algorithm (§5.2): every
// database point belongs to exactly one ownership list — that of its
// nearest representative — and the lists partition the database.
//
// The database rows are gathered into a permuted flat buffer in which each
// list is contiguous and sorted by distance to its representative, so the
// phase-2 scan streams memory just like phase 1.
type Exact struct {
	db  *vec.Dataset
	m   metric.Metric[[]float32]
	prm ExactParams

	repIDs  []int        // database ids of the representatives
	repData *vec.Dataset // gathered representative vectors
	radii   []float64    // ψ_r per representative
	isRep   []bool       // database id → is a representative

	offsets []int     // len(repIDs)+1; list j occupies positions [offsets[j],offsets[j+1])
	ids     []int32   // position → database id
	dists   []float64 // position → ρ(x, rep), ascending within each list
	gather  []float32 // position-aligned gathered vectors

	// mut holds dynamic-update state (overflow lists, tombstones); nil
	// while the index is pristine. See mutate.go.
	mut *mutableState
}

// BuildExact constructs the exact-search RBC over db. The build is the
// single brute-force call BF(X,R) (§4): each database point finds its
// nearest representative; lists, radii and the gathered layout follow.
func BuildExact(db *vec.Dataset, m metric.Metric[[]float32], prm ExactParams) (*Exact, error) {
	n := db.N()
	if err := validateBuildInputs(n, db.Dim); err != nil {
		return nil, err
	}
	prm = prm.withDefaults(n)
	if prm.ApproxEps < 0 {
		return nil, fmt.Errorf("core: negative ApproxEps %v", prm.ApproxEps)
	}
	rng := newRand(prm.Seed)
	repIDs := sampleReps(n, prm.NumReps, prm.ExactCount, rng)
	nr := len(repIDs)
	repData := db.Subset(repIDs)
	isRep := make([]bool, n)
	for _, id := range repIDs {
		isRep[id] = true
	}

	// BF(X,R): nearest representative for every database point, parallel
	// over the database (the matrix-matrix decomposition of §3).
	owner := make([]int32, n)
	ownerDist := make([]float64, n)
	par.For(n, 256, func(lo, hi int) {
		scratch := make([]float64, nr)
		for i := lo; i < hi; i++ {
			metric.BatchDistances(m, db.Row(i), repData.Data, db.Dim, scratch)
			bi, bv := 0, scratch[0]
			for j := 1; j < nr; j++ {
				if scratch[j] < bv {
					bi, bv = j, scratch[j]
				}
			}
			owner[i] = int32(bi)
			ownerDist[i] = bv
		}
	})

	// Bucket into lists (counting sort by owner), then sort each list by
	// distance to its representative to enable the EarlyExit window.
	counts := make([]int, nr+1)
	for _, o := range owner {
		counts[o+1]++
	}
	for j := 0; j < nr; j++ {
		counts[j+1] += counts[j]
	}
	offsets := append([]int(nil), counts...)
	ids := make([]int32, n)
	dists := make([]float64, n)
	next := append([]int(nil), counts[:nr]...)
	for i := 0; i < n; i++ {
		pos := next[owner[i]]
		next[owner[i]]++
		ids[pos] = int32(i)
		dists[pos] = ownerDist[i]
	}
	radii := make([]float64, nr)
	par.ForEach(nr, 8, func(j int) {
		lo, hi := offsets[j], offsets[j+1]
		seg := newSegSorter(ids[lo:hi], dists[lo:hi])
		sort.Sort(seg)
		if hi > lo {
			radii[j] = dists[hi-1]
		}
	})

	// Gather the database into list order so phase 2 is contiguous.
	gather := make([]float32, n*db.Dim)
	par.For(n, 512, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			copy(gather[p*db.Dim:(p+1)*db.Dim], db.Row(int(ids[p])))
		}
	})

	return &Exact{
		db: db, m: m, prm: prm,
		repIDs: repIDs, repData: repData, radii: radii, isRep: isRep,
		offsets: offsets, ids: ids, dists: dists, gather: gather,
	}, nil
}

// segSorter sorts a list segment by (dist, id) without allocating pairs.
type segSorter struct {
	ids   []int32
	dists []float64
}

func newSegSorter(ids []int32, dists []float64) *segSorter { return &segSorter{ids, dists} }
func (s *segSorter) Len() int                              { return len(s.ids) }
func (s *segSorter) Less(i, j int) bool {
	if s.dists[i] != s.dists[j] {
		return s.dists[i] < s.dists[j]
	}
	return s.ids[i] < s.ids[j]
}
func (s *segSorter) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.dists[i], s.dists[j] = s.dists[j], s.dists[i]
}

// NumReps reports the realized number of representatives |R|.
func (e *Exact) NumReps() int { return len(e.repIDs) }

// RepIDs returns the database ids of the representatives (do not modify).
func (e *Exact) RepIDs() []int { return e.repIDs }

// Radii returns ψ_r for each representative (do not modify).
func (e *Exact) Radii() []float64 { return e.radii }

// ListSizes returns the ownership-list cardinalities.
func (e *Exact) ListSizes() []int {
	out := make([]int, e.NumReps())
	for j := range out {
		out[j] = e.offsets[j+1] - e.offsets[j]
	}
	return out
}

// Params returns the parameters the index was built with (NumReps reflects
// the requested value; see NumReps() for the realized count).
func (e *Exact) Params() ExactParams { return e.prm }

// One returns the exact nearest neighbor of q (or a (1+ε)-approximate one
// when ApproxEps > 0), along with the work performed.
func (e *Exact) One(q []float32) (Result, Stats) {
	res, st := e.one(q, 1)
	if len(res) == 0 {
		return Result{ID: -1, Dist: math.Inf(1)}, st
	}
	return Result{ID: res[0].ID, Dist: res[0].Dist}, st
}

// KNN returns the k exact nearest neighbors of q sorted by ascending
// distance. Fewer than k are returned only if the database is smaller
// than k.
func (e *Exact) KNN(q []float32, k int) ([]par.Neighbor, Stats) {
	if k <= 0 {
		return nil, Stats{}
	}
	return e.one(q, k)
}

// one runs the two-phase exact search for the k nearest neighbors.
//
// Correctness of the pruning for k > 1: let γ_k be the k-th smallest
// distance from q to a representative (or +inf if |R| < k). Since
// representatives are database points, γ_k upper-bounds the k-th NN
// distance. Rule (1) generalizes directly: a representative with
// ρ(q,r) ≥ γ_k + ψ_r owns no point within γ_k of q. Rule (2): if x is one
// of the k NNs and r* owns x, then ρ(x,r*) ≤ ρ(x,q)+ρ(q,r_1) ≤ γ_k+γ_1,
// so ρ(q,r*) ≤ ρ(q,x)+ρ(x,r*) ≤ 2γ_k+γ_1 ≤ 3γ_k — we prune with the
// tighter 2γ_k+γ_1.
func (e *Exact) one(q []float32, k int) ([]par.Neighbor, Stats) {
	nr := e.NumReps()
	dim := e.db.Dim
	st := Stats{RepEvals: int64(nr)}

	// Phase 1: brute force over the representatives, retaining distances.
	repDists := make([]float64, nr)
	metric.BatchDistances(e.m, q, e.repData.Data, dim, repDists)
	gamma1, gammaK := e.liveGammas(repDists, k)

	// Pruning thresholds. ApproxEps relaxes only the radius rule.
	psiGamma := gammaK
	if e.prm.ApproxEps > 0 {
		psiGamma = gammaK / (1 + e.prm.ApproxEps)
	}
	tripleBound := 2*gammaK + gamma1

	h := par.NewKHeap(k)
	// Seed the heap with the representatives themselves. They are database
	// points whose distances are already paid for; this realizes the
	// paper's implicit "γ is itself a candidate answer" and — together
	// with the list scans below skipping representative ids — makes the
	// returned k-NN multiset exact even at pruning-boundary ties.
	for j, d := range repDists {
		if !e.isDeleted(e.repIDs[j]) {
			h.Push(e.repIDs[j], d)
		}
	}

	var scratch [256]float64
	for j := 0; j < nr; j++ {
		d := repDists[j]
		if e.prm.PrunePsi && d >= psiGamma+e.radii[j] {
			st.PrunedPsi++
			continue
		}
		if e.prm.PruneTriple && !math.IsInf(tripleBound, 1) && d > tripleBound {
			st.PrunedTriple++
			continue
		}
		st.RepsKept++
		lo, hi := e.offsets[j], e.offsets[j+1]
		// Admissible window half-width: |ρ(q,r) − ρ(x,r)| ≤ ρ(q,x) ≤ γ_k
		// for any answer x, so only ρ(x,r) ∈ [d−w, d+w] can qualify, with
		// w = γ_k (or its (1+ε)-relaxation, matching the radius rule).
		w := psiGamma
		if e.prm.EarlyExit {
			lo += sort.SearchFloat64s(e.dists[lo:hi], d-w)
			hi = e.offsets[j] + sort.SearchFloat64s(e.dists[e.offsets[j]:hi], math.Nextafter(d+w, math.Inf(1)))
		}
		for blk := lo; blk < hi; blk += len(scratch) {
			end := blk + len(scratch)
			if end > hi {
				end = hi
			}
			out := scratch[:end-blk]
			metric.BatchDistances(e.m, q, e.gather[blk*dim:end*dim], dim, out)
			for i, dd := range out {
				if id := int(e.ids[blk+i]); !e.isRep[id] && !e.isDeleted(id) {
					h.Push(id, dd)
				}
			}
			st.PointEvals += int64(end - blk)
		}
		st.PointEvals += e.scanOverflow(j, q, w, d, func(id int, dd float64) {
			if !e.isRep[id] {
				h.Push(id, dd)
			}
		})
	}
	return h.Results(), st
}

// Search answers a batch of queries in parallel (one goroutine block per
// query range) and returns the per-query results plus aggregated stats.
func (e *Exact) Search(queries *vec.Dataset) ([]Result, Stats) {
	e.checkDim(queries.Dim)
	out := make([]Result, queries.N())
	stats := make([]Stats, queries.N())
	par.ForEach(queries.N(), 1, func(i int) {
		out[i], stats[i] = e.One(queries.Row(i))
	})
	var agg Stats
	for i := range stats {
		agg.Add(stats[i])
	}
	return out, agg
}

// SearchK answers a batch of k-NN queries in parallel.
func (e *Exact) SearchK(queries *vec.Dataset, k int) ([][]par.Neighbor, Stats) {
	e.checkDim(queries.Dim)
	out := make([][]par.Neighbor, queries.N())
	stats := make([]Stats, queries.N())
	par.ForEach(queries.N(), 1, func(i int) {
		out[i], stats[i] = e.KNN(queries.Row(i), k)
	})
	var agg Stats
	for i := range stats {
		agg.Add(stats[i])
	}
	return out, agg
}

// Range returns every database point within eps of q, sorted by ascending
// distance. The search is exact: a representative can own a point within
// eps of q only if ρ(q,r) ≤ eps + ψ_r, and within a surviving list only
// points with ρ(x,r) ∈ [ρ(q,r)−eps, ρ(q,r)+eps] can qualify.
func (e *Exact) Range(q []float32, eps float64) ([]par.Neighbor, Stats) {
	nr := e.NumReps()
	dim := e.db.Dim
	st := Stats{RepEvals: int64(nr)}
	repDists := make([]float64, nr)
	metric.BatchDistances(e.m, q, e.repData.Data, dim, repDists)

	var hits []par.Neighbor
	var scratch [256]float64
	for j := 0; j < nr; j++ {
		d := repDists[j]
		if d > eps+e.radii[j] {
			st.PrunedPsi++
			continue
		}
		st.RepsKept++
		lo, hi := e.offsets[j], e.offsets[j+1]
		if e.prm.EarlyExit {
			lo += sort.SearchFloat64s(e.dists[lo:hi], d-eps)
			hi = e.offsets[j] + sort.SearchFloat64s(e.dists[e.offsets[j]:hi], math.Nextafter(d+eps, math.Inf(1)))
		}
		for blk := lo; blk < hi; blk += len(scratch) {
			end := blk + len(scratch)
			if end > hi {
				end = hi
			}
			out := scratch[:end-blk]
			metric.BatchDistances(e.m, q, e.gather[blk*dim:end*dim], dim, out)
			for i, dd := range out {
				if id := int(e.ids[blk+i]); dd <= eps && !e.isDeleted(id) {
					hits = append(hits, par.Neighbor{ID: id, Dist: dd})
				}
			}
			st.PointEvals += int64(end - blk)
		}
		st.PointEvals += e.scanOverflow(j, q, eps, d, func(id int, dd float64) {
			if dd <= eps {
				hits = append(hits, par.Neighbor{ID: id, Dist: dd})
			}
		})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Dist != hits[b].Dist {
			return hits[a].Dist < hits[b].Dist
		}
		return hits[a].ID < hits[b].ID
	})
	return hits, st
}

func (e *Exact) checkDim(dim int) {
	if dim != e.db.Dim {
		panic(fmt.Sprintf("core: query dim %d does not match database dim %d", dim, e.db.Dim))
	}
}

// kthSmallest returns the smallest value and the k-th smallest value of
// xs (1-based k). When k exceeds len(xs) the k-th value is +Inf.
func kthSmallest(xs []float64, k int) (first, kth float64) {
	if len(xs) == 0 {
		return math.Inf(1), math.Inf(1)
	}
	if k == 1 {
		_, v := par.ArgMin(xs)
		return v, v
	}
	if k > len(xs) {
		first := xs[0]
		for _, v := range xs[1:] {
			if v < first {
				first = v
			}
		}
		return first, math.Inf(1)
	}
	h := par.NewKHeap(k)
	for i, v := range xs {
		h.Push(i, v)
	}
	res := h.Results()
	return res[0].Dist, res[len(res)-1].Dist
}
