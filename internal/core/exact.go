package core

import (
	"fmt"
	"math"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// ExactParams configures BuildExact.
type ExactParams struct {
	// NumReps is the expected number of representatives n_r. Zero selects
	// DefaultNumReps(n).
	NumReps int
	// Seed drives representative sampling.
	Seed int64
	// ExactCount samples exactly NumReps representatives instead of the
	// paper's independent-inclusion scheme (Binomial size).
	ExactCount bool
	// PrunePsi enables the radius bound ρ(q,r) ≥ γ + ψ_r (inequality (1)).
	// Both bounds default to on in BuildExact when neither is set.
	PrunePsi bool
	// PruneTriple enables the Lemma 1 bound ρ(q,r) > 3γ (inequality (2)).
	PruneTriple bool
	// EarlyExit restricts the phase-2 scan of each surviving list to the
	// admissible window of points x with ρ(x,r) ∈ [ρ(q,r)−γ, ρ(q,r)+γ]
	// (the paper's Claim 2 "sorted list" refinement; exact because
	// |ρ(q,r)−ρ(x,r)| ≤ ρ(q,x) by the triangle inequality).
	EarlyExit bool
	// ApproxEps, when > 0, relaxes the radius bound to prune r whenever
	// ρ(q,r) ≥ γ/(1+ε) + ψ_r. The returned neighbor is then a
	// (1+ε)-approximate NN: if the true NN x* was pruned we have
	// ρ(q,x*) ≥ ρ(q,r) − ψ_r ≥ γ/(1+ε), while the returned distance is at
	// most γ. This is the footnote-1 variant of the paper.
	ApproxEps float64
	// BufferMerge bounds each representative's insertion buffer: a buffer
	// reaching this size is merged into its sorted segment (a targeted
	// per-segment re-sort; see mutate.go). Zero selects DefaultBufferMerge;
	// negative disables automatic merging (buffers grow until Flush or
	// Rebuild). Answers are invariant to this knob.
	BufferMerge int
}

// Spawn grains for the build loops. A goroutine hand-off costs on the
// order of a microsecond, so each block must carry a few microseconds of
// work to pay for it; the constants encode that break-even for the two
// loop bodies (see par.ArgMinGrain for the same reasoning on the search
// side).
const (
	// gatherGrain: one row copy moves dim float32s (~100ns at dim 256 —
	// memcpy-bound), so 512 rows ≈ 50µs per block, far past break-even
	// while still splitting million-row gathers across every core.
	gatherGrain = 512

	// segSortGrain: a segment sort handles ~n/n_r ≈ √n points at
	// O(m log m) comparisons — tens of microseconds for even modest
	// lists — so a handful of segments per block amortizes the spawn.
	segSortGrain = 8
)

func (p ExactParams) withDefaults(n int) ExactParams {
	if p.NumReps <= 0 {
		p.NumReps = DefaultNumReps(n)
	}
	if !p.PrunePsi && !p.PruneTriple {
		p.PrunePsi = true
		p.PruneTriple = true
	}
	return p
}

// Exact is the RBC index for the exact search algorithm (§5.2): every
// database point belongs to exactly one ownership list — that of its
// nearest representative — and the lists partition the database.
//
// The database rows are gathered into a permuted flat buffer in which each
// list is contiguous and sorted by distance to its representative, so the
// phase-2 scan streams memory just like phase 1. Phase 2 — the list scans,
// whose distances are the reported answers — always runs on the exact-mode
// tiled kernels, bit-identical to the brute-force reference. Phase 1
// (BF(Q,R)) runs on the fast kernel grade over cached representative
// norms: its orderings are never reported, only *compared*, and every
// comparison is made ulp-tolerant by bracketing each fast ordering with
// metric.GramOrderingSlack — prune, window and seed decisions then
// provably agree with the exact kernel's, so answers stay bit-identical
// (see one() for the bracketing rules). Distances convert from ordering
// space only at the API boundary and for the pruning thresholds, whose
// triangle-inequality math needs real distances.
type Exact struct {
	db   *vec.Dataset
	m    metric.Metric[[]float32]
	ker  *metric.Kernel // exact kernel: list scans (reported answers)
	fker *metric.Kernel // fast kernel: phase-1 BF(Q,R) (bracketed orderings)
	prm  ExactParams

	repNorms   []float64 // cached ‖r‖² per representative (Gram phase 1)
	maxRepNorm float64   // max of repNorms; one slack per query suffices

	repIDs  []int        // database ids of the representatives
	repData *vec.Dataset // gathered representative vectors
	radii   []float64    // ψ_r per representative
	isRep   []bool       // database id → is a representative

	offsets []int     // len(repIDs)+1; list j occupies positions [offsets[j],offsets[j+1])
	ids     []int32   // position → database id
	dists   []float64 // position → ρ(x, rep), ascending within each list
	gather  []float32 // position-aligned gathered vectors

	// mut holds dynamic-update state (per-segment insertion buffers,
	// tombstones); nil while the index is pristine. See mutate.go.
	mut *mutableState
	// segMerges counts per-segment buffer merges over the index lifetime;
	// it outlives mut so the counter survives Flush/Rebuild resets.
	segMerges int64
}

// initKernel resolves the tiled kernels and caches the representative
// norms; called at build and load time. The exact-grade assertion is
// scoped to the *answer path*: phase-2 scans and seed rescoring report
// distances under the bit-reproducibility contract and must stay on
// e.ker, while phase 1 deliberately runs the fast grade (e.fker) behind
// the slack brackets. For metrics without a Gram decomposition the fast
// kernel dispatches identically to the exact one and Norms reports no
// use for norms, so repNorms stays nil and the slack degenerates to 0.
func (e *Exact) initKernel() {
	e.ker = metric.NewKernel(e.m)
	if e.ker.IsFast() {
		panic("core: Exact requires an exact-grade kernel on the answer path")
	}
	e.fker = metric.NewFastKernel(e.m)
	e.repNorms = e.fker.Norms(e.repData.Data, e.db.Dim, nil)
	e.maxRepNorm = 0
	for _, n := range e.repNorms {
		if n > e.maxRepNorm {
			e.maxRepNorm = n
		}
	}
}

// phase1Slack returns the per-query ordering slack for the fast phase-1
// brackets: GramOrderingSlack against the largest representative norm
// (slack is monotone in both norms, so one value per query bounds every
// pair), or 0 when the fast kernel has no Gram path and is bitwise equal
// to the exact one. qn is written through sc's float64 slot 1 — callers
// re-carve that slot afterwards.
func (e *Exact) phase1Slack(q []float32, sc *par.Scratch) (qn []float64, slack float64) {
	if !e.fker.NeedsNorms() {
		return nil, 0
	}
	qn = e.fker.Norms(q, e.db.Dim, sc.Float64(1, 1))
	return qn, metric.GramOrderingSlack(e.db.Dim, qn[0], e.maxRepNorm)
}

// bracketOrd converts one fast phase-1 ordering into its certified
// distance bracket [lo, hi]: the exact ordering lies within slack of o,
// and ToDistance (a correctly-rounded sqrt for l2) is monotone, so the
// exact distance lies in [lo, hi].
func (e *Exact) bracketOrd(o, slack float64) (lo, hi float64) {
	ol := o - slack
	if ol < 0 {
		ol = 0
	}
	return e.ker.ToDistance(ol), e.ker.ToDistance(o + slack)
}

// exactRepDist returns the exact distance from q to representative j,
// rescoring through the answer-grade kernel on first use and collapsing
// the bracket in repLo/repHi so subsequent checks reuse the exact value.
// A collapsed bracket (lo == hi) already pins the distance: either it was
// rescored, or the slack interval rounded to a single distance, which the
// exact distance — inside the bracket by construction — must then equal.
// cell is a caller-pooled 1-element kernel output buffer. Rescores are
// not counted as evals; both search paths leave them out, so per-query
// and batched stats agree.
func (e *Exact) exactRepDist(q []float32, j int, repLo, repHi, cell []float64) float64 {
	if repLo[j] == repHi[j] {
		return repLo[j]
	}
	dim := e.db.Dim
	e.ker.Ordering(q, e.repData.Data[j*dim:(j+1)*dim], dim, cell[:1])
	d := e.ker.ToDistance(cell[0])
	repLo[j], repHi[j] = d, d
	return d
}

// exactWindow resolves one EarlyExit admissible window under a phase-1
// bracket [dLo, dHi] so that it equals the window the all-exact path
// computes from the exact distance d ∈ [dLo, dHi]. Both AdmissibleWindow
// bounds are monotone in their argument, so clipping with the two bracket
// ends brackets each bound of the exact window; when the two clips agree
// the window is certified, otherwise the representative is rescored and
// the window recomputed from the exact distance (a razor case: some
// member distance falls within slack of a window edge).
func (e *Exact) exactWindow(q []float32, j int, dists []float64, w float64,
	repLo, repHi, cell []float64) (a, b int) {
	dLo, dHi := repLo[j], repHi[j]
	a, b = AdmissibleWindow(dists, dLo-w, dHi+w)
	if dLo != dHi {
		a2, b2 := AdmissibleWindow(dists, dHi-w, dLo+w)
		if a2 != a || b2 != b {
			d := e.exactRepDist(q, j, repLo, repHi, cell)
			a, b = AdmissibleWindow(dists, d-w, d+w)
		}
	}
	return a, b
}

// BuildExact constructs the exact-search RBC over db. The build is the
// single brute-force call BF(X,R) (§4), computed as point-tile ×
// representative-tile loops over the tiled kernel: each database point
// finds its nearest representative; lists, radii and the gathered layout
// follow.
func BuildExact(db *vec.Dataset, m metric.Metric[[]float32], prm ExactParams) (*Exact, error) {
	n := db.N()
	if err := validateBuildInputs(n, db.Dim); err != nil {
		return nil, err
	}
	prm = prm.withDefaults(n)
	if prm.ApproxEps < 0 {
		return nil, fmt.Errorf("core: negative ApproxEps %v", prm.ApproxEps)
	}
	rng := newRand(prm.Seed)
	repIDs := sampleReps(n, prm.NumReps, prm.ExactCount, rng)
	nr := len(repIDs)
	repData := db.Subset(repIDs)
	isRep := make([]bool, n)
	for _, id := range repIDs {
		isRep[id] = true
	}
	// BF(X,R): nearest representative for every database point, through the
	// tiled matrix-matrix primitive (ties break toward the lower rep index,
	// matching the tile loops' lower-id rule).
	owner := make([]int32, n)
	ownerDist := make([]float64, n)
	for i, r := range bruteforce.Search(db, repData, m, nil) {
		owner[i] = int32(r.ID)
		ownerDist[i] = r.Dist
	}

	// Bucket into lists (counting sort by owner), then sort each list by
	// distance to its representative to enable the EarlyExit window.
	counts := make([]int, nr+1)
	for _, o := range owner {
		counts[o+1]++
	}
	for j := 0; j < nr; j++ {
		counts[j+1] += counts[j]
	}
	offsets := append([]int(nil), counts...)
	ids := make([]int32, n)
	dists := make([]float64, n)
	next := append([]int(nil), counts[:nr]...)
	for i := 0; i < n; i++ {
		pos := next[owner[i]]
		next[owner[i]]++
		ids[pos] = int32(i)
		dists[pos] = ownerDist[i]
	}
	radii := make([]float64, nr)
	par.ForEach(nr, segSortGrain, func(j int) {
		lo, hi := offsets[j], offsets[j+1]
		SortSegment(ids[lo:hi], dists[lo:hi])
		if hi > lo {
			radii[j] = dists[hi-1]
		}
	})

	// Gather the database into list order so phase 2 is contiguous.
	gather := make([]float32, n*db.Dim)
	par.For(n, gatherGrain, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			copy(gather[p*db.Dim:(p+1)*db.Dim], db.Row(int(ids[p])))
		}
	})

	e := &Exact{
		db: db, m: m, prm: prm,
		repIDs: repIDs, repData: repData, radii: radii, isRep: isRep,
		offsets: offsets, ids: ids, dists: dists, gather: gather,
	}
	e.initKernel()
	return e, nil
}

// segSorter sorts a list segment by (dist, id) without allocating pairs.
// It is the implementation behind SortSegment (window.go) — every
// segment-sort site goes through that single exported primitive.
type segSorter struct {
	ids   []int32
	dists []float64
}

func (s *segSorter) Len() int { return len(s.ids) }
func (s *segSorter) Less(i, j int) bool {
	if s.dists[i] != s.dists[j] {
		return s.dists[i] < s.dists[j]
	}
	return s.ids[i] < s.ids[j]
}
func (s *segSorter) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.dists[i], s.dists[j] = s.dists[j], s.dists[i]
}

// NumReps reports the realized number of representatives |R|.
func (e *Exact) NumReps() int { return len(e.repIDs) }

// RepIDs returns the database ids of the representatives (do not modify).
func (e *Exact) RepIDs() []int { return e.repIDs }

// Radii returns ψ_r for each representative (do not modify).
func (e *Exact) Radii() []float64 { return e.radii }

// ListSizes returns the ownership-list cardinalities.
func (e *Exact) ListSizes() []int {
	out := make([]int, e.NumReps())
	for j := range out {
		out[j] = e.offsets[j+1] - e.offsets[j]
	}
	return out
}

// Params returns the parameters the index was built with (NumReps reflects
// the requested value; see NumReps() for the realized count).
func (e *Exact) Params() ExactParams { return e.prm }

// One returns the exact nearest neighbor of q (or a (1+ε)-approximate one
// when ApproxEps > 0), along with the work performed.
func (e *Exact) One(q []float32) (Result, Stats) {
	sc := par.GetScratch()
	defer par.PutScratch(sc)
	h, st := e.one(q, 1, nil, sc)
	nb, ok := h.Best()
	if !ok {
		return Result{ID: -1, Dist: math.Inf(1)}, st
	}
	return Result{ID: nb.ID, Dist: e.ker.ToDistance(nb.Dist)}, st
}

// KNN returns the k exact nearest neighbors of q sorted by ascending
// distance. Fewer than k are returned only if the database is smaller
// than k.
func (e *Exact) KNN(q []float32, k int) ([]par.Neighbor, Stats) {
	if k <= 0 {
		return nil, Stats{}
	}
	sc := par.GetScratch()
	defer par.PutScratch(sc)
	h, st := e.one(q, k, nil, sc)
	return e.finish(h), st
}

// finish extracts a heap's neighbors sorted ascending, converting ordering
// distances at the boundary and re-sorting in distance space (the
// conversion can map distinct ordering values to equal distances).
func (e *Exact) finish(h *par.KHeap) []par.Neighbor {
	res := h.Results()
	for i := range res {
		res[i].Dist = e.ker.ToDistance(res[i].Dist)
	}
	par.SortNeighbors(res)
	return res
}

// one runs the two-phase exact search for the k nearest neighbors,
// returning the candidate heap (in ordering space) from sc's slot 0.
// ordRow optionally carries precomputed phase-1 *fast-grade* ordering
// distances (the batched BF(Q,R) front half, which runs e.fker); nil
// computes them here through the same fast kernel.
//
// Correctness of the pruning for k > 1: let γ_k be the k-th smallest
// distance from q to a representative (or +inf if |R| < k). Since
// representatives are database points, γ_k upper-bounds the k-th NN
// distance. Rule (1) generalizes directly: a representative with
// ρ(q,r) ≥ γ_k + ψ_r owns no point within γ_k of q. Rule (2): if x is one
// of the k NNs and r* owns x, then ρ(x,r*) ≤ ρ(x,q)+ρ(q,r_1) ≤ γ_k+γ_1,
// so ρ(q,r*) ≤ ρ(q,x)+ρ(x,r*) ≤ 2γ_k+γ_1 ≤ 3γ_k — we prune with the
// tighter 2γ_k+γ_1.
//
// Phase 1 runs on the fast kernel, so every use of ρ(q,r) above is made
// ulp-tolerant by bracketing: [lo_j, hi_j] certifiably contains the exact
// distance (bracketOrd). Every *decision* is then made exactly as the
// all-exact path would make it — certified through the bracket when the
// threshold falls outside it, resolved by rescoring that one
// representative through the exact kernel when it falls inside (a razor
// case, vanishingly rare off engineered ties):
//
//   - γ's are exact: the candidate set {j : lo_j ≤ γ_k^hi} (γ_k^hi the
//     k-th smallest bracket high over live reps) provably contains the k
//     nearest live reps, is rescored exactly, and γ_1/γ_k are selected
//     from those exact distances — any j outside the set has
//     ρ(q,r_j) ≥ lo_j > γ_k^hi ≥ γ_k and cannot reach either γ;
//   - prune tests certify against the bracket (lo_j past the threshold
//     prunes, hi_j short of it keeps) and rescore the razor cases, so
//     every prune decision — and therefore every counter — equals the
//     exact path's, ApproxEps included;
//   - EarlyExit windows certify by clipping with both bracket ends
//     ([lo_j−w, hi_j+w] vs [hi_j−w, lo_j+w]); when the two clips
//     disagree on any position the rep is rescored, so the scanned
//     extent equals the exact path's exactly;
//   - heap seeding pushes the rescored candidate set with its exact
//     orderings — the heap only ever holds answer-grade orderings, and
//     reps outside the set are strictly past the k-th answer so the
//     kept multiset (insertion-order independent) is unchanged.
//
// Answers, stats and scan extents are therefore bit-identical to an
// all-exact phase 1; only the rescore evaluations (uncounted on both
// search paths) differ. For metrics without a Gram fast path the slack
// is 0, brackets collapse, and no rescoring ever happens.
func (e *Exact) one(q []float32, k int, ordRow []float64, sc *par.Scratch) (*par.KHeap, Stats) {
	nr := e.NumReps()
	dim := e.db.Dim
	st := Stats{RepEvals: int64(nr)}

	// Phase 1: fast-grade brute force over the representatives in
	// ordering space. The Gram grade's Ordering entry point falls back to
	// the exact row, so the single-row case goes through Tile, which
	// dispatches to the Gram row over the cached norms — the same
	// arithmetic the batched front half uses, keeping per-query and
	// batched searches bit-identical.
	qn, slack := e.phase1Slack(q, sc)
	ords := ordRow
	if ords == nil {
		ords = sc.Float64(0, nr)
		e.fker.Tile(q, qn, e.repData.Data, e.repNorms, dim, ords, nil)
	}
	// The pruning thresholds live in distance space (their derivations add
	// distances), so bracket once per representative — ~2√n sqrts per
	// query. Slot 1 re-carve retires qn (already consumed).
	repLo := sc.Float64(1, nr)
	repHi := sc.Float64(2, nr)
	for j, o := range ords {
		repLo[j], repHi[j] = e.bracketOrd(o, slack)
	}
	// Preliminary selector for the γ candidate set: the k-th smallest
	// bracket high over live reps upper-bounds the exact γ_k, so every rep
	// that can contribute to either γ has repLo ≤ gammaKHi.
	_, gammaKHi := e.liveGammas(repHi, k, sc)

	h := sc.Heap(0, k)
	// Block buffer for the list scans; pooled because a local array would
	// escape through the kernel's interface dispatch. Carved after
	// liveGammas, which time-shares slot 5.
	scratch := sc.Float64(5, 256)
	// Rescore the γ candidate set through the exact kernel (answer grade;
	// the row path matches the gathered-scan arithmetic bit for bit) and
	// seed the heap with it. Representatives are database points; seeding
	// realizes the paper's implicit "γ is itself a candidate answer" and —
	// together with the list scans below skipping representative ids —
	// makes the returned k-NN multiset exact even at pruning-boundary
	// ties. Reps outside the set sit strictly past the k-th answer, so
	// dropping their (old-path) seeds cannot change the kept multiset.
	// The exact distances collected here then select the exact γ_1/γ_k:
	// every live rep at or under the exact γ_k is in the set, so its order
	// statistics below γ_k^hi match the full live set's.
	cand := sc.Float64(7, nr)[:0]
	for j := 0; j < nr; j++ {
		if repLo[j] > gammaKHi || e.isDeleted(e.repIDs[j]) {
			continue
		}
		e.ker.Ordering(q, e.repData.Data[j*dim:(j+1)*dim], dim, scratch[:1])
		d := e.ker.ToDistance(scratch[0])
		repLo[j], repHi[j] = d, d
		h.Push(e.repIDs[j], scratch[0])
		cand = append(cand, d)
	}
	gamma1, gammaK := kthSmallest(cand, k, sc)

	// Pruning thresholds — exact, since the γ's are. ApproxEps relaxes
	// only the radius rule.
	psiGamma := gammaK
	if e.prm.ApproxEps > 0 {
		psiGamma = gammaK / (1 + e.prm.ApproxEps)
	}
	tripleBound := 2*gammaK + gamma1

	for j := 0; j < nr; j++ {
		dLo, dHi := repLo[j], repHi[j]
		if e.prm.PrunePsi {
			// Exact rule: prune iff d ≥ t. The bracket certifies all but
			// the razor case t ∈ (dLo, dHi], which the exact distance
			// decides — identically to the all-exact path.
			t := psiGamma + e.radii[j]
			if dLo >= t {
				st.PrunedPsi++
				continue
			}
			if dHi >= t {
				if e.exactRepDist(q, j, repLo, repHi, scratch) >= t {
					st.PrunedPsi++
					continue
				}
				dLo, dHi = repLo[j], repHi[j]
			}
		}
		if e.prm.PruneTriple && !math.IsInf(tripleBound, 1) {
			// Exact rule: prune iff d > tripleBound (strict).
			if dLo > tripleBound {
				st.PrunedTriple++
				continue
			}
			if dHi > tripleBound {
				if e.exactRepDist(q, j, repLo, repHi, scratch) > tripleBound {
					st.PrunedTriple++
					continue
				}
				dLo, dHi = repLo[j], repHi[j]
			}
		}
		st.RepsKept++
		lo, hi := e.offsets[j], e.offsets[j+1]
		// Admissible window half-width: |ρ(q,r) − ρ(x,r)| ≤ ρ(q,x) ≤ γ_k
		// for any answer x, so only ρ(x,r) ∈ [d−w, d+w] can qualify, with
		// w = γ_k (or its (1+ε)-relaxation, matching the radius rule) and
		// d pinned by certification or rescore to the exact window.
		w := psiGamma
		if e.prm.EarlyExit {
			a, b := e.exactWindow(q, j, e.dists[lo:hi], w, repLo, repHi, scratch)
			lo, hi = lo+a, lo+b
		}
		for blk := lo; blk < hi; blk += len(scratch) {
			end := blk + len(scratch)
			if end > hi {
				end = hi
			}
			out := scratch[:end-blk]
			e.ker.Ordering(q, e.gather[blk*dim:end*dim], dim, out)
			for i, dd := range out {
				if id := int(e.ids[blk+i]); !e.isRep[id] && !e.isDeleted(id) {
					h.Push(id, dd)
				}
			}
			st.PointEvals += int64(end - blk)
		}
		if e.mut != nil && len(e.mut.bufIDs[j]) > 0 {
			wLo, wHi := dLo-w, dHi+w
			if e.prm.EarlyExit && dLo != dHi {
				// The buffer window clips stored member distances directly,
				// so pin it to the exact representative distance.
				d := e.exactRepDist(q, j, repLo, repHi, scratch)
				wLo, wHi = d-w, d+w
			}
			st.PointEvals += e.scanBuffer(j, q, wLo, wHi, scratch[:1], func(id int, dd float64) {
				if !e.isRep[id] {
					h.Push(id, dd)
				}
			})
		}
	}
	return h, st
}

// Search answers a batch of queries in parallel and returns the per-query
// results plus aggregated stats. The phase-1 scans run as a single tiled
// BF(Q,R) front half — query tiles against representative tiles — before
// the per-query pruning and list scans.
func (e *Exact) Search(queries *vec.Dataset) ([]Result, Stats) {
	e.checkDim(queries.Dim)
	out := make([]Result, queries.N())
	agg := e.batch(queries, 1, func(i int, h *par.KHeap) {
		nb, ok := h.Best()
		if !ok {
			out[i] = Result{ID: -1, Dist: math.Inf(1)}
			return
		}
		out[i] = Result{ID: nb.ID, Dist: e.ker.ToDistance(nb.Dist)}
	})
	return out, agg
}

// SearchK answers a batch of k-NN queries in parallel.
func (e *Exact) SearchK(queries *vec.Dataset, k int) ([][]par.Neighbor, Stats) {
	e.checkDim(queries.Dim)
	out := make([][]par.Neighbor, queries.N())
	if k <= 0 {
		return out, Stats{}
	}
	agg := e.batch(queries, k, func(i int, h *par.KHeap) {
		out[i] = e.finish(h)
	})
	return out, agg
}

// KNNBatch is the batch-first k-NN entry point (search.BatchSearcher):
// the whole query block shares one tiled BF(Q,R) front half before the
// per-query back halves run. Results are bit-identical to calling KNN per
// query.
func (e *Exact) KNNBatch(queries *vec.Dataset, k int) ([][]par.Neighbor, Stats) {
	return e.SearchK(queries, k)
}

// batch answers a query block. A pristine index takes the fully grouped
// path (batch_grouped.go): tiled BF(Q,R) front half plus per-list tiled
// phase-2 scans shared across the block. Once dynamic state exists
// (tombstones, insertion buffers) the block still shares the tiled front
// half but runs the per-query back half, which knows how to consult that
// state. Both paths are bit-identical to per-query KNN.
func (e *Exact) batch(queries *vec.Dataset, k int, sink func(i int, h *par.KHeap)) Stats {
	if e.mut == nil {
		return e.batchGrouped(queries, k, sink)
	}
	return TileFrontHalf(e.fker, queries, e.repData, e.repNorms,
		func(i int, row []float64, sc *par.Scratch, _ *metric.TileScratch) Stats {
			h, st := e.one(queries.Row(i), k, row, sc)
			sink(i, h)
			return st
		})
}

// Range returns every database point within eps of q, sorted by ascending
// distance. The search is exact: a representative can own a point within
// eps of q only if ρ(q,r) ≤ eps + ψ_r, and within a surviving list only
// points with ρ(x,r) ∈ [ρ(q,r)−eps, ρ(q,r)+eps] can qualify.
func (e *Exact) Range(q []float32, eps float64) ([]par.Neighbor, Stats) {
	sc := par.GetScratch()
	defer par.PutScratch(sc)
	return e.rangeOne(q, eps, nil, sc)
}

// RangeBatch answers a block of range queries in parallel, sharing one
// tiled BF(Q,R) front half across the block like KNNBatch does. Results
// are bit-identical to calling Range per query.
func (e *Exact) RangeBatch(queries *vec.Dataset, eps float64) ([][]par.Neighbor, Stats) {
	e.checkDim(queries.Dim)
	out := make([][]par.Neighbor, queries.N())
	agg := TileFrontHalf(e.fker, queries, e.repData, e.repNorms,
		func(i int, row []float64, sc *par.Scratch, _ *metric.TileScratch) Stats {
			hits, st := e.rangeOne(queries.Row(i), eps, row, sc)
			out[i] = hits
			return st
		})
	return out, agg
}

// rangeOne runs the two-phase range search. ordRow optionally carries
// precomputed phase-1 *fast-grade* ordering distances (the batched
// BF(Q,R) front half, which runs e.fker); nil computes them here.
//
// Phase 1 uses the same bracketed-with-exact-fallback scheme as one():
// ρ(q,r) is only ever compared (radius prune, admissible window), never
// reported — hits are confirmed point by point in exact arithmetic — and
// every comparison is certified through the bracket or resolved by an
// exact rescore, so the prune decisions, scan extents and stats are
// bit-identical to an all-exact phase 1.
func (e *Exact) rangeOne(q []float32, eps float64, ordRow []float64, sc *par.Scratch) ([]par.Neighbor, Stats) {
	nr := e.NumReps()
	dim := e.db.Dim
	st := Stats{RepEvals: int64(nr)}
	qn, slack := e.phase1Slack(q, sc)
	ords := ordRow
	if ords == nil {
		ords = sc.Float64(0, nr)
		e.fker.Tile(q, qn, e.repData.Data, e.repNorms, dim, ords, nil)
	}
	repLo := sc.Float64(1, nr)
	repHi := sc.Float64(2, nr)
	for j, o := range ords {
		repLo[j], repHi[j] = e.bracketOrd(o, slack)
	}
	// Ordering-space prefilter bound for eps; survivors are confirmed in
	// distance space, and OrderingBound guarantees the boundary stays exact.
	epsHi := e.ker.OrderingBound(math.Abs(eps))

	var hits []par.Neighbor
	scratch := sc.Float64(5, 256)
	for j := 0; j < nr; j++ {
		dLo, dHi := repLo[j], repHi[j]
		// Exact rule: prune iff d > eps + ψ_r (strict); the bracket
		// certifies all but the razor case, which the exact distance
		// decides.
		t := eps + e.radii[j]
		if dLo > t {
			st.PrunedPsi++
			continue
		}
		if dHi > t {
			if e.exactRepDist(q, j, repLo, repHi, scratch) > t {
				st.PrunedPsi++
				continue
			}
			dLo, dHi = repLo[j], repHi[j]
		}
		st.RepsKept++
		lo, hi := e.offsets[j], e.offsets[j+1]
		if e.prm.EarlyExit {
			a, b := e.exactWindow(q, j, e.dists[lo:hi], eps, repLo, repHi, scratch)
			lo, hi = lo+a, lo+b
		}
		for blk := lo; blk < hi; blk += len(scratch) {
			end := blk + len(scratch)
			if end > hi {
				end = hi
			}
			out := scratch[:end-blk]
			e.ker.Ordering(q, e.gather[blk*dim:end*dim], dim, out)
			for i, o := range out {
				if o <= epsHi {
					if id := int(e.ids[blk+i]); !e.isDeleted(id) {
						if dd := e.ker.ToDistance(o); dd <= eps {
							hits = append(hits, par.Neighbor{ID: id, Dist: dd})
						}
					}
				}
			}
			st.PointEvals += int64(end - blk)
		}
		if e.mut != nil && len(e.mut.bufIDs[j]) > 0 {
			if e.prm.EarlyExit && dLo != dHi {
				d := e.exactRepDist(q, j, repLo, repHi, scratch)
				dLo, dHi = d, d
			}
			st.PointEvals += e.scanBuffer(j, q, dLo-eps, dHi+eps, scratch[:1], func(id int, o float64) {
				if o <= epsHi {
					if dd := e.ker.ToDistance(o); dd <= eps {
						hits = append(hits, par.Neighbor{ID: id, Dist: dd})
					}
				}
			})
		}
	}
	par.SortNeighbors(hits)
	return hits, st
}

func (e *Exact) checkDim(dim int) {
	if dim != e.db.Dim {
		panic(fmt.Sprintf("core: query dim %d does not match database dim %d", dim, e.db.Dim))
	}
}

// kthSmallest returns the smallest value and the k-th smallest value of
// xs (1-based k). When k exceeds len(xs) the k-th value is +Inf. The
// selection heap comes from sc's heap slot 1.
func kthSmallest(xs []float64, k int, sc *par.Scratch) (first, kth float64) {
	if len(xs) == 0 {
		return math.Inf(1), math.Inf(1)
	}
	if k == 1 {
		_, v := par.ArgMin(xs)
		return v, v
	}
	if k > len(xs) {
		first := xs[0]
		for _, v := range xs[1:] {
			if v < first {
				first = v
			}
		}
		return first, math.Inf(1)
	}
	h := sc.Heap(1, k)
	for i, v := range xs {
		h.Push(i, v)
	}
	best, _ := h.Best()
	kthVal, _ := h.Worst() // the heap is full here, so the root is the k-th
	return best.Dist, kthVal
}
