package core

import (
	"fmt"
	"math"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// OneShotParams configures BuildOneShot.
type OneShotParams struct {
	// NumReps is the expected number of representatives n_r. Zero selects
	// DefaultNumReps(n).
	NumReps int
	// S is the ownership-list size: each representative owns its S nearest
	// database points. Zero selects S = NumReps, the paper's n_r = s
	// setting (Theorem 2).
	S int
	// Seed drives representative sampling.
	Seed int64
	// ExactCount samples exactly NumReps representatives instead of the
	// paper's independent-inclusion scheme.
	ExactCount bool
	// Probes is the number of nearest representatives whose lists are
	// scanned per query. The paper's algorithm is Probes = 1 (the
	// default); larger values trade time for accuracy, an extension in
	// the spirit of multiprobe LSH.
	Probes int
}

func (p OneShotParams) withDefaults(n int) OneShotParams {
	if p.NumReps <= 0 {
		p.NumReps = DefaultNumReps(n)
	}
	if p.S <= 0 {
		p.S = p.NumReps
	}
	if p.S > n {
		p.S = n
	}
	if p.Probes <= 0 {
		p.Probes = 1
	}
	return p
}

// OneShot is the RBC index for the one-shot search algorithm (§5.1): each
// representative owns its s nearest database points (lists overlap), and a
// query scans exactly one ownership list — that of its nearest
// representative. The answer is exact with probability ≥ 1−δ when
// n_r = s = c·sqrt(n·ln(1/δ)) (Theorem 2).
type OneShot struct {
	db  *vec.Dataset
	m   metric.Metric[[]float32]
	prm OneShotParams

	repIDs  []int
	repData *vec.Dataset
	radii   []float64 // ψ_r = distance from r to its s-th neighbor

	// Ownership lists, gathered: list j occupies ids[j*s:(j+1)*s] and the
	// matching rows of gather. Lists overlap, so gather duplicates rows by
	// design — the price of one-shot's single-list scan.
	s      int
	ids    []int32
	gather []float32
}

// BuildOneShot constructs the one-shot RBC over db. The build is the
// single brute-force call BF(R,X) (§4): each representative finds its s
// nearest database points.
func BuildOneShot(db *vec.Dataset, m metric.Metric[[]float32], prm OneShotParams) (*OneShot, error) {
	n := db.N()
	if err := validateBuildInputs(n, db.Dim); err != nil {
		return nil, err
	}
	prm = prm.withDefaults(n)
	rng := newRand(prm.Seed)
	repIDs := sampleReps(n, prm.NumReps, prm.ExactCount, rng)
	nr := len(repIDs)
	repData := db.Subset(repIDs)
	s := prm.S

	o := &OneShot{
		db: db, m: m, prm: prm,
		repIDs: repIDs, repData: repData,
		s:      s,
		radii:  make([]float64, nr),
		ids:    make([]int32, nr*s),
		gather: make([]float32, nr*s*db.Dim),
	}
	// BF(R,X): the s nearest database points of every representative,
	// parallel over representatives.
	par.ForEach(nr, 1, func(j int) {
		nbs := bruteforce.SearchOneK(repData.Row(j), db, s, m, nil)
		for i, nb := range nbs {
			pos := j*s + i
			o.ids[pos] = int32(nb.ID)
			copy(o.gather[pos*db.Dim:(pos+1)*db.Dim], db.Row(nb.ID))
		}
		o.radii[j] = nbs[len(nbs)-1].Dist
	})
	return o, nil
}

// NumReps reports the realized number of representatives |R|.
func (o *OneShot) NumReps() int { return len(o.repIDs) }

// S reports the ownership-list size.
func (o *OneShot) S() int { return o.s }

// RepIDs returns the database ids of the representatives (do not modify).
func (o *OneShot) RepIDs() []int { return o.repIDs }

// Radii returns ψ_r per representative (do not modify).
func (o *OneShot) Radii() []float64 { return o.radii }

// Params returns the parameters the index was built with.
func (o *OneShot) Params() OneShotParams { return o.prm }

// One runs the one-shot search for q: BF(q,R) to find the nearest
// representative, then BF(q, X[L_r]) over its ownership list.
func (o *OneShot) One(q []float32) (Result, Stats) {
	res, st := o.KNN(q, 1)
	if len(res) == 0 {
		return Result{ID: -1, Dist: math.Inf(1)}, st
	}
	return Result{ID: res[0].ID, Dist: res[0].Dist}, st
}

// KNN returns the (probabilistically correct) k nearest neighbors of q,
// sorted by ascending distance, scanning the Probes nearest
// representatives' lists.
func (o *OneShot) KNN(q []float32, k int) ([]par.Neighbor, Stats) {
	if k <= 0 {
		return nil, Stats{}
	}
	nr := o.NumReps()
	dim := o.db.Dim
	st := Stats{RepEvals: int64(nr)}

	repDists := make([]float64, nr)
	metric.BatchDistances(o.m, q, o.repData.Data, dim, repDists)

	probes := o.prm.Probes
	if probes > nr {
		probes = nr
	}
	probeHeap := par.NewKHeap(probes)
	for j, d := range repDists {
		probeHeap.Push(j, d)
	}

	h := par.NewKHeap(k)
	// With multiple probes a point may appear on several scanned lists;
	// dedupe so k-NN result sets contain distinct ids.
	var seen map[int32]struct{}
	if probes > 1 {
		seen = make(map[int32]struct{}, probes*o.s)
	}
	var scratch [256]float64
	for _, probe := range probeHeap.Results() {
		j := probe.ID
		st.RepsKept++
		lo, hi := j*o.s, (j+1)*o.s
		for blk := lo; blk < hi; blk += len(scratch) {
			end := blk + len(scratch)
			if end > hi {
				end = hi
			}
			out := scratch[:end-blk]
			metric.BatchDistances(o.m, q, o.gather[blk*dim:end*dim], dim, out)
			for i, dd := range out {
				id := o.ids[blk+i]
				if seen != nil {
					if _, dup := seen[id]; dup {
						continue
					}
					seen[id] = struct{}{}
				}
				h.Push(int(id), dd)
			}
			st.PointEvals += int64(end - blk)
		}
	}
	return h.Results(), st
}

// Search answers a batch of 1-NN queries in parallel and returns the
// results plus aggregated stats.
func (o *OneShot) Search(queries *vec.Dataset) ([]Result, Stats) {
	o.checkDim(queries.Dim)
	out := make([]Result, queries.N())
	stats := make([]Stats, queries.N())
	par.ForEach(queries.N(), 1, func(i int) {
		out[i], stats[i] = o.One(queries.Row(i))
	})
	var agg Stats
	for i := range stats {
		agg.Add(stats[i])
	}
	return out, agg
}

// SearchK answers a batch of k-NN queries in parallel.
func (o *OneShot) SearchK(queries *vec.Dataset, k int) ([][]par.Neighbor, Stats) {
	o.checkDim(queries.Dim)
	out := make([][]par.Neighbor, queries.N())
	stats := make([]Stats, queries.N())
	par.ForEach(queries.N(), 1, func(i int) {
		out[i], stats[i] = o.KNN(queries.Row(i), k)
	})
	var agg Stats
	for i := range stats {
		agg.Add(stats[i])
	}
	return out, agg
}

// Certify reports whether the one-shot answer for q is guaranteed exact:
// by the argument of Theorem 2, if ρ(q,r) ≤ ψ_r/2 for the nearest
// representative r then q's true NN is necessarily on L_r. A false return
// does not mean the answer is wrong — only unwitnessed.
func (o *OneShot) Certify(q []float32) bool {
	nr := o.NumReps()
	repDists := make([]float64, nr)
	metric.BatchDistances(o.m, q, o.repData.Data, o.db.Dim, repDists)
	j, d := par.ArgMin(repDists)
	return d <= o.radii[j]/2
}

func (o *OneShot) checkDim(dim int) {
	if dim != o.db.Dim {
		panic(fmt.Sprintf("core: query dim %d does not match database dim %d", dim, o.db.Dim))
	}
}
