package core

import (
	"fmt"
	"math"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// OneShotParams configures BuildOneShot.
type OneShotParams struct {
	// NumReps is the expected number of representatives n_r. Zero selects
	// DefaultNumReps(n).
	NumReps int
	// S is the ownership-list size: each representative owns its S nearest
	// database points. Zero selects S = NumReps, the paper's n_r = s
	// setting (Theorem 2).
	S int
	// Seed drives representative sampling.
	Seed int64
	// ExactCount samples exactly NumReps representatives instead of the
	// paper's independent-inclusion scheme.
	ExactCount bool
	// Probes is the number of nearest representatives whose lists are
	// scanned per query. The paper's algorithm is Probes = 1 (the
	// default); larger values trade time for accuracy, an extension in
	// the spirit of multiprobe LSH.
	Probes int
	// Phase1Chunked selects the chunked float32 kernel grade for phase 1
	// (probe selection) instead of the default float64 Gram grade. Probe
	// choice can then flip at representative near-ties within
	// metric.ChunkedErrorBound — the same class of perturbation OneShot
	// already tolerates probabilistically — while phase 2, whose
	// distances are the reported answers, stays on the exact kernel
	// either way.
	Phase1Chunked bool
	// Phase1Quantized selects the int8-quantized kernel grade for phase 1:
	// representative rows are encoded once at build (and again at load)
	// into a metric.QuantizedView, and probe selection scans 1-byte codes
	// instead of 4-byte floats. Probe choice can flip at representative
	// near-ties within the view's additive error bound; phase 2 stays on
	// the exact kernel, so reported distances are unchanged in kind.
	// Takes precedence over Phase1Chunked when both are set.
	Phase1Quantized bool
}

func (p OneShotParams) withDefaults(n int) OneShotParams {
	if p.NumReps <= 0 {
		p.NumReps = DefaultNumReps(n)
	}
	if p.S <= 0 {
		p.S = p.NumReps
	}
	if p.S > n {
		p.S = n
	}
	if p.Probes <= 0 {
		p.Probes = 1
	}
	return p
}

// OneShot is the RBC index for the one-shot search algorithm (§5.1): each
// representative owns its s nearest database points (lists overlap), and a
// query scans exactly one ownership list — that of its nearest
// representative. The answer is exact with probability ≥ 1−δ when
// n_r = s = c·sqrt(n·ln(1/δ)) (Theorem 2).
//
// Phase 1 (probe selection) runs on a fast kernel grade — the Gram
// decomposition against squared representative norms cached at build
// time, the chunked float32 kernel when Params.Phase1Chunked is set, or
// the int8-quantized kernel over a representative view when
// Params.Phase1Quantized is set — so repeated searches pay zero setup;
// phase 2 (the list scan, whose
// distances are the reported answers) runs on the exact ordering kernel,
// bit-compatible with the brute-force reference, regardless of the
// phase-1 grade. Both phases defer the sqrt to the API boundary.
type OneShot struct {
	db   *vec.Dataset
	m    metric.Metric[[]float32]
	ker  *metric.Kernel // fast kernel: probe selection (Gram or chunked)
	xker *metric.Kernel // exact kernel: list scans (reported answers)
	prm  OneShotParams

	repIDs   []int
	repData  *vec.Dataset
	repNorms []float64 // cached ‖r‖² per representative (Gram phase 1)
	radii    []float64 // ψ_r = distance from r to its s-th neighbor

	// Ownership lists, gathered: list j occupies ids[j*s:(j+1)*s] and the
	// matching rows of gather. Lists overlap, so gather duplicates rows by
	// design — the price of one-shot's single-list scan.
	s      int
	ids    []int32
	gather []float32
}

// initKernel resolves the tiled kernels and caches the representative
// norms; called at build and load time. The chunked phase-1 grade reads
// the float32 rows directly, so repNorms stays nil there (Norms reports
// no use for them).
func (o *OneShot) initKernel() {
	switch {
	case o.prm.Phase1Quantized:
		o.ker = metric.NewQuantizedKernel(o.m, metric.NewQuantizedView(o.repData.Data, o.repData.Dim))
	case o.prm.Phase1Chunked:
		o.ker = metric.NewChunkedKernel(o.m)
	default:
		o.ker = metric.NewFastKernel(o.m)
	}
	o.xker = metric.NewKernel(o.m)
	o.repNorms = o.ker.Norms(o.repData.Data, o.repData.Dim, nil)
}

// BuildOneShot constructs the one-shot RBC over db. The build is the
// single brute-force call BF(R,X) (§4) — each representative finds its s
// nearest database points — computed with the tiled multi-query kernels.
func BuildOneShot(db *vec.Dataset, m metric.Metric[[]float32], prm OneShotParams) (*OneShot, error) {
	n := db.N()
	if err := validateBuildInputs(n, db.Dim); err != nil {
		return nil, err
	}
	prm = prm.withDefaults(n)
	rng := newRand(prm.Seed)
	repIDs := sampleReps(n, prm.NumReps, prm.ExactCount, rng)
	nr := len(repIDs)
	repData := db.Subset(repIDs)
	s := prm.S

	o := &OneShot{
		db: db, m: m, prm: prm,
		repIDs: repIDs, repData: repData,
		s:      s,
		radii:  make([]float64, nr),
		ids:    make([]int32, nr*s),
		gather: make([]float32, nr*s*db.Dim),
	}
	// BF(R,X): the s nearest database points of every representative, as a
	// single tiled multi-query call.
	lists := bruteforce.SearchK(repData, db, s, m, nil)
	par.ForEach(nr, 1, func(j int) {
		nbs := lists[j]
		for i, nb := range nbs {
			pos := j*s + i
			o.ids[pos] = int32(nb.ID)
			copy(o.gather[pos*db.Dim:(pos+1)*db.Dim], db.Row(nb.ID))
		}
		o.radii[j] = nbs[len(nbs)-1].Dist
	})
	o.initKernel()
	return o, nil
}

// NumReps reports the realized number of representatives |R|.
func (o *OneShot) NumReps() int { return len(o.repIDs) }

// S reports the ownership-list size.
func (o *OneShot) S() int { return o.s }

// RepIDs returns the database ids of the representatives (do not modify).
func (o *OneShot) RepIDs() []int { return o.repIDs }

// Radii returns ψ_r per representative (do not modify).
func (o *OneShot) Radii() []float64 { return o.radii }

// Params returns the parameters the index was built with.
func (o *OneShot) Params() OneShotParams { return o.prm }

// One runs the one-shot search for q: BF(q,R) to find the nearest
// representative, then BF(q, X[L_r]) over its ownership list.
func (o *OneShot) One(q []float32) (Result, Stats) {
	sc := par.GetScratch()
	defer par.PutScratch(sc)
	h, st := o.knn(q, 1, nil, sc)
	nb, ok := h.Best()
	if !ok {
		return Result{ID: -1, Dist: math.Inf(1)}, st
	}
	return Result{ID: nb.ID, Dist: o.ker.ToDistance(nb.Dist)}, st
}

// KNN returns the (probabilistically correct) k nearest neighbors of q,
// sorted by ascending distance, scanning the Probes nearest
// representatives' lists.
func (o *OneShot) KNN(q []float32, k int) ([]par.Neighbor, Stats) {
	if k <= 0 {
		return nil, Stats{}
	}
	sc := par.GetScratch()
	defer par.PutScratch(sc)
	h, st := o.knn(q, k, nil, sc)
	return o.finish(h), st
}

// finish extracts a heap's neighbors sorted ascending, converting ordering
// distances at the boundary and re-sorting in distance space (the
// conversion can map distinct ordering values to equal distances).
func (o *OneShot) finish(h *par.KHeap) []par.Neighbor {
	res := h.Results()
	for i := range res {
		res[i].Dist = o.ker.ToDistance(res[i].Dist)
	}
	par.SortNeighbors(res)
	return res
}

// knn runs the one-shot search, returning the candidate heap (in ordering
// space) from sc's heap slot 1. ordRow optionally carries precomputed
// phase-1 ordering distances from the batched BF(Q,R) front half.
func (o *OneShot) knn(q []float32, k int, ordRow []float64, sc *par.Scratch) (*par.KHeap, Stats) {
	nr := o.NumReps()
	dim := o.db.Dim
	st := Stats{RepEvals: int64(nr)}

	ords := ordRow
	if ords == nil {
		ords = sc.Float64(0, nr)
		qn := o.ker.Norms(q, dim, sc.Float64(1, 1))
		// nq=1 with precomputed norms takes the row-kernel path, which
		// needs no tile scratch.
		o.ker.Tile(q, qn, o.repData.Data, o.repNorms, dim, ords, nil)
	}

	probes := o.prm.Probes
	if probes > nr {
		probes = nr
	}
	probeHeap := sc.Heap(0, probes)
	for j, d := range ords {
		probeHeap.Push(j, d)
	}

	h := sc.Heap(1, k)
	// With multiple probes a point may appear on several scanned lists;
	// dedupe so k-NN result sets contain distinct ids.
	var seen map[int32]struct{}
	if probes > 1 {
		seen = make(map[int32]struct{}, probes*o.s)
	}
	// Pooled block buffer: a local array would escape through the kernel's
	// interface dispatch. The list scan runs on the exact kernel — its
	// distances are the reported answers — whatever grade phase 1 used.
	scratch := sc.Float64(5, 256)
	for _, probe := range probeHeap.Kept() {
		j := probe.ID
		st.RepsKept++
		lo, hi := j*o.s, (j+1)*o.s
		for blk := lo; blk < hi; blk += len(scratch) {
			end := blk + len(scratch)
			if end > hi {
				end = hi
			}
			out := scratch[:end-blk]
			o.xker.Ordering(q, o.gather[blk*dim:end*dim], dim, out)
			for i, dd := range out {
				id := o.ids[blk+i]
				if seen != nil {
					if _, dup := seen[id]; dup {
						continue
					}
					seen[id] = struct{}{}
				}
				h.Push(int(id), dd)
			}
			st.PointEvals += int64(end - blk)
		}
	}
	return h, st
}

// Search answers a batch of 1-NN queries in parallel and returns the
// results plus aggregated stats. The phase-1 scans run as a tiled BF(Q,R)
// front half on the Gram kernel with the cached representative norms.
func (o *OneShot) Search(queries *vec.Dataset) ([]Result, Stats) {
	o.checkDim(queries.Dim)
	out := make([]Result, queries.N())
	agg := o.batch(queries, 1, func(i int, h *par.KHeap) {
		nb, ok := h.Best()
		if !ok {
			out[i] = Result{ID: -1, Dist: math.Inf(1)}
			return
		}
		out[i] = Result{ID: nb.ID, Dist: o.ker.ToDistance(nb.Dist)}
	})
	return out, agg
}

// SearchK answers a batch of k-NN queries in parallel.
func (o *OneShot) SearchK(queries *vec.Dataset, k int) ([][]par.Neighbor, Stats) {
	o.checkDim(queries.Dim)
	out := make([][]par.Neighbor, queries.N())
	if k <= 0 {
		return out, Stats{}
	}
	agg := o.batch(queries, k, func(i int, h *par.KHeap) {
		out[i] = o.finish(h)
	})
	return out, agg
}

// KNNBatch is the batch-first k-NN entry point (search.BatchSearcher):
// the whole query block shares one tiled Gram BF(Q,R) front half over the
// cached representative norms before the per-query list scans run.
func (o *OneShot) KNNBatch(queries *vec.Dataset, k int) ([][]par.Neighbor, Stats) {
	return o.SearchK(queries, k)
}

// batch answers a query block through the fully grouped path
// (batch_grouped.go): the tiled Gram BF(Q,R) front half selects probes
// for the whole block, and each probed list is scanned once per query
// tile through the exact-mode tiled kernel.
func (o *OneShot) batch(queries *vec.Dataset, k int, sink func(i int, h *par.KHeap)) Stats {
	return o.batchGrouped(queries, k, sink)
}

// Certify reports whether the one-shot answer for q is guaranteed exact:
// if ρ(q,r) ≤ ψ_r/2 for the representative r whose list the search scans,
// then (by the argument of Theorem 2, which needs only that r's list is
// the one scanned) q's true NN is necessarily on L_r. The probe is chosen
// with the same Gram phase-1 the search uses, so certificate and scan
// always agree on r; the inequality itself is evaluated with the exact
// kernel, because a hard witness must not inherit the fast kernel's ulp
// noise. A false return does not mean the answer is wrong — only
// unwitnessed.
func (o *OneShot) Certify(q []float32) bool {
	nr := o.NumReps()
	dim := o.db.Dim
	sc := par.GetScratch()
	defer par.PutScratch(sc)
	ords := sc.Float64(0, nr)
	qn := o.ker.Norms(q, dim, sc.Float64(1, 1))
	o.ker.Tile(q, qn, o.repData.Data, o.repNorms, dim, ords, nil)
	j, _ := par.ArgMin(ords)
	exact := sc.Float64(2, 1)
	o.xker.Ordering(q, o.repData.Row(j), dim, exact)
	return o.xker.ToDistance(exact[0]) <= o.radii[j]/2
}

func (o *OneShot) checkDim(dim int) {
	if dim != o.db.Dim {
		panic(fmt.Sprintf("core: query dim %d does not match database dim %d", dim, o.db.Dim))
	}
}
