package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/metric"
	"repro/internal/vec"
)

func TestExactSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := clusteredDataset(rng, 600, 5, 6)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 3, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadExact(&buf, db, m)
	if err != nil {
		t.Fatal(err)
	}
	queries := randomDataset(rng, 40, 5)
	for i := 0; i < queries.N(); i++ {
		q := queries.Row(i)
		a, _ := e.One(q)
		b, _ := loaded.One(q)
		if a != b {
			t.Fatalf("query %d: original %+v loaded %+v", i, a, b)
		}
	}
	ka, _ := e.KNN(queries.Row(0), 5)
	kb, _ := loaded.KNN(queries.Row(0), 5)
	for j := range ka {
		if ka[j] != kb[j] {
			t.Fatal("knn mismatch after load")
		}
	}
}

// The sorted-segment permutation must survive save/load byte for byte:
// the EarlyExit admissible windows (and the distributed shards that
// mirror this layout) binary-search the per-list Dists column, so a
// loaded index must hold the identical (ids, dists, offsets) ordering —
// not merely an equivalent one — and prune identically through the
// windows.
func TestExactSaveLoadPreservesSortedSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := clusteredDataset(rng, 700, 4, 7)
	// Duplicates create (dist, id) ties, pinning the tiebreak order too.
	for i := 0; i < 40; i++ {
		copy(db.Row(300+i), db.Row(i))
	}
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 13, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadExact(&buf, db, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.ids) != len(e.ids) || len(loaded.dists) != len(e.dists) || len(loaded.offsets) != len(e.offsets) {
		t.Fatalf("structure sizes diverged after load")
	}
	for j := 0; j+1 < len(e.offsets); j++ {
		if loaded.offsets[j] != e.offsets[j] {
			t.Fatalf("offset %d: %d, want %d", j, loaded.offsets[j], e.offsets[j])
		}
		lo, hi := e.offsets[j], e.offsets[j+1]
		for p := lo; p < hi; p++ {
			if loaded.ids[p] != e.ids[p] || loaded.dists[p] != e.dists[p] {
				t.Fatalf("list %d position %d: loaded (%d, %v), want (%d, %v)",
					j, p, loaded.ids[p], loaded.dists[p], e.ids[p], e.dists[p])
			}
			if p > lo && (loaded.dists[p] < loaded.dists[p-1] ||
				(loaded.dists[p] == loaded.dists[p-1] && loaded.ids[p] < loaded.ids[p-1])) {
				t.Fatalf("list %d not in (dist, id) order at %d after load", j, p)
			}
		}
	}
	// Windowed searches must prune identically, not just answer
	// identically (Stats include the window-clipped PointEvals).
	queries := randomDataset(rng, 30, 4)
	for i := 0; i < queries.N(); i++ {
		a, sa := e.KNN(queries.Row(i), 6)
		b, sb := loaded.KNN(queries.Row(i), 6)
		if sa != sb {
			t.Fatalf("query %d: stats diverge: %+v vs %+v", i, sa, sb)
		}
		for p := range a {
			if a[p] != b[p] {
				t.Fatalf("query %d pos %d: %+v vs %+v", i, p, a[p], b[p])
			}
		}
	}
}

// A snapshot whose per-list Dists column is out of order is corrupt —
// accepting it would make EarlyExit windows silently drop answers — and
// so is one whose Dists length disagrees with IDs.
func TestLoadExactRejectsCorruptSortedSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	db := clusteredDataset(rng, 300, 3, 4)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 19, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(snap *exactSnapshot)) error {
		var buf bytes.Buffer
		if err := e.Save(&buf); err != nil {
			t.Fatal(err)
		}
		var snap exactSnapshot
		if err := gob.NewDecoder(&buf).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		mutate(&snap)
		var out bytes.Buffer
		if err := gob.NewEncoder(&out).Encode(&snap); err != nil {
			t.Fatal(err)
		}
		_, err := LoadExact(&out, db, m)
		return err
	}
	// Swap the first list's boundary members: dists fall out of order.
	if err := corrupt(func(snap *exactSnapshot) {
		for j := 0; j+1 < len(snap.Offsets); j++ {
			lo, hi := snap.Offsets[j], snap.Offsets[j+1]
			if hi-lo >= 2 && snap.Dists[lo] != snap.Dists[hi-1] {
				snap.IDs[lo], snap.IDs[hi-1] = snap.IDs[hi-1], snap.IDs[lo]
				snap.Dists[lo], snap.Dists[hi-1] = snap.Dists[hi-1], snap.Dists[lo]
				return
			}
		}
		t.Fatal("no list with distinct boundary dists to corrupt")
	}); err == nil {
		t.Fatal("unsorted list dists should be rejected")
	}
	// Break a (dist, id) tie order without touching the dists.
	if err := corrupt(func(snap *exactSnapshot) {
		for j := 0; j+1 < len(snap.Offsets); j++ {
			lo, hi := snap.Offsets[j], snap.Offsets[j+1]
			for p := lo + 1; p < hi; p++ {
				if snap.Dists[p] == snap.Dists[p-1] {
					snap.IDs[p], snap.IDs[p-1] = snap.IDs[p-1], snap.IDs[p]
					return
				}
			}
		}
		// No tie in this build: fall back to an out-of-order dist.
		snap.Dists[snap.Offsets[1]-1], snap.Dists[snap.Offsets[0]] =
			snap.Dists[snap.Offsets[0]], snap.Dists[snap.Offsets[1]-1]
	}); err == nil {
		t.Fatal("tie-order corruption should be rejected")
	}
	// Dists length mismatch.
	if err := corrupt(func(snap *exactSnapshot) {
		snap.Dists = snap.Dists[:len(snap.Dists)-1]
	}); err == nil {
		t.Fatal("short Dists should be rejected")
	}
	// Offsets that silently truncate coverage: the final offset must land
	// exactly on len(IDs), else trailing positions would never be scanned.
	if err := corrupt(func(snap *exactSnapshot) {
		snap.Offsets[len(snap.Offsets)-1]--
	}); err == nil {
		t.Fatal("truncated offsets coverage should be rejected")
	}
	if err := corrupt(func(snap *exactSnapshot) {
		snap.Offsets[0] = 1
	}); err == nil {
		t.Fatal("nonzero first offset should be rejected")
	}
}

func TestOneShotSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := clusteredDataset(rng, 500, 4, 5)
	m := metric.Euclidean{}
	o, err := BuildOneShot(db, m, OneShotParams{NumReps: 30, S: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadOneShot(&buf, db, m)
	if err != nil {
		t.Fatal(err)
	}
	queries := randomDataset(rng, 30, 4)
	for i := 0; i < queries.N(); i++ {
		q := queries.Row(i)
		a, _ := o.One(q)
		b, _ := loaded.One(q)
		if a != b {
			t.Fatalf("query %d: original %+v loaded %+v", i, a, b)
		}
	}
}

func TestLoadExactValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randomDataset(rng, 200, 3)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	save := func() *bytes.Buffer {
		var buf bytes.Buffer
		if err := e.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	// Wrong metric.
	if _, err := LoadExact(save(), db, metric.Manhattan{}); err == nil {
		t.Fatal("metric mismatch should error")
	}
	// Wrong database size.
	other := randomDataset(rng, 100, 3)
	if _, err := LoadExact(save(), other, m); err == nil {
		t.Fatal("db size mismatch should error")
	}
	// Wrong dimension.
	wrongDim := randomDataset(rng, 200, 4)
	if _, err := LoadExact(save(), wrongDim, m); err == nil {
		t.Fatal("db dim mismatch should error")
	}
	// Garbage stream.
	if _, err := LoadExact(bytes.NewReader([]byte("not a gob")), db, m); err == nil {
		t.Fatal("garbage should error")
	}
}

func TestLoadOneShotValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := randomDataset(rng, 150, 3)
	m := metric.Euclidean{}
	o, err := BuildOneShot(db, m, OneShotParams{NumReps: 12, S: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOneShot(bytes.NewReader(buf.Bytes()), db, metric.Chebyshev{}); err == nil {
		t.Fatal("metric mismatch should error")
	}
	if _, err := LoadOneShot(bytes.NewReader([]byte("junk")), db, m); err == nil {
		t.Fatal("garbage should error")
	}
	other := randomDataset(rng, 150, 5)
	if _, err := LoadOneShot(bytes.NewReader(buf.Bytes()), other, m); err == nil {
		t.Fatal("dim mismatch should error")
	}
}

// Version-2 snapshots carry tombstones: deletions no longer force a
// Rebuild before Save, ids stay stable across the round trip, and the
// loaded index answers bit-identically — the property WAL replay
// recovery is built on.
func TestSaveLoadWithTombstones(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db := clusteredDataset(rng, 500, 4, 6)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 3, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate: inserts (flushed into the sorted layout), deletes kept as
	// tombstones — including a representative's point.
	extra := clusteredDataset(rng, 80, 4, 6)
	for i := 0; i < extra.N(); i++ {
		e.Insert(extra.Row(i))
	}
	e.Flush()
	deleted := map[int]bool{}
	for _, id := range []int{e.RepIDs()[0], 7, 130, 512, 570} {
		if err := e.Delete(id); err != nil {
			t.Fatal(err)
		}
		deleted[id] = true
	}
	if !e.Dirty() {
		t.Fatal("tombstones should leave the index dirty")
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatalf("Save with tombstones (no pending buffers) should succeed: %v", err)
	}
	loaded, err := LoadExact(&buf, db, m)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Live() != e.Live() || loaded.Live() != 580-len(deleted) {
		t.Fatalf("live %d after load, want %d", loaded.Live(), e.Live())
	}
	queries := randomDataset(rng, 30, 4)
	for i := 0; i < queries.N(); i++ {
		a, sa := e.KNN(queries.Row(i), 6)
		b, sb := loaded.KNN(queries.Row(i), 6)
		if sa != sb {
			t.Fatalf("query %d: stats diverge: %+v vs %+v", i, sa, sb)
		}
		for p := range a {
			if a[p] != b[p] {
				t.Fatalf("query %d pos %d: %+v vs %+v", i, p, a[p], b[p])
			}
			if deleted[a[p].ID] {
				t.Fatalf("query %d returned deleted id %d", i, a[p].ID)
			}
		}
	}
	// The loaded index keeps mutating: ids continue from the same space.
	if id := loaded.Insert(extra.Row(0)); id != 580 {
		t.Fatalf("insert after load got id %d, want 580", id)
	}
}

// Save's dirty gate now scopes to pending insertion buffers only: Flush
// suffices (no Rebuild needed), and tombstones alone never block a save.
func TestSaveGateScopesToBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	db := randomDataset(rng, 120, 3)
	e, err := BuildExact(db, metric.Euclidean{}, ExactParams{Seed: 1, BufferMerge: -1})
	if err != nil {
		t.Fatal(err)
	}
	e.Insert([]float32{0.1, 0.2, 0.3})
	var buf bytes.Buffer
	if err := e.Save(&buf); !errors.Is(err, ErrDirtyIndex) {
		t.Fatalf("pending buffer: want ErrDirtyIndex, got %v", err)
	}
	e.Flush()
	if err := e.Delete(5); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := e.Save(&buf); err != nil {
		t.Fatalf("Save after Flush with tombstones: %v", err)
	}
	if _, err := LoadExact(&buf, db, metric.Euclidean{}); err != nil {
		t.Fatal(err)
	}
}

// Corrupt tombstone metadata must be rejected: out-of-range or
// duplicated Deleted entries, and databases whose ids are neither
// listed nor tombstoned (the lists and the database disagree).
func TestLoadExactRejectsCorruptTombstones(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	db := clusteredDataset(rng, 200, 3, 4)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(42); err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(snap *exactSnapshot)) error {
		var buf bytes.Buffer
		if err := e.Save(&buf); err != nil {
			t.Fatal(err)
		}
		var snap exactSnapshot
		if err := gob.NewDecoder(&buf).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		mutate(&snap)
		var out bytes.Buffer
		if err := gob.NewEncoder(&out).Encode(&snap); err != nil {
			t.Fatal(err)
		}
		_, err := LoadExact(&out, db, m)
		return err
	}
	if err := corrupt(func(snap *exactSnapshot) {}); err != nil {
		t.Fatalf("unmutated snapshot should load: %v", err)
	}
	if err := corrupt(func(snap *exactSnapshot) {
		snap.Deleted[0] = 10_000
	}); err == nil {
		t.Fatal("out-of-range deleted id should be rejected")
	}
	if err := corrupt(func(snap *exactSnapshot) {
		snap.Deleted = append(snap.Deleted, snap.Deleted[0])
	}); err == nil {
		t.Fatal("duplicated deleted id should be rejected")
	}
	if err := corrupt(func(snap *exactSnapshot) {
		// A member listed twice shadows another id entirely.
		snap.IDs[0] = snap.IDs[1]
	}); err == nil {
		t.Fatal("duplicated member id should be rejected")
	}
	if err := corrupt(func(snap *exactSnapshot) {
		snap.Version = 99
	}); err == nil {
		t.Fatal("unknown version should be rejected")
	}
}

func TestSaveLoadPreservesStatsBehaviour(t *testing.T) {
	// The loaded index must prune identically, not just answer identically.
	rng := rand.New(rand.NewSource(5))
	db := clusteredDataset(rng, 800, 5, 8)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 6, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadExact(&buf, db, m)
	if err != nil {
		t.Fatal(err)
	}
	q := vec.FromRows([][]float32{db.Row(17)}).Row(0)
	_, sa := e.One(q)
	_, sb := loaded.One(q)
	if sa != sb {
		t.Fatalf("stats diverge: %+v vs %+v", sa, sb)
	}
}
