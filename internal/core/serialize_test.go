package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/metric"
	"repro/internal/vec"
)

func TestExactSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := clusteredDataset(rng, 600, 5, 6)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 3, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadExact(&buf, db, m)
	if err != nil {
		t.Fatal(err)
	}
	queries := randomDataset(rng, 40, 5)
	for i := 0; i < queries.N(); i++ {
		q := queries.Row(i)
		a, _ := e.One(q)
		b, _ := loaded.One(q)
		if a != b {
			t.Fatalf("query %d: original %+v loaded %+v", i, a, b)
		}
	}
	ka, _ := e.KNN(queries.Row(0), 5)
	kb, _ := loaded.KNN(queries.Row(0), 5)
	for j := range ka {
		if ka[j] != kb[j] {
			t.Fatal("knn mismatch after load")
		}
	}
}

func TestOneShotSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := clusteredDataset(rng, 500, 4, 5)
	m := metric.Euclidean{}
	o, err := BuildOneShot(db, m, OneShotParams{NumReps: 30, S: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadOneShot(&buf, db, m)
	if err != nil {
		t.Fatal(err)
	}
	queries := randomDataset(rng, 30, 4)
	for i := 0; i < queries.N(); i++ {
		q := queries.Row(i)
		a, _ := o.One(q)
		b, _ := loaded.One(q)
		if a != b {
			t.Fatalf("query %d: original %+v loaded %+v", i, a, b)
		}
	}
}

func TestLoadExactValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randomDataset(rng, 200, 3)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	save := func() *bytes.Buffer {
		var buf bytes.Buffer
		if err := e.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	// Wrong metric.
	if _, err := LoadExact(save(), db, metric.Manhattan{}); err == nil {
		t.Fatal("metric mismatch should error")
	}
	// Wrong database size.
	other := randomDataset(rng, 100, 3)
	if _, err := LoadExact(save(), other, m); err == nil {
		t.Fatal("db size mismatch should error")
	}
	// Wrong dimension.
	wrongDim := randomDataset(rng, 200, 4)
	if _, err := LoadExact(save(), wrongDim, m); err == nil {
		t.Fatal("db dim mismatch should error")
	}
	// Garbage stream.
	if _, err := LoadExact(bytes.NewReader([]byte("not a gob")), db, m); err == nil {
		t.Fatal("garbage should error")
	}
}

func TestLoadOneShotValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := randomDataset(rng, 150, 3)
	m := metric.Euclidean{}
	o, err := BuildOneShot(db, m, OneShotParams{NumReps: 12, S: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOneShot(bytes.NewReader(buf.Bytes()), db, metric.Chebyshev{}); err == nil {
		t.Fatal("metric mismatch should error")
	}
	if _, err := LoadOneShot(bytes.NewReader([]byte("junk")), db, m); err == nil {
		t.Fatal("garbage should error")
	}
	other := randomDataset(rng, 150, 5)
	if _, err := LoadOneShot(bytes.NewReader(buf.Bytes()), other, m); err == nil {
		t.Fatal("dim mismatch should error")
	}
}

func TestSaveLoadPreservesStatsBehaviour(t *testing.T) {
	// The loaded index must prune identically, not just answer identically.
	rng := rand.New(rand.NewSource(5))
	db := clusteredDataset(rng, 800, 5, 8)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 6, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadExact(&buf, db, m)
	if err != nil {
		t.Fatal(err)
	}
	q := vec.FromRows([][]float32{db.Row(17)}).Row(0)
	_, sa := e.One(q)
	_, sb := loaded.One(q)
	if sa != sb {
		t.Fatalf("stats diverge: %+v vs %+v", sa, sb)
	}
}
