package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/vec"
)

func randomDataset(rng *rand.Rand, n, dim int) *vec.Dataset {
	d := vec.New(dim, n)
	for i := 0; i < n; i++ {
		row := make([]float32, dim)
		for j := range row {
			row[j] = rng.Float32()*2 - 1
		}
		d.Append(row)
	}
	return d
}

// seqInts returns [lo, hi) as a slice.
func seqInts(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// clusteredDataset produces low-intrinsic-dimension data where RBC pruning
// actually bites.
func clusteredDataset(rng *rand.Rand, n, dim, clusters int) *vec.Dataset {
	centers := randomDataset(rng, clusters, dim)
	d := vec.New(dim, n)
	for i := 0; i < n; i++ {
		c := centers.Row(rng.Intn(clusters))
		row := make([]float32, dim)
		for j := range row {
			row[j] = c[j]*10 + float32(rng.NormFloat64())*0.3
		}
		d.Append(row)
	}
	return d
}

func TestBuildExactPartitionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := clusteredDataset(rng, 800, 6, 10)
	e, err := BuildExact(db, metric.Euclidean{}, ExactParams{NumReps: 30, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Invariant: lists partition the database.
	seen := make([]bool, db.N())
	for _, id := range e.ids {
		if seen[id] {
			t.Fatalf("db id %d appears in two lists", id)
		}
		seen[id] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("db id %d missing from all lists", i)
		}
	}
	// Invariant: within each list, distances are sorted ascending and each
	// point's distance to its representative equals the stored value; the
	// radius is the final (max) distance.
	m := metric.Euclidean{}
	for j := 0; j < e.NumReps(); j++ {
		lo, hi := e.offsets[j], e.offsets[j+1]
		rep := db.Row(e.repIDs[j])
		for p := lo; p < hi; p++ {
			if p > lo && e.dists[p] < e.dists[p-1] {
				t.Fatalf("list %d not sorted at position %d", j, p)
			}
			want := m.Distance(db.Row(int(e.ids[p])), rep)
			if math.Abs(e.dists[p]-want) > 1e-9 {
				t.Fatalf("stored dist %v, recomputed %v", e.dists[p], want)
			}
		}
		if hi > lo && e.radii[j] != e.dists[hi-1] {
			t.Fatalf("radius %v != max list dist %v", e.radii[j], e.dists[hi-1])
		}
	}
	// Invariant: every point is assigned to its *nearest* representative.
	for j := 0; j < e.NumReps(); j++ {
		for p := e.offsets[j]; p < e.offsets[j+1]; p++ {
			x := db.Row(int(e.ids[p]))
			for jj, rid := range e.repIDs {
				if d := m.Distance(x, db.Row(rid)); d < e.dists[p]-1e-9 {
					t.Fatalf("point %d owned by rep %d but rep %d is closer (%v < %v)",
						e.ids[p], j, jj, d, e.dists[p])
				}
			}
		}
	}
}

func TestBuildExactErrors(t *testing.T) {
	var empty vec.Dataset
	if _, err := BuildExact(&empty, metric.Euclidean{}, ExactParams{}); err == nil {
		t.Fatal("empty db should error")
	}
	db := vec.FromRows([][]float32{{1}})
	if _, err := BuildExact(db, metric.Euclidean{}, ExactParams{ApproxEps: -0.5}); err == nil {
		t.Fatal("negative ApproxEps should error")
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, cfg := range []struct {
		name string
		db   *vec.Dataset
	}{
		{"uniform", randomDataset(rng, 1200, 5)},
		{"clustered", clusteredDataset(rng, 1200, 8, 12)},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			e, err := BuildExact(cfg.db, metric.Euclidean{}, ExactParams{Seed: 7, EarlyExit: true})
			if err != nil {
				t.Fatal(err)
			}
			queries := randomDataset(rng, 60, cfg.db.Dim)
			for i := 0; i < queries.N(); i++ {
				q := queries.Row(i)
				got, _ := e.One(q)
				want := bruteforce.SearchOne(q, cfg.db, metric.Euclidean{}, nil)
				if got.Dist != want.Dist {
					t.Fatalf("query %d: got %+v want %+v", i, got, want)
				}
			}
		})
	}
}

func TestExactQueryOnDatabasePoints(t *testing.T) {
	// Every database point's own NN must be itself (distance 0).
	rng := rand.New(rand.NewSource(3))
	db := randomDataset(rng, 500, 4)
	e, err := BuildExact(db, metric.Euclidean{}, ExactParams{Seed: 1, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		got, _ := e.One(db.Row(i))
		if got.Dist != 0 {
			t.Fatalf("db point %d: dist %v", i, got.Dist)
		}
	}
}

func TestExactKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := clusteredDataset(rng, 900, 6, 9)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 5, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := randomDataset(rng, 25, 6)
	for _, k := range []int{1, 3, 10} {
		for i := 0; i < queries.N(); i++ {
			q := queries.Row(i)
			got, _ := e.KNN(q, k)
			want := bruteforce.SearchOneK(q, db, k, m, nil)
			if len(got) != len(want) {
				t.Fatalf("k=%d q=%d: %d results, want %d", k, i, len(got), len(want))
			}
			for j := range got {
				if got[j].Dist != want[j].Dist {
					t.Fatalf("k=%d q=%d pos=%d: dist %v want %v", k, i, j, got[j].Dist, want[j].Dist)
				}
			}
		}
	}
}

func TestExactKNNWithDuplicates(t *testing.T) {
	// Heavy duplication stresses tie handling and the rep/list dedupe.
	rows := make([][]float32, 0, 300)
	for i := 0; i < 100; i++ {
		v := float32(i % 10)
		rows = append(rows, []float32{v, v}, []float32{v, v}, []float32{v + 0.5, v})
	}
	db := vec.FromRows(rows)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 3, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	q := []float32{2.1, 2.0}
	for _, k := range []int{1, 5, 12} {
		got, _ := e.KNN(q, k)
		want := bruteforce.SearchOneK(q, db, k, m, nil)
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
		}
		seen := map[int]bool{}
		for j := range got {
			if got[j].Dist != want[j].Dist {
				t.Fatalf("k=%d pos=%d: dist %v want %v", k, j, got[j].Dist, want[j].Dist)
			}
			if seen[got[j].ID] {
				t.Fatalf("k=%d: duplicate id %d in results", k, got[j].ID)
			}
			seen[got[j].ID] = true
		}
	}
}

func TestExactRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := clusteredDataset(rng, 700, 5, 8)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 2, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := randomDataset(rng, 20, 5)
	for i := 0; i < queries.N(); i++ {
		q := queries.Row(i)
		for _, eps := range []float64{0.1, 1.0, 5.0} {
			got, _ := e.Range(q, eps)
			want := bruteforce.RangeSearch(q, db, eps, m, nil)
			if len(got) != len(want) {
				t.Fatalf("q=%d eps=%v: %d hits, want %d", i, eps, len(got), len(want))
			}
			for j := range got {
				if got[j].ID != want[j].ID || got[j].Dist != want[j].Dist {
					t.Fatalf("q=%d eps=%v pos=%d: %+v want %+v", i, eps, j, got[j], want[j])
				}
			}
		}
	}
}

func TestExactSearchBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := randomDataset(rng, 400, 4)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	queries := randomDataset(rng, 30, 4)
	batch, st := e.Search(queries)
	if st.RepEvals != int64(queries.N()*e.NumReps()) {
		t.Fatalf("RepEvals=%d, want %d", st.RepEvals, queries.N()*e.NumReps())
	}
	for i := 0; i < queries.N(); i++ {
		one, _ := e.One(queries.Row(i))
		if batch[i] != one {
			t.Fatalf("batch[%d]=%+v, One=%+v", i, batch[i], one)
		}
	}
	// k-NN batch too.
	batchK, _ := e.SearchK(queries, 3)
	for i := 0; i < queries.N(); i++ {
		oneK, _ := e.KNN(queries.Row(i), 3)
		for j := range oneK {
			if batchK[i][j] != oneK[j] {
				t.Fatalf("batchK[%d][%d] mismatch", i, j)
			}
		}
	}
}

func TestExactDoesLessWorkThanBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := clusteredDataset(rng, 4000, 8, 15)
	e, err := BuildExact(db, metric.Euclidean{}, ExactParams{Seed: 11, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := randomDataset(rng, 50, 8)
	_, st := e.Search(queries)
	perQuery := float64(st.TotalEvals()) / float64(queries.N())
	if perQuery >= float64(db.N())/2 {
		t.Fatalf("exact search examined %.0f points per query; brute force would be %d", perQuery, db.N())
	}
}

func TestExactPruningBoundsIndividually(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Draw db and queries from the same clustered distribution so both
	// pruning bounds have a chance to fire (γ is then cluster-scale small).
	all := clusteredDataset(rng, 1540, 6, 10)
	db := all.Subset(seqInts(0, 1500))
	queries := all.Subset(seqInts(1500, 1540))
	m := metric.Euclidean{}
	want := bruteforce.Search(queries, db, m, nil)
	for _, prm := range []ExactParams{
		{Seed: 13, PrunePsi: true},                                     // bound (1) only
		{Seed: 13, PruneTriple: true},                                  // bound (2) only
		{Seed: 13, PrunePsi: true, PruneTriple: true},                  // both
		{Seed: 13, PrunePsi: true, PruneTriple: true, EarlyExit: true}, // + 4γ window
		{Seed: 13, PrunePsi: true, EarlyExit: true},                    // window without (2)
	} {
		e, err := BuildExact(db, m, prm)
		if err != nil {
			t.Fatal(err)
		}
		got, st := e.Search(queries)
		for i := range got {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("params %+v query %d: %v want %v", prm, i, got[i].Dist, want[i].Dist)
			}
		}
		if prm.PrunePsi && st.PrunedPsi == 0 {
			t.Fatalf("params %+v: psi bound never fired", prm)
		}
		if prm.PruneTriple && !prm.PrunePsi && st.PrunedTriple == 0 {
			t.Fatalf("params %+v: triple bound never fired", prm)
		}
	}
}

func TestExactApproxGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := clusteredDataset(rng, 2000, 6, 10)
	m := metric.Euclidean{}
	queries := randomDataset(rng, 80, 6)
	want := bruteforce.Search(queries, db, m, nil)
	for _, eps := range []float64{0.1, 0.5, 2.0} {
		e, err := BuildExact(db, m, ExactParams{Seed: 17, ApproxEps: eps, EarlyExit: true})
		if err != nil {
			t.Fatal(err)
		}
		got, stApprox := e.Search(queries)
		for i := range got {
			if got[i].Dist > (1+eps)*want[i].Dist+1e-9 {
				t.Fatalf("eps=%v query %d: got %v, exceeds (1+eps)*%v", eps, i, got[i].Dist, want[i].Dist)
			}
		}
		exact, stExact := func() (*Exact, Stats) {
			ee, err := BuildExact(db, m, ExactParams{Seed: 17, EarlyExit: true})
			if err != nil {
				t.Fatal(err)
			}
			_, s := ee.Search(queries)
			return ee, s
		}()
		_ = exact
		if stApprox.PointEvals > stExact.PointEvals {
			t.Fatalf("eps=%v: approx did more work (%d) than exact (%d)", eps, stApprox.PointEvals, stExact.PointEvals)
		}
	}
}

func TestExactDegenerateAllReps(t *testing.T) {
	// NumReps >= n: every point is a representative; search must still be
	// exact (it degenerates to brute force over R).
	rng := rand.New(rand.NewSource(10))
	db := randomDataset(rng, 120, 3)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{NumReps: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumReps() != db.N() {
		t.Fatalf("NumReps=%d, want %d", e.NumReps(), db.N())
	}
	q := []float32{0.2, -0.3, 0.5}
	got, _ := e.One(q)
	want := bruteforce.SearchOne(q, db, m, nil)
	if got.Dist != want.Dist {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestExactSingletonDB(t *testing.T) {
	db := vec.FromRows([][]float32{{1, 2}})
	e, err := BuildExact(db, metric.Euclidean{}, ExactParams{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := e.One([]float32{0, 0})
	if got.ID != 0 {
		t.Fatalf("got %+v", got)
	}
	knn, _ := e.KNN([]float32{0, 0}, 5)
	if len(knn) != 1 {
		t.Fatalf("knn on singleton: %v", knn)
	}
}

func TestExactKNNZeroK(t *testing.T) {
	db := vec.FromRows([][]float32{{1}, {2}})
	e, err := BuildExact(db, metric.Euclidean{}, ExactParams{})
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := e.KNN([]float32{0}, 0); res != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestExactDimMismatchPanics(t *testing.T) {
	db := vec.FromRows([][]float32{{1, 2}, {3, 4}})
	e, err := BuildExact(db, metric.Euclidean{}, ExactParams{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch should panic")
		}
	}()
	e.Search(vec.FromRows([][]float32{{1, 2, 3}}))
}

func TestExactAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := randomDataset(rng, 300, 4)
	e, err := BuildExact(db, metric.Euclidean{}, ExactParams{NumReps: 20, Seed: 3, ExactCount: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumReps() != 20 {
		t.Fatalf("ExactCount: NumReps=%d, want 20", e.NumReps())
	}
	if len(e.RepIDs()) != 20 || len(e.Radii()) != 20 {
		t.Fatal("accessor lengths")
	}
	sizes := e.ListSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != db.N() {
		t.Fatalf("list sizes sum to %d, want %d", total, db.N())
	}
	if e.Params().NumReps != 20 {
		t.Fatal("Params roundtrip")
	}
}

func TestSampleRepsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// Binomial mode: expected count is approximately nr.
	total := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		ids := sampleReps(1000, 50, false, rng)
		total += len(ids)
		seen := map[int]bool{}
		for _, id := range ids {
			if id < 0 || id >= 1000 || seen[id] {
				t.Fatalf("bad sample: %v", ids)
			}
			seen[id] = true
		}
	}
	mean := float64(total) / trials
	if mean < 35 || mean > 65 {
		t.Fatalf("binomial mean %v too far from 50", mean)
	}
	// Exact mode: exactly nr, sorted.
	ids := sampleReps(100, 10, true, rng)
	if len(ids) != 10 {
		t.Fatalf("exact count: %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("exact mode ids not sorted/unique")
		}
	}
	// nr >= n: everything.
	ids = sampleReps(5, 50, false, rng)
	if len(ids) != 5 {
		t.Fatalf("nr>=n should return all: %v", ids)
	}
	// Never empty.
	for i := 0; i < 50; i++ {
		if len(sampleReps(1000, 1, false, rng)) == 0 {
			t.Fatal("empty representative set")
		}
	}
}

func TestDefaultNumReps(t *testing.T) {
	if DefaultNumReps(0) != 0 {
		t.Fatal("n=0")
	}
	if DefaultNumReps(100) != 10 {
		t.Fatalf("n=100: %d", DefaultNumReps(100))
	}
	if DefaultNumReps(2) != 2 {
		t.Fatalf("n=2: %d (must clamp to n)", DefaultNumReps(2))
	}
}

// Property: exact RBC equals brute force on random instances with random
// parameters — the core correctness theorem, checked end to end.
func TestQuickExactAlwaysExact(t *testing.T) {
	m := metric.Euclidean{}
	f := func(seed int64, nRaw uint16, nrRaw uint8, early bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%400 + 2
		nr := int(nrRaw)%n + 1
		db := randomDataset(rng, n, 3)
		e, err := BuildExact(db, m, ExactParams{NumReps: nr, Seed: seed, EarlyExit: early})
		if err != nil {
			return false
		}
		for trial := 0; trial < 4; trial++ {
			q := randomDataset(rng, 1, 3).Row(0)
			got, _ := e.One(q)
			want := bruteforce.SearchOne(q, db, m, nil)
			if got.Dist != want.Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: exact k-NN distance multiset equals brute force under
// duplicates and arbitrary k.
func TestQuickExactKNN(t *testing.T) {
	m := metric.Euclidean{}
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 150
		k := int(kRaw)%12 + 1
		db := randomDataset(rng, n, 2)
		// Inject duplicates.
		for i := 0; i < 30; i++ {
			copy(db.Row(rng.Intn(n)), db.Row(rng.Intn(n)))
		}
		e, err := BuildExact(db, m, ExactParams{Seed: seed, EarlyExit: true})
		if err != nil {
			return false
		}
		q := randomDataset(rng, 1, 2).Row(0)
		got, _ := e.KNN(q, k)
		want := bruteforce.SearchOneK(q, db, k, m, nil)
		if len(got) != len(want) {
			return false
		}
		for j := range got {
			if got[j].Dist != want[j].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
