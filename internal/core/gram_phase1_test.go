package core

import (
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/vec"
)

// Tests for the bracketed Gram phase 1 of Exact: BF(Q,R) runs on the fast
// kernel grade, every comparison is certified through the slack bracket or
// resolved by an exact rescore, and the answers — and the work counters —
// must stay bit-identical to the all-exact reference on tie-rich inputs.
// Integer lattices are the adversarial case: rep distances land exactly on
// pruning thresholds (d == γ + ψ_r) and window edges, so a merely
// conservative relaxation would admit tied candidates with different ids.

// tieGridDataset lays points on a small integer lattice with heavy
// duplication, so distances collide and every threshold comparison is a
// potential razor tie.
func tieGridDataset(rng *rand.Rand, n, dim, side int) *vec.Dataset {
	d := vec.New(dim, n)
	for i := 0; i < n; i++ {
		row := make([]float32, dim)
		for j := range row {
			row[j] = float32(rng.Intn(side))
		}
		d.Append(row)
	}
	return d
}

func TestGramPhase1TieRichBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	m := metric.Euclidean{}
	for _, tc := range []struct {
		name string
		prm  ExactParams
	}{
		{"default", ExactParams{Seed: 5}},
		{"earlyexit", ExactParams{Seed: 5, EarlyExit: true}},
		{"approx", ExactParams{Seed: 5, EarlyExit: true, ApproxEps: 0.5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, shape := range []struct{ n, dim, side int }{
				{300, 2, 4}, // dense collisions: most pairs tie
				{500, 3, 3},
				{400, 5, 2}, // hypercube corners only
			} {
				db := tieGridDataset(rng, shape.n, shape.dim, shape.side)
				e, err := BuildExact(db, m, tc.prm)
				if err != nil {
					t.Fatal(err)
				}
				// Queries sit on the same lattice (razor ties everywhere)
				// plus a few off-lattice perturbations.
				queries := tieGridDataset(rng, 24, shape.dim, shape.side)
				for i := 0; i < 8; i++ {
					row := make([]float32, shape.dim)
					copy(row, queries.Row(i))
					row[0] += 0.5
					queries.Append(row)
				}
				for _, k := range []int{1, 3, 7} {
					batch, bst := e.SearchK(queries, k)
					var sum Stats
					for i := 0; i < queries.N(); i++ {
						q := queries.Row(i)
						got, st := e.KNN(q, k)
						sum.Add(st)
						// Per-query vs batched (grouped) back half.
						if len(got) != len(batch[i]) {
							t.Fatalf("%v n=%d dim=%d k=%d q=%d: per-query %d results, batch %d",
								tc.prm, shape.n, shape.dim, k, i, len(got), len(batch[i]))
						}
						for j := range got {
							if got[j] != batch[i][j] {
								t.Fatalf("%v n=%d dim=%d k=%d q=%d pos=%d: per-query %+v, batch %+v (bit-for-bit)",
									tc.prm, shape.n, shape.dim, k, i, j, got[j], batch[i][j])
							}
						}
						// Exact variants vs the brute-force reference,
						// under the index's ordering-tie contract
						// (distances bit-true at every rank; ids may
						// permute within a tied distance — the ψ-prune is
						// allowed to drop a point that exactly ties γ_k).
						// The approx variant only guarantees (1+ε)
						// distances, so it is exercised for path parity
						// above but not pinned to the reference.
						if tc.prm.ApproxEps == 0 {
							want := bruteforce.SearchOneK(q, db, k, m, nil)
							seen := map[int]bool{}
							for j := range got {
								if got[j].Dist != want[j].Dist {
									t.Fatalf("n=%d dim=%d k=%d q=%d pos=%d: dist %v, want %v (bit-for-bit)",
										shape.n, shape.dim, k, i, j, got[j].Dist, want[j].Dist)
								}
								if seen[got[j].ID] {
									t.Fatalf("n=%d dim=%d k=%d q=%d: duplicate id %d",
										shape.n, shape.dim, k, i, got[j].ID)
								}
								seen[got[j].ID] = true
								if d := bruteforce.SearchOneK(q, db.Subset([]int{got[j].ID}), 1, m, nil)[0].Dist; d != got[j].Dist {
									t.Fatalf("n=%d dim=%d k=%d q=%d: id %d reported dist %v, true dist %v",
										shape.n, shape.dim, k, i, got[j].ID, got[j].Dist, d)
								}
							}
						}
					}
					// Work counters must agree between the paths too: the
					// exact-rescore fallback is uncounted on both, and the
					// certified decisions are the same decisions.
					if sum.RepsKept != bst.RepsKept || sum.PrunedPsi != bst.PrunedPsi ||
						sum.PrunedTriple != bst.PrunedTriple || sum.PointEvals != bst.PointEvals {
						t.Fatalf("n=%d dim=%d k=%d: per-query stats %+v, batch %+v",
							shape.n, shape.dim, k, sum, bst)
					}
				}
			}
		})
	}
}

// TestGramPhase1RangeTieRich pins the range path the same way: per-query
// vs batched range search, and both against the brute-force reference.
func TestGramPhase1RangeTieRich(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	m := metric.Euclidean{}
	db := tieGridDataset(rng, 400, 3, 4)
	e, err := BuildExact(db, m, ExactParams{Seed: 6, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := tieGridDataset(rng, 16, 3, 4)
	// Integer eps values land exactly on lattice distances, exercising the
	// window-edge razor cases.
	for _, eps := range []float64{0, 1, 2, 1.5} {
		batch, _ := e.RangeBatch(queries, eps)
		for i := 0; i < queries.N(); i++ {
			q := queries.Row(i)
			got, _ := e.Range(q, eps)
			want := bruteforce.RangeSearch(q, db, eps, m, nil)
			if len(got) != len(want) || len(batch[i]) != len(want) {
				t.Fatalf("eps=%v q=%d: per-query %d, batch %d, want %d hits",
					eps, i, len(got), len(batch[i]), len(want))
			}
			for j := range want {
				if got[j] != want[j] || batch[i][j] != want[j] {
					t.Fatalf("eps=%v q=%d pos=%d: per-query %+v, batch %+v, want %+v (bit-for-bit)",
						eps, i, j, got[j], batch[i][j], want[j])
				}
			}
		}
	}
}

// TestGramPhase1MutatedPath drives the per-query back half with dynamic
// state (inserts + deletes), where overflow windows and live-γ selection
// take the rescore-guarded paths, and checks against brute force over the
// live set.
func TestGramPhase1MutatedPath(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	m := metric.Euclidean{}
	db := tieGridDataset(rng, 300, 3, 3)
	e, err := BuildExact(db, m, ExactParams{Seed: 7, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		row := make([]float32, 3)
		for j := range row {
			row[j] = float32(rng.Intn(3))
		}
		e.Insert(row)
	}
	deleted := map[int]bool{}
	for i := 0; i < 30; i++ {
		id := rng.Intn(e.db.N())
		if !deleted[id] {
			if err := e.Delete(id); err != nil {
				t.Fatal(err)
			}
			deleted[id] = true
		}
	}
	live := vec.New(3, e.db.N())
	var liveIDs []int
	for id := 0; id < e.db.N(); id++ {
		if !deleted[id] {
			live.Append(e.db.Row(id))
			liveIDs = append(liveIDs, id)
		}
	}
	liveSet := map[int]bool{}
	for _, id := range liveIDs {
		liveSet[id] = true
	}
	queries := tieGridDataset(rng, 16, 3, 3)
	for _, k := range []int{1, 4} {
		for i := 0; i < queries.N(); i++ {
			q := queries.Row(i)
			got, _ := e.KNN(q, k)
			want := bruteforce.SearchOneK(q, live, k, m, nil)
			if len(got) != len(want) {
				t.Fatalf("k=%d q=%d: %d results, want %d", k, i, len(got), len(want))
			}
			// Distances bit-true at every rank; ids under the ordering-tie
			// contract, but always live, distinct, and dist-consistent.
			seen := map[int]bool{}
			for j := range want {
				if got[j].Dist != want[j].Dist {
					t.Fatalf("k=%d q=%d pos=%d: dist %v, want %v (bit-for-bit)",
						k, i, j, got[j].Dist, want[j].Dist)
				}
				if !liveSet[got[j].ID] || seen[got[j].ID] {
					t.Fatalf("k=%d q=%d: id %d deleted or duplicated", k, i, got[j].ID)
				}
				seen[got[j].ID] = true
				if d := bruteforce.SearchOneK(q, e.db.Subset([]int{got[j].ID}), 1, m, nil)[0].Dist; d != got[j].Dist {
					t.Fatalf("k=%d q=%d: id %d reported dist %v, true dist %v",
						k, i, got[j].ID, got[j].Dist, d)
				}
			}
		}
	}
}
