package core

import (
	"math"
	"sort"

	"repro/internal/par"
)

// k-NN and range search for the generic (arbitrary point type) RBC,
// mirroring the vector implementations. The pruning derivations are in
// exact.go; the only difference here is per-point Distance calls in
// place of batched scans.

// KNN returns the k exact nearest neighbors of q under the generic exact
// index, sorted by ascending distance.
func (g *GenericExact[P]) KNN(q P, k int) ([]par.Neighbor, Stats) {
	if k <= 0 {
		return nil, Stats{}
	}
	nr := g.NumReps()
	st := Stats{RepEvals: int64(nr)}
	repDists := make([]float64, nr)
	for j, rid := range g.repIDs {
		repDists[j] = g.m.Distance(q, g.db[rid])
	}
	sc := par.GetScratch()
	gamma1, gammaK := kthSmallest(repDists, k, sc)
	par.PutScratch(sc)
	psiGamma := gammaK
	if g.prm.ApproxEps > 0 {
		psiGamma = gammaK / (1 + g.prm.ApproxEps)
	}
	tripleBound := 2*gammaK + gamma1

	h := par.NewKHeap(k)
	for j, d := range repDists {
		h.Push(g.repIDs[j], d)
	}
	for j := range g.repIDs {
		d := repDists[j]
		if g.prm.PrunePsi && d >= psiGamma+g.radii[j] {
			st.PrunedPsi++
			continue
		}
		if g.prm.PruneTriple && !math.IsInf(tripleBound, 1) && d > tripleBound {
			st.PrunedTriple++
			continue
		}
		st.RepsKept++
		list, dists := g.lists[j], g.dists[j]
		lo, hi := 0, len(list)
		if g.prm.EarlyExit {
			lo = sort.SearchFloat64s(dists, d-psiGamma)
			hi = sort.SearchFloat64s(dists, math.Nextafter(d+psiGamma, math.Inf(1)))
		}
		for i := lo; i < hi; i++ {
			id := int(list[i])
			if g.isRep[id] {
				continue
			}
			h.Push(id, g.m.Distance(q, g.db[id]))
			st.PointEvals++
		}
	}
	return h.Results(), st
}

// Range returns every database point within eps of q, sorted by
// ascending distance.
func (g *GenericExact[P]) Range(q P, eps float64) ([]par.Neighbor, Stats) {
	nr := g.NumReps()
	st := Stats{RepEvals: int64(nr)}
	repDists := make([]float64, nr)
	for j, rid := range g.repIDs {
		repDists[j] = g.m.Distance(q, g.db[rid])
	}
	var hits []par.Neighbor
	for j := range g.repIDs {
		d := repDists[j]
		if d > eps+g.radii[j] {
			st.PrunedPsi++
			continue
		}
		st.RepsKept++
		list, dists := g.lists[j], g.dists[j]
		lo, hi := 0, len(list)
		if g.prm.EarlyExit {
			lo = sort.SearchFloat64s(dists, d-eps)
			hi = sort.SearchFloat64s(dists, math.Nextafter(d+eps, math.Inf(1)))
		}
		for i := lo; i < hi; i++ {
			id := int(list[i])
			dd := g.m.Distance(q, g.db[id])
			st.PointEvals++
			if dd <= eps {
				hits = append(hits, par.Neighbor{ID: id, Dist: dd})
			}
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Dist != hits[b].Dist {
			return hits[a].Dist < hits[b].Dist
		}
		return hits[a].ID < hits[b].ID
	})
	return hits, st
}

// KNN returns the k (probabilistically correct) nearest neighbors under
// the generic one-shot index.
func (g *GenericOneShot[P]) KNN(q P, k int) ([]par.Neighbor, Stats) {
	if k <= 0 {
		return nil, Stats{}
	}
	nr := g.NumReps()
	st := Stats{RepEvals: int64(nr)}
	bestRep, bd := -1, math.Inf(1)
	for j, rid := range g.repIDs {
		if d := g.m.Distance(q, g.db[rid]); d < bd {
			bestRep, bd = j, d
		}
	}
	st.RepsKept = 1
	h := par.NewKHeap(k)
	for _, id := range g.lists[bestRep] {
		h.Push(int(id), g.m.Distance(q, g.db[int(id)]))
		st.PointEvals++
	}
	return h.Results(), st
}
