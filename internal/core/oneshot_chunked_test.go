package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/vec"
)

func chunkedOneShotData(t *testing.T, n, dim int, seed int64) *vec.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := vec.New(dim, n)
	row := make([]float32, dim)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Float32()*2 - 1
		}
		db.Append(row)
	}
	return db
}

// TestOneShotPhase1ChunkedExactAtFullLists: with S = n every ownership
// list holds the whole database, so whatever representative the chunked
// phase 1 picks, the exact phase 2 must return answers bit-identical to
// the brute-force reference — the chunked grade may only steer the probe,
// never touch reported distances.
func TestOneShotPhase1ChunkedExactAtFullLists(t *testing.T) {
	db := chunkedOneShotData(t, 400, 9, 311)
	m := metric.Euclidean{}
	o, err := BuildOneShot(db, m, OneShotParams{NumReps: 20, S: 400, Seed: 5, Phase1Chunked: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := chunkedOneShotData(t, 30, 9, 313)
	for i := 0; i < queries.N(); i++ {
		q := queries.Row(i)
		got, _ := o.KNN(q, 7)
		want := bruteforce.SearchOneK(q, db, 7, m, nil)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("query %d pos %d: chunked-phase1 %+v, reference %+v", i, j, got[j], want[j])
			}
		}
	}
}

// TestOneShotPhase1ChunkedBatchParity: the grouped batch path must use
// the same phase-1 kernel as the per-query path, so KNNBatch stays
// bit-identical to per-query KNN under the chunked grade too.
func TestOneShotPhase1ChunkedBatchParity(t *testing.T) {
	db := chunkedOneShotData(t, 600, 13, 331)
	m := metric.Euclidean{}
	o, err := BuildOneShot(db, m, OneShotParams{NumReps: 24, Seed: 9, Probes: 2, Phase1Chunked: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := chunkedOneShotData(t, 40, 13, 337)
	batch, _ := o.KNNBatch(queries, 5)
	for i := 0; i < queries.N(); i++ {
		single, _ := o.KNN(queries.Row(i), 5)
		if len(batch[i]) != len(single) {
			t.Fatalf("query %d: batch %d results, per-query %d", i, len(batch[i]), len(single))
		}
		for j := range single {
			if batch[i][j] != single[j] {
				t.Fatalf("query %d pos %d: batch %+v, per-query %+v", i, j, batch[i][j], single[j])
			}
		}
	}
}

// TestOneShotPhase1ChunkedReportedDistancesExact: whatever list the
// chunked probe picks, every reported distance must be the exact-kernel
// distance of the returned id (no chunked noise may leak into answers).
func TestOneShotPhase1ChunkedReportedDistancesExact(t *testing.T) {
	db := chunkedOneShotData(t, 500, 17, 341)
	m := metric.Euclidean{}
	o, err := BuildOneShot(db, m, OneShotParams{Seed: 11, Phase1Chunked: true})
	if err != nil {
		t.Fatal(err)
	}
	xker := metric.NewKernel(m)
	ord := make([]float64, 1)
	queries := chunkedOneShotData(t, 25, 17, 347)
	for i := 0; i < queries.N(); i++ {
		q := queries.Row(i)
		nbs, _ := o.KNN(q, 4)
		for _, nb := range nbs {
			xker.Ordering(q, db.Row(nb.ID), db.Dim, ord)
			if want := xker.ToDistance(ord[0]); nb.Dist != want {
				t.Fatalf("query %d id %d: reported %v, exact %v", i, nb.ID, nb.Dist, want)
			}
		}
	}
}

// TestOneShotPhase1ChunkedRoundTrip: the phase-1 grade must survive
// Save/Load (it changes search behavior, so silently dropping it would
// desynchronize a reloaded index from its builder).
func TestOneShotPhase1ChunkedRoundTrip(t *testing.T) {
	db := chunkedOneShotData(t, 300, 5, 351)
	m := metric.Euclidean{}
	o, err := BuildOneShot(db, m, OneShotParams{Seed: 13, Phase1Chunked: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := LoadOneShot(&buf, db, m)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Params().Phase1Chunked {
		t.Fatal("Phase1Chunked lost in round trip")
	}
	q := db.Row(7)
	a, _ := o.KNN(q, 3)
	b, _ := re.KNN(q, 3)
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("pos %d: original %+v, reloaded %+v", j, a[j], b[j])
		}
	}
}
