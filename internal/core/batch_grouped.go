package core

import (
	"math"
	"sync"

	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// This file holds the fully batched (grouped) back halves of Exact and
// OneShot batch search. TileFrontHalf (batch.go) batches only phase 1 —
// the BF(Q,R) representative scan — and then runs each query's list
// scans alone through the row kernel. For a query *block*, that leaves
// the dominant phase-2 work on the slowest path. The grouped back half
// inverts the loop: within a tile of queries it computes, per ownership
// list, the set of queries whose pruning kept that list ("takers"), and
// scans the list once for all of them through the tiled kernel — phase 2
// becomes a sequence of small BF(Q', L) matrix-matrix calls, one per
// surviving list, instead of per-query matrix-vector sweeps.
//
// Correctness: per query, the candidates pushed are exactly those the
// per-query path pushes (each taker only admits positions inside its own
// EarlyExit window, representatives stay excluded), in the same list
// order, evaluated with the same per-pair arithmetic (the exact-mode
// Tile is bit-identical to Ordering). Results are therefore bit-identical
// to the per-query path.
//
// The scan is adaptive per point block: when at least two takers'
// windows cover most of a block, the block is evaluated as one tile;
// otherwise each taker row-scans just its own window slice, exactly like
// the per-query path. The tile may therefore evaluate up to ~2× more
// pairs than the windows strictly require (the tileWasteFactor bound);
// PointEvals counts admissible-window pairs on both paths, so work
// statistics stay comparable between per-query and batched search.
//
// The grouped path requires a pristine index: dynamic state (tombstones,
// insertion buffers) falls back to the per-query back half, which knows how
// to consult it.

// tileWasteFactor bounds how many surplus pairs a phase-2 tile may
// evaluate relative to the takers' admissible windows: a block is tiled
// only when takers×blockWidth ≤ tileWasteFactor × Σ window lengths.
// Tiled pairs cost roughly half a row-path pair (no per-pair float32
// widening), so 2 is the break-even point.
const tileWasteFactor = 2

// batchGrouped runs the grouped two-phase batch search for Exact. Phase 1
// runs on the fast kernel grade over the cached representative norms,
// with every comparison bracketed by the certified slack — the same
// scheme, in the same arithmetic, as the per-query back half (see
// Exact.one for the correctness argument), so the two paths stay
// bit-identical. Phase 2 and the seed rescores stay on the exact kernel:
// their distances are the reported answers.
func (e *Exact) batchGrouped(queries *vec.Dataset, k int, sink func(i int, h *par.KHeap)) Stats {
	nq := queries.N()
	nr := e.NumReps()
	dim := e.db.Dim
	tq, tp := metric.AutoTileShape(dim)
	var agg Stats
	var mu sync.Mutex
	par.For(nq, 1, func(lo, hi int) {
		sc := par.GetScratch()
		defer par.PutScratch(sc)
		ts := metric.GetTileScratch()
		defer metric.PutTileScratch(ts)
		var local Stats
		rows := sc.Float64(3, tq*nr)    // phase-1 fast ordering distances
		tile := sc.Float64(4, tq*tp)    // shared kernel tile
		distsLo := sc.Float64(0, tq*nr) // phase-1 bracket lows (pruning space)
		distsHi := sc.Float64(2, tq*nr) // phase-1 bracket highs (threshold space)
		bounds := sc.Float64(1, 2*tq)   // per-query psiGamma, tripleBound
		seedBuf := sc.Float64(5, 1)     // exact rescore cell for heap seeds
		tIdx := sc.Ints(0, tq)          // per-list takers (tile-local query index)
		tWin := sc.Ints(1, 2*tq)        // per-taker window [lo,hi)
		for q0 := lo; q0 < hi; q0 += tq {
			q1 := q0 + tq
			if q1 > hi {
				q1 = hi
			}
			bq := q1 - q0
			qflat := queries.Data[q0*dim : q1*dim]

			// Phase 1: tiled fast-grade BF(Qtile, R), identical to
			// TileFrontHalf over e.fker.
			qnorms := e.fker.Norms(qflat, dim, sc.Float64(6, bq))
			for r0 := 0; r0 < nr; r0 += tp {
				r1 := r0 + tp
				if r1 > nr {
					r1 = nr
				}
				bp := r1 - r0
				var pn []float64
				if e.repNorms != nil {
					pn = e.repNorms[r0:r1]
				}
				t := tile[:bq*bp]
				e.fker.Tile(qflat, qnorms, e.repData.Data[r0*dim:r1*dim], pn, dim, t, ts)
				for i := 0; i < bq; i++ {
					copy(rows[i*nr+r0:i*nr+r1], t[i*bp:(i+1)*bp])
				}
			}
			local.RepEvals += int64(bq * nr)

			// Per-query bracketing, pruning state and heap seeding (same
			// math and same push order as the per-query back half; seed
			// rescores run the exact row kernel and stay uncounted on both
			// paths). The γ candidate set {j : rowLo[j] ≤ γ_k^hi} is
			// rescored exactly, seeds the heap, and selects the exact
			// γ_1/γ_k — see Exact.one for why that reproduces the
			// all-exact path's γ's and kept multiset bit for bit.
			heaps := sc.HeapSlab(bq, k)
			for i := 0; i < bq; i++ {
				ords := rows[i*nr : (i+1)*nr]
				rowLo := distsLo[i*nr : (i+1)*nr]
				rowHi := distsHi[i*nr : (i+1)*nr]
				var slack float64
				if qnorms != nil {
					slack = metric.GramOrderingSlack(dim, qnorms[i], e.maxRepNorm)
				}
				for j, o := range ords {
					rowLo[j], rowHi[j] = e.bracketOrd(o, slack)
				}
				_, gammaKHi := kthSmallest(rowHi, k, sc)
				h := heaps[i]
				qrow := qflat[i*dim : (i+1)*dim]
				// cand is setup-local: GroupedScan re-carves slot 7 only
				// after the whole setup loop finishes.
				cand := sc.Float64(7, nr)[:0]
				for j := range rowLo {
					if rowLo[j] > gammaKHi {
						continue
					}
					e.ker.Ordering(qrow, e.repData.Data[j*dim:(j+1)*dim], dim, seedBuf[:1])
					d := e.ker.ToDistance(seedBuf[0])
					rowLo[j], rowHi[j] = d, d
					h.Push(e.repIDs[j], seedBuf[0])
					cand = append(cand, d)
				}
				gamma1, gammaK := kthSmallest(cand, k, sc)
				psiGamma := gammaK
				if e.prm.ApproxEps > 0 {
					psiGamma = gammaK / (1 + e.prm.ApproxEps)
				}
				bounds[2*i] = psiGamma
				bounds[2*i+1] = 2*gammaK + gamma1
			}

			// Phase 2, grouped: for each list, collect its takers and scan
			// the union of their windows once through GroupedScan (the
			// shared tiled-scan hook; see groupedscan.go). The sink is
			// hoisted out of the list loop so steady state stays
			// allocation-free.
			push := func(t, lo int, ords []float64) {
				h := heaps[tIdx[t]]
				for p := lo; p < lo+len(ords); p++ {
					if id := int(e.ids[p]); !e.isRep[id] {
						h.Push(id, ords[p-lo])
					}
				}
			}
			for j := 0; j < nr; j++ {
				listLo, listHi := e.offsets[j], e.offsets[j+1]
				takers := 0
				for i := 0; i < bq; i++ {
					rowLo := distsLo[i*nr : (i+1)*nr]
					rowHi := distsHi[i*nr : (i+1)*nr]
					qrow := qflat[i*dim : (i+1)*dim]
					dLo, dHi := rowLo[j], rowHi[j]
					psiGamma, tripleBound := bounds[2*i], bounds[2*i+1]
					// Bracket-certified prune decisions with exact-rescore
					// fallback for razor cases, identical to Exact.one.
					if e.prm.PrunePsi {
						t := psiGamma + e.radii[j]
						if dLo >= t {
							local.PrunedPsi++
							continue
						}
						if dHi >= t {
							if e.exactRepDist(qrow, j, rowLo, rowHi, seedBuf) >= t {
								local.PrunedPsi++
								continue
							}
						}
					}
					if e.prm.PruneTriple && !math.IsInf(tripleBound, 1) {
						if rowLo[j] > tripleBound {
							local.PrunedTriple++
							continue
						}
						if rowHi[j] > tripleBound {
							if e.exactRepDist(qrow, j, rowLo, rowHi, seedBuf) > tripleBound {
								local.PrunedTriple++
								continue
							}
						}
					}
					local.RepsKept++
					wlo, whi := listLo, listHi
					if e.prm.EarlyExit {
						a, b := e.exactWindow(qrow, j, e.dists[listLo:listHi],
							psiGamma, rowLo, rowHi, seedBuf)
						wlo, whi = listLo+a, listLo+b
					}
					if wlo >= whi {
						continue
					}
					tIdx[takers] = i
					tWin[2*takers] = wlo
					tWin[2*takers+1] = whi
					takers++
				}
				local.PointEvals += GroupedScan(e.ker, qflat, dim, e.gather,
					tIdx, tWin, takers, sc, ts, push)
			}
			for i := 0; i < bq; i++ {
				sink(q0+i, heaps[i])
			}
		}
		mu.Lock()
		agg.Add(local)
		mu.Unlock()
	})
	return agg
}

// batchGrouped runs the grouped two-phase batch search for OneShot: the
// Gram BF(Q,R) front half selects each query's probe lists, queries are
// then grouped by probed list, and each list is scanned once per tile
// through the exact-mode tiled kernel (phase 2 distances are reported
// answers and must stay bit-compatible with the reference — see the
// OneShot type comment).
func (o *OneShot) batchGrouped(queries *vec.Dataset, k int, sink func(i int, h *par.KHeap)) Stats {
	nq := queries.N()
	nr := o.NumReps()
	dim := o.db.Dim
	s := o.s
	probes := o.prm.Probes
	if probes > nr {
		probes = nr
	}
	tq, tp := metric.AutoTileShape(dim)
	var agg Stats
	var mu sync.Mutex
	par.For(nq, 1, func(lo, hi int) {
		sc := par.GetScratch()
		defer par.PutScratch(sc)
		ts := metric.GetTileScratch()
		defer metric.PutTileScratch(ts)
		var local Stats
		rows := sc.Float64(3, tq*nr)
		tile := sc.Float64(4, tq*tp)
		probeIDs := sc.Ints(0, tq*probes)  // per-query probed lists
		counts := sc.Ints(1, nr+1)         // takers per list (prefix form)
		takerFlat := sc.Ints(2, tq*probes) // takers grouped by list
		for q0 := lo; q0 < hi; q0 += tq {
			q1 := q0 + tq
			if q1 > hi {
				q1 = hi
			}
			bq := q1 - q0
			qflat := queries.Data[q0*dim : q1*dim]

			// Phase 1: tiled Gram BF(Qtile, R) over the cached rep norms.
			qnorms := o.ker.Norms(qflat, dim, sc.Float64(6, bq))
			for r0 := 0; r0 < nr; r0 += tp {
				r1 := r0 + tp
				if r1 > nr {
					r1 = nr
				}
				bp := r1 - r0
				var pn []float64
				if o.repNorms != nil {
					pn = o.repNorms[r0:r1]
				}
				t := tile[:bq*bp]
				o.ker.Tile(qflat, qnorms, o.repData.Data[r0*dim:r1*dim], pn, dim, t, ts)
				for i := 0; i < bq; i++ {
					copy(rows[i*nr+r0:i*nr+r1], t[i*bp:(i+1)*bp])
				}
			}
			local.RepEvals += int64(bq * nr)

			// Probe selection per query, then invert query→lists into
			// list→takers with a counting sort so each list is visited once.
			for j := 0; j <= nr; j++ {
				counts[j] = 0
			}
			for i := 0; i < bq; i++ {
				ph := sc.Heap(0, probes)
				for j, d := range rows[i*nr : (i+1)*nr] {
					ph.Push(j, d)
				}
				for p, probe := range ph.Kept() {
					probeIDs[i*probes+p] = probe.ID
					counts[probe.ID+1]++
				}
				local.RepsKept += int64(len(ph.Kept()))
			}
			for j := 0; j < nr; j++ {
				counts[j+1] += counts[j]
			}
			for i := 0; i < bq; i++ {
				for p := 0; p < probes; p++ {
					j := probeIDs[i*probes+p]
					takerFlat[counts[j]] = i
					counts[j]++
				}
			}
			// counts[j] now marks the end of list j's takers; the start is
			// counts[j-1] (0 for j == 0).

			heaps := sc.HeapSlab(bq, k)
			// With multiple probes a point may appear on several of a
			// query's scanned lists; dedupe so result sets stay distinct.
			var seen []map[int32]struct{}
			if probes > 1 {
				seen = make([]map[int32]struct{}, bq)
				for i := range seen {
					seen[i] = make(map[int32]struct{}, probes*s)
				}
			}

			// Phase 2, grouped: scan each probed list once for all its
			// takers through the exact-mode tiled kernel.
			start := 0
			for j := 0; j < nr; j++ {
				endT := counts[j]
				takers := takerFlat[start:endT]
				start = endT
				if len(takers) == 0 {
					continue
				}
				tflat := qflat
				if len(takers) < bq {
					buf := sc.Float32(0, len(takers)*dim)
					for t, i := range takers {
						copy(buf[t*dim:(t+1)*dim], qflat[i*dim:(i+1)*dim])
					}
					tflat = buf
				}
				listLo := j * s
				for blk := listLo; blk < listLo+s; blk += tp {
					end := blk + tp
					if end > listLo+s {
						end = listLo + s
					}
					bp := end - blk
					t := tile[:len(takers)*bp]
					o.xker.Tile(tflat, nil, o.gather[blk*dim:end*dim], nil, dim, t, ts)
					for ti, i := range takers {
						h := heaps[i]
						trow := t[ti*bp : (ti+1)*bp]
						for p := 0; p < bp; p++ {
							id := o.ids[blk+p]
							if seen != nil {
								if _, dup := seen[i][id]; dup {
									continue
								}
								seen[i][id] = struct{}{}
							}
							h.Push(int(id), trow[p])
						}
					}
					local.PointEvals += int64(len(takers) * bp)
				}
			}
			for i := 0; i < bq; i++ {
				sink(q0+i, heaps[i])
			}
		}
		mu.Lock()
		agg.Add(local)
		mu.Unlock()
	})
	return agg
}
