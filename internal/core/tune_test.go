package core

import (
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/vec"
)

func TestAutoTuneExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	all := clusteredDataset(rng, 2100, 5, 10)
	db := all.Subset(seqInts(0, 2000))
	probes := all.Subset(seqInts(2000, 2100))
	m := metric.Euclidean{}
	res, err := AutoTuneExact(db, m, probes, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumReps < 1 || res.NumReps > db.N() {
		t.Fatalf("selected nr=%d", res.NumReps)
	}
	if len(res.Curve) < 4 {
		t.Fatalf("curve too short: %v", res.Curve)
	}
	// The winner must be the curve's minimum.
	for _, p := range res.Curve {
		if p.EvalsPerQuery < res.EvalsPerQuery {
			t.Fatalf("curve point %v beats selected %v", p, res.EvalsPerQuery)
		}
	}
	// And it must beat brute force on clustered data.
	if res.EvalsPerQuery >= float64(db.N()) {
		t.Fatalf("tuned setting does no better than brute force: %v", res.EvalsPerQuery)
	}
	// The tuned index must still be exact.
	idx, err := BuildExact(db, m, ExactParams{NumReps: res.NumReps, Seed: 7, ExactCount: true, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		got, _ := idx.One(probes.Row(i))
		want := bruteforce.SearchOne(probes.Row(i), db, m, nil)
		if got.Dist != want.Dist {
			t.Fatalf("tuned index inexact at probe %d", i)
		}
	}
}

func TestAutoTuneExactErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := randomDataset(rng, 100, 3)
	m := metric.Euclidean{}
	if _, err := AutoTuneExact(db, m, nil, 1); err == nil {
		t.Fatal("nil probes should error")
	}
	var empty vec.Dataset
	empty.Dim = 3
	if _, err := AutoTuneExact(db, m, &empty, 1); err == nil {
		t.Fatal("empty probes should error")
	}
	wrong := randomDataset(rng, 5, 4)
	if _, err := AutoTuneExact(db, m, wrong, 1); err == nil {
		t.Fatal("dim mismatch should error")
	}
}

func TestAutoTuneOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	all := clusteredDataset(rng, 1600, 4, 8)
	db := all.Subset(seqInts(0, 1500))
	probes := all.Subset(seqInts(1500, 1600))
	m := metric.Euclidean{}
	res, err := AutoTuneOneShot(db, m, probes, 0.9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumReps < 1 {
		t.Fatalf("selected nr=%d", res.NumReps)
	}
	// Verify the selected setting actually achieves ~the target.
	idx, err := BuildOneShot(db, m, OneShotParams{
		NumReps: res.NumReps, S: res.NumReps, Seed: 5, ExactCount: true})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := idx.Search(probes)
	want := bruteforce.Search(probes, db, m, nil)
	correct := 0
	for i := range got {
		if got[i].Dist == want[i].Dist {
			correct++
		}
	}
	if recall := float64(correct) / float64(len(got)); recall < 0.8 {
		t.Fatalf("tuned one-shot recall %.2f well below target", recall)
	}
}

func TestAutoTuneOneShotErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := randomDataset(rng, 100, 3)
	probes := randomDataset(rng, 10, 3)
	m := metric.Euclidean{}
	if _, err := AutoTuneOneShot(db, m, nil, 0.9, 1); err == nil {
		t.Fatal("nil probes should error")
	}
	if _, err := AutoTuneOneShot(db, m, probes, 0, 1); err == nil {
		t.Fatal("recall 0 should error")
	}
	if _, err := AutoTuneOneShot(db, m, probes, 1.5, 1); err == nil {
		t.Fatal("recall >1 should error")
	}
}
