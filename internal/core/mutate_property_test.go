package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/vec"
)

// Properties of the sorted insertion buffers and the per-segment merge
// (PR 8): buffered inserts keep the (dist, id) invariant the EarlyExit
// admissible window binary-searches over, the targeted segment merge
// restores the canonical flat layout without touching answers, and the
// windowed scans never do more work than the unwindowed ones — also
// after arbitrary mutate bursts (extending the PR 4 eval-monotonicity
// coverage to mutated indexes).

// InsertPos must agree with re-sorting: splicing at the returned
// position keeps the segment in SortSegment order.
func TestInsertPosMatchesSort(t *testing.T) {
	f := func(raw []float64, d float64, id int32) bool {
		// Build a valid sorted segment from the raw values (ids dense so
		// duplicate (dist, id) pairs cannot arise).
		ids := make([]int32, len(raw))
		dists := make([]float64, len(raw))
		for i, v := range raw {
			ids[i] = int32(i)
			dists[i] = float64(int(v*8)%5) * 0.25 // tie-rich grid
		}
		SortSegment(ids, dists)
		d = float64(int(d*8)%5) * 0.25
		if id < 0 {
			id = -id
		}
		id += int32(len(raw)) // fresh id, as Insert always appends
		pos := InsertPos(dists, ids, d, id)
		ids = append(ids[:pos:pos], append([]int32{id}, ids[pos:]...)...)
		dists = append(dists[:pos:pos], append([]float64{d}, dists[pos:]...)...)
		return SegmentSorted(ids, dists)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentSorted(t *testing.T) {
	cases := []struct {
		ids   []int32
		dists []float64
		want  bool
	}{
		{nil, nil, true},
		{[]int32{3}, []float64{1}, true},
		{[]int32{1, 2, 3}, []float64{1, 1, 2}, true},
		{[]int32{2, 1}, []float64{1, 1}, false}, // id tie-break violated
		{[]int32{1, 1}, []float64{1, 1}, false}, // duplicate pair
		{[]int32{1, 2}, []float64{2, 1}, false}, // dist descending
	}
	for i, c := range cases {
		if got := SegmentSorted(c.ids, c.dists); got != c.want {
			t.Errorf("case %d: SegmentSorted=%v, want %v", i, got, c.want)
		}
	}
}

// With auto-merge disabled every insert stays buffered, and each buffer
// must hold the (dist, id) invariant that lets scanBuffer clip it with
// AdmissibleWindow.
func TestInsertionBuffersStaySorted(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := clusteredDataset(rng, 500, 4, 6)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 3, EarlyExit: true, BufferMerge: -1})
	if err != nil {
		t.Fatal(err)
	}
	extra := clusteredDataset(rng, 300, 4, 6)
	for i := 0; i < extra.N(); i++ {
		e.Insert(extra.Row(i))
	}
	if e.Buffered() != 300 {
		t.Fatalf("Buffered()=%d, want 300 (auto-merge disabled)", e.Buffered())
	}
	if e.SegMerges() != 0 {
		t.Fatalf("SegMerges()=%d, want 0 (auto-merge disabled)", e.SegMerges())
	}
	for j := 0; j < e.NumReps(); j++ {
		if !SegmentSorted(e.mut.bufIDs[j], e.mut.bufDists[j]) {
			t.Fatalf("buffer %d violates (dist, id) order", j)
		}
	}
}

// A tiny merge threshold forces many targeted merges; every structural
// invariant of the flat layout must survive them, and Flush must drain
// the rest.
func TestMergeSegmentPreservesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	db := clusteredDataset(rng, 400, 5, 7)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 5, EarlyExit: true, BufferMerge: 4})
	if err != nil {
		t.Fatal(err)
	}
	extra := clusteredDataset(rng, 250, 5, 7)
	for i := 0; i < extra.N(); i++ {
		e.Insert(extra.Row(i))
	}
	if e.SegMerges() == 0 {
		t.Fatal("threshold 4 never triggered a merge across 250 inserts")
	}
	e.Flush()
	if e.Buffered() != 0 {
		t.Fatalf("Buffered()=%d after Flush", e.Buffered())
	}
	if e.Dirty() {
		t.Fatal("no deletions: index must be pristine after Flush")
	}
	checkFlatLayout(t, e, db)
	// Answers still exact after the merges.
	queries := randomDataset(rng, 30, 5)
	for i := 0; i < queries.N(); i++ {
		q := queries.Row(i)
		got, _ := e.One(q)
		want := bruteforce.SearchOne(q, db, m, nil)
		if got.Dist != want.Dist {
			t.Fatalf("query %d after merges: %v want %v", i, got.Dist, want.Dist)
		}
	}
}

// checkFlatLayout asserts the canonical flat-layout invariants: offsets
// cover ids end to end, every segment is in (dist, id) order with its
// radius at least the segment max, each database id appears exactly
// once, and the gathered rows mirror the database.
func checkFlatLayout(t *testing.T, e *Exact, db *vec.Dataset) {
	t.Helper()
	if e.offsets[0] != 0 || e.offsets[len(e.offsets)-1] != len(e.ids) {
		t.Fatalf("offsets cover [%d, %d) of %d ids", e.offsets[0], e.offsets[len(e.offsets)-1], len(e.ids))
	}
	if len(e.dists) != len(e.ids) || len(e.gather) != len(e.ids)*db.Dim {
		t.Fatalf("column lengths diverge: %d ids, %d dists, %d gather floats",
			len(e.ids), len(e.dists), len(e.gather))
	}
	seen := make(map[int32]bool, len(e.ids))
	for j := 0; j < e.NumReps(); j++ {
		lo, hi := e.offsets[j], e.offsets[j+1]
		if !SegmentSorted(e.ids[lo:hi], e.dists[lo:hi]) {
			t.Fatalf("segment %d violates (dist, id) order", j)
		}
		if hi > lo && e.radii[j] < e.dists[hi-1] {
			t.Fatalf("segment %d radius %v below member distance %v", j, e.radii[j], e.dists[hi-1])
		}
	}
	for p, id := range e.ids {
		if seen[id] {
			t.Fatalf("id %d appears twice", id)
		}
		seen[id] = true
		for c := 0; c < db.Dim; c++ {
			if e.gather[p*db.Dim+c] != db.Row(int(id))[c] {
				t.Fatalf("gather row %d diverges from db row %d", p, id)
			}
		}
	}
	if len(seen) != db.N() {
		t.Fatalf("layout holds %d ids, database has %d", len(seen), db.N())
	}
}

// After arbitrary mutate bursts — buffered inserts, threshold merges,
// tombstones — the windowed (EarlyExit) index must answer bit-identically
// to the unwindowed one while never evaluating more points, per query
// batch. Extends the PR 4 monotonicity property to mutated indexes.
func TestWindowedEvalsMonotoneAfterMutateBursts(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db1 := clusteredDataset(rng, 700, 4, 8)
	db2 := vec.FromFlat(append([]float32(nil), db1.Data...), db1.Dim)
	m := metric.Euclidean{}
	// Same seed, same dataset: identical representative choice, so eval
	// counts are comparable structure-for-structure.
	windowed, err := BuildExact(db1, m, ExactParams{Seed: 9, EarlyExit: true, BufferMerge: 8})
	if err != nil {
		t.Fatal(err)
	}
	full, err := BuildExact(db2, m, ExactParams{Seed: 9, BufferMerge: 8})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(burst int) {
		for i := 0; i < burst; i++ {
			switch rng.Intn(4) {
			case 0, 1: // insert twice as often as delete
				p := make([]float32, 4)
				for c := range p {
					p[c] = float32(rng.Intn(8)) / 2 // tie-rich grid
				}
				windowed.Insert(p)
				full.Insert(append([]float32(nil), p...))
			case 2:
				id := rng.Intn(windowed.db.N())
				if !windowed.isDeleted(id) {
					if err := windowed.Delete(id); err != nil {
						t.Fatal(err)
					}
					if err := full.Delete(id); err != nil {
						t.Fatal(err)
					}
				}
			case 3:
				if rng.Intn(8) == 0 {
					windowed.Flush()
					full.Flush()
				}
			}
		}
	}
	queries := randomDataset(rng, 25, 4)
	for burst := 0; burst < 4; burst++ {
		mutate(40)
		gotW, stW := windowed.SearchK(queries, 5)
		gotF, stF := full.SearchK(queries, 5)
		for i := range gotW {
			if len(gotW[i]) != len(gotF[i]) {
				t.Fatalf("burst %d query %d: %d vs %d neighbors", burst, i, len(gotW[i]), len(gotF[i]))
			}
			for p := range gotW[i] {
				if gotW[i][p] != gotF[i][p] {
					t.Fatalf("burst %d query %d pos %d: windowed %+v != full %+v",
						burst, i, p, gotW[i][p], gotF[i][p])
				}
			}
		}
		if stW.PointEvals > stF.PointEvals {
			t.Fatalf("burst %d: windowed evals %d exceed full-scan evals %d",
				burst, stW.PointEvals, stF.PointEvals)
		}
	}
	// And the same holds once everything is folded in.
	windowed.Flush()
	full.Flush()
	_, stW := windowed.SearchK(queries, 5)
	_, stF := full.SearchK(queries, 5)
	if stW.PointEvals > stF.PointEvals {
		t.Fatalf("after flush: windowed evals %d exceed full-scan evals %d", stW.PointEvals, stF.PointEvals)
	}
}

// Segment merges must leave range searches exact too (the buffer and
// segment scan share the window math but different code paths).
func TestRangeExactAcrossMergeThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	base := clusteredDataset(rng, 300, 3, 5)
	extra := clusteredDataset(rng, 120, 3, 5)
	m := metric.Euclidean{}
	queries := randomDataset(rng, 10, 3)
	var ref [][]float64 // distances per query, from the first config
	for ci, bm := range []int{-1, 3, 0} {
		db := vec.FromFlat(append([]float32(nil), base.Data...), base.Dim)
		e, err := BuildExact(db, m, ExactParams{Seed: 7, EarlyExit: true, BufferMerge: bm})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < extra.N(); i++ {
			e.Insert(extra.Row(i))
		}
		for qi := 0; qi < queries.N(); qi++ {
			hits, _ := e.Range(queries.Row(qi), 1.5)
			ds := make([]float64, len(hits))
			for p, h := range hits {
				ds[p] = h.Dist
			}
			if !sort.Float64sAreSorted(ds) {
				t.Fatalf("config %d query %d: range hits unsorted", ci, qi)
			}
			if ci == 0 {
				ref = append(ref, ds)
				continue
			}
			if len(ds) != len(ref[qi]) {
				t.Fatalf("config %d query %d: %d hits, config 0 had %d", ci, qi, len(ds), len(ref[qi]))
			}
			for p := range ds {
				if ds[p] != ref[qi][p] {
					t.Fatalf("config %d query %d pos %d: %v != %v (answers depend on merge threshold)",
						ci, qi, p, ds[p], ref[qi][p])
				}
			}
		}
	}
}
