package core

import (
	"bytes"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/metric"
)

// TestOneShotPhase1QuantizedExactAtFullLists: with S = n every ownership
// list holds the whole database, so whatever representative the
// quantized phase 1 picks, the exact phase 2 must return answers
// bit-identical to the brute-force reference — the quantized grade may
// only steer the probe, never touch reported distances.
func TestOneShotPhase1QuantizedExactAtFullLists(t *testing.T) {
	db := chunkedOneShotData(t, 400, 9, 411)
	m := metric.Euclidean{}
	o, err := BuildOneShot(db, m, OneShotParams{NumReps: 20, S: 400, Seed: 5, Phase1Quantized: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := o.ker.Grade(); got != metric.GradeQuantized {
		t.Fatalf("phase-1 grade %v, want quantized", got)
	}
	queries := chunkedOneShotData(t, 30, 9, 413)
	for i := 0; i < queries.N(); i++ {
		q := queries.Row(i)
		got, _ := o.KNN(q, 7)
		want := bruteforce.SearchOneK(q, db, 7, m, nil)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("query %d pos %d: quantized-phase1 %+v, reference %+v", i, j, got[j], want[j])
			}
		}
	}
}

// TestOneShotPhase1QuantizedBatchParity: the grouped batch path must use
// the same phase-1 kernel as the per-query path (the representative view
// resolves sub-blocks of the gathered rep data), so KNNBatch stays
// bit-identical to per-query KNN under the quantized grade too.
func TestOneShotPhase1QuantizedBatchParity(t *testing.T) {
	db := chunkedOneShotData(t, 600, 13, 431)
	m := metric.Euclidean{}
	o, err := BuildOneShot(db, m, OneShotParams{NumReps: 24, Seed: 9, Probes: 2, Phase1Quantized: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := chunkedOneShotData(t, 40, 13, 437)
	batch, _ := o.KNNBatch(queries, 5)
	for i := 0; i < queries.N(); i++ {
		single, _ := o.KNN(queries.Row(i), 5)
		if len(batch[i]) != len(single) {
			t.Fatalf("query %d: batch %d results, per-query %d", i, len(batch[i]), len(single))
		}
		for j := range single {
			if batch[i][j] != single[j] {
				t.Fatalf("query %d pos %d: batch %+v, per-query %+v", i, j, batch[i][j], single[j])
			}
		}
	}
}

// TestOneShotPhase1QuantizedReportedDistancesExact: whatever list the
// quantized probe picks, every reported distance must be the exact-kernel
// distance of the returned id (no quantization noise may leak into
// answers).
func TestOneShotPhase1QuantizedReportedDistancesExact(t *testing.T) {
	db := chunkedOneShotData(t, 500, 17, 441)
	m := metric.Euclidean{}
	o, err := BuildOneShot(db, m, OneShotParams{Seed: 11, Phase1Quantized: true})
	if err != nil {
		t.Fatal(err)
	}
	xker := metric.NewKernel(m)
	ord := make([]float64, 1)
	queries := chunkedOneShotData(t, 25, 17, 447)
	for i := 0; i < queries.N(); i++ {
		q := queries.Row(i)
		nbs, _ := o.KNN(q, 4)
		for _, nb := range nbs {
			xker.Ordering(q, db.Row(nb.ID), db.Dim, ord)
			if want := xker.ToDistance(ord[0]); nb.Dist != want {
				t.Fatalf("query %d id %d: reported %v, exact %v", i, nb.ID, nb.Dist, want)
			}
		}
	}
}

// TestOneShotPhase1QuantizedRoundTrip: the phase-1 grade must survive
// Save/Load — LoadOneShot re-runs initKernel, which rebuilds the
// representative view from the decoded rep data.
func TestOneShotPhase1QuantizedRoundTrip(t *testing.T) {
	db := chunkedOneShotData(t, 300, 5, 451)
	m := metric.Euclidean{}
	o, err := BuildOneShot(db, m, OneShotParams{Seed: 13, Phase1Quantized: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := LoadOneShot(&buf, db, m)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Params().Phase1Quantized {
		t.Fatal("Phase1Quantized lost in round trip")
	}
	if got := re.ker.Grade(); got != metric.GradeQuantized {
		t.Fatalf("reloaded phase-1 grade %v, want quantized", got)
	}
	q := db.Row(7)
	a, _ := o.KNN(q, 3)
	b, _ := re.KNN(q, 3)
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("pos %d: original %+v, reloaded %+v", j, a[j], b[j])
		}
	}
}

// TestOneShotPhase1QuantizedPrecedence: when both phase-1 grade flags are
// set, quantized wins (documented on OneShotParams).
func TestOneShotPhase1QuantizedPrecedence(t *testing.T) {
	db := chunkedOneShotData(t, 120, 4, 461)
	o, err := BuildOneShot(db, metric.Euclidean{}, OneShotParams{Seed: 1, Phase1Chunked: true, Phase1Quantized: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := o.ker.Grade(); got != metric.GradeQuantized {
		t.Fatalf("phase-1 grade %v, want quantized", got)
	}
}
