package core

import (
	"math/rand"
	"testing"

	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// GroupedScan must emit, for every taker, exactly its window's ordering
// distances, bit-identical to the per-query row kernel, regardless of
// whether a block was served by the tiled or the row path — and report
// the admissible-pair count, not the tile surplus.
func TestGroupedScanMatchesRowKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, dim := range []int{3, 17, 64} {
		for _, takers := range []int{1, 2, 5} {
			const np = 700
			points := vec.New(dim, np)
			queries := vec.New(dim, takers+2)
			row := make([]float32, dim)
			fill := func(d *vec.Dataset, n int) {
				for i := 0; i < n; i++ {
					for j := range row {
						row[j] = rng.Float32()*10 - 5
					}
					d.Append(row)
				}
			}
			fill(points, np)
			fill(queries, takers+2)
			ker := metric.NewKernel(metric.Euclidean{})

			// Overlapping, distinct windows per taker; taker 0 (when alone)
			// exercises the row path, larger sets the tiled path.
			tIdx := make([]int, takers)
			tWin := make([]int, 2*takers)
			wantPairs := int64(0)
			for ti := 0; ti < takers; ti++ {
				tIdx[ti] = ti + 1 // non-trivial query row mapping
				lo := (ti * 97) % (np / 2)
				hi := lo + 200 + 31*ti
				if hi > np {
					hi = np
				}
				tWin[2*ti], tWin[2*ti+1] = lo, hi
				wantPairs += int64(hi - lo)
			}

			got := make([]map[int]float64, takers)
			for i := range got {
				got[i] = make(map[int]float64)
			}
			sc := par.GetScratch()
			ts := metric.GetTileScratch()
			pairs := GroupedScan(ker, queries.Data, dim, points.Data, tIdx, tWin, takers, sc, ts,
				func(ti, lo int, ords []float64) {
					for p := lo; p < lo+len(ords); p++ {
						if _, dup := got[ti][p]; dup {
							t.Fatalf("dim %d takers %d: position %d emitted twice for taker %d", dim, takers, p, ti)
						}
						got[ti][p] = ords[p-lo]
					}
				})
			metric.PutTileScratch(ts)
			par.PutScratch(sc)

			if pairs != wantPairs {
				t.Fatalf("dim %d takers %d: %d pairs reported, want %d", dim, takers, pairs, wantPairs)
			}
			ref := make([]float64, np)
			for ti := 0; ti < takers; ti++ {
				ker.Ordering(queries.Row(tIdx[ti]), points.Data, dim, ref)
				lo, hi := tWin[2*ti], tWin[2*ti+1]
				if len(got[ti]) != hi-lo {
					t.Fatalf("dim %d takers %d taker %d: emitted %d positions, want %d", dim, takers, ti, len(got[ti]), hi-lo)
				}
				for p := lo; p < hi; p++ {
					if got[ti][p] != ref[p] {
						t.Fatalf("dim %d takers %d taker %d pos %d: %v want %v (not bit-identical)",
							dim, takers, ti, p, got[ti][p], ref[p])
					}
				}
			}
		}
	}
}

// Zero takers and empty windows must be no-ops.
func TestGroupedScanDegenerate(t *testing.T) {
	ker := metric.NewKernel(metric.Euclidean{})
	sc := par.GetScratch()
	defer par.PutScratch(sc)
	points := []float32{1, 2, 3, 4, 5, 6}
	if n := GroupedScan(ker, nil, 3, points, nil, nil, 0, sc, nil, func(int, int, []float64) {
		t.Fatal("emit called with zero takers")
	}); n != 0 {
		t.Fatalf("zero takers reported %d pairs", n)
	}
	q := []float32{0, 0, 0}
	if n := GroupedScan(ker, q, 3, points, []int{0}, []int{1, 1}, 1, sc, nil, func(int, int, []float64) {
		t.Fatal("emit called with an empty window")
	}); n != 0 {
		t.Fatalf("empty window reported %d pairs", n)
	}
}

// TestGroupedScanRejectsFastKernels: no exact-grade consumer may be
// constructed over a fast kernel — GroupedScan (Exact phase 2 and the
// distributed shard scans both ride it) must refuse both fast grades at
// the door rather than silently emit drifted orderings.
func TestGroupedScanRejectsFastKernels(t *testing.T) {
	for _, ker := range []*metric.Kernel{
		metric.NewFastKernel(metric.Euclidean{}),
		metric.NewChunkedKernel(metric.Euclidean{}),
	} {
		func() {
			sc := par.GetScratch()
			defer par.PutScratch(sc)
			defer func() {
				if recover() == nil {
					t.Fatalf("GroupedScan accepted a %v-grade kernel", ker.Grade())
				}
			}()
			q := []float32{0, 0, 0}
			GroupedScan(ker, q, 3, []float32{1, 2, 3}, []int{0}, []int{0, 1}, 1, sc, nil,
				func(int, int, []float64) {})
		}()
	}
}
