package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/vec"
)

func TestBuildOneShotInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := clusteredDataset(rng, 600, 5, 8)
	m := metric.Euclidean{}
	o, err := BuildOneShot(db, m, OneShotParams{NumReps: 25, S: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if o.S() != 40 {
		t.Fatalf("S=%d", o.S())
	}
	// Invariant: list j holds exactly the s nearest db points of rep j,
	// and ψ_r is the distance to the s-th.
	for j := 0; j < o.NumReps(); j++ {
		rep := db.Row(o.repIDs[j])
		want := bruteforce.SearchOneK(rep, db, 40, m, nil)
		for i := 0; i < 40; i++ {
			if int(o.ids[j*40+i]) != want[i].ID {
				t.Fatalf("rep %d pos %d: id %d, want %d", j, i, o.ids[j*40+i], want[i].ID)
			}
		}
		if o.radii[j] != want[39].Dist {
			t.Fatalf("rep %d: radius %v, want %v", j, o.radii[j], want[39].Dist)
		}
	}
}

func TestOneShotDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := randomDataset(rng, 400, 4)
	o, err := BuildOneShot(db, metric.Euclidean{}, OneShotParams{})
	if err != nil {
		t.Fatal(err)
	}
	// Default: nr ≈ √400 = 20, s = NumReps requested (20).
	if o.S() != 20 {
		t.Fatalf("default S=%d, want 20", o.S())
	}
	if o.Params().Probes != 1 {
		t.Fatalf("default Probes=%d", o.Params().Probes)
	}
}

func TestOneShotErrors(t *testing.T) {
	var empty vec.Dataset
	if _, err := BuildOneShot(&empty, metric.Euclidean{}, OneShotParams{}); err == nil {
		t.Fatal("empty db should error")
	}
}

func TestOneShotAnswersAreRealPoints(t *testing.T) {
	// One-shot may be inexact but must always return a genuine database
	// point with a correctly computed distance.
	rng := rand.New(rand.NewSource(3))
	db := clusteredDataset(rng, 800, 6, 8)
	m := metric.Euclidean{}
	o, err := BuildOneShot(db, m, OneShotParams{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	queries := randomDataset(rng, 50, 6)
	res, st := o.Search(queries)
	for i, r := range res {
		if r.ID < 0 || r.ID >= db.N() {
			t.Fatalf("query %d: id %d out of range", i, r.ID)
		}
		if got := m.Distance(queries.Row(i), db.Row(r.ID)); math.Abs(got-r.Dist) > 1e-9 {
			t.Fatalf("query %d: reported dist %v, actual %v", i, r.Dist, got)
		}
	}
	if st.RepEvals != int64(queries.N()*o.NumReps()) {
		t.Fatalf("RepEvals=%d", st.RepEvals)
	}
	wantPointEvals := int64(queries.N() * o.S())
	if st.PointEvals != wantPointEvals {
		t.Fatalf("PointEvals=%d, want %d (one list per query)", st.PointEvals, wantPointEvals)
	}
}

func TestOneShotHighRecallAtTheoremSetting(t *testing.T) {
	// With n_r = s = √(n ln(1/δ))·c and queries from the data distribution
	// the one-shot answer should be exact for the vast majority of
	// queries. We use a modest clustered set and check recall ≥ 0.9.
	rng := rand.New(rand.NewSource(4))
	all := clusteredDataset(rng, 2100, 5, 10)
	db := all.Subset(seqInts(0, 2000))
	queries := all.Subset(seqInts(2000, 2100))
	m := metric.Euclidean{}
	nr := int(3 * math.Sqrt(2000)) // c·√(n·ln(1/δ)) with a small constant
	o, err := BuildOneShot(db, m, OneShotParams{NumReps: nr, S: nr, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteforce.Search(queries, db, m, nil)
	got, _ := o.Search(queries)
	correct := 0
	for i := range got {
		if got[i].Dist == want[i].Dist {
			correct++
		}
	}
	if recall := float64(correct) / float64(len(got)); recall < 0.9 {
		t.Fatalf("recall %.2f below 0.9 at the theorem's parameter setting", recall)
	}
}

func TestOneShotCertify(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	all := clusteredDataset(rng, 1100, 4, 6)
	db := all.Subset(seqInts(0, 1000))
	queries := all.Subset(seqInts(1000, 1100))
	m := metric.Euclidean{}
	o, err := BuildOneShot(db, m, OneShotParams{NumReps: 90, S: 90, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteforce.Search(queries, db, m, nil)
	certified, certifiedCorrect := 0, 0
	for i := 0; i < queries.N(); i++ {
		if o.Certify(queries.Row(i)) {
			certified++
			got, _ := o.One(queries.Row(i))
			if got.Dist == want[i].Dist {
				certifiedCorrect++
			}
		}
	}
	// The certificate is sound: every certified answer must be exact.
	if certified != certifiedCorrect {
		t.Fatalf("certificate unsound: %d certified, only %d correct", certified, certifiedCorrect)
	}
	if certified == 0 {
		t.Log("note: no queries certified at this parameter setting")
	}
}

func TestOneShotProbesImproveRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	all := clusteredDataset(rng, 3100, 8, 12)
	db := all.Subset(seqInts(0, 3000))
	queries := all.Subset(seqInts(3000, 3100))
	m := metric.Euclidean{}
	want := bruteforce.Search(queries, db, m, nil)
	recall := func(probes int) float64 {
		o, err := BuildOneShot(db, m, OneShotParams{NumReps: 40, S: 40, Seed: 8, Probes: probes})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := o.Search(queries)
		c := 0
		for i := range got {
			if got[i].Dist == want[i].Dist {
				c++
			}
		}
		return float64(c) / float64(len(got))
	}
	r1, r4 := recall(1), recall(4)
	if r4 < r1 {
		t.Fatalf("probes=4 recall %.3f worse than probes=1 recall %.3f", r4, r1)
	}
}

func TestOneShotKNNNoDuplicatesAcrossProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := clusteredDataset(rng, 500, 4, 5)
	m := metric.Euclidean{}
	o, err := BuildOneShot(db, m, OneShotParams{NumReps: 20, S: 60, Seed: 9, Probes: 5})
	if err != nil {
		t.Fatal(err)
	}
	queries := randomDataset(rng, 20, 4)
	res, _ := o.SearchK(queries, 10)
	for i, nbs := range res {
		seen := map[int]bool{}
		for _, nb := range nbs {
			if seen[nb.ID] {
				t.Fatalf("query %d: duplicate id %d", i, nb.ID)
			}
			seen[nb.ID] = true
		}
		for j := 1; j < len(nbs); j++ {
			if nbs[j].Dist < nbs[j-1].Dist {
				t.Fatalf("query %d: results not sorted", i)
			}
		}
	}
}

func TestOneShotKNNZeroK(t *testing.T) {
	db := vec.FromRows([][]float32{{1}, {2}})
	o, err := BuildOneShot(db, metric.Euclidean{}, OneShotParams{})
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := o.KNN([]float32{0}, 0); res != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestOneShotSingleton(t *testing.T) {
	db := vec.FromRows([][]float32{{5, 5}})
	o, err := BuildOneShot(db, metric.Euclidean{}, OneShotParams{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := o.One([]float32{0, 0})
	if got.ID != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestOneShotSGreaterThanN(t *testing.T) {
	// s > n must clamp: lists then hold the whole database and one-shot
	// becomes exact.
	rng := rand.New(rand.NewSource(8))
	db := randomDataset(rng, 60, 3)
	m := metric.Euclidean{}
	o, err := BuildOneShot(db, m, OneShotParams{NumReps: 5, S: 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if o.S() != 60 {
		t.Fatalf("S=%d, want clamp to 60", o.S())
	}
	queries := randomDataset(rng, 20, 3)
	want := bruteforce.Search(queries, db, m, nil)
	got, _ := o.Search(queries)
	for i := range got {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("query %d should be exact when s=n", i)
		}
	}
}

func TestOneShotDimMismatchPanics(t *testing.T) {
	db := vec.FromRows([][]float32{{1, 2}, {3, 4}})
	o, err := BuildOneShot(db, metric.Euclidean{}, OneShotParams{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch should panic")
		}
	}()
	o.Search(vec.FromRows([][]float32{{1}}))
}

// Property: one-shot with probes=nr (scan everything) is exact, because
// the union of all lists covers every point that is some rep's s-NN — and
// with s=n it covers the whole database.
func TestQuickOneShotFullProbeExact(t *testing.T) {
	m := metric.Euclidean{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 80
		db := randomDataset(rng, n, 2)
		o, err := BuildOneShot(db, m, OneShotParams{NumReps: 8, S: n, Seed: seed, Probes: 1})
		if err != nil {
			return false
		}
		q := randomDataset(rng, 1, 2).Row(0)
		got, _ := o.One(q)
		want := bruteforce.SearchOne(q, db, m, nil)
		return got.Dist == want.Dist
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the one-shot answer can never beat the true NN and is always a
// valid distance (the returned distance is achievable).
func TestQuickOneShotNeverBeatsTruth(t *testing.T) {
	m := metric.Euclidean{}
	f := func(seed int64, nrRaw, sRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 120
		nr := int(nrRaw)%30 + 1
		s := int(sRaw)%50 + 1
		db := randomDataset(rng, n, 3)
		o, err := BuildOneShot(db, m, OneShotParams{NumReps: nr, S: s, Seed: seed})
		if err != nil {
			return false
		}
		q := randomDataset(rng, 1, 3).Row(0)
		got, _ := o.One(q)
		want := bruteforce.SearchOne(q, db, m, nil)
		if got.Dist < want.Dist {
			return false // impossible: claims better than the true NN
		}
		return math.Abs(m.Distance(q, db.Row(got.ID))-got.Dist) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
