package core

import (
	"fmt"
	"math"

	"repro/internal/metric"
	"repro/internal/vec"
)

// AutoTuneResult reports the representative-count search performed by
// AutoTuneExact.
type AutoTuneResult struct {
	// NumReps is the selected representative count.
	NumReps int
	// EvalsPerQuery is the measured work at the selected setting.
	EvalsPerQuery float64
	// Curve holds (numReps, evalsPerQuery) for every candidate tried, in
	// the order evaluated — the data behind the paper's Figure 3.
	Curve []AutoTunePoint
}

// AutoTunePoint is one sample of the tuning curve.
type AutoTunePoint struct {
	NumReps       int
	EvalsPerQuery float64
}

// AutoTuneExact selects the representative count for an exact index by
// measuring work on a held-out probe set over a geometric grid of
// candidates around √n. Appendix C of the paper shows the speedup curve
// is flat near its optimum, so a coarse grid suffices; the returned count
// minimizes measured distance evaluations per probe query.
//
// probes must be non-empty and share db's dimension. The candidate grid
// is {√n/4, √n/2, √n, 2√n, 4√n, 8√n} clamped to [1, n].
func AutoTuneExact(db *vec.Dataset, m metric.Metric[[]float32], probes *vec.Dataset, seed int64) (AutoTuneResult, error) {
	if probes == nil || probes.N() == 0 {
		return AutoTuneResult{}, fmt.Errorf("core: AutoTuneExact needs probe queries")
	}
	if db.N() > 0 && probes.Dim != db.Dim {
		return AutoTuneResult{}, fmt.Errorf("core: probe dim %d != db dim %d", probes.Dim, db.Dim)
	}
	n := db.N()
	root := math.Sqrt(float64(n))
	var res AutoTuneResult
	best := math.Inf(1)
	seen := map[int]bool{}
	for _, f := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		nr := int(f * root)
		if nr < 1 {
			nr = 1
		}
		if nr > n {
			nr = n
		}
		if seen[nr] {
			continue
		}
		seen[nr] = true
		idx, err := BuildExact(db, m, ExactParams{
			NumReps: nr, Seed: seed, ExactCount: true, EarlyExit: true})
		if err != nil {
			return AutoTuneResult{}, err
		}
		_, st := idx.Search(probes)
		evals := float64(st.TotalEvals()) / float64(probes.N())
		res.Curve = append(res.Curve, AutoTunePoint{NumReps: nr, EvalsPerQuery: evals})
		if evals < best {
			best = evals
			res.NumReps = nr
			res.EvalsPerQuery = evals
		}
	}
	return res, nil
}

// AutoTuneOneShot selects n_r = s for a one-shot index subject to a
// recall target measured against exact answers on the probe set. It
// returns the smallest setting on the grid meeting the target, or the
// most accurate one if none does.
func AutoTuneOneShot(db *vec.Dataset, m metric.Metric[[]float32], probes *vec.Dataset, targetRecall float64, seed int64) (AutoTuneResult, error) {
	if probes == nil || probes.N() == 0 {
		return AutoTuneResult{}, fmt.Errorf("core: AutoTuneOneShot needs probe queries")
	}
	if targetRecall <= 0 || targetRecall > 1 {
		return AutoTuneResult{}, fmt.Errorf("core: target recall %v out of (0,1]", targetRecall)
	}
	n := db.N()
	root := math.Sqrt(float64(n))
	// Exact answers once, via the exact index (cheaper than brute force).
	exact, err := BuildExact(db, m, ExactParams{Seed: seed, EarlyExit: true})
	if err != nil {
		return AutoTuneResult{}, err
	}
	truth, _ := exact.Search(probes)

	var res AutoTuneResult
	bestRecall := -1.0
	for _, f := range []float64{0.5, 1, 2, 4, 8} {
		nr := int(f * root)
		if nr < 1 {
			nr = 1
		}
		if nr > n {
			nr = n
		}
		idx, err := BuildOneShot(db, m, OneShotParams{
			NumReps: nr, S: nr, Seed: seed, ExactCount: true})
		if err != nil {
			return AutoTuneResult{}, err
		}
		got, st := idx.Search(probes)
		correct := 0
		for i := range got {
			if got[i].Dist == truth[i].Dist {
				correct++
			}
		}
		recall := float64(correct) / float64(len(got))
		evals := float64(st.TotalEvals()) / float64(probes.N())
		res.Curve = append(res.Curve, AutoTunePoint{NumReps: nr, EvalsPerQuery: evals})
		if recall > bestRecall {
			bestRecall = recall
			res.NumReps = nr
			res.EvalsPerQuery = evals
		}
		if recall >= targetRecall {
			res.NumReps = nr
			res.EvalsPerQuery = evals
			return res, nil
		}
	}
	return res, nil
}
