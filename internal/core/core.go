// Package core implements the Random Ball Cover (RBC) of Cayton (2012):
// a single-level randomized cover of a metric space whose build and search
// routines factor entirely into brute-force scans, making them trivially
// parallel while still doing only ~O(√n) work per query.
//
// Two index types mirror the paper's two algorithms:
//
//   - OneShot (§5.1): each representative owns its s nearest database
//     points; a query scans the representatives, then the single ownership
//     list of the nearest representative. Correct with high probability.
//   - Exact (§5.2): each database point is owned by its nearest
//     representative; a query scans the representatives, prunes
//     representatives with two triangle-inequality bounds, then scans the
//     survivors' lists. Always correct.
//
// Both hold the ownership lists' points gathered contiguously so the
// second phase is a streaming scan, exactly like the first — the paper's
// "two brute force calls" structure.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Result is a nearest-neighbor answer: database id and distance.
// ID is -1 when no point qualified.
type Result struct {
	ID   int
	Dist float64
}

// Stats reports the work a search performed, split by phase, so
// experiments can measure machine-independent speedups
// (brute-force cost / (RepEvals+PointEvals)).
type Stats struct {
	// RepEvals counts phase-1 distance evaluations (query to
	// representatives).
	RepEvals int64
	// PointEvals counts phase-2 distance evaluations (query to ownership
	// list members).
	PointEvals int64
	// RepsKept counts representatives surviving all pruning rules.
	RepsKept int64
	// PrunedPsi counts representatives discarded by the radius bound
	// ρ(q,r) ≥ γ + ψ_r (inequality (1) in the paper).
	PrunedPsi int64
	// PrunedTriple counts representatives discarded by the Lemma 1 bound
	// ρ(q,r) > 3γ (inequality (2)); a representative failing both rules is
	// counted under PrunedPsi.
	PrunedTriple int64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.RepEvals += o.RepEvals
	s.PointEvals += o.PointEvals
	s.RepsKept += o.RepsKept
	s.PrunedPsi += o.PrunedPsi
	s.PrunedTriple += o.PrunedTriple
}

// TotalEvals is the total number of distance evaluations.
func (s Stats) TotalEvals() int64 { return s.RepEvals + s.PointEvals }

// DefaultNumReps returns the paper's standard parameter setting n_r ≈ √n
// (§6: n_r = O(c^{3/2}√n); the c-dependent constant is left to tuning, and
// Appendix C shows performance is stable over a wide range).
func DefaultNumReps(n int) int {
	if n <= 0 {
		return 0
	}
	nr := int(math.Ceil(math.Sqrt(float64(n))))
	if nr > n {
		nr = n
	}
	return nr
}

// sampleReps draws the representative set. With exactCount false it
// follows the paper exactly: every index enters R independently with
// probability nr/n (so |R| is Binomial with mean nr). With exactCount true
// it draws a uniform nr-subset, which tests and serialization prefer for
// size determinism. At least one representative is always returned.
func sampleReps(n, nr int, exactCount bool, rng *rand.Rand) []int {
	if nr >= n {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		return ids
	}
	if exactCount {
		perm := rng.Perm(n)[:nr]
		// Sorted order keeps buffers cache-friendly and runs reproducible.
		sortInts(perm)
		return perm
	}
	p := float64(nr) / float64(n)
	ids := make([]int, 0, nr+int(3*math.Sqrt(float64(nr)))+1)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			ids = append(ids, i)
		}
	}
	if len(ids) == 0 {
		ids = append(ids, rng.Intn(n))
	}
	return ids
}

func sortInts(xs []int) { sort.Ints(xs) }

// newRand builds a deterministic source from a seed; seed 0 is mapped to a
// fixed non-zero constant so the zero-value params remain usable.
func newRand(seed int64) *rand.Rand {
	if seed == 0 {
		seed = 0x5eed
	}
	return rand.New(rand.NewSource(seed))
}

func validateBuildInputs(n, dim int) error {
	if n == 0 {
		return fmt.Errorf("core: cannot build an RBC over an empty database")
	}
	if dim <= 0 {
		return fmt.Errorf("core: database has invalid dimension %d", dim)
	}
	return nil
}
