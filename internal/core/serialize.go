package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/metric"
	"repro/internal/vec"
)

// Index serialization. The database itself is not stored — only the cover
// structure — so a saved index is small (O(n) integers) and reattaches to
// the database it was built from. The metric is identified by name and
// verified at load time.

type exactSnapshot struct {
	Version    int
	MetricName string
	DBN, DBDim int
	Params     ExactParams
	RepIDs     []int
	Radii      []float64
	Offsets    []int
	IDs        []int32
	Dists      []float64
}

// snapshotVersion 1 already persists the sorted-segment permutation (IDs
// in per-list (dist, id) order, Dists as the position-aligned sort keys),
// so the EarlyExit admissible windows — and any consumer of SortSegment
// order, such as the distributed shards — round-trip without a layout
// change. LoadExact verifies the invariant instead of re-sorting: a
// snapshot whose Dists are not ascending within every list is corrupt.
const snapshotVersion = 1

// Save writes the index structure (not the database) to w. Indexes with
// pending mutations must be Rebuild-ed first (deletions persist as a
// smaller index; tombstoned ids simply vanish from the saved lists, so a
// reload requires the same database and treats them as unreachable).
func (e *Exact) Save(w io.Writer) error {
	if e.Dirty() {
		return ErrDirtyIndex
	}
	snap := exactSnapshot{
		Version:    snapshotVersion,
		MetricName: e.m.Name(),
		DBN:        e.db.N(),
		DBDim:      e.db.Dim,
		Params:     e.prm,
		RepIDs:     e.repIDs,
		Radii:      e.radii,
		Offsets:    e.offsets,
		IDs:        e.ids,
		Dists:      e.dists,
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// LoadExact reads an index saved by Exact.Save and reattaches it to db and
// m, which must match the originals (same size, dimension and metric
// name). The gathered point buffer is rebuilt from db.
func LoadExact(r io.Reader, db *vec.Dataset, m metric.Metric[[]float32]) (*Exact, error) {
	var snap exactSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding exact index: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported index version %d", snap.Version)
	}
	if snap.MetricName != m.Name() {
		return nil, fmt.Errorf("core: index was built with metric %q, not %q", snap.MetricName, m.Name())
	}
	if snap.DBN != db.N() || snap.DBDim != db.Dim {
		return nil, fmt.Errorf("core: index was built over a %dx%d database, got %dx%d",
			snap.DBN, snap.DBDim, db.N(), db.Dim)
	}
	if len(snap.IDs) != db.N() || len(snap.Offsets) != len(snap.RepIDs)+1 {
		return nil, fmt.Errorf("core: corrupt index structure")
	}
	if len(snap.Dists) != len(snap.IDs) {
		return nil, fmt.Errorf("core: corrupt index structure: %d dists for %d ids", len(snap.Dists), len(snap.IDs))
	}
	// The offsets table must cover ids exactly — [0, len(IDs)] end to
	// end — and every list segment must be ascending in (dist, id), the
	// invariant the EarlyExit admissible window binary-searches over. A
	// violation means the stream is corrupt (builds always satisfy both),
	// and accepting it would make searches silently drop answers.
	if snap.Offsets[0] != 0 || snap.Offsets[len(snap.Offsets)-1] != len(snap.IDs) {
		return nil, fmt.Errorf("core: corrupt index structure: offsets cover [%d, %d) of %d ids",
			snap.Offsets[0], snap.Offsets[len(snap.Offsets)-1], len(snap.IDs))
	}
	for j := 0; j+1 < len(snap.Offsets); j++ {
		lo, hi := snap.Offsets[j], snap.Offsets[j+1]
		if lo < 0 || hi < lo || hi > len(snap.IDs) {
			return nil, fmt.Errorf("core: corrupt index structure: bad offsets [%d, %d)", lo, hi)
		}
		for p := lo + 1; p < hi; p++ {
			if snap.Dists[p] < snap.Dists[p-1] ||
				(snap.Dists[p] == snap.Dists[p-1] && snap.IDs[p] < snap.IDs[p-1]) {
				return nil, fmt.Errorf("core: corrupt index structure: list %d not in (dist, id) order at position %d", j, p)
			}
		}
	}
	isRep := make([]bool, db.N())
	for _, id := range snap.RepIDs {
		if id < 0 || id >= db.N() {
			return nil, fmt.Errorf("core: representative id %d out of range", id)
		}
		isRep[id] = true
	}
	gather := make([]float32, db.N()*db.Dim)
	for p, id := range snap.IDs {
		if int(id) < 0 || int(id) >= db.N() {
			return nil, fmt.Errorf("core: member id %d out of range", id)
		}
		copy(gather[p*db.Dim:(p+1)*db.Dim], db.Row(int(id)))
	}
	e := &Exact{
		db: db, m: m, prm: snap.Params,
		repIDs: snap.RepIDs, repData: db.Subset(snap.RepIDs),
		radii: snap.Radii, isRep: isRep,
		offsets: snap.Offsets, ids: snap.IDs, dists: snap.Dists,
		gather: gather,
	}
	e.initKernel()
	return e, nil
}

type oneShotSnapshot struct {
	Version    int
	MetricName string
	DBN, DBDim int
	Params     OneShotParams
	RepIDs     []int
	Radii      []float64
	S          int
	IDs        []int32
}

// Save writes the index structure (not the database) to w.
func (o *OneShot) Save(w io.Writer) error {
	snap := oneShotSnapshot{
		Version:    snapshotVersion,
		MetricName: o.m.Name(),
		DBN:        o.db.N(),
		DBDim:      o.db.Dim,
		Params:     o.prm,
		RepIDs:     o.repIDs,
		Radii:      o.radii,
		S:          o.s,
		IDs:        o.ids,
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// LoadOneShot reads an index saved by OneShot.Save and reattaches it to db
// and m.
func LoadOneShot(r io.Reader, db *vec.Dataset, m metric.Metric[[]float32]) (*OneShot, error) {
	var snap oneShotSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding one-shot index: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported index version %d", snap.Version)
	}
	if snap.MetricName != m.Name() {
		return nil, fmt.Errorf("core: index was built with metric %q, not %q", snap.MetricName, m.Name())
	}
	if snap.DBN != db.N() || snap.DBDim != db.Dim {
		return nil, fmt.Errorf("core: index was built over a %dx%d database, got %dx%d",
			snap.DBN, snap.DBDim, db.N(), db.Dim)
	}
	if len(snap.IDs) != len(snap.RepIDs)*snap.S {
		return nil, fmt.Errorf("core: corrupt index structure")
	}
	gather := make([]float32, len(snap.IDs)*db.Dim)
	for p, id := range snap.IDs {
		if int(id) < 0 || int(id) >= db.N() {
			return nil, fmt.Errorf("core: member id %d out of range", id)
		}
		copy(gather[p*db.Dim:(p+1)*db.Dim], db.Row(int(id)))
	}
	o := &OneShot{
		db: db, m: m, prm: snap.Params,
		repIDs: snap.RepIDs, repData: db.Subset(snap.RepIDs),
		radii: snap.Radii, s: snap.S, ids: snap.IDs, gather: gather,
	}
	o.initKernel()
	return o, nil
}
