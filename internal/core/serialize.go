package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/metric"
	"repro/internal/vec"
)

// Index serialization. The database itself is not stored — only the cover
// structure — so a saved index is small (O(n) integers) and reattaches to
// the database it was built from. The metric is identified by name and
// verified at load time.

type exactSnapshot struct {
	Version    int
	MetricName string
	DBN, DBDim int
	Params     ExactParams
	RepIDs     []int
	Radii      []float64
	Offsets    []int
	IDs        []int32
	Dists      []float64
	// Deleted lists the tombstoned database ids, ascending. Version-2
	// snapshots taken after deletions keep the tombstones instead of
	// requiring a Rebuild, so database ids stay stable across a
	// snapshot/restore cycle — the property WAL replay depends on.
	// Version-1 snapshots decode with Deleted nil (gob zero value).
	Deleted []int32
}

// Snapshot versions. Version 1 already persists the sorted-segment
// permutation (IDs in per-list (dist, id) order, Dists as the
// position-aligned sort keys), so the EarlyExit admissible windows — and
// any consumer of SortSegment order, such as the distributed shards —
// round-trip without a layout change. Version 2 adds the Deleted
// tombstone list; LoadExact accepts both. LoadExact verifies the sort
// invariant instead of re-sorting: a snapshot whose Dists are not
// ascending within every list is corrupt.
const (
	snapshotVersion      = 1 // OneShot, and the floor LoadExact accepts
	exactSnapshotVersion = 2
)

// Save writes the index structure (not the database) to w. Pending
// insertion buffers must be folded in first (Flush or Rebuild) — the
// snapshot stores only the canonical sorted layout. Tombstones persist
// as the Deleted list, so deletions do not force a Rebuild before Save
// and ids remain stable across a save/load cycle.
func (e *Exact) Save(w io.Writer) error {
	if e.mut != nil && e.mut.numBuffered > 0 {
		return ErrDirtyIndex
	}
	var deleted []int32
	if e.mut != nil {
		for id, gone := range e.mut.deleted {
			if gone {
				deleted = append(deleted, int32(id))
			}
		}
	}
	snap := exactSnapshot{
		Version:    exactSnapshotVersion,
		MetricName: e.m.Name(),
		DBN:        e.db.N(),
		DBDim:      e.db.Dim,
		Params:     e.prm,
		RepIDs:     e.repIDs,
		Radii:      e.radii,
		Offsets:    e.offsets,
		IDs:        e.ids,
		Dists:      e.dists,
		Deleted:    deleted,
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// LoadExact reads an index saved by Exact.Save and reattaches it to db and
// m, which must match the originals (same size, dimension and metric
// name). The gathered point buffer is rebuilt from db.
func LoadExact(r io.Reader, db *vec.Dataset, m metric.Metric[[]float32]) (*Exact, error) {
	var snap exactSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding exact index: %w", err)
	}
	if snap.Version < snapshotVersion || snap.Version > exactSnapshotVersion {
		return nil, fmt.Errorf("core: unsupported index version %d", snap.Version)
	}
	if snap.MetricName != m.Name() {
		return nil, fmt.Errorf("core: index was built with metric %q, not %q", snap.MetricName, m.Name())
	}
	if snap.DBN != db.N() || snap.DBDim != db.Dim {
		return nil, fmt.Errorf("core: index was built over a %dx%d database, got %dx%d",
			snap.DBN, snap.DBDim, db.N(), db.Dim)
	}
	if len(snap.IDs) > db.N() || len(snap.Offsets) != len(snap.RepIDs)+1 {
		return nil, fmt.Errorf("core: corrupt index structure")
	}
	if len(snap.Dists) != len(snap.IDs) {
		return nil, fmt.Errorf("core: corrupt index structure: %d dists for %d ids", len(snap.Dists), len(snap.IDs))
	}
	// The offsets table must cover ids exactly — [0, len(IDs)] end to
	// end — and every list segment must be ascending in (dist, id), the
	// invariant the EarlyExit admissible window binary-searches over. A
	// violation means the stream is corrupt (builds always satisfy both),
	// and accepting it would make searches silently drop answers.
	if snap.Offsets[0] != 0 || snap.Offsets[len(snap.Offsets)-1] != len(snap.IDs) {
		return nil, fmt.Errorf("core: corrupt index structure: offsets cover [%d, %d) of %d ids",
			snap.Offsets[0], snap.Offsets[len(snap.Offsets)-1], len(snap.IDs))
	}
	for j := 0; j+1 < len(snap.Offsets); j++ {
		lo, hi := snap.Offsets[j], snap.Offsets[j+1]
		if lo < 0 || hi < lo || hi > len(snap.IDs) {
			return nil, fmt.Errorf("core: corrupt index structure: bad offsets [%d, %d)", lo, hi)
		}
		if !SegmentSorted(snap.IDs[lo:hi], snap.Dists[lo:hi]) {
			return nil, fmt.Errorf("core: corrupt index structure: list %d not in (dist, id) order", j)
		}
	}
	isRep := make([]bool, db.N())
	for _, id := range snap.RepIDs {
		if id < 0 || id >= db.N() {
			return nil, fmt.Errorf("core: representative id %d out of range", id)
		}
		isRep[id] = true
	}
	// Every database id must appear exactly once across the lists or be
	// tombstoned (a post-Rebuild snapshot purges tombstoned members from
	// the lists; a post-Flush one keeps them). Anything else means the
	// lists and the database disagree and searches would silently drop
	// answers.
	inList := make([]bool, db.N())
	gather := make([]float32, len(snap.IDs)*db.Dim)
	for p, id := range snap.IDs {
		if int(id) < 0 || int(id) >= db.N() {
			return nil, fmt.Errorf("core: member id %d out of range", id)
		}
		if inList[id] {
			return nil, fmt.Errorf("core: corrupt index structure: member id %d listed twice", id)
		}
		inList[id] = true
		copy(gather[p*db.Dim:(p+1)*db.Dim], db.Row(int(id)))
	}
	var deleted []bool
	if len(snap.Deleted) > 0 {
		deleted = make([]bool, db.N())
		for _, id := range snap.Deleted {
			if int(id) < 0 || int(id) >= db.N() {
				return nil, fmt.Errorf("core: deleted id %d out of range", id)
			}
			if deleted[id] {
				return nil, fmt.Errorf("core: corrupt index structure: id %d tombstoned twice", id)
			}
			deleted[id] = true
		}
	}
	for id := 0; id < db.N(); id++ {
		if !inList[id] && (deleted == nil || !deleted[id]) {
			return nil, fmt.Errorf("core: corrupt index structure: id %d neither listed nor tombstoned", id)
		}
	}
	e := &Exact{
		db: db, m: m, prm: snap.Params,
		repIDs: snap.RepIDs, repData: db.Subset(snap.RepIDs),
		radii: snap.Radii, isRep: isRep,
		offsets: snap.Offsets, ids: snap.IDs, dists: snap.Dists,
		gather: gather,
	}
	if deleted != nil {
		e.mut = &mutableState{
			bufIDs:     make([][]int32, len(snap.RepIDs)),
			bufDists:   make([][]float64, len(snap.RepIDs)),
			deleted:    deleted,
			numDeleted: len(snap.Deleted),
		}
	}
	e.initKernel()
	return e, nil
}

type oneShotSnapshot struct {
	Version    int
	MetricName string
	DBN, DBDim int
	Params     OneShotParams
	RepIDs     []int
	Radii      []float64
	S          int
	IDs        []int32
}

// Save writes the index structure (not the database) to w.
func (o *OneShot) Save(w io.Writer) error {
	snap := oneShotSnapshot{
		Version:    snapshotVersion,
		MetricName: o.m.Name(),
		DBN:        o.db.N(),
		DBDim:      o.db.Dim,
		Params:     o.prm,
		RepIDs:     o.repIDs,
		Radii:      o.radii,
		S:          o.s,
		IDs:        o.ids,
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// LoadOneShot reads an index saved by OneShot.Save and reattaches it to db
// and m.
func LoadOneShot(r io.Reader, db *vec.Dataset, m metric.Metric[[]float32]) (*OneShot, error) {
	var snap oneShotSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding one-shot index: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported index version %d", snap.Version)
	}
	if snap.MetricName != m.Name() {
		return nil, fmt.Errorf("core: index was built with metric %q, not %q", snap.MetricName, m.Name())
	}
	if snap.DBN != db.N() || snap.DBDim != db.Dim {
		return nil, fmt.Errorf("core: index was built over a %dx%d database, got %dx%d",
			snap.DBN, snap.DBDim, db.N(), db.Dim)
	}
	if len(snap.IDs) != len(snap.RepIDs)*snap.S {
		return nil, fmt.Errorf("core: corrupt index structure")
	}
	gather := make([]float32, len(snap.IDs)*db.Dim)
	for p, id := range snap.IDs {
		if int(id) < 0 || int(id) >= db.N() {
			return nil, fmt.Errorf("core: member id %d out of range", id)
		}
		copy(gather[p*db.Dim:(p+1)*db.Dim], db.Row(int(id)))
	}
	o := &OneShot{
		db: db, m: m, prm: snap.Params,
		repIDs: snap.RepIDs, repData: db.Subset(snap.RepIDs),
		radii: snap.Radii, s: snap.S, ids: snap.IDs, gather: gather,
	}
	o.initKernel()
	return o, nil
}
