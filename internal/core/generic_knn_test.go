package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/metric"
)

func TestGenericExactKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := randomStrings(rng, 400, 10)
	m := metric.Metric[string](metric.Edit{})
	g, err := BuildGenericExact(db, m, ExactParams{Seed: 3, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := randomStrings(rng, 25, 10)
	for _, k := range []int{1, 4, 9} {
		for _, q := range queries {
			got, st := g.KNN(q, k)
			want := bruteforce.SearchOneKGeneric(q, db, k, m, nil)
			if len(got) != len(want) {
				t.Fatalf("k=%d %q: %d results want %d", k, q, len(got), len(want))
			}
			for j := range got {
				if got[j].Dist != want[j].Dist {
					t.Fatalf("k=%d %q pos=%d: %v want %v", k, q, j, got[j].Dist, want[j].Dist)
				}
			}
			if st.TotalEvals() == 0 {
				t.Fatal("no work recorded")
			}
		}
	}
}

func TestGenericExactRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := randomStrings(rng, 350, 9)
	m := metric.Metric[string](metric.Edit{})
	g, err := BuildGenericExact(db, m, ExactParams{Seed: 5, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range randomStrings(rng, 15, 9) {
		for _, eps := range []float64{1, 3, 6} {
			got, _ := g.Range(q, eps)
			want := bruteforce.RangeSearchGeneric(q, db, eps, m, nil)
			if len(got) != len(want) {
				t.Fatalf("%q eps=%v: %d hits want %d", q, eps, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%q eps=%v pos=%d: %+v want %+v", q, eps, j, got[j], want[j])
				}
			}
		}
	}
}

func TestGenericOneShotKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randomStrings(rng, 300, 8)
	m := metric.Metric[string](metric.Edit{})
	g, err := BuildGenericOneShot(db, m, OneShotParams{NumReps: 50, S: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, st := g.KNN(db[5], 5)
	if len(got) != 5 {
		t.Fatalf("knn: %v", got)
	}
	if got[0].Dist != 0 {
		t.Fatalf("self should be nearest: %v", got[0])
	}
	for j := 1; j < len(got); j++ {
		if got[j].Dist < got[j-1].Dist {
			t.Fatal("not sorted")
		}
	}
	if st.PointEvals == 0 {
		t.Fatal("no work recorded")
	}
	if res, _ := g.KNN(db[5], 0); res != nil {
		t.Fatal("k=0 should return nil")
	}
	if res, _ := (&GenericExact[string]{}).KNN("x", 0); res != nil {
		t.Fatal("k=0 on exact should return nil")
	}
}

// Property: generic k-NN distance multisets match brute force for random
// k and dictionaries.
func TestQuickGenericKNN(t *testing.T) {
	m := metric.Metric[string](metric.Edit{})
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomStrings(rng, 100, 7)
		k := int(kRaw)%8 + 1
		g, err := BuildGenericExact(db, m, ExactParams{Seed: seed, EarlyExit: true})
		if err != nil {
			return false
		}
		q := randomStrings(rng, 1, 7)[0]
		got, _ := g.KNN(q, k)
		want := bruteforce.SearchOneKGeneric(q, db, k, m, nil)
		if len(got) != len(want) {
			return false
		}
		for j := range got {
			if got[j].Dist != want[j].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
