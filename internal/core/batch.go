package core

import (
	"sync"

	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// TileFrontHalf is the shared batched BF(Q,R) front half of Exact and
// OneShot search: query tiles are compared against representative tiles
// through the tiled kernel, and each query's full phase-1 ordering row is
// handed to back, which runs the per-query back half (pruning/probing and
// list scans) and returns its Stats. repNorms are optional precomputed
// squared norms for kernels that consume them.
func TileFrontHalf(ker *metric.Kernel, queries, reps *vec.Dataset, repNorms []float64,
	back func(i int, row []float64, sc *par.Scratch, ts *metric.TileScratch) Stats) Stats {
	nq := queries.N()
	nr := reps.N()
	dim := queries.Dim
	tq, tp := metric.AutoTileShape(dim)
	var agg Stats
	var mu sync.Mutex
	par.For(nq, 1, func(lo, hi int) {
		sc := par.GetScratch()
		defer par.PutScratch(sc)
		ts := metric.GetTileScratch()
		defer metric.PutTileScratch(ts)
		var local Stats
		// Front-half slots 3/4/6; the back half invoked below owns 0–2 and 5
		// (see the Scratch slot convention).
		rows := sc.Float64(3, tq*nr)
		tile := sc.Float64(4, tq*tp)
		for q0 := lo; q0 < hi; q0 += tq {
			q1 := q0 + tq
			if q1 > hi {
				q1 = hi
			}
			bq := q1 - q0
			qflat := queries.Data[q0*dim : q1*dim]
			qnorms := ker.Norms(qflat, dim, sc.Float64(6, bq))
			for r0 := 0; r0 < nr; r0 += tp {
				r1 := r0 + tp
				if r1 > nr {
					r1 = nr
				}
				bp := r1 - r0
				var pn []float64
				if repNorms != nil {
					pn = repNorms[r0:r1]
				}
				t := tile[:bq*bp]
				ker.Tile(qflat, qnorms, reps.Data[r0*dim:r1*dim], pn, dim, t, ts)
				for i := 0; i < bq; i++ {
					copy(rows[i*nr+r0:i*nr+r1], t[i*bp:(i+1)*bp])
				}
			}
			for i := 0; i < bq; i++ {
				local.Add(back(q0+i, rows[i*nr:(i+1)*nr], sc, ts))
			}
		}
		mu.Lock()
		agg.Add(local)
		mu.Unlock()
	})
	return agg
}
