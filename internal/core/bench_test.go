package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metric"
	"repro/internal/vec"
)

// Micro-benchmarks of the core RBC operations, kept small; the paper-
// artifact benchmarks live at the repository root.

func benchDB(n, dim int) *vec.Dataset {
	rng := rand.New(rand.NewSource(9))
	db := vec.New(dim, n)
	row := make([]float32, dim)
	for i := 0; i < n; i++ {
		c := float32(rng.Intn(16)) * 4
		for j := range row {
			row[j] = c + float32(rng.NormFloat64())
		}
		db.Append(row)
	}
	return db
}

func BenchmarkBuildExact(b *testing.B) {
	db := benchDB(5000, 16)
	nr := int(2 * math.Sqrt(5000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildExact(db, metric.Euclidean{}, ExactParams{NumReps: nr, Seed: 1, ExactCount: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildOneShot(b *testing.B) {
	db := benchDB(5000, 16)
	nr := int(2 * math.Sqrt(5000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildOneShot(db, metric.Euclidean{}, OneShotParams{NumReps: nr, S: nr, Seed: 1, ExactCount: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactOne(b *testing.B) {
	db := benchDB(20000, 16)
	idx, err := BuildExact(db, metric.Euclidean{}, ExactParams{Seed: 1, EarlyExit: true})
	if err != nil {
		b.Fatal(err)
	}
	q := db.Row(77)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.One(q)
	}
}

func BenchmarkExactKNN10(b *testing.B) {
	db := benchDB(20000, 16)
	idx, err := BuildExact(db, metric.Euclidean{}, ExactParams{Seed: 1, EarlyExit: true})
	if err != nil {
		b.Fatal(err)
	}
	q := db.Row(77)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.KNN(q, 10)
	}
}

func BenchmarkOneShotOne(b *testing.B) {
	db := benchDB(20000, 16)
	idx, err := BuildOneShot(db, metric.Euclidean{}, OneShotParams{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	q := db.Row(77)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.One(q)
	}
}

func BenchmarkExactRange(b *testing.B) {
	db := benchDB(20000, 16)
	idx, err := BuildExact(db, metric.Euclidean{}, ExactParams{Seed: 1, EarlyExit: true})
	if err != nil {
		b.Fatal(err)
	}
	q := db.Row(77)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Range(q, 3.0)
	}
}

func BenchmarkGenericExactEdit(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	words := make([]string, 2000)
	for i := range words {
		l := rng.Intn(8) + 4
		w := make([]byte, l)
		for j := range w {
			w[j] = byte('a' + rng.Intn(26))
		}
		words[i] = string(w)
	}
	idx, err := BuildGenericExact(words, metric.Metric[string](metric.Edit{}), ExactParams{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.One(words[i%len(words)])
	}
}
