package core

import (
	"math/rand"
	"testing"

	"repro/internal/metric"
)

// Tests for the tiled batch front halves: the BF(Q,R) phase of Exact and
// OneShot batch search must route through the tiled kernels, match the
// per-query path bit for bit, and stay free of per-query allocations.

func TestExactBatchGoesThroughTiledKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := randomDataset(rng, 900, 6)
	e, err := BuildExact(db, metric.Euclidean{}, ExactParams{Seed: 3, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := randomDataset(rng, 64, 6)
	before := metric.TileInvocations()
	e.Search(queries)
	if metric.TileInvocations() == before {
		t.Fatal("Exact.Search performed no tiled kernel invocations")
	}
	before = metric.TileInvocations()
	e.SearchK(queries, 3)
	if metric.TileInvocations() == before {
		t.Fatal("Exact.SearchK performed no tiled kernel invocations")
	}
}

func TestOneShotBatchGoesThroughTiledKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	db := randomDataset(rng, 900, 6)
	o, err := BuildOneShot(db, metric.Euclidean{}, OneShotParams{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	queries := randomDataset(rng, 64, 6)
	before := metric.TileInvocations()
	o.Search(queries)
	if metric.TileInvocations() == before {
		t.Fatal("OneShot.Search performed no tiled kernel invocations")
	}
}

// TestOneShotSearchBatchMatchesOne mirrors TestExactSearchBatch: the tiled
// batch front half must agree with the per-query path bit for bit.
func TestOneShotSearchBatchMatchesOne(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db := clusteredDataset(rng, 700, 5, 8)
	for _, probes := range []int{1, 3} {
		o, err := BuildOneShot(db, metric.Euclidean{}, OneShotParams{Seed: 9, Probes: probes})
		if err != nil {
			t.Fatal(err)
		}
		queries := randomDataset(rng, 40, 5)
		batch, st := o.Search(queries)
		if st.RepEvals != int64(queries.N()*o.NumReps()) {
			t.Fatalf("RepEvals=%d, want %d", st.RepEvals, queries.N()*o.NumReps())
		}
		for i := 0; i < queries.N(); i++ {
			one, _ := o.One(queries.Row(i))
			if batch[i] != one {
				t.Fatalf("probes=%d batch[%d]=%+v, One=%+v", probes, i, batch[i], one)
			}
		}
		batchK, _ := o.SearchK(queries, 4)
		for i := 0; i < queries.N(); i++ {
			oneK, _ := o.KNN(queries.Row(i), 4)
			if len(batchK[i]) != len(oneK) {
				t.Fatalf("probes=%d: batchK[%d] has %d results, KNN %d", probes, i, len(batchK[i]), len(oneK))
			}
			for j := range oneK {
				if batchK[i][j] != oneK[j] {
					t.Fatalf("probes=%d batchK[%d][%d]=%+v, KNN %+v", probes, i, j, batchK[i][j], oneK[j])
				}
			}
		}
	}
}

// TestOneShotNormCacheSurvivesReload: the rep-norm cache must be rebuilt
// by LoadOneShot so repeated searches pay zero setup after a reload.
func TestOneShotNormCacheSurvivesReload(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	db := randomDataset(rng, 300, 4)
	o, err := BuildOneShot(db, metric.Euclidean{}, OneShotParams{Seed: 5, ExactCount: true})
	if err != nil {
		t.Fatal(err)
	}
	if o.repNorms == nil || len(o.repNorms) != o.NumReps() {
		t.Fatalf("repNorms not cached at build: %d entries, want %d", len(o.repNorms), o.NumReps())
	}
}

// raceEnabled is set by race_test.go; the race runtime allocates on its
// own, so the allocation guards only run in normal builds.
var raceEnabled bool

// Allocation regression guards (-benchmem equivalent): per-query work must
// come from pooled scratch. KNN may allocate only the returned slice (plus
// Results' sort bookkeeping); batch Search must stay amortized zero.
func TestSearchAllocGuards(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	rng := rand.New(rand.NewSource(25))
	db := clusteredDataset(rng, 2000, 8, 10)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 7, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	o, err := BuildOneShot(db, m, OneShotParams{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q := db.Row(42)
	queries := db.Subset(seqInts(0, 128))

	e.One(q) // warm pools
	if allocs := testing.AllocsPerRun(20, func() { e.One(q) }); allocs > 2 {
		t.Fatalf("Exact.One allocates %.1f per query, want ~0", allocs)
	}
	e.KNN(q, 5)
	if allocs := testing.AllocsPerRun(20, func() { e.KNN(q, 5) }); allocs > 3 {
		t.Fatalf("Exact.KNN allocates %.1f per query, want only the result slice", allocs)
	}
	o.One(q)
	if allocs := testing.AllocsPerRun(20, func() { o.One(q) }); allocs > 2 {
		t.Fatalf("OneShot.One allocates %.1f per query, want ~0", allocs)
	}
	o.KNN(q, 5)
	if allocs := testing.AllocsPerRun(20, func() { o.KNN(q, 5) }); allocs > 3 {
		t.Fatalf("OneShot.KNN allocates %.1f per query, want only the result slice", allocs)
	}

	e.Search(queries)
	if allocs := testing.AllocsPerRun(5, func() { e.Search(queries) }); allocs > float64(queries.N())/4 {
		t.Fatalf("Exact.Search allocates %.0f for %d queries, want amortized zero", allocs, queries.N())
	}
	o.Search(queries)
	if allocs := testing.AllocsPerRun(5, func() { o.Search(queries) }); allocs > float64(queries.N())/4 {
		t.Fatalf("OneShot.Search allocates %.0f for %d queries, want amortized zero", allocs, queries.N())
	}
}
