package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/metric"
)

func TestInsertRemainsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := clusteredDataset(rng, 800, 5, 8)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 3, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	// Insert 200 new points drawn from the same distribution.
	extra := clusteredDataset(rng, 200, 5, 8)
	for i := 0; i < extra.N(); i++ {
		id := e.Insert(extra.Row(i))
		if id != 800+i {
			t.Fatalf("insert id %d, want %d", id, 800+i)
		}
	}
	if !e.Dirty() || e.Live() != 1000 {
		t.Fatalf("dirty=%v live=%d", e.Dirty(), e.Live())
	}
	// Queries must see the inserted points, exactly.
	queries := randomDataset(rng, 40, 5)
	for i := 0; i < queries.N(); i++ {
		q := queries.Row(i)
		got, _ := e.One(q)
		want := bruteforce.SearchOne(q, db, m, nil) // db now holds 1000 rows
		if got.Dist != want.Dist {
			t.Fatalf("query %d after inserts: %v want %v", i, got.Dist, want.Dist)
		}
	}
	// An inserted point must find itself.
	got, _ := e.One(extra.Row(7))
	if got.Dist != 0 {
		t.Fatalf("inserted point not found: %+v", got)
	}
}

func TestDeleteRemainsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := clusteredDataset(rng, 1000, 4, 6)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 5, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	// Delete 300 random points (possibly including representatives).
	deleted := map[int]bool{}
	for len(deleted) < 300 {
		id := rng.Intn(1000)
		if !deleted[id] {
			if err := e.Delete(id); err != nil {
				t.Fatal(err)
			}
			deleted[id] = true
		}
	}
	if e.Live() != 700 {
		t.Fatalf("live=%d", e.Live())
	}
	// Reference: brute force over the live subset.
	liveIDs := make([]int, 0, 700)
	for i := 0; i < 1000; i++ {
		if !deleted[i] {
			liveIDs = append(liveIDs, i)
		}
	}
	liveDB := db.Subset(liveIDs)
	queries := randomDataset(rng, 40, 4)
	for i := 0; i < queries.N(); i++ {
		q := queries.Row(i)
		got, _ := e.One(q)
		want := bruteforce.SearchOne(q, liveDB, m, nil)
		if got.Dist != want.Dist {
			t.Fatalf("query %d after deletes: %v want %v", i, got.Dist, want.Dist)
		}
		if deleted[got.ID] {
			t.Fatalf("returned deleted id %d", got.ID)
		}
	}
}

func TestDeleteErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randomDataset(rng, 50, 3)
	e, err := BuildExact(db, metric.Euclidean{}, ExactParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(-1); err == nil {
		t.Fatal("negative id should error")
	}
	if err := e.Delete(50); err == nil {
		t.Fatal("out-of-range id should error")
	}
	if err := e.Delete(10); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(10); err == nil {
		t.Fatal("double delete should error")
	}
}

func TestMixedMutationsAndRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := clusteredDataset(rng, 600, 4, 6)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 7, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave inserts and deletes.
	extra := clusteredDataset(rng, 150, 4, 6)
	for i := 0; i < extra.N(); i++ {
		id := e.Insert(extra.Row(i))
		if i%3 == 0 {
			if err := e.Delete(id); err != nil { // delete some fresh inserts
				t.Fatal(err)
			}
		}
		if i%5 == 0 {
			target := rng.Intn(600)
			if !e.isDeleted(target) {
				if err := e.Delete(target); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	checkExact := func(label string) {
		t.Helper()
		liveIDs := make([]int, 0, db.N())
		for i := 0; i < db.N(); i++ {
			if !e.isDeleted(i) {
				liveIDs = append(liveIDs, i)
			}
		}
		liveDB := db.Subset(liveIDs)
		queries := randomDataset(rng, 25, 4)
		for i := 0; i < queries.N(); i++ {
			q := queries.Row(i)
			got, _ := e.One(q)
			want := bruteforce.SearchOne(q, liveDB, m, nil)
			if got.Dist != want.Dist {
				t.Fatalf("%s query %d: %v want %v", label, i, got.Dist, want.Dist)
			}
		}
		// k-NN and range must also respect tombstones.
		knn, _ := e.KNN(queries.Row(0), 8)
		for _, nb := range knn {
			if e.isDeleted(nb.ID) {
				t.Fatalf("%s: knn returned deleted id %d", label, nb.ID)
			}
		}
		hits, _ := e.Range(queries.Row(0), 2.0)
		wantHits := bruteforce.RangeSearch(queries.Row(0), liveDB, 2.0, m, nil)
		if len(hits) != len(wantHits) {
			t.Fatalf("%s: range %d hits want %d", label, len(hits), len(wantHits))
		}
	}
	checkExact("before rebuild")
	e.Rebuild()
	if e.mut != nil && e.mut.numBuffered != 0 {
		t.Fatal("rebuild left buffered inserts")
	}
	checkExact("after rebuild")
	// A second rebuild is a no-op.
	e.Rebuild()
	checkExact("after second rebuild")
}

func TestRebuildRestoresInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := clusteredDataset(rng, 400, 3, 5)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{Seed: 9, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	extra := clusteredDataset(rng, 100, 3, 5)
	for i := 0; i < extra.N(); i++ {
		e.Insert(extra.Row(i))
	}
	e.Rebuild()
	// Lists must again be sorted and radii exact.
	for j := 0; j < e.NumReps(); j++ {
		lo, hi := e.offsets[j], e.offsets[j+1]
		for p := lo + 1; p < hi; p++ {
			if e.dists[p] < e.dists[p-1] {
				t.Fatalf("list %d unsorted after rebuild", j)
			}
		}
		if hi > lo && e.radii[j] != e.dists[hi-1] {
			t.Fatalf("radius %v != max %v after rebuild", e.radii[j], e.dists[hi-1])
		}
	}
	// Every live point appears exactly once.
	seen := map[int32]bool{}
	for _, id := range e.ids {
		if seen[id] {
			t.Fatalf("id %d duplicated after rebuild", id)
		}
		seen[id] = true
	}
	if len(seen) != 500 {
		t.Fatalf("rebuild kept %d points, want 500", len(seen))
	}
	// Clean after pure inserts: Dirty is false and Save works.
	if e.Dirty() {
		t.Fatal("index should be clean after rebuild with no deletes")
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSaveRejectsDirtyIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := randomDataset(rng, 100, 3)
	e, err := BuildExact(db, metric.Euclidean{}, ExactParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Insert([]float32{0.5, 0.5, 0.5})
	var buf bytes.Buffer
	if err := e.Save(&buf); !errors.Is(err, ErrDirtyIndex) {
		t.Fatalf("expected ErrDirtyIndex, got %v", err)
	}
	e.Rebuild()
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAllRepresentativesStillExact(t *testing.T) {
	// Extreme case: every representative's point is tombstoned, so γ is
	// +Inf and pruning disappears — searches degrade to full scans but
	// stay correct.
	rng := rand.New(rand.NewSource(7))
	db := clusteredDataset(rng, 300, 3, 4)
	m := metric.Euclidean{}
	e, err := BuildExact(db, m, ExactParams{NumReps: 10, Seed: 11, ExactCount: true, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, rid := range e.RepIDs() {
		if err := e.Delete(rid); err != nil {
			t.Fatal(err)
		}
	}
	liveIDs := make([]int, 0, 290)
	for i := 0; i < 300; i++ {
		if !e.isDeleted(i) {
			liveIDs = append(liveIDs, i)
		}
	}
	liveDB := db.Subset(liveIDs)
	for trial := 0; trial < 20; trial++ {
		q := randomDataset(rng, 1, 3).Row(0)
		got, _ := e.One(q)
		want := bruteforce.SearchOne(q, liveDB, m, nil)
		if got.Dist != want.Dist {
			t.Fatalf("trial %d: %v want %v", trial, got.Dist, want.Dist)
		}
	}
}

// Property: any sequence of inserts and deletes leaves the index exact
// against brute force over the live set.
func TestQuickMutationsStayExact(t *testing.T) {
	m := metric.Euclidean{}
	f := func(seed int64, ops []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDataset(rng, 120, 3)
		e, err := BuildExact(db, m, ExactParams{Seed: seed, EarlyExit: true})
		if err != nil {
			return false
		}
		if len(ops) > 60 {
			ops = ops[:60]
		}
		for _, op := range ops {
			switch op % 3 {
			case 0: // insert
				e.Insert([]float32{rng.Float32(), rng.Float32(), rng.Float32()})
			case 1: // delete random live point
				if e.Live() > 1 {
					for tries := 0; tries < 10; tries++ {
						id := rng.Intn(e.db.N())
						if !e.isDeleted(id) {
							if err := e.Delete(id); err != nil {
								return false
							}
							break
						}
					}
				}
			case 2: // rebuild
				e.Rebuild()
			}
		}
		liveIDs := make([]int, 0, e.db.N())
		for i := 0; i < e.db.N(); i++ {
			if !e.isDeleted(i) {
				liveIDs = append(liveIDs, i)
			}
		}
		if len(liveIDs) == 0 {
			return true
		}
		liveDB := e.db.Subset(liveIDs)
		for trial := 0; trial < 3; trial++ {
			q := []float32{rng.Float32(), rng.Float32(), rng.Float32()}
			got, _ := e.One(q)
			want := bruteforce.SearchOne(q, liveDB, m, nil)
			if got.Dist != want.Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
