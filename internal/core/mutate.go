package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/metric"
	"repro/internal/par"
)

// Dynamic updates for the Exact index. The RBC is a static structure in
// the paper; production deployments need inserts and deletes without
// full rebuilds, and the cover's geometry makes both cheap:
//
//   - Insert routes the new point to its nearest representative (one
//     brute-force scan of R, exactly the build rule) and parks it in that
//     representative's *insertion buffer*, kept in the same ascending
//     (distance-to-representative, id) order as the segment itself; the
//     radius ψ_r grows if needed, so both pruning bounds remain sound.
//     EarlyExit admissible windows clip the buffer by the same binary
//     search they clip the segment with, so window validity survives
//     mutation. When a buffer reaches the merge threshold it is folded
//     into its sorted segment in place — a targeted re-sort of one
//     segment (an O(segment) two-run merge), not a Rebuild.
//   - Delete tombstones a point; searches skip tombstoned ids. Radii are
//     left untouched — stale-high radii weaken pruning but never break
//     correctness.
//   - Flush merges every pending buffer (tombstones stay), restoring the
//     canonical sorted layout so the index can be snapshotted; Rebuild
//     additionally purges tombstones from the lists.
//
// Searches remain exact throughout: buffered members are scanned
// alongside their segment, and the γ thresholds are computed over live
// representatives only (deleted representatives still route, but no
// longer witness an upper bound).

// ErrDirtyIndex is wrapped by Save when un-merged insertion buffers
// exist.
var ErrDirtyIndex = fmt.Errorf("core: index has pending insertion buffers; call Flush or Rebuild before Save")

// DefaultBufferMerge is the per-segment insertion-buffer bound used when
// ExactParams.BufferMerge is zero: buffers this large fold into their
// sorted segment. Small enough that the linear buffer scan stays a
// rounding error next to the windowed segment scan, large enough that
// the O(n) column splice amortizes across many inserts.
const DefaultBufferMerge = 64

// mutableState carries the update-related fields of Exact.
type mutableState struct {
	bufIDs      [][]int32   // per-rep insertion buffers, ascending (dist, id)
	bufDists    [][]float64 // matching distances to the representative
	deleted     []bool      // db id → tombstoned
	numDeleted  int
	numBuffered int
}

func (e *Exact) ensureMutable() {
	if e.mut == nil {
		e.mut = &mutableState{
			bufIDs:   make([][]int32, e.NumReps()),
			bufDists: make([][]float64, e.NumReps()),
			deleted:  make([]bool, e.db.N()),
		}
	}
}

// dropCleanState releases the mutable state once nothing dynamic
// remains, returning the index to the pristine fast path (grouped batch
// scans, Save without Flush).
func (e *Exact) dropCleanState() {
	if e.mut != nil && e.mut.numBuffered == 0 && e.mut.numDeleted == 0 {
		e.mut = nil
	}
}

// Dirty reports whether the index holds mutations not yet folded in by
// Flush or Rebuild (pending insertion buffers or tombstones).
func (e *Exact) Dirty() bool {
	return e.mut != nil && (e.mut.numBuffered > 0 || e.mut.numDeleted > 0)
}

// Buffered reports the number of inserts parked in per-segment
// insertion buffers (not yet merged into the sorted layout).
func (e *Exact) Buffered() int {
	if e.mut == nil {
		return 0
	}
	return e.mut.numBuffered
}

// SegMerges reports how many per-segment buffer merges the index has
// performed (threshold-triggered plus Flush/Rebuild-triggered).
func (e *Exact) SegMerges() int64 { return e.segMerges }

// Live reports the number of non-deleted points.
func (e *Exact) Live() int {
	n := e.db.N()
	if e.mut != nil {
		n -= e.mut.numDeleted
	}
	return n
}

// mergeThreshold resolves ExactParams.BufferMerge: 0 selects
// DefaultBufferMerge, negative disables automatic merging.
func (e *Exact) mergeThreshold() int {
	if e.prm.BufferMerge != 0 {
		return e.prm.BufferMerge
	}
	return DefaultBufferMerge
}

// Insert appends p to the database and the index, returning its new id.
// The point is assigned to its nearest representative, as at build time,
// and parked in that representative's sorted insertion buffer. Cost: one
// scan of R plus O(buffer) bookkeeping, amortizing the segment splice
// across BufferMerge inserts.
func (e *Exact) Insert(p []float32) int {
	e.checkDim(len(p))
	e.ensureMutable()
	id := e.db.N()
	e.db.Append(p)
	e.isRep = append(e.isRep, false)
	e.mut.deleted = append(e.mut.deleted, false)

	nr := e.NumReps()
	dists := make([]float64, nr)
	metric.BatchDistances(e.m, p, e.repData.Data, e.db.Dim, dists)
	best := 0
	for j := 1; j < nr; j++ {
		if dists[j] < dists[best] {
			best = j
		}
	}
	e.bufferInsert(best, int32(id), dists[best])
	if dists[best] > e.radii[best] {
		e.radii[best] = dists[best]
	}
	return id
}

// bufferInsert parks (id, d) in representative j's insertion buffer at
// its (dist, id) position, then merges the buffer into the segment if it
// reached the threshold.
func (e *Exact) bufferInsert(j int, id int32, d float64) {
	ids, ds := e.mut.bufIDs[j], e.mut.bufDists[j]
	pos := InsertPos(ds, ids, d, id)
	ids = append(ids, 0)
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = id
	ds = append(ds, 0)
	copy(ds[pos+1:], ds[pos:])
	ds[pos] = d
	e.mut.bufIDs[j], e.mut.bufDists[j] = ids, ds
	e.mut.numBuffered++
	if t := e.mergeThreshold(); t > 0 && len(ids) >= t {
		e.mergeSegment(j)
		e.dropCleanState()
	}
}

// mergeSegment folds representative j's insertion buffer into its sorted
// segment in place: the flat (ids, dists, gather) columns grow by the
// buffer size, the tail shifts right, and the two ascending (dist, id)
// runs merge back to front — a targeted re-sort of one segment that
// preserves every invariant the EarlyExit admissible window
// binary-searches over. Answer-neutral by construction: the member set
// is unchanged, only its location moves from buffer to segment.
func (e *Exact) mergeSegment(j int) {
	bIDs, bDists := e.mut.bufIDs[j], e.mut.bufDists[j]
	b := len(bIDs)
	if b == 0 {
		return
	}
	dim := e.db.Dim
	lo, hi := e.offsets[j], e.offsets[j+1]
	n := len(e.ids)
	e.ids = append(e.ids, make([]int32, b)...)
	copy(e.ids[hi+b:], e.ids[hi:n])
	e.dists = append(e.dists, make([]float64, b)...)
	copy(e.dists[hi+b:], e.dists[hi:n])
	e.gather = append(e.gather, make([]float32, b*dim)...)
	copy(e.gather[(hi+b)*dim:], e.gather[hi*dim:n*dim])
	// Merge the segment run [lo, hi) and the buffer back to front into
	// [lo, hi+b). The write cursor w stays strictly ahead of the segment
	// read cursor s while buffer entries remain, so the moves never
	// clobber unread segment entries.
	s, w := hi-1, hi+b-1
	for t := b - 1; t >= 0; w-- {
		if s >= lo && (e.dists[s] > bDists[t] || (e.dists[s] == bDists[t] && e.ids[s] > bIDs[t])) {
			e.ids[w], e.dists[w] = e.ids[s], e.dists[s]
			copy(e.gather[w*dim:(w+1)*dim], e.gather[s*dim:(s+1)*dim])
			s--
			continue
		}
		e.ids[w], e.dists[w] = bIDs[t], bDists[t]
		copy(e.gather[w*dim:(w+1)*dim], e.db.Row(int(bIDs[t])))
		t--
	}
	for i := j + 1; i < len(e.offsets); i++ {
		e.offsets[i] += b
	}
	// Insert already grew the radius past every buffered distance, but
	// keep the invariant locally re-established.
	if d := e.dists[hi+b-1]; d > e.radii[j] {
		e.radii[j] = d
	}
	e.mut.bufIDs[j], e.mut.bufDists[j] = nil, nil
	e.mut.numBuffered -= b
	e.segMerges++
}

// Flush merges every pending insertion buffer into its sorted segment,
// leaving tombstones in place. After Flush the canonical layout holds
// the whole database again (tombstoned members included, still skipped
// by searches), so the index can be saved; with no tombstones it is
// fully pristine again. Answer-neutral.
func (e *Exact) Flush() {
	if e.mut != nil {
		for j := range e.mut.bufIDs {
			e.mergeSegment(j)
		}
	}
	e.dropCleanState()
}

// Delete tombstones the point with the given id. Deleting a
// representative's point removes it from results but keeps it as a
// routing landmark until Rebuild. Deleting an already-deleted or
// out-of-range id returns an error.
func (e *Exact) Delete(id int) error {
	if err := e.CheckDelete(id); err != nil {
		return err
	}
	e.ensureMutable()
	e.mut.deleted[id] = true
	e.mut.numDeleted++
	return nil
}

// CheckDelete reports whether Delete(id) would succeed, mutating
// nothing. Write-ahead callers validate through it before logging the
// delete, so a logged record always applies cleanly at replay.
func (e *Exact) CheckDelete(id int) error {
	if id < 0 || id >= e.db.N() {
		return fmt.Errorf("core: delete id %d out of range [0,%d)", id, e.db.N())
	}
	if e.mut != nil && e.mut.deleted[id] {
		return fmt.Errorf("core: id %d already deleted", id)
	}
	return nil
}

// isDeleted reports whether id is tombstoned (nil-safe).
func (e *Exact) isDeleted(id int) bool {
	return e.mut != nil && e.mut.deleted[id]
}

// Rebuild folds insertion buffers into the sorted, gathered layout and
// purges tombstones. Representatives are kept (including tombstoned ones,
// which continue to serve as routing landmarks but are excluded from
// results); radii are recomputed exactly.
func (e *Exact) Rebuild() {
	if e.mut == nil {
		return
	}
	nr := e.NumReps()
	dim := e.db.Dim
	// Merge each segment with its buffer, dropping tombstones.
	type member struct {
		id   int32
		dist float64
	}
	newOffsets := make([]int, nr+1)
	merged := make([][]member, nr)
	total := 0
	for j := 0; j < nr; j++ {
		lo, hi := e.offsets[j], e.offsets[j+1]
		ms := make([]member, 0, hi-lo+len(e.mut.bufIDs[j]))
		for p := lo; p < hi; p++ {
			if id := e.ids[p]; !e.mut.deleted[id] {
				ms = append(ms, member{id: id, dist: e.dists[p]})
			}
		}
		for i, id := range e.mut.bufIDs[j] {
			if !e.mut.deleted[id] {
				ms = append(ms, member{id: id, dist: e.mut.bufDists[j][i]})
			}
		}
		sort.Slice(ms, func(a, b int) bool {
			if ms[a].dist != ms[b].dist {
				return ms[a].dist < ms[b].dist
			}
			return ms[a].id < ms[b].id
		})
		merged[j] = ms
		total += len(ms)
		newOffsets[j+1] = total
	}
	ids := make([]int32, total)
	dists := make([]float64, total)
	gather := make([]float32, total*dim)
	for j := 0; j < nr; j++ {
		base := newOffsets[j]
		for i, m := range merged[j] {
			ids[base+i] = m.id
			dists[base+i] = m.dist
			copy(gather[(base+i)*dim:(base+i+1)*dim], e.db.Row(int(m.id)))
		}
		if len(merged[j]) > 0 {
			e.radii[j] = merged[j][len(merged[j])-1].dist
		} else {
			e.radii[j] = 0
		}
	}
	e.offsets = newOffsets
	e.ids = ids
	e.dists = dists
	e.gather = gather
	e.segMerges++
	// Tombstoned ids stay recorded (they remain unreturnable, and Live
	// still accounts for them) but the buffer bookkeeping resets.
	deleted := e.mut.deleted
	numDeleted := e.mut.numDeleted
	e.mut = &mutableState{
		bufIDs:     make([][]int32, nr),
		bufDists:   make([][]float64, nr),
		deleted:    deleted,
		numDeleted: numDeleted,
	}
	e.dropCleanState()
}

// liveGammas returns (γ_1, γ_k) computed over live representatives only,
// falling back to +Inf (no pruning) when every representative is
// tombstoned.
func (e *Exact) liveGammas(repDists []float64, k int, sc *par.Scratch) (float64, float64) {
	if e.mut == nil || e.mut.numDeleted == 0 {
		return kthSmallest(repDists, k, sc)
	}
	// Slot 5 (not 2): the caller's phase-1 brackets occupy slots 1–2 and
	// must stay live past this call; slot 5 is only re-carved afterwards
	// for the list-scan block buffer.
	live := sc.Float64(5, len(repDists))[:0]
	for j, d := range repDists {
		if !e.mut.deleted[e.repIDs[j]] {
			live = append(live, d)
		}
	}
	if len(live) == 0 {
		return math.Inf(1), math.Inf(1)
	}
	return kthSmallest(live, k, sc)
}

// scanBuffer feeds representative j's insertion-buffer members to h as
// ordering distances, and returns the number of distance evaluations.
// Under EarlyExit the buffer — ascending in (dist, id) like the segment —
// is clipped to the admissible window [wLo, wHi] by the same binary
// search the segment scan uses; the window lives in distance space, so
// callers derive it from the phase-1 distance bracket and it already
// absorbs the fast kernel's slack. buf is a caller-pooled buffer of
// length >= 1 (a local array here would escape through the kernel's
// interface dispatch).
func (e *Exact) scanBuffer(j int, q []float32, wLo, wHi float64, buf []float64, h func(id int, ord float64)) int64 {
	if e.mut == nil || len(e.mut.bufIDs[j]) == 0 {
		return 0
	}
	ids, ds := e.mut.bufIDs[j], e.mut.bufDists[j]
	lo, hi := 0, len(ids)
	if e.prm.EarlyExit {
		lo, hi = AdmissibleWindow(ds, wLo, wHi)
	}
	var evals int64
	out := buf[:1]
	for i := lo; i < hi; i++ {
		id := ids[i]
		if e.mut.deleted[id] {
			continue
		}
		// The kernel's ordering path, even for one row, so rounding matches
		// the gathered-scan and brute-force code paths bit for bit.
		e.ker.Ordering(q, e.db.Row(int(id)), e.db.Dim, out)
		evals++
		h(int(id), out[0])
	}
	return evals
}
