package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/metric"
	"repro/internal/par"
)

// Dynamic updates for the Exact index. The RBC is a static structure in
// the paper; production deployments need inserts and deletes without
// full rebuilds, and the cover's geometry makes both cheap:
//
//   - Insert routes the new point to its nearest representative (one
//     brute-force scan of R, exactly the build rule) and parks it on that
//     representative's *overflow* list; the radius ψ_r grows if needed,
//     so both pruning bounds remain sound.
//   - Delete tombstones a point; searches skip tombstoned ids. Radii are
//     left untouched — stale-high radii weaken pruning but never break
//     correctness.
//   - Rebuild folds overflows into the sorted gathered layout and purges
//     tombstones, restoring the canonical structure (same
//     representatives).
//
// Searches remain exact throughout: overflow members are scanned
// alongside their segment, and the γ thresholds are computed over live
// representatives only (deleted representatives still route, but no
// longer witness an upper bound).

// ErrDirtyIndex is wrapped by Save when un-rebuilt mutations exist.
var ErrDirtyIndex = fmt.Errorf("core: index has pending mutations; call Rebuild before Save")

// mutableState carries the update-related fields of Exact.
type mutableState struct {
	overflowIDs   [][]int32   // per-rep ids parked since the last rebuild
	overflowDists [][]float64 // matching distances to the representative
	deleted       []bool      // db id → tombstoned
	numDeleted    int
	numOverflow   int
}

func (e *Exact) ensureMutable() {
	if e.mut == nil {
		e.mut = &mutableState{
			overflowIDs:   make([][]int32, e.NumReps()),
			overflowDists: make([][]float64, e.NumReps()),
			deleted:       make([]bool, e.db.N()),
		}
	}
}

// Dirty reports whether the index holds mutations not yet folded in by
// Rebuild.
func (e *Exact) Dirty() bool {
	return e.mut != nil && (e.mut.numOverflow > 0 || e.mut.numDeleted > 0)
}

// Live reports the number of non-deleted points.
func (e *Exact) Live() int {
	n := e.db.N()
	if e.mut != nil {
		n -= e.mut.numDeleted
	}
	return n
}

// Insert appends p to the database and the index, returning its new id.
// The point is assigned to its nearest representative, as at build time.
// Cost: one scan of R plus O(1) bookkeeping.
func (e *Exact) Insert(p []float32) int {
	e.checkDim(len(p))
	e.ensureMutable()
	id := e.db.N()
	e.db.Append(p)
	e.isRep = append(e.isRep, false)
	e.mut.deleted = append(e.mut.deleted, false)

	nr := e.NumReps()
	dists := make([]float64, nr)
	metric.BatchDistances(e.m, p, e.repData.Data, e.db.Dim, dists)
	best := 0
	for j := 1; j < nr; j++ {
		if dists[j] < dists[best] {
			best = j
		}
	}
	e.mut.overflowIDs[best] = append(e.mut.overflowIDs[best], int32(id))
	e.mut.overflowDists[best] = append(e.mut.overflowDists[best], dists[best])
	e.mut.numOverflow++
	if dists[best] > e.radii[best] {
		e.radii[best] = dists[best]
	}
	return id
}

// Delete tombstones the point with the given id. Deleting a
// representative's point removes it from results but keeps it as a
// routing landmark until Rebuild. Deleting an already-deleted or
// out-of-range id returns an error.
func (e *Exact) Delete(id int) error {
	if id < 0 || id >= e.db.N() {
		return fmt.Errorf("core: delete id %d out of range [0,%d)", id, e.db.N())
	}
	e.ensureMutable()
	if e.mut.deleted[id] {
		return fmt.Errorf("core: id %d already deleted", id)
	}
	e.mut.deleted[id] = true
	e.mut.numDeleted++
	return nil
}

// isDeleted reports whether id is tombstoned (nil-safe).
func (e *Exact) isDeleted(id int) bool {
	return e.mut != nil && e.mut.deleted[id]
}

// Rebuild folds overflow lists into the sorted, gathered layout and
// purges tombstones. Representatives are kept (including tombstoned ones,
// which continue to serve as routing landmarks but are excluded from
// results); radii are recomputed exactly.
func (e *Exact) Rebuild() {
	if e.mut == nil {
		return
	}
	nr := e.NumReps()
	dim := e.db.Dim
	// Merge each segment with its overflow, dropping tombstones.
	type member struct {
		id   int32
		dist float64
	}
	newOffsets := make([]int, nr+1)
	merged := make([][]member, nr)
	total := 0
	for j := 0; j < nr; j++ {
		lo, hi := e.offsets[j], e.offsets[j+1]
		ms := make([]member, 0, hi-lo+len(e.mut.overflowIDs[j]))
		for p := lo; p < hi; p++ {
			if id := e.ids[p]; !e.mut.deleted[id] {
				ms = append(ms, member{id: id, dist: e.dists[p]})
			}
		}
		for i, id := range e.mut.overflowIDs[j] {
			if !e.mut.deleted[id] {
				ms = append(ms, member{id: id, dist: e.mut.overflowDists[j][i]})
			}
		}
		sort.Slice(ms, func(a, b int) bool {
			if ms[a].dist != ms[b].dist {
				return ms[a].dist < ms[b].dist
			}
			return ms[a].id < ms[b].id
		})
		merged[j] = ms
		total += len(ms)
		newOffsets[j+1] = total
	}
	ids := make([]int32, total)
	dists := make([]float64, total)
	gather := make([]float32, total*dim)
	for j := 0; j < nr; j++ {
		base := newOffsets[j]
		for i, m := range merged[j] {
			ids[base+i] = m.id
			dists[base+i] = m.dist
			copy(gather[(base+i)*dim:(base+i+1)*dim], e.db.Row(int(m.id)))
		}
		if len(merged[j]) > 0 {
			e.radii[j] = merged[j][len(merged[j])-1].dist
		} else {
			e.radii[j] = 0
		}
	}
	e.offsets = newOffsets
	e.ids = ids
	e.dists = dists
	e.gather = gather
	// Tombstoned ids stay recorded (they remain unreturnable) but the
	// overflow bookkeeping resets.
	deleted := e.mut.deleted
	numDeleted := e.mut.numDeleted
	e.mut = &mutableState{
		overflowIDs:   make([][]int32, nr),
		overflowDists: make([][]float64, nr),
		deleted:       deleted,
		numDeleted:    numDeleted,
	}
	e.mut.numOverflow = 0
	if numDeleted == 0 {
		e.mut = nil // fully clean: drop the mutable state entirely
	}
}

// liveGammas returns (γ_1, γ_k) computed over live representatives only,
// falling back to +Inf (no pruning) when every representative is
// tombstoned.
func (e *Exact) liveGammas(repDists []float64, k int, sc *par.Scratch) (float64, float64) {
	if e.mut == nil || e.mut.numDeleted == 0 {
		return kthSmallest(repDists, k, sc)
	}
	// Slot 5 (not 2): the caller's phase-1 brackets occupy slots 1–2 and
	// must stay live past this call; slot 5 is only re-carved afterwards
	// for the list-scan block buffer.
	live := sc.Float64(5, len(repDists))[:0]
	for j, d := range repDists {
		if !e.mut.deleted[e.repIDs[j]] {
			live = append(live, d)
		}
	}
	if len(live) == 0 {
		return math.Inf(1), math.Inf(1)
	}
	return kthSmallest(live, k, sc)
}

// scanOverflow feeds a representative's overflow members (respecting the
// admissible window [wLo, wHi], which lives in distance space — callers
// derive it from the phase-1 distance bracket, so it already absorbs the
// fast kernel's slack) to h as ordering distances, and returns the number
// of distance evaluations. buf is a caller-pooled buffer of length >= 1
// (a local array here would escape through the kernel's interface
// dispatch).
func (e *Exact) scanOverflow(j int, q []float32, wLo, wHi float64, buf []float64, h func(id int, ord float64)) int64 {
	if e.mut == nil || len(e.mut.overflowIDs[j]) == 0 {
		return 0
	}
	var evals int64
	out := buf[:1]
	for i, id := range e.mut.overflowIDs[j] {
		if e.mut.deleted[id] {
			continue
		}
		if e.prm.EarlyExit {
			od := e.mut.overflowDists[j][i]
			if od < wLo || od > wHi {
				continue
			}
		}
		// The kernel's ordering path, even for one row, so rounding matches
		// the gathered-scan and brute-force code paths bit for bit.
		e.ker.Ordering(q, e.db.Row(int(id)), e.db.Dim, out)
		evals++
		h(int(id), out[0])
	}
	return evals
}
