package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/metric"
)

func randomStrings(rng *rand.Rand, n, maxLen int) []string {
	const alphabet = "abcdef"
	out := make([]string, n)
	for i := range out {
		l := rng.Intn(maxLen) + 1
		b := make([]byte, l)
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		out[i] = string(b)
	}
	return out
}

func TestGenericExactEditDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := randomStrings(rng, 500, 12)
	m := metric.Edit{}
	g, err := BuildGenericExact(db, metric.Metric[string](m), ExactParams{Seed: 3, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := randomStrings(rng, 40, 12)
	got, st := g.Search(queries)
	want := bruteforce.SearchGeneric(queries, db, metric.Metric[string](m), nil)
	for i := range got {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("query %q: got %v want %v", queries[i], got[i].Dist, want[i].Dist)
		}
	}
	if st.TotalEvals() == 0 {
		t.Fatal("stats not recorded")
	}
}

func TestGenericExactGraphMetric(t *testing.T) {
	// Nodes of a random connected graph under shortest-path distance — the
	// paper's other non-vector example.
	rng := rand.New(rand.NewSource(2))
	const n = 150
	edges := make([]metric.GraphEdge, 0, n+60)
	for i := 0; i < n; i++ {
		edges = append(edges, metric.GraphEdge{U: i, V: (i + 1) % n, Weight: 1 + rng.Float64()})
	}
	for k := 0; k < 60; k++ {
		edges = append(edges, metric.GraphEdge{U: rng.Intn(n), V: rng.Intn(n), Weight: rng.Float64() * 5})
	}
	gm, err := metric.NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	// Database: a subset of nodes; queries: other nodes.
	db := make([]int, 0, 100)
	for i := 0; i < 100; i++ {
		db = append(db, i)
	}
	queries := make([]int, 0, 50)
	for i := 100; i < 150; i++ {
		queries = append(queries, i)
	}
	g, err := BuildGenericExact(db, metric.Metric[int](gm), ExactParams{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := g.Search(queries)
	want := bruteforce.SearchGeneric(queries, db, metric.Metric[int](gm), nil)
	for i := range got {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("node %d: got %v want %v", queries[i], got[i].Dist, want[i].Dist)
		}
	}
}

func TestGenericOneShotEditDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randomStrings(rng, 400, 10)
	m := metric.Edit{}
	g, err := BuildGenericOneShot(db, metric.Metric[string](m), OneShotParams{NumReps: 60, S: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumReps() == 0 {
		t.Fatal("no representatives")
	}
	queries := randomStrings(rng, 60, 10)
	got, st := g.Search(queries)
	want := bruteforce.SearchGeneric(queries, db, metric.Metric[string](m), nil)
	correct := 0
	for i := range got {
		if got[i].Dist < want[i].Dist {
			t.Fatalf("one-shot beat brute force — impossible")
		}
		if got[i].Dist == want[i].Dist {
			correct++
		}
	}
	// Edit distance on short strings has tiny intrinsic dimension; with
	// nr=s=60 on n=400 recall should be high.
	if recall := float64(correct) / float64(len(got)); recall < 0.8 {
		t.Fatalf("recall %.2f unexpectedly low", recall)
	}
	if st.PointEvals == 0 {
		t.Fatal("stats not recorded")
	}
}

func TestGenericBuildErrors(t *testing.T) {
	m := metric.Metric[string](metric.Edit{})
	if _, err := BuildGenericExact[string](nil, m, ExactParams{}); err == nil {
		t.Fatal("empty generic db should error")
	}
	if _, err := BuildGenericOneShot[string](nil, m, OneShotParams{}); err == nil {
		t.Fatal("empty generic db should error")
	}
}

func TestGenericExactIntPoints(t *testing.T) {
	// 1-D integer points under |a-b|: easy to verify by hand.
	m := metric.Func[int]{F: func(a, b int) float64 {
		d := a - b
		if d < 0 {
			d = -d
		}
		return float64(d)
	}, Label: "absdiff"}
	db := []int{0, 10, 20, 30, 40, 50}
	g, err := BuildGenericExact(db, metric.Metric[int](m), ExactParams{NumReps: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for q, wantID := range map[int]int{3: 0, 12: 1, 29: 3, 44: 4, 100: 5} {
		got, _ := g.One(q)
		if got.ID != wantID {
			t.Fatalf("q=%d: got id %d want %d", q, got.ID, wantID)
		}
	}
}

// Property: generic exact always equals generic brute force, across point
// types and parameters (here: strings with random sizes).
func TestQuickGenericExact(t *testing.T) {
	m := metric.Metric[string](metric.Edit{})
	f := func(seed int64, nrRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomStrings(rng, 120, 8)
		nr := int(nrRaw)%40 + 1
		g, err := BuildGenericExact(db, m, ExactParams{NumReps: nr, Seed: seed, EarlyExit: true})
		if err != nil {
			return false
		}
		q := randomStrings(rng, 1, 8)[0]
		got, _ := g.One(q)
		want := bruteforce.SearchOneGeneric(q, db, m, nil)
		return got.Dist == want.Dist
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAddAndString(t *testing.T) {
	a := Stats{RepEvals: 1, PointEvals: 2, RepsKept: 3, PrunedPsi: 4, PrunedTriple: 5}
	b := Stats{RepEvals: 10, PointEvals: 20, RepsKept: 30, PrunedPsi: 40, PrunedTriple: 50}
	a.Add(b)
	if a.RepEvals != 11 || a.PointEvals != 22 || a.RepsKept != 33 || a.PrunedPsi != 44 || a.PrunedTriple != 55 {
		t.Fatalf("Add: %+v", a)
	}
	if a.TotalEvals() != 33 {
		t.Fatalf("TotalEvals=%d", a.TotalEvals())
	}
	// Ensure the struct formats cleanly in reports.
	if s := fmt.Sprintf("%+v", a); s == "" {
		t.Fatal("unformattable")
	}
}
