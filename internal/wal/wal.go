// Package wal implements the write-ahead log behind durable mutable
// serving: an append-only file of Insert/Delete records that makes
// acknowledged mutations survive a process crash.
//
// # Format
//
// The file starts with an 8-byte header ("RBCW" + little-endian uint32
// version). Each record is a frame
//
//	uint32 payload length | uint32 CRC-32C(payload) | payload
//
// with the payload being an op byte followed by the op's body: an
// Insert carries dim little-endian float32 coordinates, a Delete an
// 8-byte little-endian id. All integers are little-endian.
//
// # Recovery contract
//
// Open replays the log front to back before accepting appends. The
// valid prefix is exactly the set of records whose frame is complete
// and whose CRC matches; the first torn or corrupt frame — a crash
// mid-append leaves at most one — ends the prefix, and everything from
// it onward is truncated from the file, not treated as fatal. Because
// records are framed and appended in order, the recovered prefix is
// always a prefix of the append history: a record is only ever lost
// together with everything after it.
//
// # Durability modes
//
// SyncAlways fsyncs before each Append returns, so an acknowledged
// mutation is durable. SyncInterval batches fsyncs on a background
// ticker (group commit): appends return after the buffered write, and
// a crash can lose up to SyncEvery of acknowledged tail — never a
// non-contiguous subset. SyncNone leaves flushing to the OS entirely.
// All modes preserve the prefix property above.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"time"
)

// Op identifies a record type.
type Op uint8

const (
	// OpInsert appends a point to the database and index.
	OpInsert Op = 1
	// OpDelete tombstones a point by id.
	OpDelete Op = 2
)

// Record is one replayed or appended mutation.
type Record struct {
	Op    Op
	Point []float32 // OpInsert: the inserted coordinates
	ID    int64     // OpDelete: the tombstoned id
}

// SyncMode selects when appends reach stable storage.
type SyncMode int

const (
	// SyncAlways fsyncs before each Append returns (acked == durable).
	SyncAlways SyncMode = iota
	// SyncInterval group-commits: a background ticker fsyncs every
	// SyncEvery while appends return after the buffered write.
	SyncInterval
	// SyncNone never fsyncs explicitly (OS page cache only).
	SyncNone
)

// ParseSyncMode maps the -wal-sync flag values onto a SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync mode %q (want always, interval or none)", s)
}

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncMode(%d)", int(m))
}

// Options configures Open.
type Options struct {
	Sync SyncMode
	// SyncEvery is the group-commit period for SyncInterval; <= 0
	// selects 2ms.
	SyncEvery time.Duration
	// FaultHook, when non-nil, intercepts every record frame just
	// before the file write and returns how many of its bytes to
	// actually persist. Returning m < len(frame) writes a torn frame —
	// exactly what a crash mid-append leaves on disk — syncs it, fails
	// the Append with ErrFaultInjected and poisons the log (every later
	// Append fails too, as after a real write error). Testing only: the
	// crash-recovery suite uses it to place torn tails deterministically.
	FaultHook func(frame []byte) int
}

// ReplayStats reports what Open recovered.
type ReplayStats struct {
	// Records is the number of valid records replayed.
	Records int
	// TruncatedBytes is the length of the torn/corrupt tail cut from
	// the file (0 for a cleanly closed log).
	TruncatedBytes int64
}

// Stats is a point-in-time snapshot of a Log's counters.
type Stats struct {
	Records  int64 // records currently in the log (replayed + appended - truncated)
	Appended int64 // records appended by this process
	Syncs    int64 // fsyncs issued by this process
	Bytes    int64 // current file size
}

var (
	// ErrClosed is returned by appends on a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrFaultInjected is returned by an Append whose frame the
	// FaultHook tore; the log is poisoned afterwards.
	ErrFaultInjected = errors.New("wal: injected write fault")
)

const (
	headerSize = 8
	frameHead  = 8 // uint32 length + uint32 crc
	// maxRecordBytes bounds one payload; a length field beyond it is
	// corruption, not a record (64 MiB ≈ a 16M-dim point).
	maxRecordBytes = 64 << 20
	walVersion     = 1
)

var (
	walMagic   = []byte{'R', 'B', 'C', 'W', walVersion, 0, 0, 0}
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// Log is an open write-ahead log. All methods are safe for concurrent
// use; appends serialize internally.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	opts   Options
	size   int64
	dirty  bool // bytes written since the last fsync
	failed error
	closed bool

	records  int64
	appended int64
	syncs    int64

	buf []byte // frame assembly buffer, reused under mu

	stopc chan struct{}
	wg    sync.WaitGroup
}

// Open recovers the log at path (creating it if absent), replays every
// valid record through apply in append order, truncates any torn or
// corrupt tail, and returns the log ready for appends. An error from
// apply aborts recovery — it means the records themselves are
// inconsistent with the state being rebuilt, which truncation cannot
// repair.
func Open(path string, opts Options, apply func(Record) error) (*Log, ReplayStats, error) {
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 2 * time.Millisecond
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, ReplayStats{}, err
	}
	st, size, err := recoverLog(f, apply)
	if err != nil {
		f.Close()
		return nil, st, err
	}
	l := &Log{
		f: f, path: path, opts: opts,
		size: size, records: int64(st.Records),
	}
	if opts.Sync == SyncInterval {
		l.stopc = make(chan struct{})
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, st, nil
}

// recoverLog validates the header, scans the frames, applies the valid
// prefix and truncates the rest. It returns the replay stats and the
// durable end offset.
func recoverLog(f *os.File, apply func(Record) error) (ReplayStats, int64, error) {
	var st ReplayStats
	info, err := f.Stat()
	if err != nil {
		return st, 0, err
	}
	size := info.Size()
	if size < headerSize {
		// Empty file, or a crash tore the header itself: any bytes
		// present must be a prefix of the magic (else this is not a
		// WAL), and the header is re-stamped whole.
		if size > 0 {
			head := make([]byte, size)
			if _, err := f.ReadAt(head, 0); err != nil {
				return st, 0, err
			}
			for i, b := range head {
				if b != walMagic[i] {
					return st, 0, fmt.Errorf("wal: not a WAL file (bad magic)")
				}
			}
			st.TruncatedBytes = size
		}
		if err := f.Truncate(0); err != nil {
			return st, 0, err
		}
		if _, err := f.WriteAt(walMagic, 0); err != nil {
			return st, 0, err
		}
		if err := f.Sync(); err != nil {
			return st, 0, err
		}
		return st, headerSize, nil
	}
	head := make([]byte, headerSize)
	if _, err := f.ReadAt(head, 0); err != nil {
		return st, 0, err
	}
	for i, b := range head {
		if b != walMagic[i] {
			return st, 0, fmt.Errorf("wal: not a WAL file (bad magic)")
		}
	}
	if _, err := f.Seek(headerSize, io.SeekStart); err != nil {
		return st, 0, err
	}
	off, records, err := scan(io.LimitReader(f, size-headerSize), apply)
	if err != nil {
		return st, 0, err
	}
	st.Records = records
	good := headerSize + off
	if good < size {
		st.TruncatedBytes = size - good
		if err := f.Truncate(good); err != nil {
			return st, 0, err
		}
		if err := f.Sync(); err != nil {
			return st, 0, err
		}
	}
	return st, good, nil
}

// scan reads frames from r (positioned after the header), calling apply
// for each valid record, and stops at the first torn or corrupt frame.
// It returns the byte length of the valid prefix and the record count.
// Only an apply error propagates; framing damage just ends the scan.
func scan(r io.Reader, apply func(Record) error) (int64, int, error) {
	var (
		off     int64
		records int
		hdr     [frameHead]byte
		payload []byte
	)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return off, records, nil // clean EOF or torn frame header
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if plen == 0 || plen > maxRecordBytes {
			return off, records, nil // corrupt length field
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, records, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return off, records, nil // corrupt payload
		}
		rec, ok := decodeRecord(payload)
		if !ok {
			return off, records, nil // CRC-valid but structurally foreign
		}
		if apply != nil {
			if err := apply(rec); err != nil {
				return off, records, fmt.Errorf("wal: applying record %d: %w", records, err)
			}
		}
		off += frameHead + int64(plen)
		records++
	}
}

func decodeRecord(payload []byte) (Record, bool) {
	switch Op(payload[0]) {
	case OpInsert:
		body := payload[1:]
		if len(body) == 0 || len(body)%4 != 0 {
			return Record{}, false
		}
		p := make([]float32, len(body)/4)
		for i := range p {
			p[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
		}
		return Record{Op: OpInsert, Point: p}, true
	case OpDelete:
		if len(payload) != 9 {
			return Record{}, false
		}
		return Record{Op: OpDelete, ID: int64(binary.LittleEndian.Uint64(payload[1:]))}, true
	}
	return Record{}, false
}

// ReadRecords scans the log at path without opening it for appends and
// without truncating: it returns the valid record prefix and what a
// recovery would report. Useful for inspection and for crash tests that
// need the durable history before recovering it.
func ReadRecords(path string) ([]Record, ReplayStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, ReplayStats{}, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, ReplayStats{}, err
	}
	var st ReplayStats
	if info.Size() < headerSize {
		st.TruncatedBytes = info.Size()
		return nil, st, nil
	}
	head := make([]byte, headerSize)
	if _, err := f.ReadAt(head, 0); err != nil {
		return nil, st, err
	}
	for i, b := range head {
		if b != walMagic[i] {
			return nil, st, fmt.Errorf("wal: not a WAL file (bad magic)")
		}
	}
	if _, err := f.Seek(headerSize, io.SeekStart); err != nil {
		return nil, st, err
	}
	var recs []Record
	off, n, err := scan(f, func(r Record) error { recs = append(recs, r); return nil })
	if err != nil {
		return nil, st, err
	}
	st.Records = n
	st.TruncatedBytes = info.Size() - headerSize - off
	return recs, st, nil
}

// AppendInsert logs the insertion of p. Under SyncAlways the record is
// durable when this returns.
func (l *Log) AppendInsert(p []float32) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	payload := l.carve(1 + 4*len(p))
	payload[0] = byte(OpInsert)
	for i, v := range p {
		binary.LittleEndian.PutUint32(payload[1+4*i:], math.Float32bits(v))
	}
	return l.appendLocked(payload)
}

// AppendDelete logs the tombstoning of id.
func (l *Log) AppendDelete(id int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	payload := l.carve(9)
	payload[0] = byte(OpDelete)
	binary.LittleEndian.PutUint64(payload[1:], uint64(id))
	return l.appendLocked(payload)
}

// carve returns the payload region of l.buf sized for n payload bytes,
// with the frame header space reserved in front.
func (l *Log) carve(n int) []byte {
	need := frameHead + n
	if cap(l.buf) < need {
		l.buf = make([]byte, need)
	}
	l.buf = l.buf[:need]
	return l.buf[frameHead:]
}

func (l *Log) appendLocked(payload []byte) error {
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return l.failed
	}
	frame := l.buf
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	if h := l.opts.FaultHook; h != nil {
		if m := h(frame); m >= 0 && m < len(frame) {
			// Persist the torn prefix like a crash would, then poison.
			_, _ = l.f.WriteAt(frame[:m], l.size)
			_ = l.f.Sync()
			l.failed = ErrFaultInjected
			return l.failed
		}
	}
	if _, err := l.f.WriteAt(frame, l.size); err != nil {
		l.failed = fmt.Errorf("wal: append: %w", err)
		return l.failed
	}
	l.size += int64(len(frame))
	l.records++
	l.appended++
	l.dirty = true
	if l.opts.Sync == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

// Sync forces an fsync of all buffered appends.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.failed = fmt.Errorf("wal: sync: %w", err)
		return l.failed
	}
	l.dirty = false
	l.syncs++
	return nil
}

// Truncate discards every record — the snapshot barrier. Callers must
// have made the state covered by those records durable first (snapshot
// written and renamed); the truncation itself is fsynced before
// returning, so a crash cannot resurrect pre-barrier records.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return l.failed
	}
	if err := l.f.Truncate(headerSize); err != nil {
		l.failed = fmt.Errorf("wal: truncate: %w", err)
		return l.failed
	}
	if err := l.f.Sync(); err != nil {
		l.failed = fmt.Errorf("wal: truncate sync: %w", err)
		return l.failed
	}
	l.size = headerSize
	l.records = 0
	l.dirty = false
	l.syncs++
	return nil
}

// Stats returns the current counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Records: l.records, Appended: l.appended, Syncs: l.syncs, Bytes: l.size}
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close syncs buffered appends and closes the file. Further appends
// return ErrClosed. Safe to call twice.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stopc := l.stopc
	l.mu.Unlock()
	if stopc != nil {
		close(stopc)
		l.wg.Wait()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.dirty && l.failed == nil {
		if serr := l.f.Sync(); serr == nil {
			l.dirty = false
			l.syncs++
		} else {
			err = serr
		}
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncLoop is the SyncInterval group-commit ticker.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stopc:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.failed == nil {
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}
