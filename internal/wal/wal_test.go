package wal

import (
	"bytes"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wal.log")
}

func mustOpen(t *testing.T, path string, opts Options) (*Log, ReplayStats) {
	t.Helper()
	var recs []Record
	l, st, err := Open(path, opts, func(r Record) error { recs = append(recs, r); return nil })
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, st
}

func appendOps(t *testing.T, l *Log, ops []Record) {
	t.Helper()
	for i, op := range ops {
		var err error
		switch op.Op {
		case OpInsert:
			err = l.AppendInsert(op.Point)
		case OpDelete:
			err = l.AppendDelete(int(op.ID))
		}
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func randOps(rng *rand.Rand, n, dim int) []Record {
	ops := make([]Record, n)
	for i := range ops {
		if rng.Intn(3) == 0 {
			ops[i] = Record{Op: OpDelete, ID: int64(rng.Intn(1000))}
			continue
		}
		p := make([]float32, dim)
		for j := range p {
			p[j] = float32(rng.Intn(17)-8) * 0.5
		}
		ops[i] = Record{Op: OpInsert, Point: p}
	}
	return ops
}

func recordsEqual(a, b Record) bool {
	if a.Op != b.Op || a.ID != b.ID || len(a.Point) != len(b.Point) {
		return false
	}
	for i := range a.Point {
		if math.Float32bits(a.Point[i]) != math.Float32bits(b.Point[i]) {
			return false
		}
	}
	return true
}

func assertRecords(t *testing.T, label string, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !recordsEqual(got[i], want[i]) {
			t.Fatalf("%s record %d: %+v want %+v", label, i, got[i], want[i])
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncInterval, SyncNone} {
		t.Run(mode.String(), func(t *testing.T) {
			path := tmpLog(t)
			rng := rand.New(rand.NewSource(int64(mode) + 1))
			ops := randOps(rng, 57, 4)
			l, st := mustOpen(t, path, Options{Sync: mode, SyncEvery: time.Millisecond})
			if st.Records != 0 || st.TruncatedBytes != 0 {
				t.Fatalf("fresh log replayed %+v", st)
			}
			appendOps(t, l, ops)
			ls := l.Stats()
			if ls.Records != int64(len(ops)) || ls.Appended != int64(len(ops)) {
				t.Fatalf("stats %+v after %d appends", ls, len(ops))
			}
			if mode == SyncAlways && ls.Syncs < int64(len(ops)) {
				t.Fatalf("SyncAlways issued %d syncs for %d appends", ls.Syncs, len(ops))
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("double close: %v", err)
			}
			if err := l.AppendDelete(1); !errors.Is(err, ErrClosed) {
				t.Fatalf("append after close: %v", err)
			}

			var got []Record
			l2, st2, err := Open(path, Options{}, func(r Record) error { got = append(got, r); return nil })
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if st2.Records != len(ops) || st2.TruncatedBytes != 0 {
				t.Fatalf("replay %+v, want %d records clean", st2, len(ops))
			}
			assertRecords(t, "replay", got, ops)

			// Non-mutating inspection agrees.
			inspect, ist, err := ReadRecords(path)
			if err != nil {
				t.Fatal(err)
			}
			if ist.Records != len(ops) || ist.TruncatedBytes != 0 {
				t.Fatalf("ReadRecords stats %+v", ist)
			}
			assertRecords(t, "ReadRecords", inspect, ops)
		})
	}
}

// A torn append at EVERY byte boundary of the frame must truncate to
// exactly the previously durable prefix — never lose an earlier record,
// never resurrect a partial one.
func TestWALTornTailEveryOffset(t *testing.T) {
	base := []Record{
		{Op: OpInsert, Point: []float32{1, 2, 3}},
		{Op: OpDelete, ID: 7},
		{Op: OpInsert, Point: []float32{-0.5, 4.25, 8}},
	}
	// Frame size of the record we tear: 8 header + 1 op + 12 coords.
	const frameLen = 8 + 1 + 12
	for cut := 0; cut < frameLen; cut++ {
		path := tmpLog(t)
		torn := 0
		l, _, err := Open(path, Options{Sync: SyncAlways, FaultHook: func(frame []byte) int {
			if torn++; torn <= len(base) {
				return len(frame) // earlier appends go through whole
			}
			return cut
		}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		appendOps(t, l, base)
		if err := l.AppendInsert([]float32{9, 9, 9}); !errors.Is(err, ErrFaultInjected) {
			t.Fatalf("cut=%d: torn append returned %v", cut, err)
		}
		// The log is poisoned after a write fault.
		if err := l.AppendDelete(1); !errors.Is(err, ErrFaultInjected) {
			t.Fatalf("cut=%d: poisoned append returned %v", cut, err)
		}
		l.Close()

		var got []Record
		l2, st, err := Open(path, Options{}, func(r Record) error { got = append(got, r); return nil })
		if err != nil {
			t.Fatalf("cut=%d: recovery: %v", cut, err)
		}
		if st.Records != len(base) {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, st.Records, len(base))
		}
		if cut > 0 && st.TruncatedBytes != int64(cut) {
			t.Fatalf("cut=%d: truncated %d bytes", cut, st.TruncatedBytes)
		}
		assertRecords(t, "recovered", got, base)
		// The file is clean again: appends after recovery round-trip.
		if err := l2.AppendDelete(42); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		l2.Close()
		recs, _, err := ReadRecords(path)
		if err != nil {
			t.Fatal(err)
		}
		assertRecords(t, "after recovery append", recs, append(append([]Record{}, base...), Record{Op: OpDelete, ID: 42}))
	}
}

// Corrupting a byte anywhere in a middle record's frame truncates the
// log at that record: recovery keeps the prefix before it and is never
// fatal (prefix semantics — later records are sacrificed, not resurrected
// out of order).
func TestWALCorruptCRCTruncatesAtRecord(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ops := randOps(rng, 10, 3)
	path := tmpLog(t)
	l, _ := mustOpen(t, path, Options{Sync: SyncAlways})
	appendOps(t, l, ops)
	l.Close()
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Frame offsets of each record.
	offs := []int{headerSize}
	for i := 0; i < len(ops); i++ {
		plen := int(uint32(clean[offs[i]]) | uint32(clean[offs[i]+1])<<8 | uint32(clean[offs[i]+2])<<16 | uint32(clean[offs[i]+3])<<24)
		offs = append(offs, offs[i]+frameHead+plen)
	}
	for rec := 0; rec < len(ops); rec += 3 {
		// Flip a payload byte of record rec.
		dirty := append([]byte(nil), clean...)
		dirty[offs[rec]+frameHead] ^= 0x40
		if err := os.WriteFile(path, dirty, 0o644); err != nil {
			t.Fatal(err)
		}
		var got []Record
		l2, st, err := Open(path, Options{}, func(r Record) error { got = append(got, r); return nil })
		if err != nil {
			t.Fatalf("rec=%d: recovery: %v", rec, err)
		}
		l2.Close()
		if st.Records != rec {
			t.Fatalf("rec=%d: recovered %d records", rec, st.Records)
		}
		if st.TruncatedBytes != int64(len(clean)-offs[rec]) {
			t.Fatalf("rec=%d: truncated %d bytes, want %d", rec, st.TruncatedBytes, len(clean)-offs[rec])
		}
		assertRecords(t, "prefix", got, ops[:rec])
	}
	// A corrupt length field is handled the same way (it cannot be
	// trusted to frame anything).
	dirty := append([]byte(nil), clean...)
	dirty[offs[2]+3] = 0xff // length becomes > maxRecordBytes
	if err := os.WriteFile(path, dirty, 0o644); err != nil {
		t.Fatal(err)
	}
	_, st, err := ReadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 2 {
		t.Fatalf("corrupt length: %d records, want 2", st.Records)
	}
}

func TestWALTruncateBarrier(t *testing.T) {
	path := tmpLog(t)
	l, _ := mustOpen(t, path, Options{Sync: SyncAlways})
	appendOps(t, l, []Record{{Op: OpDelete, ID: 1}, {Op: OpDelete, ID: 2}})
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Records != 0 || st.Bytes != headerSize {
		t.Fatalf("post-truncate stats %+v", st)
	}
	// Records appended after the barrier are the only ones recovered.
	post := []Record{{Op: OpInsert, Point: []float32{1}}, {Op: OpDelete, ID: 3}}
	appendOps(t, l, post)
	l.Close()
	got, st, err := ReadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != len(post) || st.TruncatedBytes != 0 {
		t.Fatalf("post-barrier replay %+v", st)
	}
	assertRecords(t, "post-barrier", got, post)
}

func TestWALTornHeaderResets(t *testing.T) {
	path := tmpLog(t)
	// A crash during the very first header write leaves a magic prefix.
	if err := os.WriteFile(path, walMagic[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	l, st := mustOpen(t, path, Options{})
	if st.Records != 0 || st.TruncatedBytes != 3 {
		t.Fatalf("torn header replay %+v", st)
	}
	if err := l.AppendDelete(5); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, _, err := ReadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	assertRecords(t, "after header reset", got, []Record{{Op: OpDelete, ID: 5}})
}

func TestWALRejectsForeignFile(t *testing.T) {
	path := tmpLog(t)
	if err := os.WriteFile(path, []byte("definitely not a WAL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, Options{}, nil); err == nil {
		t.Fatal("foreign file accepted")
	}
	if _, _, err := ReadRecords(path); err == nil {
		t.Fatal("foreign file accepted by ReadRecords")
	}
}

func TestWALApplyErrorAborts(t *testing.T) {
	path := tmpLog(t)
	l, _ := mustOpen(t, path, Options{Sync: SyncAlways})
	appendOps(t, l, []Record{{Op: OpDelete, ID: 1}})
	l.Close()
	wantErr := errors.New("index said no")
	if _, _, err := Open(path, Options{}, func(Record) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("apply error not propagated: %v", err)
	}
}

// A CRC-valid frame whose payload is structurally foreign (unknown op,
// misaligned insert body) ends the prefix like corruption does.
func TestWALStructurallyForeignPayload(t *testing.T) {
	for _, payload := range [][]byte{
		{0x7f, 1, 2, 3},           // unknown op
		{byte(OpInsert), 1, 2, 3}, // 3 coord bytes: not a float32 multiple
		{byte(OpDelete), 1, 2, 3}, // delete body must be 8 bytes
	} {
		path := tmpLog(t)
		l, _ := mustOpen(t, path, Options{Sync: SyncAlways})
		appendOps(t, l, []Record{{Op: OpDelete, ID: 9}})
		l.Close()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var frame bytes.Buffer
		var hdr [8]byte
		hdr[0] = byte(len(payload))
		crc := crc32.Checksum(payload, castagnoli)
		hdr[4], hdr[5], hdr[6], hdr[7] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
		frame.Write(hdr[:])
		frame.Write(payload)
		if err := os.WriteFile(path, append(raw, frame.Bytes()...), 0o644); err != nil {
			t.Fatal(err)
		}
		got, st, err := ReadRecords(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Records != 1 || len(got) != 1 {
			t.Fatalf("payload %v: recovered %d records, want 1", payload, st.Records)
		}
	}
}
