package dataset

import (
	"math/rand"

	"repro/internal/vec"
)

// Stream generates dataset rows one at a time, for corpora large enough
// (n ≥ 1M) that the batch generate-then-Subset pattern hurts: workload()
// materializes n+nq rows and then copies the two splits out, so its peak
// footprint is roughly twice the data. A Stream writes each row straight
// into its destination — the peak is the destination itself.
//
// Streams are deterministic in (dim, seed) and draw in the same order as
// their batch counterparts, so the first n rows of a stream are
// bit-identical to the batch generator's rows 0..n-1 (asserted in
// tests); splitting a stream therefore reproduces workload()'s held-out
// query semantics exactly.
type Stream struct {
	dim  int
	rng  *rand.Rand
	next func(rng *rand.Rand, row []float32)
}

// UniformStream streams the UniformCube generator: rows uniform in
// [0,1]^dim.
func UniformStream(dim int, seed int64) *Stream {
	return &Stream{
		dim: dim,
		rng: rand.New(rand.NewSource(seed)),
		next: func(rng *rand.Rand, row []float32) {
			for j := range row {
				row[j] = rng.Float32()
			}
		},
	}
}

// Dim reports the row width.
func (s *Stream) Dim() int { return s.dim }

// Next writes the next row into row, which must have length Dim.
func (s *Stream) Next(row []float32) { s.next(s.rng, row) }

// Fill appends the next n rows of the stream to d, generating directly
// into d's backing storage (no per-row temporaries beyond one row
// buffer, no reallocation when d has capacity).
func (s *Stream) Fill(d *vec.Dataset, n int) {
	row := make([]float32, s.dim)
	for i := 0; i < n; i++ {
		s.next(s.rng, row)
		d.Append(row)
	}
}

// Split materializes the next n rows as a database and the nq rows after
// them as a query set — the streaming equivalent of harness workload()
// (queries held out of the database, same distribution), allocating
// exactly the two destinations.
func (s *Stream) Split(n, nq int) (db, queries *vec.Dataset) {
	db = vec.New(s.dim, n)
	s.Fill(db, n)
	queries = vec.New(s.dim, nq)
	s.Fill(queries, nq)
	return db, queries
}
