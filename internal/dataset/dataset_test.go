package dataset

import (
	"math"
	"testing"

	"repro/internal/expansion"
	"repro/internal/metric"
	"repro/internal/vec"
)

func checkBasic(t *testing.T, d *vec.Dataset, n, dim int) {
	t.Helper()
	if d.N() != n || d.Dim != dim {
		t.Fatalf("got %dx%d, want %dx%d", d.N(), d.Dim, n, dim)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorShapes(t *testing.T) {
	checkBasic(t, Bio(300, 1), 300, BioDim)
	checkBasic(t, Covertype(300, 1), 300, CovertypeDim)
	checkBasic(t, Physics(300, 1), 300, PhysicsDim)
	checkBasic(t, Robot(300, 1), 300, RobotDim)
	checkBasic(t, TinyImages(300, 8, 1), 300, 8)
	checkBasic(t, UniformCube(300, 5, 1), 300, 5)
	checkBasic(t, GaussianClusters(300, 5, 4, 0.2, 1), 300, 5)
	checkBasic(t, Manifold(300, 3, 12, 0.05, 1), 300, 12)
}

func TestDeterminism(t *testing.T) {
	for name, gen := range map[string]func(int, int64) *vec.Dataset{
		"bio":   Bio,
		"robot": Robot,
		"tiny8": func(n int, s int64) *vec.Dataset { return TinyImages(n, 8, s) },
	} {
		a := gen(200, 42)
		b := gen(200, 42)
		if !a.Equal(b) {
			t.Fatalf("%s: same seed produced different data", name)
		}
		c := gen(200, 43)
		if a.Equal(c) {
			t.Fatalf("%s: different seeds produced identical data", name)
		}
	}
}

func TestCovertypeQuantizedColumns(t *testing.T) {
	d := Covertype(150, 7)
	for i := 0; i < d.N(); i++ {
		row := d.Row(i)
		for j := 10; j < CovertypeDim; j++ {
			if row[j] != 0 && row[j] != 1 {
				t.Fatalf("row %d col %d = %v, want binary", i, j, row[j])
			}
		}
	}
}

func TestRobotPhysicalStructure(t *testing.T) {
	d := Robot(500, 3)
	// Columns 0-6 are joint angles from bounded sinusoids: |q| must stay
	// below the sum of amplitudes (≈ 2·(1+1/2+1/3)).
	for i := 0; i < d.N(); i++ {
		row := d.Row(i)
		for j := 0; j < 7; j++ {
			if math.Abs(float64(row[j])) > 4 {
				t.Fatalf("joint angle %v out of physical range", row[j])
			}
		}
	}
}

func TestIntrinsicDimensionOrdering(t *testing.T) {
	// The substitution contract (DESIGN.md): covertype must have lower
	// intrinsic dimension than physics, and tiny4 lower than tiny32.
	opts := expansion.Options{Samples: 16, Seed: 9}
	m := metric.Euclidean{}
	cov := expansion.Vectors(Covertype(1200, 5), m, opts)
	phy := expansion.Vectors(Physics(1200, 5), m, opts)
	if cov.Dim >= phy.Dim {
		t.Fatalf("covertype dim %v should be below physics dim %v", cov.Dim, phy.Dim)
	}
	t4 := expansion.Vectors(TinyImages(1200, 4, 5), m, opts)
	t32 := expansion.Vectors(TinyImages(1200, 32, 5), m, opts)
	if t4.Dim >= t32.Dim {
		t.Fatalf("tiny4 dim %v should be below tiny32 dim %v", t4.Dim, t32.Dim)
	}
}

func TestRandomProjectionPreservesDistances(t *testing.T) {
	// JL: projecting 256-dim data to 64 dims preserves pairwise distances
	// within a modest distortion for most pairs.
	src := tinyPatches(60, 11)
	proj := RandomProjection(src, 64, 13)
	m := metric.Euclidean{}
	var worst float64
	bad := 0
	for i := 0; i < 30; i++ {
		a, b := 2*i, 2*i+1
		orig := m.Distance(src.Row(a), src.Row(b))
		mapped := m.Distance(proj.Row(a), proj.Row(b))
		if orig == 0 {
			continue
		}
		ratio := mapped / orig
		if ratio < 0.6 || ratio > 1.4 {
			bad++
		}
		if r := math.Abs(ratio - 1); r > worst {
			worst = r
		}
	}
	if bad > 3 {
		t.Fatalf("%d/30 pairs distorted beyond 40%% (worst %.2f)", bad, worst)
	}
}

func TestRandomProjectionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("outDim=0 should panic")
		}
	}()
	RandomProjection(UniformCube(10, 4, 1), 0, 1)
}

func TestTinyImagesPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("outDim=0 should panic")
		}
	}()
	TinyImages(10, 0, 1)
}

func TestCatalog(t *testing.T) {
	cat := Catalog()
	if len(cat) != 8 {
		t.Fatalf("catalog has %d entries, want 8", len(cat))
	}
	wantDims := map[string]int{
		"bio": BioDim, "cov": CovertypeDim, "phy": PhysicsDim, "robot": RobotDim,
		"tiny4": 4, "tiny8": 8, "tiny16": 16, "tiny32": 32,
	}
	for _, e := range cat {
		want, ok := wantDims[e.Name]
		if !ok {
			t.Fatalf("unexpected entry %q", e.Name)
		}
		if e.Dim != want {
			t.Fatalf("%s dim=%d want %d", e.Name, e.Dim, want)
		}
		d := e.Generate(64, 1)
		if d.N() != 64 || d.Dim != e.Dim {
			t.Fatalf("%s generated %dx%d", e.Name, d.N(), d.Dim)
		}
	}
}

func TestByName(t *testing.T) {
	e, err := ByName("robot")
	if err != nil || e.Name != "robot" {
		t.Fatalf("ByName(robot): %v %v", e, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestScaledN(t *testing.T) {
	e, _ := ByName("bio")
	if got := e.ScaledN(0.01); got != 2000 {
		t.Fatalf("ScaledN(0.01)=%d", got)
	}
	if got := e.ScaledN(0.0000001); got != 256 {
		t.Fatalf("floor: %d", got)
	}
}

func TestGaussianClustersAreClustered(t *testing.T) {
	d := GaussianClusters(400, 6, 3, 0.1, 21)
	// With spread 0.1 and centers in [-10,10], most nearest-neighbor
	// distances should be tiny compared to the data diameter.
	m := metric.Euclidean{}
	small := 0
	for i := 0; i < 50; i++ {
		best := math.Inf(1)
		for j := 0; j < d.N(); j++ {
			if j == i {
				continue
			}
			if dd := m.Distance(d.Row(i), d.Row(j)); dd < best {
				best = dd
			}
		}
		if best < 1 {
			small++
		}
	}
	if small < 45 {
		t.Fatalf("only %d/50 points have close neighbors; not clustered", small)
	}
}
