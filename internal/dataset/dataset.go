// Package dataset generates the synthetic equivalents of the paper's five
// evaluation workloads (Table 1). The originals (UCI Bio/Covertype/
// Physics, a Barrett WAM robot-arm log, and the Tiny Images descriptors)
// are not redistributable here, so each generator reproduces what actually
// matters for RBC behaviour: the ambient dimension and the *intrinsic*
// dimension (expansion rate) ordering of the originals — covertype lowest,
// physics highest — as documented in DESIGN.md.
//
// All generators are deterministic in (n, seed).
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/vec"
)

// Paper dimensions (Table 1).
const (
	BioDim       = 74
	CovertypeDim = 54
	PhysicsDim   = 78
	RobotDim     = 21
)

// Paper dataset sizes (Table 1), used as the scale=1 reference.
const (
	BioN       = 200_000
	CovertypeN = 500_000
	PhysicsN   = 100_000
	RobotN     = 2_000_000
	TinyImN    = 10_000_000
)

// UniformCube draws n points uniformly from [0,1]^dim — the worst case
// for intrinsic-dimension methods (c grows with dim).
func UniformCube(n, dim int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := vec.New(dim, n)
	row := make([]float32, dim)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Float32()
		}
		d.Append(row)
	}
	return d
}

// GaussianClusters draws n points from k spherical Gaussian clusters with
// the given in-cluster standard deviation; centers are spread in
// [-10,10]^dim. Low k and small spread give low intrinsic dimension.
func GaussianClusters(n, dim, k int, spread float64, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = rng.Float64()*20 - 10
		}
	}
	d := vec.New(dim, n)
	row := make([]float32, dim)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(k)]
		for j := range row {
			row[j] = float32(c[j] + rng.NormFloat64()*spread)
		}
		d.Append(row)
	}
	return d
}

// Manifold embeds an intrinsically latentDim-dimensional point set into
// ambientDim dimensions through a random smooth nonlinear map (a random
// Fourier-feature style expansion), plus isotropic observation noise. This
// is the generic "looks high-dimensional, is governed by a few parameters"
// structure the intrinsic-dimensionality literature studies.
func Manifold(n, latentDim, ambientDim int, noise float64, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	// Random map: y_j = a_j * sin(<w_j, z> + b_j), frequencies O(1) so the
	// map is smooth (bi-Lipschitz on the latent cube w.h.p.).
	w := make([][]float64, ambientDim)
	b := make([]float64, ambientDim)
	a := make([]float64, ambientDim)
	for j := 0; j < ambientDim; j++ {
		w[j] = make([]float64, latentDim)
		for l := range w[j] {
			w[j][l] = rng.NormFloat64()
		}
		b[j] = rng.Float64() * 2 * math.Pi
		a[j] = 0.5 + rng.Float64()
	}
	d := vec.New(ambientDim, n)
	row := make([]float32, ambientDim)
	z := make([]float64, latentDim)
	for i := 0; i < n; i++ {
		for l := range z {
			z[l] = rng.Float64() * 2
		}
		for j := 0; j < ambientDim; j++ {
			dot := b[j]
			for l := range z {
				dot += w[j][l] * z[l]
			}
			row[j] = float32(a[j]*math.Sin(dot) + rng.NormFloat64()*noise)
		}
		d.Append(row)
	}
	return d
}

// Bio mimics the UCI Bio benchmark: 74 ambient dimensions of correlated
// protein-homology features with moderate intrinsic dimension — above
// covertype, below physics, matching the orderings reported for the UCI
// trio.
func Bio(n int, seed int64) *vec.Dataset {
	return Manifold(n, 6, BioDim, 0.02, seed^0xb10)
}

// Covertype mimics the UCI Covertype benchmark: 54 ambient dimensions
// with very low intrinsic dimension (the paper notes its low intrinsic
// dimensionality as the reason the cover tree wins on it). We use a
// 4-dimensional latent space and quantize a block of coordinates to
// mirror its many categorical/binary columns.
func Covertype(n int, seed int64) *vec.Dataset {
	d := Manifold(n, 4, CovertypeDim, 0.01, seed^0xc04e)
	// Quantize the last 44 coordinates to two levels, like the soil-type
	// and wilderness-area indicator columns of the original.
	for i := 0; i < d.N(); i++ {
		row := d.Row(i)
		for j := 10; j < CovertypeDim; j++ {
			if row[j] > 0 {
				row[j] = 1
			} else {
				row[j] = 0
			}
		}
	}
	return d
}

// Physics mimics the UCI Physics (quantum physics) benchmark: 78 ambient
// dimensions, the highest intrinsic dimension of the UCI trio.
func Physics(n int, seed int64) *vec.Dataset {
	return Manifold(n, 8, PhysicsDim, 0.05, seed^0x9127)
}

// Robot simulates the Barrett WAM inverse-dynamics workload: a 7-joint
// arm following smooth excitation trajectories. Each sample is the
// 21-dimensional tuple (q, q̇, τ) of joint angles, velocities and torques
// from a toy rigid-body model — intrinsically low-dimensional because the
// trajectories are smooth functions of time and a few phase parameters.
func Robot(n int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed ^ 0x40b07))
	const joints = 7
	d := vec.New(RobotDim, n)

	// A handful of excitation trajectories. All joints of a trajectory
	// share one base frequency (with harmonics 1f, 2f, 3f), so each
	// trajectory is a closed one-dimensional loop in state space — the
	// low-intrinsic-dimension structure that makes real robot logs
	// index-friendly. Incommensurate per-joint frequencies would instead
	// wind densely around a 7-torus and destroy that structure.
	const (
		trajectories = 12
		harmonics    = 3
	)
	type traj struct {
		baseFreq   float64
		amp, phase [joints][harmonics]float64
	}
	trajs := make([]traj, trajectories)
	for t := range trajs {
		trajs[t].baseFreq = 0.2 + rng.Float64()*0.4 // Hz
		for j := 0; j < joints; j++ {
			for h := 0; h < harmonics; h++ {
				trajs[t].amp[j][h] = (rng.Float64() - 0.5) * 2 / float64(h+1)
				trajs[t].phase[j][h] = rng.Float64() * 2 * math.Pi
			}
		}
	}
	// Toy dynamics constants per joint: inertia, viscous friction, gravity
	// loading (decreasing along the chain, as on a real arm).
	var inertia, viscous, gravity [joints]float64
	for j := 0; j < joints; j++ {
		inertia[j] = 2.5 / float64(j+1)
		viscous[j] = 0.4 + 0.1*float64(j)
		gravity[j] = 9.81 * (1.5 - 0.18*float64(j))
	}
	// Feature scaling keeps the three blocks (rad, rad/s, Nm) at
	// comparable magnitude so no block dominates the Euclidean metric.
	const velScale, tauScale = 0.15, 0.02

	row := make([]float32, RobotDim)
	for i := 0; i < n; i++ {
		tr := &trajs[rng.Intn(trajectories)]
		tm := rng.Float64() * 20 // seconds along the trajectory
		for j := 0; j < joints; j++ {
			var q, qd, qdd float64
			for h := 0; h < harmonics; h++ {
				w := 2 * math.Pi * tr.baseFreq * float64(h+1)
				arg := w*tm + tr.phase[j][h]
				q += tr.amp[j][h] * math.Sin(arg)
				qd += tr.amp[j][h] * w * math.Cos(arg)
				qdd += -tr.amp[j][h] * w * w * math.Sin(arg)
			}
			tau := inertia[j]*qdd + viscous[j]*qd + gravity[j]*math.Sin(q)
			row[j] = float32(q)
			row[joints+j] = float32(qd * velScale)
			row[2*joints+j] = float32(tau * tauScale)
		}
		d.Append(row)
	}
	return d
}

// TinyImages mimics the Tiny Images descriptor workload: synthetic
// natural-image-like 16×16 patches (1/f amplitude spectrum, the standard
// natural-image statistics model) whose 256-dim pixel vectors are reduced
// to outDim ∈ {4,8,16,32} dimensions by random projection — the same
// preprocessing pipeline the paper applies.
func TinyImages(n, outDim int, seed int64) *vec.Dataset {
	if outDim <= 0 {
		panic(fmt.Sprintf("dataset: TinyImages outDim %d must be positive", outDim))
	}
	raw := tinyPatches(n, seed^0x717179)
	return RandomProjection(raw, outDim, seed^0x9e3779b9)
}

const tinyPatchSide = 16

// tinyPatches synthesizes n patches with 1/f spectra as flat 256-dim rows.
func tinyPatches(n int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	dim := tinyPatchSide * tinyPatchSide
	d := vec.New(dim, n)
	row := make([]float32, dim)
	// Few enough spectral components that the patch manifold has modest
	// intrinsic dimension (real image descriptors do), so the projected
	// tiny16/tiny32 sets retain indexable structure.
	const components = 8
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = 0
		}
		for c := 0; c < components; c++ {
			// Frequencies drawn with density favoring low f; amplitude 1/f.
			fx := rng.Float64() * 4
			fy := rng.Float64() * 4
			f := math.Hypot(fx, fy) + 0.5
			amp := 1 / f
			phase := rng.Float64() * 2 * math.Pi
			for y := 0; y < tinyPatchSide; y++ {
				for x := 0; x < tinyPatchSide; x++ {
					v := amp * math.Cos(2*math.Pi*(fx*float64(x)+fy*float64(y))/tinyPatchSide+phase)
					row[y*tinyPatchSide+x] += float32(v)
				}
			}
		}
		d.Append(row)
	}
	return d
}

// RandomProjection maps the dataset to outDim dimensions with a Gaussian
// random matrix scaled by 1/√outDim — the Johnson–Lindenstrauss transform
// the paper uses to preprocess TinyIm (footnote 3). Pairwise distances
// are preserved up to (1±ε) with high probability.
func RandomProjection(d *vec.Dataset, outDim int, seed int64) *vec.Dataset {
	if outDim <= 0 {
		panic(fmt.Sprintf("dataset: projection outDim %d must be positive", outDim))
	}
	rng := rand.New(rand.NewSource(seed))
	inDim := d.Dim
	// proj is outDim x inDim, row-major.
	proj := make([]float64, outDim*inDim)
	scale := 1 / math.Sqrt(float64(outDim))
	for i := range proj {
		proj[i] = rng.NormFloat64() * scale
	}
	out := vec.New(outDim, d.N())
	row := make([]float32, outDim)
	for i := 0; i < d.N(); i++ {
		x := d.Row(i)
		for o := 0; o < outDim; o++ {
			var s float64
			prow := proj[o*inDim : (o+1)*inDim]
			for j, v := range x {
				s += prow[j] * float64(v)
			}
			row[o] = float32(s)
		}
		out.Append(row)
	}
	return out
}
