package dataset

import (
	"testing"

	"repro/internal/vec"
)

// TestUniformStreamMatchesBatch: the stream must draw in the batch
// generator's order, so Split(n, nq) reproduces UniformCube(n+nq)'s
// prefix/suffix split bit for bit — the property that lets the harness
// swap workload() for a stream on large corpora without changing data.
func TestUniformStreamMatchesBatch(t *testing.T) {
	const n, nq, dim, seed = 500, 40, 7, 99
	all := UniformCube(n+nq, dim, seed)
	db, queries := UniformStream(dim, seed).Split(n, nq)
	checkBasic(t, db, n, dim)
	checkBasic(t, queries, nq, dim)
	for i := 0; i < n; i++ {
		a, b := all.Row(i), db.Row(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("db row %d dim %d: stream %v, batch %v", i, j, b[j], a[j])
			}
		}
	}
	for i := 0; i < nq; i++ {
		a, b := all.Row(n+i), queries.Row(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query row %d dim %d: stream %v, batch %v", i, j, b[j], a[j])
			}
		}
	}
}

// TestStreamExactCapacity: Split allocates exactly its destinations — no
// doubled temporary, no reallocation slack.
func TestStreamExactCapacity(t *testing.T) {
	db, queries := UniformStream(5, 3).Split(200, 16)
	if cap(db.Data) != 200*5 {
		t.Fatalf("db capacity %d, want %d", cap(db.Data), 200*5)
	}
	if cap(queries.Data) != 16*5 {
		t.Fatalf("query capacity %d, want %d", cap(queries.Data), 16*5)
	}
}

// TestStreamIncrementalFill: Fill can extend a dataset in uneven chunks
// and the result matches a single-shot fill from the same seed.
func TestStreamIncrementalFill(t *testing.T) {
	const dim, seed = 4, 17
	want, _ := UniformStream(dim, seed).Split(300, 0)
	s := UniformStream(dim, seed)
	rebuilt := &vec.Dataset{Dim: dim}
	for _, chunk := range []int{1, 99, 200} {
		s.Fill(rebuilt, chunk)
	}
	if !rebuilt.Equal(want) {
		t.Fatal("chunked Fill diverged from one-shot Split")
	}
}
