package dataset

import (
	"fmt"
	"sort"

	"repro/internal/vec"
)

// Entry describes one of the paper's benchmark workloads: its name as it
// appears in the figures, its reference size at scale 1 (the paper's
// Table 1 cardinality), and its generator.
type Entry struct {
	// Name matches the labels used in the paper's figures ("bio", "cov",
	// "phy", "robot", "tiny4" … "tiny32").
	Name string
	// PaperN is the dataset size used in the paper.
	PaperN int
	// Dim is the ambient dimension.
	Dim int
	// Generate builds n points with the given seed.
	Generate func(n int, seed int64) *vec.Dataset
}

// Catalog returns the paper's eight workloads (Table 1, with TinyIm at
// its four projection dimensions) in the order the figures present them.
func Catalog() []Entry {
	return []Entry{
		{Name: "bio", PaperN: BioN, Dim: BioDim, Generate: Bio},
		{Name: "cov", PaperN: CovertypeN, Dim: CovertypeDim, Generate: Covertype},
		{Name: "phy", PaperN: PhysicsN, Dim: PhysicsDim, Generate: Physics},
		{Name: "robot", PaperN: RobotN, Dim: RobotDim, Generate: Robot},
		{Name: "tiny4", PaperN: TinyImN, Dim: 4, Generate: func(n int, seed int64) *vec.Dataset { return TinyImages(n, 4, seed) }},
		{Name: "tiny8", PaperN: TinyImN, Dim: 8, Generate: func(n int, seed int64) *vec.Dataset { return TinyImages(n, 8, seed) }},
		{Name: "tiny16", PaperN: TinyImN, Dim: 16, Generate: func(n int, seed int64) *vec.Dataset { return TinyImages(n, 16, seed) }},
		{Name: "tiny32", PaperN: TinyImN, Dim: 32, Generate: func(n int, seed int64) *vec.Dataset { return TinyImages(n, 32, seed) }},
	}
}

// ByName returns the catalog entry with the given name.
func ByName(name string) (Entry, error) {
	for _, e := range Catalog() {
		if e.Name == name {
			return e, nil
		}
	}
	names := make([]string, 0, 8)
	for _, e := range Catalog() {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return Entry{}, fmt.Errorf("dataset: unknown workload %q (have %v)", name, names)
}

// ScaledN maps the paper's reference size through a scale factor, with a
// floor so tiny scales still produce a workable database.
func (e Entry) ScaledN(scale float64) int {
	n := int(float64(e.PaperN) * scale)
	if n < 256 {
		n = 256
	}
	return n
}
