package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/vec"
)

// TestQuantizedTreeWithinBound: a quantized-grade tree is approximate,
// but every reported distance must be within the view's additive error
// contract of the returned id's true distance, and the returned neighbor
// must be near-optimal (its true distance within the bound of the true
// NN — quantization noise can both mis-prune a descent and mis-rank a
// leaf, each by at most the bound).
func TestQuantizedTreeWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	m := metric.Euclidean{}
	for _, dim := range []int{3, 17, 64} {
		db := randomDataset(rng, 1500, dim)
		tr := BuildGrade(db, 16, metric.GradeQuantized)
		bound := tr.ker.View().ErrorBound()
		for trial := 0; trial < 20; trial++ {
			q := randomDataset(rng, 1, dim).Row(0)
			id, d := tr.NN(q)
			if id < 0 {
				t.Fatalf("dim=%d trial %d: no result", dim, trial)
			}
			true_ := m.Distance(q, db.Row(id))
			if diff := math.Abs(d - true_); diff > bound {
				t.Fatalf("dim=%d trial %d: reported %v, true %v (drift beyond bound %v)", dim, trial, d, true_, bound)
			}
			want := bruteforce.SearchOne(q, db, m, nil)
			if true_ > want.Dist+2*bound {
				t.Fatalf("dim=%d trial %d: returned dist %v vs optimal %v (beyond quantized tolerance %v)",
					dim, trial, true_, want.Dist, bound)
			}
		}
	}
}

// TestQuantizedTreeDuplicateSafety: identical rows produce identical
// codes, so they score exactly zero and self-queries must still find
// themselves.
func TestQuantizedTreeDuplicateSafety(t *testing.T) {
	rows := make([][]float32, 40)
	for i := range rows {
		rows[i] = []float32{7, -3, 2}
	}
	db := vec.FromRows(rows)
	tr := BuildGrade(db, 4, metric.GradeQuantized)
	got := tr.KNN([]float32{7, -3, 2}, 5)
	if len(got) != 5 {
		t.Fatalf("identical points: %v", got)
	}
	for _, nb := range got {
		if nb.Dist != 0 {
			t.Fatalf("self-distance %v, want exactly 0", nb.Dist)
		}
	}
}

// TestQuantizedTreeLeafViewResolution: the leaf scans must hit the
// prebuilt view's codes, not transient re-encoding — the tree's kernel
// view is built over t.flat, and every leaf block is a sub-range of it.
func TestQuantizedTreeLeafViewResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	db := randomDataset(rng, 300, 5)
	tr := BuildGrade(db, 8, metric.GradeQuantized)
	if g := tr.ker.Grade(); g != metric.GradeQuantized {
		t.Fatalf("kernel grade %v, want quantized", g)
	}
	v := tr.ker.View()
	if v == nil || v.N() != db.N() || v.Dim() != db.Dim {
		t.Fatalf("view geometry: %+v", v)
	}
	// Empty tree keeps a usable (viewless) quantized kernel.
	empty := BuildGrade(&vec.Dataset{Dim: 5}, 8, metric.GradeQuantized)
	if id, _ := empty.NN([]float32{0, 0, 0, 0, 0}); id != -1 {
		t.Fatalf("empty tree returned id %d", id)
	}
}

// TestQuantizedTreeRangeConsistency: range search under the quantized
// grade reports ids whose quantized distance clears eps; every true
// distance must clear eps + bound (no wild inclusions), and every point
// truly within eps - bound must be found (no wild exclusions).
func TestQuantizedTreeRangeConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	m := metric.Euclidean{}
	db := randomDataset(rng, 800, 6)
	tr := BuildGrade(db, 16, metric.GradeQuantized)
	bound := tr.ker.View().ErrorBound()
	for trial := 0; trial < 10; trial++ {
		q := randomDataset(rng, 1, 6).Row(0)
		eps := 0.5 + rng.Float64()
		got := tr.Range(q, eps)
		found := make(map[int]bool, len(got))
		for _, nb := range got {
			found[nb.ID] = true
			if d := m.Distance(q, db.Row(nb.ID)); d > eps+bound {
				t.Fatalf("trial %d: id %d at true distance %v included beyond eps %v + bound %v", trial, nb.ID, d, eps, bound)
			}
		}
		for i := 0; i < db.N(); i++ {
			if d := m.Distance(q, db.Row(i)); d < eps-bound && !found[i] {
				t.Fatalf("trial %d: id %d at true distance %v missing within eps %v - bound %v", trial, i, d, eps, bound)
			}
		}
	}
}
