package kdtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/vec"
)

func randomDataset(rng *rand.Rand, n, dim int) *vec.Dataset {
	d := vec.New(dim, n)
	for i := 0; i < n; i++ {
		row := make([]float32, dim)
		for j := range row {
			row[j] = rng.Float32()*2 - 1
		}
		d.Append(row)
	}
	return d
}

func TestEmptyTree(t *testing.T) {
	var db vec.Dataset
	db.Dim = 2
	tr := Build(&db, 0)
	if id, d := tr.NN([]float32{0, 0}); id != -1 || !math.IsInf(d, 1) {
		t.Fatalf("empty NN: %d %v", id, d)
	}
	if tr.Range([]float32{0, 0}, 1) != nil {
		t.Fatal("empty Range")
	}
	if tr.Size() != 0 {
		t.Fatal("size")
	}
}

func TestNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := randomDataset(rng, 2000, 3)
	tr := Build(db, 0)
	m := metric.Euclidean{}
	for trial := 0; trial < 60; trial++ {
		q := randomDataset(rng, 1, 3).Row(0)
		_, d := tr.NN(q)
		want := bruteforce.SearchOne(q, db, m, nil)
		if d != want.Dist {
			t.Fatalf("trial %d: %v want %v", trial, d, want.Dist)
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := randomDataset(rng, 800, 2)
	tr := Build(db, 8)
	m := metric.Euclidean{}
	for _, k := range []int{1, 4, 20} {
		for trial := 0; trial < 15; trial++ {
			q := randomDataset(rng, 1, 2).Row(0)
			got := tr.KNN(q, k)
			want := bruteforce.SearchOneK(q, db, k, m, nil)
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d vs %d results", k, len(got), len(want))
			}
			for j := range got {
				if got[j].Dist != want[j].Dist {
					t.Fatalf("k=%d pos=%d: %v want %v", k, j, got[j].Dist, want[j].Dist)
				}
			}
		}
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randomDataset(rng, 600, 3)
	tr := Build(db, 0)
	m := metric.Euclidean{}
	for trial := 0; trial < 20; trial++ {
		q := randomDataset(rng, 1, 3).Row(0)
		for _, eps := range []float64{0.1, 0.5, 1.5} {
			got := tr.Range(q, eps)
			want := bruteforce.RangeSearch(q, db, eps, m, nil)
			if len(got) != len(want) {
				t.Fatalf("eps=%v: %d vs %d hits", eps, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("eps=%v pos=%d: %+v want %+v", eps, j, got[j], want[j])
				}
			}
		}
	}
}

func TestAllIdenticalPoints(t *testing.T) {
	rows := make([][]float32, 50)
	for i := range rows {
		rows[i] = []float32{3, 3}
	}
	db := vec.FromRows(rows)
	tr := Build(db, 4)
	got := tr.KNN([]float32{3, 3}, 5)
	if len(got) != 5 {
		t.Fatalf("identical points: %v", got)
	}
	for _, nb := range got {
		if nb.Dist != 0 {
			t.Fatal("distances should be zero")
		}
	}
}

func TestPruningReducesWorkLowDim(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := randomDataset(rng, 8000, 2)
	tr := Build(db, 16)
	tr.DistEvals = 0
	const queries = 40
	for i := 0; i < queries; i++ {
		tr.NN(randomDataset(rng, 1, 2).Row(0))
	}
	perQuery := float64(tr.DistEvals) / queries
	if perQuery > float64(db.N())/10 {
		t.Fatalf("kd-tree examined %.0f points per query in 2-D (n=%d)", perQuery, db.N())
	}
}

func TestLeafSizeVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := randomDataset(rng, 300, 3)
	m := metric.Euclidean{}
	q := randomDataset(rng, 1, 3).Row(0)
	want := bruteforce.SearchOne(q, db, m, nil)
	for _, leaf := range []int{1, 2, 7, 64, 1000} {
		tr := Build(db, leaf)
		if _, d := tr.NN(q); d != want.Dist {
			t.Fatalf("leafSize=%d: wrong NN", leaf)
		}
	}
}

// Property: kd-tree NN equals brute force on arbitrary instances,
// including duplicated points.
func TestQuickKDTreeExact(t *testing.T) {
	m := metric.Euclidean{}
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%300 + 1
		db := randomDataset(rng, n, 2)
		for i := 0; i < n/4; i++ {
			copy(db.Row(rng.Intn(n)), db.Row(rng.Intn(n)))
		}
		tr := Build(db, 4)
		for trial := 0; trial < 3; trial++ {
			q := randomDataset(rng, 1, 2).Row(0)
			_, d := tr.NN(q)
			if d != bruteforce.SearchOne(q, db, m, nil).Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
