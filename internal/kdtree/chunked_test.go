package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/vec"
)

// TestKNNMatchesBruteForceHigherDim: the gathered-leaf kernel scans must
// keep the tree exact beyond the toy dimensions — the leaf arithmetic is
// now literally the brute-force row kernel.
func TestKNNMatchesBruteForceHigherDim(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	m := metric.Euclidean{}
	for _, dim := range []int{8, 64} {
		db := randomDataset(rng, 1200, dim)
		tr := Build(db, 16)
		for trial := 0; trial < 15; trial++ {
			q := randomDataset(rng, 1, dim).Row(0)
			got := tr.KNN(q, 5)
			want := bruteforce.SearchOneK(q, db, 5, m, nil)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("dim=%d trial %d pos %d: %+v want %+v", dim, trial, j, got[j], want[j])
				}
			}
		}
	}
}

// TestChunkedTreeWithinBound: a chunked-grade tree is approximate, but
// every reported distance must be within the chunked error contract of
// the returned id's true distance, and the returned neighbor must be
// near-optimal (its true distance within the bound of the true NN).
func TestChunkedTreeWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	m := metric.Euclidean{}
	for _, dim := range []int{3, 17, 64} {
		db := randomDataset(rng, 1500, dim)
		tr := BuildGrade(db, 16, metric.GradeChunked)
		// Squared-space relative bound, conservatively applied in
		// distance space (it only loosens after the sqrt).
		bound := metric.ChunkedErrorBound(dim)
		for trial := 0; trial < 20; trial++ {
			q := randomDataset(rng, 1, dim).Row(0)
			id, d := tr.NN(q)
			if id < 0 {
				t.Fatalf("dim=%d trial %d: no result", dim, trial)
			}
			true_ := m.Distance(q, db.Row(id))
			if diff := math.Abs(d - true_); diff > bound*(1+true_) {
				t.Fatalf("dim=%d trial %d: reported %v, true %v (drift beyond bound)", dim, trial, d, true_)
			}
			want := bruteforce.SearchOne(q, db, m, nil)
			if true_ > want.Dist*(1+bound)+bound {
				t.Fatalf("dim=%d trial %d: returned dist %v vs optimal %v (beyond chunked tolerance)",
					dim, trial, true_, want.Dist)
			}
		}
	}
}

// TestChunkedTreeDuplicateSafety: identical rows score exactly zero in
// the chunked grade, so self-queries must still find themselves.
func TestChunkedTreeDuplicateSafety(t *testing.T) {
	rows := make([][]float32, 40)
	for i := range rows {
		rows[i] = []float32{7, -3, 2}
	}
	db := vec.FromRows(rows)
	tr := BuildGrade(db, 4, metric.GradeChunked)
	got := tr.KNN([]float32{7, -3, 2}, 5)
	if len(got) != 5 {
		t.Fatalf("identical points: %v", got)
	}
	for _, nb := range got {
		if nb.Dist != 0 {
			t.Fatalf("self-distance %v, want exactly 0", nb.Dist)
		}
	}
}
