// Package kdtree implements a median-split k-d tree over float32 vectors
// under the Euclidean metric. The paper notes (§7.1) that in very low
// dimensions "basic data structures like kd-trees are extremely
// effective" — this package provides that reference baseline so the
// experiments can show where the crossover to metric methods happens.
//
// Leaf candidate rescoring rides the tiled row kernels: the database is
// gathered into tree order at build time so every leaf is a contiguous
// block, and a leaf visit is one Kernel.Ordering call instead of
// per-pair Distance calls. The default (Build) uses the exact kernel
// grade — descents compare in ordering space, reported distances match
// the brute-force reference. BuildGrade admits the chunked float32 grade
// for an approximate tree whose leaf scans run conversion-free; its
// pruning and distances then inherit the chunked error contract
// (metric.ChunkedErrorBound), mirroring how the lsh package treats
// candidate rescoring. It also admits the int8-quantized grade: the
// gathered tree-order rows are encoded once into a metric.QuantizedView
// at build time, leaf scans stream 1-byte codes, and pruning and
// reported distances inherit the view's additive error contract
// (QuantizedView.ErrorBound).
package kdtree

import (
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// Tree is an immutable k-d tree built over a dataset.
type Tree struct {
	db    *vec.Dataset
	ker   *metric.Kernel
	nodes []node
	order []int32   // tree position → database id
	flat  []float32 // order-aligned gathered rows: leaves are contiguous
	root  int32
	// DistEvals counts full distance evaluations during queries
	// (diagnostic; not synchronized — meaningful for sequential use).
	DistEvals int64
	leafSize  int
	maxLeaf   int // widest leaf, sizes the per-query scan buffer
}

type node struct {
	// Internal nodes: axis >= 0, split value, children. Leaves: axis == -1
	// and [lo,hi) indexes into order.
	axis        int32
	split       float32
	left, right int32
	lo, hi      int32
}

// order maps tree positions to database ids; stored on Tree via closure
// would allocate, so it lives beside nodes.
type buildCtx struct {
	db    *vec.Dataset
	order []int32
	nodes []node
	leaf  int
}

// Build constructs the tree on the exact kernel grade. leafSize controls
// when recursion stops; values of 8-32 are typical (0 selects 16).
func Build(db *vec.Dataset, leafSize int) *Tree {
	return BuildGrade(db, leafSize, metric.GradeExact)
}

// BuildGrade constructs the tree with the given leaf-rescoring kernel
// grade. GradeExact (and GradeFast, whose row scan is the same exact
// arithmetic) keeps the tree's answers identical to brute force;
// GradeChunked makes it approximate within metric.ChunkedErrorBound;
// GradeQuantized encodes the gathered rows into an int8 view and is
// approximate within the view's additive ErrorBound.
func BuildGrade(db *vec.Dataset, leafSize int, g metric.Grade) *Tree {
	if leafSize <= 0 {
		leafSize = 16
	}
	n := db.N()
	ctx := &buildCtx{db: db, order: make([]int32, n), leaf: leafSize}
	for i := range ctx.order {
		ctx.order[i] = int32(i)
	}
	t := &Tree{db: db, ker: metric.NewGradeKernel(metric.Euclidean{}, g), leafSize: leafSize}
	if n == 0 {
		t.root = -1
		return t
	}
	t.root = ctx.build(0, n)
	t.nodes = ctx.nodes
	t.order = ctx.order
	// Gather rows into tree order so each leaf's points are one
	// contiguous block the row kernel can stream.
	t.flat = make([]float32, n*db.Dim)
	for p, id := range t.order {
		copy(t.flat[p*db.Dim:(p+1)*db.Dim], db.Row(int(id)))
	}
	for _, nd := range t.nodes {
		if nd.axis < 0 {
			if w := int(nd.hi - nd.lo); w > t.maxLeaf {
				t.maxLeaf = w
			}
		}
	}
	if g == metric.GradeQuantized {
		// Encode the gathered rows now that they exist: leaf scans pass
		// t.flat sub-blocks, which the view resolves to its codes.
		t.ker = metric.NewQuantizedKernel(metric.Euclidean{}, metric.NewQuantizedView(t.flat, db.Dim))
	}
	return t
}

func (c *buildCtx) build(lo, hi int) int32 {
	if hi-lo <= c.leaf {
		c.nodes = append(c.nodes, node{axis: -1, lo: int32(lo), hi: int32(hi)})
		return int32(len(c.nodes) - 1)
	}
	// Pick the axis with the widest spread over this cell.
	dim := c.db.Dim
	axis := 0
	bestSpread := float32(-1)
	for a := 0; a < dim; a++ {
		mn, mx := c.db.Row(int(c.order[lo]))[a], c.db.Row(int(c.order[lo]))[a]
		for i := lo + 1; i < hi; i++ {
			v := c.db.Row(int(c.order[i]))[a]
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if spread := mx - mn; spread > bestSpread {
			bestSpread = spread
			axis = a
		}
	}
	if bestSpread == 0 {
		// All points in this cell are identical; make it a leaf.
		c.nodes = append(c.nodes, node{axis: -1, lo: int32(lo), hi: int32(hi)})
		return int32(len(c.nodes) - 1)
	}
	seg := c.order[lo:hi]
	mid := len(seg) / 2
	// Median split via full sort on the axis (simple and deterministic;
	// builds are measured separately from queries in the experiments).
	sort.Slice(seg, func(i, j int) bool {
		return c.db.Row(int(seg[i]))[axis] < c.db.Row(int(seg[j]))[axis]
	})
	split := c.db.Row(int(seg[mid]))[axis]
	// Guard against duplicates of the median crossing the boundary: move
	// mid to the first occurrence of split so left strictly < split is
	// not required, only the bounding logic below.
	idx := int32(len(c.nodes))
	c.nodes = append(c.nodes, node{axis: int32(axis), split: split})
	left := c.build(lo, lo+mid)
	right := c.build(lo+mid, hi)
	c.nodes[idx].left = left
	c.nodes[idx].right = right
	return idx
}

// NN returns the nearest database point to q, or (-1, +Inf) when empty.
func (t *Tree) NN(q []float32) (int, float64) {
	res := t.KNN(q, 1)
	if len(res) == 0 {
		return -1, math.Inf(1)
	}
	return res[0].ID, res[0].Dist
}

// KNN returns the k nearest database points sorted by ascending distance.
func (t *Tree) KNN(q []float32, k int) []par.Neighbor {
	res, evals := t.knn(q, k)
	t.DistEvals += evals
	return res
}

// knn is the counter-free descent: it returns the evaluations performed
// instead of bumping DistEvals, so batch callers can run queries in
// parallel and fold the counts in afterwards. The heap holds ordering
// distances; conversion happens once per result at the boundary, exactly
// like the brute-force reference.
func (t *Tree) knn(q []float32, k int) ([]par.Neighbor, int64) {
	if t.root < 0 || k <= 0 {
		return nil, 0
	}
	sc := par.GetScratch()
	defer par.PutScratch(sc)
	h := sc.Heap(0, k)
	buf := sc.Float64(0, t.maxLeaf)
	var evals int64
	t.search(t.root, q, h, buf, &evals)
	res := h.Results()
	for i := range res {
		res[i].Dist = t.ker.ToDistance(res[i].Dist)
	}
	par.SortNeighbors(res)
	return res, evals
}

// KNNBatch answers a block of k-NN queries in parallel (queries are
// independent descents), returning per-query results and the total number
// of distance evaluations. DistEvals is bumped once by the total.
func (t *Tree) KNNBatch(queries *vec.Dataset, k int) ([][]par.Neighbor, int64) {
	out := make([][]par.Neighbor, queries.N())
	var total atomic.Int64
	par.ForEach(queries.N(), 1, func(i int) {
		res, evals := t.knn(queries.Row(i), k)
		out[i] = res
		total.Add(evals)
	})
	t.DistEvals += total.Load()
	return out, total.Load()
}

func (t *Tree) search(ni int32, q []float32, h *par.KHeap, buf []float64, evals *int64) {
	nd := &t.nodes[ni]
	if nd.axis < 0 {
		lo, hi := int(nd.lo), int(nd.hi)
		if lo == hi {
			return
		}
		// One row-kernel call rescores the whole leaf block.
		out := buf[:hi-lo]
		dim := t.db.Dim
		t.ker.Ordering(q, t.flat[lo*dim:hi*dim], dim, out)
		for i, o := range out {
			h.Push(int(t.order[lo+i]), o)
		}
		*evals += int64(hi - lo)
		return
	}
	diff := float64(q[nd.axis]) - float64(nd.split)
	near, far := nd.left, nd.right
	if diff > 0 {
		near, far = nd.right, nd.left
	}
	t.search(near, q, h, buf, evals)
	// Visit the far side only if the splitting plane is closer than the
	// current k-th distance (or the heap is not yet full); the heap holds
	// orderings, so the plane distance converts once.
	worst, full := h.Worst()
	if !full || t.ker.FromDistance(math.Abs(diff)) <= worst {
		t.search(far, q, h, buf, evals)
	}
}

// Range returns all points within eps of q sorted by ascending distance.
func (t *Tree) Range(q []float32, eps float64) []par.Neighbor {
	if t.root < 0 {
		return nil
	}
	sc := par.GetScratch()
	defer par.PutScratch(sc)
	buf := sc.Float64(0, t.maxLeaf)
	// Ordering-space prefilter with distance-space confirmation, exactly
	// like bruteforce.RangeSearch, so the inclusive eps boundary survives
	// the ordering round trip.
	epsHi := t.ker.OrderingBound(eps)
	dim := t.db.Dim
	var hits []par.Neighbor
	var walk func(ni int32)
	walk = func(ni int32) {
		nd := &t.nodes[ni]
		if nd.axis < 0 {
			lo, hi := int(nd.lo), int(nd.hi)
			if lo == hi {
				return
			}
			out := buf[:hi-lo]
			t.ker.Ordering(q, t.flat[lo*dim:hi*dim], dim, out)
			t.DistEvals += int64(hi - lo)
			for i, o := range out {
				if o <= epsHi {
					if d := t.ker.ToDistance(o); d <= eps {
						hits = append(hits, par.Neighbor{ID: int(t.order[lo+i]), Dist: d})
					}
				}
			}
			return
		}
		diff := float64(q[nd.axis]) - float64(nd.split)
		near, far := nd.left, nd.right
		if diff > 0 {
			near, far = nd.right, nd.left
		}
		walk(near)
		if math.Abs(diff) <= eps {
			walk(far)
		}
	}
	walk(t.root)
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Dist != hits[j].Dist {
			return hits[i].Dist < hits[j].Dist
		}
		return hits[i].ID < hits[j].ID
	})
	return hits
}

// Size reports the number of indexed points.
func (t *Tree) Size() int { return len(t.order) }
