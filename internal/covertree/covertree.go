// Package covertree implements the cover tree of Beygelzimer, Kakade and
// Langford ("Cover trees for nearest neighbor", ICML 2006) — the paper's
// state-of-the-art sequential baseline for the desktop comparison
// (Table 3). Like the RBC it is parameterized by the expansion rate, but
// its query algorithm is a deep, conditional tree descent: exactly the
// computational structure §3 of the RBC paper argues is hard to
// parallelize. It is kept sequential here for the same reason the paper
// ran it on one core.
//
// Invariants (base 2): a node at level i has children at level i-1 within
// distance 2^i; all descendants of a level-i node lie within 2^(i+1);
// nodes at a given level are pairwise > 2^i apart (maintained by the
// insertion rule). Duplicate points are stored in a per-node bag rather
// than as zero-distance subtrees.
package covertree

import (
	"math"

	"repro/internal/metric"
	"repro/internal/par"
)

// Tree is a cover tree over points of type P.
type Tree[P any] struct {
	m        metric.Metric[P]
	root     *node[P]
	minLevel int
	size     int
	// DistEvals counts metric evaluations across all operations; queries
	// are sequential so a plain counter suffices.
	DistEvals int64
}

type node[P any] struct {
	p        P
	id       int
	level    int
	children []*node[P]
	dups     []int // ids of points identical to p
}

// floorLevel is the level below which two points are treated as
// duplicates (distance < 2^floorLevel ≈ 1e-18).
const floorLevel = -60

// New creates an empty cover tree using metric m.
func New[P any](m metric.Metric[P]) *Tree[P] {
	return &Tree[P]{m: m, minLevel: math.MaxInt32}
}

// Build constructs a tree over db by sequential insertion, returning the
// tree. IDs are the indices into db.
func Build[P any](db []P, m metric.Metric[P]) *Tree[P] {
	t := New(m)
	for i, p := range db {
		t.Insert(p, i)
	}
	return t
}

// Size reports the number of points stored (including duplicates).
func (t *Tree[P]) Size() int { return t.size }

func (t *Tree[P]) dist(a, b P) float64 {
	t.DistEvals++
	return t.m.Distance(a, b)
}

func pow2(i int) float64 { return math.Ldexp(1, i) }

// levelFor returns the smallest level l with d ≤ 2^l.
func levelFor(d float64) int {
	l := int(math.Ceil(math.Log2(d)))
	if l < floorLevel {
		l = floorLevel
	}
	return l
}

// Insert adds point p with identifier id.
func (t *Tree[P]) Insert(p P, id int) {
	t.size++
	if t.root == nil {
		t.root = &node[P]{p: p, id: id, level: floorLevel}
		return
	}
	d := t.dist(p, t.root.p)
	if d < pow2(floorLevel) {
		t.root.dups = append(t.root.dups, id)
		return
	}
	// Grow the root's level until it covers the new point.
	if lvl := levelFor(d); lvl > t.root.level {
		t.root.level = lvl
	}
	if !t.insert(p, id, []qnode[P]{{t.root, d}}, t.root.level) {
		// Cannot happen once the root covers p, but guard against
		// floating-point edge cases by growing once more and retrying.
		t.root.level++
		if !t.insert(p, id, []qnode[P]{{t.root, t.dist(p, t.root.p)}}, t.root.level) {
			panic("covertree: insertion failed after root growth")
		}
	}
}

// qnode pairs a node with its (already computed) distance to the point
// being inserted or queried, so no distance is evaluated twice.
type qnode[P any] struct {
	n *node[P]
	d float64
}

// insert implements the BKL recursive insertion. Qi is the level-i cover
// set: nodes whose subtrees may adopt p. Returns false if p cannot be
// placed below this cover set.
func (t *Tree[P]) insert(p P, id int, qi []qnode[P], level int) bool {
	if level <= floorLevel {
		// Deep recursion means p is (numerically) a duplicate of the
		// nearest cover node.
		best := qi[0]
		for _, q := range qi[1:] {
			if q.d < best.d {
				best = q
			}
		}
		best.n.dups = append(best.n.dups, id)
		return true
	}
	sep := pow2(level)
	// Candidate set: Qi plus Qi's children at level-1 (self-children are
	// implicit: the node itself stands for its copy at every lower level).
	cand := qi
	for _, q := range qi {
		for _, c := range q.n.children {
			if c.level == level-1 {
				cand = append(cand, qnode[P]{c, t.dist(p, c.p)})
			}
		}
	}
	minD := math.Inf(1)
	for _, c := range cand {
		if c.d < minD {
			minD = c.d
		}
	}
	if minD > sep {
		return false // p is separated from everything at this scale
	}
	if minD < pow2(floorLevel) {
		// Numerical duplicate: attach to the zero-distance node.
		for _, c := range cand {
			if c.d == minD {
				c.n.dups = append(c.n.dups, id)
				return true
			}
		}
	}
	// Next cover set: candidates within 2^level.
	var next []qnode[P]
	for _, c := range cand {
		if c.d <= sep {
			next = append(next, c)
		}
	}
	if t.insert(p, id, next, level-1) {
		return true
	}
	// The child levels refused p: adopt it here under any parent in Qi
	// within 2^level.
	for _, q := range qi {
		if q.d <= sep {
			child := &node[P]{p: p, id: id, level: level - 1}
			q.n.children = append(q.n.children, child)
			if level-1 < t.minLevel {
				t.minLevel = level - 1
			}
			return true
		}
	}
	return false
}

// NN returns the id and distance of the nearest stored point, or
// (-1, +Inf) for an empty tree.
func (t *Tree[P]) NN(q P) (int, float64) {
	res := t.KNN(q, 1)
	if len(res) == 0 {
		return -1, math.Inf(1)
	}
	return res[0].ID, res[0].Dist
}

// KNN returns the k nearest stored points sorted by ascending distance.
// The search is the BKL batch descent: maintain a cover set per level,
// expand children, and discard nodes whose subtrees provably cannot
// contain a k-th nearest neighbor.
func (t *Tree[P]) KNN(q P, k int) []par.Neighbor {
	if t.root == nil || k <= 0 {
		return nil
	}
	h := par.NewKHeap(k)
	push := func(n *node[P], d float64) {
		h.Push(n.id, d)
		for _, dup := range n.dups {
			h.Push(dup, d)
		}
	}
	d0 := t.dist(q, t.root.p)
	push(t.root, d0)
	cover := []qnode[P]{{t.root, d0}}
	for level := t.root.level; level >= t.minLevel && len(cover) > 0; level-- {
		// Expand children living at level-1.
		next := cover
		for _, c := range cover {
			for _, ch := range c.n.children {
				if ch.level == level-1 {
					d := t.dist(q, ch.p)
					push(ch, d)
					next = append(next, qnode[P]{ch, d})
				}
			}
		}
		// Prune: after this expansion every unexplored descendant of a
		// node in next hangs below level-1, hence lies within 2^level of
		// it. worst is the current k-th distance (∞ while unfilled).
		worst := math.Inf(1)
		if w, ok := h.Worst(); ok {
			worst = w
		}
		bound := worst + pow2(level)
		kept := next[:0]
		for _, c := range next {
			if c.d <= bound && t.hasChildrenBelow(c.n, level-1) {
				kept = append(kept, c)
			}
		}
		cover = kept
	}
	return h.Results()
}

// KNNBatch answers a block of k-NN queries. The descent is a deep,
// conditional recursion (the structure §3 argues is hard to parallelize)
// and DistEvals is a plain counter, so the batch runs sequentially — the
// method exists to satisfy the batch query plane's interface, not to win
// throughput.
func (t *Tree[P]) KNNBatch(queries []P, k int) [][]par.Neighbor {
	out := make([][]par.Neighbor, len(queries))
	for i, q := range queries {
		out[i] = t.KNN(q, k)
	}
	return out
}

func (t *Tree[P]) hasChildrenBelow(n *node[P], level int) bool {
	for _, c := range n.children {
		if c.level <= level {
			return true
		}
	}
	return false
}

// Range returns every stored point within eps of q, sorted by ascending
// distance. Subtree pruning uses the same 2^level descendant bound with
// eps in place of the k-th distance.
func (t *Tree[P]) Range(q P, eps float64) []par.Neighbor {
	if t.root == nil {
		return nil
	}
	var hits []par.Neighbor
	collect := func(n *node[P], d float64) {
		if d <= eps {
			hits = append(hits, par.Neighbor{ID: n.id, Dist: d})
			for _, dup := range n.dups {
				hits = append(hits, par.Neighbor{ID: dup, Dist: d})
			}
		}
	}
	d0 := t.dist(q, t.root.p)
	collect(t.root, d0)
	cover := []qnode[P]{{t.root, d0}}
	for level := t.root.level; level >= t.minLevel && len(cover) > 0; level-- {
		next := cover
		for _, c := range cover {
			for _, ch := range c.n.children {
				if ch.level == level-1 {
					d := t.dist(q, ch.p)
					collect(ch, d)
					next = append(next, qnode[P]{ch, d})
				}
			}
		}
		bound := eps + pow2(level)
		kept := next[:0]
		for _, c := range next {
			if c.d <= bound && t.hasChildrenBelow(c.n, level-1) {
				kept = append(kept, c)
			}
		}
		cover = kept
	}
	// Insertion-sort: hits are few in typical range queries.
	for i := 1; i < len(hits); i++ {
		x := hits[i]
		j := i - 1
		for j >= 0 && (hits[j].Dist > x.Dist || (hits[j].Dist == x.Dist && hits[j].ID > x.ID)) {
			hits[j+1] = hits[j]
			j--
		}
		hits[j+1] = x
	}
	return hits
}

// Depth returns the number of explicit levels spanned by the tree — a
// diagnostic for the "deep tree" structure contrasted with the RBC's two
// flat scans.
func (t *Tree[P]) Depth() int {
	if t.root == nil || t.minLevel == math.MaxInt32 {
		return 0
	}
	return t.root.level - t.minLevel + 1
}

// Validate walks the tree checking the covering and separation
// invariants; it returns false (with a reason) on violation. Used by
// tests and available as a production sanity check.
func (t *Tree[P]) Validate() (bool, string) {
	if t.root == nil {
		return true, ""
	}
	var walk func(n *node[P]) (bool, string)
	walk = func(n *node[P]) (bool, string) {
		for _, c := range n.children {
			if c.level >= n.level {
				return false, "child level not below parent"
			}
			if d := t.m.Distance(n.p, c.p); d > pow2(c.level+1) {
				return false, "covering violated"
			}
			if ok, why := walk(c); !ok {
				return false, why
			}
		}
		// Separation: children at the same level must be > 2^level apart.
		for i := 0; i < len(n.children); i++ {
			for j := i + 1; j < len(n.children); j++ {
				a, b := n.children[i], n.children[j]
				if a.level == b.level {
					if d := t.m.Distance(a.p, b.p); d <= pow2(a.level) && d > 0 {
						return false, "separation violated"
					}
				}
			}
		}
		return true, ""
	}
	return walk(t.root)
}
