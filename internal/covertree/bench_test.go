package covertree

import (
	"math/rand"
	"testing"

	"repro/internal/metric"
)

func benchRows(n, dim int) [][]float32 {
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float32, n)
	for i := range rows {
		c := float32(rng.Intn(12)) * 4
		rows[i] = make([]float32, dim)
		for j := range rows[i] {
			rows[i][j] = c + float32(rng.NormFloat64())
		}
	}
	return rows
}

func BenchmarkBuild5k(b *testing.B) {
	rows := benchRows(5000, 8)
	m := metric.Metric[[]float32](metric.Euclidean{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(rows, m)
	}
}

func BenchmarkNN(b *testing.B) {
	rows := benchRows(20000, 8)
	tree := Build(rows, metric.Metric[[]float32](metric.Euclidean{}))
	q := rows[99]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.NN(q)
	}
}

func BenchmarkKNN10(b *testing.B) {
	rows := benchRows(20000, 8)
	tree := Build(rows, metric.Metric[[]float32](metric.Euclidean{}))
	q := rows[99]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.KNN(q, 10)
	}
}
