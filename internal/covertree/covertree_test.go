package covertree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/vec"
)

func randomRows(rng *rand.Rand, n, dim int) [][]float32 {
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = make([]float32, dim)
		for j := range rows[i] {
			rows[i][j] = rng.Float32()*2 - 1
		}
	}
	return rows
}

func asMetric() metric.Metric[[]float32] { return metric.Euclidean{} }

func TestEmptyTree(t *testing.T) {
	tr := New(asMetric())
	if id, d := tr.NN([]float32{1}); id != -1 || !math.IsInf(d, 1) {
		t.Fatalf("empty NN: %d %v", id, d)
	}
	if got := tr.KNN([]float32{1}, 3); got != nil {
		t.Fatal("empty KNN should be nil")
	}
	if got := tr.Range([]float32{1}, 5); got != nil {
		t.Fatal("empty Range should be nil")
	}
	if tr.Depth() != 0 || tr.Size() != 0 {
		t.Fatal("empty tree shape")
	}
}

func TestSinglePoint(t *testing.T) {
	tr := New(asMetric())
	tr.Insert([]float32{1, 2}, 7)
	if id, d := tr.NN([]float32{1, 2}); id != 7 || d != 0 {
		t.Fatalf("NN: %d %v", id, d)
	}
	if tr.Size() != 1 {
		t.Fatal("size")
	}
}

func TestNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := randomRows(rng, 1000, 5)
	db := vec.FromRows(rows)
	tr := Build(rows, asMetric())
	if ok, why := tr.Validate(); !ok {
		t.Fatalf("invariants: %s", why)
	}
	for trial := 0; trial < 60; trial++ {
		q := make([]float32, 5)
		for j := range q {
			q[j] = rng.Float32()*2 - 1
		}
		id, d := tr.NN(q)
		want := bruteforce.SearchOne(q, db, metric.Euclidean{}, nil)
		if d != want.Dist {
			t.Fatalf("trial %d: got (%d,%v) want %+v", trial, id, d, want)
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := randomRows(rng, 600, 4)
	db := vec.FromRows(rows)
	tr := Build(rows, asMetric())
	for _, k := range []int{1, 2, 5, 17} {
		for trial := 0; trial < 15; trial++ {
			q := make([]float32, 4)
			for j := range q {
				q[j] = rng.Float32()*2 - 1
			}
			got := tr.KNN(q, k)
			want := bruteforce.SearchOneK(q, db, k, metric.Euclidean{}, nil)
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d results want %d", k, len(got), len(want))
			}
			for j := range got {
				if got[j].Dist != want[j].Dist {
					t.Fatalf("k=%d trial=%d pos=%d: %v want %v", k, trial, j, got[j].Dist, want[j].Dist)
				}
			}
		}
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := randomRows(rng, 500, 3)
	db := vec.FromRows(rows)
	tr := Build(rows, asMetric())
	for trial := 0; trial < 20; trial++ {
		q := make([]float32, 3)
		for j := range q {
			q[j] = rng.Float32()*2 - 1
		}
		for _, eps := range []float64{0.05, 0.3, 1.0} {
			got := tr.Range(q, eps)
			want := bruteforce.RangeSearch(q, db, eps, metric.Euclidean{}, nil)
			if len(got) != len(want) {
				t.Fatalf("eps=%v: %d hits want %d", eps, len(got), len(want))
			}
			for j := range got {
				if got[j].ID != want[j].ID || got[j].Dist != want[j].Dist {
					t.Fatalf("eps=%v pos=%d: %+v want %+v", eps, j, got[j], want[j])
				}
			}
		}
	}
}

func TestDuplicatesStoredAndReturned(t *testing.T) {
	rows := [][]float32{{1, 1}, {1, 1}, {1, 1}, {2, 2}, {5, 5}}
	tr := Build(rows, asMetric())
	if tr.Size() != 5 {
		t.Fatalf("size=%d", tr.Size())
	}
	got := tr.KNN([]float32{1, 1}, 3)
	if len(got) != 3 {
		t.Fatalf("knn=%v", got)
	}
	for _, nb := range got[:3] {
		if nb.Dist != 0 {
			t.Fatalf("expected three zero-distance answers, got %v", got)
		}
	}
	hits := tr.Range([]float32{1, 1}, 0.5)
	if len(hits) != 3 {
		t.Fatalf("range should find all three duplicates: %v", hits)
	}
}

func TestNearDuplicatePoints(t *testing.T) {
	// Points closer than 2^floorLevel exercise the numerical-duplicate
	// path without infinite recursion.
	base := []float32{1, 1}
	tr := New(asMetric())
	tr.Insert(base, 0)
	tr.Insert([]float32{1, 1}, 1)
	tr.Insert([]float32{1.0000001, 1}, 2)
	if tr.Size() != 3 {
		t.Fatal("size")
	}
	got := tr.KNN([]float32{1, 1}, 3)
	if len(got) != 3 {
		t.Fatalf("knn over near-duplicates: %v", got)
	}
}

func TestEditDistanceTree(t *testing.T) {
	// The cover tree is generic over metrics, like the RBC.
	words := []string{"kitten", "sitting", "mitten", "bitten", "flaw", "lawn", "claw", "paw"}
	tr := Build(words, metric.Metric[string](metric.Edit{}))
	id, d := tr.NN("fitten")
	if d != 1 {
		t.Fatalf("NN of fitten: id=%d d=%v", id, d)
	}
	want := bruteforce.SearchOneGeneric("crawl", words, metric.Metric[string](metric.Edit{}), nil)
	_, d2 := tr.NN("crawl")
	if d2 != want.Dist {
		t.Fatalf("crawl: %v want %v", d2, want.Dist)
	}
}

func TestDistEvalsCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows := randomRows(rng, 200, 3)
	tr := Build(rows, asMetric())
	before := tr.DistEvals
	if before == 0 {
		t.Fatal("build should count evaluations")
	}
	tr.NN(rows[0])
	if tr.DistEvals <= before {
		t.Fatal("query should count evaluations")
	}
}

func TestQueriesCheaperThanBruteForceOnClusteredData(t *testing.T) {
	// On low-intrinsic-dimension data the cover tree must examine far
	// fewer points than n per query — that is its entire reason to exist.
	rng := rand.New(rand.NewSource(5))
	n := 4000
	rows := make([][]float32, n)
	for i := range rows {
		c := float32(rng.Intn(8)) * 20
		rows[i] = []float32{c + float32(rng.NormFloat64())*0.3, c + float32(rng.NormFloat64())*0.3, 0}
	}
	tr := Build(rows, asMetric())
	tr.DistEvals = 0
	const queries = 50
	for i := 0; i < queries; i++ {
		tr.NN(rows[rng.Intn(n)])
	}
	perQuery := float64(tr.DistEvals) / queries
	if perQuery > float64(n)/4 {
		t.Fatalf("cover tree examined %.0f points per query on clustered data (n=%d)", perQuery, n)
	}
}

func TestValidateDetectsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rows := randomRows(rng, 300, 4)
	tr := Build(rows, asMetric())
	if ok, why := tr.Validate(); !ok {
		t.Fatalf("fresh tree invalid: %s", why)
	}
	if tr.Depth() <= 0 {
		t.Fatal("depth should be positive")
	}
}

// Property: the cover tree NN equals brute force for arbitrary seeds and
// sizes, including heavy duplication.
func TestQuickCoverTreeExact(t *testing.T) {
	m := asMetric()
	f := func(seed int64, nRaw uint16, dupFrac uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%300 + 2
		rows := randomRows(rng, n, 3)
		// Duplicate a fraction of rows.
		for i := 0; i < n*int(dupFrac%4)/8; i++ {
			rows[rng.Intn(n)] = rows[rng.Intn(n)]
		}
		db := vec.FromRows(rows)
		tr := Build(rows, m)
		if ok, _ := tr.Validate(); !ok {
			return false
		}
		for trial := 0; trial < 3; trial++ {
			q := make([]float32, 3)
			for j := range q {
				q[j] = rng.Float32()*2 - 1
			}
			_, d := tr.NN(q)
			want := bruteforce.SearchOne(q, db, metric.Euclidean{}, nil)
			if d != want.Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: KNN results are sorted, unique by id, and complete.
func TestQuickCoverTreeKNNWellFormed(t *testing.T) {
	m := asMetric()
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 120
		k := int(kRaw)%15 + 1
		rows := randomRows(rng, n, 2)
		tr := Build(rows, m)
		q := []float32{rng.Float32(), rng.Float32()}
		got := tr.KNN(q, k)
		if len(got) != k {
			return false
		}
		seen := map[int]bool{}
		for i, nb := range got {
			if seen[nb.ID] {
				return false
			}
			seen[nb.ID] = true
			if i > 0 && nb.Dist < got[i-1].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
