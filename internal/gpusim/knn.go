package gpusim

import (
	"math"

	"repro/internal/par"
	"repro/internal/vec"
)

// k-NN pipelines on the simulated device. The selection step is modeled
// as a per-block warp-wide merge network: after each width-wide block of
// candidate distances, the warp folds them into a register-resident
// sorted list of the k best (bitonic-style, log₂(width)+log₂(k) slots) —
// the standard GPU k-select pattern for small k.

// knnSelectCost charges the warp for one block's fold into the k-list:
// a bitonic sort of the width candidates (log₂w·(log₂w+1)/2 compare
// layers) followed by a merge with the k-list (log₂k+1 layers).
func knnSelectCost(w *Warp, k int) {
	logw := int64(0)
	for s := 1; s < w.Width(); s <<= 1 {
		logw++
	}
	logk := int64(1)
	for s := 1; s < k; s <<= 1 {
		logk++
	}
	w.issue(logw*(logw+1)/2 + logk)
}

// distanceScanKernelK is the k-best variant of distanceScanKernel: it
// scans [lo,hi) of flat and returns the k nearest (database ids after
// translation through ids, when non-nil).
func distanceScanKernelK(w *Warp, q []float32, db *vec.Dataset, ids IReg, lo, hi, k int, flat []float32) []par.Neighbor {
	dim := db.Dim
	width := w.Width()
	lane := w.LaneID()
	heap := par.NewKHeap(k)
	for base := lo; base < hi; base += width {
		ptIdx := w.AddI(w.ConstI(int32(base)), lane)
		inRange := w.LessI(ptIdx, w.ConstI(int32(hi)))
		ptIdx = w.SelectI(inRange, ptIdx, w.ConstI(-1))
		acc := w.ConstF(0)
		for j := 0; j < dim; j++ {
			off := w.AddI(w.MulI(ptIdx, w.ConstI(int32(dim))), w.ConstI(int32(j)))
			off = w.SelectI(inRange, off, w.ConstI(-1))
			x := w.LoadGlobal(flat, off)
			d := w.Sub(x, w.ConstF(q[j]))
			acc = w.FMA(d, d, acc)
		}
		resolved := ptIdx
		if ids != nil {
			resolved = w.SelectI(inRange, gatherIDs(w, ids, ptIdx), w.ConstI(-1))
		}
		// Host-side result tracking; device cost charged as a merge fold.
		knnSelectCost(w, k)
		for i := 0; i < width; i++ {
			if resolved[i] >= 0 {
				heap.Push(int(resolved[i]), float64(acc[i]))
			}
		}
	}
	return heap.Results()
}

// BruteForceKNN runs exact k-NN for every query on the device, returning
// per-query neighbor lists (squared distances) and launch stats.
func BruteForceKNN(d *Device, queries, db *vec.Dataset, k int) ([][]par.Neighbor, Stats) {
	out := make([][]par.Neighbor, queries.N())
	st := d.Launch(queries.N(), func(w *Warp, wid int) {
		out[wid] = distanceScanKernelK(w, queries.Row(wid), db, nil, 0, db.N(), k, db.Data)
	})
	return out, st
}

// OneShotKNN runs the RBC one-shot k-NN pipeline: nearest representative,
// then k-select over its ownership list.
func OneShotKNN(d *Device, queries *vec.Dataset, idx *OneShotIndex, k int) ([][]par.Neighbor, Stats) {
	out := make([][]par.Neighbor, queries.N())
	nearestRep := make([]int32, queries.N())
	st := d.Launch(queries.N(), func(w *Warp, wid int) {
		_, rep := distanceScanKernel(w, queries.Row(wid), idx.RepData, nil, 0, idx.RepData.N(), idx.RepData.Data)
		nearestRep[wid] = rep
	})
	st2 := d.Launch(queries.N(), func(w *Warp, wid int) {
		rep := int(nearestRep[wid])
		lo, hi := rep*idx.S, (rep+1)*idx.S
		out[wid] = distanceScanKernelK(w, queries.Row(wid), idx.ListPts, idx.ListIDs, lo, hi, k, idx.ListPts.Data)
	})
	st.Add(st2)
	return out, st
}

// SqDistTolerance is the float32 tolerance used when comparing simulated
// squared distances with float64 CPU references.
const SqDistTolerance = 1e-4

// MatchesCPU reports whether a device k-NN result list agrees with a CPU
// reference (true distances) up to float32 rounding.
func MatchesCPU(dev []par.Neighbor, cpu []par.Neighbor) bool {
	if len(dev) != len(cpu) {
		return false
	}
	for i := range dev {
		got := math.Sqrt(float64(dev[i].Dist))
		if math.Abs(got-cpu[i].Dist) > SqDistTolerance*(1+cpu[i].Dist) {
			return false
		}
	}
	return true
}
