package gpusim

import (
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/vec"
)

func TestBruteForceKNNMatchesCPU(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := randomDataset(rng, 400, 5)
	queries := randomDataset(rng, 10, 5)
	d := testDevice(t)
	res, st := BruteForceKNN(d, queries, db, 5)
	if st.Cycles == 0 {
		t.Fatal("no cycles recorded")
	}
	m := metric.Euclidean{}
	for i := 0; i < queries.N(); i++ {
		want := bruteforce.SearchOneK(queries.Row(i), db, 5, m, nil)
		if !MatchesCPU(res[i], want) {
			t.Fatalf("query %d: %v vs %v", i, res[i], want)
		}
	}
}

func TestOneShotKNNOnGPU(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := vec.New(6, 1500)
	for i := 0; i < 1500; i++ {
		c := float32(rng.Intn(8)) * 5
		row := make([]float32, 6)
		for j := range row {
			row[j] = c + float32(rng.NormFloat64())*0.2
		}
		db.Append(row)
	}
	queries := db.Subset(rng.Perm(1500)[:20])
	idx, err := BuildOneShotIndex(db, 110, 110, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	const k = 4
	res, stOne := OneShotKNN(d, queries, idx, k)
	_, stBrute := BruteForceKNN(d, queries, db, k)
	m := metric.Euclidean{}
	matches := 0
	for i := 0; i < queries.N(); i++ {
		want := bruteforce.SearchOneK(queries.Row(i), db, k, m, nil)
		if MatchesCPU(res[i], want) {
			matches++
		}
	}
	if matches < 15 {
		t.Fatalf("one-shot k-NN recall too low: %d/20 lists exact", matches)
	}
	if speedup := float64(stBrute.Cycles) / float64(stOne.Cycles); speedup < 2 {
		t.Fatalf("GPU k-NN speedup %.1f too small", speedup)
	}
}

func TestKNNResultsSortedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randomDataset(rng, 100, 3)
	queries := randomDataset(rng, 5, 3)
	d := testDevice(t)
	res, _ := BruteForceKNN(d, queries, db, 7)
	for qi, nbs := range res {
		if len(nbs) != 7 {
			t.Fatalf("query %d: %d results", qi, len(nbs))
		}
		seen := map[int]bool{}
		for i, nb := range nbs {
			if seen[nb.ID] {
				t.Fatalf("query %d: duplicate id %d", qi, nb.ID)
			}
			seen[nb.ID] = true
			if i > 0 && nbs[i].Dist < nbs[i-1].Dist {
				t.Fatalf("query %d: unsorted", qi)
			}
		}
	}
}

func TestKNNSelectionCostCharged(t *testing.T) {
	// k-NN must cost more than 1-NN on the same scan (the merge folds).
	rng := rand.New(rand.NewSource(4))
	db := randomDataset(rng, 600, 4)
	queries := randomDataset(rng, 8, 4)
	d := testDevice(t)
	_, st1 := BruteForceNN(d, queries, db)
	_, stK := BruteForceKNN(d, queries, db, 16)
	if stK.Cycles <= st1.Cycles {
		t.Fatalf("k-NN cycles %d should exceed 1-NN cycles %d", stK.Cycles, st1.Cycles)
	}
}
