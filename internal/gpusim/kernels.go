package gpusim

import (
	"math"

	"repro/internal/vec"
)

// This file implements the GPU pipelines of the paper's §7.3 on the
// simulated device:
//
//   - BruteForceNN: the baseline of Table 2 — a full distance scan plus a
//     parallel arg-min reduction, both uniform and coalesced;
//   - OneShotNN: the RBC one-shot pipeline — the same two kernels run
//     twice, once against the representatives and once against the
//     assigned ownership list;
//   - TreeWalk: the divergence ablation — a data-dependent conditional
//     descent of the kind §3 argues under-utilizes vector hardware.
//
// Kernel layout: one warp processes one query at a time; lanes stride
// across database points, so global reads of the point matrix are
// perfectly coalesced (lane l reads column element (base+l) of the
// row-major matrix).

// distanceScanKernel computes, for a single query, the squared Euclidean
// distance to database points [lo,hi) and reduces them to the warp-local
// minimum (value, index). It is the inner loop shared by every pipeline.
func distanceScanKernel(w *Warp, q []float32, db *vec.Dataset, ids IReg, lo, hi int, flat []float32) (float32, int32) {
	dim := db.Dim
	width := w.Width()
	bestVal := w.ConstF(float32(math.Inf(1)))
	bestIdx := w.ConstI(-1)
	lane := w.LaneID()
	for base := lo; base < hi; base += width {
		// Each lane owns point base+lane.
		ptIdx := w.AddI(w.ConstI(int32(base)), lane)
		inRange := w.LessI(ptIdx, w.ConstI(int32(hi)))
		// Masked lanes carry idx -1 (no load, no candidate).
		ptIdx = w.SelectI(inRange, ptIdx, w.ConstI(-1))
		acc := w.ConstF(0)
		for j := 0; j < dim; j++ {
			// Column j of the lane's point: row-major offset idx*dim+j.
			off := w.AddI(w.MulI(ptIdx, w.ConstI(int32(dim))), w.ConstI(int32(j)))
			// Keep -1 sentinel for masked lanes.
			off = w.SelectI(inRange, off, w.ConstI(-1))
			x := w.LoadGlobal(flat, off)
			d := w.Sub(x, w.ConstF(q[j]))
			acc = w.FMA(d, d, acc)
		}
		// Masked lanes must not win the reduction.
		acc = w.Select(inRange, acc, w.ConstF(float32(math.Inf(1))))
		resolved := ptIdx
		if ids != nil {
			// Indirect lists: translate list position to database id.
			resolved = w.SelectI(inRange, gatherIDs(w, ids, ptIdx), w.ConstI(-1))
		}
		v, i := w.ReduceMinWithIndex(acc, resolved)
		if i >= 0 && (v < bestVal[0] || (v == bestVal[0] && i < bestIdx[0])) {
			bestVal = w.ConstF(v)
			bestIdx = w.ConstI(i)
		}
	}
	return bestVal[0], bestIdx[0]
}

// gatherIDs maps lane positions through an id table (one extra coalesced
// load — the ownership lists are stored contiguously, mirroring the
// gathered layout of the CPU implementation).
func gatherIDs(w *Warp, ids IReg, pos IReg) IReg {
	w.issue(1)
	// The id table read coalesces exactly like the data read; charge one
	// int32 gather.
	w.chargeTransactions(pos)
	out := make(IReg, w.Width())
	for i := range out {
		if pos[i] >= 0 && int(pos[i]) < len(ids) {
			out[i] = ids[pos[i]]
		} else {
			out[i] = -1
		}
	}
	return out
}

// NNResult is a per-query answer from a simulated pipeline.
type NNResult struct {
	ID     int32
	SqDist float32
}

// BruteForceNN runs exact 1-NN for every query with a full database scan
// on the device and returns the answers plus launch stats.
func BruteForceNN(d *Device, queries, db *vec.Dataset) ([]NNResult, Stats) {
	out := make([]NNResult, queries.N())
	st := d.Launch(queries.N(), func(w *Warp, wid int) {
		v, idx := distanceScanKernel(w, queries.Row(wid), db, nil, 0, db.N(), db.Data)
		out[wid] = NNResult{ID: idx, SqDist: v}
	})
	return out, st
}

// OneShotIndex is the device-resident RBC one-shot structure: the
// gathered representative matrix and the per-representative ownership
// lists (ids + gathered points), contiguous as on the CPU.
type OneShotIndex struct {
	RepData *vec.Dataset // nr x dim
	RepIDs  []int32      // representative database ids
	S       int          // list length
	ListIDs IReg         // nr*s database ids
	ListPts *vec.Dataset // nr*s gathered points
}

// OneShotNN runs the RBC one-shot pipeline for every query: kernel 1
// scans the representatives, kernel 2 scans the winning representative's
// ownership list. Both kernels have the same uniform, coalesced structure
// as brute force — only the scan lengths differ.
func OneShotNN(d *Device, queries *vec.Dataset, idx *OneShotIndex) ([]NNResult, Stats) {
	out := make([]NNResult, queries.N())
	// Kernel 1: nearest representative per query.
	nearestRep := make([]int32, queries.N())
	st := d.Launch(queries.N(), func(w *Warp, wid int) {
		_, rep := distanceScanKernel(w, queries.Row(wid), idx.RepData, nil, 0, idx.RepData.N(), idx.RepData.Data)
		nearestRep[wid] = rep
	})
	// Kernel 2: scan the winning list.
	st2 := d.Launch(queries.N(), func(w *Warp, wid int) {
		rep := int(nearestRep[wid])
		lo, hi := rep*idx.S, (rep+1)*idx.S
		v, id := distanceScanKernel(w, queries.Row(wid), idx.ListPts, idx.ListIDs, lo, hi, idx.ListPts.Data)
		out[wid] = NNResult{ID: id, SqDist: v}
	})
	st.Add(st2)
	return out, st
}

// TreeWalkConfig shapes the divergence ablation kernel.
type TreeWalkConfig struct {
	// Depth is the number of conditional levels each lane descends.
	Depth int
	// Nodes is the size of the simulated tree array.
	Nodes int
}

// TreeWalk models a bare-bones data-dependent binary descent: each lane
// starts at the root of the same implicit tree but branches on its own
// query value, so lanes part ways immediately — the access pattern of a
// metric-tree search. Returns per-lane leaf indices (to defeat dead-code
// concerns) and the stats, whose DivergenceRatio and scattered
// transactions are the quantities of interest.
func TreeWalk(d *Device, queries *vec.Dataset, cfg TreeWalkConfig) ([]int32, Stats) {
	if cfg.Depth <= 0 {
		cfg.Depth = 16
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1 << 16
	}
	// Synthetic node thresholds: deterministic pseudo-random layout.
	nodes := make([]float32, cfg.Nodes)
	state := uint32(0x9e3779b9)
	for i := range nodes {
		state = state*1664525 + 1013904223
		nodes[i] = float32(state>>8) / float32(1<<24)
	}
	width := d.Config().WarpSize
	warps := (queries.N() + width - 1) / width
	leaves := make([]int32, warps*width)
	st := d.Launch(warps, func(w *Warp, wid int) {
		lane := w.LaneID()
		gid := w.AddI(w.ConstI(int32(wid*width)), lane)
		// Each lane's steering value: first coordinate of its query.
		qv := make(Reg, width)
		for i := 0; i < width; i++ {
			g := wid*width + i
			if g < queries.N() {
				qv[i] = queries.Row(g)[0]
			}
		}
		pos := w.ConstI(0)
		for depth := 0; depth < cfg.Depth; depth++ {
			// Scattered load of each lane's current node threshold.
			wrapped := modI(w, pos, int32(cfg.Nodes))
			thresh := w.LoadGlobal(nodes, wrapped)
			goLeft := w.LessF(qv, thresh)
			left := w.AddI(w.MulI(pos, w.ConstI(2)), w.ConstI(1))
			right := w.AddI(w.MulI(pos, w.ConstI(2)), w.ConstI(2))
			next := w.ConstI(0)
			// The divergent step: lanes take different subtrees, so both
			// sides of the branch execute.
			w.If(goLeft, func() {
				next = w.SelectI(goLeft, left, next)
			}, func() {
				inv := make(Mask, width)
				for i := range inv {
					inv[i] = !goLeft[i]
				}
				next = w.SelectI(inv, right, next)
			})
			pos = next
			// Mix the steering value so divergence persists down levels.
			qv = w.Mul(qv, w.ConstF(1.61803))
			qv = w.Sub(qv, thresh)
		}
		for i := 0; i < width; i++ {
			if g := int(gid[i]); g < len(leaves) {
				leaves[g] = pos[i]
			}
		}
	})
	return leaves, st
}

// modI computes pos mod m lane-wise (1 slot).
func modI(w *Warp, pos IReg, m int32) IReg {
	w.issue(1)
	out := make(IReg, w.Width())
	for i := range out {
		v := pos[i] % m
		if v < 0 {
			v += m
		}
		out[i] = v
	}
	return out
}

// UniformScan is the control for the divergence ablation: the same number
// of conditional levels, but every lane branches the same way (the branch
// predicate is warp-uniform), and loads are coalesced. Comparing its
// Cycles against TreeWalk isolates the SIMT divergence + scatter penalty.
func UniformScan(d *Device, queries *vec.Dataset, depth int) ([]int32, Stats) {
	if depth <= 0 {
		depth = 16
	}
	width := d.Config().WarpSize
	warps := (queries.N() + width - 1) / width
	sink := make([]int32, warps*width)
	table := make([]float32, 1<<16)
	for i := range table {
		table[i] = float32(i%97) / 97
	}
	st := d.Launch(warps, func(w *Warp, wid int) {
		lane := w.LaneID()
		pos := lane // coalesced: consecutive lanes, consecutive addresses
		acc := w.ConstF(0)
		uniformFlag := wid%2 == 0
		for dp := 0; dp < depth; dp++ {
			x := w.LoadGlobal(table, pos)
			acc = w.FMA(x, w.ConstF(0.5), acc)
			// Warp-uniform branch: all lanes agree by construction.
			cond := make(Mask, width)
			for i := range cond {
				cond[i] = uniformFlag
			}
			w.If(cond, func() {
				acc = w.Add(acc, w.ConstF(1))
			}, func() {
				acc = w.Sub(acc, w.ConstF(1))
			})
			pos = w.AddI(pos, w.ConstI(int32(width)))
		}
		for i := 0; i < width; i++ {
			g := wid*width + i
			if g < len(sink) {
				sink[g] = int32(acc[i])
			}
		}
	})
	return sink, st
}
