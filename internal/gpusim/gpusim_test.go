package gpusim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/vec"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func randomDataset(rng *rand.Rand, n, dim int) *vec.Dataset {
	d := vec.New(dim, n)
	for i := 0; i < n; i++ {
		row := make([]float32, dim)
		for j := range row {
			row[j] = rng.Float32()*2 - 1
		}
		d.Append(row)
	}
	return d
}

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice(Config{}); err == nil {
		t.Fatal("zero config should error")
	}
	if _, err := NewDevice(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestWarpArithmetic(t *testing.T) {
	d := testDevice(t)
	var sum, fma, sqrt float32
	d.Launch(1, func(w *Warp, _ int) {
		a := w.ConstF(3)
		b := w.ConstF(4)
		sum = w.Add(a, b)[0]
		fma = w.FMA(a, b, w.ConstF(1))[0]
		sqrt = w.Sqrt(w.Mul(b, b))[0]
	})
	if sum != 7 || fma != 13 || sqrt != 4 {
		t.Fatalf("sum=%v fma=%v sqrt=%v", sum, fma, sqrt)
	}
}

func TestWarpLaneAndInteger(t *testing.T) {
	d := testDevice(t)
	var lane0, lane31 int32
	var prod int32
	d.Launch(1, func(w *Warp, _ int) {
		l := w.LaneID()
		lane0, lane31 = l[0], l[31]
		prod = w.MulI(w.ConstI(6), w.ConstI(7))[0]
	})
	if lane0 != 0 || lane31 != 31 || prod != 42 {
		t.Fatalf("lanes %d %d prod %d", lane0, lane31, prod)
	}
}

func TestDivergenceAccounting(t *testing.T) {
	d := testDevice(t)
	st := d.Launch(1, func(w *Warp, _ int) {
		l := w.LaneID()
		// Half the lanes take each side: divergent.
		m := w.LessI(l, w.ConstI(16))
		w.If(m, func() {}, func() {})
		// All lanes agree: uniform.
		m2 := w.LessI(l, w.ConstI(64))
		w.If(m2, func() {}, func() {})
	})
	if st.DivergentBranches != 1 || st.UniformBranches != 1 {
		t.Fatalf("branches: %+v", st)
	}
	if r := st.DivergenceRatio(); r != 0.5 {
		t.Fatalf("ratio %v", r)
	}
}

func TestDivergenceExecutesBothSides(t *testing.T) {
	d := testDevice(t)
	thenRan, elseRan := false, false
	d.Launch(1, func(w *Warp, _ int) {
		m := w.LessI(w.LaneID(), w.ConstI(1)) // only lane 0 true
		w.If(m, func() { thenRan = true }, func() { elseRan = true })
	})
	if !thenRan || !elseRan {
		t.Fatal("divergent branch must execute both paths")
	}
}

func TestMaskedLanesDoNotWrite(t *testing.T) {
	d := testDevice(t)
	mem := make([]float32, 32)
	d.Launch(1, func(w *Warp, _ int) {
		m := w.LessI(w.LaneID(), w.ConstI(4))
		w.If(m, func() {
			w.StoreGlobal(mem, w.LaneID(), w.ConstF(1))
		}, nil)
	})
	for i, v := range mem {
		want := float32(0)
		if i < 4 {
			want = 1
		}
		if v != want {
			t.Fatalf("mem[%d]=%v", i, v)
		}
	}
}

func TestCoalescingModel(t *testing.T) {
	d := testDevice(t)
	mem := make([]float32, 4096)
	// Coalesced: 32 consecutive floats = 128 bytes = 1 transaction.
	st1 := d.Launch(1, func(w *Warp, _ int) {
		w.LoadGlobal(mem, w.LaneID())
	})
	if st1.MemTransactions != 1 {
		t.Fatalf("coalesced load: %d transactions, want 1", st1.MemTransactions)
	}
	// Scattered: stride 32 → every lane hits its own segment.
	st2 := d.Launch(1, func(w *Warp, _ int) {
		w.LoadGlobal(mem, w.MulI(w.LaneID(), w.ConstI(32)))
	})
	if st2.MemTransactions != 32 {
		t.Fatalf("scattered load: %d transactions, want 32", st2.MemTransactions)
	}
	if st2.Cycles <= st1.Cycles {
		t.Fatal("scattered loads must cost more cycles")
	}
}

func TestNegativeIndexIsMaskedLoad(t *testing.T) {
	d := testDevice(t)
	mem := []float32{5, 6, 7}
	var got Reg
	st := d.Launch(1, func(w *Warp, _ int) {
		idx := w.ConstI(-1)
		got = w.LoadGlobal(mem, idx)
	})
	if got[0] != 0 {
		t.Fatal("masked load should produce zero")
	}
	if st.MemTransactions != 0 {
		t.Fatal("masked load should cost no transactions")
	}
}

func TestReduceMin(t *testing.T) {
	d := testDevice(t)
	var v float32
	var lane int
	d.Launch(1, func(w *Warp, _ int) {
		vals := make(Reg, w.Width())
		for i := range vals {
			vals[i] = float32(100 - i)
		}
		vals[7] = -5
		v, lane = w.ReduceMin(vals)
	})
	if v != -5 || lane != 7 {
		t.Fatalf("ReduceMin: %v lane %d", v, lane)
	}
}

func TestReduceMinWithIndexTies(t *testing.T) {
	d := testDevice(t)
	var idx int32
	d.Launch(1, func(w *Warp, _ int) {
		vals := w.ConstF(1) // all tie
		payload := make(IReg, w.Width())
		for i := range payload {
			payload[i] = int32(100 - i) // lowest payload on lane 31
		}
		_, idx = w.ReduceMinWithIndex(vals, payload)
	})
	if idx != 69 {
		t.Fatalf("tie should pick smallest payload, got %d", idx)
	}
}

func TestSMLoadBalancing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SMs = 2
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 identical warps over 2 SMs: device cycles should be ~2 warps'
	// worth, not 4 (parallel SMs) and not 1 (each SM runs 2).
	work := func(w *Warp, _ int) {
		for i := 0; i < 100; i++ {
			w.Add(w.ConstF(1), w.ConstF(2))
		}
	}
	one := d.Launch(1, work)
	four := d.Launch(4, work)
	if four.Cycles != 2*one.Cycles {
		t.Fatalf("4 warps on 2 SMs: %d cycles, want %d", four.Cycles, 2*one.Cycles)
	}
}

func TestBruteForceNNMatchesCPU(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := randomDataset(rng, 500, 6)
	queries := randomDataset(rng, 20, 6)
	d := testDevice(t)
	res, st := BruteForceNN(d, queries, db)
	if st.Cycles == 0 || st.WarpsLaunched != int64(queries.N()) {
		t.Fatalf("stats: %+v", st)
	}
	m := metric.Euclidean{}
	for i := 0; i < queries.N(); i++ {
		want := bruteforce.SearchOne(queries.Row(i), db, m, nil)
		if int(res[i].ID) != want.ID {
			// Allow distance ties.
			got := m.Distance(queries.Row(i), db.Row(int(res[i].ID)))
			if math.Abs(got-want.Dist) > 1e-5 {
				t.Fatalf("query %d: id %d (d=%v) want %d (d=%v)", i, res[i].ID, got, want.ID, want.Dist)
			}
		}
	}
}

func TestOneShotNNOnGPU(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Clustered data so one-shot recall is near-perfect.
	db := vec.New(8, 2000)
	for i := 0; i < 2000; i++ {
		c := float32(rng.Intn(10)) * 5
		row := make([]float32, 8)
		for j := range row {
			row[j] = c + float32(rng.NormFloat64())*0.2
		}
		db.Append(row)
	}
	queries := db.Subset(rng.Perm(2000)[:50])
	idx, err := BuildOneShotIndex(db, 130, 130, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	res, stOne := OneShotNN(d, queries, idx)
	_, stBrute := BruteForceNN(d, queries, db)

	// Recall: queries are database points, so the answer should be the
	// point itself (distance 0) nearly always.
	exact := 0
	for _, r := range res {
		if r.SqDist == 0 {
			exact++
		}
	}
	if exact < 45 {
		t.Fatalf("one-shot recall too low: %d/50 exact", exact)
	}
	// The paper's Table 2 claim: one-shot is dramatically cheaper than
	// brute force on the same device.
	speedup := float64(stBrute.Cycles) / float64(stOne.Cycles)
	if speedup < 3 {
		t.Fatalf("GPU one-shot speedup %.1fx too small (brute %d cycles, rbc %d)",
			speedup, stBrute.Cycles, stOne.Cycles)
	}
}

func TestBuildOneShotIndexValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randomDataset(rng, 100, 4)
	if _, err := BuildOneShotIndex(&vec.Dataset{}, 5, 5, 1); err == nil {
		t.Fatal("empty db should error")
	}
	if _, err := BuildOneShotIndex(db, 0, 5, 1); err == nil {
		t.Fatal("numReps=0 should error")
	}
	if _, err := BuildOneShotIndex(db, 1000, 5, 1); err == nil {
		t.Fatal("numReps>n should error")
	}
	idx, err := BuildOneShotIndex(db, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if idx.S != 10 {
		t.Fatalf("s default: %d", idx.S)
	}
	idx2, err := BuildOneShotIndex(db, 10, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if idx2.S != 100 {
		t.Fatalf("s clamp: %d", idx2.S)
	}
}

func TestTreeWalkDivergesUniformScanDoesNot(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	queries := randomDataset(rng, 256, 4)
	d := testDevice(t)
	_, stTree := TreeWalk(d, queries, TreeWalkConfig{Depth: 12})
	_, stUni := UniformScan(d, queries, 12)
	if stTree.DivergenceRatio() < 0.5 {
		t.Fatalf("tree walk divergence ratio %.2f too low", stTree.DivergenceRatio())
	}
	if stUni.DivergentBranches != 0 {
		t.Fatalf("uniform scan diverged: %+v", stUni)
	}
	// Scattered tree loads must cost more transactions per load than the
	// coalesced scan.
	perLoadTree := float64(stTree.MemTransactions) / float64(stTree.WarpsLaunched*12)
	perLoadUni := float64(stUni.MemTransactions) / float64(stUni.WarpsLaunched*12)
	if perLoadTree <= perLoadUni {
		t.Fatalf("tree loads should scatter: %.2f vs %.2f tx/load", perLoadTree, perLoadUni)
	}
}

func TestLaunchZeroWarps(t *testing.T) {
	d := testDevice(t)
	st := d.Launch(0, func(w *Warp, _ int) { t.Fatal("kernel must not run") })
	if st.Cycles != 0 || st.WarpsLaunched != 0 {
		t.Fatalf("zero launch: %+v", st)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Cycles: 1, Instructions: 2, MemTransactions: 3, DivergentBranches: 4, UniformBranches: 5, WarpsLaunched: 6}
	b := a
	a.Add(b)
	if a.Cycles != 2 || a.Instructions != 4 || a.MemTransactions != 6 || a.WarpsLaunched != 12 {
		t.Fatalf("Add: %+v", a)
	}
	if (Stats{}).DivergenceRatio() != 0 {
		t.Fatal("empty ratio")
	}
}

// Property: the GPU brute-force kernel always returns the true NN
// distance (squared) up to float32 rounding.
func TestQuickGPUBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDataset(rng, 100, 3)
		queries := randomDataset(rng, 3, 3)
		d, err := NewDevice(DefaultConfig())
		if err != nil {
			return false
		}
		res, _ := BruteForceNN(d, queries, db)
		m := metric.Euclidean{}
		for i := range res {
			want := bruteforce.SearchOne(queries.Row(i), db, m, nil)
			got := math.Sqrt(float64(res[i].SqDist))
			if math.Abs(got-want.Dist) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
