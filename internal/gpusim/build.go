package gpusim

import (
	"fmt"
	"math/rand"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/vec"
)

// BuildOneShotIndex constructs the device-resident one-shot RBC structure.
// As in the paper's implementation, the index is built host-side (the
// build is itself two brute-force calls, but it is a one-time cost) and
// "uploaded" — here, laid out in the contiguous arrays the kernels scan.
func BuildOneShotIndex(db *vec.Dataset, numReps, s int, seed int64) (*OneShotIndex, error) {
	n := db.N()
	if n == 0 {
		return nil, fmt.Errorf("gpusim: empty database")
	}
	if numReps <= 0 || numReps > n {
		return nil, fmt.Errorf("gpusim: numReps %d out of range (n=%d)", numReps, n)
	}
	if s <= 0 {
		s = numReps
	}
	if s > n {
		s = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)[:numReps]
	repIDs := make([]int32, numReps)
	for i, p := range perm {
		repIDs[i] = int32(p)
	}
	repData := vec.New(db.Dim, numReps)
	for _, p := range perm {
		repData.Append(db.Row(p))
	}
	idx := &OneShotIndex{
		RepData: repData,
		RepIDs:  repIDs,
		S:       s,
		ListIDs: make(IReg, numReps*s),
		ListPts: vec.New(db.Dim, numReps*s),
	}
	// BF(R,X) through the shared tiled multi-query primitive: one
	// matrix-matrix call instead of one database stream per representative.
	lists := bruteforce.SearchK(repData, db, s, metric.Euclidean{}, nil)
	for j := 0; j < numReps; j++ {
		for i, nb := range lists[j] {
			idx.ListIDs[j*s+i] = int32(nb.ID)
		}
	}
	for j := 0; j < numReps; j++ {
		for i := range lists[j] {
			idx.ListPts.Append(db.Row(int(idx.ListIDs[j*s+i])))
		}
	}
	return idx, nil
}
