package gpusim

import "math"

// Warp is the execution context a Kernel runs against: a WarpSize-wide
// SIMD lane group executing in lockstep. Registers are lane-vectors
// (Reg, IReg); every vector operation costs one issue slot for the whole
// warp; control flow is expressed through If, which models divergence by
// executing both paths under complementary lane masks.
type Warp struct {
	dev    *Device
	width  int
	active []bool

	cycles       int64
	instructions int64
	transactions int64
	divergent    int64
	uniform      int64
}

// Reg is a floating-point register file slice: one value per lane.
type Reg []float32

// IReg is an integer register: one value per lane.
type IReg []int32

// Width reports the number of lanes.
func (w *Warp) Width() int { return w.width }

func (w *Warp) issue(n int64) {
	w.instructions += n
	w.cycles += n
}

// --- Register constructors -------------------------------------------------

// ConstF broadcasts a float constant to all lanes (register initializer;
// free, like a compiler immediate).
func (w *Warp) ConstF(v float32) Reg {
	r := make(Reg, w.width)
	for i := range r {
		r[i] = v
	}
	return r
}

// ConstI broadcasts an integer constant.
func (w *Warp) ConstI(v int32) IReg {
	r := make(IReg, w.width)
	for i := range r {
		r[i] = v
	}
	return r
}

// LaneID returns each lane's index 0..width-1 (free: hardware register).
func (w *Warp) LaneID() IReg {
	r := make(IReg, w.width)
	for i := range r {
		r[i] = int32(i)
	}
	return r
}

// --- Arithmetic (1 issue slot each) -----------------------------------------

func (w *Warp) binaryF(a, b Reg, f func(x, y float32) float32) Reg {
	w.issue(1)
	out := make(Reg, w.width)
	for i := range out {
		if w.active[i] {
			out[i] = f(a[i], b[i])
		}
	}
	return out
}

// Add returns a+b lane-wise.
func (w *Warp) Add(a, b Reg) Reg { return w.binaryF(a, b, func(x, y float32) float32 { return x + y }) }

// Sub returns a-b lane-wise.
func (w *Warp) Sub(a, b Reg) Reg { return w.binaryF(a, b, func(x, y float32) float32 { return x - y }) }

// Mul returns a*b lane-wise.
func (w *Warp) Mul(a, b Reg) Reg { return w.binaryF(a, b, func(x, y float32) float32 { return x * y }) }

// FMA returns a*b+c lane-wise in a single issue slot (fused).
func (w *Warp) FMA(a, b, c Reg) Reg {
	w.issue(1)
	out := make(Reg, w.width)
	for i := range out {
		if w.active[i] {
			out[i] = a[i]*b[i] + c[i]
		}
	}
	return out
}

// Sqrt returns √a lane-wise (special-function unit, 1 slot).
func (w *Warp) Sqrt(a Reg) Reg {
	w.issue(1)
	out := make(Reg, w.width)
	for i := range out {
		if w.active[i] {
			out[i] = float32(math.Sqrt(float64(a[i])))
		}
	}
	return out
}

// AddI returns a+b lane-wise on integers.
func (w *Warp) AddI(a, b IReg) IReg {
	w.issue(1)
	out := make(IReg, w.width)
	for i := range out {
		if w.active[i] {
			out[i] = a[i] + b[i]
		}
	}
	return out
}

// MulI returns a*b lane-wise on integers.
func (w *Warp) MulI(a, b IReg) IReg {
	w.issue(1)
	out := make(IReg, w.width)
	for i := range out {
		if w.active[i] {
			out[i] = a[i] * b[i]
		}
	}
	return out
}

// --- Comparisons and divergence ---------------------------------------------

// Mask is a lane predicate.
type Mask []bool

// LessF compares a < b lane-wise.
func (w *Warp) LessF(a, b Reg) Mask {
	w.issue(1)
	m := make(Mask, w.width)
	for i := range m {
		if w.active[i] {
			m[i] = a[i] < b[i]
		}
	}
	return m
}

// LessI compares a < b lane-wise on integers.
func (w *Warp) LessI(a, b IReg) Mask {
	w.issue(1)
	m := make(Mask, w.width)
	for i := range m {
		if w.active[i] {
			m[i] = a[i] < b[i]
		}
	}
	return m
}

// If executes then under the lanes where m holds and els (if non-nil)
// under the complement. When the active lanes disagree, both sides run —
// the SIMT divergence penalty; when they agree, only the taken side runs.
func (w *Warp) If(m Mask, then func(), els func()) {
	w.issue(1) // the branch instruction itself
	anyTrue, anyFalse := false, false
	for i := range m {
		if !w.active[i] {
			continue
		}
		if m[i] {
			anyTrue = true
		} else {
			anyFalse = true
		}
	}
	if anyTrue && anyFalse {
		w.divergent++
	} else {
		w.uniform++
	}
	saved := w.active
	if anyTrue && then != nil {
		w.active = andMask(saved, m)
		then()
	}
	if anyFalse && els != nil {
		w.active = andNotMask(saved, m)
		els()
	}
	w.active = saved
}

func andMask(a []bool, m Mask) []bool {
	out := make([]bool, len(a))
	for i := range a {
		out[i] = a[i] && m[i]
	}
	return out
}

func andNotMask(a []bool, m Mask) []bool {
	out := make([]bool, len(a))
	for i := range a {
		out[i] = a[i] && !m[i]
	}
	return out
}

// Select returns m ? a : b lane-wise without divergence (predicated move).
func (w *Warp) Select(m Mask, a, b Reg) Reg {
	w.issue(1)
	out := make(Reg, w.width)
	for i := range out {
		if !w.active[i] {
			continue
		}
		if m[i] {
			out[i] = a[i]
		} else {
			out[i] = b[i]
		}
	}
	return out
}

// SelectI is Select for integer registers.
func (w *Warp) SelectI(m Mask, a, b IReg) IReg {
	w.issue(1)
	out := make(IReg, w.width)
	for i := range out {
		if !w.active[i] {
			continue
		}
		if m[i] {
			out[i] = a[i]
		} else {
			out[i] = b[i]
		}
	}
	return out
}

// --- Memory -----------------------------------------------------------------

// LoadGlobal gathers mem[idx[lane]] into a register. Cost: one issue slot
// plus MemCyclesPerTransaction per distinct TransactionBytes-aligned
// segment touched by active lanes — consecutive lanes reading consecutive
// addresses coalesce into one transaction; scattered reads pay per lane.
// Lanes with idx < 0 are treated as inactive (masked load).
func (w *Warp) LoadGlobal(mem []float32, idx IReg) Reg {
	w.issue(1)
	out := make(Reg, w.width)
	w.chargeTransactions(idx)
	for i := range out {
		if w.active[i] && idx[i] >= 0 && int(idx[i]) < len(mem) {
			out[i] = mem[idx[i]]
		}
	}
	return out
}

// StoreGlobal scatters val into mem[idx[lane]] with the same coalescing
// cost model as LoadGlobal.
func (w *Warp) StoreGlobal(mem []float32, idx IReg, val Reg) {
	w.issue(1)
	w.chargeTransactions(idx)
	for i := 0; i < w.width; i++ {
		if w.active[i] && idx[i] >= 0 && int(idx[i]) < len(mem) {
			mem[idx[i]] = val[i]
		}
	}
}

func (w *Warp) chargeTransactions(idx IReg) {
	elemsPerTx := w.dev.cfg.TransactionBytes / 4
	if elemsPerTx <= 0 {
		elemsPerTx = 1
	}
	seen := make(map[int32]struct{}, 4)
	for i := 0; i < w.width; i++ {
		if !w.active[i] || idx[i] < 0 {
			continue
		}
		seg := idx[i] / int32(elemsPerTx)
		seen[seg] = struct{}{}
	}
	n := int64(len(seen))
	w.transactions += n
	w.cycles += n * int64(w.dev.cfg.MemCyclesPerTransaction)
}

// --- Warp-wide reductions (log2(width) shuffle steps) ------------------------

// ReduceMin returns the minimum value across active lanes and the lane id
// holding it (lowest lane on ties). Inactive lanes are ignored. Cost:
// log2(width) shuffle+compare slots.
func (w *Warp) ReduceMin(v Reg) (float32, int) {
	steps := int64(0)
	for s := 1; s < w.width; s <<= 1 {
		steps++
	}
	w.issue(steps)
	best := float32(math.Inf(1))
	lane := -1
	for i := 0; i < w.width; i++ {
		if w.active[i] && v[i] < best {
			best, lane = v[i], i
		}
	}
	return best, lane
}

// ReduceMinWithIndex reduces (value, payload-index) pairs: the payload of
// the winning lane is returned alongside the minimum. Ties prefer the
// smaller payload, making kernel results deterministic.
func (w *Warp) ReduceMinWithIndex(v Reg, payload IReg) (float32, int32) {
	steps := int64(0)
	for s := 1; s < w.width; s <<= 1 {
		steps++
	}
	w.issue(2 * steps) // value and payload move together
	best := float32(math.Inf(1))
	var idx int32 = -1
	for i := 0; i < w.width; i++ {
		if !w.active[i] {
			continue
		}
		switch {
		case idx == -1:
			best, idx = v[i], payload[i]
		case v[i] < best:
			best, idx = v[i], payload[i]
		case v[i] == best && payload[i] < idx:
			idx = payload[i]
		}
	}
	return best, idx
}
