// Package gpusim is a cycle-accounting SIMT (GPU-style) manycore
// simulator, standing in for the NVIDIA Tesla c2050 of the paper's §7.3.
//
// The paper's GPU claims rest on three architectural facts:
//
//  1. uniform, coalesced kernels (brute-force distance scans, reductions)
//     run at full device throughput;
//  2. divergent, conditional kernels (tree traversals) serialize both
//     branch paths per warp and scatter their memory accesses; and
//  3. the RBC one-shot search is built entirely from kernels of kind (1),
//     so the work reduction it offers translates into wall-clock speedup.
//
// The simulator models exactly those effects: kernels are written against
// a warp-level vector API; every instruction costs one issue slot per
// warp, divergent branches execute both sides under an active-lane mask,
// and global memory costs are counted in coalesced 128-byte transactions.
// Simulated cycles are reported as
//
//	cycles = max over SMs of Σ (issue slots + memory slots) of its warps
//
// — a throughput model in which latency is hidden by occupancy, which is
// the regime brute-force-shaped kernels actually operate in.
package gpusim

import "fmt"

// Config describes the simulated device. The zero value is unusable; use
// DefaultConfig (modeled loosely on the Tesla c2050: 14 SMs, 32-wide
// warps).
type Config struct {
	// SMs is the number of streaming multiprocessors.
	SMs int
	// WarpSize is the number of lanes per warp.
	WarpSize int
	// MemCyclesPerTransaction is the bandwidth cost, in issue slots, of
	// one 128-byte global-memory transaction.
	MemCyclesPerTransaction int
	// TransactionBytes is the coalescing granularity.
	TransactionBytes int
}

// DefaultConfig returns a c2050-flavoured device model.
func DefaultConfig() Config {
	return Config{SMs: 14, WarpSize: 32, MemCyclesPerTransaction: 8, TransactionBytes: 128}
}

func (c Config) validate() error {
	if c.SMs <= 0 || c.WarpSize <= 0 || c.MemCyclesPerTransaction <= 0 || c.TransactionBytes <= 0 {
		return fmt.Errorf("gpusim: invalid config %+v", c)
	}
	return nil
}

// Stats accumulates simulated execution costs for one or more launches.
type Stats struct {
	// Cycles is the simulated wall-clock of the device: the busiest SM's
	// total issue+memory slots.
	Cycles int64
	// Instructions counts warp-instructions issued (all lanes of a warp
	// issuing one op = 1 instruction).
	Instructions int64
	// MemTransactions counts global-memory transactions after coalescing.
	MemTransactions int64
	// DivergentBranches counts warp branches whose lanes disagreed,
	// forcing both paths to execute.
	DivergentBranches int64
	// UniformBranches counts warp branches where all lanes agreed.
	UniformBranches int64
	// WarpsLaunched counts warps across all launches.
	WarpsLaunched int64
}

// Add accumulates o into s (Cycles add serially: launches are dependent).
func (s *Stats) Add(o Stats) {
	s.Cycles += o.Cycles
	s.Instructions += o.Instructions
	s.MemTransactions += o.MemTransactions
	s.DivergentBranches += o.DivergentBranches
	s.UniformBranches += o.UniformBranches
	s.WarpsLaunched += o.WarpsLaunched
}

// DivergenceRatio is the fraction of branches that diverged.
func (s Stats) DivergenceRatio() float64 {
	total := s.DivergentBranches + s.UniformBranches
	if total == 0 {
		return 0
	}
	return float64(s.DivergentBranches) / float64(total)
}

// Device is a simulated GPU. Methods are not safe for concurrent use; the
// experiments drive one device per goroutine.
type Device struct {
	cfg Config
}

// NewDevice creates a device with the given configuration.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Device{cfg: cfg}, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Kernel is the body executed by every warp of a launch. The Warp
// argument exposes the vector ISA; warpID identifies the warp within the
// launch grid.
type Kernel func(w *Warp, warpID int)

// Launch runs the kernel over `warps` warps distributed round-robin over
// the SMs and returns the launch's stats. Lanes of warp w have global
// thread ids w*WarpSize+lane. Memory effects happen eagerly in host
// memory; costs are accounted per the model above.
func (d *Device) Launch(warps int, k Kernel) Stats {
	var st Stats
	if warps <= 0 {
		return st
	}
	smCycles := make([]int64, d.cfg.SMs)
	for wid := 0; wid < warps; wid++ {
		w := &Warp{dev: d, width: d.cfg.WarpSize}
		w.active = make([]bool, w.width)
		for i := range w.active {
			w.active[i] = true
		}
		k(w, wid)
		st.Instructions += w.instructions
		st.MemTransactions += w.transactions
		st.DivergentBranches += w.divergent
		st.UniformBranches += w.uniform
		st.WarpsLaunched++
		smCycles[wid%d.cfg.SMs] += w.cycles
	}
	for _, c := range smCycles {
		if c > st.Cycles {
			st.Cycles = c
		}
	}
	return st
}
