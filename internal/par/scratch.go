package par

import "sync"

// Scratch is per-worker reusable buffer space for the tiled search paths:
// ordering tiles, distance rows, candidate heaps. A worker acquires one
// with GetScratch, carves buffers out of it by slot, and releases it with
// PutScratch, so steady-state searches perform no per-query allocation.
//
// Slots are small fixed indices chosen by the caller; two live buffers must
// use distinct slots. Requesting a slot again invalidates its previous
// contents (the backing array is reused). Within internal/core the slot
// ownership convention is: float64 0–2 and 5 belong to the per-query back
// half (phase-1 orderings, bracket lows, bracket highs; slot 5 is
// time-shared between the live-gamma buffer and the list-scan block that
// is carved after it), 3–4 and 6 to the batched front half (rows, tile,
// query norms). Float64 slot 7 is time-shared: the back halves use it
// during per-query setup (the exact γ candidate buffer) and
// core.GroupedScan — which only ever runs after setup completes —
// re-carves it along with float32 slot 0 and int slots 2–3 for its block
// bookkeeping. Grouped-scan callers own
// int slots 0–1 (taker ids, taker windows) and 4–5 (segment grouping),
// plus float64 slot 0 for per-taker window bounds that must stay live
// across GroupedScan calls (free in that context: the per-query back
// half that otherwise owns it never runs inside a grouped scan).
type Scratch struct {
	f64   [8][]float64
	f32   [2][]float32
	i8    [2][]int8
	ints  [6][]int
	heaps [2]*KHeap
	slab  []*KHeap
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch returns a pooled Scratch.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns s to the pool. The caller must not retain any buffer
// obtained from s afterwards.
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// Float64 returns a length-n float64 buffer for slot. Contents are
// unspecified.
func (s *Scratch) Float64(slot, n int) []float64 {
	if cap(s.f64[slot]) < n {
		s.f64[slot] = make([]float64, n)
	}
	s.f64[slot] = s.f64[slot][:n]
	return s.f64[slot]
}

// Float32 returns a length-n float32 buffer for slot. Contents are
// unspecified.
func (s *Scratch) Float32(slot, n int) []float32 {
	if cap(s.f32[slot]) < n {
		s.f32[slot] = make([]float32, n)
	}
	s.f32[slot] = s.f32[slot][:n]
	return s.f32[slot]
}

// Int8s returns a length-n int8 buffer for slot. Contents are
// unspecified. Used by the quantized scan paths for encoded query codes.
func (s *Scratch) Int8s(slot, n int) []int8 {
	if cap(s.i8[slot]) < n {
		s.i8[slot] = make([]int8, n)
	}
	s.i8[slot] = s.i8[slot][:n]
	return s.i8[slot]
}

// Ints returns a length-n int buffer for slot. Contents are unspecified.
func (s *Scratch) Ints(slot, n int) []int {
	if cap(s.ints[slot]) < n {
		s.ints[slot] = make([]int, n)
	}
	s.ints[slot] = s.ints[slot][:n]
	return s.ints[slot]
}

// Heap returns an empty KHeap with capacity k for slot.
func (s *Scratch) Heap(slot, k int) *KHeap {
	if s.heaps[slot] == nil {
		s.heaps[slot] = NewKHeap(k)
		return s.heaps[slot]
	}
	s.heaps[slot].Reconfigure(k)
	return s.heaps[slot]
}

// HeapSlab returns n empty heaps of capacity k, for callers that select
// top-k for a block of queries at once.
func (s *Scratch) HeapSlab(n, k int) []*KHeap {
	for len(s.slab) < n {
		s.slab = append(s.slab, NewKHeap(k))
	}
	for i := 0; i < n; i++ {
		s.slab[i].Reconfigure(k)
	}
	return s.slab[:n]
}
