// Package par supplies the parallel building blocks the paper's brute-force
// primitive decomposes into (§3): a blocked parallel for over independent
// work items, a tree reduction ("inverted binary tree") for the comparison
// step, a parallel arg-min, and bounded top-k heaps for k-NN selection.
//
// Everything sizes itself from GOMAXPROCS, so the same code exercises a
// single core or a 48-core server without change.
package par

import (
	"runtime"
	"sync"
)

// Workers reports the degree of parallelism used by this package:
// GOMAXPROCS at call time.
func Workers() int { return runtime.GOMAXPROCS(0) }

// Spawn grains for this package's own parallel loops. A goroutine
// hand-off costs on the order of a microsecond, so a block must carry at
// least a few microseconds of work to win; the constants below encode
// that break-even for each loop body, measured on the row/tile kernels
// this package feeds (see the BenchmarkRowKernel* sweep in
// internal/metric).
const (
	// ArgMinGrain: a float64 compare-scan runs at roughly 1 element/ns,
	// so 1024 elements ≈ 1µs per block — the spawn break-even.
	ArgMinGrain = 1024

	// treeReduceGrain: combine calls are opaque (function-valued), so the
	// grain assumes a heavier body than ArgMin's compare — 64 combines of
	// ~tens of ns each reach the same few-µs block cost.
	treeReduceGrain = 64
)

// For runs fn over the index range [0,n) split into contiguous blocks, one
// goroutine per block, with at most Workers() blocks and at least minGrain
// indices per block. fn is called as fn(lo,hi) with lo < hi. Blocks are
// disjoint, so fn may write to per-index state without synchronization.
//
// When the range is smaller than minGrain (or a single worker is
// available) fn runs inline on the calling goroutine, keeping the fast
// path allocation-free.
func For(n, minGrain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minGrain < 1 {
		minGrain = 1
	}
	workers := Workers()
	blocks := n / minGrain
	if blocks > workers {
		blocks = workers
	}
	if blocks <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(blocks)
	// Distribute the remainder so block sizes differ by at most one.
	size := n / blocks
	rem := n % blocks
	lo := 0
	for b := 0; b < blocks; b++ {
		hi := lo + size
		if b < rem {
			hi++
		}
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// ForEach runs fn(i) for every i in [0,n) using For with the given grain.
func ForEach(n, minGrain int, fn func(i int)) {
	For(n, minGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// TreeReduce combines xs pairwise along an inverted binary tree — the
// comparison structure the paper plugs brute-force search into. combine
// must be associative. It returns the zero value of T for empty input.
//
// Levels run in parallel; with p workers the depth is ceil(log2 n) and the
// work is n-1 combines, matching a textbook parallel reduction.
func TreeReduce[T any](xs []T, combine func(a, b T) T) T {
	var zero T
	if len(xs) == 0 {
		return zero
	}
	// Work on a copy so callers keep their slice.
	buf := make([]T, len(xs))
	copy(buf, xs)
	for len(buf) > 1 {
		half := (len(buf) + 1) / 2
		ForEach(len(buf)/2, treeReduceGrain, func(i int) {
			buf[i] = combine(buf[2*i], buf[2*i+1])
		})
		if len(buf)%2 == 1 {
			buf[half-1] = buf[len(buf)-1]
		}
		buf = buf[:half]
	}
	return buf[0]
}

// ArgMin returns the index and value of the smallest element of dists,
// computed with a blocked parallel scan followed by a reduction over the
// per-block minima. Ties break toward the lower index, matching a
// sequential scan exactly. It returns (-1, +Inf-free zero) for empty
// input: idx == -1.
func ArgMin(dists []float64) (idx int, val float64) {
	n := len(dists)
	if n == 0 {
		return -1, 0
	}
	type part struct {
		idx int
		val float64
	}
	workers := Workers()
	blocks := n / ArgMinGrain
	if blocks > workers {
		blocks = workers
	}
	if blocks <= 1 {
		idx, val = 0, dists[0]
		for i := 1; i < n; i++ {
			if dists[i] < val {
				idx, val = i, dists[i]
			}
		}
		return idx, val
	}
	parts := make([]part, blocks)
	size := n / blocks
	rem := n % blocks
	var wg sync.WaitGroup
	wg.Add(blocks)
	lo := 0
	for b := 0; b < blocks; b++ {
		hi := lo + size
		if b < rem {
			hi++
		}
		go func(b, lo, hi int) {
			defer wg.Done()
			bi, bv := lo, dists[lo]
			for i := lo + 1; i < hi; i++ {
				if dists[i] < bv {
					bi, bv = i, dists[i]
				}
			}
			parts[b] = part{idx: bi, val: bv}
		}(b, lo, hi)
		lo = hi
	}
	wg.Wait()
	best := parts[0]
	for _, p := range parts[1:] {
		if p.val < best.val || (p.val == best.val && p.idx < best.idx) {
			best = p
		}
	}
	return best.idx, best.val
}
