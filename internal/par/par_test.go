package par

import (
	"math/rand"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 1023, 4096} {
		seen := make([]int32, n)
		For(n, 8, func(lo, hi int) {
			if lo >= hi {
				t.Errorf("n=%d: empty block [%d,%d)", n, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForSmallRangeRunsInline(t *testing.T) {
	// With n < minGrain the callback must run exactly once over the whole
	// range (inline fast path).
	calls := 0
	For(5, 100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 5 {
			t.Fatalf("block [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls=%d", calls)
	}
}

// TestForNeverSpawnsSubGrain pins the grain contract the cost-model
// constants rely on: whenever For splits the range, every block carries at
// least minGrain indices, so a tuned grain can never be silently diluted
// into sub-break-even spawns.
func TestForNeverSpawnsSubGrain(t *testing.T) {
	for _, n := range []int{1, 7, 63, 64, 65, 127, 128, 1000, 4096, 100000} {
		for _, grain := range []int{1, 8, 64, 1024} {
			var blocks int32
			var minBlock int64 = int64(n) + 1
			For(n, grain, func(lo, hi int) {
				atomic.AddInt32(&blocks, 1)
				for {
					cur := atomic.LoadInt64(&minBlock)
					if int64(hi-lo) >= cur || atomic.CompareAndSwapInt64(&minBlock, cur, int64(hi-lo)) {
						break
					}
				}
			})
			if blocks > 1 && minBlock < int64(grain) {
				t.Fatalf("n=%d grain=%d: %d blocks, smallest %d < grain", n, grain, blocks, minBlock)
			}
		}
	}
}

// TestForInlineBelowTwiceGrain: with fewer than two grains of work there is
// nothing to split, so For must run the callback inline — once, covering
// the whole range, without allocating.
func TestForInlineBelowTwiceGrain(t *testing.T) {
	const grain = 64
	n := 2*grain - 1
	calls := 0
	For(n, grain, func(lo, hi int) {
		calls++
		if lo != 0 || hi != n {
			t.Fatalf("block [%d,%d), want [0,%d)", lo, hi, n)
		}
	})
	if calls != 1 {
		t.Fatalf("calls=%d, want 1 (inline)", calls)
	}
	fn := func(lo, hi int) {}
	if allocs := testing.AllocsPerRun(100, func() { For(n, grain, fn) }); allocs != 0 {
		t.Fatalf("inline For allocated %v times per run", allocs)
	}
}

// TestArgMinSubGrainAllocFree: below two grains ArgMin must take the
// sequential scan path with zero allocations — the common case for
// per-query √n-sized representative rows.
func TestArgMinSubGrainAllocFree(t *testing.T) {
	dists := make([]float64, 2*ArgMinGrain-1)
	for i := range dists {
		dists[i] = float64((i*2654435761 + 17) % 1000003)
	}
	wantIdx, wantVal := 0, dists[0]
	for i, v := range dists {
		if v < wantVal {
			wantIdx, wantVal = i, v
		}
	}
	idx, val := ArgMin(dists)
	if idx != wantIdx || val != wantVal {
		t.Fatalf("ArgMin=(%d,%v), want (%d,%v)", idx, val, wantIdx, wantVal)
	}
	if allocs := testing.AllocsPerRun(100, func() { ArgMin(dists) }); allocs != 0 {
		t.Fatalf("sub-grain ArgMin allocated %v times per run", allocs)
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 1, func(lo, hi int) { called = true })
	For(-3, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn must not run for n<=0")
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	ForEach(1000, 10, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 999*1000/2 {
		t.Fatalf("sum=%d", sum)
	}
}

func TestWorkers(t *testing.T) {
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatal("Workers should mirror GOMAXPROCS")
	}
}

func TestTreeReduceSum(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 8, 100, 1025} {
		xs := make([]int, n)
		want := 0
		for i := range xs {
			xs[i] = i + 1
			want += i + 1
		}
		got := TreeReduce(xs, func(a, b int) int { return a + b })
		if got != want {
			t.Fatalf("n=%d: got %d want %d", n, got, want)
		}
	}
}

func TestTreeReduceDoesNotClobberInput(t *testing.T) {
	xs := []int{1, 2, 3, 4, 5}
	TreeReduce(xs, func(a, b int) int { return a + b })
	for i, v := range xs {
		if v != i+1 {
			t.Fatal("TreeReduce must not modify its input")
		}
	}
}

func TestArgMin(t *testing.T) {
	cases := []struct {
		in  []float64
		idx int
		val float64
	}{
		{nil, -1, 0},
		{[]float64{3}, 0, 3},
		{[]float64{5, 2, 8, 2}, 1, 2}, // tie breaks low index
		{[]float64{1, 2, 3}, 0, 1},
		{[]float64{3, 2, 1}, 2, 1},
	}
	for _, c := range cases {
		idx, val := ArgMin(c.in)
		if idx != c.idx || (idx >= 0 && val != c.val) {
			t.Fatalf("ArgMin(%v) = (%d,%v), want (%d,%v)", c.in, idx, val, c.idx, c.val)
		}
	}
}

func TestArgMinLargeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	xs[rng.Intn(n)] = -1
	gotIdx, gotVal := ArgMin(xs)
	wantIdx, wantVal := 0, xs[0]
	for i, v := range xs {
		if v < wantVal {
			wantIdx, wantVal = i, v
		}
	}
	if gotIdx != wantIdx || gotVal != wantVal {
		t.Fatalf("got (%d,%v) want (%d,%v)", gotIdx, gotVal, wantIdx, wantVal)
	}
}

// Property: ArgMin agrees with a sequential scan for arbitrary inputs.
func TestQuickArgMin(t *testing.T) {
	f := func(xs []float64) bool {
		for i, v := range xs {
			if v != v { // NaN poisons comparisons; skip those inputs
				xs[i] = 0
			}
		}
		gi, gv := ArgMin(xs)
		if len(xs) == 0 {
			return gi == -1
		}
		wi, wv := 0, xs[0]
		for i, v := range xs {
			if v < wv {
				wi, wv = i, v
			}
		}
		return gi == wi && gv == wv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKHeapBasics(t *testing.T) {
	h := NewKHeap(3)
	if h.K() != 3 || h.Len() != 0 || h.Full() {
		t.Fatal("fresh heap state")
	}
	if _, ok := h.Worst(); ok {
		t.Fatal("Worst on non-full heap should report ok=false")
	}
	h.Push(1, 5)
	h.Push(2, 3)
	h.Push(3, 7)
	if !h.Full() {
		t.Fatal("should be full")
	}
	if w, ok := h.Worst(); !ok || w != 7 {
		t.Fatalf("Worst=%v,%v", w, ok)
	}
	if kept := h.Push(4, 6); !kept {
		t.Fatal("6 should displace 7")
	}
	if kept := h.Push(5, 100); kept {
		t.Fatal("100 should be rejected")
	}
	res := h.Results()
	wantIDs := []int{2, 1, 4}
	for i, nb := range res {
		if nb.ID != wantIDs[i] {
			t.Fatalf("Results=%v", res)
		}
	}
}

func TestKHeapPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 should panic")
		}
	}()
	NewKHeap(0)
}

func TestKHeapTieBreaksOnID(t *testing.T) {
	h := NewKHeap(2)
	h.Push(9, 1)
	h.Push(4, 1)
	h.Push(7, 1) // same distance: the two smallest IDs must win
	res := h.Results()
	if res[0].ID != 4 || res[1].ID != 7 {
		t.Fatalf("tie-break results %v", res)
	}
}

func TestKHeapMergeAndReset(t *testing.T) {
	a := NewKHeap(2)
	b := NewKHeap(2)
	a.Push(1, 10)
	a.Push(2, 20)
	b.Push(3, 5)
	b.Push(4, 15)
	a.Merge(b)
	res := a.Results()
	if res[0].ID != 3 || res[1].ID != 1 {
		t.Fatalf("merged results %v", res)
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatal("Reset should empty the heap")
	}
}

// Property: KHeap retains exactly the k smallest (dist,id) pairs.
func TestQuickKHeapKeepsKSmallest(t *testing.T) {
	f := func(dists []float64, k8 uint8) bool {
		k := int(k8)%5 + 1
		for i, d := range dists {
			if d != d {
				dists[i] = 0
			}
		}
		h := NewKHeap(k)
		for i, d := range dists {
			h.Push(i, d)
		}
		type pair struct {
			id int
			d  float64
		}
		all := make([]pair, len(dists))
		for i, d := range dists {
			all[i] = pair{i, d}
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].d != all[j].d {
				return all[i].d < all[j].d
			}
			return all[i].id < all[j].id
		})
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := h.Results()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].ID != want[i].id || got[i].Dist != want[i].d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
