package par

import (
	"math/rand"
	"testing"
)

func BenchmarkForOverhead(b *testing.B) {
	sink := make([]float64, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		For(len(sink), 1024, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				sink[j] = float64(j)
			}
		})
	}
}

func BenchmarkArgMin100k(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ArgMin(xs)
	}
}

func BenchmarkKHeapPush(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewKHeap(10)
		for j, v := range vals {
			h.Push(j, v)
		}
	}
}

func BenchmarkTreeReduce(b *testing.B) {
	xs := make([]int, 10000)
	for i := range xs {
		xs[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TreeReduce(xs, func(a, b int) int { return a + b })
	}
}
