package par

import "slices"

// Neighbor is a candidate result: a point id and its distance to the
// query.
type Neighbor struct {
	ID   int
	Dist float64
}

// KHeap keeps the k smallest-distance neighbors seen so far using a
// bounded binary max-heap: the root is the current worst kept neighbor, so
// a candidate is admitted only if it beats the root. Push is O(log k) and
// the heap never allocates after construction.
//
// Ties on distance break toward the smaller ID so that results are
// deterministic regardless of insertion order.
type KHeap struct {
	k    int
	data []Neighbor // max-heap on (Dist, ID)
}

// NewKHeap returns a heap that retains the k nearest neighbors. k must be
// positive.
func NewKHeap(k int) *KHeap {
	if k <= 0 {
		panic("par: KHeap needs k >= 1")
	}
	return &KHeap{k: k, data: make([]Neighbor, 0, k)}
}

// K reports the heap's capacity.
func (h *KHeap) K() int { return h.k }

// Len reports how many neighbors are currently held.
func (h *KHeap) Len() int { return len(h.data) }

// Full reports whether k neighbors are held.
func (h *KHeap) Full() bool { return len(h.data) == h.k }

// Worst returns the largest kept distance, or +Inf semantics via ok=false
// when the heap is not yet full (meaning every candidate is admissible).
func (h *KHeap) Worst() (dist float64, ok bool) {
	if !h.Full() {
		return 0, false
	}
	return h.data[0].Dist, true
}

// worse reports whether a should sift above b in the max-heap.
func worse(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.ID > b.ID
}

// Push offers a candidate. It returns true if the candidate was kept.
func (h *KHeap) Push(id int, dist float64) bool {
	cand := Neighbor{ID: id, Dist: dist}
	if len(h.data) < h.k {
		h.data = append(h.data, cand)
		h.siftUp(len(h.data) - 1)
		return true
	}
	if !worse(h.data[0], cand) {
		return false
	}
	h.data[0] = cand
	h.siftDown(0)
	return true
}

func (h *KHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worse(h.data[i], h.data[p]) {
			return
		}
		h.data[i], h.data[p] = h.data[p], h.data[i]
		i = p
	}
}

func (h *KHeap) siftDown(i int) {
	n := len(h.data)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && worse(h.data[l], h.data[m]) {
			m = l
		}
		if r < n && worse(h.data[r], h.data[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.data[i], h.data[m] = h.data[m], h.data[i]
		i = m
	}
}

// Merge folds every neighbor of o into h. Used to combine per-worker heaps
// after a parallel scan.
func (h *KHeap) Merge(o *KHeap) {
	for _, nb := range o.data {
		h.Push(nb.ID, nb.Dist)
	}
}

// Results returns the kept neighbors sorted by ascending distance (ties by
// ascending ID). The heap is left unchanged.
func (h *KHeap) Results() []Neighbor {
	out := make([]Neighbor, len(h.data))
	copy(out, h.data)
	SortNeighbors(out)
	return out
}

// Reset empties the heap, retaining capacity.
func (h *KHeap) Reset() { h.data = h.data[:0] }

// Reconfigure empties the heap and sets a new capacity bound, reusing the
// backing array when possible. k must be positive.
func (h *KHeap) Reconfigure(k int) {
	if k <= 0 {
		panic("par: KHeap needs k >= 1")
	}
	h.k = k
	if cap(h.data) < k {
		h.data = make([]Neighbor, 0, k)
	} else {
		h.data = h.data[:0]
	}
}

// Best returns the smallest kept neighbor (ties toward the lower ID)
// without allocating. ok is false when the heap is empty.
func (h *KHeap) Best() (best Neighbor, ok bool) {
	if len(h.data) == 0 {
		return Neighbor{}, false
	}
	best = h.data[0]
	for _, nb := range h.data[1:] {
		if nb.Dist < best.Dist || (nb.Dist == best.Dist && nb.ID < best.ID) {
			best = nb
		}
	}
	return best, true
}

// Kept returns the retained neighbors in heap order (unsorted). The slice
// is borrowed: it is valid only until the next Push, Reset or Reconfigure.
func (h *KHeap) Kept() []Neighbor { return h.data }

// SortNeighbors orders ns by ascending (Dist, ID) without allocating.
// Callers that select in ordering space re-sort with this after converting
// to distances, because the conversion can map adjacent ordering values to
// equal distances (and math.Pow-based conversions are not even guaranteed
// monotone over adjacent floats).
func SortNeighbors(ns []Neighbor) {
	slices.SortFunc(ns, func(a, b Neighbor) int {
		switch {
		case a.Dist != b.Dist:
			if a.Dist < b.Dist {
				return -1
			}
			return 1
		case a.ID != b.ID:
			if a.ID < b.ID {
				return -1
			}
			return 1
		}
		return 0
	})
}
