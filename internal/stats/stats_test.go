package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/metric"
	"repro/internal/vec"
)

func TestRankKnownValues(t *testing.T) {
	db := vec.FromRows([][]float32{{0}, {1}, {2}, {3}, {4}})
	m := metric.Euclidean{}
	q := []float32{0.25}
	// Return the true NN (id 0, dist 0.25): rank 0.
	if r := Rank(q, db, 0.25, m); r != 0 {
		t.Fatalf("rank=%d, want 0", r)
	}
	// Return id 2 (dist 1.75): ids 0 and 1 are closer → rank 2.
	if r := Rank(q, db, 1.75, m); r != 2 {
		t.Fatalf("rank=%d, want 2", r)
	}
	// Return something worse than everything → rank 5.
	if r := Rank(q, db, 100, m); r != 5 {
		t.Fatalf("rank=%d, want 5", r)
	}
}

func TestMeanRank(t *testing.T) {
	db := vec.FromRows([][]float32{{0}, {10}})
	m := metric.Euclidean{}
	queries := vec.FromRows([][]float32{{1}, {9}})
	// First query answered exactly (dist 1 → rank 0), second answered with
	// the far point (dist 9 → rank 1). Mean = 0.5.
	got := MeanRank(queries, db, []float64{1, 9}, m)
	if got != 0.5 {
		t.Fatalf("mean rank %v, want 0.5", got)
	}
	var empty vec.Dataset
	empty.Dim = 1
	if MeanRank(&empty, db, nil, m) != 0 {
		t.Fatal("empty queries")
	}
}

func TestRecall(t *testing.T) {
	if r := Recall([]float64{1, 2, 3}, []float64{1, 9, 3}); math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("recall %v", r)
	}
	if Recall(nil, nil) != 0 {
		t.Fatal("empty recall")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Fatalf("summary %+v", s)
	}
	if s.P50 != 2.5 {
		t.Fatalf("p50=%v", s.P50)
	}
	if s.Std <= 0 {
		t.Fatalf("std=%v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary")
	}
	one := Summarize([]float64{7})
	if one.Min != 7 || one.Max != 7 || one.P99 != 7 {
		t.Fatalf("singleton %+v", one)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize must not sort its input")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if Percentile(xs, 0) != 10 || Percentile(xs, 1) != 40 {
		t.Fatal("endpoints")
	}
	if got := Percentile(xs, 0.5); got != 25 {
		t.Fatalf("p50=%v", got)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile")
	}
}

// Property: rank is monotone in the returned distance.
func TestQuickRankMonotone(t *testing.T) {
	m := metric.Euclidean{}
	f := func(seed int64, d1, d2 float64) bool {
		d1, d2 = math.Abs(math.Mod(d1, 10)), math.Abs(math.Mod(d2, 10))
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		rng := rand.New(rand.NewSource(seed))
		db := vec.New(2, 50)
		for i := 0; i < 50; i++ {
			db.Append([]float32{rng.Float32() * 10, rng.Float32() * 10})
		}
		q := []float32{rng.Float32() * 10, rng.Float32() * 10}
		return Rank(q, db, d1, m) <= Rank(q, db, d2, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile is monotone in p and brackets min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		clamp := func(p float64) float64 { return math.Abs(math.Mod(p, 1)) }
		a, b := clamp(p1), clamp(p2)
		if a > b {
			a, b = b, a
		}
		va, vb := Percentile(xs, a), Percentile(xs, b)
		return va <= vb && va >= xs[0] && vb <= xs[len(xs)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Speedups", "dataset", "speedup")
	tb.AddRow("bio", 38.1)
	tb.AddRow("cov", 94.6)
	out := tb.String()
	if !strings.Contains(out, "Speedups") || !strings.Contains(out, "bio") || !strings.Contains(out, "38.1") {
		t.Fatalf("render:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows=%d", tb.NumRows())
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(0.0)
	tb.AddRow(123456.0)
	tb.AddRow(42.0)
	tb.AddRow(0.5)
	tb.AddRow(0.0001)
	tb.AddRow(float32(2.5))
	tb.AddRow(7) // int passthrough
	rows := tb.Rows()
	want := []string{"0", "123456", "42.0", "0.500", "1.00e-04", "2.500", "7"}
	for i, w := range want {
		if rows[i][0] != w {
			t.Fatalf("row %d: %q want %q", i, rows[i][0], w)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", `q"t`)
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"x,y"`) || !strings.Contains(out, `"q""t"`) {
		t.Fatalf("csv:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("csv header:\n%s", out)
	}
}

func TestChartRender(t *testing.T) {
	c := NewChart("Fig 1: bio", "mean rank", "speedup")
	c.LogX, c.LogY = true, true
	c.Add("oneshot", []float64{0.001, 0.1, 10}, []float64{5, 50, 500})
	out := c.String()
	if !strings.Contains(out, "Fig 1: bio") || !strings.Contains(out, "*=oneshot") {
		t.Fatalf("chart:\n%s", out)
	}
	if !strings.Contains(out, "mean rank") {
		t.Fatal("missing axis label")
	}
	// All three points must land on the canvas (+1 for the legend).
	if strings.Count(out, "*") != 4 {
		t.Fatalf("expected 3 markers plus legend:\n%s", out)
	}
}

func TestChartLogDropsNonPositive(t *testing.T) {
	c := NewChart("t", "x", "y")
	c.LogX, c.LogY = true, true
	c.Add("s", []float64{0, -1, 1}, []float64{1, 1, 1})
	out := c.String()
	if strings.Count(out, "*") != 2 { // one surviving point + legend
		t.Fatalf("non-positive points must be dropped on log axes:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	c := NewChart("t", "x", "y")
	if !strings.Contains(c.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
}

func TestChartMultipleSeriesMarkers(t *testing.T) {
	c := NewChart("t", "x", "y")
	c.Add("a", []float64{1}, []float64{1})
	c.Add("b", []float64{2}, []float64{2})
	out := c.String()
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "o=b") {
		t.Fatalf("legend:\n%s", out)
	}
}

func TestChartDegenerateSinglePoint(t *testing.T) {
	c := NewChart("t", "x", "y")
	c.Add("s", []float64{5}, []float64{5})
	out := c.String()
	if !strings.Contains(out, "*") {
		t.Fatalf("single point must render:\n%s", out)
	}
}
