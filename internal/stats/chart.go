package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart renders log-log scatter plots as ASCII, sized for terminal
// output — the medium through which Figures 1 and 3 are reproduced.
type Chart struct {
	Title          string
	XLabel, YLabel string
	Width, Height  int
	LogX, LogY     bool
	series         []chartSeries
}

type chartSeries struct {
	name   string
	marker byte
	xs, ys []float64
}

// NewChart creates a chart with sensible terminal dimensions.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 64, Height: 20}
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Add appends a named series. Non-positive values are dropped on
// log-scaled axes.
func (c *Chart) Add(name string, xs, ys []float64) {
	m := markers[len(c.series)%len(markers)]
	c.series = append(c.series, chartSeries{name: name, marker: m, xs: xs, ys: ys})
}

func (c *Chart) transform(v float64, log bool) (float64, bool) {
	if !log {
		return v, true
	}
	if v <= 0 {
		return 0, false
	}
	return math.Log10(v), true
}

// Render draws the chart.
func (c *Chart) Render(w io.Writer) error {
	// Collect transformed points and bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	type pt struct {
		x, y float64
		m    byte
	}
	var pts []pt
	for _, s := range c.series {
		for i := range s.xs {
			if i >= len(s.ys) {
				break
			}
			x, okx := c.transform(s.xs[i], c.LogX)
			y, oky := c.transform(s.ys[i], c.LogY)
			if !okx || !oky {
				continue
			}
			pts = append(pts, pt{x, y, s.marker})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if len(pts) == 0 {
		b.WriteString("(no data)\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, c.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", c.Width))
	}
	for _, p := range pts {
		col := int((p.x - minX) / (maxX - minX) * float64(c.Width-1))
		row := c.Height - 1 - int((p.y-minY)/(maxY-minY)*float64(c.Height-1))
		grid[row][col] = p.m
	}
	yLo, yHi := c.axisLabel(minY, c.LogY), c.axisLabel(maxY, c.LogY)
	xLo, xHi := c.axisLabel(minX, c.LogX), c.axisLabel(maxX, c.LogX)
	labelW := len(yLo)
	if len(yHi) > labelW {
		labelW = len(yHi)
	}
	for r := range grid {
		label := strings.Repeat(" ", labelW)
		if r == 0 {
			label = pad(yHi, labelW)
		} else if r == c.Height-1 {
			label = pad(yLo, labelW)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, grid[r])
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", labelW), strings.Repeat("-", c.Width))
	gap := c.Width - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelW), xLo, strings.Repeat(" ", gap), xHi)
	fmt.Fprintf(&b, "%s   x: %s, y: %s\n", strings.Repeat(" ", labelW), c.XLabel, c.YLabel)
	legend := make([]string, 0, len(c.series))
	for _, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.marker, s.name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%s   %s\n", strings.Repeat(" ", labelW), strings.Join(legend, "  "))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (c *Chart) axisLabel(v float64, log bool) string {
	if log {
		return fmt.Sprintf("1e%.1f", v)
	}
	return formatFloat(v)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

// String renders the chart to a string.
func (c *Chart) String() string {
	var b strings.Builder
	_ = c.Render(&b)
	return b.String()
}
