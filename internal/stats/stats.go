// Package stats provides the evaluation machinery for the experiments:
// the paper's rank error measure (§7.2), summary statistics, result
// tables and ASCII charts for figure reproduction.
package stats

import (
	"math"
	"sort"

	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// Rank computes the paper's error measure for a single answer: the number
// of database points strictly closer to the query than the returned
// point. Rank 0 means the exact NN was returned, rank 1 the second
// nearest, and so on.
func Rank(q []float32, db *vec.Dataset, returnedDist float64, m metric.Metric[[]float32]) int {
	n := db.N()
	count := 0
	const chunk = 1024
	var scratch [chunk]float64
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out := scratch[:hi-lo]
		metric.BatchDistances(m, q, db.Data[lo*db.Dim:hi*db.Dim], db.Dim, out)
		for _, d := range out {
			if d < returnedDist {
				count++
			}
		}
	}
	return count
}

// MeanRank evaluates a batch of answers: returns the mean rank across
// queries. dists[i] is the distance of the answer returned for query i.
// This is the y-axis quantity of the paper's Figure 1 (averaged over
// queries; the paper plots values down to 10⁻³, i.e. one wrong answer per
// thousand queries).
func MeanRank(queries *vec.Dataset, db *vec.Dataset, dists []float64, m metric.Metric[[]float32]) float64 {
	if queries.N() == 0 {
		return 0
	}
	ranks := make([]int, queries.N())
	par.ForEach(queries.N(), 1, func(i int) {
		ranks[i] = Rank(queries.Row(i), db, dists[i], m)
	})
	total := 0
	for _, r := range ranks {
		total += r
	}
	return float64(total) / float64(len(ranks))
}

// Recall returns the fraction of answers whose distance matches the true
// NN distance exactly (distance-based, so ties among co-located points
// count as correct).
func Recall(got, want []float64) float64 {
	if len(got) == 0 {
		return 0
	}
	c := 0
	for i := range got {
		if got[i] == want[i] {
			c++
		}
	}
	return float64(c) / float64(len(got))
}

// Summary holds basic order statistics of a sample.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P99  float64
	Std            float64
}

// Summarize computes order statistics; it copies the input before
// sorting.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	s.Min, s.Max = cp[0], cp[len(cp)-1]
	var sum, sumsq float64
	for _, v := range cp {
		sum += v
		sumsq += v * v
	}
	s.Mean = sum / float64(len(cp))
	variance := sumsq/float64(len(cp)) - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	s.P50 = Percentile(cp, 0.50)
	s.P90 = Percentile(cp, 0.90)
	s.P99 = Percentile(cp, 0.99)
	return s
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 1) of an ascending
// sorted slice using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
