package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned results table used by the experiment
// harness to print paper-style tables and by the CSV writer.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v unless already
// strings.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the formatted cells (do not modify).
func (t *Table) Rows() [][]string { return t.rows }

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01 || v <= -0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as comma-separated values (headers first).
// Cells containing commas or quotes are quoted.
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string (text form).
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}
