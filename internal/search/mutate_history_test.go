package search

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// Interleaved mutate/query histories (PR 8): a deterministic seeded
// generator drives Insert/Delete/KNN/Range sequences over tie-rich
// grids against two mutated core.Exact indexes — EarlyExit-windowed
// with auto-merge disabled (so pending insertion buffers are always in
// play) and full-scan with an aggressive merge threshold (so targeted
// segment merges fire constantly). At every query step both must agree:
//
//   - with each other BIT-FOR-BIT (same data, same seed → same
//     representatives; windows and merge policy change work, never
//     answers);
//   - with a brute-force scan over exactly the live rows — the
//     rebuilt-from-live-rows reference — bitwise in distances, with ids
//     under the ordering-tie rule for KNN and bit-exact for Range
//     (range answers are complete, so no tie substitution exists);
//   - at checkpoints, with a core.Exact freshly rebuilt from the live
//     rows, and again after Rebuild() compacts the mutated index.
//
// Every id a mutated index returns must be live: returning a
// tombstoned or stale-buffer id is the classic mutable-index bug this
// harness exists to catch.

var mutateHistoryCorpus = []struct {
	seed    int64
	dim, n0 int
	ops     int
}{
	{31, 2, 60, 140},
	{32, 3, 200, 120},
	{33, 4, 150, 160},
	{34, 3, 40, 100}, // small index: deletes bite hard
	{35, 2, 250, 120},
}

func TestMutateHistoryEquivalence(t *testing.T) {
	for _, c := range mutateHistoryCorpus {
		c := c
		t.Run(fmt.Sprintf("seed=%d/dim=%d/n0=%d", c.seed, c.dim, c.n0), func(t *testing.T) {
			runMutateHistory(t, c.seed, c.dim, c.n0, c.ops)
		})
	}
}

// liveView materializes the live rows of the grown dataset in ascending
// id order, plus the map from live-row index back to original id. The
// map is monotone, so (dist, id) sort order is preserved under it.
func liveView(db *vec.Dataset, deleted map[int]bool) (*vec.Dataset, []int) {
	live := vec.New(db.Dim, db.N()-len(deleted))
	var idmap []int
	for i := 0; i < db.N(); i++ {
		if !deleted[i] {
			live.Append(db.Row(i))
			idmap = append(idmap, i)
		}
	}
	return live, idmap
}

func remapIDs(nbs []par.Neighbor, idmap []int) []par.Neighbor {
	out := make([]par.Neighbor, len(nbs))
	for i, nb := range nbs {
		out[i] = par.Neighbor{ID: idmap[nb.ID], Dist: nb.Dist}
	}
	return out
}

func assertLiveIDs(t *testing.T, label string, nbs []par.Neighbor, deleted map[int]bool, n int) {
	t.Helper()
	for p, nb := range nbs {
		if nb.ID < 0 || nb.ID >= n {
			t.Fatalf("%s pos %d: id %d out of range [0, %d)", label, p, nb.ID, n)
		}
		if deleted[nb.ID] {
			t.Fatalf("%s pos %d: returned tombstoned id %d", label, p, nb.ID)
		}
	}
}

func runMutateHistory(t *testing.T, seed int64, dim, n0, nops int) {
	m := metric.Euclidean{}
	rng := rand.New(rand.NewSource(seed))
	base := tieRich(rng, n0, dim)
	// Two structurally identical indexes over per-index datasets (Insert
	// grows the backing store, so they must not share it). Same seed →
	// same representatives → bit-identical answers are required, not just
	// tie-equivalent.
	dbW := vec.FromFlat(append([]float32(nil), base.Data...), base.Dim)
	dbF := vec.FromFlat(append([]float32(nil), base.Data...), base.Dim)
	windowed, err := core.BuildExact(dbW, m, core.ExactParams{Seed: seed, EarlyExit: true, BufferMerge: -1})
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.BuildExact(dbF, m, core.ExactParams{Seed: seed, BufferMerge: 3})
	if err != nil {
		t.Fatal(err)
	}

	deleted := map[int]bool{}
	row := make([]float32, dim)
	queryPoint := func() []float32 {
		if rng.Intn(4) == 0 && dbW.N() > len(deleted) {
			// Planted self-query on a live row: zero distances stress ties.
			for {
				id := rng.Intn(dbW.N())
				if !deleted[id] {
					return append([]float32(nil), dbW.Row(id)...)
				}
			}
		}
		for j := range row {
			row[j] = float32(rng.Intn(17)-8) * 0.5
		}
		return append([]float32(nil), row...)
	}

	checkKNN := func(step int, q []float32, k int) {
		gotW, _ := windowed.KNN(q, k)
		gotF, _ := full.KNN(q, k)
		assertBitEqual(t, fmt.Sprintf("step %d: windowed vs full KNN", step), gotW, gotF)
		assertLiveIDs(t, fmt.Sprintf("step %d: mutated KNN", step), gotW, deleted, dbW.N())
		live, idmap := liveView(dbW, deleted)
		want := remapIDs(bruteforce.SearchOneK(q, live, k, m, nil), idmap)
		assertOrderingTie(t, fmt.Sprintf("step %d: mutated KNN vs live-rows reference", step), gotW, want, q, dbW, m)
	}
	checkRange := func(step int, q []float32, eps float64) {
		gotW, _ := windowed.Range(q, eps)
		gotF, _ := full.Range(q, eps)
		assertBitEqual(t, fmt.Sprintf("step %d: windowed vs full Range", step), gotW, gotF)
		live, idmap := liveView(dbW, deleted)
		want := remapIDs(bruteforce.RangeSearch(q, live, eps, m, nil), idmap)
		// Range answers are complete — every live point within eps, sorted
		// by (dist, id) — so the comparison is bit-exact including ids.
		assertBitEqual(t, fmt.Sprintf("step %d: mutated Range vs live-rows reference", step), gotW, want)
	}
	checkRebuilt := func(step int) {
		live, idmap := liveView(dbW, deleted)
		rebuilt, err := core.BuildExact(live, m, core.ExactParams{Seed: seed, EarlyExit: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			q := queryPoint()
			gotW, _ := windowed.KNN(q, 4)
			want := remapIDs(firstK(rebuilt.KNN(q, 4)), idmap)
			assertOrderingTie(t, fmt.Sprintf("step %d: mutated vs rebuilt-from-live Exact", step), gotW, want, q, dbW, m)
		}
	}

	for step := 0; step < nops; step++ {
		switch r := rng.Intn(20); {
		case r < 8: // insert
			p := queryPoint()
			id := windowed.Insert(p)
			if id2 := full.Insert(append([]float32(nil), p...)); id2 != id {
				t.Fatalf("step %d: insert ids diverge (%d vs %d)", step, id, id2)
			}
		case r < 12: // delete
			if dbW.N()-len(deleted) <= 1 {
				continue // keep at least one live row
			}
			for {
				id := rng.Intn(dbW.N())
				if deleted[id] {
					continue
				}
				if err := windowed.Delete(id); err != nil {
					t.Fatalf("step %d: delete %d: %v", step, id, err)
				}
				if err := full.Delete(id); err != nil {
					t.Fatalf("step %d: delete %d: %v", step, id, err)
				}
				deleted[id] = true
				break
			}
		case r < 17: // KNN
			k := []int{1, 3, 8}[rng.Intn(3)]
			checkKNN(step, queryPoint(), k)
		default: // Range
			eps := []float64{0.5, 1.0, 2.5}[rng.Intn(3)]
			checkRange(step, queryPoint(), eps)
		}
		if step == nops/2 {
			checkRebuilt(step)
		}
	}

	// Compact the mutated indexes and re-verify: Rebuild folds buffers
	// and re-sorts, Flush drains what BufferMerge: -1 accumulated.
	if windowed.Buffered() == 0 {
		t.Fatal("auto-merge disabled yet nothing stayed buffered — history never exercised pending buffers")
	}
	windowed.Rebuild()
	full.Rebuild()
	for i := 0; i < 8; i++ {
		q := queryPoint()
		checkKNN(nops+i, q, 5)
		checkRange(nops+i, q, 1.5)
	}
	checkRebuilt(nops)
}

func firstK(nbs []par.Neighbor, _ core.Stats) []par.Neighbor { return nbs }
