package search

import (
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/covertree"
	"repro/internal/kdtree"
	"repro/internal/lsh"
	"repro/internal/metric"
	"repro/internal/vec"
)

func clustered(rng *rand.Rand, n, dim, k int) *vec.Dataset {
	centers := make([][]float32, k)
	for i := range centers {
		centers[i] = make([]float32, dim)
		for j := range centers[i] {
			centers[i][j] = rng.Float32()*20 - 10
		}
	}
	d := vec.New(dim, n)
	row := make([]float32, dim)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(k)]
		for j := range row {
			row[j] = c[j] + float32(rng.NormFloat64())*0.3
		}
		d.Append(row)
	}
	return d
}

func sameNeighbors(t *testing.T, label string, got, want []Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d neighbors, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s pos %d: %+v want %+v", label, i, got[i], want[i])
		}
	}
}

// Every backend's KNNBatch must agree with its own per-query KNN.
func TestBatchMatchesPerQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := clustered(rng, 600, 6, 8)
	queries := clustered(rand.New(rand.NewSource(7)), 40, 6, 8)
	m := metric.Euclidean{}
	const k = 4

	exact, err := core.BuildExact(db, m, core.ExactParams{Seed: 1, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	oneshot, err := core.BuildOneShot(db, m, core.OneShotParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lshIdx, err := lsh.Build(db, lsh.Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float32, db.N())
	for i := range rows {
		rows[i] = db.Row(i)
	}
	backends := map[string]Searcher{
		"exact":      exact,
		"oneshot":    oneshot,
		"bruteforce": NewBruteForce(db, m),
		"kdtree":     FromKDTree(kdtree.Build(db, 0)),
		"lsh":        FromLSH(lshIdx),
		"covertree":  FromCoverTree(covertree.Build(rows, m)),
	}
	for name, s := range backends {
		batch, bst := KNNBatch(s, queries, k)
		var perEvals int64
		for i := 0; i < queries.N(); i++ {
			one, st := s.KNN(queries.Row(i), k)
			sameNeighbors(t, name, batch[i], one)
			perEvals += st.TotalEvals()
		}
		// LSH may legitimately evaluate nothing (all probes can land in
		// empty buckets); every other backend must report work.
		if name != "lsh" && bst.TotalEvals() <= 0 {
			t.Fatalf("%s: batch stats report no work", name)
		}
		_ = perEvals // eval counts may differ across paths; results may not
	}
}

// The exact backends must agree with the brute-force reference.
func TestExactBackendsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := clustered(rng, 500, 5, 6)
	queries := clustered(rand.New(rand.NewSource(9)), 25, 5, 6)
	m := metric.Euclidean{}
	const k = 3

	exact, err := core.BuildExact(db, m, core.ExactParams{Seed: 2, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]Searcher{
		"exact":      exact,
		"bruteforce": NewBruteForce(db, m),
	} {
		got, _ := KNNBatch(s, queries, k)
		for i := 0; i < queries.N(); i++ {
			want := bruteforce.SearchOneK(queries.Row(i), db, k, m, nil)
			sameNeighbors(t, name, got[i], want)
		}
	}
}

// RangeBatch must agree with per-query Range for both range backends.
func TestRangeBatchMatchesPerQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := clustered(rng, 400, 4, 5)
	queries := clustered(rand.New(rand.NewSource(11)), 20, 4, 5)
	m := metric.Euclidean{}
	const eps = 1.2

	exact, err := core.BuildExact(db, m, core.ExactParams{Seed: 4, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]RangeSearcher{
		"exact":      exact,
		"bruteforce": NewBruteForce(db, m),
	} {
		batch, _ := s.RangeBatch(queries, eps)
		for i := 0; i < queries.N(); i++ {
			one, _ := s.Range(queries.Row(i), eps)
			sameNeighbors(t, name, batch[i], one)
		}
	}
}

// The generic KNNBatch helper must fall back cleanly for a Searcher that
// lacks a batch entry point.
type perQueryOnly struct{ s Searcher }

func (p perQueryOnly) KNN(q []float32, k int) ([]Neighbor, Stats) { return p.s.KNN(q, k) }

func TestKNNBatchFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := clustered(rng, 300, 4, 4)
	queries := clustered(rand.New(rand.NewSource(13)), 10, 4, 4)
	m := metric.Euclidean{}
	bf := NewBruteForce(db, m)
	got, gst := KNNBatch(perQueryOnly{bf}, queries, 2)
	want, _ := KNNBatch(bf, queries, 2)
	for i := range want {
		sameNeighbors(t, "fallback", got[i], want[i])
	}
	if gst.TotalEvals() != int64(queries.N()*db.N()) {
		t.Fatalf("fallback evals %d want %d", gst.TotalEvals(), queries.N()*db.N())
	}
}
