package search

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/covertree"
	"repro/internal/distributed"
	"repro/internal/kdtree"
	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// Cross-backend equivalence harness: every backend must agree with the
// brute-force reference over randomized tie-rich datasets (duplicates,
// quantized coordinates, degenerate sizes), and every KNNBatch must be
// bit-identical to its own per-query KNN.
//
// Three comparison grades exist, strongest applicable wins:
//
//   - BIT-FOR-BIT (same ids, same distance bits, same order): every
//     backend's KNNBatch against its own per-query KNN; bruteforce and
//     OneShot-at-S=n against the reference (their scans see every point,
//     so (dist, id) selection is total); the distributed cluster against
//     the single-node core.Exact built with the same parameters; and the
//     EarlyExit-windowed cluster against the full-scan cluster and
//     against core.Exact{EarlyExit: true} (windows change work done,
//     never results — the shard-side window contract).
//   - ORDERING-TIE RULE (distance bits pinned position by position, ids
//     free within an equal-distance class but verified to achieve the
//     class distance, no duplicates): the pruning RBC indexes against
//     the reference — rule (1) may prune a list at exactly γ_k, so a
//     boundary tie can surface a different — equally correct — id. Also
//     the quantized two-pass scan: exact rescoring makes its reported
//     distances bit-true, but the candidate heap may truncate a
//     duplicate class at the over-fetch boundary.
//   - ULP-TOLERANT tie rule: the tree baselines (kd-tree, cover tree)
//     accumulate distances in a different association order, so their
//     values can drift in trailing ulps; distances must match within
//     tolerance and ids must match exactly wherever the reference is
//     unambiguous (strictly inside the k-boundary tie band).

// equivalenceCorpus is the checked-in fuzz seed corpus. `go test` runs
// every entry deterministically (both through the corpus test below and
// as FuzzSearchEquivalence's seed inputs), so CI fails reproducibly on
// any regression. Selectors map onto dims {1,3,17,64}, n {0,1,37,1000}
// and k {1,3,n+5}.
var equivalenceCorpus = []struct {
	seed               int64
	dimSel, nSel, kSel uint8
}{
	{1, 0, 0, 0},
	{2, 1, 1, 1},
	{3, 2, 2, 2},
	{4, 3, 3, 0},
	{5, 3, 2, 1},
	{6, 2, 3, 2},
	{7, 1, 2, 0},
	{8, 0, 3, 1},
	{9, 2, 2, 0},
	{10, 3, 1, 2},
	{11, 0, 2, 2},
	{12, 1, 3, 1},
	{13, 2, 0, 1},
	{14, 3, 2, 2},
	// Seeds 15–20 joined with the EarlyExit-windowed cluster configs:
	// they re-cover the selector grid now that every entry also checks
	// windowed-vs-full-scan and windowed-vs-Exact{EarlyExit} bit equality.
	{15, 0, 2, 1},
	{16, 1, 2, 2},
	{17, 2, 3, 0},
	{18, 3, 3, 2},
	{19, 2, 2, 1},
	{20, 1, 1, 0},
}

func FuzzSearchEquivalence(f *testing.F) {
	for _, c := range equivalenceCorpus {
		f.Add(c.seed, c.dimSel, c.nSel, c.kSel)
	}
	f.Fuzz(func(t *testing.T, seed int64, dimSel, nSel, kSel uint8) {
		checkEquivalence(t, seed, dimSel, nSel, kSel)
	})
}

// TestSearchEquivalenceCorpus runs the seed corpus as plain subtests, so
// the matrix is visible (and individually addressable) in -v output.
func TestSearchEquivalenceCorpus(t *testing.T) {
	for _, c := range equivalenceCorpus {
		c := c
		t.Run(fmt.Sprintf("seed=%d/dim=%d/n=%d/k=%d", c.seed, c.dimSel, c.nSel, c.kSel), func(t *testing.T) {
			checkEquivalence(t, c.seed, c.dimSel, c.nSel, c.kSel)
		})
	}
}

// tieRich builds a dataset on a coarse half-integer grid with ~20%
// duplicated rows, so equal distances (and equal coordinates) are the
// norm rather than the exception.
func tieRich(rng *rand.Rand, n, dim int) *vec.Dataset {
	d := vec.New(dim, n)
	row := make([]float32, dim)
	for i := 0; i < n; i++ {
		if i > 0 && rng.Intn(5) == 0 {
			d.Append(d.Row(rng.Intn(i)))
			continue
		}
		for j := range row {
			row[j] = float32(rng.Intn(17)-8) * 0.5
		}
		d.Append(row)
	}
	return d
}

func checkEquivalence(t *testing.T, seed int64, dimSel, nSel, kSel uint8) {
	dim := []int{1, 3, 17, 64}[int(dimSel)%4]
	n := []int{0, 1, 37, 1000}[int(nSel)%4]
	k := [3]int{1, 3, n + 5}[int(kSel)%3]
	m := metric.Euclidean{}
	rng := rand.New(rand.NewSource(seed))
	db := tieRich(rng, n, dim)

	const nq = 12
	queries := tieRich(rng, nq, dim)
	if n > 0 {
		// Plant exact self-queries: zero distances stress tie handling.
		copy(queries.Row(0), db.Row(rng.Intn(n)))
		copy(queries.Row(1), db.Row(rng.Intn(n)))
	}

	want := make([][]par.Neighbor, nq)
	for i := 0; i < nq; i++ {
		want[i] = bruteforce.SearchOneK(queries.Row(i), db, k, m, nil)
	}

	// The quantized two-pass scan rescores survivors with the exact
	// kernel, so its reported distances are bit-true against the
	// reference at every rank; ids fall under the ordering-tie rule.
	quant := bruteforce.SearchKQuantized(queries, db, k, m, nil)
	for i := 0; i < nq; i++ {
		assertOrderingTie(t, fmt.Sprintf("quantized two-pass query %d vs reference", i), quant[i], want[i], queries.Row(i), db, m)
	}

	// Assemble backends. Index builds reject empty databases — that IS
	// the n=0 contract — so only the index-free backends run there.
	exactBits := map[string]BatchSearcher{
		"bruteforce": NewBruteForce(db, m),
	}
	orderingTie := map[string]BatchSearcher{}
	tolerant := map[string]BatchSearcher{}
	var exactIdx, exactEE *core.Exact
	if n > 0 {
		var err error
		exactIdx, err = core.BuildExact(db, m, core.ExactParams{Seed: seed})
		if err != nil {
			t.Fatalf("BuildExact: %v", err)
		}
		orderingTie["exact"] = exactIdx
		exactEE, err = core.BuildExact(db, m, core.ExactParams{Seed: seed, EarlyExit: true})
		if err != nil {
			t.Fatalf("BuildExact(EarlyExit): %v", err)
		}
		orderingTie["exact-earlyexit"] = exactEE
		// One-shot is approximate in general, but with S = n every
		// ownership list holds the whole database, so any probed list
		// yields the exact answer through the same ordering-space
		// pipeline — a configuration in which it must match bit-for-bit.
		oneshot, err := core.BuildOneShot(db, m, core.OneShotParams{Seed: seed, S: n})
		if err != nil {
			t.Fatalf("BuildOneShot: %v", err)
		}
		exactBits["oneshot-full"] = oneshot
	} else {
		if _, err := core.BuildExact(db, m, core.ExactParams{Seed: seed}); err == nil {
			t.Fatal("BuildExact accepted an empty database")
		}
	}
	tolerant["kdtree"] = FromKDTree(kdtree.Build(db, 0))
	tolerant["covertree"] = FromCoverTree(covertree.Build(db.Rows(), metric.Metric[[]float32](m)))

	for name, s := range exactBits {
		batch, _ := s.KNNBatch(queries, k)
		for i := 0; i < nq; i++ {
			assertBitEqual(t, fmt.Sprintf("%s query %d vs reference", name, i), batch[i], want[i])
			one, _ := s.KNN(queries.Row(i), k)
			assertBitEqual(t, fmt.Sprintf("%s query %d batch vs per-query", name, i), batch[i], one)
		}
	}
	for name, s := range orderingTie {
		batch, _ := s.KNNBatch(queries, k)
		for i := 0; i < nq; i++ {
			assertOrderingTie(t, fmt.Sprintf("%s query %d vs reference", name, i), batch[i], want[i], queries.Row(i), db, m)
			one, _ := s.KNN(queries.Row(i), k)
			assertBitEqual(t, fmt.Sprintf("%s query %d batch vs per-query", name, i), batch[i], one)
		}
	}
	for name, s := range tolerant {
		batch, _ := s.KNNBatch(queries, k)
		for i := 0; i < nq; i++ {
			assertTieEquivalent(t, fmt.Sprintf("%s query %d vs reference", name, i), batch[i], want[i])
			one, _ := s.KNN(queries.Row(i), k)
			assertBitEqual(t, fmt.Sprintf("%s query %d batch vs per-query", name, i), batch[i], one)
		}
	}

	// The distributed cluster must match the single-node exact index
	// BIT-FOR-BIT — same parameters, same reported distance bits, same
	// ids at razor ties (the tiled shard-scan contract). The
	// EarlyExit-windowed cluster must additionally match the full-scan
	// cluster and core.Exact{EarlyExit: true}: its per-(query, segment)
	// admissible windows clip work, never answers.
	if n > 0 {
		shards := 1 + int(seed&3)
		cl, err := distributed.Build(db, m, core.ExactParams{Seed: seed}, shards, distributed.DefaultCostModel())
		if err != nil {
			t.Fatalf("distributed.Build: %v", err)
		}
		defer cl.Close()
		got, mFull, _ := cl.KNNBatch(queries, k)
		wantIdx, _ := exactIdx.KNNBatch(queries, k)
		for i := 0; i < nq; i++ {
			assertBitEqual(t, fmt.Sprintf("cluster(shards=%d) query %d vs core.Exact", shards, i), got[i], wantIdx[i])
		}

		clWin, err := distributed.Build(db, m, core.ExactParams{Seed: seed, EarlyExit: true}, shards, distributed.DefaultCostModel())
		if err != nil {
			t.Fatalf("distributed.Build(EarlyExit): %v", err)
		}
		defer clWin.Close()
		gotWin, mWin, _ := clWin.KNNBatch(queries, k)
		wantEE, _ := exactEE.KNNBatch(queries, k)
		for i := 0; i < nq; i++ {
			assertBitEqual(t, fmt.Sprintf("windowed cluster(shards=%d) query %d vs full-scan cluster", shards, i), gotWin[i], got[i])
			assertBitEqual(t, fmt.Sprintf("windowed cluster(shards=%d) query %d vs core.Exact(EarlyExit)", shards, i), gotWin[i], wantEE[i])
			one, _, _ := clWin.KNN(queries.Row(i), k)
			assertBitEqual(t, fmt.Sprintf("windowed cluster(shards=%d) query %d batch vs per-query", shards, i), gotWin[i], one)
		}
		if mWin.PointEvals > mFull.PointEvals {
			t.Fatalf("windowed cluster PointEvals %d exceed full-scan %d (eval monotonicity)", mWin.PointEvals, mFull.PointEvals)
		}
	}
}

func assertBitEqual(t *testing.T, label string, got, want []par.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d neighbors, want %d", label, len(got), len(want))
	}
	for p := range want {
		if got[p] != want[p] {
			t.Fatalf("%s pos %d: %+v want %+v (bit-for-bit)", label, p, got[p], want[p])
		}
	}
}

// assertOrderingTie pins the distance sequence bitwise against the
// reference and verifies the ids: no duplicates, and every id whose
// position disagrees with the reference must genuinely achieve its
// position's distance (recomputed with the reference arithmetic). This
// is the ordering-tie rule for exact pruning indexes: rule (1) can prune
// an ownership list at exactly γ_k, so an equal-distance boundary tie
// may legitimately surface a different member of the tie class.
func assertOrderingTie(t *testing.T, label string, got, want []par.Neighbor, q []float32, db *vec.Dataset, m Metric) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d neighbors, want %d", label, len(got), len(want))
	}
	ker := metric.NewKernel(m)
	seen := make(map[int]bool, len(got))
	var ord [1]float64
	for p := range want {
		if got[p].Dist != want[p].Dist {
			t.Fatalf("%s pos %d: dist %v, want %v (distance multiset must match bitwise)", label, p, got[p].Dist, want[p].Dist)
		}
		if seen[got[p].ID] {
			t.Fatalf("%s pos %d: duplicate id %d", label, p, got[p].ID)
		}
		seen[got[p].ID] = true
		if got[p].ID == want[p].ID {
			continue
		}
		if got[p].ID < 0 || got[p].ID >= db.N() {
			t.Fatalf("%s pos %d: id %d out of range", label, p, got[p].ID)
		}
		ker.Ordering(q, db.Row(got[p].ID), db.Dim, ord[:])
		if d := ker.ToDistance(ord[0]); d != got[p].Dist {
			t.Fatalf("%s pos %d: id %d is at distance %v, not the reported %v — invalid tie substitution",
				label, p, got[p].ID, d, got[p].Dist)
		}
	}
}

// assertTieEquivalent applies the ordering-tie rule with tolerance:
// distances agree within relTol position by position, and ids agree
// exactly outside the k-boundary tie band (entries whose reference
// distance is strictly below the k-th distance minus tolerance must
// appear on both sides; inside the band, ulp drift may legitimately
// reorder razor ties).
func assertTieEquivalent(t *testing.T, label string, got, want []par.Neighbor) {
	t.Helper()
	const relTol = 1e-9
	if len(got) != len(want) {
		t.Fatalf("%s: %d neighbors, want %d", label, len(got), len(want))
	}
	if len(want) == 0 {
		return
	}
	tol := relTol * math.Max(1, want[len(want)-1].Dist)
	for p := range want {
		if math.Abs(got[p].Dist-want[p].Dist) > tol {
			t.Fatalf("%s pos %d: dist %v, want %v (beyond tolerance %g)", label, p, got[p].Dist, want[p].Dist, tol)
		}
	}
	cut := want[len(want)-1].Dist - tol
	gotIDs := make(map[int]bool, len(got))
	wantIDs := make(map[int]bool, len(want))
	for _, nb := range got {
		gotIDs[nb.ID] = true
	}
	for _, nb := range want {
		wantIDs[nb.ID] = true
	}
	for _, nb := range want {
		if nb.Dist < cut && !gotIDs[nb.ID] {
			t.Fatalf("%s: unambiguous neighbor id %d (dist %v) missing", label, nb.ID, nb.Dist)
		}
	}
	for _, nb := range got {
		if nb.Dist < cut && !wantIDs[nb.ID] {
			t.Fatalf("%s: spurious unambiguous neighbor id %d (dist %v)", label, nb.ID, nb.Dist)
		}
	}
}
