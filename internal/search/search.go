// Package search defines the batch-first query plane shared by every
// index backend in the repository. Cayton's core argument is that metric
// search becomes hardware-friendly when many queries are processed
// together as matrix-style workloads (BF(Q,X) rather than n calls to
// BF(q,X)); this package makes that shape the common currency above
// internal/core, so the HTTP server, the distributed cluster and the
// experiment harness can all hand whole query blocks to an index and let
// it ride its tiled kernels.
//
// Two interface tiers exist:
//
//   - Searcher is the single-query surface every backend has.
//   - BatchSearcher adds KNNBatch, the block entry point. Backends with a
//     real matrix-matrix front half (core.Exact, core.OneShot, the
//     brute-force primitive) implement it natively; tree-shaped backends
//     (kd-tree, LSH) parallelize over queries; the cover tree, whose
//     descent is inherently serial, loops.
//
// KNNBatch (the function) is the polymorphic entry point: it uses the
// batch method when the backend provides one and falls back to a
// per-query loop otherwise, so callers can stay batch-first without
// caring which backend they hold.
package search

import (
	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/covertree"
	"repro/internal/kdtree"
	"repro/internal/lsh"
	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// Neighbor is a k-NN result entry: database id and distance.
type Neighbor = par.Neighbor

// Stats reports per-search work (distance evaluations by phase); see
// core.Stats. Backends without a two-phase structure report all work
// under PointEvals.
type Stats = core.Stats

// Searcher answers single k-NN queries. Results are sorted by ascending
// distance, ties toward the lower id (backends that cannot guarantee
// exactness — one-shot, LSH — still honor the ordering contract on
// whatever candidates they return).
type Searcher interface {
	KNN(q []float32, k int) ([]Neighbor, Stats)
}

// BatchSearcher answers whole query blocks at once. KNNBatch(queries, k)
// must be observably equivalent to calling KNN per row (for deterministic
// backends: bit-identical), while being free to amortize work across the
// block — one tiled BF(Q,R) front half, one pass over shared structures.
type BatchSearcher interface {
	Searcher
	KNNBatch(queries *vec.Dataset, k int) ([][]Neighbor, Stats)
}

// RangeSearcher answers ε-range queries: every point within eps of the
// query, sorted by ascending distance. RangeBatch is the block form, with
// the same equivalence contract as KNNBatch.
type RangeSearcher interface {
	Range(q []float32, eps float64) ([]Neighbor, Stats)
	RangeBatch(queries *vec.Dataset, eps float64) ([][]Neighbor, Stats)
}

// The RBC indexes implement the batch plane natively.
var (
	_ BatchSearcher = (*core.Exact)(nil)
	_ BatchSearcher = (*core.OneShot)(nil)
	_ RangeSearcher = (*core.Exact)(nil)
)

// KNNBatch answers a block of queries through s, using the batch entry
// point when s provides one and falling back to a per-query loop.
func KNNBatch(s Searcher, queries *vec.Dataset, k int) ([][]Neighbor, Stats) {
	if b, ok := s.(BatchSearcher); ok {
		return b.KNNBatch(queries, k)
	}
	out := make([][]Neighbor, queries.N())
	var agg Stats
	for i := 0; i < queries.N(); i++ {
		nbs, st := s.KNN(queries.Row(i), k)
		out[i] = nbs
		agg.Add(st)
	}
	return out, agg
}

// BruteForce is the index-free backend: every query block is answered
// with the tiled BF(Q,X) matrix-matrix primitive over the whole database.
// It is the baseline the indexed backends are measured against.
type BruteForce struct {
	DB *vec.Dataset
	M  Metric
}

// Metric is the float32 vector metric the backends share.
type Metric = metric.Metric[[]float32]

// NewBruteForce returns the brute-force backend over db.
func NewBruteForce(db *vec.Dataset, m Metric) *BruteForce {
	return &BruteForce{DB: db, M: m}
}

// KNN answers one query with the streaming BF(q,X) decomposition.
func (b *BruteForce) KNN(q []float32, k int) ([]Neighbor, Stats) {
	var c bruteforce.Counter
	res := bruteforce.SearchOneK(q, b.DB, k, b.M, &c)
	return res, Stats{PointEvals: c.Load()}
}

// KNNBatch answers the block with the tiled BF(Q,X) primitive
// (bit-identical to per-query KNN; see bruteforce.SearchK).
func (b *BruteForce) KNNBatch(queries *vec.Dataset, k int) ([][]Neighbor, Stats) {
	var c bruteforce.Counter
	res := bruteforce.SearchK(queries, b.DB, k, b.M, &c)
	return res, Stats{PointEvals: c.Load()}
}

// Range scans the database for every point within eps of q.
func (b *BruteForce) Range(q []float32, eps float64) ([]Neighbor, Stats) {
	var c bruteforce.Counter
	res := bruteforce.RangeSearch(q, b.DB, eps, b.M, &c)
	return res, Stats{PointEvals: c.Load()}
}

// RangeBatch runs Range over the block in parallel.
func (b *BruteForce) RangeBatch(queries *vec.Dataset, eps float64) ([][]Neighbor, Stats) {
	out := make([][]Neighbor, queries.N())
	var c bruteforce.Counter
	par.ForEach(queries.N(), 1, func(i int) {
		out[i] = bruteforce.RangeSearch(queries.Row(i), b.DB, eps, b.M, &c)
	})
	return out, Stats{PointEvals: c.Load()}
}

var (
	_ BatchSearcher = (*BruteForce)(nil)
	_ RangeSearcher = (*BruteForce)(nil)
)

// KDTree adapts the low-dimensional k-d tree baseline to the batch plane.
// The tree reports raw evaluation counts rather than core.Stats, so the
// adapter maps them onto PointEvals.
type KDTree struct{ T *kdtree.Tree }

// FromKDTree wraps t.
func FromKDTree(t *kdtree.Tree) KDTree { return KDTree{T: t} }

// KNN answers one query. Not safe for concurrent use with other KDTree
// calls (the tree's DistEvals counter is unsynchronized); use KNNBatch
// for parallel blocks.
func (a KDTree) KNN(q []float32, k int) ([]Neighbor, Stats) {
	before := a.T.DistEvals
	res := a.T.KNN(q, k)
	return res, Stats{PointEvals: a.T.DistEvals - before}
}

// KNNBatch answers the block in parallel over queries.
func (a KDTree) KNNBatch(queries *vec.Dataset, k int) ([][]Neighbor, Stats) {
	res, evals := a.T.KNNBatch(queries, k)
	return res, Stats{PointEvals: evals}
}

var _ BatchSearcher = KDTree{}

// LSH adapts the locality-sensitive-hashing backend. Its answers are
// approximate by construction; the Stats map candidate evaluations onto
// PointEvals.
type LSH struct{ I *lsh.Index }

// FromLSH wraps idx.
func FromLSH(idx *lsh.Index) LSH { return LSH{I: idx} }

// KNN answers one query from the union of probed buckets.
func (a LSH) KNN(q []float32, k int) ([]Neighbor, Stats) {
	res, evals := a.I.KNN(q, k)
	return res, Stats{PointEvals: int64(evals)}
}

// KNNBatch answers the block in parallel over queries.
func (a LSH) KNNBatch(queries *vec.Dataset, k int) ([][]Neighbor, Stats) {
	res, evals := a.I.SearchK(queries, k)
	return res, Stats{PointEvals: evals}
}

var _ BatchSearcher = LSH{}

// CoverTree adapts the sequential cover-tree baseline. Not safe for
// concurrent use: the tree's descent mutates its DistEvals counter, which
// is also why KNNBatch loops instead of fanning out.
type CoverTree struct{ T *covertree.Tree[[]float32] }

// FromCoverTree wraps t.
func FromCoverTree(t *covertree.Tree[[]float32]) CoverTree { return CoverTree{T: t} }

// KNN answers one query.
func (a CoverTree) KNN(q []float32, k int) ([]Neighbor, Stats) {
	before := a.T.DistEvals
	res := a.T.KNN(q, k)
	return res, Stats{PointEvals: a.T.DistEvals - before}
}

// KNNBatch answers the block sequentially (see covertree.KNNBatch).
func (a CoverTree) KNNBatch(queries *vec.Dataset, k int) ([][]Neighbor, Stats) {
	before := a.T.DistEvals
	rows := make([][]float32, queries.N())
	for i := range rows {
		rows[i] = queries.Row(i)
	}
	res := a.T.KNNBatch(rows, k)
	return res, Stats{PointEvals: a.T.DistEvals - before}
}

var _ BatchSearcher = CoverTree{}
