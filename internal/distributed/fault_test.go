package distributed

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/distributed/wire"
	"repro/internal/metric"
	"repro/internal/vec"
)

// corruptingProxy forwards TCP bytes to a backend, flipping one byte in
// the first `corrupt` server→client streams it carries. After the
// budget is spent it forwards verbatim, so retries on fresh connections
// succeed.
type corruptingProxy struct {
	ln      net.Listener
	backend string
	corrupt int32
	wg      sync.WaitGroup

	mu    sync.Mutex
	conns []net.Conn
}

func startCorruptingProxy(t *testing.T, backend string, corrupt int32) *corruptingProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &corruptingProxy{ln: ln, backend: backend, corrupt: corrupt}
	go p.serve()
	// Idle pooled client connections outlive the test body; force-close
	// every piped conn so wg.Wait cannot deadlock against the pool.
	t.Cleanup(func() {
		ln.Close()
		p.mu.Lock()
		for _, c := range p.conns {
			c.Close()
		}
		p.mu.Unlock()
		p.wg.Wait()
	})
	return p
}

func (p *corruptingProxy) addr() string { return p.ln.Addr().String() }

func (p *corruptingProxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns = append(p.conns, c)
	p.mu.Unlock()
}

func (p *corruptingProxy) serve() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.pipe(conn)
	}
}

func (p *corruptingProxy) pipe(client net.Conn) {
	defer p.wg.Done()
	defer client.Close()
	p.track(client)
	server, err := net.Dial("tcp", p.backend)
	if err != nil {
		return
	}
	defer server.Close()
	p.track(server)
	done := make(chan struct{}, 2)
	go func() { io.Copy(server, client); done <- struct{}{} }()
	go func() {
		mangle := atomic.AddInt32(&p.corrupt, -1) >= 0
		buf := make([]byte, 32<<10)
		flipped := false
		for {
			n, err := server.Read(buf)
			if n > 0 {
				// Flip a payload byte (past the 8-byte frame header) so
				// the length field stays sane and the CRC must catch it.
				if mangle && !flipped && n > 9 {
					buf[9] ^= 0x55
					flipped = true
				}
				if _, werr := client.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		done <- struct{}{}
	}()
	<-done
}

// blackHoleListener accepts connections and reads forever without ever
// replying — the induced-timeout case.
func startBlackHole(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(io.Discard, conn) }()
		}
	}()
	return ln.Addr().String()
}

func buildSmall(t *testing.T, seed int64, shards int, earlyExit bool) (*Cluster, *vec.Dataset, *vec.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := clustered(rng, 600, 5, 6)
	queries := clustered(rng, 24, 5, 6)
	cl, err := Build(db, metric.Euclidean{}, core.ExactParams{Seed: seed, EarlyExit: earlyExit}, shards, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl, db, queries
}

// TestCorruptFramesAreRetriedToBitIdentity: a proxy corrupts the first
// few reply streams; the CRC catches every flip, the client retries on
// fresh connections, and the final answers are bit-identical to an
// undisturbed loopback cluster.
func TestCorruptFramesAreRetriedToBitIdentity(t *testing.T) {
	const shards = 2
	netCl, db, queries := buildSmall(t, 301, shards, true)
	loop, err := Build(db, metric.Euclidean{}, core.ExactParams{Seed: 301, EarlyExit: true}, shards, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()

	backends, _ := startShardServers(t, shards)
	addrs := make([]string, shards)
	for i, b := range backends {
		addrs[i] = startCorruptingProxy(t, b, 2).addr()
	}
	opts := fastOpts()
	opts.MaxAttempts = 4
	if err := netCl.Distribute(addrs, opts); err != nil {
		t.Fatalf("Distribute through corrupting proxies: %v", err)
	}
	want, _, err := loop.KNNBatch(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := netCl.KNNBatch(queries, 5)
	if err != nil {
		t.Fatalf("KNNBatch through corrupting proxies: %v", err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("query %d pos %d: %+v vs %+v", i, j, got[i][j], want[i][j])
			}
		}
	}
	retries := int64(0)
	for _, st := range netCl.NetStats() {
		retries += st.Retries
	}
	if retries == 0 {
		t.Fatal("corrupting proxy induced no retries — the fault was not exercised")
	}
}

// TestShardDeathFailFast: killing a shard server after Distribute makes
// queries fail with a typed *ShardError within the retry budget — no
// hang, no panic.
func TestShardDeathFailFast(t *testing.T) {
	netCl, _, queries := buildSmall(t, 307, 2, false)
	addrs, servers := startShardServers(t, 2)
	if err := netCl.Distribute(addrs, fastOpts()); err != nil {
		t.Fatal(err)
	}
	servers[1].Close() // connect refused from now on

	start := time.Now()
	_, _, err := netCl.KNNBatch(queries, 5)
	elapsed := time.Since(start)
	var serr *ShardError
	if !errors.As(err, &serr) {
		t.Fatalf("err=%v, want *ShardError", err)
	}
	if serr.Shard != 1 || serr.Addr != addrs[1] {
		t.Fatalf("wrong shard blamed: %+v", serr)
	}
	// Retry budget: 2 attempts × 1s request timeout + 5ms backoff, plus
	// slack. A hang would blow far past this.
	if elapsed > 5*time.Second {
		t.Fatalf("failure took %v — deadline not enforced", elapsed)
	}
	// The healthy path keeps working for blocks that don't touch the
	// dead shard only if routing avoids it; a broadcast always fails.
	if _, _, err := netCl.QueryBroadcast(queries.Row(0)); err == nil {
		t.Fatal("broadcast through a dead shard succeeded")
	}
}

// TestShardDeathDegradePartial: under DegradePartial the same death
// yields merged results from the surviving shards plus accounting —
// and the results still contain the rep-seeded candidates, so every
// query keeps answering.
func TestShardDeathDegradePartial(t *testing.T) {
	netCl, _, queries := buildSmall(t, 311, 2, false)
	addrs, servers := startShardServers(t, 2)
	opts := fastOpts()
	opts.Degrade = DegradePartial
	if err := netCl.Distribute(addrs, opts); err != nil {
		t.Fatal(err)
	}
	servers[0].Close()

	got, met, err := netCl.KNNBatch(queries, 5)
	if err != nil {
		t.Fatalf("DegradePartial surfaced an error: %v", err)
	}
	if met.FailedShards == 0 {
		t.Fatal("no failed shards accounted")
	}
	for i := range got {
		if len(got[i]) == 0 {
			t.Fatalf("query %d lost all candidates — rep seeding should survive", i)
		}
	}
}

// TestInducedTimeout: a shard that accepts but never replies must
// surface a deadline error within MaxAttempts×RequestTimeout, not hang.
func TestInducedTimeout(t *testing.T) {
	addr := startBlackHole(t)
	opts := fastOpts()
	opts.RequestTimeout = 300 * time.Millisecond
	tr := newTCPTransport(4, [][]string{{addr}}, opts)
	defer tr.close()

	start := time.Now()
	_, err := tr.scan(0, &shardRequest{qs: make([]float32, 4), segs: [][]int{{0}}, k: 1})
	elapsed := time.Since(start)
	var serr *ShardError
	if !errors.As(err, &serr) {
		t.Fatalf("err=%v, want *ShardError", err)
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err=%v, want a timeout", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("timeout took %v for a 300ms×2 budget", elapsed)
	}
}

// TestConnectRefused: nothing listening at all — the dial itself fails
// and the typed error arrives promptly.
func TestConnectRefused(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port; nothing listens there now
	tr := newTCPTransport(4, [][]string{{addr}}, fastOpts())
	defer tr.close()
	_, scanErr := tr.scan(0, &shardRequest{qs: make([]float32, 4), segs: [][]int{{0}}, k: 1})
	var serr *ShardError
	if !errors.As(scanErr, &serr) {
		t.Fatalf("err=%v, want *ShardError", scanErr)
	}
	if st := tr.netStats()[0]; st.Failures != 1 {
		t.Fatalf("stats %+v, want 1 failure", st)
	}
}

// TestTruncatedFrameDropsConnection: the server must treat a torn frame
// as a dead connection, not block or crash; a well-formed request on a
// fresh connection still works.
func TestTruncatedFrameDropsConnection(t *testing.T) {
	addrs, _ := startShardServers(t, 1)
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	full := wire.EncodeEmpty(wire.MsgPing)
	if _, err := conn.Write(full[:len(full)-1]); err != nil {
		t.Fatal(err)
	}
	conn.Close() // torn mid-frame

	tr := newTCPTransport(4, oneEach(addrs), fastOpts())
	defer tr.close()
	if err := tr.ping(0); err != nil {
		t.Fatalf("server wedged after torn frame: %v", err)
	}
}
