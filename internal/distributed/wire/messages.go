package wire

import (
	"fmt"

	"repro/internal/metric"
	"repro/internal/par"
)

// MetricSpec names a metric over the wire. Only stateless (or
// scalar-parameterized) metrics can cross process boundaries; the
// coordinator refuses to distribute a cluster whose metric has no spec.
type MetricSpec struct {
	Kind uint8
	P    float64 // Minkowski order; unused otherwise
}

// Metric kinds.
const (
	MetricEuclidean = 1
	MetricMinkowski = 2
	MetricAngular   = 3
)

// SpecFor returns the wire spec for m, or an error if m is not a
// wire-encodable metric type.
func SpecFor(m metric.Metric[[]float32]) (MetricSpec, error) {
	switch t := m.(type) {
	case metric.Euclidean:
		return MetricSpec{Kind: MetricEuclidean}, nil
	case metric.Minkowski:
		return MetricSpec{Kind: MetricMinkowski, P: t.P}, nil
	case metric.Angular:
		return MetricSpec{Kind: MetricAngular}, nil
	}
	return MetricSpec{}, fmt.Errorf("wire: metric %T cannot be encoded; networked shards support Euclidean, Minkowski and Angular", m)
}

// Metric reconstructs the metric a spec names.
func (s MetricSpec) Metric() (metric.Metric[[]float32], error) {
	switch s.Kind {
	case MetricEuclidean:
		return metric.Euclidean{}, nil
	case MetricMinkowski:
		if !(s.P >= 1) {
			return nil, fmt.Errorf("wire: minkowski p=%v is not a metric", s.P)
		}
		return metric.NewMinkowski(s.P), nil
	case MetricAngular:
		return metric.Angular{}, nil
	}
	return nil, fmt.Errorf("wire: unknown metric kind %d", s.Kind)
}

// ScanRequest is one batched shard scan: Qs holds len(Segs) packed
// query vectors of dimension Dim, Segs the owned-representative
// segments each query must scan, Bounds (optional) the per-query
// pruning bound in ordering space, and Wins (optional) the flat
// [dLo, dHi] admissible-window pairs aligned with the concatenation of
// Segs — the exact shape internal/distributed's shardRequest carries
// in process. Epoch names the shard-state generation the request was
// routed under; a shard loaded with a different epoch rejects the scan
// with MsgErr instead of answering against the wrong segment layout
// (see doc.go, "Replica epochs").
type ScanRequest struct {
	Dim         int
	K           int
	Epoch       uint32
	IncludeReps bool
	Qs          []float32
	Segs        [][]int
	Bounds      []float64 // nil or len(Segs)
	Wins        []float64 // nil or 2×(total segment entries)
}

const (
	flagIncludeReps = 1 << 0
	flagBounds      = 1 << 1
	flagWins        = 1 << 2
)

// EncodeScanRequest builds a wire-ready MsgScan frame.
func EncodeScanRequest(r *ScanRequest) []byte {
	var flags uint8
	if r.IncludeReps {
		flags |= flagIncludeReps
	}
	if r.Bounds != nil {
		flags |= flagBounds
	}
	if r.Wins != nil {
		flags |= flagWins
	}
	f := NewFrame(MsgScan)
	f = appendU32(f, uint32(r.Dim))
	f = appendU32(f, uint32(r.K))
	f = appendU32(f, r.Epoch)
	f = appendU8(f, flags)
	f = appendU32(f, uint32(len(r.Segs)))
	f = appendF32s(f, r.Qs)
	for _, segs := range r.Segs {
		f = appendU32(f, uint32(len(segs)))
		for _, s := range segs {
			f = appendU32(f, uint32(s))
		}
	}
	if r.Bounds != nil {
		f = appendF64s(f, r.Bounds)
	}
	if r.Wins != nil {
		f = appendF64s(f, r.Wins)
	}
	return Finish(f)
}

// DecodeScanRequest parses a MsgScan body.
func DecodeScanRequest(body []byte) (*ScanRequest, error) {
	d := &dec{b: body}
	r := &ScanRequest{
		Dim:   int(d.u32()),
		K:     int(d.u32()),
		Epoch: d.u32(),
	}
	flags := d.u8()
	r.IncludeReps = flags&flagIncludeReps != 0
	nq := d.n(1)
	if d.err == nil && r.Dim > 0 && nq > len(d.b)/(4*r.Dim)+1 {
		return nil, ErrTruncated
	}
	r.Qs = d.f32s(nq * r.Dim)
	r.Segs = make([][]int, nq)
	total := 0
	for i := range r.Segs {
		ns := d.n(4)
		segs := make([]int, ns)
		for j := range segs {
			segs[j] = int(d.u32())
		}
		r.Segs[i] = segs
		total += ns
	}
	if flags&flagBounds != 0 {
		r.Bounds = d.f64s(nq)
	}
	if flags&flagWins != 0 {
		r.Wins = d.f64s(2 * total)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return r, nil
}

// ScanReply carries one shard's answer: per-query candidate sets in
// ORDERING space (float64 bits preserved verbatim) plus the work
// counters the coordinator folds into QueryMetrics.
type ScanReply struct {
	Shard     int
	Evals     int64
	EmptyWins int64
	KNN       [][]par.Neighbor
}

// EncodeScanReply builds a wire-ready MsgScanReply frame.
func EncodeScanReply(r *ScanReply) []byte {
	f := NewFrame(MsgScanReply)
	f = appendU32(f, uint32(r.Shard))
	f = appendU64(f, uint64(r.Evals))
	f = appendU64(f, uint64(r.EmptyWins))
	f = appendU32(f, uint32(len(r.KNN)))
	for _, nbs := range r.KNN {
		f = appendU32(f, uint32(len(nbs)))
		for _, nb := range nbs {
			f = appendU64(f, uint64(int64(nb.ID)))
			f = appendF64(f, nb.Dist)
		}
	}
	return Finish(f)
}

// DecodeScanReply parses a MsgScanReply body.
func DecodeScanReply(body []byte) (*ScanReply, error) {
	d := &dec{b: body}
	r := &ScanReply{
		Shard:     int(d.u32()),
		Evals:     int64(d.u64()),
		EmptyWins: int64(d.u64()),
	}
	nq := d.n(4)
	r.KNN = make([][]par.Neighbor, nq)
	for i := range r.KNN {
		n := d.n(16)
		nbs := make([]par.Neighbor, n)
		for j := range nbs {
			nbs[j].ID = int(int64(d.u64()))
			nbs[j].Dist = d.f64()
		}
		r.KNN[i] = nbs
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return r, nil
}

// ShardState is the payload that hands a shard its segments: the
// gathered member layout internal/distributed builds in process,
// shipped verbatim so a remote shard scans byte-identical data. Epoch
// is the state's generation; the shard echoes it back as the only
// epoch it will serve scans for. Re-pushing a ShardState (replica
// repair, rebalance) is the same message again.
type ShardState struct {
	ID       int
	Dim      int
	Epoch    uint32
	Metric   MetricSpec
	RepIDs   []int32
	Offsets  []int
	IDs      []int32
	IsRep    []bool
	Gather   []float32
	SegDists []float64 // nil when the cluster ships no windows
}

// EncodeShardState builds a wire-ready MsgLoad frame.
func EncodeShardState(s *ShardState) []byte {
	f := make([]byte, frameHead, frameHead+2+64+4*len(s.IDs)+len(s.IsRep)+4*len(s.Gather)+8*len(s.SegDists))
	f = append(f, Version, MsgLoad)
	f = appendU32(f, uint32(s.ID))
	f = appendU32(f, uint32(s.Dim))
	f = appendU32(f, s.Epoch)
	f = appendU8(f, s.Metric.Kind)
	f = appendF64(f, s.Metric.P)
	f = appendU32(f, uint32(len(s.RepIDs)))
	f = appendI32s(f, s.RepIDs)
	f = appendU32(f, uint32(len(s.Offsets)))
	for _, o := range s.Offsets {
		f = appendU32(f, uint32(o))
	}
	f = appendU32(f, uint32(len(s.IDs)))
	f = appendI32s(f, s.IDs)
	for _, b := range s.IsRep {
		if b {
			f = append(f, 1)
		} else {
			f = append(f, 0)
		}
	}
	f = appendF32s(f, s.Gather)
	if s.SegDists != nil {
		f = appendU8(f, 1)
		f = appendF64s(f, s.SegDists)
	} else {
		f = appendU8(f, 0)
	}
	return Finish(f)
}

// DecodeShardState parses a MsgLoad body and validates its structural
// invariants (offset monotonicity, aligned column lengths), so a
// corrupt-but-CRC-valid load cannot seed an inconsistent shard.
func DecodeShardState(body []byte) (*ShardState, error) {
	d := &dec{b: body}
	s := &ShardState{
		ID:    int(d.u32()),
		Dim:   int(d.u32()),
		Epoch: d.u32(),
	}
	s.Metric.Kind = d.u8()
	s.Metric.P = d.f64()
	s.RepIDs = d.i32s(d.n(4))
	noff := d.n(4)
	s.Offsets = make([]int, noff)
	for i := range s.Offsets {
		s.Offsets[i] = int(d.u32())
	}
	n := d.n(4)
	s.IDs = d.i32s(n)
	rep := d.take(n)
	s.IsRep = make([]bool, n)
	for i := range s.IsRep {
		s.IsRep[i] = rep != nil && rep[i] != 0
	}
	if d.err == nil && s.Dim > 0 && n > len(d.b)/(4*s.Dim)+1 {
		return nil, ErrTruncated
	}
	s.Gather = d.f32s(n * s.Dim)
	if d.u8() != 0 {
		s.SegDists = d.f64s(n)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	if s.Dim <= 0 {
		return nil, fmt.Errorf("wire: shard state dim %d", s.Dim)
	}
	if noff != len(s.RepIDs)+1 || noff == 0 || s.Offsets[0] != 0 || s.Offsets[noff-1] != n {
		return nil, fmt.Errorf("wire: shard state offsets malformed")
	}
	for i := 1; i < noff; i++ {
		if s.Offsets[i] < s.Offsets[i-1] {
			return nil, fmt.Errorf("wire: shard state offsets not monotone")
		}
	}
	return s, nil
}
