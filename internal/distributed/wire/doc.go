// Package wire defines the shard protocol that takes the distributed
// cluster over a real network: a length-prefixed, CRC-checked binary
// framing (the same discipline internal/wal uses on disk) carrying the
// coordinator↔shard messages of internal/distributed.
//
// This file is the protocol reference. The encoding and decoding code
// lives in wire.go (framing) and messages.go (message bodies); every
// layout rule stated here is enforced by those functions and locked in
// by the round-trip and corruption tests in wire_test.go.
//
// # Frame layout
//
// Every message is exactly one frame:
//
//	offset  size  field
//	------  ----  -----------------------------------------------
//	0       4     payload length (uint32, little-endian)
//	4       4     CRC-32C (Castagnoli) of the payload (uint32, LE)
//	8       1     protocol version byte (currently 2)
//	9       1     message type byte
//	10      n-2   message body (n = payload length)
//
// The CRC covers the whole payload — version and type bytes included —
// so a flipped bit anywhere past the 8-byte header is detected. All
// integers are little-endian; float32 and float64 values travel as
// their IEEE-754 bit patterns, so decoded values are bit-identical to
// what was encoded. That is the property the cluster's bit-identity
// contract rides on: ordering-space candidate distances and admissible
// windows cross the wire as raw bits, never through a decimal
// representation.
//
// # Message table
//
//	type  name          direction             body
//	----  ------------  --------------------  --------------------------
//	1     MsgLoad       coordinator → shard   ShardState: the shard's
//	                                          segments, gathered vectors,
//	                                          metric spec and epoch
//	2     MsgLoadOK     shard → coordinator   empty; load acknowledged
//	3     MsgScan       coordinator → shard   ScanRequest: one batched
//	                                          block scan (queries, segment
//	                                          takers, optional bounds and
//	                                          EarlyExit windows, epoch)
//	4     MsgScanReply  shard → coordinator   ScanReply: per-query
//	                                          candidates in ordering
//	                                          space + work counters
//	5     MsgErr        shard → coordinator   RemoteError: typed remote
//	                                          failure (length-prefixed
//	                                          message string)
//	6     MsgPing       either direction      empty; liveness / RTT probe
//	7     MsgPong       reply to MsgPing      empty
//
// The scan exchange is strict request/response per connection; the
// coordinator pools connections for parallelism, and hedged requests
// simply run the same exchange concurrently on different replicas'
// connections. A scan is a pure read, so retrying (or hedging) one is
// always safe: every replica of a shard holds bit-identical state, so
// any completed reply to the same request is byte-for-byte the same.
//
// # Versioning
//
// The version byte names the payload layout, whole-protocol: a receiver
// speaks exactly one version and rejects every other with ErrBadVersion
// (it never attempts cross-version decoding). Versions so far:
//
//	1  PR 9 layout: load / scan / reply / err / ping / pong.
//	2  Adds the replica epoch: a uint32 in ShardState (after Dim) and in
//	   ScanRequest (after K). Bodies are otherwise identical to v1.
//
// Coordinator and shard binaries are expected to be built from the same
// tree; the version byte exists to make a skew loud (a typed decode
// error naming the version) instead of a silent mis-decode.
//
// # Replica epochs
//
// Every MsgLoad carries the epoch of the shard state it ships, and
// every MsgScan carries the epoch of the routing table it was planned
// under. A shard answers a scan only when the two match; on mismatch it
// replies MsgErr ("stale replica epoch ..."), which the coordinator
// treats as a replica-level hard failure (failover to the next replica,
// never a retry of the same one — see the error taxonomy below).
//
// Epochs are per shard id, not global: the coordinator bumps a shard's
// epoch exactly when that shard's segment composition changes
// (Cluster.Rebalance), re-pushing the new state to every replica before
// the routing table cuts over. The check closes the rebalance race in
// both directions: a replica that missed the re-push cannot serve a
// post-cutover scan against its stale segments, and a re-pushed replica
// cannot serve a pre-cutover scan that indexes segments by the old
// layout. Adding a replica (Cluster.AddShardReplica) ships the current
// state under the current epoch — no bump, nothing else changes.
//
// # Error taxonomy
//
// Failures split into three classes, and the class decides the
// client's reaction:
//
//   - Transport faults — connect errors, IO errors, deadline expiry, a
//     torn frame (io.ErrUnexpectedEOF), a CRC mismatch (ErrCorrupt), an
//     oversized length field (ErrTooLarge), an unknown version
//     (ErrBadVersion). The connection is poisoned (closed, never
//     returned to the pool: the stream is unsynchronized) and the
//     exchange is RETRIED on a fresh connection, up to the transport's
//     attempt budget.
//   - Remote decisions — a decoded MsgErr (*RemoteError: no shard state
//     loaded, dimension mismatch, malformed request, stale epoch). The
//     frame arrived intact; the shard chose not to serve. NEVER
//     retried against the same replica — retrying cannot change a
//     decision — but the coordinator fails over to the next replica in
//     the shard's set, where the decision may differ (e.g. a stale
//     replica's twin was re-pushed successfully).
//   - Structural decode errors client-side — ErrTruncated from a body
//     shorter (or longer) than its own length fields claim. Treated as
//     corruption: connection poisoned, exchange retried.
//
// When a shard's whole replica set is exhausted, the typed
// *distributed.ShardError names the shard, the replica addresses tried,
// and the last error; the cluster's degradation policy decides whether
// that fails the batch or is accounted and skipped.
package wire
