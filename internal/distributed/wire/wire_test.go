package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"repro/internal/metric"
	"repro/internal/par"
)

func TestFrameRoundTrip(t *testing.T) {
	f := NewFrame(MsgPing)
	f = appendU32(f, 0xdeadbeef)
	f = Finish(f)
	mt, body, err := ReadFrame(bytes.NewReader(f), MaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	if mt != MsgPing || len(body) != 4 {
		t.Fatalf("mt=%d len=%d", mt, len(body))
	}
}

func TestFrameCorruptCRC(t *testing.T) {
	f := Finish(appendU32(NewFrame(MsgScan), 7))
	// Flip one payload byte in every position; each must be detected.
	for i := frameHead; i < len(f); i++ {
		g := append([]byte(nil), f...)
		g[i] ^= 0x40
		if _, _, err := ReadFrame(bytes.NewReader(g), MaxFrameBytes); !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadVersion) {
			t.Fatalf("flip at %d: err=%v, want corruption detected", i, err)
		}
	}
}

func TestFrameTruncated(t *testing.T) {
	f := Finish(appendU32(NewFrame(MsgScan), 7))
	for cut := 1; cut < len(f); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(f[:cut]), MaxFrameBytes)
		if err == nil {
			t.Fatalf("cut at %d: no error", cut)
		}
		if cut > frameHead && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: err=%v, want unexpected EOF", cut, err)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	f := Finish(appendF64s(NewFrame(MsgScan), make([]float64, 100)))
	if _, _, err := ReadFrame(bytes.NewReader(f), 64); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err=%v, want ErrTooLarge", err)
	}
}

func TestFrameBadVersion(t *testing.T) {
	f := NewFrame(MsgPing)
	f[frameHead] = 99 // version byte
	f = Finish(f)
	if _, _, err := ReadFrame(bytes.NewReader(f), MaxFrameBytes); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err=%v, want ErrBadVersion", err)
	}
}

func TestScanRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		dim := 1 + rng.Intn(9)
		nq := rng.Intn(5)
		req := &ScanRequest{Dim: dim, K: 1 + rng.Intn(10), Epoch: rng.Uint32(), IncludeReps: rng.Intn(2) == 0}
		req.Qs = make([]float32, nq*dim)
		for i := range req.Qs {
			req.Qs[i] = rng.Float32()*2 - 1
		}
		req.Segs = make([][]int, nq)
		total := 0
		for i := range req.Segs {
			ns := rng.Intn(4)
			req.Segs[i] = make([]int, ns)
			for j := range req.Segs[i] {
				req.Segs[i][j] = rng.Intn(100)
			}
			total += ns
		}
		if rng.Intn(2) == 0 {
			req.Bounds = make([]float64, nq)
			for i := range req.Bounds {
				req.Bounds[i] = rng.NormFloat64()
			}
			if nq > 0 && rng.Intn(3) == 0 {
				req.Bounds[0] = math.Inf(1)
			}
		}
		if rng.Intn(2) == 0 {
			req.Wins = make([]float64, 2*total)
			for i := range req.Wins {
				req.Wins[i] = rng.NormFloat64()
			}
		}
		mt, body, err := ReadFrame(bytes.NewReader(EncodeScanRequest(req)), MaxFrameBytes)
		if err != nil || mt != MsgScan {
			t.Fatalf("trial %d: mt=%d err=%v", trial, mt, err)
		}
		got, err := DecodeScanRequest(body)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Dim != req.Dim || got.K != req.K || got.Epoch != req.Epoch || got.IncludeReps != req.IncludeReps {
			t.Fatalf("trial %d: header mismatch %+v vs %+v", trial, got, req)
		}
		assertF32s(t, got.Qs, req.Qs)
		if len(got.Segs) != len(req.Segs) {
			t.Fatalf("trial %d: %d segs lists", trial, len(got.Segs))
		}
		for i := range req.Segs {
			if len(got.Segs[i]) != len(req.Segs[i]) {
				t.Fatalf("trial %d query %d: seg count", trial, i)
			}
			for j := range req.Segs[i] {
				if got.Segs[i][j] != req.Segs[i][j] {
					t.Fatalf("trial %d: seg mismatch", trial)
				}
			}
		}
		assertF64s(t, got.Bounds, req.Bounds)
		assertF64s(t, got.Wins, req.Wins)
	}
}

func TestScanReplyRoundTripBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rep := &ScanReply{Shard: 3, Evals: 12345678901234, EmptyWins: 7}
	rep.KNN = make([][]par.Neighbor, 4)
	for i := range rep.KNN {
		for j := 0; j < rng.Intn(6); j++ {
			rep.KNN[i] = append(rep.KNN[i], par.Neighbor{ID: rng.Intn(1 << 30), Dist: rng.NormFloat64() * 1e3})
		}
	}
	rep.KNN[1] = append(rep.KNN[1], par.Neighbor{ID: -1, Dist: math.Inf(1)})
	mt, body, err := ReadFrame(bytes.NewReader(EncodeScanReply(rep)), MaxFrameBytes)
	if err != nil || mt != MsgScanReply {
		t.Fatalf("mt=%d err=%v", mt, err)
	}
	got, err := DecodeScanReply(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != rep.Shard || got.Evals != rep.Evals || got.EmptyWins != rep.EmptyWins {
		t.Fatalf("counters: %+v vs %+v", got, rep)
	}
	for i := range rep.KNN {
		if len(got.KNN[i]) != len(rep.KNN[i]) {
			t.Fatalf("query %d: %d neighbors", i, len(got.KNN[i]))
		}
		for j := range rep.KNN[i] {
			// Struct equality compares float64s bit-for-bit through ==
			// except NaN; ordering distances are never NaN.
			if got.KNN[i][j] != rep.KNN[i][j] {
				t.Fatalf("query %d pos %d: %+v vs %+v", i, j, got.KNN[i][j], rep.KNN[i][j])
			}
		}
	}
}

func TestShardStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, windowed := range []bool{false, true} {
		st := &ShardState{ID: 2, Dim: 3, Epoch: rng.Uint32(), Metric: MetricSpec{Kind: MetricEuclidean}}
		st.RepIDs = []int32{5, 9, 11}
		st.Offsets = []int{0, 4, 4, 10}
		n := 10
		for i := 0; i < n; i++ {
			st.IDs = append(st.IDs, int32(rng.Intn(1000)))
			st.IsRep = append(st.IsRep, rng.Intn(4) == 0)
			if windowed {
				st.SegDists = append(st.SegDists, rng.Float64()*10)
			}
		}
		st.Gather = make([]float32, n*st.Dim)
		for i := range st.Gather {
			st.Gather[i] = rng.Float32()
		}
		mt, body, err := ReadFrame(bytes.NewReader(EncodeShardState(st)), MaxFrameBytes)
		if err != nil || mt != MsgLoad {
			t.Fatalf("mt=%d err=%v", mt, err)
		}
		got, err := DecodeShardState(body)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != st.ID || got.Dim != st.Dim || got.Epoch != st.Epoch || got.Metric != st.Metric {
			t.Fatalf("header: %+v vs %+v", got, st)
		}
		for i := range st.IDs {
			if got.IDs[i] != st.IDs[i] || got.IsRep[i] != st.IsRep[i] {
				t.Fatalf("pos %d mismatch", i)
			}
		}
		assertF32s(t, got.Gather, st.Gather)
		assertF64s(t, got.SegDists, st.SegDists)
		if windowed && got.SegDists == nil {
			t.Fatal("windowed state lost its segDists")
		}
	}
}

func TestShardStateRejectsMalformedOffsets(t *testing.T) {
	base := &ShardState{
		ID: 0, Dim: 2, Metric: MetricSpec{Kind: MetricEuclidean},
		RepIDs: []int32{1}, Offsets: []int{0, 2},
		IDs: []int32{3, 4}, IsRep: []bool{false, false},
		Gather: []float32{1, 2, 3, 4},
	}
	bad := []ShardState{*base, *base, *base}
	bad[0].Offsets = []int{0, 1} // last offset != n
	bad[1].Offsets = []int{1, 2} // first offset != 0
	bad[2].Offsets = []int{0, 2, 1}
	for i := range bad {
		_, body, err := ReadFrame(bytes.NewReader(EncodeShardState(&bad[i])), MaxFrameBytes)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeShardState(body); err == nil {
			t.Fatalf("case %d: malformed offsets accepted", i)
		}
	}
}

// Decoders must reject, never panic on, arbitrary CRC-valid garbage.
func TestDecodersRobustToRandomBodies(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 2000; trial++ {
		body := make([]byte, rng.Intn(64))
		rng.Read(body)
		_, _ = DecodeScanRequest(body)
		_, _ = DecodeScanReply(body)
		_, _ = DecodeShardState(body)
		_ = DecodeErr(body)
	}
}

func TestErrRoundTrip(t *testing.T) {
	mt, body, err := ReadFrame(bytes.NewReader(EncodeErr("no shard loaded")), MaxFrameBytes)
	if err != nil || mt != MsgErr {
		t.Fatalf("mt=%d err=%v", mt, err)
	}
	rerr := DecodeErr(body)
	var re *RemoteError
	if !errors.As(rerr, &re) || re.Msg != "no shard loaded" {
		t.Fatalf("got %v", rerr)
	}
}

func TestMetricSpecRoundTrip(t *testing.T) {
	for _, m := range []metric.Metric[[]float32]{
		metric.Euclidean{}, metric.NewMinkowski(1.5), metric.Angular{},
	} {
		spec, err := SpecFor(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := spec.Metric()
		if err != nil {
			t.Fatal(err)
		}
		if back.Name() != m.Name() {
			t.Fatalf("round trip: %s vs %s", back.Name(), m.Name())
		}
	}
	if _, err := SpecFor(nil); err == nil {
		t.Fatal("nil metric must not encode")
	}
}

func assertF32s(t *testing.T, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d float32s, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("pos %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func assertF64s(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d float64s, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("pos %d: %v vs %v", i, got[i], want[i])
		}
	}
}
