package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Version is the protocol version byte every payload starts with. See
// doc.go for the version history; v2 added the replica epoch to
// MsgLoad and MsgScan.
const Version = 2

// Message types.
const (
	MsgLoad      = 1
	MsgLoadOK    = 2
	MsgScan      = 3
	MsgScanReply = 4
	MsgErr       = 5
	MsgPing      = 6
	MsgPong      = 7
)

// MaxFrameBytes is the default receive limit. Shard loads carry whole
// segment payloads (gather vectors), so the limit is generous; scan
// traffic is orders of magnitude below it.
const MaxFrameBytes = 1 << 30

const frameHead = 8 // uint32 length + uint32 crc

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrCorrupt reports a frame whose CRC does not match its payload.
	ErrCorrupt = errors.New("wire: corrupt frame (CRC mismatch)")
	// ErrTooLarge reports a frame length beyond the receiver's limit.
	ErrTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrBadVersion reports an unknown protocol version byte.
	ErrBadVersion = errors.New("wire: unknown protocol version")
	// ErrTruncated reports a structurally short message body.
	ErrTruncated = errors.New("wire: truncated message body")
)

// RemoteError is a failure reported by the remote end via MsgErr. It is
// NOT retryable: the frame arrived intact, the shard just could not
// serve the request (e.g. no shard state loaded, dimension mismatch).
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "wire: remote error: " + e.Msg }

// NewFrame starts a frame for msgType: the returned buffer has the
// 8-byte header reserved and the version and type bytes appended. Body
// bytes are appended with the append* helpers; Finish seals the header.
func NewFrame(msgType byte) []byte {
	b := make([]byte, frameHead, 256)
	return append(b, Version, msgType)
}

// Finish writes the length and CRC into the reserved header and returns
// the wire-ready frame.
func Finish(frame []byte) []byte {
	payload := frame[frameHead:]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	return frame
}

// ReadFrame reads one frame from r, enforcing the max payload size and
// the CRC, and returns the message type and body (payload minus the
// version and type bytes).
func ReadFrame(r io.Reader, max int) (msgType byte, body []byte, err error) {
	var hdr [frameHead]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	plen := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if plen < 2 {
		return 0, nil, ErrCorrupt
	}
	if int64(plen) > int64(max) {
		return 0, nil, fmt.Errorf("%w: %d bytes > limit %d", ErrTooLarge, plen, max)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return 0, nil, ErrCorrupt
	}
	if payload[0] != Version {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, payload[0])
	}
	return payload[1], payload[2:], nil
}

// WriteFrame writes a finished frame to w.
func WriteFrame(w io.Writer, frame []byte) error {
	_, err := w.Write(frame)
	return err
}

// --- append helpers (encoding) ---

func appendU8(b []byte, v uint8) []byte { return append(b, v) }
func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}
func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}
func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}
func appendF64s(b []byte, vs []float64) []byte {
	for _, v := range vs {
		b = appendF64(b, v)
	}
	return b
}
func appendF32s(b []byte, vs []float32) []byte {
	for _, v := range vs {
		b = appendU32(b, math.Float32bits(v))
	}
	return b
}
func appendI32s(b []byte, vs []int32) []byte {
	for _, v := range vs {
		b = appendU32(b, uint32(v))
	}
	return b
}

// --- dec: bounds-checked cursor (decoding) ---

// dec walks a message body; the first out-of-bounds read latches err and
// every later read returns zero values, so decoders can be written as
// straight-line code with one error check at the end.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) || d.off+n < d.off {
		d.err = ErrTruncated
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *dec) u8() uint8 {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (d *dec) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (d *dec) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// n returns a u32 validated as a sane element count for elemSize-byte
// elements: the remaining body must be able to hold it, which rejects
// absurd counts before any allocation.
func (d *dec) n(elemSize int) int {
	c := int(d.u32())
	if d.err == nil && c*elemSize > len(d.b)-d.off {
		d.err = ErrTruncated
		return 0
	}
	return c
}

func (d *dec) f32s(n int) []float32 {
	s := d.take(4 * n)
	if s == nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(s[4*i:]))
	}
	return out
}

func (d *dec) f64s(n int) []float64 {
	s := d.take(8 * n)
	if s == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(s[8*i:]))
	}
	return out
}

func (d *dec) i32s(n int) []int32 {
	s := d.take(4 * n)
	if s == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(s[4*i:]))
	}
	return out
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrTruncated, len(d.b)-d.off)
	}
	return nil
}

// EncodeErr builds a MsgErr frame carrying msg.
func EncodeErr(msg string) []byte {
	f := NewFrame(MsgErr)
	f = appendU32(f, uint32(len(msg)))
	f = append(f, msg...)
	return Finish(f)
}

// DecodeErr decodes a MsgErr body into a RemoteError.
func DecodeErr(body []byte) error {
	d := &dec{b: body}
	n := d.n(1)
	s := d.take(n)
	if err := d.done(); err != nil {
		return err
	}
	return &RemoteError{Msg: string(s)}
}

// EncodeEmpty builds a body-less frame (MsgLoadOK, MsgPing, MsgPong).
func EncodeEmpty(msgType byte) []byte { return Finish(NewFrame(msgType)) }
