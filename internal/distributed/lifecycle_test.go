package distributed

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/metric"
)

// TestQueryAfterCloseReturnsError is the query-after-Close half of the
// lifecycle bugfix: before the fix this was a send-on-closed-channel
// panic; now every entry point returns ErrClusterClosed.
func TestQueryAfterCloseReturnsError(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	db := clustered(rng, 300, 4, 4)
	cl, err := Build(db, metric.Euclidean{}, core.ExactParams{Seed: 11}, 3, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	cl.Close() // idempotent

	q := db.Row(0)
	if _, _, err := cl.Query(q); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("Query: %v", err)
	}
	if _, _, err := cl.KNN(q, 3); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("KNN: %v", err)
	}
	if _, _, err := cl.QueryBatch(db.Subset([]int{0, 1})); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("QueryBatch: %v", err)
	}
	if _, _, err := cl.KNNBatch(db.Subset([]int{0, 1}), 2); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("KNNBatch: %v", err)
	}
	if _, _, err := cl.QueryBroadcast(q); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("QueryBroadcast: %v", err)
	}
	if st := cl.NetStats(); st != nil {
		t.Fatalf("NetStats after Close: %v", st)
	}
}

// TestCloseQueryRaceStress is the concurrent half: many goroutines
// hammer every entry point while Close lands in the middle. Before the
// fix the fan-out could send on a closed channel and panic; now each
// call either completes normally or returns ErrClusterClosed, and Close
// waits for in-flight fan-out to drain. Run under -race in CI.
func TestCloseQueryRaceStress(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		db := clustered(rng, 400, 4, 4)
		queries := clustered(rng, 16, 4, 4)
		cl, err := Build(db, metric.Euclidean{}, core.ExactParams{Seed: int64(trial), EarlyExit: trial%2 == 0}, 4, DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					var err error
					switch g % 3 {
					case 0:
						_, _, err = cl.KNNBatch(queries, 3)
					case 1:
						_, _, err = cl.KNN(queries.Row(i%queries.N()), 2)
					default:
						_, _, err = cl.QueryBroadcast(queries.Row(i % queries.N()))
					}
					if err != nil {
						if !errors.Is(err, ErrClusterClosed) {
							t.Errorf("goroutine %d: unexpected error %v", g, err)
						}
						return
					}
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			cl.Close()
		}()
		close(start)
		wg.Wait()
	}
}
