package distributed

// Hedge-policy tests (PR 10): the hedging race under a fake clock
// (deterministic — no sleeps in the policy assertions), cancellation
// reaching the losing replica's socket, stats parity between hedged and
// unhedged runs, and the tail-latency win under an injected slow
// replica.

import (
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/distributed/wire"
	"repro/internal/metric"
)

// fakeClock hands out controllable timer channels: fire(i) releases the
// i-th clk.After call. Now() is unused by the race but required by the
// interface.
type fakeClock struct {
	mu     sync.Mutex
	afters []chan time.Time
	delays []time.Duration
}

func (c *fakeClock) Now() time.Time { return time.Time{} }

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	c.afters = append(c.afters, ch)
	c.delays = append(c.delays, d)
	return ch
}

// fire releases the i-th After channel, waiting for it to be armed.
func (c *fakeClock) fire(t *testing.T, i int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		if len(c.afters) > i {
			ch := c.afters[i]
			c.mu.Unlock()
			ch <- time.Time{}
			return
		}
		c.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timer %d never armed", i)
}

func (c *fakeClock) armed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.afters)
}

// TestHedgeFiresOnlyPastDelay: the second replica is contacted only
// after the hedge timer fires, never before.
func TestHedgeFiresOnlyPastDelay(t *testing.T) {
	clk := &fakeClock{}
	launched := make(chan int, 4)
	release := make([]chan struct{}, 2)
	for i := range release {
		release[i] = make(chan struct{})
	}
	type res struct {
		rp  shardReply
		out hedgeOutcome
		err error
	}
	done := make(chan res, 1)
	go func() {
		rp, out, err := hedgedScan(2, 1, func() time.Duration { return 5 * time.Millisecond }, clk,
			func(i int, cx *canceller) (shardReply, error) {
				launched <- i
				<-release[i]
				return shardReply{sid: i}, nil
			})
		done <- res{rp, out, err}
	}()
	if got := <-launched; got != 0 {
		t.Fatalf("first launch was replica %d", got)
	}
	select {
	case i := <-launched:
		t.Fatalf("replica %d launched before the hedge delay", i)
	case <-time.After(50 * time.Millisecond):
	}
	clk.fire(t, 0)
	if got := <-launched; got != 1 {
		t.Fatalf("hedge launched replica %d", got)
	}
	close(release[1])
	r := <-done
	close(release[0])
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.out.winner != 1 || r.rp.sid != 1 {
		t.Fatalf("winner %d, reply sid %d; want the hedge (1)", r.out.winner, r.rp.sid)
	}
	if len(r.out.hedged) != 1 || r.out.hedged[0] != 1 {
		t.Fatalf("hedged=%v, want [1]", r.out.hedged)
	}
	if len(r.out.cancelled) != 1 || r.out.cancelled[0] != 0 {
		t.Fatalf("cancelled=%v, want [0]", r.out.cancelled)
	}
}

// TestHedgeMaxHedgesRespected: with a 3-replica set and MaxHedges 1,
// exactly one hedge timer is armed; the third replica is never
// contacted while the first two are merely slow.
func TestHedgeMaxHedgesRespected(t *testing.T) {
	clk := &fakeClock{}
	launched := make(chan int, 4)
	release := make([]chan struct{}, 3)
	for i := range release {
		release[i] = make(chan struct{})
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		hedgedScan(3, 1, func() time.Duration { return time.Millisecond }, clk,
			func(i int, cx *canceller) (shardReply, error) {
				launched <- i
				<-release[i]
				return shardReply{sid: i}, nil
			})
	}()
	<-launched // replica 0
	clk.fire(t, 0)
	<-launched // replica 1, the one allowed hedge
	select {
	case i := <-launched:
		t.Fatalf("replica %d launched past the hedge budget", i)
	case <-time.After(50 * time.Millisecond):
	}
	if n := clk.armed(); n != 1 {
		t.Fatalf("%d timers armed with a budget of 1", n)
	}
	close(release[0])
	<-done
	close(release[1])
}

// TestFailoverIgnoresHedgeBudget: with hedging disabled entirely, a
// replica that fails outright still falls over to the next one, through
// the whole set.
func TestFailoverIgnoresHedgeBudget(t *testing.T) {
	clk := &fakeClock{}
	var order []int
	var mu sync.Mutex
	rp, out, err := hedgedScan(3, 0, func() time.Duration { return time.Millisecond }, clk,
		func(i int, cx *canceller) (shardReply, error) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			if i < 2 {
				return shardReply{}, errors.New("replica down")
			}
			return shardReply{sid: i}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if out.winner != 2 || rp.sid != 2 {
		t.Fatalf("winner %d, want 2", out.winner)
	}
	if len(out.hedged) != 0 {
		t.Fatalf("failover charged as hedge: %v", out.hedged)
	}
	if clk.armed() != 0 {
		t.Fatal("timer armed with hedging disabled")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("launch order %v", order)
	}
}

// TestHedgeAllReplicasFail: the first failure's error surfaces once the
// whole set is exhausted.
func TestHedgeAllReplicasFail(t *testing.T) {
	clk := &fakeClock{}
	first := errors.New("first failure")
	_, out, err := hedgedScan(2, 1, func() time.Duration { return time.Millisecond }, clk,
		func(i int, cx *canceller) (shardReply, error) {
			if i == 0 {
				return shardReply{}, first
			}
			return shardReply{}, errors.New("second failure")
		})
	if !errors.Is(err, first) {
		t.Fatalf("err=%v, want the first failure", err)
	}
	if out.winner != -1 {
		t.Fatalf("winner %d on total failure", out.winner)
	}
}

func TestRTTQuantileEstimate(t *testing.T) {
	q := newRTTQuantile(0.95)
	if _, ok := q.estimate(); ok {
		t.Fatal("estimate before any samples")
	}
	for i := 1; i <= rttQuantileMinSamples-1; i++ {
		q.observe(time.Duration(i) * time.Millisecond)
	}
	if _, ok := q.estimate(); ok {
		t.Fatal("estimate below the sample floor")
	}
	q.observe(8 * time.Millisecond)
	est, ok := q.estimate()
	if !ok {
		t.Fatal("no estimate at the sample floor")
	}
	// 8 samples 1..8ms, p=0.95 → index int(.95*7)=6 → 7ms.
	if est != 7*time.Millisecond {
		t.Fatalf("estimate %v, want 7ms", est)
	}
	// Flood the window with a new regime; the old samples must age out.
	for i := 0; i < rttQuantileWindow; i++ {
		q.observe(100 * time.Millisecond)
	}
	if est, _ := q.estimate(); est != 100*time.Millisecond {
		t.Fatalf("estimate %v after regime shift, want 100ms", est)
	}
}

// startStallingReplica serves the wire protocol but never answers a
// scan: it acks loads (so Distribute succeeds) and then sits on MsgScan
// until the client closes the connection, reporting each such death on
// the returned channel — the probe that cancellation really reached
// this replica's socket rather than just local state.
func startStallingReplica(t *testing.T) (string, chan struct{}) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	dead := make(chan struct{}, 64)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				for {
					mt, _, err := wire.ReadFrame(c, wire.MaxFrameBytes)
					if err != nil {
						return
					}
					switch mt {
					case wire.MsgLoad:
						if wire.WriteFrame(c, wire.EncodeEmpty(wire.MsgLoadOK)) != nil {
							return
						}
					case wire.MsgPing:
						if wire.WriteFrame(c, wire.EncodeEmpty(wire.MsgPong)) != nil {
							return
						}
					case wire.MsgScan:
						// Stall: the next read returns only when the peer
						// closes the connection.
						if _, err := c.Read(make([]byte, 1)); err != nil {
							dead <- struct{}{}
							return
						}
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), dead
}

// TestHedgeCancellationReachesLosingReplica: replica 0 stalls forever,
// the hedge wins on replica 1, and the loser's connection is actually
// closed (observed server-side), with the Hedged/HedgeWins/Cancelled
// counters attributing the race correctly.
func TestHedgeCancellationReachesLosingReplica(t *testing.T) {
	stallAddr, dead := startStallingReplica(t)
	fastAddrs, _ := startShardServers(t, 1)
	cl, _, queries := buildSmall(t, 401, 1, false)
	opts := fastOpts()
	opts.RequestTimeout = 30 * time.Second // only cancellation may end the stalled attempt
	opts.Hedge = HedgeOptions{MaxHedges: 1, Delay: 10 * time.Millisecond}
	if err := cl.DistributeReplicas([][]string{{stallAddr, fastAddrs[0]}}, opts); err != nil {
		t.Fatalf("DistributeReplicas: %v", err)
	}
	if _, _, err := cl.KNNBatch(queries, 3); err != nil {
		t.Fatalf("hedged KNNBatch: %v", err)
	}
	select {
	case <-dead:
	case <-time.After(10 * time.Second):
		t.Fatal("losing replica never saw its connection close")
	}
	stats := cl.NetStats()
	if len(stats) != 2 {
		t.Fatalf("%d stats entries for 2 replicas", len(stats))
	}
	if stats[0].Addr != stallAddr || stats[0].Cancelled == 0 {
		t.Fatalf("stalling replica stats %+v, want Cancelled > 0", stats[0])
	}
	if stats[1].Hedged == 0 || stats[1].HedgeWins == 0 {
		t.Fatalf("fast replica stats %+v, want Hedged and HedgeWins > 0", stats[1])
	}
}

// TestFailoverExhaustedSetNamed: when a shard's whole replica set is
// down, the fail-fast error names every replica tried.
func TestFailoverExhaustedSetNamed(t *testing.T) {
	cl, _, queries := buildSmall(t, 409, 1, false)
	addrs, servers := startShardServers(t, 2)
	if err := cl.DistributeReplicas([][]string{{addrs[0], addrs[1]}}, fastOpts()); err != nil {
		t.Fatalf("DistributeReplicas: %v", err)
	}
	servers[0].Close()
	servers[1].Close()
	_, _, err := cl.KNNBatch(queries, 3)
	var serr *ShardError
	if !errors.As(err, &serr) {
		t.Fatalf("err=%v, want *ShardError", err)
	}
	if serr.Addr != addrs[0]+","+addrs[1] {
		t.Fatalf("exhausted set named %q, want %q", serr.Addr, addrs[0]+","+addrs[1])
	}
	if !strings.Contains(err.Error(), "all 2 replicas exhausted") {
		t.Fatalf("error does not report exhaustion: %v", err)
	}
}

// TestHedgedStatsParity: aggressive hedging against two healthy
// replicas changes neither the answers nor a single QueryMetrics
// counter relative to the loopback twin — hedging lives strictly below
// the metrics the cluster reports.
func TestHedgedStatsParity(t *testing.T) {
	const shards, k = 2, 5
	rng := rand.New(rand.NewSource(419))
	db := clustered(rng, 800, 5, 6)
	queries := clustered(rng, 32, 5, 6)
	prm := core.ExactParams{Seed: 421, EarlyExit: true}
	loop, err := Build(db, metric.Euclidean{}, prm, shards, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()
	hedged, err := Build(db, metric.Euclidean{}, prm, shards, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer hedged.Close()
	addrs, _ := startShardServers(t, 2*shards)
	opts := fastOpts()
	opts.Hedge = HedgeOptions{MaxHedges: 1, Delay: time.Nanosecond} // hedge virtually every scan
	assignment := [][]string{{addrs[0], addrs[1]}, {addrs[2], addrs[3]}}
	if err := hedged.DistributeReplicas(assignment, opts); err != nil {
		t.Fatalf("DistributeReplicas: %v", err)
	}
	want, wantMet, err := loop.KNNBatch(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	got, gotMet, err := hedged.KNNBatch(queries, k)
	if err != nil {
		t.Fatalf("hedged KNNBatch: %v", err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("query %d pos %d: hedged %+v vs loopback %+v", i, j, got[i][j], want[i][j])
			}
		}
	}
	if gotMet != wantMet {
		t.Fatalf("hedging leaked into QueryMetrics: %+v vs %+v", gotMet, wantMet)
	}
	var hedges int64
	for _, st := range hedged.NetStats() {
		hedges += st.Hedged
	}
	if hedges == 0 {
		t.Fatal("1ns hedge delay fired no hedges — the race was not exercised")
	}
}

// slowProxy forwards the wire protocol to a backend, delaying every
// client→server frame by a fixed amount — the injected slow replica.
func startSlowProxy(t *testing.T, backend string, delay time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(client net.Conn) {
				defer client.Close()
				server, err := net.Dial("tcp", backend)
				if err != nil {
					return
				}
				defer server.Close()
				go io.Copy(client, server)
				hdr := make([]byte, 8)
				for {
					if _, err := io.ReadFull(client, hdr); err != nil {
						return
					}
					payload := make([]byte, binary.LittleEndian.Uint32(hdr[0:4]))
					if _, err := io.ReadFull(client, payload); err != nil {
						return
					}
					time.Sleep(delay)
					if _, err := server.Write(append(append([]byte(nil), hdr...), payload...)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestHedgedTailLatencyUnderSlowReplica: with the primary behind an
// 80ms proxy and a fast twin, an unhedged cluster pays the delay on
// every scan while a hedged one (5ms fixed delay) answers from the twin
// — its worst latency must beat the unhedged cluster's best, and the
// hedge wins must show in the stats. This is the in-tree form of the
// rbc-bench -net-slow experiment.
func TestHedgedTailLatencyUnderSlowReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const delay = 80 * time.Millisecond
	backends, _ := startShardServers(t, 2)
	run := func(hedge HedgeOptions) (time.Duration, time.Duration, *Cluster) {
		cl, _, queries := buildSmall(t, 431, 1, false)
		slow := startSlowProxy(t, backends[0], delay)
		opts := fastOpts()
		opts.RequestTimeout = 10 * time.Second
		opts.Hedge = hedge
		if err := cl.DistributeReplicas([][]string{{slow, backends[1]}}, opts); err != nil {
			t.Fatalf("DistributeReplicas: %v", err)
		}
		lo, hi := time.Duration(1<<62), time.Duration(0)
		for i := 0; i < 8; i++ {
			start := time.Now()
			if _, _, err := cl.KNNBatch(queries, 3); err != nil {
				t.Fatalf("KNNBatch: %v", err)
			}
			if e := time.Since(start); i > 0 { // skip the connection-warmup call
				if e < lo {
					lo = e
				}
				if e > hi {
					hi = e
				}
			}
		}
		return lo, hi, cl
	}
	unhedgedLo, _, _ := run(HedgeOptions{})
	_, hedgedHi, hedgedCl := run(HedgeOptions{MaxHedges: 1, Delay: 5 * time.Millisecond})
	if unhedgedLo < delay {
		t.Fatalf("unhedged best %v beat the %v injected delay — proxy not in the path", unhedgedLo, delay)
	}
	if hedgedHi >= unhedgedLo {
		t.Fatalf("hedged worst %v did not beat unhedged best %v", hedgedHi, unhedgedLo)
	}
	var wins int64
	for _, st := range hedgedCl.NetStats() {
		wins += st.HedgeWins
	}
	if wins == 0 {
		t.Fatal("slow primary induced no hedge wins")
	}
}
