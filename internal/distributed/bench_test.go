package distributed

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// Benchmarks for the tiled shard-scan path. The baseline resurrects the
// pre-tiling shard loop — per-pair m.Distance calls over each surviving
// segment, shards working concurrently — on top of the same coordinator
// routing, so the delta isolates exactly what the tiled scans buy.

const (
	benchN      = 10000
	benchDim    = 64
	benchQ      = 256
	benchK      = 10
	benchShards = 8
)

var benchState struct {
	once    sync.Once
	cl      *Cluster // full-scan shards
	clWin   *Cluster // EarlyExit-windowed shards, same parameters otherwise
	queries *vec.Dataset
}

func benchCluster(b *testing.B) (*Cluster, *vec.Dataset) {
	cl, _, queries := benchClusters(b)
	return cl, queries
}

func benchClusters(b *testing.B) (*Cluster, *Cluster, *vec.Dataset) {
	benchState.once.Do(func() {
		rng := rand.New(rand.NewSource(5150))
		db := clustered(rng, benchN, benchDim, 32)
		prm := core.ExactParams{NumReps: 200, Seed: 5153, ExactCount: true}
		cl, err := Build(db, metric.Euclidean{}, prm, benchShards, DefaultCostModel())
		if err != nil {
			panic(err)
		}
		prm.EarlyExit = true
		clWin, err := Build(db, metric.Euclidean{}, prm, benchShards, DefaultCostModel())
		if err != nil {
			panic(err)
		}
		benchState.cl = cl
		benchState.clWin = clWin
		benchState.queries = clustered(rand.New(rand.NewSource(5157)), benchQ, benchDim, 32)
	})
	return benchState.cl, benchState.clWin, benchState.queries
}

// perPairKNNBatch is the pre-tiling reference implementation: the same
// survivor routing, but distance-space heaps and one m.Distance call per
// (query, point) pair inside each shard — the memory-bound shape the
// paper argues against. Shards run concurrently, as the old serve loop
// did.
func perPairKNNBatch(cl *Cluster, queries *vec.Dataset, k int) [][]par.Neighbor {
	nq := queries.N()
	nr := cl.repData.N()
	out := make([][]par.Neighbor, nq)
	heaps := make([]*par.KHeap, nq)
	survivors := make([][]int32, nq)
	par.For(nq, 8, func(lo, hi int) {
		dists := make([]float64, nr)
		kk := k
		if kk > nr {
			kk = nr
		}
		for i := lo; i < hi; i++ {
			metric.BatchDistances(cl.m, queries.Row(i), cl.repData.Data, cl.dim, dists)
			sel := par.NewKHeap(kk)
			for j, d := range dists {
				sel.Push(j, d)
			}
			best, _ := sel.Best()
			gamma1 := best.Dist
			gammaK := math.Inf(1)
			if w, full := sel.Worst(); full && k <= nr {
				gammaK = w
			}
			tripleBound := 2*gammaK + gamma1
			h := par.NewKHeap(k)
			for j, d := range dists {
				h.Push(cl.repIDs[j], d)
			}
			heaps[i] = h
			var surv []int32
			for j := 0; j < nr; j++ {
				if dists[j] >= gammaK+cl.radii[j] {
					continue
				}
				if !math.IsInf(tripleBound, 1) && dists[j] > tripleBound {
					continue
				}
				surv = append(surv, int32(j))
			}
			survivors[i] = surv
		}
	})
	batches := make([]shardBatch, len(cl.shards))
	for i := 0; i < nq; i++ {
		for _, j := range survivors[i] {
			batches[cl.repShard[j]].add(i, int(cl.repSeg[j]), nil)
		}
	}
	type reply struct {
		sid int
		knn [][]par.Neighbor
	}
	ch := make(chan reply, len(cl.shards))
	contacted := 0
	for sid := range batches {
		sb := &batches[sid]
		if len(sb.qidx) == 0 {
			continue
		}
		contacted++
		go func(sid int, sb *shardBatch) {
			s := cl.shards[sid]
			knn := make([][]par.Neighbor, len(sb.qidx))
			for t, qi := range sb.qidx {
				q := queries.Row(qi)
				h := par.NewKHeap(k)
				for _, seg := range sb.segs[t] {
					lo, hi := s.offsets[seg], s.offsets[seg+1]
					for p := lo; p < hi; p++ {
						if s.isRep[p] {
							continue
						}
						h.Push(int(s.ids[p]), cl.m.Distance(q, s.gather[p*s.dim:(p+1)*s.dim]))
					}
				}
				knn[t] = h.Results()
			}
			ch <- reply{sid, knn}
		}(sid, sb)
	}
	for r := 0; r < contacted; r++ {
		rp := <-ch
		for t, qi := range batches[rp.sid].qidx {
			for _, nb := range rp.knn[t] {
				heaps[qi].Push(nb.ID, nb.Dist)
			}
		}
	}
	for i, h := range heaps {
		out[i] = h.Results()
	}
	return out
}

// BenchmarkClusterKNNBatch measures the tiled batch-and-tile shard path
// at the acceptance configuration (n=10k, dim 64, |Q|=256). Alongside
// the timing it reports the shard-side PointEvals ratio of the
// EarlyExit-windowed cluster against this full-scan baseline — the
// work-saved headline of the window protocol (answers are bit-identical
// by contract, so the ratio is a pure cost number).
func BenchmarkClusterKNNBatch(b *testing.B) {
	cl, clWin, queries := benchClusters(b)
	_, full, _ := cl.KNNBatch(queries, benchK)
	_, win, _ := clWin.KNNBatch(queries, benchK)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.KNNBatch(queries, benchK)
	}
	// After the loop: ResetTimer would discard metrics reported before it.
	b.ReportMetric(float64(win.PointEvals)/float64(full.PointEvals), "windowed-pointevals-ratio")
}

// BenchmarkClusterKNNBatchWindowed drives the same block through the
// EarlyExit-windowed shards: sorted segments plus per-(query, segment)
// admissible windows clipping every taker's scan range.
func BenchmarkClusterKNNBatchWindowed(b *testing.B) {
	_, clWin, queries := benchClusters(b)
	_, win, _ := clWin.KNNBatch(queries, benchK)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clWin.KNNBatch(queries, benchK)
	}
	b.ReportMetric(float64(win.PointEvals)/float64(benchQ), "pointevals/query")
}

// BenchmarkClusterKNNBatchPerPair is the pre-tiling per-pair baseline on
// identical routing; the acceptance bar is KNNBatch ≥ 1.5× faster.
func BenchmarkClusterKNNBatchPerPair(b *testing.B) {
	cl, queries := benchCluster(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perPairKNNBatch(cl, queries, benchK)
	}
}

// BenchmarkClusterKNNPerQuery drives the tiled path one query at a time —
// the degenerate block shape — to expose what block batching itself buys.
func BenchmarkClusterKNNPerQuery(b *testing.B) {
	cl, queries := benchCluster(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for qi := 0; qi < queries.N(); qi++ {
			cl.KNN(queries.Row(qi), benchK)
		}
	}
}

// The per-pair baseline must agree with the tiled path on ids (a guard
// that the benchmark baseline measures the same search).
func TestPerPairBaselineAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5159))
	db := clustered(rng, 800, 6, 8)
	cl, err := Build(db, metric.Euclidean{}, core.ExactParams{Seed: 5167}, 3, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	queries := clustered(rand.New(rand.NewSource(5171)), 30, 6, 8)
	tiled, _, _ := cl.KNNBatch(queries, 5)
	base := perPairKNNBatch(cl, queries, 5)
	for i := range tiled {
		if len(tiled[i]) != len(base[i]) {
			t.Fatalf("query %d: tiled %d results, per-pair %d", i, len(tiled[i]), len(base[i]))
		}
		for p := range tiled[i] {
			if tiled[i][p].ID != base[i][p].ID {
				t.Fatalf("query %d pos %d: tiled id %d, per-pair id %d", i, p, tiled[i][p].ID, base[i][p].ID)
			}
		}
	}
}
