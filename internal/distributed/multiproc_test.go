package distributed

// Multi-process cluster smoke (PR 9): real shard processes — the test
// binary re-executed as a ShardServer, the same serving loop
// cmd/rbc-shard runs — behind a coordinator over real TCP. Covers the
// cross-process equivalence contract (bit-identical to loopback and
// core.Exact) and mid-request SIGKILL of a shard process. CI runs this
// under -race as the multi-process smoke job.

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metric"
)

const (
	shardChildEnv = "RBC_SHARD_CHILD"
	shardDirEnv   = "RBC_SHARD_DIR"
)

// TestHelperShardProcess is not a test: it is the shard child body,
// re-executed from the test binary with RBC_SHARD_CHILD=1. It serves an
// empty ShardServer (the coordinator pushes state over the wire) and
// publishes its listen address to <dir>/port, exactly as cmd/rbc-shard
// does with -addr-file.
func TestHelperShardProcess(t *testing.T) {
	if os.Getenv(shardChildEnv) != "1" {
		t.Skip("shard helper process")
	}
	dir := os.Getenv(shardDirEnv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "shard helper: %v\n", err)
		os.Exit(1)
	}
	tmp := filepath.Join(dir, "port.tmp")
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "shard helper: %v\n", err)
		os.Exit(1)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "port")); err != nil {
		fmt.Fprintf(os.Stderr, "shard helper: %v\n", err)
		os.Exit(1)
	}
	NewShardServer().Serve(ln) // runs until SIGKILL
}

type shardProc struct {
	cmd  *exec.Cmd
	addr string
}

func startShardProc(t *testing.T) *shardProc {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperShardProcess$", "-test.v=false")
	cmd.Env = append(os.Environ(), shardChildEnv+"=1", shardDirEnv+"="+dir)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &shardProc{cmd: cmd}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(filepath.Join(dir, "port")); err == nil && len(b) > 0 {
			p.addr = string(b)
			return p
		}
		time.Sleep(5 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("shard child never published its address")
	return nil
}

func (p *shardProc) sigkill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait() // reap; exit error expected after SIGKILL
}

// TestMultiProcessEquivalenceAndShardKill spawns three real shard
// processes, distributes a cluster onto them, and checks (1) answers
// are bit-identical to the in-process loopback cluster and to
// core.Exact across the corpus, and (2) SIGKILLing one shard process
// mid-workload yields the typed fail-fast error within the deadline —
// never a hang — while a DegradePartial twin keeps answering with the
// failure accounted.
func TestMultiProcessEquivalenceAndShardKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	const shards, k = 3, 6
	rng := rand.New(rand.NewSource(907))
	db := clustered(rng, 900, 6, 8)
	queries := clustered(rng, 48, 6, 8)
	prm := core.ExactParams{Seed: 911, EarlyExit: true}

	loop, err := Build(db, metric.Euclidean{}, prm, shards, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()
	netFF, err := Build(db, metric.Euclidean{}, prm, shards, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer netFF.Close()
	netDP, err := Build(db, metric.Euclidean{}, prm, shards, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer netDP.Close()
	idx, err := core.BuildExact(db, metric.Euclidean{}, prm)
	if err != nil {
		t.Fatal(err)
	}

	procs := make([]*shardProc, shards)
	addrs := make([]string, shards)
	for i := range procs {
		procs[i] = startShardProc(t)
		addrs[i] = procs[i].addr
	}
	ffOpts := fastOpts()
	if err := netFF.Distribute(addrs, ffOpts); err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	dpOpts := fastOpts()
	dpOpts.Degrade = DegradePartial
	if err := netDP.Distribute(addrs, dpOpts); err != nil {
		t.Fatalf("Distribute: %v", err)
	}

	// (1) Cross-process equivalence while all shards are healthy.
	want, _, err := loop.KNNBatch(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := netFF.KNNBatch(queries, k)
	if err != nil {
		t.Fatalf("multi-process KNNBatch: %v", err)
	}
	wantExact, _ := idx.KNNBatch(queries, k)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("query %d pos %d: process %+v vs loopback %+v", i, j, got[i][j], want[i][j])
			}
			if got[i][j].ID != wantExact[i][j].ID {
				t.Fatalf("query %d pos %d: process %+v vs exact %+v", i, j, got[i][j], wantExact[i][j])
			}
		}
	}

	// (2) SIGKILL one shard process while a query workload runs.
	var stop int32
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(10 * time.Millisecond)
		procs[2].sigkill(t)
	}()
	sawError := false
	deadline := time.Now().Add(30 * time.Second)
	for atomic.LoadInt32(&stop) == 0 && time.Now().Before(deadline) {
		_, _, err := netFF.KNNBatch(queries, k)
		if err != nil {
			var serr *ShardError
			if !errors.As(err, &serr) {
				t.Fatalf("shard kill surfaced untyped error: %v", err)
			}
			sawError = true
			atomic.StoreInt32(&stop, 1)
		}
	}
	<-killed
	if !sawError {
		t.Fatal("killed a shard but the fail-fast cluster never reported it")
	}

	// The DegradePartial twin keeps answering across the same dead shard.
	res, met, err := netDP.KNNBatch(queries, k)
	if err != nil {
		t.Fatalf("DegradePartial after shard kill: %v", err)
	}
	if met.FailedShards == 0 {
		t.Fatal("dead shard not accounted in FailedShards")
	}
	for i := range res {
		if len(res[i]) == 0 {
			t.Fatalf("query %d lost all candidates under DegradePartial", i)
		}
	}
}

// TestMultiProcessReplicatedKillOneReplicaPerShard is the replicated
// fault drill (PR 10): three shards, each served by TWO real shard
// processes, with one replica of EVERY shard SIGKILLed mid-workload.
// Failover walks each shard's set, so every batch before, during and
// after the kills must return answers bit-identical to the loopback
// twin with ZERO FailedShards — replication turns what used to be an
// outage into pure failover traffic, visible only in the per-replica
// net counters.
func TestMultiProcessReplicatedKillOneReplicaPerShard(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	const shards, k = 3, 6
	rng := rand.New(rand.NewSource(947))
	db := clustered(rng, 900, 6, 8)
	queries := clustered(rng, 48, 6, 8)
	prm := core.ExactParams{Seed: 953, EarlyExit: true}

	loop, err := Build(db, metric.Euclidean{}, prm, shards, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()
	netCl, err := Build(db, metric.Euclidean{}, prm, shards, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer netCl.Close()

	// Two replica processes per shard; replica 0 is the kill target.
	procs := make([][2]*shardProc, shards)
	assignment := make([][]string, shards)
	for sid := 0; sid < shards; sid++ {
		procs[sid][0] = startShardProc(t)
		procs[sid][1] = startShardProc(t)
		assignment[sid] = []string{procs[sid][0].addr, procs[sid][1].addr}
	}
	opts := fastOpts()
	opts.Degrade = DegradePartial // zero FailedShards must hold even when allowed to degrade
	if err := netCl.DistributeReplicas(assignment, opts); err != nil {
		t.Fatalf("DistributeReplicas: %v", err)
	}

	want, _, err := loop.KNNBatch(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		got, met, err := netCl.KNNBatch(queries, k)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if met.FailedShards != 0 {
			t.Fatalf("%s: %d FailedShards with a live replica per shard", stage, met.FailedShards)
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("%s: query %d pos %d: %+v vs loopback %+v", stage, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
	check("healthy replicated cluster")

	// Kill one replica of every shard while a workload goroutine runs.
	stop := make(chan struct{})
	workErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				workErr <- nil
				return
			default:
			}
			if _, met, err := netCl.KNNBatch(queries, k); err != nil {
				workErr <- fmt.Errorf("mid-kill batch: %w", err)
				return
			} else if met.FailedShards != 0 {
				workErr <- fmt.Errorf("mid-kill batch counted %d FailedShards", met.FailedShards)
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	for sid := 0; sid < shards; sid++ {
		procs[sid][0].sigkill(t)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	if err := <-workErr; err != nil {
		t.Fatal(err)
	}
	check("after killing one replica per shard")

	// The kills must be visible as failover traffic: every killed
	// replica accumulated failures, every survivor kept serving.
	stats := netCl.NetStats()
	if len(stats) != 2*shards {
		t.Fatalf("%d stats entries for %d replicas", len(stats), 2*shards)
	}
	bySurvivor := map[string]bool{}
	for sid := 0; sid < shards; sid++ {
		bySurvivor[procs[sid][1].addr] = true
	}
	sawFailover := false
	for _, st := range stats {
		if bySurvivor[st.Addr] {
			if st.Requests == 0 {
				t.Fatalf("surviving replica %s served nothing: %+v", st.Addr, st)
			}
			continue
		}
		if st.Failures > 0 {
			sawFailover = true
		}
	}
	if !sawFailover {
		t.Fatal("killed replicas show no failures — failover path not exercised")
	}

	// Killing the survivors too exhausts shard sets: DegradePartial now
	// counts the missing shards instead of failing.
	for sid := 0; sid < shards; sid++ {
		procs[sid][1].sigkill(t)
	}
	res, met, err := netCl.KNNBatch(queries, k)
	if err != nil {
		t.Fatalf("DegradePartial after total kill: %v", err)
	}
	if met.FailedShards != shards {
		t.Fatalf("%d FailedShards after killing every replica, want %d", met.FailedShards, shards)
	}
	for i := range res {
		if len(res[i]) == 0 {
			t.Fatalf("query %d lost all candidates — rep seeding should survive", i)
		}
	}
}
