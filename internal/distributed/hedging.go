package distributed

import (
	"errors"
	"net"
	"sort"
	"sync"
	"time"
)

// errScanCancelled marks an attempt abandoned because another replica
// answered first. It never surfaces to callers: the winning reply does.
var errScanCancelled = errors.New("distributed: scan cancelled (another replica won)")

// clock abstracts the two time operations the hedging race needs, so
// the hedge-policy unit tests can drive the race with a fake clock
// instead of sleeping.
type clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// canceller lets the hedging race abort a losing attempt mid-I/O. The
// attempt registers its live connection before each blocking exchange;
// cancel closes whatever is registered, which unblocks the pending read
// or write with an error, and flips the abandoned flag so the attempt's
// retry loop stops instead of dialing a fresh connection. release
// detaches a connection that finished its exchange cleanly, so a late
// cancel cannot poison a pooled connection.
type canceller struct {
	mu        sync.Mutex
	conn      net.Conn
	cancelled bool
}

// register attaches the attempt's current connection. It reports false
// when the attempt has already been cancelled — the caller must close
// the connection and abandon the attempt.
func (c *canceller) register(conn net.Conn) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancelled {
		return false
	}
	c.conn = conn
	return true
}

// release detaches the registered connection without cancelling.
func (c *canceller) release() {
	c.mu.Lock()
	c.conn = nil
	c.mu.Unlock()
}

// abandoned reports whether cancel has been called.
func (c *canceller) abandoned() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cancelled
}

// cancel closes the registered connection (if any) and marks the
// attempt abandoned. It reports whether this call was the one that
// cancelled (false when already cancelled).
func (c *canceller) cancel() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancelled {
		return false
	}
	c.cancelled = true
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	return true
}

// rttQuantile tracks a p-quantile of observed exchange RTTs over a
// sliding window of the most recent observations. A sorted copy of a
// small fixed window per estimate keeps it simple, deterministic and
// O(window log window) — negligible next to a network round trip.
type rttQuantile struct {
	mu  sync.Mutex
	p   float64
	buf []time.Duration // ring buffer of the last len(buf) observations
	n   int             // total observations ever
}

// rttQuantileWindow is the sliding-window size: large enough that one
// outlier cannot drag the estimate, small enough to adapt within a few
// dozen scans when a replica's latency regime shifts.
const rttQuantileWindow = 64

// rttQuantileMinSamples gates the estimate: below this many
// observations the estimator reports "no estimate yet" and the hedge
// delay falls back to its floor (hedge eagerly, learn fast).
const rttQuantileMinSamples = 8

func newRTTQuantile(p float64) *rttQuantile {
	return &rttQuantile{p: p, buf: make([]time.Duration, rttQuantileWindow)}
}

func (q *rttQuantile) observe(d time.Duration) {
	q.mu.Lock()
	q.buf[q.n%len(q.buf)] = d
	q.n++
	q.mu.Unlock()
}

// estimate returns the current p-quantile and whether enough samples
// have been observed to trust it.
func (q *rttQuantile) estimate() (time.Duration, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n < rttQuantileMinSamples {
		return 0, false
	}
	filled := q.n
	if filled > len(q.buf) {
		filled = len(q.buf)
	}
	tmp := make([]time.Duration, filled)
	copy(tmp, q.buf[:filled])
	sort.Slice(tmp, func(a, b int) bool { return tmp[a] < tmp[b] })
	idx := int(q.p * float64(filled-1))
	if idx < 0 {
		idx = 0
	}
	if idx > filled-1 {
		idx = filled - 1
	}
	return tmp[idx], true
}

// hedgeOutcome reports what one hedged race did, for stats accounting.
type hedgeOutcome struct {
	winner    int   // replica index that answered; -1 when all failed
	hedged    []int // replicas contacted because the hedge timer fired
	cancelled []int // replicas whose in-flight attempt a winner cancelled
}

// hedgedScan races one scan across an ordered replica set. Replica 0 is
// attempted immediately. While no answer has arrived, each expiry of
// the hedge delay fires the same request at the next replica, up to
// maxHedges extra attempts — the tail-latency hedge. Independently, a
// replica whose attempt fails outright (its whole retry budget spent,
// or a remote refusal) triggers an immediate failover launch of the
// next unlaunched replica, not charged against maxHedges: hedging
// bounds resource amplification for slow-but-alive replicas, while
// failover must always be allowed to walk the entire set — otherwise a
// dead primary with hedging disabled could never reach its healthy
// twin.
//
// The first successful reply wins; every other in-flight attempt is
// cancelled through its canceller (closing its connection, so the
// cancellation reaches the losing replica's socket, not just local
// state). Replies are bit-identical across replicas by construction —
// every replica of a shard holds the same ShardState and runs the same
// scan code — so taking whichever answer lands first never changes a
// result bit.
//
// attempt(i, cx) must run replica i's full exchange (with its own retry
// budget), registering every live connection on cx. delay is consulted
// before each hedge arm, so an adaptive estimator can move between
// fires. When every replica has been launched and has failed, the first
// failure's error is returned (the caller decorates it with the
// exhausted replica set).
func hedgedScan(nrep, maxHedges int, delay func() time.Duration, clk clock,
	attempt func(i int, cx *canceller) (shardReply, error)) (shardReply, hedgeOutcome, error) {
	out := hedgeOutcome{winner: -1}
	type attemptResult struct {
		idx int
		rp  shardReply
		err error
	}
	// Buffered to nrep so abandoned attempts can always deliver their
	// (ignored) result and exit — no goroutine leak after a winner.
	results := make(chan attemptResult, nrep)
	cancels := make([]*canceller, nrep)
	launch := func(i int) {
		cx := &canceller{}
		cancels[i] = cx
		go func() {
			rp, err := attempt(i, cx)
			results <- attemptResult{idx: i, rp: rp, err: err}
		}()
	}
	launched, pending := 1, 1
	launch(0)
	if maxHedges > nrep-1 {
		maxHedges = nrep - 1
	}
	var timer <-chan time.Time
	if maxHedges > 0 && launched < nrep {
		timer = clk.After(delay())
	}
	var firstErr error
	for {
		select {
		case r := <-results:
			if r.err == nil {
				out.winner = r.idx
				for i, cx := range cancels {
					if i != r.idx && cx != nil && cx.cancel() {
						out.cancelled = append(out.cancelled, i)
					}
				}
				return r.rp, out, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			pending--
			if launched < nrep {
				// Failover: this replica is conclusively unable to
				// answer, so the next one starts now regardless of the
				// hedge budget or timer.
				launch(launched)
				launched++
				pending++
			} else if pending == 0 {
				return shardReply{}, out, firstErr
			}
		case <-timer:
			timer = nil
			if launched < nrep && maxHedges > 0 {
				out.hedged = append(out.hedged, launched)
				launch(launched)
				launched++
				pending++
				maxHedges--
			}
			if maxHedges > 0 && launched < nrep {
				timer = clk.After(delay())
			}
		}
	}
}
