package distributed

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/distributed/wire"
	"repro/internal/metric"
)

// ShardServer serves one shard's segments over the wire protocol — the
// process behind cmd/rbc-shard. It starts empty and generic: the
// coordinator pushes the shard's segments (MsgLoad) at
// Cluster.Distribute, after which MsgScan requests run the exact same
// shard.scan the in-process cluster runs, so answers over TCP are
// bit-identical to loopback by construction.
//
// Connections are handled concurrently and each carries strict
// request/reply framing. shard.scan is stateless (pooled scratch, no
// shard mutation), so concurrent scans need no locking beyond the
// shard-state swap at load time.
type ShardServer struct {
	maxFrame int

	mu     sync.Mutex
	sh     *shard
	epoch  uint32 // generation of the loaded state; scans must match it
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewShardServer returns an empty shard server awaiting a MsgLoad.
func NewShardServer() *ShardServer {
	return &ShardServer{maxFrame: wire.MaxFrameBytes, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close. It returns nil after
// Close; any other accept failure is returned as-is.
func (s *ShardServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClusterClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops accepting, tears down open connections (in-flight requests
// fail transport-side and are retried or surfaced by the coordinator's
// policy) and waits for handlers to exit.
func (s *ShardServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// Loaded reports whether shard state has been pushed yet.
func (s *ShardServer) Loaded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sh != nil
}

func (s *ShardServer) dropConn(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *ShardServer) handle(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)
	for {
		mt, body, err := wire.ReadFrame(conn, s.maxFrame)
		if err != nil {
			// Includes clean remote close, torn frames and CRC failures:
			// the stream is unsynchronized either way, so drop the
			// connection and let the client retry on a fresh one.
			return
		}
		var reply []byte
		switch mt {
		case wire.MsgPing:
			reply = wire.EncodeEmpty(wire.MsgPong)
		case wire.MsgLoad:
			reply = s.handleLoad(body)
		case wire.MsgScan:
			reply = s.handleScan(body)
		default:
			reply = wire.EncodeErr(fmt.Sprintf("unsupported message type %d", mt))
		}
		if err := wire.WriteFrame(conn, reply); err != nil {
			return
		}
	}
}

func (s *ShardServer) handleLoad(body []byte) []byte {
	st, err := wire.DecodeShardState(body)
	if err != nil {
		return wire.EncodeErr("bad shard state: " + err.Error())
	}
	sh, err := shardFromState(st)
	if err != nil {
		return wire.EncodeErr("bad shard state: " + err.Error())
	}
	s.mu.Lock()
	s.sh = sh
	s.epoch = st.Epoch
	s.mu.Unlock()
	return wire.EncodeEmpty(wire.MsgLoadOK)
}

func (s *ShardServer) handleScan(body []byte) []byte {
	s.mu.Lock()
	sh, epoch := s.sh, s.epoch
	s.mu.Unlock()
	if sh == nil {
		return wire.EncodeErr("no shard state loaded")
	}
	req, err := wire.DecodeScanRequest(body)
	if err != nil {
		return wire.EncodeErr("bad scan request: " + err.Error())
	}
	if req.Epoch != epoch {
		// The scan was planned against a different segment layout than
		// this replica holds (a rebalance one side has not seen yet).
		// Answering would merge candidates from the wrong segments;
		// refusing makes the coordinator fail over to a current replica.
		return wire.EncodeErr(fmt.Sprintf("stale epoch: scan routed at epoch %d, shard loaded at epoch %d", req.Epoch, epoch))
	}
	if err := validateScan(sh, req); err != nil {
		return wire.EncodeErr("bad scan request: " + err.Error())
	}
	rp := sh.scan(shardRequest{
		qs:          req.Qs,
		segs:        req.Segs,
		wins:        req.Wins,
		bounds:      req.Bounds,
		k:           req.K,
		includeReps: req.IncludeReps,
	})
	return wire.EncodeScanReply(&wire.ScanReply{
		Shard:     rp.sid,
		Evals:     rp.evals,
		EmptyWins: rp.emptyWins,
		KNN:       rp.knn,
	})
}

// validateScan rejects structurally inconsistent requests before they
// reach shard.scan, which (as an internal hot path) indexes without
// bounds checks of its own. The wire decoder already guarantees the
// cross-field length invariants (Qs vs Segs, Wins vs total entries).
func validateScan(sh *shard, req *wire.ScanRequest) error {
	if req.Dim != sh.dim {
		return fmt.Errorf("query dim %d, shard dim %d", req.Dim, sh.dim)
	}
	if req.K <= 0 {
		return fmt.Errorf("k %d", req.K)
	}
	if len(req.Qs) != len(req.Segs)*sh.dim {
		return fmt.Errorf("%d query floats for %d queries of dim %d", len(req.Qs), len(req.Segs), sh.dim)
	}
	if req.Bounds != nil && len(req.Bounds) != len(req.Segs) {
		return fmt.Errorf("%d bounds for %d queries", len(req.Bounds), len(req.Segs))
	}
	nseg := len(sh.offsets) - 1
	total := 0
	for _, segs := range req.Segs {
		total += len(segs)
		for _, seg := range segs {
			if seg < 0 || seg >= nseg {
				return fmt.Errorf("segment %d out of range (shard holds %d)", seg, nseg)
			}
		}
	}
	if req.Wins != nil {
		if len(req.Wins) != 2*total {
			return fmt.Errorf("%d window floats for %d (query, segment) pairs", len(req.Wins), total)
		}
		if sh.segDists == nil {
			return fmt.Errorf("windowed scan against a shard loaded without segment distances")
		}
	}
	return nil
}

// shardFromState reconstructs a servable shard from its wire state. The
// gathered layout crosses the wire verbatim (float32/float64 bit
// patterns preserved), so the rebuilt shard scans byte-identical data
// with the same exact-grade kernel the coordinator built.
func shardFromState(st *wire.ShardState) (*shard, error) {
	m, err := st.Metric.Metric()
	if err != nil {
		return nil, err
	}
	return &shard{
		id:       st.ID,
		dim:      st.Dim,
		ker:      metric.NewKernel(m),
		repIDs:   st.RepIDs,
		offsets:  st.Offsets,
		ids:      st.IDs,
		isRep:    st.IsRep,
		gather:   st.Gather,
		segDists: st.SegDists,
	}, nil
}

// stateOf snapshots a shard into its wire form (the MsgLoad payload),
// stamped with the epoch the receiving replica must serve scans for.
func stateOf(sh *shard, spec wire.MetricSpec, epoch uint32) *wire.ShardState {
	return &wire.ShardState{
		ID:       sh.id,
		Dim:      sh.dim,
		Epoch:    epoch,
		Metric:   spec,
		RepIDs:   sh.repIDs,
		Offsets:  sh.offsets,
		IDs:      sh.ids,
		IsRep:    sh.isRep,
		Gather:   sh.gather,
		SegDists: sh.segDists,
	}
}
