package distributed

import (
	"fmt"
	"net"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/vec"
)

func exampleDB() *vec.Dataset {
	db := vec.New(2, 0)
	for i := 0; i < 400; i++ {
		db.Append([]float32{float32(i % 20), float32(i / 20)})
	}
	return db
}

// ExampleCluster_Distribute pushes a cluster's shard states to TCP
// shard servers (in-process here, standalone rbc-shard processes in
// production) and answers a block over the wire. Answers are exact, so
// the output does not depend on the representative seed or on which
// transport served it.
func ExampleCluster_Distribute() {
	cl, err := Build(exampleDB(), metric.Euclidean{},
		core.ExactParams{Seed: 7}, 2, DefaultCostModel())
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cl.Close()

	addrs := make([]string, cl.NumShards())
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Println(err)
			return
		}
		sv := NewShardServer()
		go sv.Serve(ln)
		defer sv.Close()
		addrs[i] = ln.Addr().String()
	}
	if err := cl.Distribute(addrs, TCPOptions{}); err != nil {
		fmt.Println(err)
		return
	}

	queries := vec.FromRows([][]float32{
		{2.2, 0},
		{17.6, 19},
	})
	nbrs, met, err := cl.KNNBatch(queries, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	for qi, ns := range nbrs {
		fmt.Printf("query %d:", qi)
		for _, nb := range ns {
			fmt.Printf(" (id=%d dist=%.1f)", nb.ID, nb.Dist)
		}
		fmt.Println()
	}
	fmt.Println("failed shards:", met.FailedShards)
	// Output:
	// query 0: (id=2 dist=0.2) (id=3 dist=0.8)
	// query 1: (id=398 dist=0.4) (id=397 dist=0.6)
	// failed shards: 0
}

// ExampleCluster_Rebalance moves every representative one shard to the
// right while the cluster keeps serving. Segments cross shards
// byte-for-byte, so the answers do not move a bit.
func ExampleCluster_Rebalance() {
	cl, err := Build(exampleDB(), metric.Euclidean{},
		core.ExactParams{Seed: 7}, 2, DefaultCostModel())
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cl.Close()

	queries := vec.FromRows([][]float32{{2.2, 0}, {17.6, 19}})
	before, _, err := cl.KNNBatch(queries, 3)
	if err != nil {
		fmt.Println(err)
		return
	}

	assign := cl.RepAssignment()
	for rep := range assign {
		assign[rep] = (assign[rep] + 1) % cl.NumShards()
	}
	if err := cl.Rebalance(assign); err != nil {
		fmt.Println(err)
		return
	}

	after, _, err := cl.KNNBatch(queries, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	diverged := 0
	for qi := range before {
		for p := range before[qi] {
			if after[qi][p] != before[qi][p] {
				diverged++
			}
		}
	}
	points := 0
	for _, l := range cl.ShardLoads() {
		points += l
	}
	fmt.Println("positions diverged after rebalance:", diverged)
	fmt.Println("points still served:", points)
	// Output:
	// positions diverged after rebalance: 0
	// points still served: 400
}
