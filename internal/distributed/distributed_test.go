package distributed

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/vec"
)

func clustered(rng *rand.Rand, n, dim, k int) *vec.Dataset {
	centers := make([][]float32, k)
	for i := range centers {
		centers[i] = make([]float32, dim)
		for j := range centers[i] {
			centers[i][j] = rng.Float32()*20 - 10
		}
	}
	d := vec.New(dim, n)
	row := make([]float32, dim)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(k)]
		for j := range row {
			row[j] = c[j] + float32(rng.NormFloat64())*0.3
		}
		d.Append(row)
	}
	return d
}

func TestBuildValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := clustered(rng, 200, 4, 4)
	if _, err := Build(db, metric.Euclidean{}, core.ExactParams{}, 0, DefaultCostModel()); err == nil {
		t.Fatal("0 shards should error")
	}
	var empty vec.Dataset
	if _, err := Build(&empty, metric.Euclidean{}, core.ExactParams{}, 2, DefaultCostModel()); err == nil {
		t.Fatal("empty db should error")
	}
	// The cluster is exact-only: the (1+ε)-approximate mode would break
	// the bit-identity contract with the single-node index.
	if _, err := Build(db, metric.Euclidean{}, core.ExactParams{ApproxEps: 0.5}, 2, DefaultCostModel()); err == nil {
		t.Fatal("ApproxEps > 0 should error")
	}
}

func TestRoutedQueryIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := clustered(rng, 1500, 5, 10)
	m := metric.Euclidean{}
	cl, err := Build(db, m, core.ExactParams{Seed: 3}, 4, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for trial := 0; trial < 50; trial++ {
		q := make([]float32, 5)
		for j := range q {
			q[j] = rng.Float32()*20 - 10
		}
		got, _, _ := cl.Query(q)
		want := bruteforce.SearchOne(q, db, m, nil)
		if got.Dist != want.Dist {
			t.Fatalf("trial %d: got %v want %v", trial, got.Dist, want.Dist)
		}
	}
}

func TestBroadcastQueryIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := clustered(rng, 800, 4, 6)
	m := metric.Euclidean{}
	cl, err := Build(db, m, core.ExactParams{Seed: 5}, 3, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for trial := 0; trial < 30; trial++ {
		q := make([]float32, 4)
		for j := range q {
			q[j] = rng.Float32()*20 - 10
		}
		got, met, _ := cl.QueryBroadcast(q)
		want := bruteforce.SearchOne(q, db, m, nil)
		if got.Dist != want.Dist {
			t.Fatalf("trial %d: got %v want %v", trial, got.Dist, want.Dist)
		}
		if met.ShardsContacted != 3 {
			t.Fatalf("broadcast must contact all shards, got %d", met.ShardsContacted)
		}
	}
}

func TestRoutingContactsFewerShards(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := clustered(rng, 3000, 6, 12)
	m := metric.Euclidean{}
	const shards = 8
	cl, err := Build(db, m, core.ExactParams{Seed: 7}, shards, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var routed, broadcast QueryMetrics
	const queries = 40
	for trial := 0; trial < queries; trial++ {
		q := db.Row(rng.Intn(db.N()))
		_, mr, _ := cl.Query(q)
		routed.Add(mr)
		_, mb, _ := cl.QueryBroadcast(q)
		broadcast.Add(mb)
	}
	if routed.ShardsContacted >= broadcast.ShardsContacted {
		t.Fatalf("routing contacted %d shards vs broadcast %d — no savings",
			routed.ShardsContacted, broadcast.ShardsContacted)
	}
	if routed.Evals >= broadcast.Evals {
		t.Fatalf("routing evals %d >= broadcast %d", routed.Evals, broadcast.Evals)
	}
	if routed.Bytes >= broadcast.Bytes {
		t.Fatalf("routing bytes %d >= broadcast %d", routed.Bytes, broadcast.Bytes)
	}
}

func TestShardLoadsBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := clustered(rng, 2000, 4, 16)
	cl, err := Build(db, metric.Euclidean{}, core.ExactParams{Seed: 9}, 4, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	loads := cl.ShardLoads()
	if len(loads) != 4 {
		t.Fatalf("loads: %v", loads)
	}
	total, max, min := 0, 0, 1<<62
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
		if l < min {
			min = l
		}
	}
	if total != db.N() {
		t.Fatalf("shards hold %d points, want %d", total, db.N())
	}
	// LPT assignment should keep the imbalance modest.
	if max > 3*min+50 {
		t.Fatalf("severe imbalance: %v", loads)
	}
}

func TestQueryMetricsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := clustered(rng, 600, 4, 5)
	cl, err := Build(db, metric.Euclidean{}, core.ExactParams{Seed: 11}, 2, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, met, _ := cl.Query(db.Row(0))
	if met.Evals == 0 || met.SimTimeUS <= 0 && met.ShardsContacted > 0 {
		t.Fatalf("metrics: %+v", met)
	}
	if met.Messages != 2*met.ShardsContacted {
		t.Fatalf("messages %d for %d shards", met.Messages, met.ShardsContacted)
	}
}

func TestCloseIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := clustered(rng, 300, 3, 3)
	cl, err := Build(db, metric.Euclidean{}, core.ExactParams{Seed: 13}, 2, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	cl.Close() // must not panic
}

func TestSingleShardDegeneratesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db := clustered(rng, 500, 4, 4)
	m := metric.Euclidean{}
	cl, err := Build(db, m, core.ExactParams{Seed: 15}, 1, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	q := db.Row(42)
	got, met, _ := cl.Query(q)
	if got.Dist != 0 {
		t.Fatalf("self-query: %+v", got)
	}
	if met.ShardsContacted > 1 {
		t.Fatalf("single shard contacted %d times", met.ShardsContacted)
	}
}

// A query block through QueryBatch must return exactly what per-query
// Query returns, while contacting each shard at most once.
func TestQueryBatchMatchesPerQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := clustered(rng, 2000, 5, 10)
	m := metric.Euclidean{}
	const shards = 6
	cl, err := Build(db, m, core.ExactParams{Seed: 23}, shards, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	queries := clustered(rand.New(rand.NewSource(29)), 64, 5, 10)
	batch, bm, _ := cl.QueryBatch(queries)
	var perQuery QueryMetrics
	for i := 0; i < queries.N(); i++ {
		one, om, _ := cl.Query(queries.Row(i))
		if batch[i] != one {
			t.Fatalf("query %d: batch %+v, per-query %+v", i, batch[i], one)
		}
		perQuery.Add(om)
	}
	if bm.ShardsContacted > shards {
		t.Fatalf("batch contacted %d shard requests for %d shards", bm.ShardsContacted, shards)
	}
	if bm.Messages >= perQuery.Messages {
		t.Fatalf("batch fan-out sent %d messages, per-query %d — no amortization", bm.Messages, perQuery.Messages)
	}
	if bm.Evals != perQuery.Evals {
		t.Fatalf("batch evals %d, per-query %d", bm.Evals, perQuery.Evals)
	}
}

// KNNBatch must be exact: every query's k results equal the single-machine
// brute-force reference (ids and distances, ties toward lower id).
func TestKNNBatchIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db := clustered(rng, 1500, 4, 8)
	m := metric.Euclidean{}
	cl, err := Build(db, m, core.ExactParams{Seed: 37}, 5, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	queries := clustered(rand.New(rand.NewSource(41)), 40, 4, 8)
	for _, k := range []int{1, 3, 7} {
		got, met, _ := cl.KNNBatch(queries, k)
		if met.ShardsContacted > cl.NumShards() {
			t.Fatalf("k=%d: %d shard requests", k, met.ShardsContacted)
		}
		for i := 0; i < queries.N(); i++ {
			want := bruteforce.SearchOneK(queries.Row(i), db, k, m, nil)
			if len(got[i]) != len(want) {
				t.Fatalf("k=%d query %d: %d results, want %d", k, i, len(got[i]), len(want))
			}
			for p := range want {
				if got[i][p].ID != want[p].ID || math.Abs(got[i][p].Dist-want[p].Dist) > 1e-12 {
					t.Fatalf("k=%d query %d pos %d: %+v want %+v", k, i, p, got[i][p], want[p])
				}
			}
		}
	}
}

// Duplicate points that are both representatives must not produce
// duplicate ids in k-NN results (the shard-side representative skip).
func TestKNNBatchNoDuplicateIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	db := clustered(rng, 600, 3, 4)
	// Plant exact duplicates.
	for i := 0; i < 20; i++ {
		copy(db.Row(i+100), db.Row(i))
	}
	cl, err := Build(db, metric.Euclidean{}, core.ExactParams{Seed: 47}, 3, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	queries := clustered(rand.New(rand.NewSource(53)), 30, 3, 4)
	got, _, _ := cl.KNNBatch(queries, 6)
	for i, nbs := range got {
		seen := map[int]bool{}
		for _, nb := range nbs {
			if seen[nb.ID] {
				t.Fatalf("query %d: duplicate id %d in %v", i, nb.ID, nbs)
			}
			seen[nb.ID] = true
		}
	}
}

// Property: routed distributed answers always equal single-machine brute
// force, over random shard counts and seeds.
func TestQuickDistributedExact(t *testing.T) {
	m := metric.Euclidean{}
	f := func(seed int64, shardsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		shards := int(shardsRaw)%6 + 1
		db := clustered(rng, 400, 3, 5)
		cl, err := Build(db, m, core.ExactParams{Seed: seed}, shards, DefaultCostModel())
		if err != nil {
			return false
		}
		defer cl.Close()
		for trial := 0; trial < 5; trial++ {
			q := make([]float32, 3)
			for j := range q {
				q[j] = rng.Float32()*20 - 10
			}
			got, _, _ := cl.Query(q)
			if got.Dist != bruteforce.SearchOne(q, db, m, nil).Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
