package distributed

import (
	"errors"
	"math"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metric"
)

// startShardServers spins up n in-process ShardServers on ephemeral
// ports and returns their addresses. They are torn down at test end.
func startShardServers(t *testing.T, n int) ([]string, []*ShardServer) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*ShardServer, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewShardServer()
		go srv.Serve(ln)
		t.Cleanup(srv.Close)
		addrs[i] = ln.Addr().String()
		servers[i] = srv
	}
	return addrs, servers
}

// oneEach wraps a flat address list into single-replica sets — the
// shape newTCPTransport takes since replication landed.
func oneEach(addrs []string) [][]string {
	out := make([][]string, len(addrs))
	for i, a := range addrs {
		out[i] = []string{a}
	}
	return out
}

// fastOpts keeps fault-path tests snappy: short deadlines, two attempts,
// minimal backoff.
func fastOpts() TCPOptions {
	return TCPOptions{
		DialTimeout:    500 * time.Millisecond,
		RequestTimeout: time.Second,
		MaxAttempts:    2,
		RetryBackoff:   5 * time.Millisecond,
	}
}

// TestDistributeBitIdentical is the tentpole contract: the same cluster
// answering over TCP shard processes must return bit-identical results
// to its loopback twin and to the single-node exact index — windowed
// and full-scan alike.
func TestDistributeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	db := clustered(rng, 1200, 6, 8)
	queries := clustered(rng, 64, 6, 8)
	const k, shards = 7, 3
	for _, earlyExit := range []bool{false, true} {
		prm := core.ExactParams{Seed: 71, EarlyExit: earlyExit}
		loop, err := Build(db, metric.Euclidean{}, prm, shards, DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		defer loop.Close()
		netCl, err := Build(db, metric.Euclidean{}, prm, shards, DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		defer netCl.Close()
		idx, err := core.BuildExact(db, metric.Euclidean{}, prm)
		if err != nil {
			t.Fatal(err)
		}

		addrs, _ := startShardServers(t, shards)
		if err := netCl.Distribute(addrs, TCPOptions{}); err != nil {
			t.Fatalf("Distribute: %v", err)
		}

		want, wantMet, err := loop.KNNBatch(queries, k)
		if err != nil {
			t.Fatal(err)
		}
		got, gotMet, err := netCl.KNNBatch(queries, k)
		if err != nil {
			t.Fatalf("networked KNNBatch: %v", err)
		}
		wantExact, _ := idx.KNNBatch(queries, k)
		for i := range want {
			if len(got[i]) != len(want[i]) || len(got[i]) != len(wantExact[i]) {
				t.Fatalf("earlyExit=%v query %d: lengths %d/%d/%d", earlyExit, i, len(got[i]), len(want[i]), len(wantExact[i]))
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("earlyExit=%v query %d pos %d: tcp %+v vs loopback %+v", earlyExit, i, j, got[i][j], want[i][j])
				}
				if got[i][j].ID != wantExact[i][j].ID ||
					math.Float64bits(got[i][j].Dist) != math.Float64bits(wantExact[i][j].Dist) {
					t.Fatalf("earlyExit=%v query %d pos %d: tcp %+v vs exact %+v", earlyExit, i, j, got[i][j], wantExact[i][j])
				}
			}
		}
		// The protocol-cost accounting is transport-independent: same
		// fan-out, same windows, same eval counts.
		if gotMet.PointEvals != wantMet.PointEvals || gotMet.Windows != wantMet.Windows ||
			gotMet.ShardsContacted != wantMet.ShardsContacted || gotMet.Bytes != wantMet.Bytes {
			t.Fatalf("earlyExit=%v: metrics diverged: tcp %+v vs loopback %+v", earlyExit, gotMet, wantMet)
		}

		// Per-query and broadcast paths over the wire, against loopback.
		q := queries.Row(3)
		wq, _, err := loop.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		gq, _, err := netCl.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if gq != wq {
			t.Fatalf("earlyExit=%v Query: %+v vs %+v", earlyExit, gq, wq)
		}
		wb, _, err := loop.QueryBroadcast(q)
		if err != nil {
			t.Fatal(err)
		}
		gb, _, err := netCl.QueryBroadcast(q)
		if err != nil {
			t.Fatal(err)
		}
		if gb != wb {
			t.Fatalf("earlyExit=%v QueryBroadcast: %+v vs %+v", earlyExit, gb, wb)
		}

		if loop.NetStats() != nil {
			t.Fatal("loopback cluster reports net stats")
		}
		stats := netCl.NetStats()
		if len(stats) != shards {
			t.Fatalf("%d net stats entries", len(stats))
		}
		for sid, st := range stats {
			if st.Addr != addrs[sid] {
				t.Fatalf("shard %d stats addr %s, want %s", sid, st.Addr, addrs[sid])
			}
			if st.Requests == 0 || st.BytesSent == 0 || st.BytesRecv == 0 {
				t.Fatalf("shard %d stats empty: %+v", sid, st)
			}
			if st.Failures != 0 || st.Retries != 0 {
				t.Fatalf("shard %d saw failures on a healthy cluster: %+v", sid, st)
			}
		}
	}
}

func TestDistributeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	db := clustered(rng, 300, 4, 4)
	cl, err := Build(db, metric.Euclidean{}, core.ExactParams{Seed: 73}, 2, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Distribute([]string{"127.0.0.1:1"}, TCPOptions{}); err == nil {
		t.Fatal("addr-count mismatch accepted")
	}
	// A load failure must leave the cluster serving on loopback.
	bad := []string{"127.0.0.1:1", "127.0.0.1:1"} // reserved port: connect refused
	var serr *ShardError
	if err := cl.Distribute(bad, fastOpts()); !errors.As(err, &serr) {
		t.Fatalf("unreachable shards: err=%v, want *ShardError", err)
	}
	if _, _, err := cl.KNNBatch(db.Subset([]int{0, 1, 2}), 3); err != nil {
		t.Fatalf("cluster broken after failed Distribute: %v", err)
	}

	addrs, _ := startShardServers(t, 2)
	if err := cl.Distribute(addrs, TCPOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Distribute(addrs, TCPOptions{}); err == nil {
		t.Fatal("second Distribute accepted")
	}
	cl.Close()
	if err := cl.Distribute(addrs, TCPOptions{}); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("Distribute after Close: %v", err)
	}
}

// TestShardServerRejectsScanBeforeLoad locks in the remote-decision
// path: a MsgErr is not retried and surfaces as a *ShardError wrapping
// wire-level remote detail.
func TestShardServerRejectsScanBeforeLoad(t *testing.T) {
	addrs, _ := startShardServers(t, 1)
	tr := newTCPTransport(4, oneEach(addrs), fastOpts())
	defer tr.close()
	_, err := tr.scan(0, &shardRequest{qs: make([]float32, 4), segs: [][]int{{0}}, k: 1})
	var serr *ShardError
	if !errors.As(err, &serr) {
		t.Fatalf("err=%v, want *ShardError", err)
	}
	if tr.sets[0].replicas[0].stats.Retries != 0 {
		t.Fatal("remote error was retried")
	}
}

func TestTCPPingAndPool(t *testing.T) {
	addrs, _ := startShardServers(t, 1)
	tr := newTCPTransport(4, oneEach(addrs), TCPOptions{})
	defer tr.close()
	for i := 0; i < 3; i++ {
		if err := tr.ping(0); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.netStats()[0]
	if st.Requests != 3 || st.Failures != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.RTT <= 0 {
		t.Fatalf("no RTT recorded: %+v", st)
	}
	// The pool should be reusing one warm connection, not piling up new
	// ones: after serial pings, exactly one idle conn is pooled.
	if n := len(tr.sets[0].replicas[0].pool); n != 1 {
		t.Fatalf("%d pooled conns after serial pings, want 1", n)
	}
}
