package distributed

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// Stress test for concurrent batch callers over shared shards, designed
// for the -race CI job: many goroutines interleave KNNBatch, QueryBatch
// and per-query calls against one cluster, and every result must stay
// bit-identical to a single-threaded reference — concurrency must not
// leak scratch state between requests. Runs against both the full-scan
// and the windowed (EarlyExit) cluster, whose per-request window buffers
// ride the same pooled scratch.
func TestConcurrentBatchCallers(t *testing.T) {
	t.Run("full-scan", func(t *testing.T) { runConcurrentBatchCallers(t, false) })
	t.Run("windowed", func(t *testing.T) { runConcurrentBatchCallers(t, true) })
}

func runConcurrentBatchCallers(t *testing.T, earlyExit bool) {
	rng := rand.New(rand.NewSource(211))
	db := clustered(rng, 1500, 6, 8)
	cl, err := Build(db, metric.Euclidean{}, core.ExactParams{Seed: 223, EarlyExit: earlyExit}, 5, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	type testCase struct {
		queries *vec.Dataset
		k       int
		knn     [][]par.Neighbor // single-threaded reference
		best    []core.Result
	}
	cases := make([]testCase, 4)
	for b := range cases {
		cases[b].queries = clustered(rand.New(rand.NewSource(int64(300+b))), 24, 6, 8)
		cases[b].k = 1 + b*2
		cases[b].knn, _, _ = cl.KNNBatch(cases[b].queries, cases[b].k)
		cases[b].best, _, _ = cl.QueryBatch(cases[b].queries)
	}

	const workers = 8
	const rounds = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				cse := cases[(w+r)%len(cases)]
				switch (w + r) % 3 {
				case 0:
					got, _, _ := cl.KNNBatch(cse.queries, cse.k)
					for i := range cse.knn {
						for p := range cse.knn[i] {
							if got[i][p] != cse.knn[i][p] {
								t.Errorf("worker %d round %d: KNNBatch diverged at query %d pos %d", w, r, i, p)
								return
							}
						}
					}
				case 1:
					got, _, _ := cl.QueryBatch(cse.queries)
					for i := range cse.best {
						if got[i] != cse.best[i] {
							t.Errorf("worker %d round %d: QueryBatch diverged at query %d", w, r, i)
							return
						}
					}
				default:
					i := (w * r) % cse.queries.N()
					got, _, _ := cl.KNN(cse.queries.Row(i), cse.k)
					for p := range cse.knn[i] {
						if got[p] != cse.knn[i][p] {
							t.Errorf("worker %d round %d: KNN diverged at query %d pos %d", w, r, i, p)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
