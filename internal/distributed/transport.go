package distributed

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/distributed/wire"
)

// ErrClusterClosed is returned by every query entry point after Close.
var ErrClusterClosed = errors.New("distributed: cluster is closed")

// DegradePolicy decides what a networked cluster does when a shard stays
// unreachable after the retry budget.
type DegradePolicy int

const (
	// DegradeFailFast (the default) fails the whole batch with a typed
	// *ShardError as soon as any contacted shard cannot answer.
	DegradeFailFast DegradePolicy = iota
	// DegradePartial merges the answers of the shards that did reply and
	// accounts the missing ones in QueryMetrics.FailedShards. Results may
	// silently miss neighbors held by the dead shard (every representative
	// is still seeded coordinator-side, so queries keep their rep-derived
	// candidates); callers opt in to that trade.
	DegradePartial
)

// ShardError reports a shard that could not serve a request after the
// transport's retry budget. It wraps the final attempt's error.
type ShardError struct {
	Shard int
	Addr  string
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("distributed: shard %d (%s): %v", e.Shard, e.Addr, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// ShardNetStats accumulates one shard connection's transport counters
// (TCP transport only; the loopback transport reports none).
type ShardNetStats struct {
	Addr      string
	Requests  int64         // exchanges attempted (first attempts, not retries)
	Retries   int64         // extra attempts after a transient failure
	Failures  int64         // exchanges abandoned after the retry budget
	BytesSent int64         // frame bytes written on successful exchanges
	BytesRecv int64         // frame bytes read on successful exchanges
	RTT       time.Duration // summed request→reply time of successful exchanges
}

// transport carries one batched scan to one shard and returns its reply.
// Implementations: loopback (the in-process channel shards Build starts —
// the default, and the correctness oracle for the wire path) and
// tcpTransport (real sockets to rbc-shard processes).
type transport interface {
	scan(sid int, req *shardRequest) (shardReply, error)
	degrade() DegradePolicy
	netStats() []ShardNetStats
	close()
}

// loopback sends requests over the in-process shard channels exactly as
// the pre-transport cluster did: one shardRequest per shard per block,
// answered by the shard's serve goroutine.
type loopback struct {
	shards []*shard
}

func (l *loopback) scan(sid int, req *shardRequest) (shardReply, error) {
	r := *req
	r.reply = make(chan shardReply, 1)
	l.shards[sid].reqs <- r
	return <-r.reply, nil
}

func (l *loopback) degrade() DegradePolicy { return DegradeFailFast }

func (l *loopback) netStats() []ShardNetStats { return nil }

func (l *loopback) close() {
	for _, s := range l.shards {
		close(s.reqs)
	}
}

// TCPOptions configures the networked transport installed by
// Cluster.Distribute. The zero value means "all defaults".
type TCPOptions struct {
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// RequestTimeout bounds each request/reply exchange, connection
	// deadline included (default 30s). A shard that accepts but never
	// replies surfaces as a timeout error after this long, per attempt.
	RequestTimeout time.Duration
	// MaxAttempts is the total attempts per request, first try included
	// (default 3). Only transient failures — connect errors, IO errors,
	// torn or corrupt frames — are retried; a shard that answers with a
	// MsgErr made a decision, which retrying cannot change.
	MaxAttempts int
	// RetryBackoff is the sleep before the first retry, doubled each
	// further attempt (default 50ms).
	RetryBackoff time.Duration
	// PoolSize is the number of idle connections kept per shard
	// (default 2). Fan-out opens extra connections freely; the pool only
	// bounds what is kept warm.
	PoolSize int
	// MaxFrameBytes bounds accepted reply frames (default
	// wire.MaxFrameBytes).
	MaxFrameBytes int
	// Degrade picks the policy for shards that stay unreachable after
	// the retry budget (default DegradeFailFast).
	Degrade DegradePolicy
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 2
	}
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = wire.MaxFrameBytes
	}
	return o
}

// tcpTransport talks the wire protocol to one rbc-shard process per
// shard, with per-shard connection pooling, per-attempt deadlines and
// bounded retry with exponential backoff.
type tcpTransport struct {
	dim    int
	opts   TCPOptions
	shards []*tcpShard
}

type tcpShard struct {
	sid  int
	addr string
	pool chan net.Conn

	mu    sync.Mutex
	stats ShardNetStats
}

func newTCPTransport(dim int, addrs []string, opts TCPOptions) *tcpTransport {
	t := &tcpTransport{dim: dim, opts: opts.withDefaults()}
	for sid, addr := range addrs {
		t.shards = append(t.shards, &tcpShard{
			sid:  sid,
			addr: addr,
			pool: make(chan net.Conn, t.opts.PoolSize),
		})
	}
	return t
}

func (t *tcpTransport) scan(sid int, req *shardRequest) (shardReply, error) {
	frame := wire.EncodeScanRequest(&wire.ScanRequest{
		Dim:         t.dim,
		K:           req.k,
		IncludeReps: req.includeReps,
		Qs:          req.qs,
		Segs:        req.segs,
		Bounds:      req.bounds,
		Wins:        req.wins,
	})
	mt, body, err := t.request(sid, frame)
	if err != nil {
		return shardReply{}, err
	}
	if mt != wire.MsgScanReply {
		return shardReply{}, &ShardError{Shard: sid, Addr: t.shards[sid].addr,
			Err: fmt.Errorf("unexpected reply message type %d", mt)}
	}
	rep, err := wire.DecodeScanReply(body)
	if err != nil {
		return shardReply{}, &ShardError{Shard: sid, Addr: t.shards[sid].addr, Err: err}
	}
	// The shard echoes the id it was loaded with; trusting the local sid
	// for result routing keeps a mislabeled reply from corrupting merges.
	if rep.Shard != sid {
		return shardReply{}, &ShardError{Shard: sid, Addr: t.shards[sid].addr,
			Err: fmt.Errorf("reply from shard %d, want %d", rep.Shard, sid)}
	}
	return shardReply{sid: sid, knn: rep.KNN, evals: rep.Evals, emptyWins: rep.EmptyWins}, nil
}

// load pushes one shard's state and waits for the ack.
func (t *tcpTransport) load(sid int, frame []byte) error {
	mt, _, err := t.request(sid, frame)
	if err != nil {
		return err
	}
	if mt != wire.MsgLoadOK {
		return &ShardError{Shard: sid, Addr: t.shards[sid].addr,
			Err: fmt.Errorf("unexpected load reply message type %d", mt)}
	}
	return nil
}

// ping round-trips a liveness probe.
func (t *tcpTransport) ping(sid int) error {
	mt, _, err := t.request(sid, wire.EncodeEmpty(wire.MsgPing))
	if err != nil {
		return err
	}
	if mt != wire.MsgPong {
		return &ShardError{Shard: sid, Addr: t.shards[sid].addr,
			Err: fmt.Errorf("unexpected ping reply message type %d", mt)}
	}
	return nil
}

// request runs one framed exchange with the retry policy: transient
// failures (connect errors, IO errors, torn/corrupt frames) are retried
// up to MaxAttempts with doubling backoff; a decoded MsgErr is a remote
// decision and fails immediately. Every failure path returns a typed
// *ShardError naming the shard and address.
func (t *tcpTransport) request(sid int, frame []byte) (byte, []byte, error) {
	s := t.shards[sid]
	s.mu.Lock()
	s.stats.Requests++
	s.mu.Unlock()
	var lastErr error
	backoff := t.opts.RetryBackoff
	for attempt := 0; attempt < t.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			s.mu.Lock()
			s.stats.Retries++
			s.mu.Unlock()
			time.Sleep(backoff)
			backoff *= 2
		}
		mt, body, err := s.exchange(frame, t.opts)
		if err == nil {
			if mt == wire.MsgErr {
				rerr := wire.DecodeErr(body)
				s.mu.Lock()
				s.stats.Failures++
				s.mu.Unlock()
				return 0, nil, &ShardError{Shard: sid, Addr: s.addr, Err: rerr}
			}
			return mt, body, nil
		}
		lastErr = err
	}
	s.mu.Lock()
	s.stats.Failures++
	s.mu.Unlock()
	return 0, nil, &ShardError{Shard: sid, Addr: s.addr, Err: lastErr}
}

// exchange performs one request/reply round trip on a pooled or fresh
// connection under the per-attempt deadline. Any error poisons the
// connection (it is closed, not returned to the pool): the protocol is
// strict request/reply, so a torn exchange leaves the stream
// unsynchronized.
func (s *tcpShard) exchange(frame []byte, opts TCPOptions) (byte, []byte, error) {
	conn, err := s.get(opts)
	if err != nil {
		return 0, nil, err
	}
	start := time.Now()
	if err := conn.SetDeadline(start.Add(opts.RequestTimeout)); err != nil {
		conn.Close()
		return 0, nil, err
	}
	if err := wire.WriteFrame(conn, frame); err != nil {
		conn.Close()
		return 0, nil, err
	}
	mt, body, err := wire.ReadFrame(conn, opts.MaxFrameBytes)
	if err != nil {
		conn.Close()
		return 0, nil, err
	}
	s.put(conn)
	s.mu.Lock()
	s.stats.BytesSent += int64(len(frame))
	s.stats.BytesRecv += int64(8 + 2 + len(body)) // header + version/type + body
	s.stats.RTT += time.Since(start)
	s.mu.Unlock()
	return mt, body, nil
}

func (s *tcpShard) get(opts TCPOptions) (net.Conn, error) {
	select {
	case conn := <-s.pool:
		return conn, nil
	default:
	}
	return net.DialTimeout("tcp", s.addr, opts.DialTimeout)
}

func (s *tcpShard) put(conn net.Conn) {
	conn.SetDeadline(time.Time{})
	select {
	case s.pool <- conn:
	default:
		conn.Close()
	}
}

func (t *tcpTransport) degrade() DegradePolicy { return t.opts.Degrade }

func (t *tcpTransport) netStats() []ShardNetStats {
	out := make([]ShardNetStats, len(t.shards))
	for i, s := range t.shards {
		s.mu.Lock()
		out[i] = s.stats
		out[i].Addr = s.addr
		s.mu.Unlock()
	}
	return out
}

func (t *tcpTransport) close() {
	for _, s := range t.shards {
		for {
			select {
			case conn := <-s.pool:
				conn.Close()
				continue
			default:
			}
			break
		}
	}
}
