package distributed

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/distributed/wire"
)

// ErrClusterClosed is returned by every query entry point after Close.
var ErrClusterClosed = errors.New("distributed: cluster is closed")

// DegradePolicy decides what a networked cluster does when a shard's
// whole replica set stays unreachable after the retry budget.
type DegradePolicy int

const (
	// DegradeFailFast (the default) fails the whole batch with a typed
	// *ShardError as soon as any contacted shard cannot answer.
	DegradeFailFast DegradePolicy = iota
	// DegradePartial merges the answers of the shards that did reply and
	// accounts the missing ones in QueryMetrics.FailedShards. Results may
	// silently miss neighbors held by the dead shard (every representative
	// is still seeded coordinator-side, so queries keep their rep-derived
	// candidates); callers opt in to that trade.
	DegradePartial
)

// ShardError reports a shard that could not serve a request after the
// transport's retry budget — for a replicated shard, after every
// replica in its set was tried. It wraps the final decisive error; Addr
// names the replica (or the comma-joined exhausted replica set).
type ShardError struct {
	Shard int
	Addr  string
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("distributed: shard %d (%s): %v", e.Shard, e.Addr, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// ShardNetStats accumulates one replica connection's transport counters
// (TCP transport only; the loopback transport reports none). With
// replication, Cluster.NetStats returns one entry per replica, in shard
// order with each shard's replicas in set order.
type ShardNetStats struct {
	Shard     int           // shard id this replica serves
	Addr      string        // replica address
	Requests  int64         // exchanges attempted (first attempts, not retries)
	Retries   int64         // extra attempts after a transient failure
	Failures  int64         // exchanges abandoned after the retry budget
	Hedged    int64         // attempts fired at this replica by the hedge timer
	HedgeWins int64         // hedged attempts at this replica that won the race
	Cancelled int64         // in-flight attempts cancelled because another replica won
	BytesSent int64         // frame bytes written on successful exchanges
	BytesRecv int64         // frame bytes read on successful exchanges
	RTT       time.Duration // summed request→reply time of successful exchanges
}

// transport carries one batched scan to one shard and returns its reply.
// Implementations: loopback (the in-process channel shards Build starts —
// the default, and the correctness oracle for the wire path) and
// tcpTransport (real sockets to rbc-shard replica processes).
type transport interface {
	scan(sid int, req *shardRequest) (shardReply, error)
	degrade() DegradePolicy
	netStats() []ShardNetStats
	close()
}

// loopback sends requests over the in-process shard channels exactly as
// the pre-transport cluster did: one shardRequest per shard per block,
// answered by the shard's serve goroutine.
type loopback struct {
	shards []*shard
}

func (l *loopback) scan(sid int, req *shardRequest) (shardReply, error) {
	r := *req
	r.reply = make(chan shardReply, 1)
	l.shards[sid].reqs <- r
	return <-r.reply, nil
}

func (l *loopback) degrade() DegradePolicy { return DegradeFailFast }

func (l *loopback) netStats() []ShardNetStats { return nil }

func (l *loopback) close() {
	for _, s := range l.shards {
		close(s.reqs)
	}
}

// HedgeOptions configures hedged requests on a replicated networked
// cluster: after the hedge delay passes without an answer, the same
// scan is fired at the shard's next replica and the first reply wins
// (losers are cancelled). Replies are bit-identical across replicas by
// construction, so hedging never changes an answer — only who serves
// it, and how long the tail waits. The zero value disables hedging;
// hard failover (a replica conclusively failing) always walks the whole
// replica set regardless of these settings.
type HedgeOptions struct {
	// MaxHedges is the number of extra replicas one scan may contact
	// before the first answer arrives (0 disables hedging). Clamped to
	// the replica set size minus one.
	MaxHedges int
	// Delay is a fixed wait before each hedge fires. Zero selects the
	// adaptive delay: the Quantile of each replica's observed exchange
	// RTTs is tracked over a sliding window, and the hedge fires after
	// the FASTEST replica's quantile (floored by MinDelay) — so a
	// persistently slow primary cannot teach the cluster to wait for
	// it, while a healthy set hedges only past its own tail.
	Delay time.Duration
	// Quantile is the RTT quantile the adaptive delay tracks
	// (default 0.95). Ignored when Delay > 0.
	Quantile float64
	// MinDelay floors the adaptive delay (default 500µs), so a burst of
	// fast RTTs cannot make the cluster hedge every single request.
	// Before any replica has enough RTT samples the adaptive delay IS
	// MinDelay — the cold start hedges eagerly and learns fast. Ignored
	// when Delay > 0.
	MinDelay time.Duration
}

// TCPOptions configures the networked transport installed by
// Cluster.Distribute. The zero value means "all defaults".
type TCPOptions struct {
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// RequestTimeout bounds each request/reply exchange, connection
	// deadline included (default 30s). A shard that accepts but never
	// replies surfaces as a timeout error after this long, per attempt.
	RequestTimeout time.Duration
	// MaxAttempts is the total attempts per replica per request, first
	// try included (default 3). Only transient failures — connect
	// errors, IO errors, torn or corrupt frames — are retried; a shard
	// that answers with a MsgErr made a decision, which retrying cannot
	// change (the scan fails over to the next replica instead).
	MaxAttempts int
	// RetryBackoff is the sleep before the first retry, doubled each
	// further attempt (default 50ms).
	RetryBackoff time.Duration
	// PoolSize is the number of idle connections kept per replica
	// (default 2). Fan-out opens extra connections freely; the pool only
	// bounds what is kept warm.
	PoolSize int
	// MaxFrameBytes bounds accepted reply frames (default
	// wire.MaxFrameBytes).
	MaxFrameBytes int
	// Degrade picks the policy for shards whose whole replica set stays
	// unreachable after the retry budget (default DegradeFailFast).
	Degrade DegradePolicy
	// Hedge configures hedged requests across each shard's replica set
	// (default: hedging off; failover still walks the set).
	Hedge HedgeOptions
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 2
	}
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = wire.MaxFrameBytes
	}
	if o.Hedge.Quantile <= 0 || o.Hedge.Quantile >= 1 {
		o.Hedge.Quantile = 0.95
	}
	if o.Hedge.MinDelay <= 0 {
		o.Hedge.MinDelay = 500 * time.Microsecond
	}
	return o
}

// tcpTransport talks the wire protocol to the rbc-shard processes
// behind each shard's ordered replica set, with per-replica connection
// pooling, per-attempt deadlines, bounded retry with exponential
// backoff, hedged requests across the set, and hard failover that walks
// the whole set.
//
// The sets slice and each set's replicas slice are mutated only under
// the cluster's lifecycle write lock (Distribute, AddShardReplica,
// RemoveShardReplica, Rebalance) while every scan holds the read side,
// so scans never observe a torn replica set.
type tcpTransport struct {
	dim  int
	opts TCPOptions
	clk  clock
	sets []*replicaSet
}

// replicaSet is one shard's ordered replicas. Order matters: replica 0
// is always attempted first, later entries serve hedges and failover.
type replicaSet struct {
	sid      int
	replicas []*tcpShard
}

type tcpShard struct {
	sid  int
	addr string
	pool chan net.Conn
	rtt  *rttQuantile

	mu    sync.Mutex
	stats ShardNetStats
}

func newTCPTransport(dim int, assignment [][]string, opts TCPOptions) *tcpTransport {
	t := &tcpTransport{dim: dim, opts: opts.withDefaults(), clk: realClock{}}
	for sid, addrs := range assignment {
		rs := &replicaSet{sid: sid}
		for _, addr := range addrs {
			rs.replicas = append(rs.replicas, t.newReplica(sid, addr))
		}
		t.sets = append(t.sets, rs)
	}
	return t
}

func (t *tcpTransport) newReplica(sid int, addr string) *tcpShard {
	return &tcpShard{
		sid:  sid,
		addr: addr,
		pool: make(chan net.Conn, t.opts.PoolSize),
		rtt:  newRTTQuantile(t.opts.Hedge.Quantile),
	}
}

// hedgeDelay resolves the current hedge trigger for one replica set:
// the fixed HedgeOptions.Delay, or the fastest replica's tracked RTT
// quantile floored by MinDelay (MinDelay alone while cold — see
// HedgeOptions).
func (t *tcpTransport) hedgeDelay(rs *replicaSet) time.Duration {
	if t.opts.Hedge.Delay > 0 {
		return t.opts.Hedge.Delay
	}
	best := time.Duration(-1)
	for _, r := range rs.replicas {
		if est, ok := r.rtt.estimate(); ok && (best < 0 || est < best) {
			best = est
		}
	}
	if best < t.opts.Hedge.MinDelay {
		best = t.opts.Hedge.MinDelay
	}
	return best
}

func (t *tcpTransport) scan(sid int, req *shardRequest) (shardReply, error) {
	rs := t.sets[sid]
	frame := wire.EncodeScanRequest(&wire.ScanRequest{
		Dim:         t.dim,
		K:           req.k,
		Epoch:       req.epoch,
		IncludeReps: req.includeReps,
		Qs:          req.qs,
		Segs:        req.segs,
		Bounds:      req.bounds,
		Wins:        req.wins,
	})
	reps := rs.replicas
	rp, out, err := hedgedScan(len(reps), t.opts.Hedge.MaxHedges,
		func() time.Duration { return t.hedgeDelay(rs) }, t.clk,
		func(i int, cx *canceller) (shardReply, error) {
			return t.scanReplica(reps[i], frame, cx)
		})
	for _, i := range out.hedged {
		reps[i].bump(func(s *ShardNetStats) { s.Hedged++ })
		if i == out.winner {
			reps[i].bump(func(s *ShardNetStats) { s.HedgeWins++ })
		}
	}
	for _, i := range out.cancelled {
		reps[i].bump(func(s *ShardNetStats) { s.Cancelled++ })
	}
	if err != nil {
		return shardReply{}, &ShardError{Shard: sid, Addr: rs.addrList(),
			Err: fmt.Errorf("all %d replicas exhausted: %w", len(reps), err)}
	}
	return rp, nil
}

// scanReplica runs the framed scan exchange against one replica (with
// that replica's full retry budget) and decodes the reply.
func (t *tcpTransport) scanReplica(s *tcpShard, frame []byte, cx *canceller) (shardReply, error) {
	mt, body, err := t.requestOn(s, frame, cx)
	if err != nil {
		return shardReply{}, err
	}
	if mt != wire.MsgScanReply {
		return shardReply{}, &ShardError{Shard: s.sid, Addr: s.addr,
			Err: fmt.Errorf("unexpected reply message type %d", mt)}
	}
	rep, err := wire.DecodeScanReply(body)
	if err != nil {
		return shardReply{}, &ShardError{Shard: s.sid, Addr: s.addr, Err: err}
	}
	// The shard echoes the id it was loaded with; trusting the local sid
	// for result routing keeps a mislabeled reply from corrupting merges.
	if rep.Shard != s.sid {
		return shardReply{}, &ShardError{Shard: s.sid, Addr: s.addr,
			Err: fmt.Errorf("reply from shard %d, want %d", rep.Shard, s.sid)}
	}
	return shardReply{sid: s.sid, knn: rep.KNN, evals: rep.Evals, emptyWins: rep.EmptyWins}, nil
}

func (rs *replicaSet) addrList() string {
	addrs := make([]string, len(rs.replicas))
	for i, r := range rs.replicas {
		addrs[i] = r.addr
	}
	return strings.Join(addrs, ",")
}

// load pushes one shard-state frame to every replica in sid's set and
// waits for each ack; the first failure aborts and names the replica.
func (t *tcpTransport) load(sid int, frame []byte) error {
	for _, s := range t.sets[sid].replicas {
		if err := t.loadReplica(s, frame); err != nil {
			return err
		}
	}
	return nil
}

// loadReplica pushes one shard-state frame to one replica.
func (t *tcpTransport) loadReplica(s *tcpShard, frame []byte) error {
	mt, _, err := t.requestOn(s, frame, nil)
	if err != nil {
		return err
	}
	if mt != wire.MsgLoadOK {
		return &ShardError{Shard: s.sid, Addr: s.addr,
			Err: fmt.Errorf("unexpected load reply message type %d", mt)}
	}
	return nil
}

// ping round-trips a liveness probe off shard sid's first replica.
func (t *tcpTransport) ping(sid int) error {
	s := t.sets[sid].replicas[0]
	mt, _, err := t.requestOn(s, wire.EncodeEmpty(wire.MsgPing), nil)
	if err != nil {
		return err
	}
	if mt != wire.MsgPong {
		return &ShardError{Shard: sid, Addr: s.addr,
			Err: fmt.Errorf("unexpected ping reply message type %d", mt)}
	}
	return nil
}

func (s *tcpShard) bump(f func(*ShardNetStats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// requestOn runs one framed exchange against one replica with the retry
// policy: transient failures (connect errors, IO errors, torn/corrupt
// frames) are retried up to MaxAttempts with doubling backoff; a
// decoded MsgErr is a remote decision and fails immediately (failover,
// not retry, is the caller's remedy). A cancellation from the hedging
// race aborts between and during attempts without charging a failure.
// Every failure path returns a typed *ShardError naming the replica.
func (t *tcpTransport) requestOn(s *tcpShard, frame []byte, cx *canceller) (byte, []byte, error) {
	s.bump(func(st *ShardNetStats) { st.Requests++ })
	var lastErr error
	backoff := t.opts.RetryBackoff
	for attempt := 0; attempt < t.opts.MaxAttempts; attempt++ {
		if cx != nil && cx.abandoned() {
			return 0, nil, errScanCancelled
		}
		if attempt > 0 {
			s.bump(func(st *ShardNetStats) { st.Retries++ })
			time.Sleep(backoff)
			backoff *= 2
		}
		mt, body, err := s.exchange(frame, t.opts, cx)
		if err == nil {
			if mt == wire.MsgErr {
				rerr := wire.DecodeErr(body)
				s.bump(func(st *ShardNetStats) { st.Failures++ })
				return 0, nil, &ShardError{Shard: s.sid, Addr: s.addr, Err: rerr}
			}
			return mt, body, nil
		}
		if cx != nil && cx.abandoned() {
			// The "failure" was our own connection close; don't count it.
			return 0, nil, errScanCancelled
		}
		lastErr = err
	}
	s.bump(func(st *ShardNetStats) { st.Failures++ })
	return 0, nil, &ShardError{Shard: s.sid, Addr: s.addr, Err: lastErr}
}

// exchange performs one request/reply round trip on a pooled or fresh
// connection under the per-attempt deadline. Any error poisons the
// connection (it is closed, not returned to the pool): the protocol is
// strict request/reply, so a torn exchange leaves the stream
// unsynchronized. The live connection is registered on cx so the
// hedging race can cancel this exchange mid-I/O, and released before
// the connection returns to the pool so a late cancel cannot poison a
// pooled connection.
func (s *tcpShard) exchange(frame []byte, opts TCPOptions, cx *canceller) (byte, []byte, error) {
	conn, err := s.get(opts)
	if err != nil {
		return 0, nil, err
	}
	if cx != nil && !cx.register(conn) {
		conn.Close()
		return 0, nil, errScanCancelled
	}
	start := time.Now()
	if err := conn.SetDeadline(start.Add(opts.RequestTimeout)); err != nil {
		conn.Close()
		return 0, nil, err
	}
	if err := wire.WriteFrame(conn, frame); err != nil {
		conn.Close()
		return 0, nil, err
	}
	mt, body, err := wire.ReadFrame(conn, opts.MaxFrameBytes)
	if err != nil {
		conn.Close()
		return 0, nil, err
	}
	if cx != nil {
		cx.release()
	}
	s.put(conn)
	rtt := time.Since(start)
	s.rtt.observe(rtt)
	s.mu.Lock()
	s.stats.BytesSent += int64(len(frame))
	s.stats.BytesRecv += int64(8 + 2 + len(body)) // header + version/type + body
	s.stats.RTT += rtt
	s.mu.Unlock()
	return mt, body, nil
}

func (s *tcpShard) get(opts TCPOptions) (net.Conn, error) {
	select {
	case conn := <-s.pool:
		return conn, nil
	default:
	}
	return net.DialTimeout("tcp", s.addr, opts.DialTimeout)
}

func (s *tcpShard) put(conn net.Conn) {
	conn.SetDeadline(time.Time{})
	select {
	case s.pool <- conn:
	default:
		conn.Close()
	}
}

// drain closes every pooled idle connection.
func (s *tcpShard) drain() {
	for {
		select {
		case conn := <-s.pool:
			conn.Close()
		default:
			return
		}
	}
}

func (t *tcpTransport) degrade() DegradePolicy { return t.opts.Degrade }

func (t *tcpTransport) netStats() []ShardNetStats {
	var out []ShardNetStats
	for _, rs := range t.sets {
		for _, s := range rs.replicas {
			s.mu.Lock()
			st := s.stats
			s.mu.Unlock()
			st.Shard = rs.sid
			st.Addr = s.addr
			out = append(out, st)
		}
	}
	return out
}

func (t *tcpTransport) close() {
	for _, rs := range t.sets {
		for _, s := range rs.replicas {
			s.drain()
		}
	}
}
