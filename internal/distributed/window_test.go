package distributed

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/vec"
)

// Tests for the shard-side EarlyExit windows (see the package comment):
// windowed clusters must be bit-identical to the full-scan cluster, to
// per-query calls and to the single-node core.Exact index; windowed
// PointEvals must never exceed the full-scan count (eval monotonicity);
// work accounting must stay in exact batch-vs-per-query parity; and the
// hot path must stay free of per-pair m.Distance calls.

// buildPair constructs a full-scan and a windowed cluster over the same
// database with otherwise identical parameters.
func buildPair(t *testing.T, db *vec.Dataset, prm core.ExactParams, shards int) (full, win *Cluster) {
	t.Helper()
	m := metric.Euclidean{}
	full, err := Build(db, m, prm, shards, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	prm.EarlyExit = true
	win, err = Build(db, m, prm, shards, DefaultCostModel())
	if err != nil {
		full.Close()
		t.Fatal(err)
	}
	return full, win
}

// tieRichDB builds a dataset on a coarse half-integer grid with ~20%
// duplicated rows, matching the equivalence harness's corpus shape, so
// boundary ties are the norm.
func tieRichDB(rng *rand.Rand, n, dim int) *vec.Dataset {
	d := vec.New(dim, n)
	row := make([]float32, dim)
	for i := 0; i < n; i++ {
		if i > 0 && rng.Intn(5) == 0 {
			d.Append(d.Row(rng.Intn(i)))
			continue
		}
		for j := range row {
			row[j] = float32(rng.Intn(17)-8) * 0.5
		}
		d.Append(row)
	}
	return d
}

// Windowed cluster answers must be bit-identical to the full-scan
// cluster AND to the single-node core.Exact index, both with and without
// EarlyExit — the acceptance bar for the windowed scans.
func TestWindowedBitIdenticalToFullScanAndExact(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	db := clustered(rng, 1800, 7, 9)
	m := metric.Euclidean{}
	prm := core.ExactParams{Seed: 409}
	exact, err := core.BuildExact(db, m, prm)
	if err != nil {
		t.Fatal(err)
	}
	exactEE, err := core.BuildExact(db, m, core.ExactParams{Seed: 409, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := clustered(rand.New(rand.NewSource(419)), 50, 7, 9)
	for _, shards := range []int{1, 5} {
		full, win := buildPair(t, db, prm, shards)
		for _, k := range []int{1, 4, 11} {
			gotFull, _, _ := full.KNNBatch(queries, k)
			gotWin, _, _ := win.KNNBatch(queries, k)
			wantExact, _ := exact.KNNBatch(queries, k)
			wantEE, _ := exactEE.KNNBatch(queries, k)
			for i := 0; i < queries.N(); i++ {
				for p := range wantExact[i] {
					if gotWin[i][p] != gotFull[i][p] {
						t.Fatalf("shards=%d k=%d query %d pos %d: windowed %+v, full-scan %+v",
							shards, k, i, p, gotWin[i][p], gotFull[i][p])
					}
					if gotWin[i][p] != wantExact[i][p] {
						t.Fatalf("shards=%d k=%d query %d pos %d: windowed %+v, core.Exact %+v",
							shards, k, i, p, gotWin[i][p], wantExact[i][p])
					}
					if gotWin[i][p] != wantEE[i][p] {
						t.Fatalf("shards=%d k=%d query %d pos %d: windowed %+v, core.Exact(EarlyExit) %+v",
							shards, k, i, p, gotWin[i][p], wantEE[i][p])
					}
				}
				if len(gotWin[i]) != len(wantExact[i]) {
					t.Fatalf("shards=%d k=%d query %d: %d results, want %d", shards, k, i, len(gotWin[i]), len(wantExact[i]))
				}
			}
		}
		full.Close()
		win.Close()
	}
}

// Eval-monotonicity property: on every corpus entry, windowed shard
// scans must report PointEvals ≤ the full-scan count with identical
// RepEvals and bit-identical answers. The corpus mixes clustered and
// tie-rich/duplicate-heavy datasets across dims, sizes and shard counts.
func TestWindowedEvalMonotonicity(t *testing.T) {
	corpus := []struct {
		seed      int64
		n, dim    int
		tieRich   bool
		shards, k int
	}{
		{1, 400, 3, false, 2, 1},
		{2, 1000, 6, false, 4, 5},
		{3, 1000, 1, true, 3, 3},
		{4, 700, 17, true, 5, 1},
		{5, 1500, 4, false, 6, 9},
		{6, 900, 3, true, 1, 4},
		{7, 1200, 8, false, 8, 2},
		{8, 500, 64, true, 2, 6},
	}
	for _, c := range corpus {
		rng := rand.New(rand.NewSource(c.seed))
		var db *vec.Dataset
		if c.tieRich {
			db = tieRichDB(rng, c.n, c.dim)
		} else {
			db = clustered(rng, c.n, c.dim, 8)
		}
		full, win := buildPair(t, db, core.ExactParams{Seed: c.seed * 31}, c.shards)
		var queries *vec.Dataset
		if c.tieRich {
			queries = tieRichDB(rng, 24, c.dim)
		} else {
			queries = clustered(rand.New(rand.NewSource(c.seed*37)), 24, c.dim, 8)
		}
		gotFull, mFull, _ := full.KNNBatch(queries, c.k)
		gotWin, mWin, _ := win.KNNBatch(queries, c.k)
		if mWin.PointEvals > mFull.PointEvals {
			t.Errorf("corpus %+v: windowed PointEvals %d > full-scan %d", c, mWin.PointEvals, mFull.PointEvals)
		}
		if mWin.RepEvals != mFull.RepEvals {
			t.Errorf("corpus %+v: RepEvals diverged: windowed %d, full %d", c, mWin.RepEvals, mFull.RepEvals)
		}
		if mWin.Windows == 0 {
			t.Errorf("corpus %+v: windowed cluster shipped no windows", c)
		}
		if mFull.Windows != 0 || mFull.EmptyWindows != 0 {
			t.Errorf("corpus %+v: full-scan cluster reported windows: %+v", c, mFull)
		}
		for i := range gotFull {
			for p := range gotFull[i] {
				if gotWin[i][p] != gotFull[i][p] {
					t.Fatalf("corpus %+v query %d pos %d: windowed %+v, full %+v", c, i, p, gotWin[i][p], gotFull[i][p])
				}
			}
		}
		full.Close()
		win.Close()
	}
}

// Work accounting on the windowed cluster must be identical between the
// batched scan and the per-query path — including the new Windows and
// EmptyWindows counters.
func TestWindowedAccountingParityBatchVsPerQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(431))
	db := clustered(rng, 2200, 6, 10)
	cl, err := Build(db, metric.Euclidean{}, core.ExactParams{Seed: 433, EarlyExit: true}, 6, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	queries := clustered(rand.New(rand.NewSource(439)), 48, 6, 10)
	for _, k := range []int{1, 6} {
		batch, bm, _ := cl.KNNBatch(queries, k)
		var pq QueryMetrics
		for i := 0; i < queries.N(); i++ {
			one, m, _ := cl.KNN(queries.Row(i), k)
			pq.Add(m)
			for p := range one {
				if batch[i][p] != one[p] {
					t.Fatalf("k=%d query %d pos %d: batch %+v, per-query %+v", k, i, p, batch[i][p], one[p])
				}
			}
		}
		if bm.PointEvals != pq.PointEvals {
			t.Fatalf("k=%d: batch PointEvals %d, per-query %d", k, bm.PointEvals, pq.PointEvals)
		}
		if bm.RepEvals != pq.RepEvals {
			t.Fatalf("k=%d: batch RepEvals %d, per-query %d", k, bm.RepEvals, pq.RepEvals)
		}
		if bm.Windows != pq.Windows {
			t.Fatalf("k=%d: batch Windows %d, per-query %d", k, bm.Windows, pq.Windows)
		}
		if bm.EmptyWindows != pq.EmptyWindows {
			t.Fatalf("k=%d: batch EmptyWindows %d, per-query %d", k, bm.EmptyWindows, pq.EmptyWindows)
		}
		if bm.Evals != pq.Evals || bm.Evals != bm.RepEvals+bm.PointEvals {
			t.Fatalf("k=%d: eval totals inconsistent: batch %+v per-query %+v", k, bm, pq)
		}
		if pq.ShardsContacted <= bm.ShardsContacted {
			t.Fatalf("k=%d: no message amortization: batch %d, per-query %d", k, bm.ShardsContacted, pq.ShardsContacted)
		}
	}
}

// The windowed hot path must stay free of per-pair m.Distance calls: the
// window computation is a binary search over precomputed sorted
// distances, and the clipped scans ride the same tiled kernels.
func TestWindowedScansAvoidPerPairDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(443))
	db := clustered(rng, 1000, 8, 6)
	var calls atomic.Int64
	m := countingMetric{calls: &calls}
	cl, err := Build(db, m, core.ExactParams{Seed: 449, EarlyExit: true}, 4, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	queries := clustered(rand.New(rand.NewSource(457)), 32, 8, 6)
	calls.Store(0)
	if _, met, _ := cl.KNNBatch(queries, 3); met.PointEvals == 0 || met.Windows == 0 {
		t.Fatal("windowed batch reported no shard-side work or no windows")
	}
	if got := calls.Load(); got != 0 {
		t.Fatalf("windowed query path made %d per-pair m.Distance calls, want 0", got)
	}
	got, _, _ := cl.KNN(queries.Row(0), 3)
	want := bruteforce.SearchOneK(queries.Row(0), db, 3, m, nil)
	for p := range want {
		if got[p] != want[p] {
			t.Fatalf("pos %d: %+v want %+v", p, got[p], want[p])
		}
	}
}

// An empty admissible window — the query's current k-th candidate lies
// strictly inside the gap between a surviving representative's member
// distances — must skip the segment entirely (zero point evals for it)
// while answers stay exact. The construction plants an isolated
// representative r that is NOT the query's nearest: its segment holds
// only itself (distance 0) and far members (distance ≈4), while the
// query sits at distance ≈2.5 with a k-th candidate at ≈1 — so r
// survives both pruning rules (ψ_r ≈ 4 and d ≤ 3γ) yet its admissible
// window [d−γ, d+γ] ≈ [1.5, 3.5] contains no member at all.
func TestEmptyWindowSkipsSegment(t *testing.T) {
	// dim-1 layout: a 200-point clump at 0, one isolated point at 3.5,
	// and three points near 7.5 whose nearest representative is the
	// isolated point whenever that point is sampled as a representative.
	build := func(seed int64) (*vec.Dataset, *Cluster, *Cluster, bool) {
		rng := rand.New(rand.NewSource(seed))
		db := vec.New(1, 204)
		for i := 0; i < 200; i++ {
			db.Append([]float32{float32(rng.NormFloat64()) * 0.05})
		}
		isoID := db.N()
		db.Append([]float32{3.5})
		for i := 0; i < 3; i++ {
			db.Append([]float32{7.5 + float32(i)*0.1})
		}
		prm := core.ExactParams{Seed: seed, NumReps: 24, ExactCount: true}
		full, err := Build(db, metric.Euclidean{}, prm, 3, DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		prm.EarlyExit = true
		win, err := Build(db, metric.Euclidean{}, prm, 3, DefaultCostModel())
		if err != nil {
			full.Close()
			t.Fatal(err)
		}
		isoIsRep := false
		farIsRep := false
		for _, id := range win.repIDs {
			if id == isoID {
				isoIsRep = true
			}
			if id > isoID {
				farIsRep = true
			}
		}
		return db, full, win, isoIsRep && !farIsRep
	}
	for seed := int64(1); seed <= 64; seed++ {
		db, full, win, usable := build(seed)
		if !usable {
			full.Close()
			win.Close()
			continue
		}
		// Query at 1: the k=1 candidate is a clump rep at distance ≈1,
		// the isolated rep at 3.5 survives pruning (its radius ≈4 beats
		// d−γ ≈ 1.5), and its window [≈1.5, ≈3.5] holds no member — its
		// own distance-0 entry and its ≈4-distance members both miss it.
		q := []float32{1}
		gotFull, mFull, _ := full.KNN(q, 1)
		gotWin, mWin, _ := win.KNN(q, 1)
		if mWin.EmptyWindows == 0 {
			t.Fatalf("seed %d: expected an empty window, metrics %+v", seed, mWin)
		}
		if mWin.PointEvals >= mFull.PointEvals {
			t.Fatalf("seed %d: empty window saved nothing: windowed %d, full %d",
				seed, mWin.PointEvals, mFull.PointEvals)
		}
		want := bruteforce.SearchOneK(q, db, 1, metric.Euclidean{}, nil)
		for p := range want {
			if gotWin[p] != want[p] || gotFull[p] != want[p] {
				t.Fatalf("seed %d pos %d: windowed %+v, full %+v, want %+v", seed, p, gotWin[p], gotFull[p], want[p])
			}
		}
		full.Close()
		win.Close()
		return
	}
	t.Fatal("no seed in 1..64 sampled the isolated point as a representative — reshape the construction")
}

// With k larger than the representative count, the rep-seeded heap never
// fills, the pruning bound stays +Inf, and every shipped window must
// cover its whole segment: windowed PointEvals equal the full-scan count
// exactly (the monotonicity boundary) and every point comes back.
func TestWindowsCoverWholeSegmentWhenHeapNotFull(t *testing.T) {
	rng := rand.New(rand.NewSource(461))
	db := clustered(rng, 60, 5, 3)
	m := metric.Euclidean{}
	full, win := buildPair(t, db, core.ExactParams{Seed: 463}, 4)
	defer full.Close()
	defer win.Close()
	queries := clustered(rand.New(rand.NewSource(467)), 10, 5, 3)
	for _, k := range []int{59, 60, 200} { // ≥ any segment size and ≥ nr
		gotFull, mFull, _ := full.KNNBatch(queries, k)
		gotWin, mWin, _ := win.KNNBatch(queries, k)
		if mWin.PointEvals != mFull.PointEvals {
			t.Fatalf("k=%d: infinite windows must scan everything: windowed %d, full %d",
				k, mWin.PointEvals, mFull.PointEvals)
		}
		if mWin.Windows == 0 {
			t.Fatalf("k=%d: no windows shipped", k)
		}
		if mWin.EmptyWindows != 0 {
			t.Fatalf("k=%d: infinite windows reported %d empty clips", k, mWin.EmptyWindows)
		}
		for i := 0; i < queries.N(); i++ {
			want := bruteforce.SearchOneK(queries.Row(i), db, k, m, nil)
			if len(gotWin[i]) != len(want) {
				t.Fatalf("k=%d query %d: %d results, want %d", k, i, len(gotWin[i]), len(want))
			}
			for p := range want {
				if gotWin[i][p] != want[p] || gotFull[i][p] != want[p] {
					t.Fatalf("k=%d query %d pos %d: windowed %+v, full %+v, want %+v",
						k, i, p, gotWin[i][p], gotFull[i][p], want[p])
				}
			}
		}
	}
}

// Duplicate representatives produce zero-length sorted segments; the
// windowed scan must skip them without panicking and stay exact.
func TestWindowedEmptySegmentsFromDuplicateReps(t *testing.T) {
	rng := rand.New(rand.NewSource(471))
	db := clustered(rng, 400, 4, 4)
	for i := 0; i < 200; i++ {
		copy(db.Row(200+i), db.Row(i%20))
	}
	m := metric.Euclidean{}
	cl, err := Build(db, m, core.ExactParams{Seed: 137, NumReps: 60, ExactCount: true, EarlyExit: true}, 3, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	empty := 0
	for _, sh := range cl.shards {
		for seg := 0; seg < len(sh.offsets)-1; seg++ {
			if sh.offsets[seg] == sh.offsets[seg+1] {
				empty++
			}
		}
	}
	if empty == 0 {
		t.Fatal("test setup failed to produce an empty segment (no duplicate representatives sampled)")
	}
	queries := clustered(rand.New(rand.NewSource(479)), 20, 4, 4)
	got, met, _ := cl.KNNBatch(queries, 4)
	for i := 0; i < queries.N(); i++ {
		want := bruteforce.SearchOneK(queries.Row(i), db, 4, m, nil)
		for p := range want {
			if got[i][p] != want[p] {
				t.Fatalf("query %d pos %d: %+v want %+v", i, p, got[i][p], want[p])
			}
		}
	}
	// Duplicate-rep segments that survive pruning ship windows that can
	// match nothing; every such futile window must be visible in
	// EmptyWindows (queries here sit on top of duplicated points, so
	// zero-length segments of the duplicate reps do get routed to).
	if met.EmptyWindows == 0 {
		t.Fatalf("no empty windows counted over zero-length segments: %+v", met)
	}
}

// Single-query degeneration through KNN: the one-query block must take
// the same windowed path, produce the same bits as its row in any
// batched call, and match brute force.
func TestWindowedSingleQueryDegeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(487))
	db := clustered(rng, 500, 5, 5)
	m := metric.Euclidean{}
	cl, err := Build(db, m, core.ExactParams{Seed: 491, EarlyExit: true}, 1, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	queries := clustered(rand.New(rand.NewSource(499)), 8, 5, 5)
	batch, _, _ := cl.KNNBatch(queries, 5)
	for i := 0; i < queries.N(); i++ {
		one, met, _ := cl.KNN(queries.Row(i), 5)
		if met.ShardsContacted > 1 {
			t.Fatalf("query %d: single shard contacted %d times", i, met.ShardsContacted)
		}
		if math.IsNaN(met.SimTimeUS) || met.SimTimeUS < 0 {
			t.Fatalf("query %d: bad sim time %v", i, met.SimTimeUS)
		}
		want := bruteforce.SearchOneK(queries.Row(i), db, 5, m, nil)
		for p := range want {
			if one[p] != want[p] {
				t.Fatalf("query %d pos %d: %+v want %+v", i, p, one[p], want[p])
			}
			if one[p] != batch[i][p] {
				t.Fatalf("query %d pos %d: per-query %+v, batch row %+v", i, p, one[p], batch[i][p])
			}
		}
	}
}

// Shard segments must be sorted ascending by distance-to-representative
// after Build — the invariant every window computation assumes. The
// full-scan cluster drops its sort keys after sorting (nothing reads
// them without windows), so the column checks run on the windowed one.
func TestShardSegmentsSortedAtBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	db := tieRichDB(rng, 900, 3)
	full, win := buildPair(t, db, core.ExactParams{Seed: 509}, 4)
	defer full.Close()
	defer win.Close()
	for _, sh := range full.shards {
		if sh.segDists != nil {
			t.Fatalf("full-scan shard %d retains %d dead sort keys", sh.id, len(sh.segDists))
		}
	}
	for _, cl := range []*Cluster{win} {
		for _, sh := range cl.shards {
			if len(sh.segDists) != len(sh.ids) {
				t.Fatalf("shard %d: %d segDists for %d ids", sh.id, len(sh.segDists), len(sh.ids))
			}
			for seg := 0; seg < len(sh.offsets)-1; seg++ {
				lo, hi := sh.offsets[seg], sh.offsets[seg+1]
				for p := lo + 1; p < hi; p++ {
					if sh.segDists[p] < sh.segDists[p-1] {
						t.Fatalf("shard %d segment %d: dists not ascending at %d (%v < %v)",
							sh.id, seg, p, sh.segDists[p], sh.segDists[p-1])
					}
					if sh.segDists[p] == sh.segDists[p-1] && sh.ids[p] < sh.ids[p-1] {
						t.Fatalf("shard %d segment %d: tie not id-ordered at %d", sh.id, seg, p)
					}
				}
			}
		}
	}
}

// Smoke-sized ratio assertion for CI: at a realistic configuration the
// windowed cluster must do measurably less shard-side work than the
// full-scan cluster (ratio strictly below 1) with identical answers.
func TestWindowedEvalRatioSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(521))
	db := clustered(rng, 4000, 16, 12)
	full, win := buildPair(t, db, core.ExactParams{Seed: 523, NumReps: 126, ExactCount: true}, 4)
	defer full.Close()
	defer win.Close()
	queries := clustered(rand.New(rand.NewSource(541)), 64, 16, 12)
	gotFull, mFull, _ := full.KNNBatch(queries, 10)
	gotWin, mWin, _ := win.KNNBatch(queries, 10)
	for i := range gotFull {
		for p := range gotFull[i] {
			if gotWin[i][p] != gotFull[i][p] {
				t.Fatalf("query %d pos %d: windowed %+v, full %+v", i, p, gotWin[i][p], gotFull[i][p])
			}
		}
	}
	ratio := float64(mWin.PointEvals) / float64(mFull.PointEvals)
	t.Logf("PointEvals: full=%d windowed=%d ratio=%.3f (windows=%d empty=%d)",
		mFull.PointEvals, mWin.PointEvals, ratio, mWin.Windows, mWin.EmptyWindows)
	if !(ratio < 1) {
		t.Fatalf("windowed/full PointEvals ratio %.3f, want < 1", ratio)
	}
}

// TestWindowedPlanAllocationsParity guards the pooled survivor/window
// slabs in plan(): the windowed KNNBatch path used to carry ~2x the
// full-scan path's allocations (per-query survWins appends); with the
// slabs pooled through par.Scratch the two paths must allocate within a
// modest factor of each other.
func TestWindowedPlanAllocationsParity(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	db := clustered(rng, 3000, 16, 10)
	full, win := buildPair(t, db, core.ExactParams{Seed: 607, NumReps: 100, ExactCount: true}, 3)
	defer full.Close()
	defer win.Close()
	queries := clustered(rand.New(rand.NewSource(613)), 128, 16, 10)
	// Warm the pools so steady state is measured.
	full.KNNBatch(queries, 10)
	win.KNNBatch(queries, 10)
	af := testing.AllocsPerRun(3, func() { full.KNNBatch(queries, 10) })
	aw := testing.AllocsPerRun(3, func() { win.KNNBatch(queries, 10) })
	t.Logf("allocations per block: full=%.0f windowed=%.0f ratio=%.2f", af, aw, aw/af)
	if aw > af*1.35+64 {
		t.Fatalf("windowed KNNBatch allocates %.0f vs full-scan %.0f (ratio %.2f); window slabs not pooled?",
			aw, af, aw/af)
	}
}
