// Package distributed implements the paper's future-work proposal (§8):
// distributing the RBC database across machines *by representative*. The
// coordinator holds only the (small, O(√n)) representative set; each
// shard holds the ownership lists of the representatives assigned to it.
// A query is answered by scanning the representatives locally, pruning
// with the exact-search bounds, and contacting only the shards that own a
// surviving representative — in contrast to a brute-force cluster, which
// must broadcast every query to every shard.
//
// Shards run as goroutines connected by channels (real concurrency), and
// a cost model accounts for messages, bytes and simulated latency so the
// experiments can report communication costs, as §8 calls for.
package distributed

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/vec"
)

// CostModel translates counted events into simulated time.
type CostModel struct {
	// LatencyUS is the one-way network latency per message, microseconds.
	LatencyUS float64
	// BandwidthMBps is the link bandwidth used for payload transfer time.
	BandwidthMBps float64
	// EvalNS is the simulated cost of one distance evaluation.
	EvalNS float64
}

// DefaultCostModel reflects a commodity cluster: 50µs RTT/2, 1 GB/s
// links, ~5ns per float32 distance-evaluation dimension-normalized unit.
func DefaultCostModel() CostModel {
	return CostModel{LatencyUS: 25, BandwidthMBps: 1000, EvalNS: 5}
}

// QueryMetrics records the cost of answering one query.
type QueryMetrics struct {
	// ShardsContacted is how many shards received the query.
	ShardsContacted int
	// Messages counts request + response messages.
	Messages int
	// Bytes counts payload bytes moved (query vectors out, results back).
	Bytes int
	// Evals counts distance evaluations across coordinator and shards.
	Evals int64
	// SimTimeUS is the modeled latency: coordinator work plus the slowest
	// contacted shard's (transfer + scan + reply) path.
	SimTimeUS float64
}

// Add accumulates o into m (used for run totals).
func (m *QueryMetrics) Add(o QueryMetrics) {
	m.ShardsContacted += o.ShardsContacted
	m.Messages += o.Messages
	m.Bytes += o.Bytes
	m.Evals += o.Evals
	m.SimTimeUS += o.SimTimeUS
}

// shard owns a contiguous group of representatives and their gathered
// ownership lists.
type shard struct {
	id      int
	dim     int
	m       metric.Metric[[]float32]
	reqs    chan shardRequest
	repIDs  []int32   // global database ids of owned representatives
	offsets []int     // per-owned-rep segment offsets into ids/gather
	ids     []int32   // member database ids (gathered layout)
	gather  []float32 // member vectors
}

type shardRequest struct {
	q     []float32
	segs  []int // which owned representative segments to scan
	reply chan shardReply
}

type shardReply struct {
	best  core.Result
	evals int64
}

func (s *shard) serve() {
	for req := range s.reqs {
		best := core.Result{ID: -1, Dist: math.Inf(1)}
		var evals int64
		for _, seg := range req.segs {
			lo, hi := s.offsets[seg], s.offsets[seg+1]
			for p := lo; p < hi; p++ {
				d := s.m.Distance(req.q, s.gather[p*s.dim:(p+1)*s.dim])
				evals++
				id := int(s.ids[p])
				if d < best.Dist || (d == best.Dist && id < best.ID) {
					best = core.Result{ID: id, Dist: d}
				}
			}
		}
		req.reply <- shardReply{best: best, evals: evals}
	}
}

// Cluster is a simulated RBC-sharded deployment.
type Cluster struct {
	m      metric.Metric[[]float32]
	dim    int
	cost   CostModel
	shards []*shard

	// Coordinator state: the full representative set with radii, plus the
	// routing table rep → (shard, segment).
	repData  *vec.Dataset
	repIDs   []int
	radii    []float64
	repShard []int32
	repSeg   []int32

	mu     sync.Mutex
	closed bool
}

// Build constructs a cluster of `shards` shards over db. It builds a
// standard exact RBC and deals representatives round-robin (by descending
// list size, largest first) so shard loads balance.
func Build(db *vec.Dataset, m metric.Metric[[]float32], prm core.ExactParams, shards int, cost CostModel) (*Cluster, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("distributed: need at least one shard, got %d", shards)
	}
	idx, err := core.BuildExact(db, m, prm)
	if err != nil {
		return nil, err
	}
	nr := idx.NumReps()
	c := &Cluster{
		m: m, dim: db.Dim, cost: cost,
		repData:  db.Subset(idx.RepIDs()),
		repIDs:   idx.RepIDs(),
		radii:    idx.Radii(),
		repShard: make([]int32, nr),
		repSeg:   make([]int32, nr),
	}
	// Longest-processing-time assignment: sort reps by list size
	// descending, place each on the currently lightest shard.
	sizes := idx.ListSizes()
	order := make([]int, nr)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return sizes[order[a]] > sizes[order[b]] })
	load := make([]int, shards)
	perShard := make([][]int, shards)
	for _, rep := range order {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		load[best] += sizes[rep]
		perShard[best] = append(perShard[best], rep)
	}
	// Materialize shards. Members are fetched through Range on the exact
	// index? No — we rebuild the segments directly from the index's
	// public surface: re-derive each rep's members by assignment.
	members := assignment(db, c.repData, m)
	for sid := 0; sid < shards; sid++ {
		sh := &shard{id: sid, dim: db.Dim, m: m, reqs: make(chan shardRequest, 16)}
		sh.offsets = append(sh.offsets, 0)
		for seg, rep := range perShard[sid] {
			c.repShard[rep] = int32(sid)
			c.repSeg[rep] = int32(seg)
			sh.repIDs = append(sh.repIDs, int32(c.repIDs[rep]))
			for _, id := range members[rep] {
				sh.ids = append(sh.ids, id)
				sh.gather = append(sh.gather, db.Row(int(id))...)
			}
			sh.offsets = append(sh.offsets, len(sh.ids))
		}
		c.shards = append(c.shards, sh)
		go sh.serve()
	}
	return c, nil
}

// assignment recomputes each database point's owning representative
// (nearest, ties to the lower representative index).
func assignment(db, repData *vec.Dataset, m metric.Metric[[]float32]) [][]int32 {
	nr := repData.N()
	members := make([][]int32, nr)
	dists := make([]float64, nr)
	for i := 0; i < db.N(); i++ {
		metric.BatchDistances(m, db.Row(i), repData.Data, db.Dim, dists)
		best := 0
		for j := 1; j < nr; j++ {
			if dists[j] < dists[best] {
				best = j
			}
		}
		members[best] = append(members[best], int32(i))
	}
	return members
}

// NumShards reports the cluster size.
func (c *Cluster) NumShards() int { return len(c.shards) }

// ShardLoads returns the number of database points held per shard.
func (c *Cluster) ShardLoads() []int {
	out := make([]int, len(c.shards))
	for i, s := range c.shards {
		out[i] = len(s.ids)
	}
	return out
}

const float32Bytes = 4
const resultBytes = 16 // id + distance + framing

// Query answers one query with RBC routing: the coordinator prunes
// representatives exactly as the single-machine exact search does, then
// contacts only the shards owning survivors.
func (c *Cluster) Query(q []float32) (core.Result, QueryMetrics) {
	nr := c.repData.N()
	repDists := make([]float64, nr)
	metric.BatchDistances(c.m, q, c.repData.Data, c.dim, repDists)
	var met QueryMetrics
	met.Evals = int64(nr)

	gamma := math.Inf(1)
	bestRep := -1
	for j, d := range repDists {
		if d < gamma {
			gamma, bestRep = d, j
		}
	}
	best := core.Result{ID: c.repIDs[bestRep], Dist: gamma}

	// Exact pruning (both bounds) → shard → surviving segments.
	segsByShard := make(map[int32][]int)
	for j := 0; j < nr; j++ {
		if repDists[j] >= gamma+c.radii[j] {
			continue
		}
		if repDists[j] > 3*gamma {
			continue
		}
		sid := c.repShard[j]
		segsByShard[sid] = append(segsByShard[sid], int(c.repSeg[j]))
	}
	return c.finish(q, best, segsByShard, met)
}

// QueryBroadcast answers one query the brute-force way: every shard scans
// everything it holds. The baseline for the §8 experiments.
func (c *Cluster) QueryBroadcast(q []float32) (core.Result, QueryMetrics) {
	var met QueryMetrics
	best := core.Result{ID: -1, Dist: math.Inf(1)}
	segsByShard := make(map[int32][]int)
	for sid, sh := range c.shards {
		all := make([]int, len(sh.offsets)-1)
		for i := range all {
			all[i] = i
		}
		segsByShard[int32(sid)] = all
	}
	return c.finish(q, best, segsByShard, met)
}

// finish fans the query out to the selected shards, merges answers and
// fills in the cost model.
func (c *Cluster) finish(q []float32, best core.Result, segsByShard map[int32][]int, met QueryMetrics) (core.Result, QueryMetrics) {
	reply := make(chan shardReply, len(segsByShard))
	queryBytes := len(q)*float32Bytes + 16
	var slowest float64
	for sid, segs := range segsByShard {
		c.shards[sid].reqs <- shardRequest{q: q, segs: segs, reply: reply}
		met.ShardsContacted++
		met.Messages += 2 // request + response
		met.Bytes += queryBytes + resultBytes
	}
	for i := 0; i < met.ShardsContacted; i++ {
		r := <-reply
		met.Evals += r.evals
		if r.best.ID >= 0 && (r.best.Dist < best.Dist || (r.best.Dist == best.Dist && r.best.ID < best.ID)) {
			best = r.best
		}
		// Per-shard critical path: request latency + transfer + scan +
		// response latency. The slowest contacted shard dominates.
		transferUS := float64(queryBytes+resultBytes) / (c.cost.BandwidthMBps * 1e6) * 1e6
		scanUS := float64(r.evals) * c.cost.EvalNS / 1000
		if t := 2*c.cost.LatencyUS + transferUS + scanUS; t > slowest {
			slowest = t
		}
	}
	met.SimTimeUS = slowest
	return best, met
}

// Close shuts down the shard goroutines. The cluster is unusable after.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, s := range c.shards {
		close(s.reqs)
	}
}
