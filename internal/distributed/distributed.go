// Package distributed implements the paper's future-work proposal (§8):
// distributing the RBC database across machines *by representative*. The
// coordinator holds only the (small, O(√n)) representative set; each
// shard holds the ownership lists of the representatives assigned to it.
// A query is answered by scanning the representatives locally, pruning
// with the exact-search bounds, and contacting only the shards that own a
// surviving representative — in contrast to a brute-force cluster, which
// must broadcast every query to every shard.
//
// The query plane is batch-first: QueryBatch and KNNBatch take whole
// query blocks, group the surviving (query, list) pairs by owning shard,
// and send ONE request per shard per block — so a 64-query block that
// routes to 8 shards costs 16 messages instead of up to 1024. Query is
// the single-query special case of the same path.
//
// Shards run as goroutines connected by channels (real concurrency), and
// a cost model accounts for messages, bytes and simulated latency so the
// experiments can report communication costs, as §8 calls for.
package distributed

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// CostModel translates counted events into simulated time.
type CostModel struct {
	// LatencyUS is the one-way network latency per message, microseconds.
	LatencyUS float64
	// BandwidthMBps is the link bandwidth used for payload transfer time.
	BandwidthMBps float64
	// EvalNS is the simulated cost of one distance evaluation.
	EvalNS float64
}

// DefaultCostModel reflects a commodity cluster: 50µs RTT/2, 1 GB/s
// links, ~5ns per float32 distance-evaluation dimension-normalized unit.
func DefaultCostModel() CostModel {
	return CostModel{LatencyUS: 25, BandwidthMBps: 1000, EvalNS: 5}
}

// QueryMetrics records the cost of answering one query (or one batch —
// the counters simply accumulate).
type QueryMetrics struct {
	// ShardsContacted is how many shard requests were sent. Batched
	// fan-out sends at most one request per shard per block, so this is
	// the message-amortization win.
	ShardsContacted int
	// Messages counts request + response messages.
	Messages int
	// Bytes counts payload bytes moved (query vectors out, results back).
	Bytes int
	// Evals counts distance evaluations across coordinator and shards.
	Evals int64
	// SimTimeUS is the modeled latency: coordinator work plus the slowest
	// contacted shard's (transfer + scan + reply) path.
	SimTimeUS float64
}

// Add accumulates o into m (used for run totals).
func (m *QueryMetrics) Add(o QueryMetrics) {
	m.ShardsContacted += o.ShardsContacted
	m.Messages += o.Messages
	m.Bytes += o.Bytes
	m.Evals += o.Evals
	m.SimTimeUS += o.SimTimeUS
}

// shard owns a contiguous group of representatives and their gathered
// ownership lists.
type shard struct {
	id      int
	dim     int
	m       metric.Metric[[]float32]
	reqs    chan shardRequest
	repIDs  []int32   // global database ids of owned representatives
	offsets []int     // per-owned-rep segment offsets into ids/gather
	ids     []int32   // member database ids (gathered layout)
	isRep   []bool    // position → member is itself a representative
	gather  []float32 // member vectors
}

// shardRequest carries one block of queries: qs holds len(segs) packed
// query vectors, segs lists the owned-representative segments each query
// must scan, and k selects 1-NN (best) or k-NN (knn) replies.
type shardRequest struct {
	qs    []float32
	segs  [][]int
	k     int
	reply chan shardReply
}

type shardReply struct {
	sid   int
	best  []core.Result    // per query, when k == 1
	knn   [][]par.Neighbor // per query, when k > 1
	evals int64
}

func (s *shard) serve() {
	for req := range s.reqs {
		nq := len(req.segs)
		rep := shardReply{sid: s.id}
		if req.k == 1 {
			rep.best = make([]core.Result, nq)
		} else {
			rep.knn = make([][]par.Neighbor, nq)
		}
		for qi := 0; qi < nq; qi++ {
			q := req.qs[qi*s.dim : (qi+1)*s.dim]
			if req.k == 1 {
				best := core.Result{ID: -1, Dist: math.Inf(1)}
				for _, seg := range req.segs[qi] {
					lo, hi := s.offsets[seg], s.offsets[seg+1]
					for p := lo; p < hi; p++ {
						d := s.m.Distance(q, s.gather[p*s.dim:(p+1)*s.dim])
						rep.evals++
						id := int(s.ids[p])
						if d < best.Dist || (d == best.Dist && id < best.ID) {
							best = core.Result{ID: id, Dist: d}
						}
					}
				}
				rep.best[qi] = best
				continue
			}
			// k-NN: representatives are excluded here because the
			// coordinator seeds every representative as a candidate (their
			// distances are already paid for in phase 1); scanning them
			// again would duplicate ids in the merged result set.
			h := par.NewKHeap(req.k)
			for _, seg := range req.segs[qi] {
				lo, hi := s.offsets[seg], s.offsets[seg+1]
				for p := lo; p < hi; p++ {
					if s.isRep[p] {
						continue
					}
					d := s.m.Distance(q, s.gather[p*s.dim:(p+1)*s.dim])
					rep.evals++
					h.Push(int(s.ids[p]), d)
				}
			}
			rep.knn[qi] = h.Results()
		}
		req.reply <- rep
	}
}

// Cluster is a simulated RBC-sharded deployment.
type Cluster struct {
	m      metric.Metric[[]float32]
	dim    int
	cost   CostModel
	shards []*shard

	// Coordinator state: the full representative set with radii, plus the
	// routing table rep → (shard, segment).
	repData  *vec.Dataset
	repIDs   []int
	radii    []float64
	repShard []int32
	repSeg   []int32

	mu     sync.Mutex
	closed bool
}

// Build constructs a cluster of `shards` shards over db. It builds a
// standard exact RBC and deals representatives round-robin (by descending
// list size, largest first) so shard loads balance.
func Build(db *vec.Dataset, m metric.Metric[[]float32], prm core.ExactParams, shards int, cost CostModel) (*Cluster, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("distributed: need at least one shard, got %d", shards)
	}
	idx, err := core.BuildExact(db, m, prm)
	if err != nil {
		return nil, err
	}
	nr := idx.NumReps()
	c := &Cluster{
		m: m, dim: db.Dim, cost: cost,
		repData:  db.Subset(idx.RepIDs()),
		repIDs:   idx.RepIDs(),
		radii:    idx.Radii(),
		repShard: make([]int32, nr),
		repSeg:   make([]int32, nr),
	}
	isRepID := make(map[int32]bool, nr)
	for _, id := range c.repIDs {
		isRepID[int32(id)] = true
	}
	// Longest-processing-time assignment: sort reps by list size
	// descending, place each on the currently lightest shard.
	sizes := idx.ListSizes()
	order := make([]int, nr)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return sizes[order[a]] > sizes[order[b]] })
	load := make([]int, shards)
	perShard := make([][]int, shards)
	for _, rep := range order {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		load[best] += sizes[rep]
		perShard[best] = append(perShard[best], rep)
	}
	// Materialize shards. Members are fetched through Range on the exact
	// index? No — we rebuild the segments directly from the index's
	// public surface: re-derive each rep's members by assignment.
	members := assignment(db, c.repData, m)
	for sid := 0; sid < shards; sid++ {
		sh := &shard{id: sid, dim: db.Dim, m: m, reqs: make(chan shardRequest, 16)}
		sh.offsets = append(sh.offsets, 0)
		for seg, rep := range perShard[sid] {
			c.repShard[rep] = int32(sid)
			c.repSeg[rep] = int32(seg)
			sh.repIDs = append(sh.repIDs, int32(c.repIDs[rep]))
			for _, id := range members[rep] {
				sh.ids = append(sh.ids, id)
				sh.isRep = append(sh.isRep, isRepID[id])
				sh.gather = append(sh.gather, db.Row(int(id))...)
			}
			sh.offsets = append(sh.offsets, len(sh.ids))
		}
		c.shards = append(c.shards, sh)
		go sh.serve()
	}
	return c, nil
}

// assignment recomputes each database point's owning representative
// (nearest, ties to the lower representative index).
func assignment(db, repData *vec.Dataset, m metric.Metric[[]float32]) [][]int32 {
	nr := repData.N()
	members := make([][]int32, nr)
	dists := make([]float64, nr)
	for i := 0; i < db.N(); i++ {
		metric.BatchDistances(m, db.Row(i), repData.Data, db.Dim, dists)
		best := 0
		for j := 1; j < nr; j++ {
			if dists[j] < dists[best] {
				best = j
			}
		}
		members[best] = append(members[best], int32(i))
	}
	return members
}

// NumShards reports the cluster size.
func (c *Cluster) NumShards() int { return len(c.shards) }

// ShardLoads returns the number of database points held per shard.
func (c *Cluster) ShardLoads() []int {
	out := make([]int, len(c.shards))
	for i, s := range c.shards {
		out[i] = len(s.ids)
	}
	return out
}

const float32Bytes = 4
const resultBytes = 16 // id + distance + framing

// shardBatch accumulates one shard's slice of a query block: which
// global queries it serves and, per query, which segments to scan.
type shardBatch struct {
	qidx []int
	segs [][]int
}

// add appends segment seg of query qi (queries arrive in ascending
// order, so the last entry check suffices).
func (sb *shardBatch) add(qi, seg int) {
	if n := len(sb.qidx); n == 0 || sb.qidx[n-1] != qi {
		sb.qidx = append(sb.qidx, qi)
		sb.segs = append(sb.segs, nil)
	}
	sb.segs[len(sb.segs)-1] = append(sb.segs[len(sb.segs)-1], seg)
}

// Query answers one query with RBC routing: the coordinator prunes
// representatives exactly as the single-machine exact search does, then
// contacts only the shards owning survivors. It is QueryBatch on a
// one-query block.
func (c *Cluster) Query(q []float32) (core.Result, QueryMetrics) {
	res, met := c.QueryBatch(vec.FromFlat(q, len(q)))
	return res[0], met
}

// QueryBatch answers a block of 1-NN queries with batched shard fan-out.
// It is KNNBatch at k = 1, where the pruning bounds degenerate to the
// paper's exact-search rules (γ_k = γ_1, 2γ_k + γ_1 = 3γ).
func (c *Cluster) QueryBatch(queries *vec.Dataset) ([]core.Result, QueryMetrics) {
	nbs, met := c.KNNBatch(queries, 1)
	out := make([]core.Result, len(nbs))
	for i, nb := range nbs {
		if len(nb) == 0 {
			out[i] = core.Result{ID: -1, Dist: math.Inf(1)}
			continue
		}
		out[i] = core.Result{ID: nb[0].ID, Dist: nb[0].Dist}
	}
	return out, met
}

// KNNBatch answers a block of k-NN queries with batched shard fan-out.
// The pruning generalizes the exact-search bounds to k neighbors exactly
// as the single-machine index does (see Exact.one): with γ_k the k-th
// smallest representative distance, rule (1) discards representatives
// with ρ(q,r) ≥ γ_k + ψ_r and rule (2) those with ρ(q,r) > 2γ_k + γ_1.
// Every representative is seeded as a candidate (they are database
// points whose distances are already paid for), which keeps the result
// multiset exact at pruning-boundary ties; shards skip representatives
// during their scans in exchange.
func (c *Cluster) KNNBatch(queries *vec.Dataset, k int) ([][]par.Neighbor, QueryMetrics) {
	nq := queries.N()
	out := make([][]par.Neighbor, nq)
	var met QueryMetrics
	if nq == 0 || k <= 0 {
		return out, met
	}
	nr := c.repData.N()
	met.Evals = int64(nq) * int64(nr)
	heaps := make([]*par.KHeap, nq)
	survivors := make([][]int32, nq)
	par.For(nq, 8, func(lo, hi int) {
		dists := make([]float64, nr)
		kk := k
		if kk > nr {
			kk = nr
		}
		for i := lo; i < hi; i++ {
			metric.BatchDistances(c.m, queries.Row(i), c.repData.Data, c.dim, dists)
			sel := par.NewKHeap(kk)
			for j, d := range dists {
				sel.Push(j, d)
			}
			best, _ := sel.Best()
			gamma1 := best.Dist
			gammaK := math.Inf(1)
			if w, full := sel.Worst(); full && k <= nr {
				gammaK = w
			}
			tripleBound := 2*gammaK + gamma1
			h := par.NewKHeap(k)
			for j, d := range dists {
				h.Push(c.repIDs[j], d)
			}
			heaps[i] = h
			var surv []int32
			for j := 0; j < nr; j++ {
				if dists[j] >= gammaK+c.radii[j] {
					continue
				}
				if !math.IsInf(tripleBound, 1) && dists[j] > tripleBound {
					continue
				}
				surv = append(surv, int32(j))
			}
			survivors[i] = surv
		}
	})
	batches := make([]shardBatch, len(c.shards))
	for i := 0; i < nq; i++ {
		for _, j := range survivors[i] {
			batches[c.repShard[j]].add(i, int(c.repSeg[j]))
		}
	}
	c.finish(queries, k, batches, &met, func(rp shardReply, qidx []int) {
		for t, qi := range qidx {
			if rp.best != nil { // k == 1 takes the shards' lean reply form
				if b := rp.best[t]; b.ID >= 0 {
					heaps[qi].Push(b.ID, b.Dist)
				}
				continue
			}
			for _, nb := range rp.knn[t] {
				heaps[qi].Push(nb.ID, nb.Dist)
			}
		}
	})
	for i := range heaps {
		out[i] = heaps[i].Results()
	}
	return out, met
}

// QueryBroadcast answers one query the brute-force way: every shard scans
// everything it holds. The baseline for the §8 experiments.
func (c *Cluster) QueryBroadcast(q []float32) (core.Result, QueryMetrics) {
	var met QueryMetrics
	best := core.Result{ID: -1, Dist: math.Inf(1)}
	batches := make([]shardBatch, len(c.shards))
	for sid, sh := range c.shards {
		for seg := 0; seg < len(sh.offsets)-1; seg++ {
			batches[sid].add(0, seg)
		}
	}
	queries := vec.FromFlat(q, len(q))
	c.finish(queries, 1, batches, &met, func(rp shardReply, qidx []int) {
		b := rp.best[0]
		if b.ID >= 0 && (b.Dist < best.Dist || (b.Dist == best.Dist && b.ID < best.ID)) {
			best = b
		}
	})
	return best, met
}

// finish fans a query block out to the shards with work, merges answers
// through sink and fills in the cost model. Per contacted shard it
// accounts one request and one response message, the packed query
// vectors out and k results per query back.
func (c *Cluster) finish(queries *vec.Dataset, k int, batches []shardBatch, met *QueryMetrics, sink func(rp shardReply, qidx []int)) {
	reply := make(chan shardReply, len(batches))
	queryBytes := c.dim*float32Bytes + 16
	contacted := 0
	shardBytes := make([]int, len(batches))
	for sid := range batches {
		sb := &batches[sid]
		if len(sb.qidx) == 0 {
			continue
		}
		qs := make([]float32, len(sb.qidx)*c.dim)
		for t, qi := range sb.qidx {
			copy(qs[t*c.dim:(t+1)*c.dim], queries.Row(qi))
		}
		c.shards[sid].reqs <- shardRequest{qs: qs, segs: sb.segs, k: k, reply: reply}
		contacted++
		shardBytes[sid] = len(sb.qidx) * (queryBytes + k*resultBytes)
		met.ShardsContacted++
		met.Messages += 2 // request + response
		met.Bytes += shardBytes[sid]
	}
	var slowest float64
	for r := 0; r < contacted; r++ {
		rp := <-reply
		met.Evals += rp.evals
		sink(rp, batches[rp.sid].qidx)
		// Per-shard critical path: request latency + transfer + scan +
		// response latency. The slowest contacted shard dominates.
		transferUS := float64(shardBytes[rp.sid]) / (c.cost.BandwidthMBps * 1e6) * 1e6
		scanUS := float64(rp.evals) * c.cost.EvalNS / 1000
		if t := 2*c.cost.LatencyUS + transferUS + scanUS; t > slowest {
			slowest = t
		}
	}
	met.SimTimeUS += slowest
}

// Close shuts down the shard goroutines. The cluster is unusable after.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, s := range c.shards {
		close(s.reqs)
	}
}
