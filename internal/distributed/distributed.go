// Package distributed implements the paper's future-work proposal (§8):
// distributing the RBC database across machines *by representative*. The
// coordinator holds only the (small, O(√n)) representative set; each
// shard holds the ownership lists of the representatives assigned to it.
// A query is answered by scanning the representatives locally, pruning
// with the exact-search bounds, and contacting only the shards that own a
// surviving representative — in contrast to a brute-force cluster, which
// must broadcast every query to every shard.
//
// The query plane is batch-first: QueryBatch and KNNBatch take whole
// query blocks, group the surviving (query, list) pairs by owning shard,
// and send ONE request per shard per block — so a 64-query block that
// routes to 8 shards costs 16 messages instead of up to 1024. Query and
// KNN are the single-query special case of the same path.
//
// # The tiled shard-scan contract
//
// Shards do not score candidates one pair at a time. A shard request
// carries its whole query block; the shard inverts the block's
// (query, segment) pairs into per-segment taker sets and scans each
// owned segment ONCE for all of its takers through core.GroupedScan —
// the same adaptive tile-vs-row machinery Exact's grouped batch back
// half uses. Dense taker sets become BF(Q', L) matrix-matrix tiles;
// a segment with a single taker (e.g. a one-query block degenerating to
// the old per-query shape) falls back to the row kernel.
//
// Every kernel on the answer path is EXACT grade (metric.NewKernel):
// per-pair arithmetic is bit-identical to the per-query row reference,
// so the orderings a shard emits are independent of block composition
// and of the tile-vs-row choice. The whole pipeline — coordinator
// phase 1, pruning-bound conversion, heap merging — runs in ordering
// space exactly as core.Exact does, converting to true distances only at
// the API boundary. Consequences, relied on by the test suite:
//
//   - KNNBatch results are bit-identical to per-query KNN calls;
//   - Cluster answers are bit-identical to the single-node core.Exact
//     index built with the same parameters (same reported distances,
//     same ids at razor ties).
//
// The fast Gram kernel grade (metric.NewFastKernel) is NOT allowed on
// this path: its reassociated summation can drift in trailing ulps,
// which would break both guarantees. It remains fair game for phases
// whose outputs are not reported answers (e.g. a future approximate
// routing phase), mirroring how core.OneShot restricts it to probe
// selection.
//
// # Shard-side admissible windows (EarlyExit)
//
// Building with core.ExactParams.EarlyExit brings the paper's Claim 2
// "sorted list" refinement to the cluster. Shard segments are sorted at
// Build by ascending distance-to-representative (core.SortSegment — the
// same order core.Exact keeps its lists in), and each routed request
// ships, per (query, segment) pair, an admissible window [dLo, dHi] in
// distance-to-representative space: dLo = ρ(q,r) − w, dHi = ρ(q,r) + w,
// where w is the true-distance form of the query's rep-seeded heap worst
// (its current k-th candidate; +Inf while the heap is not full). By the
// triangle inequality |ρ(q,r) − ρ(x,r)| ≤ ρ(q,x), a member outside the
// window cannot beat that k-th candidate, so the shard clips each
// taker's scan range to the window (core.AdmissibleWindow, a binary
// search over the sorted segment) before handing it to core.GroupedScan
// — the single scan hook for windowed and full scans alike.
//
// The protocol cost is 16 bytes per (query, segment) window — two
// float64 bounds — accounted in QueryMetrics.Bytes and counted by
// QueryMetrics.Windows; windows that clip to nothing shard-side are
// reported in QueryMetrics.EmptyWindows. Windows change work done, never
// results: both window boundaries are inclusive, the interval derives
// from a true upper bound on the final k-th neighbor, and the arithmetic
// (d−w, d+w, and the binary-search boundary rule) is byte-for-byte the
// one Exact's own EarlyExit path runs — so windowed cluster answers stay
// bit-identical to the full-scan cluster, to per-query calls, and to the
// single-node core.Exact index. The window contract is EXACT-GRADE ONLY,
// like the rest of the answer path: it presumes per-pair arithmetic that
// is bit-identical to the row reference, and the fast Gram kernel grade
// would void the window's boundary guarantees along with the rest of the
// contract.
//
// # Transports: loopback and TCP
//
// Build starts the cluster on the in-process loopback transport: shards
// run as goroutines connected by channels (real concurrency), and a
// cost model accounts for messages, bytes and simulated latency so the
// experiments can report communication costs, as §8 calls for.
//
// Cluster.Distribute lifts the same cluster onto real shard processes
// (cmd/rbc-shard) speaking the length-prefixed, CRC-checked binary
// protocol of the internal/distributed/wire package: each shard's
// gathered state is pushed once (MsgLoad), then every fan-out sends one
// MsgScan per shard per block — the wire form of shardRequest, windows
// and bounds included. Distances cross the wire as IEEE-754 bit
// patterns and the remote scan path is the same shard.scan code, so
// answers over TCP are bit-identical to loopback and to core.Exact;
// the loopback transport doubles as the correctness oracle in the
// equivalence tests.
//
// The TCP client pools connections per shard, bounds every attempt with
// a deadline, and retries transient failures (connect errors, IO
// errors, torn or corrupt frames) with doubling backoff up to
// TCPOptions.MaxAttempts. A shard that stays unreachable either fails
// the batch with a typed *ShardError (DegradeFailFast, the default) or
// is skipped with the miss accounted in QueryMetrics.FailedShards
// (DegradePartial). Queries never hang on a dead shard: every attempt
// is deadline-bounded, so the worst case is MaxAttempts×RequestTimeout
// plus backoff.
//
// # Replication, hedged requests and live rebalancing
//
// Cluster.DistributeReplicas pushes each shard's state to an ordered
// replica SET instead of a single address. A scan tries the set in
// order: a replica whose retry budget is exhausted (or that refuses via
// MsgErr) hands the scan to the next replica, and the degradation
// policy applies only when the whole set is exhausted — the *ShardError
// then names every replica tried. With TCPOptions.Hedge, a scan that
// has not answered after a delay (fixed, or adaptive from each
// replica's windowed p95 RTT) is additionally duplicated onto the next
// replica; the first answer wins and the losers are cancelled on the
// wire. Cancellation is not failure: hedge losers charge the Cancelled
// counter, never Failures, so ShardNetStats separates policy from
// pathology (Hedged/HedgeWins/Cancelled vs Retries/Failures).
//
// Replica sets change online. AddShardReplica pushes the retained
// state to a new address at the shard's current epoch;
// RemoveShardReplica drops one (never the last). Rebalance moves
// representatives between shards: affected shards are rebuilt from the
// retained segment data, the new states are pushed to EVERY replica at
// a bumped per-shard epoch, and only then does the routing table cut
// over — atomically, because queries hold the lifecycle read lock
// across their whole fan-out and the mutators hold the write side. The
// epoch travels in every ScanRequest, and a shard rejects a scan whose
// epoch does not match the state it holds ("stale epoch"), so answers
// computed against two different layouts can never be merged. Answers
// stay bit-identical through all of it — replication, hedging, replica
// death, rebalance — because every replica serves byte-identical state
// and the merge never depends on which replica scanned a segment.
package distributed

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/distributed/wire"
	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// CostModel translates counted events into simulated time.
type CostModel struct {
	// LatencyUS is the one-way network latency per message, microseconds.
	LatencyUS float64
	// BandwidthMBps is the link bandwidth used for payload transfer time.
	BandwidthMBps float64
	// EvalNS is the simulated cost of one distance evaluation.
	EvalNS float64
}

// DefaultCostModel reflects a commodity cluster: 50µs RTT/2, 1 GB/s
// links, ~5ns per float32 distance-evaluation dimension-normalized unit.
func DefaultCostModel() CostModel {
	return CostModel{LatencyUS: 25, BandwidthMBps: 1000, EvalNS: 5}
}

// QueryMetrics records the cost of answering one query (or one batch —
// the counters simply accumulate).
type QueryMetrics struct {
	// ShardsContacted is how many shard requests were sent. Batched
	// fan-out sends at most one request per shard per block, so this is
	// the message-amortization win.
	ShardsContacted int
	// Messages counts request + response messages.
	Messages int
	// Bytes counts payload bytes moved (query vectors and pruning bounds
	// out, results back).
	Bytes int
	// RepEvals counts coordinator-side representative evaluations
	// (phase 1: nq × nr per block).
	RepEvals int64
	// PointEvals counts shard-side segment-scan evaluations, measured as
	// admissible (query, position) pairs — identical between the batched
	// and the per-query path by construction.
	PointEvals int64
	// Evals is RepEvals + PointEvals, kept as the total the experiments
	// report.
	Evals int64
	// Windows counts per-(query, segment) admissible windows shipped with
	// routed requests (16 bytes each; EarlyExit clusters only). Identical
	// between the batched and the per-query path, like the eval counters.
	Windows int64
	// EmptyWindows counts shipped windows that clipped to no positions
	// shard-side: the query's current k-th candidate ruled the whole
	// sorted segment out, so the scan was skipped entirely.
	EmptyWindows int64
	// SimTimeUS is the modeled latency: coordinator work plus the slowest
	// contacted shard's (transfer + scan + reply) path.
	SimTimeUS float64
	// FailedShards counts contacted shards whose answers never arrived
	// (networked transport under DegradePartial only — every other
	// configuration surfaces the failure as an error instead). A nonzero
	// count means the merged results may be missing neighbors held by
	// the failed shards.
	FailedShards int
}

// Add accumulates o into m (used for run totals).
func (m *QueryMetrics) Add(o QueryMetrics) {
	m.ShardsContacted += o.ShardsContacted
	m.Messages += o.Messages
	m.Bytes += o.Bytes
	m.RepEvals += o.RepEvals
	m.PointEvals += o.PointEvals
	m.Evals += o.Evals
	m.Windows += o.Windows
	m.EmptyWindows += o.EmptyWindows
	m.SimTimeUS += o.SimTimeUS
	m.FailedShards += o.FailedShards
}

// shard owns a contiguous group of representatives and their gathered
// ownership lists.
type shard struct {
	id       int
	dim      int
	ker      *metric.Kernel // exact grade — see the package comment
	reqs     chan shardRequest
	repIDs   []int32   // global database ids of owned representatives
	offsets  []int     // per-owned-rep segment offsets into ids/gather
	ids      []int32   // member database ids (gathered layout)
	isRep    []bool    // position → member is itself a representative
	gather   []float32 // member vectors
	segDists []float64 // position → ρ(member, owning rep); ascending per segment
}

// shardRequest carries one block of queries: qs holds len(segs) packed
// query vectors and segs lists the owned-representative segments each
// query must scan. bounds optionally carries, per query, the
// coordinator's current k-th candidate ordering (the rep-seeded heap's
// worst): candidates strictly beyond it cannot enter the merged result
// and are dropped shard-side. wins, present on EarlyExit clusters,
// carries the admissible windows [dLo, dHi] (in distance-to-
// representative space) as one flat pair sequence aligned with the
// concatenation of segs — wins[2p], wins[2p+1] belong to the p-th
// (query, segment) entry in segs iteration order; the shard clips each
// taker's scan range to its window through the sorted segment. The flat
// layout is one allocation per request instead of one per query (the
// windowed path used to carry ~2× the full-scan path's allocations).
// includeReps admits representative positions into the scan's results
// (broadcast mode); routed searches leave it false because the
// coordinator seeds every representative itself.
type shardRequest struct {
	qs          []float32
	segs        [][]int
	wins        []float64
	bounds      []float64
	k           int
	epoch       uint32 // shard-state generation the routing table was built for
	includeReps bool
	reply       chan shardReply
}

// shardReply carries per-query candidate sets in ORDERING space; the
// coordinator converts to true distances at the API boundary.
type shardReply struct {
	sid       int
	knn       [][]par.Neighbor // per query: up to k nearest candidates
	evals     int64
	emptyWins int64 // windows that clipped to no admissible positions
}

func (s *shard) serve() {
	for req := range s.reqs {
		req.reply <- s.scan(req)
	}
}

// scan answers one batched request: it inverts the request's
// (query, segment) pairs into per-segment taker sets (one counting
// sort), then scans each segment once for all its takers through
// core.GroupedScan. On windowed requests each taker's range is first
// clipped to its admissible window through the segment's sorted
// distance-to-representative column (core.AdmissibleWindow), so the
// grouped scan only touches positions that can still beat the query's
// current k-th candidate. Representatives are excluded unless
// includeReps is set, because the coordinator seeds every representative
// as a candidate (their distances are already paid for in phase 1);
// scanning them again would duplicate ids in the merged result set.
func (s *shard) scan(req shardRequest) shardReply {
	nq := len(req.segs)
	rep := shardReply{sid: s.id, knn: make([][]par.Neighbor, nq)}
	nseg := len(s.offsets) - 1
	sc := par.GetScratch()
	defer par.PutScratch(sc)
	ts := metric.GetTileScratch()
	defer metric.PutTileScratch(ts)
	heaps := sc.HeapSlab(nq, req.k)

	// Invert query → segments into segment → takers with a counting sort
	// so each segment is visited once per block. Windowed requests carry
	// the takers' window bounds along through the same inversion.
	counts := sc.Ints(4, nseg+1)
	for j := range counts {
		counts[j] = 0
	}
	total := 0
	for _, segs := range req.segs {
		total += len(segs)
		for _, seg := range segs {
			counts[seg+1]++
		}
	}
	for j := 0; j < nseg; j++ {
		counts[j+1] += counts[j]
	}
	takerFlat := sc.Ints(5, total)
	var winFlat []float64
	if req.wins != nil {
		winFlat = sc.Float64(0, 2*total)
	}
	wpos := 0
	for qi, segs := range req.segs {
		for _, seg := range segs {
			pos := counts[seg]
			takerFlat[pos] = qi
			if winFlat != nil {
				winFlat[2*pos] = req.wins[2*wpos]
				winFlat[2*pos+1] = req.wins[2*wpos+1]
			}
			wpos++
			counts[seg]++
		}
	}
	// counts[j] now marks the end of segment j's takers; the start is
	// counts[j-1] (0 for j == 0).

	var takers []int
	push := func(t, lo int, ords []float64) {
		qi := takers[t]
		bound := math.Inf(1)
		if req.bounds != nil {
			bound = req.bounds[qi]
		}
		h := heaps[qi]
		for p := lo; p < lo+len(ords); p++ {
			if s.isRep[p] && !req.includeReps {
				continue
			}
			if o := ords[p-lo]; o <= bound {
				h.Push(int(s.ids[p]), o)
			}
		}
	}
	start := 0
	for j := 0; j < nseg; j++ {
		segStart, end := start, counts[j]
		takers = takerFlat[segStart:end]
		start = end
		lo, hi := s.offsets[j], s.offsets[j+1]
		if len(takers) == 0 || lo == hi {
			if winFlat != nil && lo == hi {
				// Windows shipped for a zero-length segment (duplicate
				// representative) clip to nothing by definition; count
				// them so EmptyWindows means every shipped-but-futile
				// window, not just the binary-search misses below.
				rep.emptyWins += int64(len(takers))
			}
			continue // unrequested or empty segment
		}
		tWin := sc.Ints(1, 2*len(takers))
		if winFlat == nil {
			for t := range takers {
				tWin[2*t], tWin[2*t+1] = lo, hi
			}
		} else {
			// Clip each taker to its admissible window; takers whose
			// window is empty are dropped here, so a segment every taker
			// rules out costs nothing beyond the binary searches.
			kept := sc.Ints(0, len(takers))
			nKept := 0
			for t := range takers {
				a, b := core.AdmissibleWindow(s.segDists[lo:hi],
					winFlat[2*(segStart+t)], winFlat[2*(segStart+t)+1])
				if a >= b {
					rep.emptyWins++
					continue
				}
				kept[nKept] = takers[t]
				tWin[2*nKept], tWin[2*nKept+1] = lo+a, lo+b
				nKept++
			}
			if nKept == 0 {
				continue
			}
			takers = kept[:nKept]
		}
		rep.evals += core.GroupedScan(s.ker, req.qs, s.dim, s.gather,
			takers, tWin, len(takers), sc, ts, push)
	}
	for qi := 0; qi < nq; qi++ {
		rep.knn[qi] = heaps[qi].Results()
	}
	return rep
}

// Cluster is an RBC-sharded deployment. Build starts it on the
// in-process loopback transport (shard goroutines connected by
// channels); Distribute lifts the same cluster onto TCP shard processes
// without changing a single answer bit.
type Cluster struct {
	m    metric.Metric[[]float32]
	ker  *metric.Kernel // exact grade, shared by coordinator and shards
	dim  int
	cost CostModel

	// shards holds the in-process shard state. On loopback the shard
	// goroutines serve from it; Distribute ships it to the remote
	// processes and stops the goroutines but RETAINS the data — replica
	// repair (AddShardReplica) and Rebalance re-push it. Close frees it.
	shards    []*shard
	loads     []int // points held per shard
	segCounts []int // segments held per shard

	// epochs holds each shard's state generation, starting at 1. A
	// shard's epoch bumps exactly when its segment composition changes
	// (Rebalance); every routed scan carries its shard's epoch so a
	// stale replica rejects scans planned against a different layout.
	epochs []uint32

	// windowed enables the shard-side EarlyExit windows (set by Build
	// from core.ExactParams.EarlyExit; see the package comment).
	windowed bool

	// Coordinator state: the full representative set with radii, plus the
	// routing table rep → (shard, segment).
	repData  *vec.Dataset
	repIDs   []int
	radii    []float64
	repShard []int32
	repSeg   []int32

	// lifeMu serializes lifecycle transitions against in-flight queries:
	// entry points hold the read side across their whole fan-out, so
	// Close (write side) cannot tear the transport down under them —
	// the send-on-closed-channel panic the old Close had — and
	// query-after-Close gets ErrClusterClosed instead of a panic.
	lifeMu sync.RWMutex
	closed bool
	tr     transport
}

// Build constructs a cluster of `shards` shards over db. It builds a
// standard exact RBC and deals representatives round-robin (by descending
// list size, largest first) so shard loads balance. With prm.EarlyExit
// set, routed queries additionally ship per-(query, segment) admissible
// windows and shards clip their scans to them (see the package comment);
// answers are bit-identical either way.
func Build(db *vec.Dataset, m metric.Metric[[]float32], prm core.ExactParams, shards int, cost CostModel) (*Cluster, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("distributed: need at least one shard, got %d", shards)
	}
	if prm.ApproxEps > 0 {
		// The cluster's pruning and windows are exact-only: they use the
		// unrelaxed γ_k, so a (1+ε)-approximate build would silently do
		// more work than — and return different bits from — the
		// single-node Exact index with the same parameters, breaking the
		// bit-identity contract the package documents.
		return nil, fmt.Errorf("distributed: ApproxEps %v not supported; the cluster serves exact answers only", prm.ApproxEps)
	}
	idx, err := core.BuildExact(db, m, prm)
	if err != nil {
		return nil, err
	}
	nr := idx.NumReps()
	c := &Cluster{
		m: m, ker: metric.NewKernel(m), dim: db.Dim, cost: cost,
		windowed: prm.EarlyExit,
		repData:  db.Subset(idx.RepIDs()),
		repIDs:   idx.RepIDs(),
		radii:    idx.Radii(),
		repShard: make([]int32, nr),
		repSeg:   make([]int32, nr),
	}
	isRepID := make(map[int32]bool, nr)
	for _, id := range c.repIDs {
		isRepID[int32(id)] = true
	}
	// Longest-processing-time assignment: sort reps by list size
	// descending, place each on the currently lightest shard.
	sizes := idx.ListSizes()
	order := make([]int, nr)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return sizes[order[a]] > sizes[order[b]] })
	load := make([]int, shards)
	perShard := make([][]int, shards)
	for _, rep := range order {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		load[best] += sizes[rep]
		perShard[best] = append(perShard[best], rep)
	}
	// Materialize shards from the index's own point-to-representative
	// assignment, so shard segments hold exactly the lists the radii were
	// computed over. Each segment is sorted by ascending
	// (distance-to-representative, id) — the same order core.Exact keeps
	// its lists in — which is what makes the admissible windows a binary
	// search shard-side. Sorting is unconditional (full scans are
	// insertion-order independent through the bounded heaps), so windowed
	// and full-scan clusters hold byte-identical segment layouts.
	members, memberDists := assignment(db, c.repData, m)
	for sid := 0; sid < shards; sid++ {
		sh := &shard{id: sid, dim: db.Dim, ker: c.ker, reqs: make(chan shardRequest, 16)}
		sh.offsets = append(sh.offsets, 0)
		for seg, rep := range perShard[sid] {
			c.repShard[rep] = int32(sid)
			c.repSeg[rep] = int32(seg)
			sh.repIDs = append(sh.repIDs, int32(c.repIDs[rep]))
			segLo := len(sh.ids)
			sh.ids = append(sh.ids, members[rep]...)
			sh.segDists = append(sh.segDists, memberDists[rep]...)
			core.SortSegment(sh.ids[segLo:], sh.segDists[segLo:])
			for _, id := range sh.ids[segLo:] {
				sh.isRep = append(sh.isRep, isRepID[id])
				sh.gather = append(sh.gather, db.Row(int(id))...)
			}
			sh.offsets = append(sh.offsets, len(sh.ids))
		}
		if !c.windowed {
			// The sort keys are only read back by the windowed clip; a
			// full-scan cluster ships no windows, so drop them rather
			// than carry 8 dead bytes per point for the cluster's life.
			sh.segDists = nil
		}
		c.shards = append(c.shards, sh)
		c.loads = append(c.loads, len(sh.ids))
		c.segCounts = append(c.segCounts, len(sh.offsets)-1)
		c.epochs = append(c.epochs, 1)
		go sh.serve()
	}
	c.tr = &loopback{shards: c.shards}
	return c, nil
}

// assignment recomputes each database point's owning representative with
// the same tiled BF(X,R) call BuildExact uses, so membership (including
// razor-tie assignments) is bit-identical to the index's own lists and
// the coordinator's radii bound every shard segment correctly. The
// returned distances are the same BF(X,R) values (true-distance form),
// reused as the segments' sort keys and window search column.
func assignment(db, repData *vec.Dataset, m metric.Metric[[]float32]) ([][]int32, [][]float64) {
	members := make([][]int32, repData.N())
	dists := make([][]float64, repData.N())
	for i, r := range bruteforce.Search(db, repData, m, nil) {
		members[r.ID] = append(members[r.ID], int32(i))
		dists[r.ID] = append(dists[r.ID], r.Dist)
	}
	return members, dists
}

// NumShards reports the cluster size.
func (c *Cluster) NumShards() int { return len(c.loads) }

// ShardLoads returns the number of database points held per shard.
func (c *Cluster) ShardLoads() []int {
	out := make([]int, len(c.loads))
	copy(out, c.loads)
	return out
}

const float32Bytes = 4
const resultBytes = 16 // id + distance + framing
const boundBytes = 8   // per-query pruning bound shipped with routed requests

// WindowBytes is the wire size of one per-(query, segment) admissible
// window — two float64 bounds. QueryMetrics.Bytes accounts
// QueryMetrics.Windows × WindowBytes of window traffic; consumers
// reporting window overhead should derive from this constant.
const WindowBytes = 16

// shardBatch accumulates one shard's slice of a query block: which
// global queries it serves, per query which segments to scan, and — on
// windowed clusters — each segment's admissible window, stored as one
// flat [dLo, dHi] pair sequence aligned with the concatenation of segs
// (one backing array per shard per block).
type shardBatch struct {
	qidx []int
	segs [][]int
	wins []float64
}

// add appends segment seg of query qi (queries arrive in ascending
// order, so the last entry check suffices). win is nil for full scans,
// or the segment's two-element [dLo, dHi] admissible window; a batch
// must be fed uniformly (all-nil or all-windowed).
func (sb *shardBatch) add(qi, seg int, win []float64) {
	if n := len(sb.qidx); n == 0 || sb.qidx[n-1] != qi {
		sb.qidx = append(sb.qidx, qi)
		sb.segs = append(sb.segs, nil)
	}
	last := len(sb.segs) - 1
	sb.segs[last] = append(sb.segs[last], seg)
	if win != nil {
		sb.wins = append(sb.wins, win[0], win[1])
	}
}

// Query answers one query with RBC routing: the coordinator prunes
// representatives exactly as the single-machine exact search does, then
// contacts only the shards owning survivors. It is QueryBatch on a
// one-query block.
func (c *Cluster) Query(q []float32) (core.Result, QueryMetrics, error) {
	res, met, err := c.QueryBatch(vec.FromFlat(q, len(q)))
	if err != nil {
		return core.Result{ID: -1, Dist: math.Inf(1)}, met, err
	}
	return res[0], met, nil
}

// KNN answers one k-NN query; it is KNNBatch on a one-query block and
// bit-identical to the query's row in any batched call.
func (c *Cluster) KNN(q []float32, k int) ([]par.Neighbor, QueryMetrics, error) {
	nbs, met, err := c.KNNBatch(vec.FromFlat(q, len(q)), k)
	if err != nil {
		return nil, met, err
	}
	return nbs[0], met, nil
}

// QueryBatch answers a block of 1-NN queries with batched shard fan-out.
// It is KNNBatch at k = 1, where the pruning bounds degenerate to the
// paper's exact-search rules (γ_k = γ_1, 2γ_k + γ_1 = 3γ).
func (c *Cluster) QueryBatch(queries *vec.Dataset) ([]core.Result, QueryMetrics, error) {
	nbs, met, err := c.KNNBatch(queries, 1)
	if err != nil {
		return nil, met, err
	}
	out := make([]core.Result, len(nbs))
	for i, nb := range nbs {
		if len(nb) == 0 {
			out[i] = core.Result{ID: -1, Dist: math.Inf(1)}
			continue
		}
		out[i] = core.Result{ID: nb[0].ID, Dist: nb[0].Dist}
	}
	return out, met, nil
}

// KNNBatch answers a block of k-NN queries with batched shard fan-out.
// The pruning generalizes the exact-search bounds to k neighbors exactly
// as the single-machine index does (see Exact.one): with γ_k the k-th
// smallest representative distance, rule (1) discards representatives
// with ρ(q,r) ≥ γ_k + ψ_r and rule (2) those with ρ(q,r) > 2γ_k + γ_1.
// Every representative is seeded as a candidate (they are database
// points whose distances are already paid for), which keeps the result
// multiset exact at pruning-boundary ties; shards skip representatives
// during their scans in exchange. The merge runs in ordering space, so
// results are bit-identical to core.Exact and to per-query KNN calls
// (see the package comment for the contract).
//
// On a networked cluster a shard that stays unreachable after the
// transport's retry budget either fails the whole batch with a typed
// *ShardError (DegradeFailFast, the default) or is skipped with the
// miss accounted in QueryMetrics.FailedShards (DegradePartial). After
// Close every call returns ErrClusterClosed.
func (c *Cluster) KNNBatch(queries *vec.Dataset, k int) ([][]par.Neighbor, QueryMetrics, error) {
	nq := queries.N()
	out := make([][]par.Neighbor, nq)
	var met QueryMetrics
	if nq == 0 || k <= 0 {
		return out, met, nil
	}
	c.checkDim(queries.Dim)
	c.lifeMu.RLock()
	defer c.lifeMu.RUnlock()
	if c.closed {
		return nil, met, ErrClusterClosed
	}
	heaps, bounds, batches := c.plan(queries, k, &met)
	err := c.finish(queries, k, batches, bounds, false, &met, func(rp shardReply, qidx []int) {
		for t, qi := range qidx {
			for _, nb := range rp.knn[t] {
				heaps[qi].Push(nb.ID, nb.Dist)
			}
		}
	})
	if err != nil {
		return nil, met, err
	}
	for i, h := range heaps {
		out[i] = c.toNeighbors(h)
	}
	return out, met, nil
}

// plan runs the coordinator phase over a query block: the shared tiled
// exact BF(Q,R) front half (core.TileFrontHalf, the same hook Exact's
// batch paths ride) in ordering space, per-query pruning-bound
// computation in distance space (their triangle-inequality derivations
// add real distances), heap seeding with every representative, and the
// survivor → (shard, segment) routing table. It returns the per-query
// candidate heaps (ordering space), the per-query shard-side pruning
// bound (the seeded heap's worst ordering, +Inf while not full), and the
// per-shard batches. On windowed clusters each surviving segment also
// gets its admissible window [ρ(q,r)−w, ρ(q,r)+w] attached, with w the
// true-distance form of the seeded heap's worst — exactly the d±w
// arithmetic Exact's EarlyExit path runs, so shard-side windows clip the
// same admissible sets the single-node index scans.
func (c *Cluster) plan(queries *vec.Dataset, k int, met *QueryMetrics) ([]*par.KHeap, []float64, []shardBatch) {
	nq := queries.N()
	nr := c.repData.N()
	heaps := make([]*par.KHeap, nq)
	bounds := make([]float64, nq)
	// Survivor lists and their admissible windows live in one block-level
	// pooled slab — per-query segments of width nr (2·nr for the window
	// pairs), written concurrently by the front-half workers on disjoint
	// ranges and read back once while building the shard batches below.
	// This Scratch belongs to plan, not to any front-half worker (those
	// pull their own instances), so the slabs stay live across the whole
	// block; pooling them removes the per-query survivor/window append
	// allocations that made the windowed path carry ~2× the full-scan
	// path's allocations.
	psc := par.GetScratch()
	defer par.PutScratch(psc)
	survAll := psc.Ints(0, nq*nr)
	survN := psc.Ints(1, nq)
	var winsAll []float64
	if c.windowed {
		winsAll = psc.Float64(0, 2*nq*nr)
	}
	kk := k
	if kk > nr {
		kk = nr
	}
	st := core.TileFrontHalf(c.ker, queries, c.repData, nil,
		func(qi int, ords []float64, sc *par.Scratch, _ *metric.TileScratch) core.Stats {
			dists := sc.Float64(0, nr)
			for j, o := range ords {
				dists[j] = c.ker.ToDistance(o)
			}
			sel := sc.Heap(1, kk)
			for j, d := range dists {
				sel.Push(j, d)
			}
			best, _ := sel.Best()
			gamma1 := best.Dist
			gammaK := math.Inf(1)
			if w, full := sel.Worst(); full && k <= nr {
				gammaK = w
			}
			tripleBound := 2*gammaK + gamma1
			h := par.NewKHeap(k)
			for j := range ords {
				h.Push(c.repIDs[j], ords[j])
			}
			heaps[qi] = h
			bounds[qi] = math.Inf(1)
			if w, full := h.Worst(); full {
				bounds[qi] = w
			}
			winW := math.Inf(1)
			if c.windowed && !math.IsInf(bounds[qi], 1) {
				winW = c.ker.ToDistance(bounds[qi])
			}
			surv := survAll[qi*nr : (qi+1)*nr]
			var wins []float64
			if c.windowed {
				wins = winsAll[2*qi*nr : 2*(qi+1)*nr]
			}
			cnt := 0
			for j := 0; j < nr; j++ {
				if dists[j] >= gammaK+c.radii[j] {
					continue
				}
				if !math.IsInf(tripleBound, 1) && dists[j] > tripleBound {
					continue
				}
				surv[cnt] = j
				if c.windowed {
					wins[2*cnt] = dists[j] - winW
					wins[2*cnt+1] = dists[j] + winW
				}
				cnt++
			}
			survN[qi] = cnt
			return core.Stats{RepEvals: int64(nr)}
		})
	met.RepEvals += st.RepEvals
	met.Evals += st.RepEvals
	batches := make([]shardBatch, len(c.segCounts))
	for i := 0; i < nq; i++ {
		base := i * nr
		for si := 0; si < survN[i]; si++ {
			j := survAll[base+si]
			var win []float64
			if winsAll != nil {
				win = winsAll[2*(base+si) : 2*(base+si)+2]
			}
			batches[c.repShard[j]].add(i, int(c.repSeg[j]), win)
		}
	}
	return heaps, bounds, batches
}

// toNeighbors extracts a heap's candidates sorted ascending, converting
// ordering distances at the boundary and re-sorting in distance space
// (the conversion can map distinct ordering values to equal distances) —
// the same finish core.Exact applies.
func (c *Cluster) toNeighbors(h *par.KHeap) []par.Neighbor {
	res := h.Results()
	for i := range res {
		res[i].Dist = c.ker.ToDistance(res[i].Dist)
	}
	par.SortNeighbors(res)
	return res
}

// QueryBroadcast answers one query the brute-force way: every shard scans
// everything it holds, representatives included (the coordinator's
// representative knowledge is deliberately unused). The baseline for the
// §8 experiments.
func (c *Cluster) QueryBroadcast(q []float32) (core.Result, QueryMetrics, error) {
	var met QueryMetrics
	best := par.Neighbor{ID: -1, Dist: math.Inf(1)}
	batches := make([]shardBatch, len(c.segCounts))
	for sid, nseg := range c.segCounts {
		for seg := 0; seg < nseg; seg++ {
			batches[sid].add(0, seg, nil)
		}
	}
	queries := vec.FromFlat(q, len(q))
	c.checkDim(queries.Dim)
	c.lifeMu.RLock()
	defer c.lifeMu.RUnlock()
	if c.closed {
		return core.Result{ID: -1, Dist: math.Inf(1)}, met, ErrClusterClosed
	}
	err := c.finish(queries, 1, batches, nil, true, &met, func(rp shardReply, qidx []int) {
		if len(rp.knn[0]) == 0 {
			return
		}
		nb := rp.knn[0][0]
		if nb.Dist < best.Dist || (nb.Dist == best.Dist && nb.ID < best.ID) {
			best = nb
		}
	})
	if err != nil {
		return core.Result{ID: -1, Dist: math.Inf(1)}, met, err
	}
	if best.ID < 0 {
		return core.Result{ID: -1, Dist: math.Inf(1)}, met, nil
	}
	return core.Result{ID: best.ID, Dist: c.ker.ToDistance(best.Dist)}, met, nil
}

// finish fans a query block out to the shards with work, merges answers
// through sink and fills in the cost model. Per contacted shard it
// accounts one request and one response message, the packed query
// vectors (plus pruning bounds and — on windowed clusters — the
// per-(query, segment) admissible windows, 16 bytes each) out and k
// results per query back.
//
// Fan-out runs one goroutine per contacted shard through the installed
// transport (loopback channels or TCP); sink runs only on the collector
// goroutine, so merge state needs no locking. A shard the transport
// gives up on either fails the batch (DegradeFailFast: first error
// wins, returned after all replies drain) or is skipped with the miss
// counted in met.FailedShards (DegradePartial). The caller holds
// c.lifeMu.RLock, so the transport cannot be closed mid-flight.
func (c *Cluster) finish(queries *vec.Dataset, k int, batches []shardBatch, bounds []float64, includeReps bool, met *QueryMetrics, sink func(rp shardReply, qidx []int)) error {
	type scanResult struct {
		sid int
		rp  shardReply
		err error
	}
	results := make(chan scanResult, len(batches))
	queryBytes := c.dim*float32Bytes + 16
	if bounds != nil {
		queryBytes += boundBytes
	}
	contacted := 0
	shardBytes := make([]int, len(batches))
	for sid := range batches {
		sb := &batches[sid]
		if len(sb.qidx) == 0 {
			continue
		}
		qs := make([]float32, len(sb.qidx)*c.dim)
		var bs []float64
		if bounds != nil {
			bs = make([]float64, len(sb.qidx))
		}
		for t, qi := range sb.qidx {
			copy(qs[t*c.dim:(t+1)*c.dim], queries.Row(qi))
			if bs != nil {
				bs[t] = bounds[qi]
			}
		}
		req := &shardRequest{qs: qs, segs: sb.segs, wins: sb.wins, bounds: bs, k: k, epoch: c.epochs[sid], includeReps: includeReps}
		go func(sid int, req *shardRequest) {
			rp, err := c.tr.scan(sid, req)
			results <- scanResult{sid: sid, rp: rp, err: err}
		}(sid, req)
		contacted++
		shardBytes[sid] = len(sb.qidx) * (queryBytes + k*resultBytes)
		if sb.wins != nil {
			nwins := len(sb.wins) / 2
			shardBytes[sid] += nwins * WindowBytes
			met.Windows += int64(nwins)
		}
		met.ShardsContacted++
		met.Messages += 2 // request + response
		met.Bytes += shardBytes[sid]
	}
	var slowest float64
	var firstErr error
	failed := 0
	for r := 0; r < contacted; r++ {
		res := <-results
		if res.err != nil {
			failed++
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		rp := res.rp
		met.PointEvals += rp.evals
		met.Evals += rp.evals
		met.EmptyWindows += rp.emptyWins
		sink(rp, batches[res.sid].qidx)
		// Per-shard critical path: request latency + transfer + scan +
		// response latency. The slowest contacted shard dominates.
		transferUS := float64(shardBytes[res.sid]) / (c.cost.BandwidthMBps * 1e6) * 1e6
		scanUS := float64(rp.evals) * c.cost.EvalNS / 1000
		if t := 2*c.cost.LatencyUS + transferUS + scanUS; t > slowest {
			slowest = t
		}
	}
	met.SimTimeUS += slowest
	if failed > 0 {
		if c.tr.degrade() == DegradePartial {
			met.FailedShards += failed
			return nil
		}
		return firstErr
	}
	return nil
}

func (c *Cluster) checkDim(dim int) {
	if dim != c.dim {
		panic(fmt.Sprintf("distributed: query dim %d does not match database dim %d", dim, c.dim))
	}
}

// Distribute lifts the cluster onto real TCP shard processes, one
// replica per shard (addrs[i] serves shard i). It is DistributeReplicas
// with single-replica sets; see there for the contract.
func (c *Cluster) Distribute(addrs []string, opts TCPOptions) error {
	assignment := make([][]string, len(addrs))
	for i, a := range addrs {
		assignment[i] = []string{a}
	}
	return c.DistributeReplicas(assignment, opts)
}

// DistributeReplicas lifts the cluster onto real TCP shard processes
// with replication: assignment[i] is shard i's ordered replica set, and
// every replica receives the shard's full state (MsgLoad, stamped with
// the shard's current epoch). Once every replica of every shard has
// acknowledged, the transport swaps over; the in-process shard
// goroutines stop but their data is retained so AddShardReplica and
// Rebalance can re-push it later. The gathered layouts cross the wire
// bit-exactly, every replica of a shard holds identical state, and the
// remote scan path is the same shard.scan code — so answers after
// DistributeReplicas are bit-identical to before, whichever replica
// serves them.
//
// On any load failure the cluster is left untouched on the loopback
// transport and the error (a typed *ShardError naming the replica) is
// returned. The lift is one-way: a second call returns an error.
func (c *Cluster) DistributeReplicas(assignment [][]string, opts TCPOptions) error {
	c.lifeMu.Lock()
	defer c.lifeMu.Unlock()
	if c.closed {
		return ErrClusterClosed
	}
	if _, ok := c.tr.(*loopback); !ok {
		return fmt.Errorf("distributed: cluster already distributed")
	}
	if len(assignment) != len(c.shards) {
		return fmt.Errorf("distributed: %d replica sets for %d shards", len(assignment), len(c.shards))
	}
	for sid, addrs := range assignment {
		if len(addrs) == 0 {
			return fmt.Errorf("distributed: shard %d has an empty replica set", sid)
		}
	}
	spec, err := wire.SpecFor(c.m)
	if err != nil {
		return err
	}
	tt := newTCPTransport(c.dim, assignment, opts)
	for sid, sh := range c.shards {
		if err := tt.load(sid, wire.EncodeShardState(stateOf(sh, spec, c.epochs[sid]))); err != nil {
			tt.close()
			return err
		}
	}
	c.tr.close()
	c.tr = tt
	return nil
}

// ShardReplicas returns each shard's current ordered replica address
// set, or nil while the cluster runs on the in-process loopback
// transport.
func (c *Cluster) ShardReplicas() [][]string {
	c.lifeMu.RLock()
	defer c.lifeMu.RUnlock()
	tt, ok := c.tr.(*tcpTransport)
	if !ok {
		return nil
	}
	out := make([][]string, len(tt.sets))
	for i, rs := range tt.sets {
		for _, r := range rs.replicas {
			out[i] = append(out[i], r.addr)
		}
	}
	return out
}

// RepAssignment returns the current representative→shard assignment:
// element rep is the shard owning representative rep's segment. The
// slice is a fresh copy in exactly the shape Rebalance accepts, so a
// caller can edit it and hand it back.
func (c *Cluster) RepAssignment() []int {
	c.lifeMu.RLock()
	defer c.lifeMu.RUnlock()
	out := make([]int, len(c.repIDs))
	for rep := range out {
		out[rep] = int(c.repShard[rep])
	}
	return out
}

// AddShardReplica attaches one more replica to a distributed shard: the
// shard's retained state is pushed to addr at the shard's CURRENT epoch
// (the segment composition is unchanged, so no epoch bump — the new
// replica immediately serves the same scans as its peers), and on ack
// the replica joins the end of the shard's ordered set. On a load
// failure the set is left untouched and the error names the replica.
func (c *Cluster) AddShardReplica(sid int, addr string) error {
	c.lifeMu.Lock()
	defer c.lifeMu.Unlock()
	if c.closed {
		return ErrClusterClosed
	}
	tt, ok := c.tr.(*tcpTransport)
	if !ok {
		return fmt.Errorf("distributed: cluster is not distributed; replicas exist only on the networked transport")
	}
	if sid < 0 || sid >= len(tt.sets) {
		return fmt.Errorf("distributed: no shard %d (cluster has %d)", sid, len(tt.sets))
	}
	spec, err := wire.SpecFor(c.m)
	if err != nil {
		return err
	}
	r := tt.newReplica(sid, addr)
	if err := tt.loadReplica(r, wire.EncodeShardState(stateOf(c.shards[sid], spec, c.epochs[sid]))); err != nil {
		r.drain()
		return err
	}
	tt.sets[sid].replicas = append(tt.sets[sid].replicas, r)
	return nil
}

// RemoveShardReplica detaches one replica from a distributed shard's
// set and closes its pooled connections. A shard always keeps at least
// one replica: removing the last one is refused. The remote process is
// not stopped — like Close, this only forgets the replica.
func (c *Cluster) RemoveShardReplica(sid int, addr string) error {
	c.lifeMu.Lock()
	defer c.lifeMu.Unlock()
	if c.closed {
		return ErrClusterClosed
	}
	tt, ok := c.tr.(*tcpTransport)
	if !ok {
		return fmt.Errorf("distributed: cluster is not distributed; replicas exist only on the networked transport")
	}
	if sid < 0 || sid >= len(tt.sets) {
		return fmt.Errorf("distributed: no shard %d (cluster has %d)", sid, len(tt.sets))
	}
	rs := tt.sets[sid]
	for i, r := range rs.replicas {
		if r.addr != addr {
			continue
		}
		if len(rs.replicas) == 1 {
			return fmt.Errorf("distributed: refusing to remove %s: it is shard %d's last replica", addr, sid)
		}
		r.drain()
		rs.replicas = append(append([]*tcpShard(nil), rs.replicas[:i]...), rs.replicas[i+1:]...)
		return nil
	}
	return fmt.Errorf("distributed: shard %d has no replica %s", sid, addr)
}

// Rebalance moves representatives (and their gathered segments) between
// the cluster's existing shards: newAssign[rep] names the shard that
// will own representative rep afterwards. Only shards whose segment
// composition actually changes are touched — each rebuilds its gathered
// layout from the retained segment data (stayers keep their relative
// segment order, arrivals append in ascending representative order) and
// bumps its epoch.
//
// On a networked cluster every replica of every affected shard receives
// the new state (MsgLoad at the next epoch) BEFORE any routing changes;
// if a push fails, the old states are re-pushed best-effort and the
// cluster keeps its previous assignment. Only after every replica has
// acknowledged does the routing table cut over — atomically from a
// query's point of view, because queries hold the lifecycle read lock
// across their whole fan-out and Rebalance holds the write side (taking
// it drains in-flight fan-out on the old table). Answers are
// bit-identical before, during and after: segments cross shards
// byte-for-byte, every kernel stays exact grade, and the merge never
// depends on which shard scanned a segment.
func (c *Cluster) Rebalance(newAssign []int) error {
	c.lifeMu.Lock()
	defer c.lifeMu.Unlock()
	if c.closed {
		return ErrClusterClosed
	}
	nr := len(c.repIDs)
	if len(newAssign) != nr {
		return fmt.Errorf("distributed: %d assignments for %d representatives", len(newAssign), nr)
	}
	nshard := len(c.loads)
	for rep, sid := range newAssign {
		if sid < 0 || sid >= nshard {
			return fmt.Errorf("distributed: representative %d assigned to shard %d (cluster has %d)", rep, sid, nshard)
		}
	}
	// Current per-shard rep lists in segment order, then the new lists:
	// stayers first in their old relative order, movers appended in
	// ascending rep order. A shard whose list is unchanged keeps its
	// exact layout and epoch.
	oldPerShard := make([][]int, nshard)
	for sid := range oldPerShard {
		oldPerShard[sid] = make([]int, c.segCounts[sid])
	}
	for rep := 0; rep < nr; rep++ {
		oldPerShard[c.repShard[rep]][c.repSeg[rep]] = rep
	}
	newPerShard := make([][]int, nshard)
	for sid, reps := range oldPerShard {
		for _, rep := range reps {
			if newAssign[rep] == sid {
				newPerShard[sid] = append(newPerShard[sid], rep)
			}
		}
	}
	for rep := 0; rep < nr; rep++ {
		if sid := newAssign[rep]; sid != int(c.repShard[rep]) {
			newPerShard[sid] = append(newPerShard[sid], rep)
		}
	}
	var affected []int
	for sid := range newPerShard {
		if !equalInts(newPerShard[sid], oldPerShard[sid]) {
			affected = append(affected, sid)
		}
	}
	if len(affected) == 0 {
		return nil
	}
	// Rebuild every affected shard from the retained segment data before
	// touching any live state.
	newShards := make(map[int]*shard, len(affected))
	for _, sid := range affected {
		newShards[sid] = c.buildShard(sid, newPerShard[sid])
	}
	// Networked: push the new states (next epoch) to every replica
	// first. Until the cutover below, scans keep routing on the OLD
	// table with OLD epochs — a replica that already loaded the new
	// state rejects them (stale epoch), which failover treats as that
	// replica being down; correctness never depends on the push order.
	// No scans are actually in flight here (we hold the write lock), so
	// in practice the window is empty.
	if tt, ok := c.tr.(*tcpTransport); ok {
		spec, err := wire.SpecFor(c.m)
		if err != nil {
			return err
		}
		var pushed []int
		var pushErr error
		for _, sid := range affected {
			st := stateOf(newShards[sid], spec, c.epochs[sid]+1)
			if err := tt.load(sid, wire.EncodeShardState(st)); err != nil {
				pushErr = err
				break
			}
			pushed = append(pushed, sid)
		}
		if pushErr != nil {
			// Best-effort rollback: re-push the old states at their old
			// epochs so already-updated replicas serve the assignment the
			// cluster keeps using.
			for _, sid := range pushed {
				_ = tt.load(sid, wire.EncodeShardState(stateOf(c.shards[sid], spec, c.epochs[sid])))
			}
			return pushErr
		}
	}
	// Cutover. On loopback the affected shards get fresh serve
	// goroutines and the old ones stop; either way the routing table,
	// shard data and epochs swap while no query runs.
	if lb, ok := c.tr.(*loopback); ok {
		for _, sid := range affected {
			sh := newShards[sid]
			sh.reqs = make(chan shardRequest, 16)
			go sh.serve()
			close(c.shards[sid].reqs)
			lb.shards[sid] = sh
		}
	}
	for _, sid := range affected {
		c.shards[sid] = newShards[sid]
		c.epochs[sid]++
		c.loads[sid] = len(newShards[sid].ids)
		c.segCounts[sid] = len(newShards[sid].offsets) - 1
	}
	for sid, reps := range newPerShard {
		for seg, rep := range reps {
			c.repShard[rep] = int32(sid)
			c.repSeg[rep] = int32(seg)
		}
	}
	return nil
}

// buildShard assembles a replacement shard holding reps' segments, in
// order, copied out of the shards that currently own them. Segment
// bytes move verbatim (ids, rep flags, gathered vectors, and — on
// windowed clusters — the sorted distance-to-representative columns),
// so a moved segment scans identically wherever it lives.
func (c *Cluster) buildShard(sid int, reps []int) *shard {
	sh := &shard{id: sid, dim: c.dim, ker: c.ker}
	sh.offsets = append(sh.offsets, 0)
	for _, rep := range reps {
		src := c.shards[c.repShard[rep]]
		seg := int(c.repSeg[rep])
		lo, hi := src.offsets[seg], src.offsets[seg+1]
		sh.repIDs = append(sh.repIDs, int32(c.repIDs[rep]))
		sh.ids = append(sh.ids, src.ids[lo:hi]...)
		sh.isRep = append(sh.isRep, src.isRep[lo:hi]...)
		sh.gather = append(sh.gather, src.gather[lo*c.dim:hi*c.dim]...)
		if c.windowed {
			sh.segDists = append(sh.segDists, src.segDists[lo:hi]...)
		}
		sh.offsets = append(sh.offsets, len(sh.ids))
	}
	return sh
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NetStats returns per-shard transport counters (request/retry/failure
// counts, bytes moved, summed RTT). It returns nil while the cluster
// runs on the in-process loopback transport.
func (c *Cluster) NetStats() []ShardNetStats {
	c.lifeMu.RLock()
	defer c.lifeMu.RUnlock()
	if c.closed {
		return nil
	}
	return c.tr.netStats()
}

// Close shuts down the transport (loopback shard goroutines, or the TCP
// connection pools). It waits for in-flight queries to drain first, and
// every query entry point afterwards returns ErrClusterClosed. Close is
// idempotent. Remote rbc-shard processes are NOT stopped — they belong
// to their own lifecycle.
func (c *Cluster) Close() {
	c.lifeMu.Lock()
	defer c.lifeMu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.tr.close()
	c.shards = nil
}
