package distributed

// Rebalance and replica-lifecycle tests (PR 10): segment moves between
// shards must never change an answer bit — loopback and networked alike
// — stale replicas must reject post-cutover scans, and replica
// add/remove must repair and shrink sets online.

import (
	"errors"
	"math"
	"math/rand"
	"net"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/distributed/wire"
	"repro/internal/metric"
)

// rotateAssign moves every representative to the next shard — every
// shard's composition changes.
func rotateAssign(c *Cluster) []int {
	newAssign := make([]int, len(c.repIDs))
	for rep := range newAssign {
		newAssign[rep] = (int(c.repShard[rep]) + 1) % c.NumShards()
	}
	return newAssign
}

// TestRebalanceLoopbackBitIdentical: rotating every segment across the
// in-process shards preserves bit-identity with the pre-rebalance
// answers and with core.Exact, windowed and full-scan alike, and the
// load accounting follows the segments.
func TestRebalanceLoopbackBitIdentical(t *testing.T) {
	const shards, k = 3, 6
	for _, earlyExit := range []bool{false, true} {
		rng := rand.New(rand.NewSource(501))
		db := clustered(rng, 900, 6, 8)
		queries := clustered(rng, 48, 6, 8)
		prm := core.ExactParams{Seed: 503, EarlyExit: earlyExit}
		cl, err := Build(db, metric.Euclidean{}, prm, shards, DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		idx, err := core.BuildExact(db, metric.Euclidean{}, prm)
		if err != nil {
			t.Fatal(err)
		}
		want, wantMet, err := cl.KNNBatch(queries, k)
		if err != nil {
			t.Fatal(err)
		}
		loadsBefore := cl.ShardLoads()
		if err := cl.Rebalance(rotateAssign(cl)); err != nil {
			t.Fatalf("Rebalance: %v", err)
		}
		got, gotMet, err := cl.KNNBatch(queries, k)
		if err != nil {
			t.Fatalf("KNNBatch after Rebalance: %v", err)
		}
		wantExact, _ := idx.KNNBatch(queries, k)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("earlyExit=%v query %d pos %d: %+v vs pre-rebalance %+v", earlyExit, i, j, got[i][j], want[i][j])
				}
				if got[i][j].ID != wantExact[i][j].ID ||
					math.Float64bits(got[i][j].Dist) != math.Float64bits(wantExact[i][j].Dist) {
					t.Fatalf("earlyExit=%v query %d pos %d: %+v vs exact %+v", earlyExit, i, j, got[i][j], wantExact[i][j])
				}
			}
		}
		// Work counters are layout-independent: the same segments are
		// scanned, just by different shards.
		if gotMet.PointEvals != wantMet.PointEvals || gotMet.Windows != wantMet.Windows ||
			gotMet.EmptyWindows != wantMet.EmptyWindows {
			t.Fatalf("earlyExit=%v: work diverged after rebalance: %+v vs %+v", earlyExit, gotMet, wantMet)
		}
		// A full rotation moves every point; total load is conserved.
		loadsAfter := cl.ShardLoads()
		tb, ta := 0, 0
		for s := 0; s < shards; s++ {
			tb += loadsBefore[s]
			ta += loadsAfter[s]
		}
		if tb != ta {
			t.Fatalf("points lost in rebalance: %d before, %d after", tb, ta)
		}
		for s := range cl.epochs {
			if cl.epochs[s] != 2 {
				t.Fatalf("shard %d epoch %d after full rotation, want 2", s, cl.epochs[s])
			}
		}
	}
}

// TestRebalanceDrainToOneShard: an extreme rebalance — everything onto
// shard 0 — leaves the emptied shards servable (zero segments) and the
// answers untouched.
func TestRebalanceDrainToOneShard(t *testing.T) {
	cl, db, queries := buildSmall(t, 509, 3, true)
	idx, err := core.BuildExact(db, metric.Euclidean{}, core.ExactParams{Seed: 509, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	drain := make([]int, len(cl.repIDs))
	if err := cl.Rebalance(drain); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	loads := cl.ShardLoads()
	if loads[1] != 0 || loads[2] != 0 {
		t.Fatalf("drained shards still loaded: %v", loads)
	}
	got, _, err := cl.KNNBatch(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := idx.KNNBatch(queries, 5)
	for i := range want {
		for j := range want[i] {
			if got[i][j].ID != want[i][j].ID ||
				math.Float64bits(got[i][j].Dist) != math.Float64bits(want[i][j].Dist) {
				t.Fatalf("query %d pos %d: %+v vs exact %+v", i, j, got[i][j], want[i][j])
			}
		}
	}
	// Broadcast still works across empty shards.
	if _, _, err := cl.QueryBroadcast(queries.Row(0)); err != nil {
		t.Fatalf("broadcast after drain: %v", err)
	}
}

// TestRebalanceTCPBitIdentical: the same rotation against replicated
// real ShardServers — every replica re-loads at the new epoch, answers
// stay bit-identical to the loopback twin, and epochs bump exactly once
// per affected shard.
func TestRebalanceTCPBitIdentical(t *testing.T) {
	const shards, k = 3, 6
	rng := rand.New(rand.NewSource(521))
	db := clustered(rng, 900, 6, 8)
	queries := clustered(rng, 48, 6, 8)
	prm := core.ExactParams{Seed: 523, EarlyExit: true}
	loop, err := Build(db, metric.Euclidean{}, prm, shards, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()
	netCl, err := Build(db, metric.Euclidean{}, prm, shards, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer netCl.Close()
	addrs, _ := startShardServers(t, 2*shards)
	assignment := make([][]string, shards)
	for s := 0; s < shards; s++ {
		assignment[s] = []string{addrs[2*s], addrs[2*s+1]}
	}
	if err := netCl.DistributeReplicas(assignment, fastOpts()); err != nil {
		t.Fatalf("DistributeReplicas: %v", err)
	}
	want, _, err := loop.KNNBatch(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		got, met, err := netCl.KNNBatch(queries, k)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if met.FailedShards != 0 {
			t.Fatalf("%s: %d failed shards", stage, met.FailedShards)
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("%s: query %d pos %d: %+v vs %+v", stage, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
	check("before rebalance")
	newAssign := rotateAssign(netCl)
	if err := netCl.Rebalance(newAssign); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	check("after rebalance")
	for s, e := range netCl.epochs {
		if e != 2 {
			t.Fatalf("shard %d epoch %d, want 2", s, e)
		}
	}
	// The rotated-back cluster must also agree (exercises a second epoch
	// bump and the stayer-order bookkeeping).
	back := make([]int, len(newAssign))
	for rep, sid := range newAssign {
		back[rep] = (sid + shards - 1) % shards
	}
	if err := netCl.Rebalance(back); err != nil {
		t.Fatalf("second Rebalance: %v", err)
	}
	check("after rotating back")
}

// TestStaleReplicaRejectsScan: a replica that missed a rebalance (or a
// scan planned before one) answers MsgErr, never stale data. Probed at
// the wire level so the refusal itself is asserted, not just failover
// hiding it.
func TestStaleReplicaRejectsScan(t *testing.T) {
	cl, _, _ := buildSmall(t, 541, 1, false)
	addrs, _ := startShardServers(t, 1)
	if err := cl.Distribute(addrs, fastOpts()); err != nil {
		t.Fatal(err)
	}
	// The server holds epoch 1. A scan stamped with a different epoch
	// must be refused.
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := &wire.ScanRequest{Dim: cl.dim, K: 1, Epoch: 99,
		Qs: make([]float32, cl.dim), Segs: [][]int{{0}}}
	if err := wire.WriteFrame(conn, wire.EncodeScanRequest(req)); err != nil {
		t.Fatal(err)
	}
	mt, body, err := wire.ReadFrame(conn, wire.MaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	if mt != wire.MsgErr {
		t.Fatalf("stale-epoch scan answered with message type %d", mt)
	}
	rerr := wire.DecodeErr(body)
	if !strings.Contains(rerr.Error(), "stale epoch") {
		t.Fatalf("refusal does not name the epoch mismatch: %v", rerr)
	}
	// The correctly-stamped scan on the same connection still works.
	req.Epoch = 1
	if err := wire.WriteFrame(conn, wire.EncodeScanRequest(req)); err != nil {
		t.Fatal(err)
	}
	if mt, _, err = wire.ReadFrame(conn, wire.MaxFrameBytes); err != nil || mt != wire.MsgScanReply {
		t.Fatalf("current-epoch scan: mt=%d err=%v", mt, err)
	}
}

// TestRebalanceValidation: malformed assignments are refused without
// touching the cluster, and a no-op assignment is free.
func TestRebalanceValidation(t *testing.T) {
	cl, _, queries := buildSmall(t, 547, 2, false)
	if err := cl.Rebalance([]int{0}); err == nil {
		t.Fatal("short assignment accepted")
	}
	bad := make([]int, len(cl.repIDs))
	bad[0] = 7
	if err := cl.Rebalance(bad); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	same := make([]int, len(cl.repIDs))
	for rep := range same {
		same[rep] = int(cl.repShard[rep])
	}
	if err := cl.Rebalance(same); err != nil {
		t.Fatalf("no-op rebalance: %v", err)
	}
	for s, e := range cl.epochs {
		if e != 1 {
			t.Fatalf("no-op rebalance bumped shard %d to epoch %d", s, e)
		}
	}
	if _, _, err := cl.KNNBatch(queries, 3); err != nil {
		t.Fatalf("cluster broken after validation failures: %v", err)
	}
	cl.Close()
	if err := cl.Rebalance(same); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("Rebalance after Close: %v", err)
	}
}

// TestAddRemoveShardReplica: a replica added online serves failover
// traffic when the primary dies; removal guards the last replica.
func TestAddRemoveShardReplica(t *testing.T) {
	cl, _, queries := buildSmall(t, 557, 2, false)
	if err := cl.AddShardReplica(0, "127.0.0.1:1"); err == nil {
		t.Fatal("AddShardReplica accepted on loopback")
	}
	addrs, servers := startShardServers(t, 3)
	if err := cl.Distribute(addrs[:2], fastOpts()); err != nil {
		t.Fatal(err)
	}
	want, _, err := cl.KNNBatch(queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.AddShardReplica(0, addrs[2]); err != nil {
		t.Fatalf("AddShardReplica: %v", err)
	}
	reps := cl.ShardReplicas()
	if len(reps[0]) != 2 || reps[0][1] != addrs[2] || len(reps[1]) != 1 {
		t.Fatalf("replica sets %v after add", reps)
	}
	// Kill shard 0's primary: the added replica must absorb the traffic.
	servers[0].Close()
	got, met, err := cl.KNNBatch(queries, 4)
	if err != nil {
		t.Fatalf("KNNBatch after primary death: %v", err)
	}
	if met.FailedShards != 0 {
		t.Fatalf("%d failed shards with a live replica", met.FailedShards)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("query %d pos %d: %+v vs %+v", i, j, got[i][j], want[i][j])
			}
		}
	}
	// Remove the dead primary; the survivor alone still answers and is
	// then protected as the last replica.
	if err := cl.RemoveShardReplica(0, addrs[0]); err != nil {
		t.Fatalf("RemoveShardReplica: %v", err)
	}
	if err := cl.RemoveShardReplica(0, addrs[2]); err == nil {
		t.Fatal("removing the last replica accepted")
	}
	if err := cl.RemoveShardReplica(0, "no-such-addr"); err == nil {
		t.Fatal("removing an unknown replica accepted")
	}
	if _, _, err := cl.KNNBatch(queries, 4); err != nil {
		t.Fatalf("KNNBatch after removal: %v", err)
	}
}

// TestAddReplicaThenRebalance: a repaired 2×-replicated cluster
// rebalances with every replica of every shard re-pushed — the scan
// keeps working whichever replica answers afterwards.
func TestAddReplicaThenRebalance(t *testing.T) {
	cl, db, queries := buildSmall(t, 563, 2, true)
	idx, err := core.BuildExact(db, metric.Euclidean{}, core.ExactParams{Seed: 563, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	addrs, _ := startShardServers(t, 4)
	if err := cl.DistributeReplicas([][]string{{addrs[0], addrs[1]}, {addrs[2], addrs[3]}}, fastOpts()); err != nil {
		t.Fatal(err)
	}
	if err := cl.Rebalance(rotateAssign(cl)); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	got, _, err := cl.KNNBatch(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := idx.KNNBatch(queries, 5)
	for i := range want {
		for j := range want[i] {
			if got[i][j].ID != want[i][j].ID ||
				math.Float64bits(got[i][j].Dist) != math.Float64bits(want[i][j].Dist) {
				t.Fatalf("query %d pos %d: %+v vs exact %+v", i, j, got[i][j], want[i][j])
			}
		}
	}
}
