package distributed

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/metric"
)

// Tests for the tiled shard-scan contract (see the package comment):
// batched scans must be bit-identical to per-query calls and to the
// single-node core.Exact index, must not fall back to per-pair
// m.Distance in the hot loop, and must keep work accounting identical
// between the batched and per-query paths.

// Batched results must be bit-identical (ids AND distance bits) to
// per-query Cluster.KNN — the acceptance bar for the batched scan.
func TestKNNBatchBitIdenticalToPerQueryKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	db := clustered(rng, 1800, 7, 9)
	cl, err := Build(db, metric.Euclidean{}, core.ExactParams{Seed: 67}, 5, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	queries := clustered(rand.New(rand.NewSource(71)), 50, 7, 9)
	for _, k := range []int{1, 4, 11} {
		batch, _, _ := cl.KNNBatch(queries, k)
		for i := 0; i < queries.N(); i++ {
			one, _, _ := cl.KNN(queries.Row(i), k)
			if len(batch[i]) != len(one) {
				t.Fatalf("k=%d query %d: batch %d results, per-query %d", k, i, len(batch[i]), len(one))
			}
			for p := range one {
				if batch[i][p] != one[p] {
					t.Fatalf("k=%d query %d pos %d: batch %+v, per-query %+v (not bit-identical)",
						k, i, p, batch[i][p], one[p])
				}
			}
		}
	}
}

// Cluster answers must be bit-identical to the single-node core.Exact
// index built with the same parameters: same reported distance bits,
// same ids at razor ties.
func TestClusterMatchesExactBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	db := clustered(rng, 1200, 6, 8)
	// Plant duplicates so representative ties and duplicate candidates
	// exercise the tie rules.
	for i := 0; i < 30; i++ {
		copy(db.Row(i+400), db.Row(i))
	}
	m := metric.Euclidean{}
	prm := core.ExactParams{Seed: 79}
	idx, err := core.BuildExact(db, m, prm)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 6} {
		cl, err := Build(db, m, prm, shards, DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		queries := clustered(rand.New(rand.NewSource(83)), 40, 6, 8)
		for _, k := range []int{1, 5} {
			got, _, _ := cl.KNNBatch(queries, k)
			want, _ := idx.KNNBatch(queries, k)
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("shards=%d k=%d query %d: %d results, exact has %d", shards, k, i, len(got[i]), len(want[i]))
				}
				for p := range want[i] {
					if got[i][p] != want[i][p] {
						t.Fatalf("shards=%d k=%d query %d pos %d: cluster %+v, exact %+v",
							shards, k, i, p, got[i][p], want[i][p])
					}
				}
			}
		}
		cl.Close()
	}
}

// countingMetric wraps Euclidean but intercepts per-pair Distance calls.
// The kernel layer resolves it through its OrderingBatch fast path (it is
// not the Euclidean type), so any Distance call comes from a per-pair
// scan loop — which the shard hot path must no longer contain.
type countingMetric struct {
	metric.Euclidean
	calls *atomic.Int64
}

func (c countingMetric) Distance(a, b []float32) float64 {
	c.calls.Add(1)
	return c.Euclidean.Distance(a, b)
}

func TestShardScansAvoidPerPairDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	db := clustered(rng, 1000, 8, 6)
	var calls atomic.Int64
	m := countingMetric{calls: &calls}
	cl, err := Build(db, m, core.ExactParams{Seed: 97}, 4, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	queries := clustered(rand.New(rand.NewSource(101)), 32, 8, 6)

	calls.Store(0)
	tilesBefore := metric.TileInvocations()
	if _, met, _ := cl.KNNBatch(queries, 3); met.PointEvals == 0 {
		t.Fatal("batch reported no shard-side work")
	}
	if got := calls.Load(); got != 0 {
		t.Fatalf("query path made %d per-pair m.Distance calls, want 0", got)
	}
	if metric.TileInvocations() == tilesBefore {
		t.Fatal("batched search performed no tiled kernel calls")
	}
	// Results must still match brute force under the counting wrapper.
	got, _, _ := cl.KNN(queries.Row(0), 3)
	want := bruteforce.SearchOneK(queries.Row(0), db, 3, m, nil)
	for p := range want {
		if got[p] != want[p] {
			t.Fatalf("pos %d: %+v want %+v", p, got[p], want[p])
		}
	}
}

// The cluster kernel must be exact grade: the fast Gram kernel is not
// allowed anywhere on the answer path (see the package comment).
func TestClusterKernelIsExactGrade(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	db := clustered(rng, 300, 4, 3)
	cl, err := Build(db, metric.Euclidean{}, core.ExactParams{Seed: 107}, 2, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.ker.IsFast() {
		t.Fatal("cluster resolved a fast-grade kernel; the shard-scan contract requires exact grade")
	}
	for _, sh := range cl.shards {
		if sh.ker.IsFast() {
			t.Fatalf("shard %d holds a fast-grade kernel", sh.id)
		}
	}
}

// k exceeding both a shard's point count and the database size: every
// query must get all n points back, exactly once each, matching brute
// force.
func TestKNNBatchKLargerThanShard(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	db := clustered(rng, 60, 5, 3)
	m := metric.Euclidean{}
	cl, err := Build(db, m, core.ExactParams{Seed: 113}, 4, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	queries := clustered(rand.New(rand.NewSource(127)), 10, 5, 3)
	for _, k := range []int{59, 60, 200} {
		got, _, _ := cl.KNNBatch(queries, k)
		for i := 0; i < queries.N(); i++ {
			want := bruteforce.SearchOneK(queries.Row(i), db, k, m, nil)
			if len(got[i]) != len(want) {
				t.Fatalf("k=%d query %d: %d results, want %d", k, i, len(got[i]), len(want))
			}
			for p := range want {
				if got[i][p] != want[p] {
					t.Fatalf("k=%d query %d pos %d: %+v want %+v", k, i, p, got[i][p], want[p])
				}
			}
		}
	}
}

// Duplicate representatives produce empty ownership segments (ties
// assign every member to the lower-id duplicate). Scans must skip them
// without panicking and stay exact.
func TestKNNBatchEmptySegments(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	db := clustered(rng, 400, 4, 4)
	// Make large duplicate groups so several representatives collide.
	for i := 0; i < 200; i++ {
		copy(db.Row(200+i), db.Row(i%20))
	}
	m := metric.Euclidean{}
	cl, err := Build(db, m, core.ExactParams{Seed: 137, NumReps: 60, ExactCount: true}, 3, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	empty := 0
	for _, sh := range cl.shards {
		for seg := 0; seg < len(sh.offsets)-1; seg++ {
			if sh.offsets[seg] == sh.offsets[seg+1] {
				empty++
			}
		}
	}
	if empty == 0 {
		t.Fatal("test setup failed to produce an empty segment (no duplicate representatives sampled)")
	}
	queries := clustered(rand.New(rand.NewSource(139)), 20, 4, 4)
	got, _, _ := cl.KNNBatch(queries, 4)
	for i := 0; i < queries.N(); i++ {
		want := bruteforce.SearchOneK(queries.Row(i), db, 4, m, nil)
		for p := range want {
			if got[i][p] != want[p] {
				t.Fatalf("query %d pos %d: %+v want %+v", i, p, got[i][p], want[p])
			}
		}
	}
}

// Work accounting must be identical between the batched scan and the
// per-query path: RepEvals, PointEvals and the Evals total all match,
// while the batched fan-out amortizes messages.
func TestAccountingParityBatchVsPerQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	db := clustered(rng, 2200, 6, 10)
	cl, err := Build(db, metric.Euclidean{}, core.ExactParams{Seed: 151}, 6, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	queries := clustered(rand.New(rand.NewSource(157)), 48, 6, 10)
	for _, k := range []int{1, 6} {
		_, bm, _ := cl.KNNBatch(queries, k)
		var pq QueryMetrics
		for i := 0; i < queries.N(); i++ {
			_, m, _ := cl.KNN(queries.Row(i), k)
			pq.Add(m)
		}
		if bm.RepEvals != pq.RepEvals {
			t.Fatalf("k=%d: batch RepEvals %d, per-query %d", k, bm.RepEvals, pq.RepEvals)
		}
		if bm.PointEvals != pq.PointEvals {
			t.Fatalf("k=%d: batch PointEvals %d, per-query %d", k, bm.PointEvals, pq.PointEvals)
		}
		if bm.Evals != pq.Evals || bm.Evals != bm.RepEvals+bm.PointEvals {
			t.Fatalf("k=%d: eval totals inconsistent: batch %+v per-query %+v", k, bm, pq)
		}
		if bm.ShardsContacted > cl.NumShards() {
			t.Fatalf("k=%d: batch contacted %d shard requests for %d shards", k, bm.ShardsContacted, cl.NumShards())
		}
		if pq.ShardsContacted <= bm.ShardsContacted {
			t.Fatalf("k=%d: no message amortization: batch %d, per-query %d", k, bm.ShardsContacted, pq.ShardsContacted)
		}
	}
}

// A single-query block must degenerate cleanly to the row-scan shape and
// stay exact — including on a single-shard cluster, where every segment
// has exactly one taker.
func TestSingleQueryBlockDegenerates(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	db := clustered(rng, 500, 5, 5)
	m := metric.Euclidean{}
	cl, err := Build(db, m, core.ExactParams{Seed: 167}, 1, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	q := clustered(rand.New(rand.NewSource(173)), 1, 5, 5)
	got, met, _ := cl.KNNBatch(q, 5)
	want := bruteforce.SearchOneK(q.Row(0), db, 5, m, nil)
	for p := range want {
		if got[0][p] != want[p] {
			t.Fatalf("pos %d: %+v want %+v", p, got[0][p], want[p])
		}
	}
	if met.ShardsContacted > 1 {
		t.Fatalf("single shard contacted %d times", met.ShardsContacted)
	}
	if math.IsNaN(met.SimTimeUS) || met.SimTimeUS < 0 {
		t.Fatalf("bad sim time %v", met.SimTimeUS)
	}
}
