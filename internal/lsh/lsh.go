// Package lsh implements Euclidean locality-sensitive hashing (the
// p-stable scheme of Datar et al., the "E2LSH" family) — the other major
// line of sublinear NN work the paper's §2 discusses and contrasts with
// the RBC: provably sublinear and dimension-independent, but inherently
// approximate, tied to specific distance functions, and notoriously
// parameter-sensitive ("setting the parameters correctly can be complex",
// citing Dong et al.). Implementing it makes that comparison concrete:
// the harness's lsh-compare experiment measures recall/work for both.
//
// Scheme: each of L tables hashes a point to the concatenation of K
// quantized random projections h_i(x) = ⌊(a_i·x + b_i)/W⌋ with
// a_i ~ N(0,I) and b_i ~ U[0,W). A query probes its bucket in every
// table, collects the union of candidates, and ranks them by true
// distance. The ranking (candidate rescoring) runs through the tiled
// row kernels via bruteforce.RescoreK: exact grade by default, or the
// chunked float32 grade when Params.Rescore selects it — LSH candidates
// are approximate to begin with, so the chunked grade's bounded relative
// error (metric.ChunkedErrorBound) only perturbs razor-thin ranking ties
// while the rescoring loop runs conversion-free. metric.GradeQuantized
// instead routes through the two-pass bruteforce.RescoreKQuantized:
// candidates are pre-ranked over int8 codes and only the over-fetch
// survivors are rescored exactly, so reported distances stay exact while
// large bucket unions scan 1 byte per coordinate.
package lsh

import (
	"fmt"
	"hash/maphash"
	"math"
	"math/rand"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/vec"
)

// Params configures an Index.
type Params struct {
	// L is the number of hash tables (default 8).
	L int
	// K is the number of concatenated projections per table (default 12).
	K int
	// W is the quantization width. Zero selects a data-driven default:
	// the mean distance from a sample of points to their nearest sampled
	// neighbor (so one bucket roughly spans nearest-neighbor scale).
	W float64
	// Seed drives the random projections.
	Seed int64
	// Rescore selects the kernel grade used to rank candidates (the
	// zero value is metric.GradeExact: reported distances match the
	// brute-force reference). metric.GradeChunked trades bounded
	// relative error for a conversion-free rescoring loop.
	// metric.GradeQuantized pre-ranks candidates over an int8 view built
	// at Build time and rescores the over-fetch survivors exactly.
	Rescore metric.Grade
}

func (p Params) withDefaults() Params {
	if p.L <= 0 {
		p.L = 8
	}
	if p.K <= 0 {
		p.K = 12
	}
	return p
}

// Index is an LSH structure over a dataset (Euclidean metric only — one
// of the structural limitations §2 notes relative to general-metric
// methods like the RBC).
type Index struct {
	db    *vec.Dataset
	prm   Params
	ker   *metric.Kernel        // candidate-rescoring kernel (Params.Rescore grade)
	qview *metric.QuantizedView // int8 codes over db, GradeQuantized only

	// proj holds L*K projection vectors of dimension dim, row-major;
	// offsets holds the matching L*K uniform shifts.
	proj    []float64
	offsets []float64
	tables  []map[uint64][]int32
	hseed   maphash.Seed
}

// Build constructs the index. The database must be non-empty.
func Build(db *vec.Dataset, prm Params) (*Index, error) {
	if db.N() == 0 || db.Dim == 0 {
		return nil, fmt.Errorf("lsh: empty database")
	}
	prm = prm.withDefaults()
	rng := rand.New(rand.NewSource(prm.Seed))
	if prm.W <= 0 {
		prm.W = estimateW(db, rng)
	}
	idx := &Index{
		db: db, prm: prm,
		proj:    make([]float64, prm.L*prm.K*db.Dim),
		offsets: make([]float64, prm.L*prm.K),
		tables:  make([]map[uint64][]int32, prm.L),
		hseed:   maphash.MakeSeed(),
	}
	if prm.Rescore == metric.GradeQuantized {
		// Two-pass rescoring: the int8 view pre-ranks candidates, and the
		// exact kernel scores the survivors (RescoreKQuantized's pass 2).
		idx.qview = metric.NewQuantizedView(db.Data, db.Dim)
		idx.ker = metric.NewKernel(metric.Euclidean{})
	} else {
		idx.ker = metric.NewGradeKernel(metric.Euclidean{}, prm.Rescore)
	}
	for i := range idx.proj {
		idx.proj[i] = rng.NormFloat64()
	}
	for i := range idx.offsets {
		idx.offsets[i] = rng.Float64() * prm.W
	}
	// Hash every point into every table; tables fill in parallel (each
	// goroutine owns whole tables, so no locking).
	par.ForEach(prm.L, 1, func(t int) {
		table := make(map[uint64][]int32, db.N())
		keys := make([]int64, prm.K)
		for i := 0; i < db.N(); i++ {
			idx.hashInto(t, db.Row(i), keys)
			h := idx.bucketKey(keys)
			table[h] = append(table[h], int32(i))
		}
		idx.tables[t] = table
	})
	return idx, nil
}

// estimateW samples pairs to set the bucket width at nearest-neighbor
// scale.
func estimateW(db *vec.Dataset, rng *rand.Rand) float64 {
	const sample = 24
	n := db.N()
	if n == 1 {
		return 1
	}
	m := metric.Euclidean{}
	var total float64
	count := 0
	for s := 0; s < sample; s++ {
		i := rng.Intn(n)
		best := math.Inf(1)
		// Nearest among a bounded random subset: O(sample²) total work.
		for t := 0; t < 64; t++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			if d := m.Distance(db.Row(i), db.Row(j)); d < best {
				best = d
			}
		}
		if !math.IsInf(best, 1) && best > 0 {
			total += best
			count++
		}
	}
	if count == 0 {
		return 1
	}
	// A bucket several times wider than nearest-neighbor scale keeps the
	// per-hash collision probability of true neighbors high enough to
	// survive K-fold concatenation (the standard E2LSH tuning guidance).
	return 4 * total / float64(count)
}

// hashInto computes the K quantized projections of x for table t.
func (idx *Index) hashInto(t int, x []float32, out []int64) {
	dim := idx.db.Dim
	for k := 0; k < idx.prm.K; k++ {
		row := idx.proj[(t*idx.prm.K+k)*dim : (t*idx.prm.K+k+1)*dim]
		dot := idx.offsets[t*idx.prm.K+k]
		for j, v := range x {
			dot += row[j] * float64(v)
		}
		out[k] = int64(math.Floor(dot / idx.prm.W))
	}
}

// bucketKey hashes the K-tuple into a table key.
func (idx *Index) bucketKey(keys []int64) uint64 {
	var h maphash.Hash
	h.SetSeed(idx.hseed)
	var buf [8]byte
	for _, k := range keys {
		u := uint64(k)
		for b := 0; b < 8; b++ {
			buf[b] = byte(u >> (8 * b))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Result mirrors the brute-force result type.
type Result struct {
	ID   int
	Dist float64
}

// One returns the best candidate found for q along with the number of
// candidate distance evaluations performed (the LSH work measure). With
// unlucky hashing the candidate set can be empty, in which case ID is -1
// — approximation is inherent to the scheme.
func (idx *Index) One(q []float32) (Result, int) {
	res, evals := idx.KNN(q, 1)
	if len(res) == 0 {
		return Result{ID: -1, Dist: math.Inf(1)}, evals
	}
	return Result{ID: res[0].ID, Dist: res[0].Dist}, evals
}

// KNN returns up to k candidates ranked by distance under the rescoring
// kernel (true distances on the default exact grade), and the number of
// distance evaluations performed. The bucket union is deduplicated and
// rescored in one pass through bruteforce.RescoreK, so the ranking inner
// loop rides the row kernel instead of per-pair Distance calls.
func (idx *Index) KNN(q []float32, k int) ([]par.Neighbor, int) {
	if k <= 0 {
		return nil, 0
	}
	keys := make([]int64, idx.prm.K)
	seen := make(map[int32]struct{}, 64)
	var cands []int32
	for t := 0; t < idx.prm.L; t++ {
		idx.hashInto(t, q, keys)
		for _, id := range idx.tables[t][idx.bucketKey(keys)] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			cands = append(cands, id)
		}
	}
	if idx.qview != nil {
		return bruteforce.RescoreKQuantized(idx.qview, q, idx.db, cands, k, metric.Euclidean{}, nil), len(cands)
	}
	return bruteforce.RescoreK(idx.ker, q, idx.db, cands, k, nil), len(cands)
}

// SearchK answers a batch of k-NN queries in parallel (table probes are
// read-only after Build, so queries are independent), returning per-query
// candidates and the total number of distance evaluations.
func (idx *Index) SearchK(queries *vec.Dataset, k int) ([][]par.Neighbor, int64) {
	out := make([][]par.Neighbor, queries.N())
	evals := make([]int, queries.N())
	par.ForEach(queries.N(), 1, func(i int) {
		out[i], evals[i] = idx.KNN(queries.Row(i), k)
	})
	var total int64
	for _, e := range evals {
		total += int64(e)
	}
	return out, total
}

// Search answers a batch of 1-NN queries in parallel, returning results
// and total distance evaluations.
func (idx *Index) Search(queries *vec.Dataset) ([]Result, int64) {
	out := make([]Result, queries.N())
	evals := make([]int, queries.N())
	par.ForEach(queries.N(), 1, func(i int) {
		out[i], evals[i] = idx.One(queries.Row(i))
	})
	var total int64
	for _, e := range evals {
		total += int64(e)
	}
	return out, total
}

// Params reports the (defaulted) parameters in use, including the
// data-driven W.
func (idx *Index) Params() Params { return idx.prm }

// BucketStats summarizes table occupancy — the diagnostic LSH tuning
// lives and dies by.
type BucketStats struct {
	Tables       int
	Buckets      int
	MaxBucket    int
	MeanBucket   float64
	EmptyQueries float64 // expected fraction of probes hitting no bucket
}

// Stats computes occupancy statistics across tables.
func (idx *Index) Stats() BucketStats {
	st := BucketStats{Tables: len(idx.tables)}
	total := 0
	for _, table := range idx.tables {
		st.Buckets += len(table)
		for _, ids := range table {
			total += len(ids)
			if len(ids) > st.MaxBucket {
				st.MaxBucket = len(ids)
			}
		}
	}
	if st.Buckets > 0 {
		st.MeanBucket = float64(total) / float64(st.Buckets)
	}
	return st
}
