package lsh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/metric"
	"repro/internal/vec"
)

func clustered(rng *rand.Rand, n, dim, k int) *vec.Dataset {
	centers := make([][]float32, k)
	for i := range centers {
		centers[i] = make([]float32, dim)
		for j := range centers[i] {
			centers[i][j] = rng.Float32()*20 - 10
		}
	}
	d := vec.New(dim, n)
	row := make([]float32, dim)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(k)]
		for j := range row {
			row[j] = c[j] + float32(rng.NormFloat64())*0.3
		}
		d.Append(row)
	}
	return d
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(&vec.Dataset{}, Params{}); err == nil {
		t.Fatal("empty db should error")
	}
}

func TestDefaultsApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := clustered(rng, 300, 4, 4)
	idx, err := Build(db, Params{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := idx.Params()
	if p.L != 8 || p.K != 12 {
		t.Fatalf("defaults: %+v", p)
	}
	if p.W <= 0 {
		t.Fatal("W should be estimated from data")
	}
}

func TestSelfQueryFindsSelf(t *testing.T) {
	// A database point hashes to its own bucket in every table, so it
	// must find itself (distance 0) regardless of parameters.
	rng := rand.New(rand.NewSource(2))
	db := clustered(rng, 500, 5, 6)
	idx, err := Build(db, Params{L: 4, K: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		res, evals := idx.One(db.Row(i))
		if res.Dist != 0 {
			t.Fatalf("point %d: dist %v", i, res.Dist)
		}
		if evals == 0 {
			t.Fatal("no candidates examined")
		}
	}
}

func TestRecallOnClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	all := clustered(rng, 2100, 6, 8)
	db := all.Subset(seq(0, 2000))
	queries := all.Subset(seq(2000, 2100))
	idx, err := Build(db, Params{L: 12, K: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteforce.Search(queries, db, metric.Euclidean{}, nil)
	res, evals := idx.Search(queries)
	correct := 0
	for i := range res {
		if res[i].Dist == want[i].Dist {
			correct++
		}
	}
	if recall := float64(correct) / float64(len(res)); recall < 0.7 {
		t.Fatalf("recall %.2f too low for clustered data", recall)
	}
	// And it must be doing sublinear work.
	if perQuery := float64(evals) / float64(queries.N()); perQuery > float64(db.N())/2 {
		t.Fatalf("LSH examined %.0f of %d points per query", perQuery, db.N())
	}
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

func TestKNNWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := clustered(rng, 800, 4, 5)
	idx, err := Build(db, Params{L: 8, K: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	nbs, _ := idx.KNN(db.Row(3), 5)
	if len(nbs) == 0 {
		t.Fatal("no results")
	}
	seen := map[int]bool{}
	for i, nb := range nbs {
		if seen[nb.ID] {
			t.Fatalf("duplicate id %d", nb.ID)
		}
		seen[nb.ID] = true
		if i > 0 && nb.Dist < nbs[i-1].Dist {
			t.Fatal("not sorted")
		}
	}
	if got, _ := idx.KNN(db.Row(3), 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestMissIsPossibleAndReported(t *testing.T) {
	// A query far from every bucket returns ID -1, not a wrong answer
	// presented as confident.
	rng := rand.New(rand.NewSource(5))
	db := clustered(rng, 200, 3, 2)
	idx, err := Build(db, Params{L: 2, K: 24, W: 0.01, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	far := []float32{1e6, 1e6, 1e6}
	res, _ := idx.One(far)
	if res.ID != -1 && res.Dist < 1e5 {
		t.Fatalf("impossible hit: %+v", res)
	}
}

func TestStats(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := clustered(rng, 500, 4, 4)
	idx, err := Build(db, Params{L: 4, K: 6, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	st := idx.Stats()
	if st.Tables != 4 || st.Buckets == 0 || st.MaxBucket == 0 || st.MeanBucket <= 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDeterministicBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := clustered(rng, 400, 4, 4)
	a, err := Build(db, Params{L: 4, K: 6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(db, Params{L: 4, K: 6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		ra, _ := a.One(db.Row(i))
		rb, _ := b.One(db.Row(i))
		if ra != rb {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, ra, rb)
		}
	}
}

// Property: LSH never claims a distance better than the true NN, and any
// returned id has a correctly computed distance.
func TestQuickLSHSound(t *testing.T) {
	m := metric.Euclidean{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := clustered(rng, 200, 3, 4)
		idx, err := Build(db, Params{L: 4, K: 4, Seed: seed})
		if err != nil {
			return false
		}
		q := []float32{rng.Float32() * 10, rng.Float32() * 10, rng.Float32() * 10}
		res, _ := idx.One(q)
		want := bruteforce.SearchOne(q, db, m, nil)
		if res.ID == -1 {
			return true // miss is allowed
		}
		if res.Dist < want.Dist {
			return false // impossible
		}
		return math.Abs(m.Distance(q, db.Row(res.ID))-res.Dist) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuantizedRescoreMatchesExact: the quantized rescore grade probes
// the same buckets (hashing is grade-independent), pre-ranks the union
// over int8 codes and rescores survivors exactly — so against the exact
// grade the reported distance at every rank must match bitwise, and each
// returned id must achieve its reported distance.
func TestQuantizedRescoreMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	db := clustered(rng, 2000, 8, 6)
	m := metric.Euclidean{}
	exact, err := Build(db, Params{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	quant, err := Build(db, Params{Seed: 9, Rescore: metric.GradeQuantized})
	if err != nil {
		t.Fatal(err)
	}
	// Query database rows so candidate unions are non-empty (a point
	// always hashes to its own bucket) and the comparison is non-vacuous.
	ids := make([]int, 40)
	for i := range ids {
		ids[i] = rng.Intn(db.N())
	}
	queries := db.Subset(ids)
	nonEmpty := 0
	for i := 0; i < queries.N(); i++ {
		q := queries.Row(i)
		want, wantEvals := exact.KNN(q, 5)
		if wantEvals > 0 {
			nonEmpty++
		}
		got, gotEvals := quant.KNN(q, 5)
		if gotEvals != wantEvals {
			t.Fatalf("query %d: candidate counts diverged (%d vs %d) — hashing must be grade-independent", i, gotEvals, wantEvals)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", i, len(got), len(want))
		}
		for j := range want {
			if math.Float64bits(got[j].Dist) != math.Float64bits(want[j].Dist) {
				t.Fatalf("query %d pos %d: dist %v, want %v", i, j, got[j].Dist, want[j].Dist)
			}
			if d := m.Distance(q, db.Row(got[j].ID)); d != got[j].Dist {
				t.Fatalf("query %d pos %d: id %d at distance %v, reported %v", i, j, got[j].ID, d, got[j].Dist)
			}
		}
	}
	if nonEmpty == 0 {
		t.Fatal("every candidate union was empty — comparison is vacuous")
	}
}

// TestQuantizedRescoreBatch: SearchK under the quantized grade stays
// well-formed (sorted, deduplicated, achievable distances).
func TestQuantizedRescoreBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	db := clustered(rng, 800, 6, 5)
	idx, err := Build(db, Params{Seed: 5, Rescore: metric.GradeQuantized})
	if err != nil {
		t.Fatal(err)
	}
	// Query database rows: a point hashes to its own bucket, so every
	// query is guaranteed a non-empty candidate union.
	ids := make([]int, 20)
	for i := range ids {
		ids[i] = rng.Intn(db.N())
	}
	queries := db.Subset(ids)
	res, evals := idx.SearchK(queries, 4)
	if evals <= 0 {
		t.Fatal("no candidate evaluations recorded")
	}
	m := metric.Euclidean{}
	for i, nbs := range res {
		seen := map[int]bool{}
		for j, nb := range nbs {
			if j > 0 && nbs[j-1].Dist > nb.Dist {
				t.Fatalf("query %d: unsorted at pos %d", i, j)
			}
			if seen[nb.ID] {
				t.Fatalf("query %d: duplicate id %d", i, nb.ID)
			}
			seen[nb.ID] = true
			if d := m.Distance(queries.Row(i), db.Row(nb.ID)); d != nb.Dist {
				t.Fatalf("query %d id %d: distance %v, reported %v", i, nb.ID, d, nb.Dist)
			}
		}
	}
}
