// Package vec provides the flat, row-major float32 dataset container used
// throughout the RBC implementation, plus binary and CSV serialization.
//
// Points are stored contiguously (GPU-style) so that blocked scans stream
// through memory; a Dataset is therefore a single []float32 of length
// N*Dim, and Row(i) returns a zero-copy view of point i.
package vec

import (
	"fmt"
	"math"
)

// Dataset is a dense collection of N points in Dim dimensions stored in
// row-major order. The zero value is an empty dataset ready for Append.
type Dataset struct {
	// Dim is the dimensionality of every point. It is fixed by the first
	// Append (or the constructor) and immutable afterwards.
	Dim int
	// Data holds the points back to back: point i occupies
	// Data[i*Dim : (i+1)*Dim].
	Data []float32
}

// New returns a Dataset with capacity for n points of dimension dim,
// initially empty.
func New(dim, n int) *Dataset {
	if dim <= 0 {
		panic(fmt.Sprintf("vec: non-positive dimension %d", dim))
	}
	return &Dataset{Dim: dim, Data: make([]float32, 0, dim*n)}
}

// FromRows builds a Dataset by copying the given rows. All rows must share
// one length.
func FromRows(rows [][]float32) *Dataset {
	if len(rows) == 0 {
		return &Dataset{}
	}
	d := New(len(rows[0]), len(rows))
	for _, r := range rows {
		d.Append(r)
	}
	return d
}

// FromFlat wraps (without copying) an existing flat buffer containing n
// points of dimension dim.
func FromFlat(data []float32, dim int) *Dataset {
	if dim <= 0 {
		panic(fmt.Sprintf("vec: non-positive dimension %d", dim))
	}
	if len(data)%dim != 0 {
		panic(fmt.Sprintf("vec: flat buffer length %d not a multiple of dim %d", len(data), dim))
	}
	return &Dataset{Dim: dim, Data: data}
}

// N reports the number of points.
func (d *Dataset) N() int {
	if d.Dim == 0 {
		return 0
	}
	return len(d.Data) / d.Dim
}

// Row returns a zero-copy view of point i. The caller must not resize it.
func (d *Dataset) Row(i int) []float32 {
	return d.Data[i*d.Dim : (i+1)*d.Dim : (i+1)*d.Dim]
}

// Append adds a copy of p as a new point. The first Append on a zero-value
// Dataset fixes the dimension.
func (d *Dataset) Append(p []float32) {
	if d.Dim == 0 {
		d.Dim = len(p)
	}
	if len(p) != d.Dim {
		panic(fmt.Sprintf("vec: appending point of dim %d to dataset of dim %d", len(p), d.Dim))
	}
	d.Data = append(d.Data, p...)
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{Dim: d.Dim, Data: make([]float32, len(d.Data))}
	copy(c.Data, d.Data)
	return c
}

// Subset returns a new Dataset holding copies of the rows listed in ids, in
// order. Duplicate ids are allowed.
func (d *Dataset) Subset(ids []int) *Dataset {
	s := New(d.Dim, len(ids))
	for _, id := range ids {
		s.Append(d.Row(id))
	}
	return s
}

// Rows materializes the dataset as a slice of row views (zero-copy).
func (d *Dataset) Rows() [][]float32 {
	n := d.N()
	rows := make([][]float32, n)
	for i := 0; i < n; i++ {
		rows[i] = d.Row(i)
	}
	return rows
}

// Equal reports whether two datasets hold identical contents.
func (d *Dataset) Equal(o *Dataset) bool {
	if d.N() != o.N() || (d.N() > 0 && d.Dim != o.Dim) {
		return false
	}
	for i := range d.Data {
		if d.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}

// Bounds returns per-coordinate minima and maxima, or nil slices for an
// empty dataset.
func (d *Dataset) Bounds() (lo, hi []float32) {
	n := d.N()
	if n == 0 {
		return nil, nil
	}
	lo = make([]float32, d.Dim)
	hi = make([]float32, d.Dim)
	copy(lo, d.Row(0))
	copy(hi, d.Row(0))
	for i := 1; i < n; i++ {
		r := d.Row(i)
		for j, v := range r {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	return lo, hi
}

// Normalize rescales every coordinate into [0,1] in place using the
// dataset's own bounds. Constant coordinates map to 0.
func (d *Dataset) Normalize() {
	lo, hi := d.Bounds()
	if lo == nil {
		return
	}
	n := d.N()
	for i := 0; i < n; i++ {
		r := d.Row(i)
		for j := range r {
			span := hi[j] - lo[j]
			if span > 0 {
				r[j] = (r[j] - lo[j]) / span
			} else {
				r[j] = 0
			}
		}
	}
}

// Validate returns an error if the dataset contains NaN or Inf entries, or
// if the buffer length is inconsistent with Dim.
func (d *Dataset) Validate() error {
	if d.Dim < 0 {
		return fmt.Errorf("vec: negative dim %d", d.Dim)
	}
	if d.Dim == 0 {
		if len(d.Data) != 0 {
			return fmt.Errorf("vec: dim 0 with %d data values", len(d.Data))
		}
		return nil
	}
	if len(d.Data)%d.Dim != 0 {
		return fmt.Errorf("vec: data length %d not a multiple of dim %d", len(d.Data), d.Dim)
	}
	for i, v := range d.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("vec: non-finite value %v at flat index %d (row %d)", v, i, i/d.Dim)
		}
	}
	return nil
}

// String implements fmt.Stringer with a compact summary.
func (d *Dataset) String() string {
	return fmt.Sprintf("vec.Dataset{n=%d dim=%d}", d.N(), d.Dim)
}
