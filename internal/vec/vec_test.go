package vec

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndAppend(t *testing.T) {
	d := New(3, 2)
	if d.N() != 0 || d.Dim != 3 {
		t.Fatalf("fresh dataset: n=%d dim=%d, want 0,3", d.N(), d.Dim)
	}
	d.Append([]float32{1, 2, 3})
	d.Append([]float32{4, 5, 6})
	if d.N() != 2 {
		t.Fatalf("n=%d, want 2", d.N())
	}
	if got := d.Row(1); !reflect.DeepEqual(got, []float32{4, 5, 6}) {
		t.Fatalf("Row(1)=%v", got)
	}
}

func TestZeroValueAppendFixesDim(t *testing.T) {
	var d Dataset
	d.Append([]float32{1, 2})
	if d.Dim != 2 || d.N() != 1 {
		t.Fatalf("dim=%d n=%d, want 2,1", d.Dim, d.N())
	}
}

func TestAppendWrongDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched Append")
		}
	}()
	d := New(2, 1)
	d.Append([]float32{1, 2, 3})
}

func TestFromRows(t *testing.T) {
	d := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if d.N() != 3 || d.Dim != 2 {
		t.Fatalf("n=%d dim=%d", d.N(), d.Dim)
	}
	if d.Row(2)[1] != 6 {
		t.Fatalf("Row(2)[1]=%v", d.Row(2)[1])
	}
	empty := FromRows(nil)
	if empty.N() != 0 {
		t.Fatalf("empty FromRows n=%d", empty.N())
	}
}

func TestFromFlat(t *testing.T) {
	d := FromFlat([]float32{1, 2, 3, 4, 5, 6}, 3)
	if d.N() != 2 {
		t.Fatalf("n=%d", d.N())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged flat buffer")
		}
	}()
	FromFlat([]float32{1, 2, 3}, 2)
}

func TestRowIsView(t *testing.T) {
	d := FromRows([][]float32{{1, 2}, {3, 4}})
	d.Row(0)[1] = 42
	if d.Data[1] != 42 {
		t.Fatal("Row must be a zero-copy view")
	}
}

func TestCloneIndependent(t *testing.T) {
	d := FromRows([][]float32{{1, 2}})
	c := d.Clone()
	c.Row(0)[0] = 9
	if d.Row(0)[0] == 9 {
		t.Fatal("Clone must deep-copy")
	}
	if !d.Equal(d.Clone()) {
		t.Fatal("clone should Equal original")
	}
}

func TestSubset(t *testing.T) {
	d := FromRows([][]float32{{0}, {1}, {2}, {3}})
	s := d.Subset([]int{3, 1, 1})
	want := FromRows([][]float32{{3}, {1}, {1}})
	if !s.Equal(want) {
		t.Fatalf("Subset=%v", s.Data)
	}
}

func TestEqual(t *testing.T) {
	a := FromRows([][]float32{{1, 2}})
	b := FromRows([][]float32{{1, 2}})
	c := FromRows([][]float32{{1, 3}})
	if !a.Equal(b) || a.Equal(c) {
		t.Fatal("Equal misbehaves")
	}
	d := FromRows([][]float32{{1, 2}, {3, 4}})
	if a.Equal(d) {
		t.Fatal("different n should not be Equal")
	}
}

func TestBounds(t *testing.T) {
	d := FromRows([][]float32{{1, -5}, {3, 2}, {-2, 0}})
	lo, hi := d.Bounds()
	if !reflect.DeepEqual(lo, []float32{-2, -5}) || !reflect.DeepEqual(hi, []float32{3, 2}) {
		t.Fatalf("lo=%v hi=%v", lo, hi)
	}
	var empty Dataset
	lo, hi = empty.Bounds()
	if lo != nil || hi != nil {
		t.Fatal("empty Bounds should be nil")
	}
}

func TestNormalize(t *testing.T) {
	d := FromRows([][]float32{{0, 5, 7}, {10, 5, 3}})
	d.Normalize()
	if d.Row(0)[0] != 0 || d.Row(1)[0] != 1 {
		t.Fatalf("coordinate 0 not normalized: %v %v", d.Row(0)[0], d.Row(1)[0])
	}
	if d.Row(0)[1] != 0 || d.Row(1)[1] != 0 {
		t.Fatal("constant coordinate should map to 0")
	}
	if d.Row(0)[2] != 1 || d.Row(1)[2] != 0 {
		t.Fatalf("coordinate 2: %v %v", d.Row(0)[2], d.Row(1)[2])
	}
}

func TestValidate(t *testing.T) {
	d := FromRows([][]float32{{1, 2}})
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset: %v", err)
	}
	d.Data[0] = float32(math.NaN())
	if err := d.Validate(); err == nil {
		t.Fatal("NaN should fail Validate")
	}
	d.Data[0] = float32(math.Inf(1))
	if err := d.Validate(); err == nil {
		t.Fatal("Inf should fail Validate")
	}
	bad := &Dataset{Dim: 3, Data: []float32{1, 2}}
	if err := bad.Validate(); err == nil {
		t.Fatal("ragged buffer should fail Validate")
	}
}

func TestString(t *testing.T) {
	d := FromRows([][]float32{{1, 2}})
	if s := d.String(); !strings.Contains(s, "n=1") || !strings.Contains(s, "dim=2") {
		t.Fatalf("String()=%q", s)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := New(5, 100)
	for i := 0; i < 100; i++ {
		row := make([]float32, 5)
		for j := range row {
			row[j] = rng.Float32()*2 - 1
		}
		d.Append(row)
	}
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(got) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestBinaryEmptyRoundTrip(t *testing.T) {
	var d Dataset
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 0 {
		t.Fatalf("n=%d", got.N())
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("XXXX0000000000000000"))); err == nil {
		t.Fatal("bad magic should error")
	}
}

func TestBinaryTruncated(t *testing.T) {
	d := FromRows([][]float32{{1, 2, 3}})
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Fatal("truncated stream should error")
	}
}

func TestFileRoundTrip(t *testing.T) {
	d := FromRows([][]float32{{1, 2}, {3, 4}})
	path := filepath.Join(t.TempDir(), "d.rbcv")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(got) {
		t.Fatal("file round trip mismatch")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := FromRows([][]float32{{1.5, -2}, {0.25, 3}})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(got) {
		t.Fatalf("csv round trip: %v vs %v", d.Data, got.Data)
	}
}

func TestCSVBlankLinesAndErrors(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("1,2\n\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 2 {
		t.Fatalf("n=%d", got.N())
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Fatal("ragged csv should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n")); err == nil {
		t.Fatal("non-numeric csv should error")
	}
}

// Property: binary round trip preserves arbitrary finite contents.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(rows [][4]float32) bool {
		d := New(4, len(rows))
		for _, r := range rows {
			row := r
			for j, v := range row {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					row[j] = 0
				}
			}
			d.Append(row[:])
		}
		var buf bytes.Buffer
		if err := d.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return d.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Subset of all indices equals the original.
func TestQuickSubsetIdentity(t *testing.T) {
	f := func(vals []float32) bool {
		const dim = 2
		n := len(vals) / dim
		d := FromFlat(append([]float32(nil), vals[:n*dim]...), dim)
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		return d.Subset(ids).Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
