package vec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Binary format: magic "RBCV" | uint32 version | uint64 n | uint32 dim |
// n*dim little-endian float32 values. The format is self-describing enough
// for the tools in cmd/ to round-trip datasets.

const (
	binaryMagic   = "RBCV"
	binaryVersion = 1
)

// WriteBinary serializes the dataset to w in the RBCV binary format.
func (d *Dataset) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:4], binaryVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(d.N()))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(d.Dim))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 4)
	for _, v := range d.Data {
		binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a dataset in the RBCV binary format.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("vec: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("vec: bad magic %q", magic)
	}
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("vec: reading header: %w", err)
	}
	version := binary.LittleEndian.Uint32(hdr[0:4])
	if version != binaryVersion {
		return nil, fmt.Errorf("vec: unsupported version %d", version)
	}
	n := binary.LittleEndian.Uint64(hdr[4:12])
	dim := binary.LittleEndian.Uint32(hdr[12:16])
	if dim == 0 && n > 0 {
		return nil, fmt.Errorf("vec: zero dim with %d points", n)
	}
	total := int(n) * int(dim)
	data := make([]float32, total)
	buf := make([]byte, 4)
	for i := 0; i < total; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("vec: reading value %d: %w", i, err)
		}
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf))
	}
	if dim == 0 {
		return &Dataset{}, nil
	}
	return FromFlat(data, int(dim)), nil
}

// SaveFile writes the dataset to path in binary format.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a binary dataset from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// WriteCSV emits the dataset as comma-separated rows, one point per line.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	n := d.N()
	for i := 0; i < n; i++ {
		row := d.Row(i)
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(float64(v), 'g', -1, 32)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses comma-separated rows into a Dataset. Blank lines are
// skipped; all rows must have the same number of fields.
func ReadCSV(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	d := &Dataset{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		row := make([]float32, len(fields))
		for j, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 32)
			if err != nil {
				return nil, fmt.Errorf("vec: line %d field %d: %w", line, j+1, err)
			}
			row[j] = float32(v)
		}
		if d.Dim != 0 && len(row) != d.Dim {
			return nil, fmt.Errorf("vec: line %d has %d fields, want %d", line, len(row), d.Dim)
		}
		d.Append(row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}
