//go:build amd64

package metric

// useQuantAsm gates the AVX2 scan kernel. The asm path is bit-identical
// to the pure-Go loop (integer accumulation is exact), so this is purely
// a throughput switch.
var useQuantAsm = x86HasAVX2()

// x86HasAVX2 reports CPU and OS support for AVX2 (CPUID + XGETBV).
// Implemented in quant_amd64.s.
func x86HasAVX2() bool

// quantScanRowsAsm is the AVX2 scan kernel; see quantScanRows for the
// contract. Implemented in quant_amd64.s.
//
//go:noescape
func quantScanRowsAsm(qc []int8, codes []int8, stride, rows int, out []int32)
