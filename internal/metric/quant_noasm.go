//go:build !amd64

package metric

// Non-amd64 builds always take the portable loop.
const useQuantAsm = false

// quantScanRowsAsm is never called when useQuantAsm is false; this stub
// keeps the common dispatch in quant.go compiling.
func quantScanRowsAsm(qc, codes []int8, stride, rows int, out []int32) {
	panic("metric: quantScanRowsAsm without asm support")
}
