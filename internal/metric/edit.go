package metric

// Edit is the Levenshtein edit distance on strings — one of the paper's
// examples of a metric space with no vector representation (§6: "the
// expansion rate ... makes sense for the edit distance on strings").
//
// Unit costs for insert, delete and substitute make it a true metric.
type Edit struct{}

// Distance implements Metric. It runs in O(len(a)*len(b)) time and
// O(min(len(a),len(b))) space.
func (Edit) Distance(a, b string) float64 {
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return float64(len(a))
	}
	// prev[j] = distance between a[:i] and b[:j] from the previous row.
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		ai := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ai == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitute (or match)
			if d := prev[j] + 1; d < m { // delete from a
				m = d
			}
			if d := cur[j-1] + 1; d < m { // insert into a
				m = d
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return float64(prev[len(b)])
}

// Name implements Metric.
func (Edit) Name() string { return "edit" }
