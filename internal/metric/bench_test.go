package metric

import (
	"math/rand"
	"testing"
)

func benchVectors(dim int) (q []float32, flat []float32, out []float64) {
	rng := rand.New(rand.NewSource(1))
	const n = 1024
	q = make([]float32, dim)
	flat = make([]float32, n*dim)
	out = make([]float64, n)
	for i := range q {
		q[i] = rng.Float32()
	}
	for i := range flat {
		flat[i] = rng.Float32()
	}
	return
}

func benchmarkBatch(b *testing.B, m Metric[[]float32], dim int) {
	q, flat, out := benchVectors(dim)
	b.SetBytes(int64(len(flat) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BatchDistances(m, q, flat, dim, out)
	}
}

func BenchmarkEuclideanBatch16(b *testing.B) { benchmarkBatch(b, Euclidean{}, 16) }
func BenchmarkEuclideanBatch64(b *testing.B) { benchmarkBatch(b, Euclidean{}, 64) }
func BenchmarkManhattanBatch64(b *testing.B) { benchmarkBatch(b, Manhattan{}, 64) }
func BenchmarkChebyshevBatch64(b *testing.B) { benchmarkBatch(b, Chebyshev{}, 64) }
func BenchmarkMinkowskiFallback16(b *testing.B) {
	benchmarkBatch(b, NewMinkowski(3), 16)
}

func BenchmarkEuclideanScalar64(b *testing.B) {
	q, flat, _ := benchVectors(64)
	m := Euclidean{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(q, flat[:64])
	}
}

func BenchmarkEditDistance(b *testing.B) {
	m := Edit{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance("accelerating", "acceleration")
	}
}
