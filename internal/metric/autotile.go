package metric

import (
	"os"
	"strconv"
	"sync"
	"time"
)

// Machine-adaptive tile shapes.
//
// The tiled search loops size their tiles against a per-tile footprint
// budget (in float32 elements): larger budgets amortize loop overhead and
// widen the point tile, smaller budgets keep the working set inside
// faster cache levels. The right budget is a property of the host's cache
// hierarchy, not of the dataset, so it is resolved once per process:
//
//  1. If RBC_TILE_BUDGET is set to a valid integer, that budget is used
//     verbatim (clamped to [minTileBudget, maxTileBudget]). This is the
//     reproducibility hook — CI pins it so bench baselines compare
//     like-for-like across runs and shape changes never masquerade as
//     kernel regressions.
//  2. Otherwise a micro-measurement sweeps tileBudgetGrid with the exact
//     row kernel on synthetic data (~a few ms total) and keeps the
//     fastest budget, in the spirit of core.AutoTuneExact.
//
// The resolved budget is cached for the life of the process. Tests and
// harnesses can override it with SetTileBudget; TileBudget reports the
// active value and its provenance so bench artifacts can record the
// shape that produced them.
//
// Changing the tile shape can never change results: every kernel grade is
// tile-shape invariant by construction (see the shape-invariance tests in
// chunked_test.go and blocked_test.go), and search statistics count
// admissible pairs, not tiles.

const (
	// defaultTileBudget is the historical fixed budget (16K float32
	// elements ≈ 64 KiB widened), used when measurement is disabled and
	// as the CI pin.
	defaultTileBudget = 16384

	// minTileBudget / maxTileBudget clamp env overrides and measurement
	// results to shapes the tiled loops handle sensibly.
	minTileBudget = 1024
	maxTileBudget = 1 << 18

	// TileBudgetEnv names the environment variable that pins the tile
	// budget for reproducible runs (CI, bench baselines).
	TileBudgetEnv = "RBC_TILE_BUDGET"
)

// tileBudgetGrid is the shape grid swept by the once-per-process
// micro-measurement. Powers of two around the historical default.
var tileBudgetGrid = []int{8192, 16384, 32768, 65536}

var autoTile struct {
	once   sync.Once
	mu     sync.Mutex
	budget int
	source string // "env" | "env-invalid" | "measured" | "param"
}

// AutoTileShape returns the query/point tile shape for dimension dim
// using the process-wide resolved tile budget (measured once, or pinned
// via RBC_TILE_BUDGET / SetTileBudget). Search loops should call this
// instead of TileShape.
func AutoTileShape(dim int) (tq, tp int) {
	return shapeForBudget(tileBudget(), dim)
}

// TileBudget reports the resolved per-tile budget and how it was chosen:
// "env" (valid RBC_TILE_BUDGET), "env-invalid" (RBC_TILE_BUDGET set but
// unparsable — default used), "measured" (micro-measurement), or "param"
// (SetTileBudget). Bench tooling records this in its JSON artifact.
func TileBudget() (budget int, source string) {
	b := tileBudget()
	autoTile.mu.Lock()
	defer autoTile.mu.Unlock()
	return b, autoTile.source
}

// SetTileBudget pins the tile budget for the rest of the process
// (clamped to [minTileBudget, maxTileBudget]), overriding any earlier
// measurement or env resolution. Intended for tests and harness pins.
func SetTileBudget(budget int) {
	autoTile.once.Do(func() {}) // forestall a racing resolve
	autoTile.mu.Lock()
	defer autoTile.mu.Unlock()
	autoTile.budget = clampTileBudget(budget)
	autoTile.source = "param"
}

func tileBudget() int {
	autoTile.once.Do(resolveTileBudget)
	autoTile.mu.Lock()
	defer autoTile.mu.Unlock()
	if autoTile.budget == 0 {
		// once.Do was forestalled by SetTileBudget racing resolution;
		// fall back to the default rather than measure under the lock.
		autoTile.budget = defaultTileBudget
		autoTile.source = "param"
	}
	return autoTile.budget
}

func resolveTileBudget() {
	budget, source := defaultTileBudget, "measured"
	if v, ok := os.LookupEnv(TileBudgetEnv); ok {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			budget, source = clampTileBudget(n), "env"
		} else {
			budget, source = defaultTileBudget, "env-invalid"
		}
	} else {
		budget = clampTileBudget(measureTileBudget())
	}
	autoTile.mu.Lock()
	defer autoTile.mu.Unlock()
	if autoTile.budget != 0 {
		return // SetTileBudget won the race
	}
	autoTile.budget, autoTile.source = budget, source
}

func clampTileBudget(b int) int {
	if b < minTileBudget {
		return minTileBudget
	}
	if b > maxTileBudget {
		return maxTileBudget
	}
	return b
}

// measureTileBudget times a consumer-style tiled sweep of the exact row
// kernel over synthetic data for each candidate budget and returns the
// fastest. Runs once per process (~a few ms); min-of-reps guards against
// scheduler noise.
func measureTileBudget() int {
	const (
		dim  = 64
		nq   = 64
		np   = 512
		reps = 3
	)
	qflat := syntheticF32(nq * dim)
	pflat := syntheticF32(np * dim)
	var wq, wp, out []float64

	best, bestNS := defaultTileBudget, int64(1<<62)
	for _, budget := range tileBudgetGrid {
		tq, tp := shapeForBudget(budget, dim)
		wq = growF64(wq, tq*dim)
		wp = growF64(wp, tp*dim)
		out = growF64(out, tq*tp)
		minNS := int64(1 << 62)
		for r := 0; r < reps; r++ {
			start := time.Now()
			// Mirror the consumer loop: widen each tile into scratch,
			// then run the exact diff tile — per-shape widening cost is
			// part of what the budget trades off.
			for q0 := 0; q0 < nq; q0 += tq {
				q1 := q0 + tq
				if q1 > nq {
					q1 = nq
				}
				widen(qflat[q0*dim:q1*dim], wq[:(q1-q0)*dim])
				for p0 := 0; p0 < np; p0 += tp {
					p1 := p0 + tp
					if p1 > np {
						p1 = np
					}
					widen(pflat[p0*dim:p1*dim], wp[:(p1-p0)*dim])
					euclidDiffTile(wq[:(q1-q0)*dim], wp[:(p1-p0)*dim], dim, q1-q0, p1-p0, out[:(q1-q0)*(p1-p0)])
				}
			}
			if ns := time.Since(start).Nanoseconds(); ns < minNS {
				minNS = ns
			}
		}
		if minNS < bestNS {
			best, bestNS = budget, minNS
		}
	}
	return best
}

// syntheticF32 fills a deterministic pseudo-random float32 slice in
// (-1, 1) via xorshift, avoiding a math/rand dependency in non-test code.
func syntheticF32(n int) []float32 {
	out := make([]float32, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range out {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		out[i] = float32(int32(state>>33)) / float32(1<<31)
	}
	return out
}
