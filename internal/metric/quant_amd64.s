// AVX2 form of the quantized scan kernel. Sign-extend 16 int8 codes of
// query and point to int16 lanes, subtract, VPMADDWD the differences with
// themselves (pairwise d²+d² into 8 int32 lanes) and accumulate. Integer
// accumulation is exact, so this path is bit-identical to the pure-Go
// loop in quant.go. Strides are multiples of 16 (quantAlign), so there is
// no scalar tail. Accumulators cannot overflow: each int32 lane receives
// at most chunkDims/16 = 128 pairwise terms of at most 2·254².

#include "textflag.h"

// func quantScanRowsAsm(qc []int8, codes []int8, stride, rows int, out []int32)
TEXT ·quantScanRowsAsm(SB), NOSPLIT, $0-88
	MOVQ  qc_base+0(FP), SI
	MOVQ  codes_base+24(FP), DX
	MOVQ  stride+48(FP), CX
	MOVQ  rows+56(FP), R8
	MOVQ  out_base+64(FP), DI
	TESTQ R8, R8
	JE    done
	MOVQ  CX, R10
	ANDQ  $-32, R10          // 32-aligned portion of the stride

row:
	VPXOR Y0, Y0, Y0
	VPXOR Y4, Y4, Y4
	XORQ  AX, AX
	TESTQ R10, R10
	JE    tail

blk32:
	VPMOVSXBW (SI)(AX*1), Y1
	VPMOVSXBW (DX)(AX*1), Y2
	VPSUBW    Y2, Y1, Y3
	VPMADDWD  Y3, Y3, Y3
	VPADDD    Y3, Y0, Y0
	VPMOVSXBW 16(SI)(AX*1), Y5
	VPMOVSXBW 16(DX)(AX*1), Y6
	VPSUBW    Y6, Y5, Y7
	VPMADDWD  Y7, Y7, Y7
	VPADDD    Y7, Y4, Y4
	ADDQ      $32, AX
	CMPQ      AX, R10
	JLT       blk32

tail:
	CMPQ AX, CX
	JGE  sum
	VPMOVSXBW (SI)(AX*1), Y1
	VPMOVSXBW (DX)(AX*1), Y2
	VPSUBW    Y2, Y1, Y3
	VPMADDWD  Y3, Y3, Y3
	VPADDD    Y3, Y0, Y0

sum:
	VPADDD       Y4, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x4E, X0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0xB1, X0, X1
	VPADDD       X1, X0, X0
	MOVQ         X0, AX
	MOVL         AX, (DI)
	ADDQ         $4, DI
	ADDQ         CX, DX
	DECQ         R8
	JNE          row

done:
	VZEROUPPER
	RET

// func x86HasAVX2() bool
TEXT ·x86HasAVX2(SB), NOSPLIT, $0-1
	// CPUID.1:ECX — need OSXSAVE (bit 27) and AVX (bit 28).
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, BX
	ANDL $0x18000000, BX
	CMPL BX, $0x18000000
	JNE  no
	// XGETBV — the OS must manage XMM and YMM state (XCR0 bits 1, 2).
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	// CPUID.7.0:EBX bit 5 — AVX2.
	MOVL $7, AX
	XORL CX, CX
	CPUID
	SHRL $5, BX
	ANDL $1, BX
	MOVB BX, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET
