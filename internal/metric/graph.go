package metric

import (
	"container/heap"
	"fmt"
	"math"
)

// Graph is the shortest-path metric on the nodes of an undirected,
// non-negatively weighted graph — the paper's second example of a
// non-vector metric space. Distances are precomputed with Dijkstra from
// every node, so Distance is O(1) at query time.
type Graph struct {
	n    int
	dist [][]float64
}

// GraphEdge is an undirected edge with a non-negative weight.
type GraphEdge struct {
	U, V   int
	Weight float64
}

// NewGraph builds the shortest-path metric over nodes 0..n-1. It returns
// an error for invalid endpoints, negative weights, or a disconnected
// graph (where the shortest-path "distance" would be infinite and the
// space would not be metric).
func NewGraph(n int, edges []GraphEdge) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("metric: graph needs at least one node, got %d", n)
	}
	adj := make([][]GraphEdge, n)
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("metric: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.Weight < 0 {
			return nil, fmt.Errorf("metric: negative edge weight %v", e.Weight)
		}
		adj[e.U] = append(adj[e.U], GraphEdge{U: e.U, V: e.V, Weight: e.Weight})
		adj[e.V] = append(adj[e.V], GraphEdge{U: e.V, V: e.U, Weight: e.Weight})
	}
	g := &Graph{n: n, dist: make([][]float64, n)}
	for src := 0; src < n; src++ {
		d := dijkstra(adj, src, n)
		for _, v := range d {
			if math.IsInf(v, 1) {
				return nil, fmt.Errorf("metric: graph is disconnected (node unreachable from %d)", src)
			}
		}
		g.dist[src] = d
	}
	return g, nil
}

// N reports the number of nodes.
func (g *Graph) N() int { return g.n }

// Distance implements Metric over node indices.
func (g *Graph) Distance(a, b int) float64 { return g.dist[a][b] }

// Name implements Metric.
func (g *Graph) Name() string { return "graph-shortest-path" }

type dijkstraItem struct {
	node int
	dist float64
}

type dijkstraHeap []dijkstraItem

func (h dijkstraHeap) Len() int            { return len(h) }
func (h dijkstraHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h dijkstraHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *dijkstraHeap) Push(x interface{}) { *h = append(*h, x.(dijkstraItem)) }
func (h *dijkstraHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func dijkstra(adj [][]GraphEdge, src, n int) []float64 {
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := &dijkstraHeap{{node: src, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(dijkstraItem)
		if it.dist > dist[it.node] {
			continue // stale entry
		}
		for _, e := range adj[it.node] {
			nd := it.dist + e.Weight
			if nd < dist[e.V] {
				dist[e.V] = nd
				heap.Push(h, dijkstraItem{node: e.V, dist: nd})
			}
		}
	}
	return dist
}
