//go:build amd64

package metric

import (
	"math/rand"
	"testing"
)

// TestBlockedAsmMatchesGo toggles the AVX2 body off and asserts the pure-Go
// fallback produces bit-identical rows — the asm kernel and chunkedBodyGo
// are two spellings of the same lane arithmetic, and this pins it.
func TestBlockedAsmMatchesGo(t *testing.T) {
	if !useChunkedAsm {
		t.Skip("host has no AVX2; only the Go body is reachable")
	}
	rng := rand.New(rand.NewSource(405))
	for _, dim := range blockedDims {
		q := randFlat(rng, 1, dim)
		flat := randFlat(rng, 11, dim)
		asm := make([]float64, 11)
		pure := make([]float64, 11)
		euclidChunkedRowBlocked(q, flat, dim, asm)
		useChunkedAsm = false
		euclidChunkedRowBlocked(q, flat, dim, pure)
		useChunkedAsm = true
		for j := range asm {
			if asm[j] != pure[j] {
				t.Fatalf("dim=%d point %d: asm %v, go %v", dim, j, asm[j], pure[j])
			}
		}
	}
}
