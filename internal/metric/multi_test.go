package metric

import (
	"math"
	"math/rand"
	"testing"
)

func randFlat(rng *rand.Rand, n, dim int) []float32 {
	out := make([]float32, n*dim)
	for i := range out {
		out[i] = rng.Float32()*4 - 2
	}
	return out
}

// tileRef computes the ordering tile one pair at a time through the
// metric's scalar Distance, converted to ordering space.
func tileRef(m Metric[[]float32], qflat, pflat []float32, dim int) []float64 {
	nq, np := len(qflat)/dim, len(pflat)/dim
	out := make([]float64, nq*np)
	for i := 0; i < nq; i++ {
		for j := 0; j < np; j++ {
			out[i*np+j] = FromDistance(m, m.Distance(qflat[i*dim:(i+1)*dim], pflat[j*dim:(j+1)*dim]))
		}
	}
	return out
}

func maxRelErr(a, b []float64) float64 {
	var worst float64
	for i := range a {
		diff := math.Abs(a[i] - b[i])
		scale := 1 + math.Abs(a[i]) + math.Abs(b[i])
		if e := diff / scale; e > worst {
			worst = e
		}
	}
	return worst
}

// kernelMatchesScalar checks both kernel modes against the per-pair scalar
// reference across awkward shapes (dims not multiples of 4, tiny blocks).
func kernelMatchesScalar(t *testing.T, m Metric[[]float32]) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	for _, mode := range []struct {
		name string
		k    *Kernel
	}{{"exact", NewKernel(m)}, {"fast", NewFastKernel(m)}} {
		for _, dim := range []int{1, 2, 3, 5, 7, 8, 16, 33} {
			for _, shape := range [][2]int{{1, 1}, {1, 9}, {3, 7}, {4, 4}, {5, 13}, {16, 32}} {
				nq, np := shape[0], shape[1]
				qflat := randFlat(rng, nq, dim)
				pflat := randFlat(rng, np, dim)
				out := make([]float64, nq*np)
				mode.k.Tile(qflat, nil, pflat, nil, dim, out, nil)
				want := tileRef(m, qflat, pflat, dim)
				if e := maxRelErr(out, want); e > 1e-9 {
					t.Fatalf("%s %s dim=%d nq=%d np=%d: max rel err %v", m.Name(), mode.name, dim, nq, np, e)
				}
			}
		}
	}
}

func TestTileEuclidean(t *testing.T) { kernelMatchesScalar(t, Euclidean{}) }
func TestTileManhattan(t *testing.T) { kernelMatchesScalar(t, Manhattan{}) }
func TestTileChebyshev(t *testing.T) { kernelMatchesScalar(t, Chebyshev{}) }
func TestTileMinkowski(t *testing.T) { kernelMatchesScalar(t, NewMinkowski(2.5)) }
func TestTileAngularFallback(t *testing.T) {
	// Angular has no Batch/BatchMulti path; the kernel must fall back to
	// per-pair Distance calls.
	kernelMatchesScalar(t, Angular{})
}

// TestTileShapeInvariance: computing the same (Q, X) tile through any
// tiling must give bit-identical values, in both kernel modes, including
// for duplicate-heavy data (tie stability).
func TestTileShapeInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dim := range []int{3, 8, 17} {
		nq, np := 13, 57
		qflat := randFlat(rng, nq, dim)
		pflat := randFlat(rng, np, dim)
		// Duplicate some point rows and mirror a query into the points so
		// exact ties exist.
		copy(pflat[3*dim:4*dim], pflat[10*dim:11*dim])
		copy(pflat[20*dim:21*dim], qflat[5*dim:6*dim])
		for _, mk := range []func(Metric[[]float32]) *Kernel{NewKernel, NewFastKernel} {
			k := mk(Euclidean{})
			full := make([]float64, nq*np)
			k.Tile(qflat, nil, pflat, nil, dim, full, nil)
			for _, tiling := range [][2]int{{1, np}, {nq, 1}, {4, 16}, {5, 8}, {2, 31}} {
				tq, tp := tiling[0], tiling[1]
				got := make([]float64, nq*np)
				for q0 := 0; q0 < nq; q0 += tq {
					q1 := min(q0+tq, nq)
					for p0 := 0; p0 < np; p0 += tp {
						p1 := min(p0+tp, np)
						tile := make([]float64, (q1-q0)*(p1-p0))
						k.Tile(qflat[q0*dim:q1*dim], nil, pflat[p0*dim:p1*dim], nil, dim, tile, nil)
						for i := q0; i < q1; i++ {
							copy(got[i*np+p0:i*np+p1], tile[(i-q0)*(p1-p0):(i-q0+1)*(p1-p0)])
						}
					}
				}
				for i := range full {
					if got[i] != full[i] {
						t.Fatalf("dim=%d tiling %dx%d: tile[%d]=%v, full=%v (not bit-identical)",
							dim, tq, tp, i, got[i], full[i])
					}
				}
			}
		}
	}
}

// TestExactTileMatchesOrderingBatch: the exact-mode tile must be
// bit-identical to the single-query OrderingDistances reference.
func TestExactTileMatchesOrderingBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e := Euclidean{}
	k := NewKernel(e)
	for _, dim := range []int{2, 5, 8, 31} {
		nq, np := 9, 40
		qflat := randFlat(rng, nq, dim)
		pflat := randFlat(rng, np, dim)
		tile := make([]float64, nq*np)
		k.Tile(qflat, nil, pflat, nil, dim, tile, nil)
		row := make([]float64, np)
		for i := 0; i < nq; i++ {
			e.OrderingDistances(qflat[i*dim:(i+1)*dim], pflat, dim, row)
			for j := range row {
				if tile[i*np+j] != row[j] {
					t.Fatalf("dim=%d q=%d p=%d: tile %v, ordering batch %v", dim, i, j, tile[i*np+j], row[j])
				}
			}
		}
	}
}

// TestGramDuplicatesExactZero: for bit-identical rows the Gram expansion
// must cancel to exactly zero (norms and dot share accumulation order),
// and it must never go negative.
func TestGramDuplicatesExactZero(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	k := NewFastKernel(Euclidean{})
	for _, dim := range []int{1, 3, 8, 21} {
		np := 33
		pflat := randFlat(rng, np, dim)
		// Large-magnitude coordinates provoke cancellation noise.
		for i := range pflat {
			pflat[i] *= 1000
		}
		q := make([]float32, dim)
		copy(q, pflat[17*dim:18*dim])
		out := make([]float64, np)
		k.Tile(q, nil, pflat, nil, dim, out, nil)
		if out[17] != 0 {
			t.Fatalf("dim=%d: duplicate row ordering distance %v, want exactly 0", dim, out[17])
		}
		for j, o := range out {
			if o < 0 || math.IsNaN(o) {
				t.Fatalf("dim=%d p=%d: ordering distance %v (must be clamped >= 0)", dim, j, o)
			}
		}
	}
}

func TestNormsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	k := NewFastKernel(Euclidean{})
	for _, dim := range []int{1, 4, 9} {
		flat := randFlat(rng, 11, dim)
		norms := k.Norms(flat, dim, nil)
		for i := 0; i < 11; i++ {
			var want float64
			for _, v := range flat[i*dim : (i+1)*dim] {
				want += float64(v) * float64(v)
			}
			if math.Abs(norms[i]-want) > 1e-9*(1+want) {
				t.Fatalf("dim=%d row=%d: norm %v, want %v", dim, i, norms[i], want)
			}
		}
	}
	if norms := NewKernel(Euclidean{}).Norms(randFlat(rng, 4, 3), 3, nil); norms != nil {
		t.Fatal("exact kernel should not request norms")
	}
}

func TestOrderingConversions(t *testing.T) {
	e := Euclidean{}
	if d := ToDistance(e, 9.0); d != 3 {
		t.Fatalf("euclid ToDistance(9)=%v", d)
	}
	if o := FromDistance(e, 3.0); o != 9 {
		t.Fatalf("euclid FromDistance(3)=%v", o)
	}
	mk := NewMinkowski(3)
	if d := ToDistance(mk, 8.0); math.Abs(d-2) > 1e-12 {
		t.Fatalf("minkowski ToDistance(8)=%v", d)
	}
	// Identity for metrics without an Orderer.
	if d := ToDistance(Manhattan{}, 5.0); d != 5 {
		t.Fatalf("manhattan ToDistance(5)=%v", d)
	}
	if o := FromDistance(Chebyshev{}, 5.0); o != 5 {
		t.Fatalf("chebyshev FromDistance(5)=%v", o)
	}
}

// TestOrderingBound: every ordering value whose distance is <= d must
// fall at or below the prefilter bound.
func TestOrderingBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, m := range []Metric[[]float32]{Euclidean{}, Manhattan{}, NewMinkowski(3)} {
		k := NewKernel(m)
		for trial := 0; trial < 2000; trial++ {
			a := randFlat(rng, 1, 6)
			b := randFlat(rng, 1, 6)
			d := m.Distance(a, b)
			out := make([]float64, 1)
			k.Ordering(a, b, 6, out)
			if bound := k.OrderingBound(d); out[0] > bound {
				t.Fatalf("%s: ordering %v exceeds bound %v for its own distance %v", m.Name(), out[0], bound, d)
			}
		}
	}
}

// TestMinkowskiBatch: the new Batch fast path must agree with the scalar
// Distance (the previous behavior was a silent per-point fallback).
func TestMinkowskiBatch(t *testing.T) {
	batchMatchesScalar(t, NewMinkowski(2.5))
	batchMatchesScalar(t, NewMinkowski(1))
	batchMatchesScalar(t, NewMinkowski(4))
}

// TestEuclideanMultiDistances exercises the public BatchMulti entry point.
func TestEuclideanMultiDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	dim := 6
	qflat := randFlat(rng, 5, dim)
	pflat := randFlat(rng, 12, dim)
	out := make([]float64, 5*12)
	Euclidean{}.MultiDistances(qflat, pflat, dim, out)
	want := tileRef(Euclidean{}, qflat, pflat, dim)
	if e := maxRelErr(out, want); e > 1e-9 {
		t.Fatalf("MultiDistances max rel err %v", e)
	}
}

// customMulti is a metric with its own BatchMulti implementation; the
// kernel must route through it in both modes.
type customMulti struct {
	Manhattan
	calls int
}

func (c *customMulti) MultiDistances(qflat, pflat []float32, dim int, out []float64) {
	c.calls++
	nq, np := len(qflat)/dim, len(pflat)/dim
	for i := 0; i < nq; i++ {
		c.Distances(qflat[i*dim:(i+1)*dim], pflat, dim, out[i*np:(i+1)*np])
	}
}

func TestKernelUsesCustomBatchMulti(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	cm := &customMulti{}
	k := NewKernel(cm)
	qflat := randFlat(rng, 3, 4)
	pflat := randFlat(rng, 6, 4)
	out := make([]float64, 18)
	k.Tile(qflat, nil, pflat, nil, 4, out, nil)
	if cm.calls != 1 {
		t.Fatalf("custom MultiDistances called %d times, want 1", cm.calls)
	}
	want := tileRef(Manhattan{}, qflat, pflat, 4)
	if e := maxRelErr(out, want); e > 1e-9 {
		t.Fatalf("custom tile max rel err %v", e)
	}
}

func TestTileInvocationsCounter(t *testing.T) {
	before := TileInvocations()
	k := NewKernel(Euclidean{})
	out := make([]float64, 4)
	k.Tile([]float32{1, 2}, nil, []float32{0, 0, 1, 1, 2, 2, 3, 3}, nil, 2, out, nil)
	if TileInvocations() != before+1 {
		t.Fatalf("counter %d, want %d", TileInvocations(), before+1)
	}
}
